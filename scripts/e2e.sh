#!/usr/bin/env bash
# End-to-end smoke of the public surface: boot dkserved with a data
# dir, run the same dkctl pipeline locally and remotely, and assert
# the results — JSON and generated edge-list files — are byte-identical
# and deterministic across runs and worker counts.
#
# Usage: scripts/e2e.sh [workdir]   (defaults to a fresh temp dir)
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
PORT="${E2E_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"

echo "e2e: workdir ${WORK}"
mkdir -p "${WORK}"
go build -o "${WORK}/dkctl" ./cmd/dkctl
go build -o "${WORK}/dkserved" ./cmd/dkserved

"${WORK}/dkserved" -addr "127.0.0.1:${PORT}" -data-dir "${WORK}/data" >"${WORK}/dkserved.log" 2>&1 &
SERVED_PID=$!
trap 'kill ${SERVED_PID} 2>/dev/null || true' EXIT

# Wait for readiness (the satellite endpoint, not just TCP).
for i in $(seq 1 50); do
  if curl -fsS "${BASE}/v1/readyz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "e2e: dkserved never became ready"; cat "${WORK}/dkserved.log"; exit 1; fi
  sleep 0.2
done
echo "e2e: dkserved ready on ${BASE}"

cd "${WORK}"
./dkctl pipeline example > p.json

# Local run (in-process, pkg/dk), two worker counts.
./dkctl -workers 1 pipeline run -out local p.json > local.json
./dkctl -workers 4 pipeline run -out local-w4 p.json > local-w4.json
diff -u local.json local-w4.json
diff -r local local-w4
echo "e2e: local runs worker-invariant"

# Remote run (HTTP, pkg/dkclient), twice.
./dkctl -server "${BASE}" pipeline run -out remote p.json > remote.json
./dkctl -server "${BASE}" pipeline run -out remote2 p.json > remote2.json
diff -u remote.json remote2.json
diff -r remote remote2
echo "e2e: remote runs deterministic"

# The acceptance gate: local and remote are byte-identical — JSON
# results and every generated edge-list file.
diff -u local.json remote.json
diff -r local remote
echo "e2e: local and remote byte-identical"

# Standalone commands agree across modes too — including a dataset
# reference with its own synthesis seed (regression: the seed must not
# be lost on the wire).
./dkctl extract -d 2 -metrics dataset:hot:7 > extract-local.json
./dkctl -server "${BASE}" extract -d 2 -metrics dataset:hot:7 > extract-remote.json
# 'cached' reports server cache state and may legitimately differ.
sed 's/"cached": [a-z]*/"cached": X/' extract-local.json > a.json
sed 's/"cached": [a-z]*/"cached": X/' extract-remote.json > b.json
diff -u a.json b.json
echo "e2e: extract agrees across modes"

# Health, stats, and graceful shutdown.
./dkctl -server "${BASE}" health | grep -q '"ready": true'
./dkctl -server "${BASE}" stats | grep -q '"POST /v1/pipelines"'
kill -TERM "${SERVED_PID}"
wait "${SERVED_PID}"
grep -q "draining" "${WORK}/dkserved.log"
grep -q "bye" "${WORK}/dkserved.log"
trap - EXIT
echo "e2e: graceful drain verified"
echo "e2e: PASS"
