#!/usr/bin/env bash
# End-to-end smoke of the public surface: boot dkserved with a data
# dir, run the same dkctl pipeline locally and remotely, and assert
# the results — JSON and generated edge-list files — are byte-identical
# and deterministic across runs and worker counts.
#
# Usage: scripts/e2e.sh [workdir]   (defaults to a fresh temp dir)
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
PORT="${E2E_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"

echo "e2e: workdir ${WORK}"
mkdir -p "${WORK}"
go build -o "${WORK}/dkctl" ./cmd/dkctl
go build -o "${WORK}/dkserved" ./cmd/dkserved

"${WORK}/dkserved" -addr "127.0.0.1:${PORT}" -data-dir "${WORK}/data" >"${WORK}/dkserved.log" 2>&1 &
SERVED_PID=$!
trap 'kill ${SERVED_PID} 2>/dev/null || true' EXIT

# Wait for readiness (the satellite endpoint, not just TCP).
for i in $(seq 1 50); do
  if curl -fsS "${BASE}/v1/readyz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "e2e: dkserved never became ready"; cat "${WORK}/dkserved.log"; exit 1; fi
  sleep 0.2
done
echo "e2e: dkserved ready on ${BASE}"

cd "${WORK}"
./dkctl pipeline example > p.json

# Local run (in-process, pkg/dk), two worker counts.
./dkctl -workers 1 pipeline run -out local p.json > local.json
./dkctl -workers 4 pipeline run -out local-w4 p.json > local-w4.json
diff -u local.json local-w4.json
diff -r local local-w4
echo "e2e: local runs worker-invariant"

# Remote run (HTTP, pkg/dkclient), twice.
./dkctl -server "${BASE}" pipeline run -out remote p.json > remote.json
./dkctl -server "${BASE}" pipeline run -out remote2 p.json > remote2.json
diff -u remote.json remote2.json
diff -r remote remote2
echo "e2e: remote runs deterministic"

# The acceptance gate: local and remote are byte-identical — JSON
# results and every generated edge-list file.
diff -u local.json remote.json
diff -r local remote
echo "e2e: local and remote byte-identical"

# Standalone commands agree across modes too — including a dataset
# reference with its own synthesis seed (regression: the seed must not
# be lost on the wire).
./dkctl extract -d 2 -metrics dataset:hot:7 > extract-local.json
./dkctl -server "${BASE}" extract -d 2 -metrics dataset:hot:7 > extract-remote.json
# 'cached' reports server cache state and may legitimately differ.
sed 's/"cached": [a-z]*/"cached": X/' extract-local.json > a.json
sed 's/"cached": [a-z]*/"cached": X/' extract-remote.json > b.json
diff -u a.json b.json
echo "e2e: extract agrees across modes"

# Scenario subsystem: an extract → generate → netsim pipeline over the
# measured graph plus an 8-replica dK-random ensemble must produce
# measured-vs-ensemble curves for all three scenario kinds that are
# byte-identical across worker counts and across local/remote execution.
cat > netsim.json <<'EOF'
{"steps":[
  {"id":"ext","op":"extract","source":{"dataset":"hot","seed":7},"d":2},
  {"id":"gen","op":"generate","source":{"step":"ext"},"d":2,"replicas":8,"seed":42},
  {"id":"sim","op":"netsim","source":{"step":"ext"},
   "ensemble":[{"step":"gen","replica":0},{"step":"gen","replica":1},
               {"step":"gen","replica":2},{"step":"gen","replica":3},
               {"step":"gen","replica":4},{"step":"gen","replica":5},
               {"step":"gen","replica":6},{"step":"gen","replica":7}],
   "scenarios":[{"kind":"robustness","fracs":[0,0.25,0.5,0.75],"targeted":true,"trials":2},
                {"kind":"epidemic","beta":0.5,"rounds":12,"trials":2},
                {"kind":"routing","pairs":12,"ttl":64,"trials":2}],
   "seed":9}
]}
EOF
./dkctl -workers 1 pipeline run netsim.json > netsim-w1.json
./dkctl -workers 4 pipeline run netsim.json > netsim-w4.json
diff -u netsim-w1.json netsim-w4.json
./dkctl -server "${BASE}" pipeline run netsim.json > netsim-remote.json
diff -u netsim-w1.json netsim-remote.json
grep -q '"divergence"' netsim-w1.json
for kind in robustness epidemic routing; do
  grep -q "\"kind\": \"${kind}\"" netsim-w1.json || { echo "e2e: netsim result missing ${kind} curves"; exit 1; }
done
echo "e2e: netsim curves worker-invariant and identical across modes"

# The netsim subcommand (default scenario set) agrees across modes too.
./dkctl netsim -trials 2 -seed 5 dataset:hot:7 > sim-local.json
./dkctl -server "${BASE}" netsim -trials 2 -seed 5 dataset:hot:7 > sim-remote.json
diff -u sim-local.json sim-remote.json
echo "e2e: dkctl netsim agrees across modes"

# Execution tracing: submit a traced pipeline job directly, fetch its
# trace, and assert the span tree is well-formed end to end — dkctl
# trace validates (one root, no orphan spans) and renders the timeline,
# which must reach from the request span down to the rewiring
# convergence events of the generate replicas.
JOB=$(curl -fsS -H 'Content-Type: application/json' -d @p.json "${BASE}/v1/pipelines" \
  | sed 's/.*"job_id":"\([^"]*\)".*/\1/')
for i in $(seq 1 100); do
  STATUS=$(curl -fsS "${BASE}/v1/jobs/${JOB}" | sed 's/.*"status":"\([^"]*\)".*/\1/')
  if [ "${STATUS}" = "done" ]; then break; fi
  if [ "${STATUS}" = "failed" ] || [ "$i" = 100 ]; then echo "e2e: traced job ${JOB} status ${STATUS}"; exit 1; fi
  sleep 0.2
done
curl -fsS "${BASE}/v1/jobs/${JOB}/trace" > trace.jsonl
head -1 trace.jsonl | grep -q '"kind":"trace"'
./dkctl -server "${BASE}" trace "${JOB}" > trace.txt
for span in request job queued step resolve construct intern replica; do
  grep -q "${span}" trace.txt || { echo "e2e: trace timeline missing span '${span}'"; cat trace.txt; exit 1; }
done
grep -q "convergence" trace.txt
grep -cq "sweep" trace.txt
echo "e2e: traced pipeline job yields a complete span tree"

# Health, stats, and graceful shutdown.
./dkctl -server "${BASE}" health | grep -q '"ready": true'
./dkctl -server "${BASE}" stats | grep -q '"POST /v1/pipelines"'
./dkctl -server "${BASE}" stats > stats.json
grep -q '"scenarios"' stats.json
grep -q '"robustness"' stats.json
curl -fsS "${BASE}/metrics" > metrics.txt
grep -q 'dk_http_request_seconds_bucket' metrics.txt
grep -q 'dk_pipeline_phase_seconds_count' metrics.txt
grep -q 'dk_scenario_runs_total{kind="epidemic"}' metrics.txt
grep -q 'dk_scenario_seconds_bucket' metrics.txt
kill -TERM "${SERVED_PID}"
wait "${SERVED_PID}"
grep -q "draining" "${WORK}/dkserved.log"
grep -q "bye" "${WORK}/dkserved.log"
trap - EXIT
echo "e2e: graceful drain verified"
echo "e2e: PASS"
