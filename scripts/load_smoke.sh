#!/usr/bin/env bash
# Load smoke: the CI end of cmd/dkload. Prove the stream generator is
# byte-deterministic, boot a real dkserved (persistent store + rate
# limiter enabled), replay the committed BENCH_load.json's exact
# profile+seed against it, and gate on the committed SLO — zero 5xx,
# error budget, per-route p99 bounds.
#
# Usage: scripts/load_smoke.sh [workdir]   (defaults to a fresh temp dir)
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
PORT="${LOAD_PORT:-18081}"
BASE="http://127.0.0.1:${PORT}"

echo "load-smoke: workdir ${WORK}"
mkdir -p "${WORK}"
go build -o "${WORK}/dkload" ./cmd/dkload
go build -o "${WORK}/dkserved" ./cmd/dkserved

# The committed report must be schema-complete before anything runs.
"${WORK}/dkload" -verify BENCH_load.json

# Determinism witness: the same (profile, seed) dumps a byte-identical
# stream, run to run — so a gate failure is the server's fault, never
# the harness sending different traffic.
"${WORK}/dkload" -dump -profile smoke -seed 2 > "${WORK}/stream-a.txt"
"${WORK}/dkload" -dump -profile smoke -seed 2 > "${WORK}/stream-b.txt"
diff -u "${WORK}/stream-a.txt" "${WORK}/stream-b.txt"
echo "load-smoke: stream byte-deterministic"

# Boot with the store and the limiter on: the limit is far above what
# the harness sends, so the limiter code path runs on every request
# without ever throttling the gate run.
"${WORK}/dkserved" -addr "127.0.0.1:${PORT}" -data-dir "${WORK}/data" \
  -rate-limit 500 >"${WORK}/dkserved.log" 2>&1 &
SERVED_PID=$!
trap 'kill ${SERVED_PID} 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  if curl -fsS "${BASE}/v1/readyz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "load-smoke: dkserved never became ready"; cat "${WORK}/dkserved.log"; exit 1; fi
  sleep 0.2
done
echo "load-smoke: dkserved ready on ${BASE}"

# The gate replays the committed report's own profile and seed and
# exits non-zero on any SLO violation.
"${WORK}/dkload" -server "${BASE}" -concurrency 4 -gate BENCH_load.json

# The scrape and limiter families are live after real traffic. Scrape
# to a file first: grep -q exiting early would break the curl pipe.
curl -fsS "${BASE}/metrics" > "${WORK}/metrics.txt"
grep -q '^dk_http_requests_total' "${WORK}/metrics.txt"
grep -q '^dk_ratelimit_allowed_total' "${WORK}/metrics.txt"
grep -q '^dk_http_request_seconds_bucket' "${WORK}/metrics.txt"
echo "load-smoke: /metrics live"

kill -TERM "${SERVED_PID}"
wait "${SERVED_PID}"
grep -q "bye" "${WORK}/dkserved.log"

# Trace-overhead spot-check: the gate above ran with tracing enabled
# (the default); the same load against -tracing=false must meet the
# same committed SLO. Tracing is observational — if disabling it is
# what makes the gate pass, that's a regression in the tracer.
"${WORK}/dkserved" -addr "127.0.0.1:${PORT}" -data-dir "${WORK}/data2" \
  -rate-limit 500 -tracing=false >"${WORK}/dkserved-notrace.log" 2>&1 &
SERVED_PID=$!
trap 'kill ${SERVED_PID} 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
  if curl -fsS "${BASE}/v1/readyz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "load-smoke: untraced dkserved never became ready"; cat "${WORK}/dkserved-notrace.log"; exit 1; fi
  sleep 0.2
done
"${WORK}/dkload" -server "${BASE}" -concurrency 4 -gate BENCH_load.json
echo "load-smoke: SLO holds with tracing on and off"

kill -TERM "${SERVED_PID}"
wait "${SERVED_PID}"
grep -q "bye" "${WORK}/dkserved-notrace.log"
trap - EXIT
echo "load-smoke: PASS"
