// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each
// Benchmark<ID> drives the same experiment code as `dkrepro -exp <id>`
// at small scale with a single averaging seed, reporting experiment-
// specific metrics via b.ReportMetric so shapes are visible in benchmark
// output. Run them all with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"io"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dk"
	"repro/internal/experiments"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// benchLab builds a fresh small-scale lab per benchmark (datasets are
// cached inside one lab, so timing reflects the experiment itself after
// the first iteration).
func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	return experiments.NewLab(experiments.Config{
		Scale: experiments.ScaleSmall,
		Seeds: 1,
		Seed:  42,
	})
}

// runExperiment runs one registry experiment b.N times, discarding the
// rendering.
func runExperiment(b *testing.B, id string) {
	lab := benchLab(b)
	// Warm the dataset caches outside the timed region.
	if _, err := lab.Skitter(); err != nil {
		b.Fatal(err)
	}
	if _, err := lab.HOT(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(lab, id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B) { runExperiment(b, "table8") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig5a(b *testing.B)  { runExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)  { runExperiment(b, "fig5b") }
func BenchmarkFig5c(b *testing.B)  { runExperiment(b, "fig5c") }
func BenchmarkFig6a(b *testing.B)  { runExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { runExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { runExperiment(b, "fig6c") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationSwapBudget sweeps the randomizing-rewiring swap budget
// and reports the resulting metric drift from the converged state,
// testing the paper's "10× initial rewirings" convention against the
// O(m)-mixing claim it cites: small multipliers already converge.
func BenchmarkAblationSwapBudget(b *testing.B) {
	hot, _, err := datasets.HOT(datasets.PaperScaleHOT(1))
	if err != nil {
		b.Fatal(err)
	}
	// Converged reference: a long run.
	refRng := rand.New(rand.NewSource(9))
	ref, _, err := generate.Randomize(hot, 1, generate.RandomizeOptions{Rng: refRng, SwapFactor: 40})
	if err != nil {
		b.Fatal(err)
	}
	refSum := mustSummary(b, ref)
	for _, factor := range []int{1, 3, 10, 30} {
		b.Run("swapx"+strconv.Itoa(factor), func(b *testing.B) {
			var drift float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				out, _, err := generate.Randomize(hot, 1, generate.RandomizeOptions{Rng: rng, SwapFactor: factor})
				if err != nil {
					b.Fatal(err)
				}
				s := mustSummary(b, out)
				drift = abs(s.DBar-refSum.DBar) + abs(s.R-refSum.R)
			}
			b.ReportMetric(drift, "metric-drift")
		})
	}
}

// BenchmarkAblationTemperature compares zero-temperature targeting with
// fixed-temperature and annealed Metropolis runs (paper §4.1.4: T = 0
// sufficed in all their experiments).
func BenchmarkAblationTemperature(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	p, err := lab.SkitterProfile()
	if err != nil {
		b.Fatal(err)
	}
	start, err := generate.Matching1K(p.Degrees, generate.Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		b.Fatal(err)
	}
	_ = sk
	cases := []struct {
		name   string
		opts   generate.TargetOptions
		budget int
	}{
		{"T0", generate.TargetOptions{}, 60 * start.M()},
		{"T100", generate.TargetOptions{Temperature: 100}, 60 * start.M()},
		{"annealed", generate.TargetOptions{Temperature: 100, Anneal: 0.7}, 60 * start.M()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				opts := c.opts
				opts.Rng = rand.New(rand.NewSource(int64(i)))
				opts.MaxAttempts = c.budget
				opts.StopAtZero = true
				res, err := generate.TargetRewire(start, p, 2, opts)
				if err != nil {
					b.Fatal(err)
				}
				final = res.FinalD / res.InitialD
			}
			b.ReportMetric(final, "D2-residual-ratio")
		})
	}
}

// BenchmarkBadness quantifies the paper's §5.1 claim that the 2K
// pseudograph generator produces fewer badnesses (self-loops, duplicate
// edges, small components) than the 1K PLRG on the same graph.
func BenchmarkBadness(b *testing.B) {
	lab := benchLab(b)
	p, err := lab.SkitterProfile()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("PLRG-1K", func(b *testing.B) {
		var loops, smallCC float64
		for i := 0; i < b.N; i++ {
			res, err := generate.Pseudograph1K(p.Degrees, generate.Options{Rng: rand.New(rand.NewSource(int64(i)))})
			if err != nil {
				b.Fatal(err)
			}
			loops = float64(res.Badness.SelfLoops + res.Badness.MultiEdges)
			smallCC = float64(res.Badness.SmallCCNodes)
		}
		b.ReportMetric(loops, "loops+multis")
		b.ReportMetric(smallCC, "small-cc-nodes")
	})
	b.Run("pseudograph-2K", func(b *testing.B) {
		var loops, smallCC float64
		for i := 0; i < b.N; i++ {
			res, err := generate.Pseudograph2K(p.Joint, generate.Options{Rng: rand.New(rand.NewSource(int64(i)))})
			if err != nil {
				b.Fatal(err)
			}
			loops = float64(res.Badness.SelfLoops + res.Badness.MultiEdges)
			smallCC = float64(res.Badness.SmallCCNodes)
		}
		b.ReportMetric(loops, "loops+multis")
		b.ReportMetric(smallCC, "small-cc-nodes")
	})
}

// BenchmarkAblationDistance compares the paper's squared-difference D2
// against an L1 variant as the targeting objective, tracking converged
// residuals — the distance-definition ablation of DESIGN.md.
func BenchmarkAblationDistance(b *testing.B) {
	lab := benchLab(b)
	p, err := lab.SkitterProfile()
	if err != nil {
		b.Fatal(err)
	}
	start, err := generate.Matching1K(p.Degrees, generate.Options{Rng: rand.New(rand.NewSource(6))})
	if err != nil {
		b.Fatal(err)
	}
	// The squared objective is the built-in one; the L1 variant is
	// emulated by measuring the final L1 distance of a squared-objective
	// run (both drive the same zero; the report compares residual shape).
	b.Run("D2-squared", func(b *testing.B) {
		var resid float64
		for i := 0; i < b.N; i++ {
			res, err := generate.TargetRewire(start, p, 2, generate.TargetOptions{
				Rng: rand.New(rand.NewSource(int64(i))), StopAtZero: true,
				MaxAttempts: 60 * start.M(),
			})
			if err != nil {
				b.Fatal(err)
			}
			q, err := dk.Extract(res.FinalGraph, 2)
			if err != nil {
				b.Fatal(err)
			}
			resid = l1JDD(q.Joint, p.Joint)
		}
		b.ReportMetric(resid, "L1-residual")
	})
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkExtract3K(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	st := sk.Static()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dk.Extract(st, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomize2K(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, _, err := generate.Randomize(sk, 2, generate.RandomizeOptions{Rng: rng, SwapFactor: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBetweenness(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	st := sk.Static()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Betweenness(st)
	}
}

func BenchmarkAllPairsBFS(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	st := sk.Static()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Distances(st)
	}
}

// --- Serial vs parallel (DESIGN.md §3) ---
//
// Every Benchmark<X>Workers runs the identical computation at workers=1
// (serial baseline) and workers=GOMAXPROCS; outputs are bit-identical by
// the determinism guarantee, so the sub-benchmark ratio is pure speedup.

// workerCounts returns the serial baseline plus the machine's full width
// (and a mid point when they are far apart, to expose scaling shape).
func workerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	if max >= 4 {
		counts = append(counts, max/2)
	}
	if max > 1 {
		counts = append(counts, max)
	}
	return counts
}

func benchWorkers(b *testing.B, run func(b *testing.B)) {
	for _, w := range workerCounts() {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			parallel.SetWorkers(w)
			defer parallel.SetWorkers(0)
			run(b)
		})
	}
}

func BenchmarkBetweennessWorkers(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	st := sk.Static()
	benchWorkers(b, func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			metrics.Betweenness(st)
		}
	})
}

func BenchmarkAllPairsBFSWorkers(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	st := sk.Static()
	benchWorkers(b, func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			metrics.Distances(st)
		}
	})
}

func BenchmarkEdgeBetweennessWorkers(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	st := sk.Static()
	benchWorkers(b, func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			metrics.EdgeBetweenness(st)
		}
	})
}

// BenchmarkTable6Workers exercises the full experiment stack — replica
// generation fan-out, metric sweeps, spectral bounds — at both worker
// counts. Table 6 is the most expensive table (four dK depths with
// spectral metrics), so it is the headline number for experiment-level
// scaling.
func BenchmarkTable6Workers(b *testing.B) {
	lab := benchLab(b)
	if _, err := lab.Skitter(); err != nil {
		b.Fatal(err)
	}
	benchWorkers(b, func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := experiments.Run(lab, "table6", io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRandomizeReplicasWorkers measures the generation-layer replica
// fan-out: 8 independent 2K-randomizing runs of the skitter-like graph.
func BenchmarkRandomizeReplicasWorkers(b *testing.B) {
	lab := benchLab(b)
	sk, err := lab.Skitter()
	if err != nil {
		b.Fatal(err)
	}
	benchWorkers(b, func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := generate.RandomizeReplicas(sk, 2, 8, int64(i), generate.RandomizeOptions{SwapFactor: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func mustSummary(b *testing.B, g *graph.CSR) metrics.Summary {
	b.Helper()
	gcc, _ := graph.GiantComponent(g)
	s, err := metrics.Summarize(gcc.Static(), metrics.SummaryOptions{SkipS2: true})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func l1JDD(a, b *dk.JDD) float64 {
	var sum float64
	for pr, m := range a.Count {
		d := float64(m - b.Count[pr])
		sum += abs(d)
	}
	for pr, m := range b.Count {
		if _, ok := a.Count[pr]; !ok {
			sum += abs(float64(m))
		}
	}
	return sum
}

func BenchmarkSize4(b *testing.B)  { runExperiment(b, "size4") }
func BenchmarkAppSim(b *testing.B) { runExperiment(b, "appsim") }

func BenchmarkSExplore(b *testing.B) { runExperiment(b, "sexplore") }
