// Package dkclient is the Go SDK for the dK topology service: a typed
// HTTP client over the wire vocabulary of pkg/dkapi, covering every
// /v1 endpoint — extraction, asynchronous generation and pipelines with
// job polling, comparison, datasets, health, and stats.
//
//	c, _ := dkclient.New("http://localhost:8080")
//	ext, _ := c.ExtractEdges(ctx, "0 1\n1 2\n2 0\n", dkclient.ExtractOptions{D: dkapi.Int(2)})
//	res, _ := c.RunPipeline(ctx, req)   // submit + poll + decode
//
// The client is deliberately boring where it matters:
//
//   - Re-upload avoidance: EnsureGraph computes the same content hash
//     the server would and probes GET /v1/graphs/{hash} first, so a
//     topology the server has seen is never shipped twice.
//   - Retries: safely-rejected submissions (429 queue_full, 503
//     unavailable — both issued before anything is enqueued) and GETs
//     back off exponentially and honor Retry-After; POSTs are never
//     re-sent after a transport error, which could duplicate a job.
//     Everything is context-aware.
//   - Polling: WaitJob polls with capped exponential backoff until the
//     job is terminal.
//   - Streaming: JobResult returns the bulk result as an io.ReadCloser
//     so replica ensembles never need to fit in memory.
package dkclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/pkg/dkapi"
)

// APIError is a non-2xx response decoded from the service's uniform
// error envelope.
type APIError struct {
	Status int    // HTTP status code
	Code   string // machine code ("bad_request", "not_found", …)
	Msg    string
	// RequestID is the X-Request-Id the client sent with the failed
	// request — the correlation handle for server-side access logs and
	// traces. The same id covers every retry of one logical request.
	RequestID string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("dkclient: %s (HTTP %d, code %s, request %s)", e.Msg, e.Status, e.Code, e.RequestID)
	}
	return fmt.Sprintf("dkclient: %s (HTTP %d, code %s)", e.Msg, e.Status, e.Code)
}

// IsNotFound reports whether err is an APIError with code not_found.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == dkapi.CodeNotFound
}

// Options tunes a Client. The zero value is production-sensible.
type Options struct {
	// HTTPClient overrides the transport (default: a client with a
	// 5-minute overall timeout; rely on ctx for per-call deadlines).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts beyond the first try (default 4).
	MaxRetries int
	// RetryBase is the first retry delay (default 100ms; doubles per
	// attempt, capped at 5s). Retry-After headers override it.
	RetryBase time.Duration
	// PollInitial is the first job-poll delay (default 50ms).
	PollInitial time.Duration
	// PollMax caps the job-poll delay (default 2s; the interval grows
	// 1.5× per poll).
	PollMax time.Duration
	// ClientID, when set, is sent as X-Client-Id on every request. A
	// rate-limited server buckets traffic by this id (falling back to the
	// remote IP), so callers sharing a NAT can be throttled independently
	// — dkload sets it so load runs never eat another client's budget.
	ClientID string
}

// Client talks to one dkserved base URL. It is safe for concurrent use.
type Client struct {
	base *url.URL
	hc   *http.Client
	opts Options
}

// New builds a client for a base URL like "http://localhost:8080". The
// /v1 prefix is implied; a trailing slash is tolerated.
func New(baseURL string, opts ...Options) (*Client, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	u, err := url.Parse(strings.TrimSuffix(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("dkclient: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("dkclient: base URL %q needs a scheme and host", baseURL)
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 5 * time.Minute}
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.RetryBase == 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.PollInitial == 0 {
		o.PollInitial = 50 * time.Millisecond
	}
	if o.PollMax == 0 {
		o.PollMax = 2 * time.Second
	}
	return &Client{base: u, hc: o.HTTPClient, opts: o}, nil
}

// urlFor joins the base URL with a /v1 path and query values.
func (c *Client) urlFor(path string, q url.Values) string {
	u := *c.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	if len(q) > 0 {
		u.RawQuery = q.Encode()
	}
	return u.String()
}

// retryable reports whether a response status may be retried: 429 means
// the job queue rejected the submission (nothing was enqueued), 503
// means the server is draining or a dependency is down — both leave the
// server unchanged, so POSTs are as safe to retry as GETs.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryDelay picks the next backoff delay, honoring Retry-After.
func (c *Client) retryDelay(attempt int, resp *http.Response) time.Duration {
	if resp != nil {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				return time.Duration(secs) * time.Second
			}
		}
	}
	d := c.opts.RetryBase << attempt
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// ridCounter numbers minted request ids client-process-wide.
var ridCounter atomic.Int64

// newRequestID mints an X-Request-Id for one logical request. The id is
// unique within the process and distinguishable across processes; the
// "c-" prefix marks it as client-minted in server logs and traces.
func newRequestID() string {
	return fmt.Sprintf("c-%d-%06d", time.Now().Unix(), ridCounter.Add(1))
}

// do executes one request with retries, returning the successful
// response (body open, caller closes) or the decoded API error of the
// final attempt. body is re-sent from bytes on every attempt. One
// X-Request-Id is minted per logical request and re-sent verbatim on
// every retry, so server-side access logs and traces correlate all
// attempts — and every error path carries the id.
func (c *Client) do(ctx context.Context, method, u string, contentType string, body []byte) (*http.Response, error) {
	rid := newRequestID()
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.opts.ClientID != "" {
			req.Header.Set("X-Client-Id", c.opts.ClientID)
		}
		req.Header.Set("X-Request-Id", rid)
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("dkclient: request %s: %w", rid, err)
			// Transport errors (connection refused, reset) are retried
			// only for GETs: a POST whose connection died mid-response
			// may already have enqueued its job server-side, and
			// re-sending it would enqueue a duplicate that runs as an
			// orphan. 429/503 rejections below carry no such ambiguity —
			// the server answered without enqueueing.
			if method != http.MethodGet || attempt >= c.opts.MaxRetries {
				return nil, lastErr
			}
			if err := sleepCtx(ctx, c.retryDelay(attempt, nil)); err != nil {
				return nil, lastErr
			}
			continue
		}
		if resp.StatusCode < 400 {
			return resp, nil
		}
		apiErr := decodeError(resp)
		apiErr.RequestID = rid
		resp.Body.Close()
		lastErr = apiErr
		if !retryable(resp.StatusCode) || attempt >= c.opts.MaxRetries {
			return nil, lastErr
		}
		if err := sleepCtx(ctx, c.retryDelay(attempt, resp)); err != nil {
			return nil, lastErr
		}
	}
}

// sleepCtx sleeps or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeError turns a non-2xx response into an *APIError.
func decodeError(resp *http.Response) *APIError {
	var envelope dkapi.ErrorResponse
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(data, &envelope); err != nil || envelope.Error == "" {
		envelope.Error = strings.TrimSpace(string(data))
		if envelope.Error == "" {
			envelope.Error = resp.Status
		}
	}
	return &APIError{Status: resp.StatusCode, Code: envelope.Code, Msg: envelope.Error}
}

// getJSON GETs u and decodes the response into out.
func (c *Client) getJSON(ctx context.Context, u string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, u, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON POSTs v as JSON to u and decodes the response into out.
func (c *Client) postJSON(ctx context.Context, u string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := c.do(ctx, http.MethodPost, u, "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health calls GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (dkapi.HealthResponse, error) {
	var out dkapi.HealthResponse
	err := c.getJSON(ctx, c.urlFor("/v1/healthz", nil), &out)
	return out, err
}

// Ready calls GET /v1/readyz. A draining or degraded server answers
// 503; the decoded ReadyResponse is returned alongside the APIError
// when the body parses.
func (c *Client) Ready(ctx context.Context) (dkapi.ReadyResponse, error) {
	// Readiness probes must see the 503 body, not retry it away.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urlFor("/v1/readyz", nil), nil)
	if err != nil {
		return dkapi.ReadyResponse{}, err
	}
	if c.opts.ClientID != "" {
		req.Header.Set("X-Client-Id", c.opts.ClientID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return dkapi.ReadyResponse{}, err
	}
	defer resp.Body.Close()
	var out dkapi.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return dkapi.ReadyResponse{}, err
	}
	return out, nil
}

// Stats calls GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*dkapi.StatsResponse, error) {
	var out dkapi.StatsResponse
	err := c.getJSON(ctx, c.urlFor("/v1/stats", nil), &out)
	return &out, err
}

// Datasets calls GET /v1/datasets.
func (c *Client) Datasets(ctx context.Context) ([]dkapi.DatasetInfo, error) {
	var out []dkapi.DatasetInfo
	err := c.getJSON(ctx, c.urlFor("/v1/datasets", nil), &out)
	return out, err
}

// DatasetEdges downloads a built-in dataset's edge list.
func (c *Client) DatasetEdges(ctx context.Context, name string, seed int64, n int) (string, error) {
	q := url.Values{}
	if seed != 0 {
		q.Set("seed", strconv.FormatInt(seed, 10))
	}
	if n != 0 {
		q.Set("n", strconv.Itoa(n))
	}
	resp, err := c.do(ctx, http.MethodGet, c.urlFor("/v1/datasets/"+url.PathEscape(name), q), "", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// LookupGraph calls GET /v1/graphs/{hash}: does the server know this
// content hash (memory or disk tier)? Unknown hashes return an
// APIError with code not_found (test with IsNotFound).
func (c *Client) LookupGraph(ctx context.Context, hash string) (dkapi.GraphInfo, error) {
	var out dkapi.GraphInfo
	err := c.getJSON(ctx, c.urlFor("/v1/graphs/"+url.PathEscape(hash), nil), &out)
	return out, err
}

// EnsureGraph makes a topology referenceable by hash on the server
// while uploading it at most once: it computes the content hash
// locally — the same canonical-edge-list SHA-256 the server computes —
// probes GET /v1/graphs/{hash}, and only on a miss uploads the edge
// list (via a d=0 extract, the cheapest interning request). The boolean
// reports whether the upload was skipped.
func (c *Client) EnsureGraph(ctx context.Context, edges string) (dkapi.GraphInfo, bool, error) {
	g, labels, err := graph.ReadEdgeList(strings.NewReader(edges))
	if err != nil {
		return dkapi.GraphInfo{}, false, fmt.Errorf("dkclient: parse edge list: %w", err)
	}
	hash := graph.ContentHash(g, labels)
	if info, err := c.LookupGraph(ctx, hash); err == nil {
		return info, true, nil
	} else if !IsNotFound(err) {
		return dkapi.GraphInfo{}, false, err
	}
	ext, err := c.ExtractEdges(ctx, edges, ExtractOptions{D: dkapi.Int(0)})
	if err != nil {
		return dkapi.GraphInfo{}, false, err
	}
	return ext.Graph, false, nil
}

// ExtractOptions mirrors the query parameters of POST /v1/extract.
type ExtractOptions struct {
	// D is the extraction depth 0..3 (nil = 3); use dkapi.Int.
	D *int
	// Metrics adds the scalar metric summary of the giant component.
	Metrics bool
	// Spectral adds Laplacian spectrum bounds to the summary.
	Spectral bool
	// Sample bounds BFS sources for distance metrics (0 = exact).
	Sample int
	// Seed drives sampling/Lanczos and dataset synthesis (0 = server
	// default 1).
	Seed int64
	// Dataset extracts a built-in dataset instead of an uploaded body.
	Dataset string
	// DatasetSeed is the dataset synthesis seed (?dseed), kept separate
	// from the sampling Seed; nil defers to the server's default
	// (which is Seed). 0 is meaningful — use dkapi.Int64.
	DatasetSeed *int64
	// N is the dataset size parameter (skitter).
	N int
}

func (o ExtractOptions) query() url.Values {
	q := url.Values{}
	if o.D != nil {
		q.Set("d", strconv.Itoa(*o.D))
	}
	if o.Metrics {
		q.Set("metrics", "1")
	}
	if o.Spectral {
		q.Set("spectral", "1")
	}
	if o.Sample != 0 {
		q.Set("sample", strconv.Itoa(o.Sample))
	}
	if o.Seed != 0 {
		q.Set("seed", strconv.FormatInt(o.Seed, 10))
	}
	if o.Dataset != "" {
		q.Set("dataset", o.Dataset)
	}
	if o.DatasetSeed != nil {
		q.Set("dseed", strconv.FormatInt(*o.DatasetSeed, 10))
	}
	if o.N != 0 {
		q.Set("n", strconv.Itoa(o.N))
	}
	return q
}

// ExtractEdges POSTs an edge list to /v1/extract. Pass opts.Dataset
// (with empty edges) to extract a built-in dataset instead.
func (c *Client) ExtractEdges(ctx context.Context, edges string, opts ExtractOptions) (*dkapi.ExtractResponse, error) {
	var body []byte
	if opts.Dataset == "" {
		body = []byte(edges)
	}
	resp, err := c.do(ctx, http.MethodPost, c.urlFor("/v1/extract", opts.query()), "text/plain", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out dkapi.ExtractResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compare POSTs to /v1/compare.
func (c *Client) Compare(ctx context.Context, req dkapi.CompareRequest) (*dkapi.CompareResponse, error) {
	var out dkapi.CompareResponse
	if err := c.postJSON(ctx, c.urlFor("/v1/compare", nil), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitGenerate POSTs to /v1/generate and returns the accepted job id.
func (c *Client) SubmitGenerate(ctx context.Context, req dkapi.GenerateRequest) (dkapi.JobAccepted, error) {
	var out dkapi.JobAccepted
	err := c.postJSON(ctx, c.urlFor("/v1/generate", nil), req, &out)
	return out, err
}

// SubmitPipeline POSTs to /v1/pipelines and returns the accepted job id.
func (c *Client) SubmitPipeline(ctx context.Context, req dkapi.PipelineRequest) (dkapi.JobAccepted, error) {
	var out dkapi.JobAccepted
	err := c.postJSON(ctx, c.urlFor("/v1/pipelines", nil), req, &out)
	return out, err
}

// Job polls GET /v1/jobs/{id} once.
func (c *Client) Job(ctx context.Context, id string) (*dkapi.JobEnvelope, error) {
	var out dkapi.JobEnvelope
	if err := c.getJSON(ctx, c.urlFor("/v1/jobs/"+url.PathEscape(id), nil), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job with capped exponential backoff until it reaches
// a terminal state (or ctx is done). Failed jobs come back as an error
// carrying the job's failure message, with the envelope alongside.
func (c *Client) WaitJob(ctx context.Context, id string) (*dkapi.JobEnvelope, error) {
	delay := c.opts.PollInitial
	for {
		env, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if env.Terminal() {
			if env.Status == dkapi.JobFailed {
				return env, fmt.Errorf("dkclient: job %s failed: %s", id, env.Error)
			}
			return env, nil
		}
		if err := sleepCtx(ctx, delay); err != nil {
			return nil, err
		}
		delay = delay * 3 / 2
		if delay > c.opts.PollMax {
			delay = c.opts.PollMax
		}
	}
}

// JobTrace fetches GET /v1/jobs/{id}/trace: the finished job's
// execution trace as JSONL (one span or event record per line; see
// internal/trace for the vocabulary). Jobs still queued or running
// answer 409; servers with tracing disabled, 404.
func (c *Client) JobTrace(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, c.urlFor("/v1/jobs/"+url.PathEscape(id)+"/trace", nil), "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// JobResult streams GET /v1/jobs/{id}/result. The caller must close the
// returned reader.
func (c *Client) JobResult(ctx context.Context, id string) (io.ReadCloser, error) {
	resp, err := c.do(ctx, http.MethodGet, c.urlFor("/v1/jobs/"+url.PathEscape(id)+"/result", nil), "", nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// GenerateWait submits a generate request and waits for its result.
func (c *Client) GenerateWait(ctx context.Context, req dkapi.GenerateRequest) (*dkapi.GenerateResult, string, error) {
	acc, err := c.SubmitGenerate(ctx, req)
	if err != nil {
		return nil, "", err
	}
	env, err := c.WaitJob(ctx, acc.JobID)
	if err != nil {
		return nil, acc.JobID, err
	}
	var out dkapi.GenerateResult
	if err := json.Unmarshal(env.Result, &out); err != nil {
		return nil, acc.JobID, fmt.Errorf("dkclient: decode generate result: %w", err)
	}
	return &out, acc.JobID, nil
}

// Simulate submits a single netsim pipeline step — scenario simulations
// over a measured graph and its replica ensemble — waits for it, and
// returns the step's result (the measured-vs-ensemble comparison
// curves). It is the wire twin of dk.Simulate: the same request run
// locally produces byte-identical JSON.
func (c *Client) Simulate(ctx context.Context, source dkapi.GraphRef, ensemble []dkapi.GraphRef, scenarios []dkapi.ScenarioSpec, seed int64) (*dkapi.StepResult, error) {
	res, _, err := c.RunPipeline(ctx, dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{{
		ID: "netsim", Op: dkapi.OpNetsim, Source: &source,
		Ensemble: ensemble, Scenarios: scenarios, Seed: seed,
	}}})
	if err != nil {
		return nil, err
	}
	return &res.Steps[0], nil
}

// RunPipeline submits a pipeline and waits for its result. The returned
// job id can be handed to JobResult to stream the generated ensembles.
func (c *Client) RunPipeline(ctx context.Context, req dkapi.PipelineRequest) (*dkapi.PipelineResult, string, error) {
	acc, err := c.SubmitPipeline(ctx, req)
	if err != nil {
		return nil, "", err
	}
	env, err := c.WaitJob(ctx, acc.JobID)
	if err != nil {
		return nil, acc.JobID, err
	}
	var out dkapi.PipelineResult
	if err := json.Unmarshal(env.Result, &out); err != nil {
		return nil, acc.JobID, fmt.Errorf("dkclient: decode pipeline result: %w", err)
	}
	return &out, acc.JobID, nil
}
