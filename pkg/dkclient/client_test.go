package dkclient

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/pkg/dk"
	"repro/pkg/dkapi"
)

func newServer(t *testing.T) (*service.Server, *Client) {
	t.Helper()
	srv := service.New(service.Options{})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, c
}

// smokePipeline is the paper's workflow as one declarative request:
// extract a profile, generate a 2K ensemble, compare a replica against
// the original.
func smokePipeline() dkapi.PipelineRequest {
	return dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{
		{ID: "ext", Op: dkapi.OpExtract, Source: &dkapi.GraphRef{Dataset: "hot", Seed: 7}, D: dkapi.Int(2)},
		{ID: "gen", Op: dkapi.OpGenerate, Source: &dkapi.GraphRef{Step: "ext"},
			D: dkapi.Int(2), Replicas: 3, Seed: 42, Compare: true},
		{ID: "cmp", Op: dkapi.OpCompare,
			A: &dkapi.GraphRef{Step: "ext"},
			B: &dkapi.GraphRef{Step: "gen", Replica: 1},
			D: dkapi.Int(2)},
	}}
}

// TestPipelineLocalRemoteIdentical is the acceptance check of the PR:
// one POST /v1/pipelines request reproduces extract→generate(2K)→
// compare end-to-end, and the local facade produces byte-identical
// results for the same request.
func TestPipelineLocalRemoteIdentical(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()

	remote, jobID, err := c.RunPipeline(ctx, smokePipeline())
	if err != nil {
		t.Fatal(err)
	}
	local, err := dk.RunPipeline(ctx, smokePipeline())
	if err != nil {
		t.Fatal(err)
	}

	rb, _ := json.Marshal(remote)
	lb, _ := json.Marshal(local.Result)
	if string(rb) != string(lb) {
		t.Fatalf("local and remote pipeline results differ:\nlocal:  %s\nremote: %s", lb, rb)
	}

	// The bulk stream and the local graphs must also match byte for byte.
	body, err := c.JobResult(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	streamed, err := io.ReadAll(body)
	if err != nil {
		t.Fatal(err)
	}
	var localStream strings.Builder
	for _, sg := range local.Graphs {
		for i, g := range sg.Graphs {
			fmt.Fprintf(&localStream, "# step %s replica %d\n", sg.StepID, i)
			if err := g.WriteEdgeList(&localStream); err != nil {
				t.Fatal(err)
			}
		}
	}
	if localStream.String() != string(streamed) {
		t.Fatalf("local graphs and remote bulk stream differ (%d vs %d bytes)",
			localStream.Len(), len(streamed))
	}

	// And a second remote run is deterministic.
	again, _, err := c.RunPipeline(ctx, smokePipeline())
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := json.Marshal(again)
	if string(ab) != string(rb) {
		t.Fatal("two identical pipeline submissions produced different results")
	}
}

// netsimPipeline is the scenario workflow as one declarative request:
// build a dK-random ensemble, then simulate the paper's three behavioral
// probes over the measured graph and every replica.
func netsimPipeline() dkapi.PipelineRequest {
	src := dkapi.GraphRef{Dataset: "hot", Seed: 7}
	ensemble := make([]dkapi.GraphRef, 8)
	for i := range ensemble {
		ensemble[i] = dkapi.GraphRef{Step: "gen", Replica: i}
	}
	return dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{
		{ID: "gen", Op: dkapi.OpGenerate, Source: &src, D: dkapi.Int(2), Replicas: 8, Seed: 42},
		{ID: "sim", Op: dkapi.OpNetsim, Source: &src, Ensemble: ensemble,
			Scenarios: []dkapi.ScenarioSpec{
				{Kind: dkapi.ScenarioRobustness, Fracs: []float64{0, 0.25, 0.5, 0.75}, Targeted: true, Trials: 2},
				{Kind: dkapi.ScenarioEpidemic, Beta: 0.5, Rounds: 12, Trials: 2},
				{Kind: dkapi.ScenarioRouting, Pairs: 12, TTL: 64, Trials: 2},
			},
			Seed: 9},
	}}
}

// TestNetsimLocalRemoteIdentical: a netsim step over a measured graph
// plus an 8-replica dK-random ensemble returns measured-vs-ensemble
// curves for all three scenario kinds, byte-identical between the local
// facade and a remote server, and across repeated remote submissions.
func TestNetsimLocalRemoteIdentical(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()

	remote, _, err := c.RunPipeline(ctx, netsimPipeline())
	if err != nil {
		t.Fatal(err)
	}
	local, err := dk.RunPipeline(ctx, netsimPipeline())
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := json.Marshal(remote)
	lb, _ := json.Marshal(local.Result)
	if string(rb) != string(lb) {
		t.Fatalf("local and remote netsim results differ:\nlocal:  %s\nremote: %s", lb, rb)
	}

	sim := remote.Steps[1]
	if sim.EnsembleSize != 8 {
		t.Fatalf("ensemble size = %d, want 8", sim.EnsembleSize)
	}
	if len(sim.Scenarios) != 3 {
		t.Fatalf("scenario count = %d, want 3", len(sim.Scenarios))
	}
	for _, sc := range sim.Scenarios {
		if len(sc.Measured) == 0 || len(sc.Ensemble) != len(sc.Measured) {
			t.Fatalf("scenario %s: measured %d points, ensemble %d", sc.Kind, len(sc.Measured), len(sc.Ensemble))
		}
		if sc.Divergence == nil {
			t.Fatalf("scenario %s: no divergence summary despite ensemble", sc.Kind)
		}
	}

	again, _, err := c.RunPipeline(ctx, netsimPipeline())
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := json.Marshal(again)
	if string(ab) != string(rb) {
		t.Fatal("two identical netsim submissions produced different results")
	}
}

// TestEnsureGraphSkipsReupload: the second EnsureGraph for the same
// topology is a pure hash probe — no new cache entry, no upload.
func TestEnsureGraphSkipsReupload(t *testing.T) {
	srv, c := newServer(t)
	ctx := context.Background()
	edges := "0 1\n1 2\n2 0\n2 3\n"

	info1, skipped, err := c.EnsureGraph(ctx, edges)
	if err != nil {
		t.Fatal(err)
	}
	if skipped {
		t.Fatal("first EnsureGraph claims the server already had the graph")
	}
	missesAfterUpload := srv.CacheStats().Misses

	info2, skipped, err := c.EnsureGraph(ctx, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !skipped {
		t.Fatal("second EnsureGraph re-uploaded a known topology")
	}
	if info1 != info2 {
		t.Fatalf("EnsureGraph infos differ: %+v vs %+v", info1, info2)
	}
	if got := srv.CacheStats().Misses; got != missesAfterUpload {
		t.Fatalf("second EnsureGraph created a cache entry (misses %d -> %d)", missesAfterUpload, got)
	}
}

// TestRetryOn429And503: submissions rejected with queue_full or
// unavailable are retried with backoff until they land.
func TestRetryOn429And503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"job queue full","code":"queue_full"}`)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"draining","code":"unavailable"}`)
		default:
			fmt.Fprintln(w, `{"job_id":"j000007","status_url":"/v1/jobs/j000007"}`)
		}
	}))
	defer ts.Close()
	c, err := New(ts.URL, Options{RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.SubmitGenerate(context.Background(), dkapi.GenerateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if acc.JobID != "j000007" {
		t.Fatalf("job id %q, want j000007", acc.JobID)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two rejections + success)", got)
	}
}

// TestRetryGivesUp: a persistent 400 is not retried.
func TestRetryGivesUp(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"nope","code":"bad_request"}`)
	}))
	defer ts.Close()
	c, err := New(ts.URL, Options{RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitGenerate(context.Background(), dkapi.GenerateRequest{})
	var ae *APIError
	if err == nil || !errorsAs(err, &ae) || ae.Code != dkapi.CodeBadRequest {
		t.Fatalf("err = %v, want bad_request APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 was retried (%d calls)", got)
	}
}

// errorsAs avoids importing errors just for the test.
func errorsAs(err error, target **APIError) bool {
	for err != nil {
		if ae, ok := err.(*APIError); ok {
			*target = ae
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestGenerateWaitAndStream: the classic async flow through the typed
// client — submit, poll to completion, stream the replica edge lists.
func TestGenerateWaitAndStream(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()

	res, jobID, err := c.GenerateWait(ctx, dkapi.GenerateRequest{
		Source:   dkapi.GraphRef{Dataset: "paw"},
		D:        dkapi.Int(2),
		Replicas: 2,
		Seed:     9,
		Compare:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 2 {
		t.Fatalf("got %d replicas, want 2", len(res.Replicas))
	}
	for _, r := range res.Replicas {
		if r.Distance == nil || *r.Distance != 0 {
			t.Fatalf("2K-randomize replica distance = %v, want exactly 0", r.Distance)
		}
	}
	body, err := c.JobResult(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# replica 0") || !strings.Contains(string(data), "# replica 1") {
		t.Fatalf("bulk result missing replica markers:\n%s", data)
	}
}

// TestRequestIDRetryReuse: the client mints one X-Request-Id per
// logical request, re-sends it verbatim across 429/503 retries, and a
// fresh logical request gets a fresh id. Failed requests surface the id
// in the error.
func TestRequestIDRetryReuse(t *testing.T) {
	var mu struct {
		rids []string
	}
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.rids = append(mu.rids, r.Header.Get("X-Request-Id"))
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"job queue full","code":"queue_full"}`)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"draining","code":"unavailable"}`)
		case 3:
			fmt.Fprintln(w, `{"job_id":"j000001","status_url":"/v1/jobs/j000001"}`)
		default:
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintln(w, `{"error":"no such job","code":"not_found"}`)
		}
	}))
	defer ts.Close()
	c, err := New(ts.URL, Options{RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitGenerate(context.Background(), dkapi.GenerateRequest{}); err != nil {
		t.Fatal(err)
	}
	if len(mu.rids) != 3 {
		t.Fatalf("server saw %d requests, want 3", len(mu.rids))
	}
	if mu.rids[0] == "" {
		t.Fatal("client sent no X-Request-Id")
	}
	if mu.rids[0] != mu.rids[1] || mu.rids[1] != mu.rids[2] {
		t.Fatalf("request id changed across retries: %v", mu.rids)
	}

	_, err = c.Job(context.Background(), "j999999")
	var ae *APIError
	if err == nil || !errorsAs(err, &ae) {
		t.Fatalf("err = %v, want APIError", err)
	}
	rid2 := mu.rids[len(mu.rids)-1]
	if ae.RequestID != rid2 {
		t.Fatalf("APIError.RequestID = %q, want %q", ae.RequestID, rid2)
	}
	if !strings.Contains(err.Error(), rid2) {
		t.Fatalf("error string %q does not surface request id %q", err, rid2)
	}
	if rid2 == mu.rids[0] {
		t.Fatal("distinct logical requests shared a request id")
	}
}

// TestJobTrace: the typed client fetches a finished job's JSONL trace.
func TestJobTrace(t *testing.T) {
	_, c := newServer(t)
	ctx := context.Background()
	_, jobID, err := c.RunPipeline(ctx, smokePipeline())
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.JobTrace(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"trace"`) || !strings.Contains(string(data), `"name":"job"`) {
		t.Fatalf("trace JSONL missing expected records:\n%.300s", data)
	}
	if _, err := c.JobTrace(ctx, "j999999"); !IsNotFound(err) {
		t.Fatalf("unknown job trace: err = %v, want not_found", err)
	}
}
