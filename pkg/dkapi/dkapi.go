// Package dkapi defines the wire types of the dK topology API: the one
// vocabulary shared by the HTTP service (internal/service), the Go
// facade (pkg/dk), the HTTP client SDK (pkg/dkclient), and every CLI
// tool. A request built against these types means the same thing
// whether it is executed in-process or POSTed to a dkserved instance —
// which is what makes local and remote execution byte-identical.
//
// The package holds data only: no I/O, no handlers, no computation.
// See docs/API.md for the HTTP reference built on these types.
package dkapi

import (
	"repro/internal/dk"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/subgraphs"
	"repro/internal/trace"
)

// GraphRef identifies a graph in a request body, by exactly one of:
//
//   - Hash: the content address of a previously uploaded graph;
//   - Edges: an inline edge list ("u v" per line);
//   - Dataset: a built-in dataset name (optional Seed/N synthesis
//     parameters);
//   - Step: inside a pipeline, the named output of an earlier step
//     (optional Replica index into a generate step's ensemble);
//   - File: a local path, resolved by CLI tools before the request
//     leaves the process — servers reject it.
type GraphRef struct {
	Hash    string `json:"hash,omitempty"`
	Edges   string `json:"edges,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	N       int    `json:"n,omitempty"`
	// Step references the graph output of an earlier pipeline step;
	// Replica selects one graph of a generate/randomize ensemble
	// (default 0). Only valid inside POST /v1/pipelines.
	Step    string `json:"step,omitempty"`
	Replica int    `json:"replica,omitempty"`
	// File is client-side sugar: dkctl and the SDK inline the file's
	// edge list before submitting. A server receiving a file reference
	// rejects it with bad_request.
	File string `json:"file,omitempty"`
}

// GraphInfo describes a resolved graph in responses.
type GraphInfo struct {
	Hash string `json:"hash"`
	N    int    `json:"n"`
	M    int    `json:"m"`
}

// ExtractResponse is the body of a successful POST /v1/extract. Trace
// carries the request's span records when the caller opted in with
// ?trace=1 (see docs/OBSERVABILITY.md).
type ExtractResponse struct {
	Graph   GraphInfo        `json:"graph"`
	Cached  bool             `json:"cached"`
	Profile *dk.Profile      `json:"profile"`
	Summary *metrics.Summary `json:"summary,omitempty"`
	Trace   []TraceRecord    `json:"trace,omitempty"`
}

// GenerateRequest is the body of POST /v1/generate.
type GenerateRequest struct {
	// Source is the topology to extract the target distribution from
	// (and, for method "randomize", the rewiring start point).
	Source GraphRef `json:"source"`
	// D is the dK depth (0..3, default 2).
	D *int `json:"d,omitempty"`
	// Method is one of randomize, stochastic, pseudograph, matching,
	// targeting (default randomize).
	Method string `json:"method,omitempty"`
	// Replicas is the ensemble size (default 1, bounded by the server's
	// MaxReplicas option).
	Replicas int `json:"replicas,omitempty"`
	// Seed drives all randomness; replica i derives its own independent
	// stream, so the ensemble is a pure function of (seed, replicas).
	Seed int64 `json:"seed,omitempty"`
	// Compare adds the D_d distance of every replica to the source
	// profile in the job result.
	Compare bool `json:"compare,omitempty"`
}

// ReplicaInfo summarizes one generated replica in a job result.
type ReplicaInfo struct {
	Index    int      `json:"index"`
	N        int      `json:"n"`
	M        int      `json:"m"`
	Distance *float64 `json:"distance,omitempty"`
}

// GenerateResult is the result summary of a finished generate job; the
// replica edge lists themselves stream from /v1/jobs/{id}/result.
type GenerateResult struct {
	Source   GraphInfo     `json:"source"`
	D        int           `json:"d"`
	Method   string        `json:"method"`
	Seed     int64         `json:"seed"`
	Replicas []ReplicaInfo `json:"replicas"`
}

// JobAccepted is the 202 body of POST /v1/generate and POST
// /v1/pipelines.
type JobAccepted struct {
	JobID     string `json:"job_id"`
	StatusURL string `json:"status_url"`
}

// CompareRequest is the body of POST /v1/compare.
type CompareRequest struct {
	A GraphRef `json:"a"`
	B GraphRef `json:"b"`
	// D is the maximum dK depth to compare (0..3, default 3); D_d is
	// reported for every d up to it.
	D *int `json:"d,omitempty"`
	// Spectral includes the Laplacian spectrum bounds in the summaries.
	Spectral bool `json:"spectral,omitempty"`
	// Sample bounds the BFS sources for the distance metrics (0 =
	// exact, as in /v1/extract's ?sample); essential for large graphs,
	// where exact all-pairs distances are O(N·M).
	Sample int `json:"sample,omitempty"`
	// Seed drives Lanczos and any sampled metrics (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// DistanceEntry is one D_d value in a compare response.
type DistanceEntry struct {
	D     int     `json:"d"`
	Value float64 `json:"value"`
}

// CompareResponse is the body of a successful POST /v1/compare. Trace
// carries the request's span records when the caller opted in with
// ?trace=1.
type CompareResponse struct {
	A         GraphInfo       `json:"a"`
	B         GraphInfo       `json:"b"`
	Distances []DistanceEntry `json:"distances"`
	SummaryA  metrics.Summary `json:"summary_a"`
	SummaryB  metrics.Summary `json:"summary_b"`
	Trace     []TraceRecord   `json:"trace,omitempty"`
}

// DatasetInfo describes one built-in dataset on GET /v1/datasets.
type DatasetInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Params      []string `json:"params,omitempty"`
	Slow        bool     `json:"slow,omitempty"`
}

// CacheStats counts cache traffic. Hits and Misses count intern calls
// that found (respectively created) an entry; Extractions counts actual
// dK-extraction runs, which a repeated request for an already-profiled
// topology must not increase. The Disk* counters instrument the
// persistent tier.
type CacheStats struct {
	Entries           int   `json:"entries"`
	MaxEntries        int   `json:"max_entries"`
	Hits              int64 `json:"hits"`
	Misses            int64 `json:"misses"`
	Evictions         int64 `json:"evictions"`
	Extractions       int64 `json:"extractions"`
	DiskTier          bool  `json:"disk_tier"`
	DiskHits          int64 `json:"disk_hits"`
	DiskMisses        int64 `json:"disk_misses"`
	DiskGraphWrites   int64 `json:"disk_graph_writes"`
	DiskProfileWrites int64 `json:"disk_profile_writes"`
}

// EngineStats counts job-engine traffic. MaxRunning is the high-water
// mark of concurrently executing jobs; Recovered counts jobs re-queued
// from the journal of a previous process at startup. Queued is the
// total backlog; QueuedInteractive/QueuedBatch split it by priority
// class (see JobClass).
type EngineStats struct {
	Runners           int   `json:"runners"`
	Queued            int   `json:"queued"`
	QueuedInteractive int   `json:"queued_interactive"`
	QueuedBatch       int   `json:"queued_batch"`
	Running           int   `json:"running"`
	MaxRunning        int   `json:"max_running"`
	Completed         int64 `json:"completed"`
	Failed            int64 `json:"failed"`
	Rejected          int64 `json:"rejected"`
	Recovered         int64 `json:"recovered"`
}

// RouteStat is the per-route traffic record in GET /v1/stats: request
// count, error count, and latency aggregates. Throttled counts 429
// backpressure answers (rate limit, full job queue) separately — they
// are flow control, not failures, so they stay out of Errors and out
// of any error-budget arithmetic built on it.
type RouteStat struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	Throttled int64   `json:"throttled,omitempty"`
	TotalMS   float64 `json:"total_ms"`
	MaxMS     float64 `json:"max_ms"`
	LastMS    float64 `json:"last_ms"`
	LastCode  int     `json:"last_code"`
	InFlight  int64   `json:"in_flight,omitempty"`
	BytesSent int64   `json:"bytes_sent"`
}

// RateLimitStats instruments the per-client token-bucket limiter in
// GET /v1/stats (present only when the server runs with a rate limit).
type RateLimitStats struct {
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      int     `json:"burst"`
	Clients    int     `json:"clients"`
	Allowed    int64   `json:"allowed"`
	Limited    int64   `json:"limited"`
}

// PhaseStat aggregates the wall-clock cost of one pipeline execution
// phase in GET /v1/stats: cumulative count, total milliseconds, and the
// slowest single observation.
type PhaseStat struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// StatsResponse is the body of GET /v1/stats. Store is present only when
// the server runs with a persistent data directory; Routes is keyed by
// mux pattern (e.g. "POST /v1/extract"); Phases is keyed by "op.phase"
// (e.g. "generate.construct" — the §4.1.4 construction hot path) and
// appears once the server has executed at least one pipeline step.
// Scenarios is keyed by scenario kind (robustness, epidemic, routing)
// and appears once a netsim step has run.
type StatsResponse struct {
	Version       string               `json:"version"`
	GoVersion     string               `json:"go_version"`
	UptimeSeconds float64              `json:"uptime_seconds"`
	Workers       int                  `json:"workers"`
	Cache         CacheStats           `json:"cache"`
	Jobs          EngineStats          `json:"jobs"`
	Routes        map[string]RouteStat `json:"routes,omitempty"`
	Phases        map[string]PhaseStat `json:"phases,omitempty"`
	Scenarios     map[string]PhaseStat `json:"scenarios,omitempty"`
	RateLimit     *RateLimitStats      `json:"rate_limit,omitempty"`
	Store         *store.Stats         `json:"store,omitempty"`
}

// HealthResponse is the body of GET /v1/healthz: pure liveness, 200
// whenever the process can serve HTTP at all.
type HealthResponse struct {
	Status  string `json:"status"` // always "ok"
	Version string `json:"version"`
}

// ReadyResponse is the body of GET /v1/readyz. Ready is false (and the
// status 503) while the server is draining for shutdown or a dependency
// check fails; Checks maps each dependency to "ok" or its failure.
type ReadyResponse struct {
	Ready  bool              `json:"ready"`
	Checks map[string]string `json:"checks"`
}

// ErrorResponse is the uniform error envelope of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Error codes used in ErrorResponse.Code.
const (
	CodeBadRequest  = "bad_request"  // malformed input or parameters
	CodeNotFound    = "not_found"    // unknown hash, job, or dataset
	CodeTooLarge    = "too_large"    // body or graph exceeds a limit
	CodeQueueFull   = "queue_full"   // job queue at capacity
	CodeRateLimited = "rate_limited" // per-client token bucket exhausted
	CodeConflict    = "conflict"     // job not in a state serving the request
	CodeUnavailable = "unavailable"  // server draining or dependency down
	CodeInternal    = "internal"     // unexpected server-side failure
)

// Census is re-exported so SDK users can name the 3K wedge/triangle
// census type appearing in pipeline step results without importing the
// internal tree.
type Census = subgraphs.Census

// Profile, Summary are likewise re-exported for SDK users.
type Profile = dk.Profile

// Summary is the scalar metric suite of a graph's giant component.
type Summary = metrics.Summary

// TraceRecord is one line of an encoded execution trace — the wire form
// of GET /v1/jobs/{id}/trace and of the Trace field embedded by
// ?trace=1 on the synchronous routes. See internal/trace for the
// record vocabulary ("trace" header, "span", "event").
type TraceRecord = trace.Record

// Int returns a pointer to v, for the optional depth fields (D) of
// request types: a nil depth selects the endpoint's documented default,
// while Int(0) explicitly requests depth 0.
func Int(v int) *int { return &v }

// Int64 returns a pointer to v, for optional int64 fields (seeds)
// where 0 is a meaningful value distinct from "unset".
func Int64(v int64) *int64 { return &v }
