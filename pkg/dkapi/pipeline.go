package dkapi

import (
	"encoding/json"
	"time"
)

// Pipeline step operations. A pipeline is a declarative DAG: each step
// names its inputs (graph references, possibly the outputs of earlier
// steps) and produces named outputs later steps can consume — one
// POST /v1/pipelines request replaces the extract→poll→generate→poll→
// compare round-trip scripting the paper's workflow by hand.
const (
	OpExtract   = "extract"   // dK-profile of the source (+ optional metrics)
	OpGenerate  = "generate"  // construct/randomize a replica ensemble
	OpRandomize = "randomize" // generate with method forced to "randomize"
	OpCompare   = "compare"   // D_d distances + metric side-by-side
	OpCensus    = "census"    // 3K wedge/triangle census of the source
	OpMetrics   = "metrics"   // scalar metric summary of the source's GCC
	OpNetsim    = "netsim"    // scenario simulations over measured graph + ensemble
)

// PipelineRequest is the body of POST /v1/pipelines: an ordered list of
// steps. Steps may reference only earlier steps, so declaration order is
// a valid execution order; replica fan-out inside generate steps is
// parallelized, and results are identical at any worker count.
type PipelineRequest struct {
	Steps []PipelineStep `json:"steps"`
}

// PipelineStep is one operation in a pipeline. Which fields apply
// depends on Op:
//
//	extract    Source, D (default 3), Metrics, Spectral, Sample, Seed
//	generate   Source, D (default 2), Method, Replicas, Seed, Compare
//	randomize  Source, D (default 2), Replicas, Seed, Compare
//	compare    A, B, D (default 3), Spectral, Sample, Seed
//	census     Source
//	metrics    Source, Spectral, Sample, Seed
//	netsim     Source, Ensemble, Scenarios, Seed
type PipelineStep struct {
	// ID names the step; later steps reference its graph output as
	// {"step": id}. Required, unique, [A-Za-z0-9_-]+.
	ID string `json:"id"`
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Source is the input graph of every op except compare.
	Source *GraphRef `json:"source,omitempty"`
	// A, B are the two inputs of a compare step.
	A *GraphRef `json:"a,omitempty"`
	B *GraphRef `json:"b,omitempty"`
	// D is the dK depth; nil selects the op's documented default.
	D *int `json:"d,omitempty"`
	// Method selects the construction algorithm of a generate step
	// (default randomize).
	Method string `json:"method,omitempty"`
	// Replicas is the ensemble size of a generate/randomize step
	// (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Seed drives the step's randomness. Generate steps default to 0;
	// extract/compare/metrics default to 1 (matching the standalone
	// endpoints).
	Seed int64 `json:"seed,omitempty"`
	// Compare adds per-replica D_d distances to a generate step.
	Compare bool `json:"compare,omitempty"`
	// Metrics adds the scalar metric summary to an extract step.
	Metrics bool `json:"metrics,omitempty"`
	// Spectral adds Laplacian spectrum bounds to summaries.
	Spectral bool `json:"spectral,omitempty"`
	// Sample bounds BFS sources for distance metrics (0 = exact).
	Sample int `json:"sample,omitempty"`
	// Ensemble lists the dK-random replicas a netsim step compares the
	// source against, typically {"step": id, "replica": i} references
	// into an earlier generate step. May be empty (measured-only run).
	Ensemble []GraphRef `json:"ensemble,omitempty"`
	// Scenarios lists the simulations a netsim step runs.
	Scenarios []ScenarioSpec `json:"scenarios,omitempty"`
}

// Step status values, reported per step while a pipeline job runs.
const (
	StepPending = "pending"
	StepRunning = "running"
	StepDone    = "done"
	StepFailed  = "failed"
	StepSkipped = "skipped" // an earlier step failed; this one never ran
)

// StepStatus is the live progress record of one step, served in the
// job view's "progress" array while a pipeline executes.
type StepStatus struct {
	ID     string `json:"id"`
	Op     string `json:"op"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// StepResult is the outcome of one finished step. Exactly the fields
// meaningful for the step's op are set; everything is deterministic — no
// timestamps — so two runs of the same pipeline marshal to identical
// bytes, locally or through the service.
type StepResult struct {
	ID string `json:"id"`
	Op string `json:"op"`
	// Graph describes the resolved source graph (ops with a source).
	Graph *GraphInfo `json:"graph,omitempty"`
	// A, B describe the resolved inputs of a compare step.
	A *GraphInfo `json:"a,omitempty"`
	B *GraphInfo `json:"b,omitempty"`
	// D echoes the effective depth of extract/generate/compare steps.
	D int `json:"d"`
	// Cached reports whether an extract step's profile was served
	// without recomputation. It is deliberately excluded from the wire
	// form: a pipeline result must be a pure function of the request —
	// byte-identical across runs and across local/remote execution — and
	// cache state is not. POST /v1/extract surfaces it separately.
	Cached bool `json:"-"`
	// Profile is the dK-profile of an extract step.
	Profile *Profile `json:"profile,omitempty"`
	// Census is the wedge/triangle census of a census step.
	Census *Census `json:"census,omitempty"`
	// Summary is the metric summary of an extract (with metrics) or
	// metrics step.
	Summary *Summary `json:"summary,omitempty"`
	// SummaryA/SummaryB are the side-by-side summaries of a compare step.
	SummaryA *Summary `json:"summary_a,omitempty"`
	SummaryB *Summary `json:"summary_b,omitempty"`
	// Distances are the D_d values of a compare step (d = 0..D).
	Distances []DistanceEntry `json:"distances,omitempty"`
	// Method, Seed, Replicas describe a generate/randomize step's
	// ensemble.
	Method   string        `json:"method,omitempty"`
	Seed     int64         `json:"seed,omitempty"`
	Replicas []ReplicaInfo `json:"replicas,omitempty"`
	// EnsembleSize is the number of replica graphs a netsim step ran
	// against (alongside the measured source).
	EnsembleSize int `json:"ensemble_size,omitempty"`
	// Scenarios are the measured-vs-ensemble comparison curves of a
	// netsim step, in request order.
	Scenarios []ScenarioCurves `json:"scenarios,omitempty"`
}

// PipelineResult is the result summary of a finished pipeline job. The
// generated graphs themselves stream from /v1/jobs/{id}/result, each
// replica prefixed by "# step <id> replica <i>".
type PipelineResult struct {
	Steps []StepResult `json:"steps"`
}

// JobClass is the scheduling priority of an asynchronous job. The job
// engine runs two queues: interactive work (profile reads — extract,
// compare, census, metrics pipelines) overtakes queued batch work
// (anything that generates replica ensembles), so a burst of long
// generate jobs cannot starve a human waiting on an extraction.
type JobClass string

// Job priority classes.
const (
	ClassInteractive JobClass = "interactive"
	ClassBatch       JobClass = "batch"
)

// JobStatus is the lifecycle state of an asynchronous job.
type JobStatus string

// Job lifecycle states. A job moves queued → running → done | failed;
// there are no other transitions.
const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// JobView is the JSON snapshot of a job, served by GET /v1/jobs/{id}.
// Result holds the kind-specific result summary (GenerateResult,
// PipelineResult); Progress holds live per-step status for pipeline
// jobs.
type JobView struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Class     JobClass   `json:"class,omitempty"`
	Status    JobStatus  `json:"status"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Progress  any        `json:"progress,omitempty"`
	Result    any        `json:"result,omitempty"`
	ResultURL string     `json:"result_url,omitempty"`
}

// JobEnvelope is the client-side decode target for a job view: Result
// and Progress stay raw so the caller can unmarshal them into the
// kind-specific type without a lossy round-trip through map[string]any
// (which would reorder keys and break byte-identical re-marshaling).
type JobEnvelope struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	Class     JobClass        `json:"class,omitempty"`
	Status    JobStatus       `json:"status"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Error     string          `json:"error,omitempty"`
	Progress  json.RawMessage `json:"progress,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	ResultURL string          `json:"result_url,omitempty"`
}

// Terminal reports whether the job has finished (done or failed).
func (e *JobEnvelope) Terminal() bool {
	return e.Status == JobDone || e.Status == JobFailed
}
