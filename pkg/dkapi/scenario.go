package dkapi

// Scenario kinds runnable by a netsim pipeline step. Each kind maps to
// one of the protocol studies of internal/netsim — the applications the
// paper holds up as evidence that dK-random graphs reproduce measured
// topologies behaviorally, not just structurally.
const (
	ScenarioRobustness = "robustness" // percolation under failure/attack
	ScenarioEpidemic   = "epidemic"   // SI worm-spread coverage per round
	ScenarioRouting    = "routing"    // degree-greedy routing success/stretch
)

// ScenarioSpec configures one scenario of a netsim step. Which knobs
// apply depends on Kind:
//
//	robustness  Fracs (required, each in [0,1]), Targeted, Trials
//	epidemic    Beta (required, in (0,1]), Rounds (0 = 32), Trials
//	routing     Pairs (0 = 32), TTL (0 = 4n hops), Trials
//
// Knobs that do not apply to the kind must be left zero. Trials is the
// number of independent repetitions per graph (0 = 1); per-trial
// randomness derives from the step seed, never from worker scheduling,
// so results are byte-identical at any worker count.
type ScenarioSpec struct {
	Kind     string    `json:"kind"`
	Fracs    []float64 `json:"fracs,omitempty"`
	Targeted bool      `json:"targeted,omitempty"`
	Beta     float64   `json:"beta,omitempty"`
	Rounds   int       `json:"rounds,omitempty"`
	Pairs    int       `json:"pairs,omitempty"`
	TTL      int       `json:"ttl,omitempty"`
	Trials   int       `json:"trials,omitempty"`
}

// CurvePoint is one (x, y) sample of a scenario curve. The x axis is
// kind-specific: removal fraction (robustness), round index (epidemic),
// or metric index (routing: 0 = success rate, 1 = average stretch).
type CurvePoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// BandPoint is the ensemble aggregate at one x: the mean, minimum and
// maximum of the per-replica trial-mean curves across the dK-random
// ensemble.
type BandPoint struct {
	X    float64 `json:"x"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// ScenarioCurves is the comparison result of one scenario: the measured
// graph's trial-mean curve next to the ensemble band, plus the
// divergence summary max over x of |measured − ensemble mean|. Ensemble
// and Divergence are omitted when the step ran without replicas.
type ScenarioCurves struct {
	Kind       string       `json:"kind"`
	Trials     int          `json:"trials"`
	Measured   []CurvePoint `json:"measured"`
	Ensemble   []BandPoint  `json:"ensemble,omitempty"`
	Divergence *float64     `json:"divergence,omitempty"`
}
