// Package dk is the blessed Go entry point to the dK-series toolkit:
// extraction of dK-distributions, generation of dK-random graph
// ensembles, topology comparison, and declarative multi-step pipelines
// — the full workflow of "Systematic topology analysis and generation
// using degree correlations" behind a small typed API.
//
//	g, _ := dk.ReadGraphFile("as-graph.txt")
//	ext, _ := dk.Extract(ctx, g, dk.ExtractOptions{D: dkapi.Int(2), Metrics: true})
//	gen, _ := dk.Generate(ctx, g, dk.GenerateOptions{D: dkapi.Int(2), Replicas: 10, Seed: 42})
//	cmp, _ := dk.Compare(ctx, g, gen.Graphs[0], dk.CompareOptions{})
//
// Results are the wire types of pkg/dkapi — the same structures a
// dkserved instance returns over HTTP — and the computation runs the
// same executor (internal/pipeline) the service runs, over an
// in-process Session instead of a server-side cache. A program written
// against this facade and one talking to a remote server through
// pkg/dkclient therefore produce byte-identical JSON for the same
// request, which the CLI tools exploit to make `-server` a pure
// transport switch.
//
// Everything is deterministic: given the same inputs and seeds, results
// are identical at any worker count (see internal/parallel).
package dk

import (
	"context"
	"io"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/service"
	"repro/pkg/dkapi"
)

// Graph is a parsed topology with its content address. Graphs are
// immutable once constructed; every generation entry point works on
// copies.
type Graph struct {
	g      *graph.CSR
	labels []int
	hash   string
}

// wrap canonicalizes and addresses a raw graph. Canonical edge order
// makes index-addressed edge draws — the randomizing rewiring loop — a
// pure function of (edge set, seed), exactly like the service cache.
func wrap(g *graph.CSR, labels []int) *Graph {
	if !g.EdgesCanonicallyOrdered() {
		g = g.CanonicalClone()
	}
	return &Graph{g: g, labels: labels, hash: graph.ContentHash(g, labels)}
}

// ReadGraph parses a whitespace-separated edge list ("u v" per line,
// # comments allowed).
func ReadGraph(r io.Reader) (*Graph, error) {
	g, labels, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return wrap(g.CSR(), labels), nil
}

// ReadGraphFile reads an edge-list file; "-" means stdin.
func ReadGraphFile(path string) (*Graph, error) {
	if path == "-" {
		return ReadGraph(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(f)
}

// ParseGraph parses an inline edge list.
func ParseGraph(edges string) (*Graph, error) {
	return ReadGraph(strings.NewReader(edges))
}

// DatasetGraph synthesizes a built-in dataset (paw, petersen, hot,
// skitter); seed and n apply where the dataset is parameterized.
func DatasetGraph(name string, seed int64, n int) (*Graph, error) {
	g, err := datasetGraph(name, seed, n)
	if err != nil {
		return nil, err
	}
	return wrap(g, nil), nil
}

// N returns the node count.
func (g *Graph) N() int { return g.g.N() }

// M returns the edge count.
func (g *Graph) M() int { return g.g.M() }

// Hash returns the graph's content address ("sha256:<hex>" of the
// canonical edge list) — the same hash a dkserved instance computes for
// the same topology, which is what lets the SDK skip re-uploads.
func (g *Graph) Hash() string { return g.hash }

// Info returns the wire descriptor of the graph.
func (g *Graph) Info() dkapi.GraphInfo {
	return dkapi.GraphInfo{Hash: g.hash, N: g.g.N(), M: g.g.M()}
}

// Edges renders the graph as a canonical edge-list string — the inline
// form of a dkapi.GraphRef and the exact bytes the service would stream
// for this topology.
func (g *Graph) Edges() string {
	var sb strings.Builder
	_ = graph.WriteEdgeList(&sb, g.g)
	return sb.String()
}

// WriteEdgeList writes the graph as a sorted "u v" edge list.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	return graph.WriteEdgeList(w, g.g)
}

// WriteDOT renders the graph as Graphviz DOT; nodes with degree >=
// hubThreshold are drawn filled (0 disables highlighting).
func (g *Graph) WriteDOT(w io.Writer, name string, hubThreshold int) error {
	return graph.WriteDOT(w, g.g, name, hubThreshold)
}

// ExtractOptions configures Extract. The zero value extracts the full
// d=3 profile without metrics.
type ExtractOptions struct {
	// D is the extraction depth 0..3 (nil = 3); use dkapi.Int.
	D *int
	// Metrics adds the scalar metric summary of the giant component.
	Metrics bool
	// Spectral adds Laplacian spectrum bounds to the summary.
	Spectral bool
	// Sample bounds BFS sources for distance metrics (0 = exact).
	Sample int
	// Seed drives sampling and Lanczos (0 = 1, the endpoint default).
	Seed int64
}

// GenerateOptions configures Generate. The zero value produces one
// d=2 dK-randomized replica.
type GenerateOptions struct {
	// D is the dK depth 0..3 (nil = 2); use dkapi.Int.
	D *int
	// Method is randomize (default), stochastic, pseudograph, matching,
	// or targeting.
	Method string
	// Replicas is the ensemble size (default 1).
	Replicas int
	// Seed drives all randomness; replica i derives an independent
	// stream.
	Seed int64
	// Compare adds each replica's D_d distance to the source profile.
	Compare bool
	// OnRewireStats, when set, receives each replica's rewiring
	// statistics — acceptance counts plus the rejection-reason breakdown
	// that makes a collapsed acceptance rate diagnosable. Only the
	// randomize method produces stats; other methods never call it.
	// Honored by GenerateStream, where replicas run concurrently: the
	// callback may be invoked from multiple goroutines at once and in
	// any replica order.
	OnRewireStats func(replica int, st RewireStats)
	// OnRewireProgress, when set, receives periodic convergence samples
	// while a replica rewires — roughly one per sweep (M attempts) plus
	// a final sample when the run ends. Observational only: setting it
	// never changes the generated graphs. Same method and concurrency
	// caveats as OnRewireStats.
	OnRewireProgress func(replica int, p RewireProgress)
}

// RewireProgress mirrors internal/generate.RewireProgress on the public
// surface: one convergence sample of a rewiring run. Attempts/Accepted
// are cumulative; the Window fields and rejection counts cover only the
// interval since the previous sample.
type RewireProgress struct {
	Sweep          int     // 1-based sample index
	Attempts       int     // cumulative proposals examined
	Accepted       int     // cumulative moves accepted
	WindowAttempts int     // proposals examined since the previous sample
	WindowAccepted int     // moves accepted since the previous sample
	AcceptanceRate float64 // WindowAccepted / WindowAttempts
	// Window rejection deltas by reason.
	RejectedSelfLoop      int
	RejectedDuplicateEdge int
	RejectedJDDMismatch   int
	RejectedCensusChanged int
	RejectedObjective     int
	RejectedDisconnected  int
	// Objective is the objective's cumulative committed change since
	// the run began; meaningful only when HasObjective.
	Objective    float64
	HasObjective bool
}

// RewireStats mirrors internal/generate.RewireStats on the public
// surface: what a dK-randomizing rewiring run did, with rejected
// proposals broken down by reason. Attempts is always Accepted plus the
// sum of the rejection counts.
type RewireStats struct {
	Attempts int // candidate proposals examined
	Accepted int // moves applied and kept
	Reverted int // moves applied, then rolled back (objective/connectivity)
	// Rejection reasons; structural ones never touch the graph.
	RejectedSelfLoop      int
	RejectedDuplicateEdge int
	RejectedJDDMismatch   int
	RejectedCensusChanged int
	RejectedObjective     int
	RejectedDisconnected  int
}

// CompareOptions configures Compare. The zero value compares up to
// d=3 with exact, non-spectral summaries.
type CompareOptions struct {
	// D is the maximum depth 0..3 (nil = 3); use dkapi.Int.
	D *int
	// Spectral adds Laplacian spectrum bounds to both summaries.
	Spectral bool
	// Sample bounds BFS sources for distance metrics (0 = exact).
	Sample int
	// Seed drives Lanczos and sampled metrics (0 = 1).
	Seed int64
}

// GenerateOutput is a generated ensemble: the wire result summary plus
// the graphs themselves.
type GenerateOutput struct {
	Result dkapi.GenerateResult
	Graphs []*Graph
}

// SimulateOptions configures Simulate: which scenarios to run over the
// measured graph and its replica ensemble. See dkapi.ScenarioSpec for
// the per-kind knobs.
type SimulateOptions struct {
	// Scenarios lists the simulations to run (at least one).
	Scenarios []dkapi.ScenarioSpec
	// Seed drives all scenario randomness (0 = 1, the analysis-step
	// default); each (scenario, graph, trial) derives an independent
	// stream, so curves are identical at any worker count.
	Seed int64
}

// SimulateOutput is the result of a netsim run: the measured graph's
// descriptor plus the per-scenario measured-vs-ensemble curves.
type SimulateOutput struct {
	Graph        dkapi.GraphInfo        `json:"graph"`
	Seed         int64                  `json:"seed"`
	EnsembleSize int                    `json:"ensemble_size"`
	Scenarios    []dkapi.ScenarioCurves `json:"scenarios"`
}

// Extract computes the dK-profile of g (with optional metrics) in a
// fresh Session. ctx cancels between pipeline steps.
func Extract(ctx context.Context, g *Graph, opts ExtractOptions) (*dkapi.ExtractResponse, error) {
	return NewSession().Extract(ctx, g, opts)
}

// Generate builds a dK-random ensemble from g in a fresh Session.
func Generate(ctx context.Context, g *Graph, opts GenerateOptions) (*GenerateOutput, error) {
	return NewSession().Generate(ctx, g, opts)
}

// Compare reports D_d distances and metric summaries for two graphs in
// a fresh Session.
func Compare(ctx context.Context, a, b *Graph, opts CompareOptions) (*dkapi.CompareResponse, error) {
	return NewSession().Compare(ctx, a, b, opts)
}

// Simulate runs scenario simulations — percolation robustness, SI worm
// spread, degree-greedy routing — over g and its dK-random ensemble in
// a fresh Session, reducing them into measured-vs-ensemble comparison
// curves (the paper's behavioral-equivalence evidence).
func Simulate(ctx context.Context, g *Graph, ensemble []*Graph, opts SimulateOptions) (*SimulateOutput, error) {
	return NewSession().Simulate(ctx, g, ensemble, opts)
}

// RunPipeline executes a declarative pipeline in a fresh Session. Graph
// references may use edges/dataset forms; hash references resolve only
// if the session has seen the topology (use Session.Add first).
func RunPipeline(ctx context.Context, req dkapi.PipelineRequest) (*PipelineOutput, error) {
	return NewSession().Run(ctx, req)
}

// datasetGraph synthesizes a built-in dataset with the same names,
// bounds, and error classification as the service's dataset registry.
func datasetGraph(name string, seed int64, n int) (*graph.CSR, error) {
	return service.SynthesizeDataset(name, seed, n)
}
