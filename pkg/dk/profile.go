package dk

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/pkg/dkapi"
)

// Profile is the dK-profile type appearing in extract results; it
// marshals to the stable sorted-key JSON of the wire format.
type Profile = dkapi.Profile

// GenerateFromProfile constructs a replica ensemble directly from an
// extracted profile, without a source graph — the paper's §4
// construction methods (stochastic, pseudograph, matching, targeting).
// Method "randomize" is rejected: dK-preserving rewiring needs the
// original graph; use Generate for that. Replica i derives its own
// seed stream, identically to Generate and the HTTP service.
func GenerateFromProfile(p *Profile, opts GenerateOptions) ([]*Graph, error) {
	d := 2
	if opts.D != nil {
		d = *opts.D
	}
	if d < 0 || d > 3 {
		return nil, fmt.Errorf("depth d=%d outside 0..3", d)
	}
	method, randomize, err := pipeline.ParseMethod(opts.Method)
	if err != nil {
		return nil, err
	}
	if randomize {
		return nil, fmt.Errorf("method randomize needs a source graph; use Generate")
	}
	replicas := opts.Replicas
	if replicas == 0 {
		replicas = 1
	}
	graphs, err := generate.Replicas(replicas, opts.Seed, func(i int, rng *rand.Rand) (*graph.CSR, error) {
		return core.Generate(p, d, method, core.Options{Rng: rng})
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Graph, len(graphs))
	for i, g := range graphs {
		out[i] = wrap(g, nil)
	}
	return out, nil
}

// Connect returns a connected copy of g, produced by degree-preserving
// edge swaps (Viger–Latapy). isolated counts degree-0 nodes that cannot
// be attached degree-preservingly. The input is untouched. When
// connecting the replicas of an ensemble, derive one seed per replica
// (e.g. parallel.SubSeed) — a shared seed would correlate the swap
// sequences across what are meant to be independent samples.
func Connect(g *Graph, seed int64) (out *Graph, isolated int, err error) {
	clone := g.g.Clone()
	isolated, err = generate.ConnectViaSwaps(clone, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, 0, err
	}
	return wrap(clone, nil), isolated, nil
}

// GenerateStream is Generate with bounded memory: replica i is built,
// handed to emit, and released — peak memory is one graph per worker
// instead of the whole ensemble. Seeds derive exactly like Generate
// (parallel.SubSeed(seed, i)), so the graphs are identical to a batch
// run; emit runs concurrently across replicas and must be safe for
// that (writing each replica to its own file is the intended shape).
// Compare is not supported here — it needs the replicas' profiles,
// which defeats the point of streaming; use Generate.
func (s *Session) GenerateStream(ctx context.Context, src *Graph, opts GenerateOptions, emit func(i int, g *Graph) error) error {
	if opts.Compare {
		return fmt.Errorf("GenerateStream does not support Compare; use Generate")
	}
	d := 2
	if opts.D != nil {
		d = *opts.D
	}
	if d < 0 || d > 3 {
		return fmt.Errorf("depth d=%d outside 0..3", d)
	}
	method, randomize, err := pipeline.ParseMethod(opts.Method)
	if err != nil {
		return err
	}
	if !randomize && d == 3 && opts.Method != "targeting" {
		return fmt.Errorf("d=3 generation from a distribution supports only method=targeting or method=randomize")
	}
	replicas := opts.Replicas
	if replicas == 0 {
		replicas = 1
	}
	// Resolve through the session so the profile extraction is cached
	// like every other execution path.
	ref := s.Add(src)
	h, err := backend{s}.Resolve(ref)
	if err != nil {
		return err
	}
	var profile *Profile
	if !randomize {
		profile, _, err = h.Profile(d)
		if err != nil {
			return err
		}
	}
	base := h.Graph()
	return parallel.ForErr(replicas, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(parallel.SubSeed(opts.Seed, i)))
		var out *graph.CSR
		var err error
		if randomize {
			ropts := generate.RandomizeOptions{Rng: rng}
			if opts.OnRewireProgress != nil {
				replica := i
				ropts.OnProgress = func(p generate.RewireProgress) {
					opts.OnRewireProgress(replica, RewireProgress{
						Sweep:                 p.Sweep,
						Attempts:              p.Attempts,
						Accepted:              p.Accepted,
						WindowAttempts:        p.WindowAttempts,
						WindowAccepted:        p.WindowAccepted,
						AcceptanceRate:        p.AcceptanceRate,
						RejectedSelfLoop:      p.Rejected.SelfLoop,
						RejectedDuplicateEdge: p.Rejected.DuplicateEdge,
						RejectedJDDMismatch:   p.Rejected.JDDMismatch,
						RejectedCensusChanged: p.Rejected.CensusChanged,
						RejectedObjective:     p.Rejected.Objective,
						RejectedDisconnected:  p.Rejected.Disconnected,
					})
				}
			}
			var st generate.RewireStats
			out, st, err = generate.Randomize(base, d, ropts)
			if err == nil && opts.OnRewireStats != nil {
				opts.OnRewireStats(i, RewireStats{
					Attempts:              st.Attempts,
					Accepted:              st.Accepted,
					Reverted:              st.Reverted,
					RejectedSelfLoop:      st.Rejected.SelfLoop,
					RejectedDuplicateEdge: st.Rejected.DuplicateEdge,
					RejectedJDDMismatch:   st.Rejected.JDDMismatch,
					RejectedCensusChanged: st.Rejected.CensusChanged,
					RejectedObjective:     st.Rejected.Objective,
					RejectedDisconnected:  st.Rejected.Disconnected,
				})
			}
		} else {
			out, err = core.Generate(profile, d, method, core.Options{Rng: rng})
		}
		if err != nil {
			return err
		}
		return emit(i, wrap(out, nil))
	})
}
