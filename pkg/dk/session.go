package dk

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	dkprof "repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/pkg/dkapi"
)

// Session is a local execution context: an in-process content-addressed
// cache of graphs and their extracted profiles/summaries — the same
// cache type a dkserved instance runs — plus the pipeline executor over
// it. Repeated operations against the same topology inside one session
// skip recomputation exactly like repeated requests against one server.
// A Session is safe for concurrent use.
type Session struct {
	cache  *service.Cache
	limits pipeline.Limits
}

// SessionOptions tunes a Session. The zero value matches a default
// dkserved instance (64 cache entries, 128 max replicas, 32 max steps).
type SessionOptions struct {
	// CacheEntries bounds the content-addressed cache (default 64).
	CacheEntries int
	// MaxReplicas bounds one generate step's ensemble (default 128).
	MaxReplicas int
	// MaxPipelineSteps bounds one pipeline's step count (default 32).
	MaxPipelineSteps int
	// MaxPipelineReplicas bounds the summed ensemble size across all
	// generate steps of one pipeline (default 512).
	MaxPipelineReplicas int
}

// NewSession returns a Session with default options.
func NewSession() *Session { return NewSessionWith(SessionOptions{}) }

// NewSessionWith returns a Session with the given options.
func NewSessionWith(opts SessionOptions) *Session {
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 64
	}
	return &Session{
		cache: service.NewCache(opts.CacheEntries),
		limits: pipeline.Limits{
			MaxSteps:         opts.MaxPipelineSteps,
			MaxReplicas:      opts.MaxReplicas,
			MaxTotalReplicas: opts.MaxPipelineReplicas,
		},
	}
}

// Add interns a graph into the session and returns the hash reference
// later pipeline steps (or other calls on this session) can use for it.
func (s *Session) Add(g *Graph) dkapi.GraphRef {
	s.cache.Intern(g.g, g.labels)
	return dkapi.GraphRef{Hash: g.hash}
}

// backend adapts the session cache to the pipeline executor — the
// in-process twin of the service's backend.
type backend struct{ s *Session }

func (b backend) Resolve(ref dkapi.GraphRef) (pipeline.Handle, error) {
	switch {
	case ref.Step != "":
		return nil, fmt.Errorf("step references are only valid inside pipeline steps")
	case ref.File != "":
		return nil, fmt.Errorf("file references are resolved client-side; inline the edge list first")
	case ref.Hash != "":
		e := b.s.cache.Get(service.Hash(ref.Hash))
		if e == nil {
			return nil, fmt.Errorf("hash %s not in this session (Session.Add the graph first)", ref.Hash)
		}
		return handle{e}, nil
	case ref.Edges != "":
		g, err := ParseGraph(ref.Edges)
		if err != nil {
			return nil, err
		}
		e, _ := b.s.cache.Intern(g.g, g.labels)
		return handle{e}, nil
	case ref.Dataset != "":
		raw, err := datasetGraph(ref.Dataset, ref.Seed, ref.N)
		if err != nil {
			return nil, err
		}
		e, _ := b.s.cache.Intern(raw, nil)
		return handle{e}, nil
	default:
		return nil, fmt.Errorf("graph reference must set exactly one of hash, edges, dataset")
	}
}

func (b backend) Intern(g *graph.CSR) pipeline.Handle {
	// Detached, exactly like the server backend: registering a replica
	// ensemble in the bounded session LRU could evict the source graphs
	// later steps still reference by hash — a pipeline would then fail
	// locally while succeeding remotely.
	return handle{service.NewDetachedEntry(g)}
}

// handle is a cache entry viewed through the executor interface.
type handle struct{ e *service.Entry }

func (h handle) Graph() *graph.CSR { return h.e.Graph() }

func (h handle) Info() dkapi.GraphInfo {
	n, m := h.e.Size()
	return dkapi.GraphInfo{Hash: string(h.e.Hash()), N: n, M: m}
}

func (h handle) Profile(d int) (*dkprof.Profile, bool, error) { return h.e.Profile(d) }

func (h handle) Summary(spectral bool, sample int, seed int64) (metrics.Summary, bool, error) {
	return h.e.Summary(spectral, sample, seed)
}

// graphOf rebuilds a facade Graph from an executor handle.
func graphOf(h pipeline.Handle) *Graph {
	info := h.Info()
	return &Graph{g: h.Graph(), hash: info.Hash}
}

// StepGraphs pairs a generate/randomize step id with its replica
// graphs, in step order.
type StepGraphs struct {
	StepID string
	Graphs []*Graph
}

// PipelineOutput bundles the deterministic wire result with the
// generated graphs.
type PipelineOutput struct {
	Result *dkapi.PipelineResult
	Graphs []StepGraphs
}

// WriteFiles writes every generated replica to dir as
// "<step>.<index>.txt" edge lists — the same bytes a remote run
// downloads from the job's bulk result. It creates dir if needed.
func (p *PipelineOutput) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sg := range p.Graphs {
		for i, g := range sg.Graphs {
			path := filepath.Join(dir, fmt.Sprintf("%s.%d.txt", sg.StepID, i))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := g.WriteEdgeList(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run validates and executes a declarative pipeline on this session.
// ctx cancels between steps. External graph references resolve against
// the session (hashes added via Add, inline edges, datasets); step
// references resolve against the run's own outputs.
func (s *Session) Run(ctx context.Context, req dkapi.PipelineRequest) (*PipelineOutput, error) {
	if err := pipeline.Validate(req, s.limits); err != nil {
		return nil, err
	}
	out, err := pipeline.Run(ctx, backend{s}, req, nil)
	if err != nil {
		return nil, err
	}
	po := &PipelineOutput{Result: out.Result}
	for _, sg := range out.Graphs {
		gs := make([]*Graph, len(sg.Handles))
		for i, h := range sg.Handles {
			gs[i] = graphOf(h)
		}
		po.Graphs = append(po.Graphs, StepGraphs{StepID: sg.StepID, Graphs: gs})
	}
	return po, nil
}

// runStep validates and executes a single step.
func (s *Session) runStep(ctx context.Context, step dkapi.PipelineStep) (*dkapi.StepResult, *PipelineOutput, error) {
	out, err := s.Run(ctx, dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{step}})
	if err != nil {
		return nil, nil, err
	}
	return &out.Result.Steps[0], out, nil
}

// Extract computes the dK-profile of g (with optional metrics). The
// response's Cached field reports whether this session had already
// extracted the profile.
func (s *Session) Extract(ctx context.Context, g *Graph, opts ExtractOptions) (*dkapi.ExtractResponse, error) {
	ref := s.Add(g)
	res, _, err := s.runStep(ctx, dkapi.PipelineStep{
		ID: "extract", Op: dkapi.OpExtract,
		Source:   &ref,
		D:        opts.D,
		Metrics:  opts.Metrics,
		Spectral: opts.Spectral,
		Sample:   opts.Sample,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &dkapi.ExtractResponse{
		Graph: *res.Graph, Cached: res.Cached, Profile: res.Profile, Summary: res.Summary,
	}, nil
}

// Generate builds a dK-random ensemble from g — the local twin of
// POST /v1/generate, sharing its executor, defaults, and validation.
func (s *Session) Generate(ctx context.Context, g *Graph, opts GenerateOptions) (*GenerateOutput, error) {
	ref := s.Add(g)
	res, out, err := s.runStep(ctx, dkapi.PipelineStep{
		ID: "generate", Op: dkapi.OpGenerate,
		Source:   &ref,
		D:        opts.D,
		Method:   opts.Method,
		Replicas: opts.Replicas,
		Seed:     opts.Seed,
		Compare:  opts.Compare,
	})
	if err != nil {
		return nil, err
	}
	return &GenerateOutput{
		Result: dkapi.GenerateResult{
			Source: *res.Graph, D: res.D, Method: res.Method,
			Seed: res.Seed, Replicas: res.Replicas,
		},
		Graphs: out.Graphs[0].Graphs,
	}, nil
}

// Simulate runs scenario simulations over g and its replica ensemble —
// the local twin of a netsim pipeline step, sharing its executor,
// validation, and determinism contract. The ensemble may be empty
// (measured-only curves, no band).
func (s *Session) Simulate(ctx context.Context, g *Graph, ensemble []*Graph, opts SimulateOptions) (*SimulateOutput, error) {
	ref := s.Add(g)
	refs := make([]dkapi.GraphRef, len(ensemble))
	for i, e := range ensemble {
		refs[i] = s.Add(e)
	}
	res, _, err := s.runStep(ctx, dkapi.PipelineStep{
		ID: "netsim", Op: dkapi.OpNetsim,
		Source:    &ref,
		Ensemble:  refs,
		Scenarios: opts.Scenarios,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &SimulateOutput{
		Graph: *res.Graph, Seed: res.Seed,
		EnsembleSize: res.EnsembleSize, Scenarios: res.Scenarios,
	}, nil
}

// Compare reports D_d for every depth up to opts.D plus both metric
// summaries — the local twin of POST /v1/compare.
func (s *Session) Compare(ctx context.Context, a, b *Graph, opts CompareOptions) (*dkapi.CompareResponse, error) {
	ra, rb := s.Add(a), s.Add(b)
	res, _, err := s.runStep(ctx, dkapi.PipelineStep{
		ID: "compare", Op: dkapi.OpCompare,
		A: &ra, B: &rb,
		D:        opts.D,
		Spectral: opts.Spectral,
		Sample:   opts.Sample,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &dkapi.CompareResponse{
		A: *res.A, B: *res.B,
		Distances: res.Distances,
		SummaryA:  *res.SummaryA, SummaryB: *res.SummaryB,
	}, nil
}
