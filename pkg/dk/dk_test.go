package dk_test

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/parallel"
	"repro/pkg/dk"
	"repro/pkg/dkapi"
)

func mustGraph(t *testing.T, edges string) *dk.Graph {
	t.Helper()
	g, err := dk.ParseGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestExtractCachedSemantics: within one session, the second extraction
// of the same topology is a cache hit; the profile bytes are identical.
func TestExtractCachedSemantics(t *testing.T) {
	ctx := context.Background()
	s := dk.NewSession()
	g := mustGraph(t, "0 1\n1 2\n2 0\n2 3\n")

	first, err := s.Extract(ctx, g, dk.ExtractOptions{D: dkapi.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first extraction claims cached")
	}
	second, err := s.Extract(ctx, g, dk.ExtractOptions{D: dkapi.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("shallower re-extraction did not hit the session cache")
	}
	if first.Graph != second.Graph {
		t.Fatalf("graph infos differ: %+v vs %+v", first.Graph, second.Graph)
	}
}

// TestGenerateWorkerInvariance: the ensemble is a pure function of
// (seed, replicas) at any worker count.
func TestGenerateWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	g, err := dk.DatasetGraph("hot", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	runAt := func(workers int) string {
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(0)
		out, err := dk.Generate(ctx, g, dk.GenerateOptions{
			D: dkapi.Int(2), Replicas: 4, Seed: 11, Compare: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, rg := range out.Graphs {
			if err := rg.WriteEdgeList(&sb); err != nil {
				t.Fatal(err)
			}
		}
		res, _ := json.Marshal(out.Result)
		return string(res) + sb.String()
	}
	if runAt(1) != runAt(8) {
		t.Fatal("generate output depends on the worker count")
	}
}

// TestSimulateWorkerInvariance: scenario curves are a pure function of
// (specs, seed) at any worker count — the netsim determinism contract,
// checked on the serialized JSON so ordering and float formatting are
// pinned too.
func TestSimulateWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	g, err := dk.DatasetGraph("hot", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := dk.Generate(ctx, g, dk.GenerateOptions{D: dkapi.Int(2), Replicas: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := dk.SimulateOptions{
		Scenarios: []dkapi.ScenarioSpec{
			{Kind: dkapi.ScenarioRobustness, Fracs: []float64{0, 0.2, 0.4, 0.6}, Trials: 3},
			{Kind: dkapi.ScenarioEpidemic, Beta: 0.4, Rounds: 16, Trials: 3},
			{Kind: dkapi.ScenarioRouting, Pairs: 16, TTL: 64, Trials: 3},
		},
		Seed: 11,
	}
	runAt := func(workers int) string {
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(0)
		out, err := dk.Simulate(ctx, g, gen.Graphs, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := runAt(1)
	for _, w := range []int{2, 4, 8} {
		if got := runAt(w); got != base {
			t.Fatalf("simulate output at %d workers differs from 1 worker:\n%s\nvs\n%s", w, got, base)
		}
	}
	if !strings.Contains(base, `"divergence"`) {
		t.Fatal("ensemble run missing divergence summary")
	}
}

// TestPipelineStepRefs: step outputs feed later inputs, including
// replica selection, and the result is deterministic.
func TestPipelineStepRefs(t *testing.T) {
	ctx := context.Background()
	req := dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{
		{ID: "ext", Op: dkapi.OpExtract, Source: &dkapi.GraphRef{Dataset: "hot", Seed: 3}, D: dkapi.Int(2)},
		{ID: "rnd", Op: dkapi.OpRandomize, Source: &dkapi.GraphRef{Step: "ext"}, D: dkapi.Int(2), Replicas: 2, Seed: 4},
		{ID: "cen", Op: dkapi.OpCensus, Source: &dkapi.GraphRef{Step: "rnd", Replica: 1}},
		{ID: "met", Op: dkapi.OpMetrics, Source: &dkapi.GraphRef{Step: "rnd", Replica: 0}},
	}}
	out1, err := dk.RunPipeline(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1.Result.Steps) != 4 {
		t.Fatalf("got %d steps, want 4", len(out1.Result.Steps))
	}
	if out1.Result.Steps[2].Census == nil {
		t.Fatal("census step has no census")
	}
	if out1.Result.Steps[3].Summary == nil {
		t.Fatal("metrics step has no summary")
	}
	out2, err := dk.RunPipeline(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(out1.Result)
	b2, _ := json.Marshal(out2.Result)
	if string(b1) != string(b2) {
		t.Fatal("two runs of the same pipeline differ")
	}
}

// TestPipelineReplicasDontEvictSources: generated replicas are held as
// detached entries, so a big ensemble cannot churn a hash-referenced
// source graph out of the bounded session cache mid-pipeline (which
// would fail a pipeline locally that succeeds against a server).
func TestPipelineReplicasDontEvictSources(t *testing.T) {
	ctx := context.Background()
	s := dk.NewSessionWith(dk.SessionOptions{CacheEntries: 2})
	g := mustGraph(t, "0 1\n1 2\n2 0\n2 3\n3 4\n4 0\n")
	ref := s.Add(g)
	out, err := s.Run(ctx, dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{
		{ID: "gen", Op: dkapi.OpGenerate, Source: &ref, D: dkapi.Int(1), Replicas: 6, Seed: 2},
		{ID: "met", Op: dkapi.OpMetrics, Source: &ref},
	}})
	if err != nil {
		t.Fatalf("hash ref stopped resolving after replica fan-out: %v", err)
	}
	if out.Result.Steps[1].Graph.Hash != g.Hash() {
		t.Fatal("metrics step resolved a different graph")
	}
}

// TestPipelineValidationErrors: the facade rejects malformed pipelines
// without running anything.
func TestPipelineValidationErrors(t *testing.T) {
	ctx := context.Background()
	_, err := dk.RunPipeline(ctx, dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{
		{ID: "x", Op: "teleport", Source: &dkapi.GraphRef{Dataset: "paw"}},
	}})
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v, want unknown op", err)
	}
}

// TestContextCancellation: a canceled context stops the pipeline
// between steps.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := dk.RunPipeline(ctx, dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{
		{ID: "m", Op: dkapi.OpMetrics, Source: &dkapi.GraphRef{Dataset: "paw"}},
	}})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err = %v, want context cancellation", err)
	}
}

// TestGenerateFromProfile: profile-driven construction is deterministic
// and honors the requested degree sequence (matching is exact at d=1).
func TestGenerateFromProfile(t *testing.T) {
	ctx := context.Background()
	g, err := dk.DatasetGraph("hot", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := dk.Extract(ctx, g, dk.ExtractOptions{D: dkapi.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := dk.GenerateFromProfile(ext.Profile, dk.GenerateOptions{
		D: dkapi.Int(1), Method: "matching", Replicas: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 2 {
		t.Fatalf("got %d graphs, want 2", len(graphs))
	}
	for _, rg := range graphs {
		if rg.N() != g.N() || rg.M() != g.M() {
			t.Fatalf("matching replica %dx%d, want %dx%d (exact realization)",
				rg.N(), rg.M(), g.N(), g.M())
		}
	}
	if _, err := dk.GenerateFromProfile(ext.Profile, dk.GenerateOptions{Method: "randomize"}); err == nil {
		t.Fatal("randomize from a bare profile should be rejected")
	}
}

// TestGenerateStreamRewireProgress: the convergence callback fires for
// every randomizing replica with sane, monotone samples — and wiring it
// up never changes the generated graphs.
func TestGenerateStreamRewireProgress(t *testing.T) {
	ctx := context.Background()
	g, err := dk.DatasetGraph("hot", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts dk.GenerateOptions) map[int]string {
		out := map[int]string{}
		var mu sync.Mutex
		err := dk.NewSession().GenerateStream(ctx, g, opts, func(i int, rg *dk.Graph) error {
			var sb strings.Builder
			if err := rg.WriteEdgeList(&sb); err != nil {
				return err
			}
			mu.Lock()
			out[i] = sb.String()
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	var mu sync.Mutex
	samples := map[int][]dk.RewireProgress{}
	traced := run(dk.GenerateOptions{
		D: dkapi.Int(2), Replicas: 3, Seed: 5,
		OnRewireProgress: func(replica int, p dk.RewireProgress) {
			mu.Lock()
			samples[replica] = append(samples[replica], p)
			mu.Unlock()
		},
	})
	if len(samples) != 3 {
		t.Fatalf("progress from %d replicas, want 3", len(samples))
	}
	for replica, ps := range samples {
		prev := 0
		for _, p := range ps {
			if p.Attempts <= prev {
				t.Fatalf("replica %d: attempts not increasing: %v", replica, ps)
			}
			prev = p.Attempts
			if p.WindowAttempts <= 0 || p.AcceptanceRate < 0 || p.AcceptanceRate > 1 {
				t.Fatalf("replica %d: bad sample %+v", replica, p)
			}
			rejected := p.RejectedSelfLoop + p.RejectedDuplicateEdge + p.RejectedJDDMismatch +
				p.RejectedCensusChanged + p.RejectedObjective + p.RejectedDisconnected
			if p.WindowAccepted+rejected > p.WindowAttempts {
				t.Fatalf("replica %d: window counts exceed attempts: %+v", replica, p)
			}
		}
	}

	plain := run(dk.GenerateOptions{D: dkapi.Int(2), Replicas: 3, Seed: 5})
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("replica %d differs with the progress callback attached", i)
		}
	}
}
