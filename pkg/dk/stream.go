package dk

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// SplitReplicaStream parses a bulk job-result stream — concatenated
// replica edge lists, each introduced by a "# replica <i>" (generate
// jobs) or "# step <id> replica <i>" (pipeline jobs) marker line — into
// graphs, in stream order. Re-serializing each graph with WriteEdgeList
// reproduces the stream's bytes, which is how remote CLI runs write the
// same files a local run does.
func SplitReplicaStream(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []*Graph
	var cur *strings.Builder
	flush := func() error {
		if cur == nil {
			return nil
		}
		g, err := ParseGraph(cur.String())
		if err != nil {
			return fmt.Errorf("replica %d: %w", len(out), err)
		}
		out = append(out, g)
		cur = nil
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# replica ") || strings.HasPrefix(line, "# step ") {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &strings.Builder{}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("stream did not start with a replica marker (got %q)", line)
		}
		cur.WriteString(line)
		cur.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}
