// Command dkctl is the one front door to the dK toolkit: every
// operation of the paper's workflow — extraction, generation,
// comparison, and whole declarative pipelines — against either the
// in-process engine (default) or a remote dkserved instance
// (-server http://…). Local and remote runs of the same operation
// produce byte-identical output.
//
//	dkctl extract -d 2 -metrics graph.txt
//	dkctl extract dataset:hot:7
//	dkctl generate -d 2 -replicas 10 -seed 42 -out ens graph.txt
//	dkctl compare -d 2 a.txt b.txt
//	dkctl netsim -trials 4 -seed 7 graph.txt ens.0.txt ens.1.txt
//	dkctl pipeline example > p.json
//	dkctl pipeline run -out results/ p.json
//	dkctl -server http://localhost:8080 pipeline run p.json
//	dkctl -server http://localhost:8080 datasets|stats|health|job j000001
//	dkctl -server http://localhost:8080 trace j000001
//
// Graph arguments are edge-list file paths ("-" = stdin) or
// "dataset:name[:seed[:n]]" references to built-in topologies. In
// remote mode, generate/compare/pipeline file inputs are content-hashed
// locally and only uploaded when the server does not already know the
// topology; extract uploads its body outright (the upload IS the
// interning request).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/pkg/dk"
	"repro/pkg/dkapi"
	"repro/pkg/dkclient"
)

const tool = "dkctl"

func usage() {
	fmt.Fprintf(os.Stderr, `usage: dkctl [-server URL] [-workers N] <command> [flags] [args]

commands:
  extract   [-d 3] [-metrics] [-spectral] [-sample N] [-seed S] <graph>
  generate  [-d 2] [-method M] [-replicas N] [-seed S] [-compare] [-out PREFIX] <graph>
  compare   [-d 3] [-spectral] [-sample N] [-seed S] <graph-a> <graph-b>
  netsim    [-scenarios FILE] [-trials N] [-seed S] <graph> [replica ...]
  pipeline  run [-out DIR] <pipeline.json|->   execute a declarative pipeline
  pipeline  example                            print a sample pipeline spec
  datasets                                     list built-in datasets
  health                                       liveness + readiness (-server only)
  stats                                        service counters (-server only)
  job       <id>                               poll a job (-server only)
  trace     <id>                               render a job's execution trace (-server only)

<graph> is an edge-list file ("-" = stdin) or dataset:name[:seed[:n]].
`)
	os.Exit(2)
}

func main() {
	common := &cli.Common{}
	flag.StringVar(&common.Server, "server", "", "dkserved base URL (empty = run locally, in-process)")
	flag.IntVar(&common.Workers, "workers", 0, "worker goroutines (0 = all cores; results are identical for any value)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Usage = usage
	flag.Parse()
	if cli.Version(tool, *showVersion) {
		return
	}
	common.Apply()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var err error
	switch args[0] {
	case "extract":
		err = cmdExtract(common, args[1:])
	case "generate":
		err = cmdGenerate(common, args[1:])
	case "compare":
		err = cmdCompare(common, args[1:])
	case "netsim":
		err = cmdNetsim(common, args[1:])
	case "pipeline":
		err = cmdPipeline(common, args[1:])
	case "datasets":
		err = cmdDatasets(common)
	case "health":
		err = cmdHealth(common)
	case "stats":
		err = cmdStats(common)
	case "job":
		err = cmdJob(common, args[1:])
	case "trace":
		err = cmdTrace(common, args[1:])
	default:
		usage()
	}
	if err != nil {
		cli.Fatal(tool, err)
	}
}

// needRemote guards server-only commands.
func needRemote(c *cli.Common, what string) (*dkclient.Client, error) {
	if !c.Remote() {
		return nil, fmt.Errorf("%s needs -server (there is no local service to ask)", what)
	}
	return c.Client()
}

func cmdExtract(c *cli.Common, args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	d := fs.Int("d", 3, "extraction depth (0..3)")
	metrics := fs.Bool("metrics", false, "add the scalar metric summary of the giant component")
	spectral := fs.Bool("spectral", false, "add Laplacian spectrum bounds to the summary")
	sample := fs.Int("sample", 0, "BFS source sample size for distance metrics (0 = exact)")
	seed := fs.Int64("seed", 1, "seed for sampling/Lanczos and dataset synthesis")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("extract needs exactly one graph argument")
	}
	ref, err := cli.LoadGraphArg(fs.Arg(0))
	if err != nil {
		return err
	}
	var resp *dkapi.ExtractResponse
	if c.Remote() {
		cl, err := c.Client()
		if err != nil {
			return err
		}
		opts := dkclient.ExtractOptions{
			D: d, Metrics: *metrics, Spectral: *spectral, Sample: *sample, Seed: *seed,
		}
		if ref.Dataset != "" {
			// The synthesis seed travels as ?dseed so the remote server
			// builds exactly the graph a local run synthesizes — the
			// sampling -seed stays independent.
			opts.Dataset, opts.N = ref.Dataset, ref.N
			opts.DatasetSeed = dkapi.Int64(ref.Seed)
		}
		resp, err = cl.ExtractEdges(cli.Ctx(), ref.Edges, opts)
		if err != nil {
			return err
		}
	} else {
		g, err := cli.ResolveLocal(ref)
		if err != nil {
			return err
		}
		resp, err = dk.Extract(cli.Ctx(), g, dk.ExtractOptions{
			D: d, Metrics: *metrics, Spectral: *spectral, Sample: *sample, Seed: *seed,
		})
		if err != nil {
			return err
		}
	}
	return cli.PrintJSON(os.Stdout, resp)
}

func cmdGenerate(c *cli.Common, args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	d := fs.Int("d", 2, "dK depth (0..3)")
	method := fs.String("method", "randomize", "randomize | stochastic | pseudograph | matching | targeting")
	replicas := fs.Int("replicas", 1, "ensemble size")
	seed := fs.Int64("seed", 0, "base seed (replica i derives an independent stream)")
	compare := fs.Bool("compare", false, "report each replica's D_d distance to the source profile")
	out := fs.String("out", "", "write replica edge lists to PREFIX.<i>.txt (empty = summary only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("generate needs exactly one graph argument")
	}
	ref, err := cli.LoadGraphArg(fs.Arg(0))
	if err != nil {
		return err
	}
	if c.Remote() {
		cl, err := c.Client()
		if err != nil {
			return err
		}
		rref, err := cli.RemoteRef(cl, ref)
		if err != nil {
			return err
		}
		res, jobID, err := cl.GenerateWait(cli.Ctx(), dkapi.GenerateRequest{
			Source: rref, D: d, Method: *method,
			Replicas: *replicas, Seed: *seed, Compare: *compare,
		})
		if err != nil {
			return err
		}
		if *out != "" {
			body, err := cl.JobResult(cli.Ctx(), jobID)
			if err != nil {
				return err
			}
			defer body.Close()
			if err := cli.SplitStreamToFiles(body, func(marker string) (string, bool) {
				var i int
				if _, err := fmt.Sscanf(marker, "# replica %d", &i); err != nil {
					return "", false
				}
				return fmt.Sprintf("%s.%d.txt", *out, i), true
			}); err != nil {
				return err
			}
		}
		return cli.PrintJSON(os.Stdout, res)
	}
	g, err := cli.ResolveLocal(ref)
	if err != nil {
		return err
	}
	res, err := dk.Generate(cli.Ctx(), g, dk.GenerateOptions{
		D: d, Method: *method, Replicas: *replicas, Seed: *seed, Compare: *compare,
	})
	if err != nil {
		return err
	}
	if *out != "" {
		for i, rg := range res.Graphs {
			if err := writeGraphFile(fmt.Sprintf("%s.%d.txt", *out, i), rg); err != nil {
				return err
			}
		}
	}
	return cli.PrintJSON(os.Stdout, res.Result)
}

func cmdCompare(c *cli.Common, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	d := fs.Int("d", 3, "maximum dK depth to compare (0..3)")
	spectral := fs.Bool("spectral", false, "include Laplacian spectrum bounds")
	sample := fs.Int("sample", 0, "BFS source sample size for distance metrics (0 = exact)")
	seed := fs.Int64("seed", 1, "seed for Lanczos and sampled metrics")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("compare needs exactly two graph arguments")
	}
	ra, err := cli.LoadGraphArg(fs.Arg(0))
	if err != nil {
		return err
	}
	rb, err := cli.LoadGraphArg(fs.Arg(1))
	if err != nil {
		return err
	}
	var resp *dkapi.CompareResponse
	if c.Remote() {
		cl, err := c.Client()
		if err != nil {
			return err
		}
		if ra, err = cli.RemoteRef(cl, ra); err != nil {
			return err
		}
		if rb, err = cli.RemoteRef(cl, rb); err != nil {
			return err
		}
		resp, err = cl.Compare(cli.Ctx(), dkapi.CompareRequest{
			A: ra, B: rb, D: d, Spectral: *spectral, Sample: *sample, Seed: *seed,
		})
		if err != nil {
			return err
		}
	} else {
		ga, err := cli.ResolveLocal(ra)
		if err != nil {
			return err
		}
		gb, err := cli.ResolveLocal(rb)
		if err != nil {
			return err
		}
		resp, err = dk.Compare(cli.Ctx(), ga, gb, dk.CompareOptions{
			D: d, Spectral: *spectral, Sample: *sample, Seed: *seed,
		})
		if err != nil {
			return err
		}
	}
	return cli.PrintJSON(os.Stdout, resp)
}

// cmdNetsim runs scenario simulations — percolation robustness, SI worm
// spread, degree-greedy routing — over a measured graph and an optional
// replica ensemble, reducing them into measured-vs-ensemble comparison
// curves. Both modes execute the same single-step netsim pipeline, so
// local and -server runs print byte-identical JSON.
func cmdNetsim(c *cli.Common, args []string) error {
	fs := flag.NewFlagSet("netsim", flag.ExitOnError)
	specs := fs.String("scenarios", "", `JSON scenario list file ("-" = stdin; empty = default robustness+epidemic+routing set)`)
	trials := fs.Int("trials", 1, "trials per graph for the default scenarios (ignored with -scenarios)")
	seed := fs.Int64("seed", 0, "base seed (every scenario, graph, and trial derives an independent stream)")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("netsim needs a measured graph argument (ensemble graphs may follow)")
	}
	scenarios, err := loadScenarios(*specs, *trials)
	if err != nil {
		return err
	}
	src, err := cli.LoadGraphArg(fs.Arg(0))
	if err != nil {
		return err
	}
	ensemble := make([]dkapi.GraphRef, fs.NArg()-1)
	for i := range ensemble {
		if ensemble[i], err = cli.LoadGraphArg(fs.Arg(i + 1)); err != nil {
			return err
		}
	}
	req := dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{{
		ID: "netsim", Op: dkapi.OpNetsim, Source: &src,
		Ensemble: ensemble, Scenarios: scenarios, Seed: *seed,
	}}}
	var res *dkapi.StepResult
	if c.Remote() {
		cl, err := c.Client()
		if err != nil {
			return err
		}
		if err := cli.RemotePipelineRefs(cl, &req); err != nil {
			return err
		}
		st := req.Steps[0]
		res, err = cl.Simulate(cli.Ctx(), *st.Source, st.Ensemble, st.Scenarios, st.Seed)
		if err != nil {
			return err
		}
	} else {
		po, err := dk.RunPipeline(cli.Ctx(), req)
		if err != nil {
			return err
		}
		res = &po.Result.Steps[0]
	}
	return cli.PrintJSON(os.Stdout, res)
}

// loadScenarios reads a []dkapi.ScenarioSpec JSON file, or falls back to
// the default scenario set: the paper's three behavioral probes with
// conventional knobs.
func loadScenarios(path string, trials int) ([]dkapi.ScenarioSpec, error) {
	if path == "" {
		fracs := make([]float64, 10)
		for i := range fracs {
			fracs[i] = float64(i) / 10
		}
		return []dkapi.ScenarioSpec{
			{Kind: dkapi.ScenarioRobustness, Fracs: fracs, Trials: trials},
			{Kind: dkapi.ScenarioRobustness, Fracs: fracs, Targeted: true, Trials: trials},
			{Kind: dkapi.ScenarioEpidemic, Beta: 0.5, Trials: trials},
			{Kind: dkapi.ScenarioRouting, Trials: trials},
		}, nil
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var specs []dkapi.ScenarioSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("parse scenarios %s: %w", path, err)
	}
	return specs, nil
}

func cmdPipeline(c *cli.Common, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("pipeline needs a subcommand: run | example")
	}
	switch args[0] {
	case "example":
		return cli.PrintJSON(os.Stdout, examplePipeline())
	case "run":
	default:
		return fmt.Errorf("unknown pipeline subcommand %q (want run | example)", args[0])
	}
	fs := flag.NewFlagSet("pipeline run", flag.ExitOnError)
	out := fs.String("out", "", "write generated replicas to DIR as <step>.<i>.txt")
	fs.Parse(args[1:])
	if fs.NArg() != 1 {
		return fmt.Errorf("pipeline run needs exactly one spec file argument (or -)")
	}
	req, err := cli.LoadPipeline(fs.Arg(0))
	if err != nil {
		return err
	}
	if c.Remote() {
		cl, err := c.Client()
		if err != nil {
			return err
		}
		// Inline-edges refs (typically from {"file": ...} inputs) become
		// hash refs when the server already knows the topology.
		if err := cli.RemotePipelineRefs(cl, &req); err != nil {
			return err
		}
		res, jobID, err := cl.RunPipeline(cli.Ctx(), req)
		if err != nil {
			return err
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			body, err := cl.JobResult(cli.Ctx(), jobID)
			if err != nil {
				if !dkclient.IsNotFound(err) {
					return err
				}
				// A pipeline without generate steps has no bulk result.
			} else {
				defer body.Close()
				if err := cli.SplitStreamToFiles(body, func(marker string) (string, bool) {
					var step string
					var i int
					if _, err := fmt.Sscanf(marker, "# step %s replica %d", &step, &i); err != nil {
						return "", false
					}
					return filepath.Join(*out, fmt.Sprintf("%s.%d.txt", step, i)), true
				}); err != nil {
					return err
				}
			}
		}
		return cli.PrintJSON(os.Stdout, res)
	}
	po, err := dk.RunPipeline(cli.Ctx(), req)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := po.WriteFiles(*out); err != nil {
			return err
		}
	}
	return cli.PrintJSON(os.Stdout, po.Result)
}

// examplePipeline is the paper's workflow as a declarative spec: profile
// the HOT reference topology, build a 2K-random ensemble, compare a
// replica against the original.
func examplePipeline() dkapi.PipelineRequest {
	return dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{
		{ID: "ext", Op: dkapi.OpExtract, Source: &dkapi.GraphRef{Dataset: "hot", Seed: 7}, D: dkapi.Int(2)},
		{ID: "gen", Op: dkapi.OpGenerate, Source: &dkapi.GraphRef{Step: "ext"},
			D: dkapi.Int(2), Replicas: 3, Seed: 42, Compare: true},
		{ID: "cmp", Op: dkapi.OpCompare,
			A: &dkapi.GraphRef{Step: "ext"},
			B: &dkapi.GraphRef{Step: "gen", Replica: 0},
			D: dkapi.Int(2)},
	}}
}

func cmdDatasets(c *cli.Common) error {
	if c.Remote() {
		cl, err := c.Client()
		if err != nil {
			return err
		}
		list, err := cl.Datasets(cli.Ctx())
		if err != nil {
			return err
		}
		return cli.PrintJSON(os.Stdout, list)
	}
	return cli.PrintJSON(os.Stdout, service.BuiltinDatasets())
}

func cmdHealth(c *cli.Common) error {
	cl, err := needRemote(c, "health")
	if err != nil {
		return err
	}
	h, err := cl.Health(cli.Ctx())
	if err != nil {
		return err
	}
	r, err := cl.Ready(cli.Ctx())
	if err != nil {
		return err
	}
	return cli.PrintJSON(os.Stdout, map[string]any{"health": h, "ready": r})
}

func cmdStats(c *cli.Common) error {
	cl, err := needRemote(c, "stats")
	if err != nil {
		return err
	}
	st, err := cl.Stats(cli.Ctx())
	if err != nil {
		return err
	}
	return cli.PrintJSON(os.Stdout, st)
}

func cmdJob(c *cli.Common, args []string) error {
	cl, err := needRemote(c, "job")
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("job needs exactly one job-id argument")
	}
	env, err := cl.Job(cli.Ctx(), args[0])
	if err != nil {
		return err
	}
	return cli.PrintJSON(os.Stdout, env)
}

// cmdTrace fetches a finished job's execution trace and renders it as a
// text timeline: the span tree with per-span self-time, then the
// rewiring convergence curve of every generate replica. -raw dumps the
// JSONL instead. A malformed trace (decode or validation failure) exits
// nonzero.
func cmdTrace(c *cli.Common, args []string) error {
	cl, err := needRemote(c, "trace")
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	raw := fs.Bool("raw", false, "print the trace as raw JSONL instead of a timeline")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("trace needs exactly one job-id argument")
	}
	data, err := cl.JobTrace(cli.Ctx(), fs.Arg(0))
	if err != nil {
		return err
	}
	if *raw {
		_, err := os.Stdout.Write(data)
		return err
	}
	d, err := trace.DecodeBytes(data)
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("job %s: malformed trace: %w", fs.Arg(0), err)
	}
	return d.WriteTimeline(os.Stdout)
}

// writeGraphFile writes one graph as an edge-list file.
func writeGraphFile(path string, g *dk.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
