// Command dkload is the service load harness: the stressgen counterpart
// of dkbench. Where dkbench times the library's hot paths in-process,
// dkload derives a randomized-but-valid request stream — mixed extract,
// generate, compare, pipeline, and stats traffic — from a single seed
// and replays it against a live dkserved, reporting per-route latency
// percentiles, throughput, and the error/backpressure budget.
//
// The stream is a pure function of (profile, seed): request i is built
// from an RNG seeded with SubSeed(seed, i) and nothing else, so two runs
// with the same flags send byte-identical traffic (-dump proves it) and
// report deltas are attributable to the server alone. The committed
// BENCH_load.json at the repository root carries the reference run and
// the SLO thresholds CI gates against.
//
//	dkload -server http://127.0.0.1:8080                  # steady → BENCH_load.json
//	dkload -server ... -profile smoke -concurrency 4      # the CI profile
//	dkload -verify BENCH_load.json                        # schema/completeness (offline)
//	dkload -server ... -gate BENCH_load.json              # fresh run vs committed SLO
//	dkload -dump -profile smoke -seed 7                   # print the stream, no server
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro/internal/cli"
	"repro/internal/load"
)

func main() {
	server := flag.String("server", "", "dkserved base URL (required unless -dump or -verify)")
	profileName := flag.String("profile", "steady", "load profile: smoke|steady")
	seed := flag.Int64("seed", 2, "request-stream seed")
	requests := flag.Int("requests", 0, "override the profile's request count")
	concurrency := flag.Int("concurrency", 8, "replay workers")
	clientID := flag.String("client-id", "dkload", "X-Client-Id sent with every request")
	out := flag.String("out", "BENCH_load.json", "report output path")
	dump := flag.Bool("dump", false, "print the generated request stream and exit (no server needed)")
	verify := flag.String("verify", "", "verify an existing report's schema/completeness and exit")
	gate := flag.String("gate", "", "run, then gate the fresh run against this report's SLO")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if cli.Version("dkload", *showVersion) {
		return
	}
	if *verify != "" {
		rep, err := readReport(*verify)
		if err == nil {
			err = load.Verify(rep)
		}
		if err != nil {
			fatalf("verify %s: %v", *verify, err)
		}
		fmt.Printf("%s: schema %s complete\n", *verify, load.SchemaVersion)
		return
	}

	// -gate replays the committed report's own profile and seed — the gate
	// is only meaningful against the exact stream the thresholds were set
	// for. Otherwise the profile/seed flags pick the stream.
	var committed *load.Report
	var p load.Profile
	if *gate != "" {
		rep, err := readReport(*gate)
		if err != nil {
			fatalf("gate %s: %v", *gate, err)
		}
		if err := load.Verify(rep); err != nil {
			fatalf("gate %s: committed report invalid: %v", *gate, err)
		}
		committed = rep
		p = rep.Profile
		*seed = rep.Seed
	} else {
		var ok bool
		p, ok = load.Profiles()[*profileName]
		if !ok {
			names := make([]string, 0, len(load.Profiles()))
			for name := range load.Profiles() {
				names = append(names, name)
			}
			sort.Strings(names)
			fatalf("unknown profile %q (have %v)", *profileName, names)
		}
	}
	if *requests > 0 {
		p.Requests = *requests
	}
	reqs, err := load.Generate(p, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	if *dump {
		if err := load.WriteStream(os.Stdout, reqs); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *server == "" {
		fatalf("-server is required (or -dump / -verify)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := &load.Runner{
		Server:      *server,
		Concurrency: *concurrency,
		ClientID:    *clientID,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dkload: "+format+"\n", args...)
		},
	}
	fmt.Fprintf(os.Stderr, "dkload: replaying %d requests (profile %s, seed %d) against %s with %d workers\n",
		len(reqs), p.Name, *seed, *server, *concurrency)
	rep, err := runner.Run(ctx, p, *seed, reqs)
	if err != nil {
		fatalf("run: %v", err)
	}
	rep.SLO = load.DefaultSLO(p)

	if committed != nil {
		rep.SLO = committed.SLO
		load.Summarize(os.Stderr, rep)
		if violations := load.Gate(rep, committed.SLO); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "dkload: SLO violation: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("gate passed: %d requests within the %s SLO\n", rep.Totals.Requests, *gate)
		return
	}

	load.Summarize(os.Stderr, rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// readReport loads and decodes a BENCH_load.json.
func readReport(path string) (*load.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep load.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dkload: "+format+"\n", args...)
	os.Exit(1)
}
