// Command dkstore administers a dkserved persistent artifact store: the
// content-addressed directory of binary graph and profile artifacts plus
// the job journal that -data-dir points dkserved at (see docs/STORAGE.md
// for the format spec and GC semantics).
//
//	dkstore -data-dir DIR ls                 list stored graphs and profile depths
//	dkstore -data-dir DIR info HASH          artifact detail for one graph
//	dkstore -data-dir DIR gc                 sweep temp/corrupt/orphaned artifacts
//	dkstore -data-dir DIR import FILE        text edge list -> binary artifact
//	dkstore -data-dir DIR export HASH        binary artifact -> text edge list (stdout)
//	dkstore -data-dir DIR jobs               folded job journal states
//	dkstore -data-dir DIR bench              decode/fetch benchmark -> BENCH_store.json
//
// import/export bridge the two wire formats: import parses a text edge
// list (the format every CLI and the HTTP API accept) and stores it
// binary; export writes the stored graph back out as text with its
// original node labels, so round-tripping through the store is lossless.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/store"
)

func main() {
	dataDir := flag.String("data-dir", "", "artifact store directory (required)")
	showVersion := flag.Bool("version", false, "print version and exit")
	benchN := flag.Int("bench-n", 9204, "bench: synthetic topology size (default: paper-scale skitter)")
	benchD := flag.Int("bench-d", 2, "bench: profile extraction depth 0..3")
	benchOut := flag.String("bench-out", "BENCH_store.json", "bench: output path for the JSON report")
	flag.Usage = usage
	flag.Parse()
	// dkstore is local by construction: it administers the on-disk
	// artifact directory itself, which a remote server cannot do for us.
	if cli.Version("dkstore", *showVersion) {
		return
	}
	args := flag.Args()
	if *dataDir == "" || len(args) == 0 {
		usage()
		os.Exit(2)
	}
	st, err := store.Open(*dataDir)
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	switch cmd := args[0]; cmd {
	case "ls":
		err = runLs(st)
	case "info":
		err = withHashArg(args, func(h string) error { return runInfo(st, h) })
	case "gc":
		err = runGC(st)
	case "import":
		if len(args) != 2 {
			err = fmt.Errorf("usage: dkstore -data-dir DIR import FILE")
		} else {
			err = runImport(st, args[1])
		}
	case "export":
		err = withHashArg(args, func(h string) error { return runExport(st, h) })
	case "jobs":
		err = runJobs(st)
	case "bench":
		err = runBench(st, *benchN, *benchD, *benchOut)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `dkstore administers a dkserved artifact store (-data-dir).

usage: dkstore -data-dir DIR COMMAND [ARG]

commands:
  ls             list stored graphs with sizes and profile depths
  info HASH      detail for one graph (checksum-verified)
  gc             remove temp, corrupt, orphaned artifacts; compact journal
  import FILE    parse a text edge list and store it binary (prints hash)
  export HASH    write a stored graph as a text edge list to stdout
  jobs           print folded job-journal states
  bench          decode/fetch benchmark; writes -bench-out (BENCH_store.json)

flags:
`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dkstore: %v\n", err)
	os.Exit(1)
}

func withHashArg(args []string, f func(hash string) error) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: dkstore -data-dir DIR %s HASH", args[0])
	}
	hash := args[1]
	if !strings.HasPrefix(hash, "sha256:") {
		hash = "sha256:" + hash
	}
	return f(hash)
}

func runLs(st *store.Store) error {
	infos, err := st.ListGraphs()
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Println("store is empty")
		return nil
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-71s %9s %9s %10s %s\n", "HASH", "N", "M", "BYTES", "PROFILES")
	for _, gi := range infos {
		depths := make([]string, 0, len(gi.ProfileDepths))
		for _, d := range gi.ProfileDepths {
			depths = append(depths, fmt.Sprintf("d%d", d))
		}
		prof := strings.Join(depths, ",")
		if prof == "" {
			prof = "-"
		}
		fmt.Fprintf(w, "%-71s %9d %9d %10d %s\n", gi.Hash, gi.N, gi.M, gi.Bytes, prof)
	}
	return nil
}

func runInfo(st *store.Store, hash string) error {
	g, labels, err := st.GetGraph(hash, graph.ReadLimits{})
	if err != nil {
		return err
	}
	fmt.Printf("hash:       %s\n", hash)
	fmt.Printf("nodes:      %d\n", g.N())
	fmt.Printf("edges:      %d\n", g.M())
	fmt.Printf("avg degree: %.4f\n", g.AvgDegree())
	fmt.Printf("max degree: %d\n", g.MaxDegree())
	fmt.Printf("labels:     %v\n", labels != nil)
	if got := graph.ContentHash(g, labels); got != hash {
		fmt.Printf("WARNING: content re-hash %s does not match artifact name\n", got)
	}
	depths := st.ProfileDepths(hash)
	if len(depths) == 0 {
		fmt.Println("profiles:   none")
		return nil
	}
	for _, d := range depths {
		p, err := st.GetProfile(hash, d)
		if err != nil {
			fmt.Printf("profile d%d: UNREADABLE: %v\n", d, err)
			continue
		}
		status := "ok"
		if err := p.Validate(); err != nil {
			status = "INVALID: " + err.Error()
		}
		fmt.Printf("profile d%d: stored depth %d, %s\n", d, p.D, status)
	}
	return nil
}

func runGC(st *store.Store) error {
	rep, err := st.GC()
	// Print whatever the sweep accomplished even if it ended in error.
	fmt.Printf("temp files removed:     %d\n", rep.TempFiles)
	fmt.Printf("corrupt graphs removed: %d\n", rep.CorruptGraphs)
	fmt.Printf("corrupt profiles:       %d\n", rep.CorruptProfiles)
	fmt.Printf("orphan profiles:        %d\n", rep.OrphanProfiles)
	fmt.Printf("foreign files removed:  %d\n", rep.ForeignFiles)
	if rep.JournalSkipped {
		fmt.Println("journal compaction:     skipped (journal owned by a live server)")
	} else {
		fmt.Printf("journal records purged: %d\n", rep.JournalDropped)
	}
	return err
}

func runImport(st *store.Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, labels, err := graph.ReadEdgeList(bufio.NewReader(f))
	if err != nil {
		return err
	}
	c := g.CSR()
	hash := graph.ContentHash(c, labels)
	if err := st.PutGraph(hash, c, labels); err != nil {
		return err
	}
	fmt.Println(hash)
	return nil
}

func runExport(st *store.Store, hash string) error {
	g, labels, err := st.GetGraph(hash, graph.ReadLimits{})
	if err != nil {
		return err
	}
	// The canonical edge list re-applies the stored label table, so the
	// export round-trips the original edge set and its content hash.
	return graph.WriteCanonicalEdgeList(os.Stdout, g, labels)
}

func runJobs(st *store.Store) error {
	states, err := st.Journal().Replay()
	if err != nil {
		return err
	}
	if len(states) == 0 {
		fmt.Println("journal is empty")
		return nil
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-10s %-10s %-10s %s\n", "ID", "KIND", "STATUS", "ERROR")
	for _, s := range states {
		fmt.Fprintf(w, "%-10s %-10s %-10s %s\n", s.ID, s.Kind, s.Status, s.Error)
	}
	return nil
}
