package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/datasets"
	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/store"
)

// benchReport is the schema of BENCH_store.json: the store's perf
// trajectory in one file — binary-vs-text decode of a paper-scale
// topology and cold-recompute-vs-disk-fetch of its profile.
type benchReport struct {
	N           int     `json:"n"`
	M           int     `json:"m"`
	TextBytes   int     `json:"text_bytes"`
	BinaryBytes int     `json:"binary_bytes"`
	SizeRatio   float64 `json:"size_ratio"` // text / binary

	TextDecodeMs   float64 `json:"text_decode_ms"`
	BinaryDecodeMs float64 `json:"binary_decode_ms"`
	DecodeSpeedup  float64 `json:"decode_speedup"` // text / binary

	ProfileD       int     `json:"profile_d"`
	ExtractMs      float64 `json:"profile_extract_ms"`    // cold: recompute from the graph
	DiskFetchMs    float64 `json:"profile_disk_fetch_ms"` // warm: decode from the disk tier
	ProfileSpeedup float64 `json:"profile_speedup"`       // extract / fetch
}

// runBench measures the store's two performance claims on a synthetic
// paper-scale topology (skitter-like, n nodes) and writes the report to
// out. The graph artifacts are staged in the store so the profile fetch
// exercises the same path a restarted server takes.
func runBench(st *store.Store, n, d int, out string) error {
	if d < 0 || d > 3 {
		return fmt.Errorf("bench: depth %d outside 0..3", d)
	}
	fmt.Fprintf(os.Stderr, "bench: synthesizing skitter-like topology n=%d...\n", n)
	// Seed 2: the first seed whose degree sequence avoids a matching
	// deadlock at the paper-scale default size.
	g, err := datasets.Skitter(datasets.SkitterConfig{N: n, Seed: 2})
	if err != nil {
		return err
	}
	rep := benchReport{N: g.N(), M: g.M(), ProfileD: d}

	var text, bin bytes.Buffer
	if err := graph.WriteEdgeList(&text, g); err != nil {
		return err
	}
	if err := graph.WriteBinaryCSR(&bin, g, nil); err != nil {
		return err
	}
	rep.TextBytes = text.Len()
	rep.BinaryBytes = bin.Len()
	rep.SizeRatio = float64(text.Len()) / float64(bin.Len())

	const iters = 15
	rep.TextDecodeMs, err = timeIt(iters, func() error {
		_, _, err := graph.ReadEdgeList(bytes.NewReader(text.Bytes()))
		return err
	})
	if err != nil {
		return err
	}
	rep.BinaryDecodeMs, err = timeIt(iters, func() error {
		_, _, err := graph.ReadBinary(bytes.NewReader(bin.Bytes()))
		return err
	})
	if err != nil {
		return err
	}
	rep.DecodeSpeedup = rep.TextDecodeMs / rep.BinaryDecodeMs

	hash := graph.ContentHash(g, nil)
	if err := st.PutGraph(hash, g, nil); err != nil {
		return err
	}
	var profile *dk.Profile
	rep.ExtractMs, err = timeIt(1, func() error {
		p, err := dk.Extract(g, d)
		profile = p
		return err
	})
	if err != nil {
		return err
	}
	if err := st.PutProfile(hash, profile); err != nil {
		return err
	}
	rep.DiskFetchMs, err = timeIt(iters, func() error {
		_, err := st.GetProfile(hash, d)
		return err
	})
	if err != nil {
		return err
	}
	rep.ProfileSpeedup = rep.ExtractMs / rep.DiskFetchMs

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"bench: n=%d m=%d | text %d B -> binary %d B (%.1fx smaller) | decode %.1f ms -> %.1f ms (%.1fx) | profile d%d extract %.1f ms -> fetch %.2f ms (%.0fx)\n",
		rep.N, rep.M, rep.TextBytes, rep.BinaryBytes, rep.SizeRatio,
		rep.TextDecodeMs, rep.BinaryDecodeMs, rep.DecodeSpeedup,
		d, rep.ExtractMs, rep.DiskFetchMs, rep.ProfileSpeedup)
	fmt.Printf("wrote %s\n", out)
	return nil
}

// timeIt runs f once to warm up, then iters timed runs, and returns the
// mean wall-clock milliseconds. Single-shot measurements (iters == 1,
// used for the expensive profile extraction) skip the warm-up — for a
// deterministic CPU-bound run it would only double the bench's cost.
func timeIt(iters int, f func() error) (float64, error) {
	if iters > 1 {
		if err := f(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() * 1000 / float64(iters), nil
}
