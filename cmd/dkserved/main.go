// Command dkserved is the dK topology service: a long-running HTTP
// server exposing the full pipeline of the paper — profile extraction,
// dK-random graph generation, topology comparison, and declarative
// multi-step pipelines — with a content-addressed profile cache and an
// asynchronous job queue.
//
//	dkserved -addr :8080 -workers 8 -data-dir /var/lib/dkserved
//
// With -data-dir set, the cache gains a persistent disk tier (uploaded
// graphs and extracted profiles survive restarts as binary artifacts)
// and the job engine journals every state transition, re-queuing
// incomplete jobs on startup; see docs/STORAGE.md. Empty -data-dir keeps
// the historical in-memory behavior.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST /v1/extract            edge list → dK-profile (+ metrics)
//	POST /v1/generate           profile/graph → replica ensemble (async)
//	POST /v1/pipelines          declarative multi-step workflow (async)
//	GET  /v1/jobs/{id}          poll job status, progress, result summary
//	GET  /v1/jobs/{id}/result   stream replica edge lists
//	GET  /v1/jobs/{id}/trace    fetch a finished job's execution trace (JSONL)
//	POST /v1/compare            D_d distances + metric side-by-side
//	GET  /v1/graphs/{hash}      does the server know this topology?
//	GET  /v1/datasets           built-in reference topologies
//	GET  /v1/stats              version, cache/job/route counters
//	GET  /v1/healthz            liveness
//	GET  /v1/readyz             readiness (store + job engine + drain)
//	GET  /metrics               Prometheus text exposition of the stats
//
// With -rate-limit set, each client (X-Client-Id header, else remote
// IP) gets a token bucket of that many requests per second; exhausted
// clients receive 429 with Retry-After. Health probes and /metrics are
// exempt. Interactive work (extract, read-only pipelines) is prioritized
// over batch generation in the job queue regardless of rate limiting.
//
// On SIGTERM/SIGINT the server drains gracefully: /v1/readyz flips to
// 503 so load balancers stop routing to it, the listener shuts down
// once in-flight requests finish, and running jobs are allowed to
// complete before the process exits (queued-but-unstarted jobs are
// failed and journaled, so nothing is silently lost).
//
// The -workers flag bounds the process-wide worker budget shared by the
// job engine and every parallel metric sweep; as everywhere in this
// repository, worker count never changes results, only wall-clock time.
//
// Profiling: -pprof (off by default) additionally mounts the standard
// net/http/pprof handlers under /debug/pprof/ on the same listener —
// CPU/heap/goroutine profiles of a live server, e.g.
//
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//
// The endpoints expose internals and cost CPU while profiling, so keep
// the flag off outside debugging sessions (see docs/PERF.md). Coarser
// always-on timings — cumulative per-phase generation cost — are served
// unconditionally in the "phases" section of GET /v1/stats.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "process-wide worker budget shared by jobs and metric sweeps")
	dataDir := flag.String("data-dir", "", "persistent artifact store directory (empty = in-memory only; see docs/STORAGE.md)")
	cacheEntries := flag.Int("cache", 64, "content-addressed graph cache capacity (entries)")
	maxBody := flag.Int64("max-body", 32<<20, "request body size limit in bytes")
	maxReplicas := flag.Int("max-replicas", 128, "replica cap per generate job")
	maxSteps := flag.Int("max-pipeline-steps", 32, "step cap per pipeline request")
	maxPipelineReplicas := flag.Int("max-pipeline-replicas", 512, "summed replica cap across one pipeline's generate steps")
	jobRunners := flag.Int("job-runners", 0, "concurrent job executors (0 = worker budget)")
	jobQueue := flag.Int("job-queue", 64, "queued-job bound (full queue returns 429)")
	jobRetain := flag.Int("job-retain", 256, "finished jobs retained for polling")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate in req/s (0 = no rate limiting)")
	rateBurst := flag.Int("rate-burst", 0, "per-client burst capacity (0 = 2×rate)")
	accessLog := flag.Bool("access-log", true, "log one structured line per request")
	tracing := flag.Bool("tracing", true, "record execution traces for jobs and ?trace=1 requests (see docs/OBSERVABILITY.md)")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (debugging only)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "maximum time to wait for in-flight HTTP requests on shutdown")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if cli.Version("dkserved", *showVersion) {
		return
	}
	parallel.SetWorkers(*workers)

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir)
		if err != nil {
			log.Fatalf("dkserved: %v", err)
		}
		defer st.Close()
		if !st.Exclusive() {
			log.Fatalf("dkserved: data dir %s is in use by another process (journal lock held)", *dataDir)
		}
		stats := st.Stats()
		log.Printf("dkserved: artifact store %s: %d graphs, %d profiles", *dataDir, stats.Graphs, stats.Profiles)
	}

	opts := service.Options{
		CacheEntries:        *cacheEntries,
		MaxBodyBytes:        *maxBody,
		MaxReplicas:         *maxReplicas,
		MaxPipelineSteps:    *maxSteps,
		MaxPipelineReplicas: *maxPipelineReplicas,
		JobRunners:          *jobRunners,
		JobQueue:            *jobQueue,
		JobRetain:           *jobRetain,
		RatePerSec:          *rateLimit,
		RateBurst:           *rateBurst,
		Store:               st,
		DisableTracing:      !*tracing,
	}
	if *accessLog {
		opts.AccessLog = log.Default()
	}
	srv := service.New(opts)
	if st != nil {
		if recovered := srv.JobStats().Recovered; recovered > 0 {
			log.Printf("dkserved: recovered %d incomplete jobs from the journal", recovered)
		}
	}

	// The service handler stays self-contained; pprof, when requested,
	// wraps it in an outer mux instead of leaking the debug routes into
	// the service's own routing (or the global DefaultServeMux).
	var handler http.Handler = srv
	if *enablePprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		log.Printf("dkserved: pprof enabled on /debug/pprof/ (debugging only)")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Drain sequence: advertise not-ready first (load balancers stop
		// routing), then stop the listener once in-flight requests
		// finish, then let running jobs complete. Queued jobs that never
		// started are failed and journaled by Close, so a restart with
		// the same -data-dir recovers nothing it shouldn't.
		log.Printf("dkserved: draining (readyz now 503)")
		srv.StartDraining()
		shutdownCtx, done := context.WithTimeout(context.Background(), *drainTimeout)
		defer done()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("dkserved %s listening on %s (workers=%d)", core.Version, *addr, parallel.Workers())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dkserved: %v", err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// HTTP drain, then for running jobs.
	cancel()
	<-drained
	start := time.Now()
	jobs := srv.JobStats()
	if jobs.Running > 0 || jobs.Queued > 0 {
		log.Printf("dkserved: waiting for %d running jobs (%d queued will be failed)", jobs.Running, jobs.Queued)
	}
	srv.Close()
	log.Printf("dkserved: drained in %v, bye", time.Since(start).Round(time.Millisecond))
}
