// Command dkserved is the dK topology service: a long-running HTTP
// server exposing the full pipeline of the paper — profile extraction,
// dK-random graph generation, and topology comparison — with a
// content-addressed profile cache and an asynchronous job queue.
//
//	dkserved -addr :8080 -workers 8 -data-dir /var/lib/dkserved
//
// With -data-dir set, the cache gains a persistent disk tier (uploaded
// graphs and extracted profiles survive restarts as binary artifacts)
// and the job engine journals every state transition, re-queuing
// incomplete jobs on startup; see docs/STORAGE.md. Empty -data-dir keeps
// the historical in-memory behavior.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST /v1/extract            edge list → dK-profile (+ metrics)
//	POST /v1/generate           profile/graph → replica ensemble (async)
//	GET  /v1/jobs/{id}          poll job status and result summary
//	GET  /v1/jobs/{id}/result   stream replica edge lists
//	POST /v1/compare            D_d distances + metric side-by-side
//	GET  /v1/datasets           built-in reference topologies
//	GET  /v1/stats              version, cache and job-engine counters
//
// The -workers flag bounds the process-wide worker budget shared by the
// job engine and every parallel metric sweep; as everywhere in this
// repository, worker count never changes results, only wall-clock time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "process-wide worker budget shared by jobs and metric sweeps")
	dataDir := flag.String("data-dir", "", "persistent artifact store directory (empty = in-memory only; see docs/STORAGE.md)")
	cacheEntries := flag.Int("cache", 64, "content-addressed graph cache capacity (entries)")
	maxBody := flag.Int64("max-body", 32<<20, "request body size limit in bytes")
	maxReplicas := flag.Int("max-replicas", 128, "replica cap per generate job")
	jobRunners := flag.Int("job-runners", 0, "concurrent job executors (0 = worker budget)")
	jobQueue := flag.Int("job-queue", 64, "queued-job bound (full queue returns 429)")
	jobRetain := flag.Int("job-retain", 256, "finished jobs retained for polling")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(core.VersionLine("dkserved"))
		return
	}
	parallel.SetWorkers(*workers)

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir)
		if err != nil {
			log.Fatalf("dkserved: %v", err)
		}
		defer st.Close()
		if !st.Exclusive() {
			log.Fatalf("dkserved: data dir %s is in use by another process (journal lock held)", *dataDir)
		}
		stats := st.Stats()
		log.Printf("dkserved: artifact store %s: %d graphs, %d profiles", *dataDir, stats.Graphs, stats.Profiles)
	}

	srv := service.New(service.Options{
		CacheEntries: *cacheEntries,
		MaxBodyBytes: *maxBody,
		MaxReplicas:  *maxReplicas,
		JobRunners:   *jobRunners,
		JobQueue:     *jobQueue,
		JobRetain:    *jobRetain,
		Store:        st,
	})
	defer srv.Close()
	if st != nil {
		if recovered := srv.JobStats().Recovered; recovered > 0 {
			log.Printf("dkserved: recovered %d incomplete jobs from the journal", recovered)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, done := context.WithTimeout(context.Background(), 10*time.Second)
		defer done()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("dkserved %s listening on %s (workers=%d)", core.Version, *addr, parallel.Workers())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dkserved: %v", err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain to finish before tearing the process down.
	cancel()
	<-drained
}
