// Command dkrepro regenerates the tables and figures of the paper's
// evaluation (Section 5) on the synthetic reference topologies.
//
//	dkrepro                      # run everything at small scale
//	dkrepro -exp table6,fig8     # selected experiments
//	dkrepro -scale paper         # paper-sized graphs (slow)
//	dkrepro -seeds 10 -seed 99   # averaging width and base seed
//	dkrepro -workers 4           # bound the worker pool (default: all cores)
//
// Output is plain text: tables match the paper's table rows; figures are
// printed as aligned x/series matrices ready for plotting. EXPERIMENTS.md
// in the repository root records a reference run against the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	common := &cli.Common{}
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all' (known: "+strings.Join(experiments.IDs(), ",")+")")
	scale := flag.String("scale", "small", "small | paper")
	seeds := flag.Int("seeds", 0, "graphs averaged per cell (0 = scale default)")
	seed := flag.Int64("seed", 42, "base random seed")
	flag.IntVar(&common.Workers, "workers", 0, "worker goroutines for metric sweeps and seed/topology fan-out (0 = all cores; results are identical for any value)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if cli.Version("dkrepro", *showVersion) {
		return
	}
	// Experiments drive the whole evaluation matrix in-process; there is
	// no -server mode (the remote API serves single operations and
	// pipelines, not the paper's table/figure sweeps).
	common.Apply()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{Seeds: *seeds, Seed: *seed}
	switch *scale {
	case "small":
		cfg.Scale = experiments.ScaleSmall
	case "paper":
		cfg.Scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "dkrepro: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	lab := experiments.NewLab(cfg)

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		if err := experiments.Run(lab, id, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dkrepro:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
