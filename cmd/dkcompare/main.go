// Command dkcompare quantifies how close two graphs are in dK terms: the
// D_d distances between their dK-distributions for every d up to the
// requested depth, plus a side-by-side of the scalar metric suite — the
// workflow of Figure 1's "comparison with the observed graphs" box.
//
//	dkcompare [-d 3] [-spectral] a.txt b.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

func main() {
	depth := flag.Int("d", 3, "maximum dK depth to compare (0..3)")
	spectral := flag.Bool("spectral", false, "include Laplacian spectrum bounds")
	seed := flag.Int64("seed", 1, "random seed for Lanczos")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the metric sweeps (results are identical for any value)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(core.VersionLine("dkcompare"))
		return
	}
	parallel.SetWorkers(*workers)
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dkcompare [flags] a.txt b.txt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *depth, *spectral, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dkcompare:", err)
		os.Exit(1)
	}
}

func load(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := graph.ReadEdgeList(f)
	return g, err
}

func run(pathA, pathB string, depth int, spectral bool, seed int64) error {
	a, err := load(pathA)
	if err != nil {
		return err
	}
	b, err := load(pathB)
	if err != nil {
		return err
	}
	pa, err := dk.ExtractGraph(a, depth)
	if err != nil {
		return err
	}
	pb, err := dk.ExtractGraph(b, depth)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %12s %12s\n", "", pathA, pathB)
	fmt.Printf("%-28s %12d %12d\n", "nodes", a.N(), b.N())
	fmt.Printf("%-28s %12d %12d\n", "edges", a.M(), b.M())
	fmt.Println()
	for d := 0; d <= depth; d++ {
		dist, err := dk.Distance(pa, pb, d)
		if err != nil {
			return err
		}
		fmt.Printf("D%d distance: %.6g\n", d, dist)
	}
	fmt.Println()
	rng := rand.New(rand.NewSource(seed))
	rep, err := core.Compare(a, b, core.Options{Rng: rng})
	if err != nil {
		if !spectral {
			// Fall back to non-spectral summaries (e.g. tiny graphs).
			ga, _ := graph.GiantComponent(a)
			gb, _ := graph.GiantComponent(b)
			sa, err2 := metrics.Summarize(ga.Static(), metrics.SummaryOptions{})
			if err2 != nil {
				return err
			}
			sb, err2 := metrics.Summarize(gb.Static(), metrics.SummaryOptions{})
			if err2 != nil {
				return err
			}
			rep = &core.ComparisonReport{A: sa, B: sb}
		} else {
			return err
		}
	}
	row := func(name string, va, vb float64) {
		fmt.Printf("%-28s %12.4g %12.4g\n", name, va, vb)
	}
	row("k̄ (GCC)", rep.A.AvgDegree, rep.B.AvgDegree)
	row("r", rep.A.R, rep.B.R)
	row("C̄", rep.A.CBar, rep.B.CBar)
	row("d̄", rep.A.DBar, rep.B.DBar)
	row("σd", rep.A.SigmaD, rep.B.SigmaD)
	row("S", rep.A.S, rep.B.S)
	row("S2", rep.A.S2, rep.B.S2)
	if spectral {
		row("λ1", rep.A.Lambda1, rep.B.Lambda1)
		row("λ(n−1)", rep.A.LambdaN, rep.B.LambdaN)
	}
	return nil
}
