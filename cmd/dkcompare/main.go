// Command dkcompare quantifies how close two graphs are in dK terms: the
// D_d distances between their dK-distributions for every d up to the
// requested depth, plus a side-by-side of the scalar metric suite — the
// workflow of Figure 1's "comparison with the observed graphs" box.
// It runs locally through the pkg/dk facade, or against a remote dK
// service with -server; both modes print identical reports.
//
//	dkcompare [-d 3] [-spectral] a.txt b.txt
//	dkcompare -server http://localhost:8080 a.txt dataset:hot:7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/pkg/dk"
	"repro/pkg/dkapi"
)

const tool = "dkcompare"

func main() {
	common := &cli.Common{}
	depth := flag.Int("d", 3, "maximum dK depth to compare (0..3)")
	spectral := flag.Bool("spectral", false, "include Laplacian spectrum bounds")
	sample := flag.Int("sample", 0, "BFS source sample size for distance metrics (0 = exact)")
	seed := flag.Int64("seed", 1, "random seed for Lanczos")
	flag.IntVar(&common.Workers, "workers", 0, "worker goroutines for the metric sweeps (0 = all cores; results are identical for any value)")
	flag.StringVar(&common.Server, "server", "", "dkserved base URL (empty = run locally)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if cli.Version(tool, *showVersion) {
		return
	}
	common.Apply()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dkcompare [flags] a.txt b.txt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(common, flag.Arg(0), flag.Arg(1), *depth, *spectral, *sample, *seed); err != nil {
		cli.Fatal(tool, err)
	}
}

func run(common *cli.Common, argA, argB string, depth int, spectral bool, sample int, seed int64) error {
	ra, err := cli.LoadGraphArg(argA)
	if err != nil {
		return err
	}
	rb, err := cli.LoadGraphArg(argB)
	if err != nil {
		return err
	}
	var resp *dkapi.CompareResponse
	if common.Remote() {
		c, err := common.Client()
		if err != nil {
			return err
		}
		// Ship hashes, not topologies, when the server already knows
		// the graphs.
		if ra, err = cli.RemoteRef(c, ra); err != nil {
			return err
		}
		if rb, err = cli.RemoteRef(c, rb); err != nil {
			return err
		}
		resp, err = c.Compare(cli.Ctx(), dkapi.CompareRequest{
			A: ra, B: rb, D: &depth, Spectral: spectral, Sample: sample, Seed: seed,
		})
		if err != nil {
			return err
		}
	} else {
		ga, err := cli.ResolveLocal(ra)
		if err != nil {
			return err
		}
		gb, err := cli.ResolveLocal(rb)
		if err != nil {
			return err
		}
		resp, err = dk.Compare(cli.Ctx(), ga, gb, dk.CompareOptions{
			D: &depth, Spectral: spectral, Sample: sample, Seed: seed,
		})
		if err != nil {
			return err
		}
	}
	render(resp, argA, argB, spectral)
	return nil
}

// render prints the comparison table from the wire response — one
// formatter for both execution modes.
func render(resp *dkapi.CompareResponse, nameA, nameB string, spectral bool) {
	fmt.Printf("%-28s %12s %12s\n", "", nameA, nameB)
	fmt.Printf("%-28s %12d %12d\n", "nodes", resp.A.N, resp.B.N)
	fmt.Printf("%-28s %12d %12d\n", "edges", resp.A.M, resp.B.M)
	fmt.Println()
	for _, de := range resp.Distances {
		fmt.Printf("D%d distance: %.6g\n", de.D, de.Value)
	}
	fmt.Println()
	row := func(name string, va, vb float64) {
		fmt.Printf("%-28s %12.4g %12.4g\n", name, va, vb)
	}
	row("k̄ (GCC)", resp.SummaryA.AvgDegree, resp.SummaryB.AvgDegree)
	row("r", resp.SummaryA.R, resp.SummaryB.R)
	row("C̄", resp.SummaryA.CBar, resp.SummaryB.CBar)
	row("d̄", resp.SummaryA.DBar, resp.SummaryB.DBar)
	row("σd", resp.SummaryA.SigmaD, resp.SummaryB.SigmaD)
	row("S", resp.SummaryA.S, resp.SummaryB.S)
	row("S2", resp.SummaryA.S2, resp.SummaryB.S2)
	if spectral {
		row("λ1", resp.SummaryA.Lambda1, resp.SummaryB.Lambda1)
		row("λ(n−1)", resp.SummaryA.LambdaN, resp.SummaryB.LambdaN)
	}
}
