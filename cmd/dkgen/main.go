// Command dkgen generates dK-random graphs, locally through the pkg/dk
// facade or against a remote dK service with -server. Given an input
// graph it can either produce dK-randomized counterparts (the paper's
// dK-randomizing rewiring) or extract the dK-distribution and construct
// fresh graphs from it by any supported method:
//
//	dkgen -d 2 -method randomize   -in skitter.txt -out out.txt
//	dkgen -d 2 -method pseudograph -in skitter.txt -out out.txt
//	dkgen -d 3 -method targeting   -in skitter.txt -out out.txt
//	dkgen -server http://localhost:8080 -d 2 -replicas 10 -in as.txt -out ens.txt
//
// Without -in, it synthesizes a reference topology first:
//
//	dkgen -dataset hot     -d 1 -method matching -out out.txt
//	dkgen -dataset skitter -skitter-n 2000 -d 2 -method targeting -out out.txt
//
// With -dot the output is Graphviz DOT (hubs highlighted) instead of an
// edge list, which regenerates the raw material of the paper's Figure 3;
// -dot and -connect are post-processing of the generated graphs and are
// local-only. With -replicas N > 1 the ensemble is written to <out>.0,
// <out>.1, … — one derived seed per replica, deterministic for a given
// -seed at any -workers value, and identical in local and remote mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/parallel"
	"repro/pkg/dk"
	"repro/pkg/dkapi"
)

const tool = "dkgen"

func main() {
	common := &cli.Common{}
	depth := flag.Int("d", 2, "dK depth (0..3)")
	method := flag.String("method", "randomize", "randomize | stochastic | pseudograph | matching | targeting")
	in := flag.String("in", "", "input edge-list file (omit to use -dataset)")
	dataset := flag.String("dataset", "skitter", "synthetic input when -in is omitted: skitter | hot | paw | petersen")
	skitterN := flag.Int("skitter-n", 2000, "node count for the synthetic skitter-like dataset")
	out := flag.String("out", "-", "output file (- = stdout); with -replicas > 1, files <out>.<i>")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of an edge list (local only)")
	hubThreshold := flag.Int("hub-threshold", 10, "DOT: highlight nodes with degree >= threshold (0 = off)")
	connect := flag.Bool("connect", false, "reconnect the result with degree-preserving swaps (Viger–Latapy; local only)")
	verbose := flag.Bool("v", false, "print per-replica rewiring stats with the rejection-reason breakdown to stderr (method=randomize, local only)")
	seed := flag.Int64("seed", 1, "random seed")
	replicas := flag.Int("replicas", 1, "number of independent graphs to generate (ensemble fan-out)")
	flag.IntVar(&common.Workers, "workers", 0, "worker goroutines for the replica fan-out (0 = all cores; results are identical for any value)")
	flag.StringVar(&common.Server, "server", "", "dkserved base URL (empty = run locally)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if cli.Version(tool, *showVersion) {
		return
	}
	common.Apply()

	cfg := config{
		depth: *depth, method: *method, in: *in, dataset: *dataset,
		skitterN: *skitterN, out: *out, dot: *dot, hubThreshold: *hubThreshold,
		connect: *connect, verbose: *verbose, seed: *seed, replicas: *replicas,
	}
	if err := run(common, cfg); err != nil {
		cli.Fatal(tool, err)
	}
}

type config struct {
	depth        int
	method       string
	in           string
	dataset      string
	skitterN     int
	out          string
	dot          bool
	hubThreshold int
	connect      bool
	verbose      bool
	seed         int64
	replicas     int
}

// sourceRef builds the input graph reference from -in or -dataset.
func sourceRef(cfg config) (dkapi.GraphRef, error) {
	if cfg.in != "" {
		return cli.LoadRef(dkapi.GraphRef{File: cfg.in})
	}
	ref := dkapi.GraphRef{Dataset: cfg.dataset, Seed: cfg.seed}
	if cfg.dataset == "skitter" {
		ref.N = cfg.skitterN
	}
	return ref, nil
}

func run(common *cli.Common, cfg config) error {
	if cfg.replicas > 1 && (cfg.out == "" || cfg.out == "-") {
		return fmt.Errorf("-replicas %d needs -out (stdout cannot hold an ensemble)", cfg.replicas)
	}
	ref, err := sourceRef(cfg)
	if err != nil {
		return err
	}
	if common.Remote() {
		if cfg.dot || cfg.connect {
			return fmt.Errorf("-dot and -connect are local post-processing; drop -server to use them")
		}
		return runRemote(common, cfg, ref)
	}
	return runLocal(cfg, ref)
}

// runLocal generates through the facade's streaming fan-out — each
// replica is built, post-processed (-connect, -dot), written, and
// released, so peak memory stays one graph per worker — not the whole
// ensemble.
func runLocal(cfg config, ref dkapi.GraphRef) error {
	src, err := cli.ResolveLocal(ref)
	if err != nil {
		return err
	}
	opts := dk.GenerateOptions{
		D: &cfg.depth, Method: cfg.method, Replicas: cfg.replicas, Seed: cfg.seed,
	}
	if cfg.verbose {
		// One Fprintf per replica keeps lines atomic under the concurrent
		// replica fan-out.
		opts.OnRewireStats = func(i int, st dk.RewireStats) {
			fmt.Fprintf(os.Stderr,
				"dkgen: replica %d: attempts=%d accepted=%d reverted=%d rejected[self-loop=%d duplicate-edge=%d jdd-mismatch=%d census-changed=%d objective=%d disconnected=%d]\n",
				i, st.Attempts, st.Accepted, st.Reverted,
				st.RejectedSelfLoop, st.RejectedDuplicateEdge, st.RejectedJDDMismatch,
				st.RejectedCensusChanged, st.RejectedObjective, st.RejectedDisconnected)
		}
	}
	session := dk.NewSession()
	return session.GenerateStream(cli.Ctx(), src, opts, func(i int, g *dk.Graph) error {
		if cfg.connect {
			// One derived seed per replica, offset past the generation
			// indices: a shared seed would correlate the swap sequences
			// across what are meant to be independent samples.
			connected, isolated, err := dk.Connect(g, parallel.SubSeed(cfg.seed, cfg.replicas+i))
			if err != nil {
				return fmt.Errorf("reconnect: %w", err)
			}
			if isolated > 0 {
				fmt.Fprintf(os.Stderr, "dkgen: %d isolated nodes cannot be attached degree-preservingly\n", isolated)
			}
			g = connected
		}
		return writeResult(replicaPath(cfg, i), g, cfg)
	})
}

// runRemote submits the generation and downloads the replica stream
// into the output files — the same bytes a local run writes.
func runRemote(common *cli.Common, cfg config, ref dkapi.GraphRef) error {
	c, err := common.Client()
	if err != nil {
		return err
	}
	if ref, err = cli.RemoteRef(c, ref); err != nil {
		return err
	}
	_, jobID, err := c.GenerateWait(cli.Ctx(), dkapi.GenerateRequest{
		Source: ref, D: &cfg.depth, Method: cfg.method,
		Replicas: cfg.replicas, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}
	body, err := c.JobResult(cli.Ctx(), jobID)
	if err != nil {
		return err
	}
	defer body.Close()
	// -dot is rejected in remote mode, so the downloaded edge lists are
	// the output; stream them straight to the replica files.
	if cfg.replicas <= 1 && (cfg.out == "" || cfg.out == "-") {
		graphs, err := dk.SplitReplicaStream(body)
		if err != nil {
			return err
		}
		return writeResult(cfg.out, graphs[0], cfg)
	}
	return cli.SplitStreamToFiles(body, func(marker string) (string, bool) {
		var i int
		if _, err := fmt.Sscanf(marker, "# replica %d", &i); err != nil {
			return "", false
		}
		return replicaPath(cfg, i), true
	})
}

// replicaPath names replica i's output file ("<out>.<i>" for ensembles,
// -out itself for a single graph).
func replicaPath(cfg config, i int) string {
	if cfg.replicas <= 1 {
		return cfg.out
	}
	return fmt.Sprintf("%s.%d", cfg.out, i)
}

func writeResult(out string, g *dk.Graph, cfg config) error {
	w, closeFn, err := openOutput(out)
	if err != nil {
		return err
	}
	defer closeFn()
	if cfg.dot {
		return g.WriteDOT(w, fmt.Sprintf("%dK", cfg.depth), cfg.hubThreshold)
	}
	return g.WriteEdgeList(w)
}

func openOutput(out string) (io.Writer, func(), error) {
	if out == "" || out == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
