// Command dkgen generates dK-random graphs.
//
// Given an input graph it can either produce a dK-randomized counterpart
// (the paper's dK-randomizing rewiring) or extract the dK-distribution
// and construct a fresh graph from it by any supported method:
//
//	dkgen -d 2 -method randomize  -in skitter.txt -out out.txt
//	dkgen -d 2 -method pseudograph -in skitter.txt -out out.txt
//	dkgen -d 3 -method targeting   -in skitter.txt -out out.txt
//
// Without -in, it synthesizes a reference topology first:
//
//	dkgen -dataset hot     -d 1 -method matching -out out.txt
//	dkgen -dataset skitter -skitter-n 2000 -d 2 -method targeting -out out.txt
//
// With -dot the output is Graphviz DOT (hubs highlighted) instead of an
// edge list, which regenerates the raw material of the paper's Figure 3.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/generate"
	"repro/internal/graph"
)

func main() {
	depth := flag.Int("d", 2, "dK depth (0..3)")
	method := flag.String("method", "randomize", "randomize | stochastic | pseudograph | matching | targeting")
	in := flag.String("in", "", "input edge-list file (omit to use -dataset)")
	dataset := flag.String("dataset", "skitter", "synthetic input when -in is omitted: skitter | hot | paw | petersen")
	skitterN := flag.Int("skitter-n", 2000, "node count for the synthetic skitter-like dataset")
	out := flag.String("out", "-", "output file (- = stdout)")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of an edge list")
	hubThreshold := flag.Int("hub-threshold", 10, "DOT: highlight nodes with degree >= threshold (0 = off)")
	connect := flag.Bool("connect", false, "reconnect the result with degree-preserving swaps (Viger–Latapy)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*depth, *method, *in, *dataset, *skitterN, *out, *dot, *hubThreshold, *connect, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dkgen:", err)
		os.Exit(1)
	}
}

func run(depth int, method, in, dataset string, skitterN int, out string, dot bool, hubThreshold int, connect bool, seed int64) error {
	g, err := loadInput(in, dataset, skitterN, seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	opt := core.Options{Rng: rng}

	var result *graph.Graph
	if method == "randomize" {
		result, err = core.Randomize(g, depth, opt)
	} else {
		var m core.Method
		switch method {
		case "stochastic":
			m = core.MethodStochastic
		case "pseudograph":
			m = core.MethodPseudograph
		case "matching":
			m = core.MethodMatching
		case "targeting":
			m = core.MethodTargeting
		default:
			return fmt.Errorf("unknown method %q", method)
		}
		profile, err2 := core.Extract(g, depth)
		if err2 != nil {
			return err2
		}
		if err2 := profile.Validate(); err2 != nil {
			return fmt.Errorf("extracted profile invalid: %w", err2)
		}
		result, err = core.Generate(profile, depth, m, opt)
	}
	if err != nil {
		return err
	}
	if connect {
		isolated, err := generate.ConnectViaSwaps(result, rng)
		if err != nil {
			return fmt.Errorf("reconnect: %w", err)
		}
		if isolated > 0 {
			fmt.Fprintf(os.Stderr, "dkgen: %d isolated nodes cannot be attached degree-preservingly\n", isolated)
		}
	}

	w, closeFn, err := openOutput(out)
	if err != nil {
		return err
	}
	defer closeFn()
	if dot {
		return graph.WriteDOT(w, result, fmt.Sprintf("%dK", depth), hubThreshold)
	}
	return graph.WriteEdgeList(w, result)
}

func loadInput(in, dataset string, skitterN int, seed int64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	}
	switch dataset {
	case "skitter":
		return datasets.Skitter(datasets.SkitterConfig{N: skitterN, Seed: seed})
	case "hot":
		g, _, err := datasets.HOT(datasets.PaperScaleHOT(seed))
		return g, err
	case "paw":
		return datasets.Paw(), nil
	case "petersen":
		return datasets.Petersen(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func openOutput(out string) (io.Writer, func(), error) {
	if out == "" || out == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
