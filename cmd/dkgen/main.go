// Command dkgen generates dK-random graphs.
//
// Given an input graph it can either produce a dK-randomized counterpart
// (the paper's dK-randomizing rewiring) or extract the dK-distribution
// and construct a fresh graph from it by any supported method:
//
//	dkgen -d 2 -method randomize  -in skitter.txt -out out.txt
//	dkgen -d 2 -method pseudograph -in skitter.txt -out out.txt
//	dkgen -d 3 -method targeting   -in skitter.txt -out out.txt
//
// Without -in, it synthesizes a reference topology first:
//
//	dkgen -dataset hot     -d 1 -method matching -out out.txt
//	dkgen -dataset skitter -skitter-n 2000 -d 2 -method targeting -out out.txt
//
// With -dot the output is Graphviz DOT (hubs highlighted) instead of an
// edge list, which regenerates the raw material of the paper's Figure 3.
//
// With -replicas N > 1 it generates an ensemble of N independent graphs
// concurrently (one derived seed per replica — deterministic for a given
// -seed at any -workers value) and writes them to <out>.0, <out>.1, …:
//
//	dkgen -dataset hot -d 2 -method randomize -replicas 100 -out ens.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dk"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func main() {
	depth := flag.Int("d", 2, "dK depth (0..3)")
	method := flag.String("method", "randomize", "randomize | stochastic | pseudograph | matching | targeting")
	in := flag.String("in", "", "input edge-list file (omit to use -dataset)")
	dataset := flag.String("dataset", "skitter", "synthetic input when -in is omitted: skitter | hot | paw | petersen")
	skitterN := flag.Int("skitter-n", 2000, "node count for the synthetic skitter-like dataset")
	out := flag.String("out", "-", "output file (- = stdout); with -replicas > 1, files <out>.<i>")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of an edge list")
	hubThreshold := flag.Int("hub-threshold", 10, "DOT: highlight nodes with degree >= threshold (0 = off)")
	connect := flag.Bool("connect", false, "reconnect the result with degree-preserving swaps (Viger–Latapy)")
	seed := flag.Int64("seed", 1, "random seed")
	replicas := flag.Int("replicas", 1, "number of independent graphs to generate (ensemble fan-out)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the replica fan-out (results are identical for any value)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(core.VersionLine("dkgen"))
		return
	}
	parallel.SetWorkers(*workers)

	if err := run(*depth, *method, *in, *dataset, *skitterN, *out, *dot, *hubThreshold, *connect, *seed, *replicas); err != nil {
		fmt.Fprintln(os.Stderr, "dkgen:", err)
		os.Exit(1)
	}
}

func run(depth int, method, in, dataset string, skitterN int, out string, dot bool, hubThreshold int, connect bool, seed int64, replicas int) error {
	g, err := loadInput(in, dataset, skitterN, seed)
	if err != nil {
		return err
	}
	// buildOne produces one graph from its own RNG stream; with
	// -replicas > 1 it runs concurrently across replicas.
	buildOne, err := builder(g, depth, method, connect)
	if err != nil {
		return err
	}
	if replicas <= 1 {
		result, err := buildOne(rand.New(rand.NewSource(seed)))
		if err != nil {
			return err
		}
		return writeResult(out, result, dot, depth, hubThreshold)
	}
	if out == "" || out == "-" {
		return fmt.Errorf("-replicas %d needs -out (stdout cannot hold an ensemble)", replicas)
	}
	// Stream the ensemble: each replica is derived, written to its own
	// file and dropped inside the fan-out, so peak memory is one graph
	// per worker instead of the whole ensemble. Seeds are derived exactly
	// like generate.Replicas, so outputs match the library fan-out.
	return parallel.ForErr(replicas, func(i int) error {
		rng := rand.New(rand.NewSource(parallel.SubSeed(seed, i)))
		result, err := buildOne(rng)
		if err != nil {
			return err
		}
		return writeResult(fmt.Sprintf("%s.%d", out, i), result, dot, depth, hubThreshold)
	})
}

// builder returns a single-replica construction closure for the chosen
// method. The closure is safe for concurrent calls with distinct Rngs:
// profile extraction happens once, up front.
func builder(g *graph.Graph, depth int, method string, connect bool) (func(rng *rand.Rand) (*graph.Graph, error), error) {
	var m core.Method
	var profile *dk.Profile
	if method != "randomize" {
		switch method {
		case "stochastic":
			m = core.MethodStochastic
		case "pseudograph":
			m = core.MethodPseudograph
		case "matching":
			m = core.MethodMatching
		case "targeting":
			m = core.MethodTargeting
		default:
			return nil, fmt.Errorf("unknown method %q", method)
		}
		p, err := core.Extract(g, depth)
		if err != nil {
			return nil, err
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("extracted profile invalid: %w", err)
		}
		profile = p
	}
	return func(rng *rand.Rand) (*graph.Graph, error) {
		var result *graph.Graph
		var err error
		if method == "randomize" {
			result, err = core.Randomize(g, depth, core.Options{Rng: rng})
		} else {
			result, err = core.Generate(profile, depth, m, core.Options{Rng: rng})
		}
		if err != nil {
			return nil, err
		}
		if connect {
			isolated, err := generate.ConnectViaSwaps(result, rng)
			if err != nil {
				return nil, fmt.Errorf("reconnect: %w", err)
			}
			if isolated > 0 {
				fmt.Fprintf(os.Stderr, "dkgen: %d isolated nodes cannot be attached degree-preservingly\n", isolated)
			}
		}
		return result, nil
	}, nil
}

func writeResult(out string, result *graph.Graph, dot bool, depth, hubThreshold int) error {
	w, closeFn, err := openOutput(out)
	if err != nil {
		return err
	}
	defer closeFn()
	if dot {
		return graph.WriteDOT(w, result, fmt.Sprintf("%dK", depth), hubThreshold)
	}
	return graph.WriteEdgeList(w, result)
}

func loadInput(in, dataset string, skitterN int, seed int64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	}
	switch dataset {
	case "skitter":
		return datasets.Skitter(datasets.SkitterConfig{N: skitterN, Seed: seed})
	case "hot":
		g, _, err := datasets.HOT(datasets.PaperScaleHOT(seed))
		return g, err
	case "paw":
		return datasets.Paw(), nil
	case "petersen":
		return datasets.Petersen(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func openOutput(out string) (io.Writer, func(), error) {
	if out == "" || out == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
