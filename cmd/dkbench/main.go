// Command dkbench is the core benchmark harness: it times the paper's
// §4.1.4 construction pipeline and §2 metric suite — the repository's
// hot paths — on a synthetic skitter-like topology at two sizes with
// fixed seeds, and writes the results to a JSON report. The committed
// BENCH_core.json at the repository root is this tool's output on the
// reference machine: every PR that touches a hot path re-runs dkbench
// and commits the delta, so the performance trajectory of extraction,
// generation, connection, rewiring, and the metric sweep is tracked in
// version control the same way BENCH_store.json tracks the artifact
// store (see docs/PERF.md).
//
//	dkbench                          # small+large → BENCH_core.json
//	dkbench -size all                # + the million-edge huge tier
//	dkbench -size small -out /tmp/b.json
//	dkbench -verify BENCH_core.json  # schema/completeness check (CI)
//	dkbench -verify fresh.json -against BENCH_core.json
//	                                 # + per-workload regression gate
//
// The regression gate compares a fresh report against the committed
// baseline: any workload whose mean exceeds baseline × -regress-factor
// (and the -regress-min-ms noise floor) fails the verify, so a pinned
// win — e.g. the depth-3 rewiring speedup — cannot silently regress.
// Sizes are matched by name and must agree on topology (n, m).
//
// Workloads per size (all keys always present):
//
//	extract_1k/2k/3k   dK-profile extraction at depths 1..3
//	stochastic_1k/2k   §4.1.1 stochastic constructions
//	pseudograph_2k     §4.1.2 edge-end grouping configuration model
//	matching_2k        §4.1.3 loop-avoiding stub matching
//	connect            Viger–Latapy connectivity repair of the
//	                   matching output (ConnectViaSwaps)
//	rewire_d0..d3      dK-preserving randomizing rewiring
//	netsim_robustness  §5 percolation robustness curve (20 fractions)
//	netsim_epidemic    §5 SI worm spread (beta 0.5)
//	metrics            scalar metric sweep of the GCC (incl. spectral)
//
// The huge tier (-size huge|all) synthesizes a ~10⁶-edge topology and
// runs the subset that exercises the million-node path — extraction at
// all depths, 2K construction, depth-2 rewiring, and the scalar sweep
// in sampled-metric mode — each once, recording the process peak RSS
// alongside the timings. CI runs the small tier only; the huge baseline
// is regenerated manually with the rest of BENCH_core.json.
//
// Timings are mean wall-clock milliseconds over a fixed iteration
// count (heavy workloads run once). Rewiring uses SwapFactor 2 — the
// report tracks per-move cost trajectory, not full mixing, which the
// ablation benchmarks at the repository root cover.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"syscall"
	"time"

	"math"

	"repro/internal/cli"
	"repro/internal/datasets"
	"repro/internal/dk"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// hugeWorkloadKeys is the reduced vocabulary of the huge tier: the
// paths that must stay viable at a million edges.
var hugeWorkloadKeys = []string{
	"extract_1k", "extract_2k", "extract_3k",
	"pseudograph_2k", "rewire_d2",
	"metrics_sampled",
}

// keysForSize selects the workload vocabulary a size must carry.
func keysForSize(name string) []string {
	if name == "huge" {
		return hugeWorkloadKeys
	}
	return workloadKeys
}

// schemaVersion identifies the report layout; bump on breaking changes.
const schemaVersion = "dkbench/v1"

// workloadKeys is the complete workload vocabulary; -verify checks
// every key is present for every size in a report.
var workloadKeys = []string{
	"extract_1k", "extract_2k", "extract_3k",
	"stochastic_1k", "stochastic_2k",
	"pseudograph_2k", "matching_2k", "connect",
	"rewire_d0", "rewire_d1", "rewire_d2", "rewire_d3",
	"netsim_robustness", "netsim_epidemic",
	"metrics",
}

// workload is one timed measurement.
type workload struct {
	MS    float64 `json:"ms"`    // mean wall-clock per run
	Iters int     `json:"iters"` // timed runs averaged over
}

// sizeReport carries one topology size's measurements.
type sizeReport struct {
	N         int                 `json:"n"`
	M         int                 `json:"m"`
	Workloads map[string]workload `json:"workloads"`
	// PeakRSSMB is the process high-water resident set after this size's
	// run (sizes run smallest-first, so each value bounds its own tier).
	// Recorded for the huge tier, where memory is the headline number.
	PeakRSSMB float64 `json:"peak_rss_mb,omitempty"`
}

// report is the schema of BENCH_core.json.
type report struct {
	Schema  string                 `json:"schema"`
	Seed    int64                  `json:"seed"`
	Workers int                    `json:"workers"`
	Sizes   map[string]*sizeReport `json:"sizes"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "report output path")
	size := flag.String("size", "both", "which sizes to run: small|large|huge|both|all")
	smallN := flag.Int("small-n", 1000, "node count of the small topology")
	largeN := flag.Int("large-n", 4000, "node count of the large topology")
	hugeN := flag.Int("huge-n", 500000, "node count of the huge topology (~10⁶ edges)")
	seed := flag.Int64("seed", 2, "synthesis and workload seed")
	verify := flag.String("verify", "", "verify an existing report instead of benchmarking")
	against := flag.String("against", "", "with -verify: baseline report for the per-workload regression gate")
	regressFactor := flag.Float64("regress-factor", 2.0, "with -against: fail when fresh ms exceeds baseline ms by this factor")
	regressMinMS := flag.Float64("regress-min-ms", 5.0, "with -against: ignore regressions below this absolute ms (noise floor)")
	workers := flag.Int("workers", 0, "worker budget (0 = GOMAXPROCS)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if cli.Version("dkbench", *showVersion) {
		return
	}
	if *verify != "" {
		if err := verifyReport(*verify); err != nil {
			fmt.Fprintf(os.Stderr, "dkbench: verify %s: %v\n", *verify, err)
			os.Exit(1)
		}
		if *against != "" {
			if err := verifyAgainst(*verify, *against, *regressFactor, *regressMinMS); err != nil {
				fmt.Fprintf(os.Stderr, "dkbench: verify %s against %s: %v\n", *verify, *against, err)
				os.Exit(1)
			}
			fmt.Printf("%s: schema %s complete, within %.1fx of %s\n", *verify, schemaVersion, *regressFactor, *against)
			return
		}
		fmt.Printf("%s: schema %s complete\n", *verify, schemaVersion)
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	sizes := map[string]int{}
	switch *size {
	case "small":
		sizes["small"] = *smallN
	case "large":
		sizes["large"] = *largeN
	case "huge":
		sizes["huge"] = *hugeN
	case "both":
		sizes["small"], sizes["large"] = *smallN, *largeN
	case "all":
		sizes["small"], sizes["large"], sizes["huge"] = *smallN, *largeN, *hugeN
	default:
		fmt.Fprintf(os.Stderr, "dkbench: -size %q (want small|large|huge|both|all)\n", *size)
		os.Exit(2)
	}
	rep := &report{Schema: schemaVersion, Seed: *seed, Workers: parallel.Workers(), Sizes: map[string]*sizeReport{}}
	for _, name := range []string{"small", "large", "huge"} {
		n, ok := sizes[name]
		if !ok {
			continue
		}
		var sr *sizeReport
		var err error
		if name == "huge" {
			sr, err = runHuge(n, *seed)
		} else {
			sr, err = runSize(name, n, *seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dkbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		rep.Sizes[name] = sr
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dkbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runSize measures every workload on one synthesized topology.
func runSize(name string, n int, seed int64) (*sizeReport, error) {
	fmt.Fprintf(os.Stderr, "dkbench: %s: synthesizing skitter-like topology n=%d...\n", name, n)
	src, err := datasets.Skitter(datasets.SkitterConfig{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	sr := &sizeReport{N: src.N(), M: src.M(), Workloads: map[string]workload{}}
	record := func(key string, iters int, f func(rng *rand.Rand) error) error {
		ms, err := timeIt(iters, seed, f)
		if err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		sr.Workloads[key] = workload{MS: ms, Iters: iters}
		fmt.Fprintf(os.Stderr, "dkbench: %s: %-15s %10.2f ms\n", name, key, ms)
		return nil
	}

	// Extraction at each depth; the depth-3 census dominates.
	var profile *dk.Profile
	for d := 1; d <= 3; d++ {
		d := d
		iters := 5
		if d == 3 {
			iters = 1
		}
		err := record(fmt.Sprintf("extract_%dk", d), iters, func(*rand.Rand) error {
			p, err := dk.Extract(src, d)
			if err == nil && d == 2 {
				profile = p
			}
			return err
		})
		if err != nil {
			return nil, err
		}
	}

	// Stochastic constructions from the extracted distributions.
	if err := record("stochastic_1k", 5, func(rng *rand.Rand) error {
		_, err := generate.Stochastic1K(profile.Degrees, generate.Options{Rng: rng})
		return err
	}); err != nil {
		return nil, err
	}
	if err := record("stochastic_2k", 5, func(rng *rand.Rand) error {
		_, err := generate.Stochastic2K(profile.Joint, generate.Options{Rng: rng})
		return err
	}); err != nil {
		return nil, err
	}

	// Configuration-model constructions; matching's output doubles as
	// the (generally disconnected) input of the connect workload.
	if err := record("pseudograph_2k", 3, func(rng *rand.Rand) error {
		_, err := generate.Pseudograph2K(profile.Joint, generate.Options{Rng: rng})
		return err
	}); err != nil {
		return nil, err
	}
	var matched *graph.CSR
	if err := record("matching_2k", 3, func(rng *rand.Rand) error {
		g, err := generate.Matching2K(profile.Joint, generate.Options{Rng: rng})
		matched = g
		return err
	}); err != nil {
		return nil, err
	}
	// Clones are pre-built outside the timed region — Clone is O(n+m),
	// the same order as the rewritten ConnectViaSwaps, so timing it
	// would let clone cost mask a regression in the repair itself.
	const connectIters = 5
	connectInputs := make([]*graph.CSR, connectIters+1) // +1 warm-up
	for i := range connectInputs {
		connectInputs[i] = matched.Clone()
	}
	if err := record("connect", connectIters, func(rng *rand.Rand) error {
		work := connectInputs[0]
		connectInputs = connectInputs[1:]
		_, err := generate.ConnectViaSwaps(work, rng)
		return err
	}); err != nil {
		return nil, err
	}

	// dK-preserving randomizing rewiring, depths 0..3.
	for d := 0; d <= 3; d++ {
		d := d
		iters := 3
		if d == 3 {
			iters = 1
		}
		err := record(fmt.Sprintf("rewire_d%d", d), iters, func(rng *rand.Rand) error {
			_, _, err := generate.Randomize(src, d, generate.RandomizeOptions{Rng: rng, SwapFactor: 2})
			return err
		})
		if err != nil {
			return nil, err
		}
	}

	// Scenario simulations — the per-trial hot loops of the netsim
	// pipeline step (internal/scenario fans these out per graph × trial).
	srcStatic := src.Static()
	fracs := make([]float64, 20)
	for i := range fracs {
		fracs[i] = float64(i) / 20
	}
	if err := record("netsim_robustness", 3, func(rng *rand.Rand) error {
		_, err := netsim.Robustness(srcStatic, fracs, false, rng)
		return err
	}); err != nil {
		return nil, err
	}
	if err := record("netsim_epidemic", 3, func(rng *rand.Rand) error {
		_, err := netsim.WormSpread(srcStatic, 0.5, 64, rng)
		return err
	}); err != nil {
		return nil, err
	}

	// The scalar metric sweep of the paper's tables, on the GCC.
	gcc, _ := graph.GiantComponent(src)
	s := gcc.Static()
	if err := record("metrics", 1, func(rng *rand.Rand) error {
		_, err := metrics.Summarize(s, metrics.SummaryOptions{Spectral: true, Rng: rng})
		return err
	}); err != nil {
		return nil, err
	}
	return sr, nil
}

// runHuge measures the huge tier: each workload once, no warm-up, on
// the ~10⁶-edge topology. Depth-2 rewiring uses SwapFactor 1 (one
// accepted swap per edge) so the tier bounds per-move cost without
// waiting out a full 10×M mixing run, and the scalar sweep relies on
// the automatic sampled-distance switch (the topology is far past
// metrics.AutoSampleThreshold), with the spectral pair and S2 off.
func runHuge(n int, seed int64) (*sizeReport, error) {
	fmt.Fprintf(os.Stderr, "dkbench: huge: synthesizing power-law topology n=%d...\n", n)
	src, err := hugeTopology(n, seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "dkbench: huge: topology ready, n=%d m=%d\n", src.N(), src.M())
	sr := &sizeReport{N: src.N(), M: src.M(), Workloads: map[string]workload{}}
	record := func(key string, f func(rng *rand.Rand) error) error {
		ms, err := timeIt(1, seed, f)
		if err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		sr.Workloads[key] = workload{MS: ms, Iters: 1}
		fmt.Fprintf(os.Stderr, "dkbench: huge: %-15s %10.2f ms\n", key, ms)
		return nil
	}
	var profile *dk.Profile
	for d := 1; d <= 3; d++ {
		d := d
		err := record(fmt.Sprintf("extract_%dk", d), func(*rand.Rand) error {
			p, err := dk.Extract(src, d)
			if err == nil && d == 2 {
				profile = p
			}
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	// Construction: the §4.1.2 configuration model. The matching variant's
	// defect-repair loop is quadratic-ish in stuck defects and does not
	// reliably terminate at 10⁶ edges, so the huge tier tracks the
	// pseudograph path (the one the paper itself scales).
	if err := record("pseudograph_2k", func(rng *rand.Rand) error {
		_, err := generate.Pseudograph2K(profile.Joint, generate.Options{Rng: rng})
		return err
	}); err != nil {
		return nil, err
	}
	if err := record("rewire_d2", func(rng *rand.Rand) error {
		_, _, err := generate.Randomize(src, 2, generate.RandomizeOptions{Rng: rng, SwapFactor: 1})
		return err
	}); err != nil {
		return nil, err
	}
	gcc, _ := graph.GiantComponent(src)
	s := gcc.Static()
	if err := record("metrics_sampled", func(rng *rand.Rand) error {
		_, err := metrics.Summarize(s, metrics.SummaryOptions{SkipS2: true, Rng: rng})
		return err
	}); err != nil {
		return nil, err
	}
	sr.PeakRSSMB = peakRSSMB()
	fmt.Fprintf(os.Stderr, "dkbench: huge: peak RSS %.0f MB\n", sr.PeakRSSMB)
	return sr, nil
}

// hugeTopology synthesizes the huge tier's input: the same power-law
// family as the smaller tiers' skitter-like graph, but un-steered and
// with the degree cutoff pinned near the structural one (k_max ≈ 3√n,
// the scale of the measured skitter graph's maximum degree). The
// smaller tiers use datasets.Skitter, whose assortativity/clustering
// steering runs hundreds of millions of rewiring proposals with full
// triangle recounts between chunks — a target-tracking workload in its
// own right, unusable as a fixture build at 10⁶ edges. And above the
// structural cutoff √(k̄·n) a power-law sequence forces degree
// correlations the matching construction must then fight edge by edge.
func hugeTopology(n int, seed int64) (*graph.CSR, error) {
	rng := rand.New(rand.NewSource(seed))
	kMax := int(3 * math.Sqrt(float64(n)))
	if kMax < 3 {
		kMax = 3
	}
	pl, err := stats.NewPowerLaw(2.0, 1, kMax)
	if err != nil {
		return nil, err
	}
	var seq []int
	for attempt := 0; ; attempt++ {
		seq = pl.DegreeSequence(rng, n)
		if dk.Graphical(seq) {
			break
		}
		if attempt > 100 {
			return nil, fmt.Errorf("huge: could not draw a graphical power-law sequence")
		}
	}
	g, err := generate.Matching1K(dk.NewDegreeDist(seq), generate.Options{Rng: rng})
	if err != nil {
		return nil, err
	}
	g, _ = graph.GiantComponent(g)
	return g, nil
}

// peakRSSMB returns the process's high-water resident set in megabytes
// (0 when the platform doesn't report it).
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// Linux reports Maxrss in KiB.
	return float64(ru.Maxrss) / 1024
}

// timeIt runs f once as warm-up (when iters > 1), then iters timed runs
// with fresh identically-seeded RNGs, and returns the mean wall-clock
// milliseconds — the same convention as `dkstore bench`.
func timeIt(iters int, seed int64, f func(rng *rand.Rand) error) (float64, error) {
	if iters > 1 {
		if err := f(rand.New(rand.NewSource(seed))); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(rand.New(rand.NewSource(seed))); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() * 1000 / float64(iters), nil
}

// verifyReport checks that a report file parses, carries the current
// schema, and holds every workload key for every size it reports —
// the CI smoke gate that keeps BENCH_core.json from silently rotting.
func verifyReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return err
	}
	if rep.Schema != schemaVersion {
		return fmt.Errorf("schema %q, want %q", rep.Schema, schemaVersion)
	}
	if len(rep.Sizes) == 0 {
		return fmt.Errorf("no sizes recorded")
	}
	for size, sr := range rep.Sizes {
		if sr == nil || sr.N <= 0 || sr.M <= 0 {
			return fmt.Errorf("size %q: missing topology dimensions", size)
		}
		for _, key := range keysForSize(size) {
			w, ok := sr.Workloads[key]
			if !ok {
				return fmt.Errorf("size %q: workload %q missing", size, key)
			}
			if w.Iters <= 0 || w.MS < 0 {
				return fmt.Errorf("size %q: workload %q has implausible numbers: %+v", size, key, w)
			}
		}
	}
	return nil
}

// verifyAgainst is the per-workload regression gate: every workload of
// every size shared by the fresh report and the baseline must stay
// within factor× of the baseline mean, except measurements below the
// minMS noise floor (sub-millisecond workloads jitter far more than
// factor× between machines). Shared sizes must describe the same
// topology — a gate run on a different -small-n would otherwise compare
// incomparable numbers and pass or fail arbitrarily.
func verifyAgainst(freshPath, basePath string, factor, minMS float64) error {
	load := func(path string) (*report, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, err
		}
		return &rep, nil
	}
	fresh, err := load(freshPath)
	if err != nil {
		return err
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	shared := 0
	var violations []string
	for size, fs := range fresh.Sizes {
		bs, ok := base.Sizes[size]
		if !ok {
			continue
		}
		if fs.N != bs.N || fs.M != bs.M {
			return fmt.Errorf("size %q: topology mismatch: fresh n=%d m=%d vs baseline n=%d m=%d",
				size, fs.N, fs.M, bs.N, bs.M)
		}
		shared++
		for _, key := range keysForSize(size) {
			fw, fok := fs.Workloads[key]
			bw, bok := bs.Workloads[key]
			if !fok || !bok {
				continue
			}
			if fw.MS > bw.MS*factor && fw.MS > minMS {
				violations = append(violations,
					fmt.Sprintf("%s/%s: %.2f ms vs baseline %.2f ms (%.1fx > %.1fx)",
						size, key, fw.MS, bw.MS, fw.MS/bw.MS, factor))
			}
		}
	}
	if shared == 0 {
		return fmt.Errorf("no sizes shared with the baseline")
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "dkbench: regression: %s\n", v)
		}
		return fmt.Errorf("%d workload(s) regressed beyond %.1fx", len(violations), factor)
	}
	return nil
}
