// Command dkanalyze computes the dK-distributions and the topology metric
// suite of an edge-list graph.
//
// Usage:
//
//	dkanalyze [-d depth] [-spectral] [-sample n] [-seed s] [-workers w] graph.txt
//
// The input is a whitespace-separated edge list ("u v" per line, #
// comments allowed). Metrics are computed on the giant connected
// component, as in the paper's evaluation. With -d >= 2 the joint degree
// distribution summary is printed; with -d = 3 the wedge/triangle census
// totals are included.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

func main() {
	depth := flag.Int("d", 3, "dK extraction depth (0..3)")
	spectral := flag.Bool("spectral", false, "compute normalized-Laplacian spectrum bounds λ1, λ_{n−1}")
	sample := flag.Int("sample", 0, "BFS source sample size for distance metrics (0 = exact)")
	seed := flag.Int64("seed", 1, "random seed for sampling and Lanczos")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the metric sweeps (results are identical for any value)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(core.VersionLine("dkanalyze"))
		return
	}
	parallel.SetWorkers(*workers)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dkanalyze [flags] graph.txt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *depth, *spectral, *sample, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dkanalyze:", err)
		os.Exit(1)
	}
}

func run(path string, depth int, spectral bool, sample int, seed int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, _, err := graph.ReadEdgeList(f)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
	gcc, _ := graph.GiantComponent(g)
	fmt.Printf("gcc:   n=%d m=%d\n\n", gcc.N(), gcc.M())

	rng := rand.New(rand.NewSource(seed))
	sum, err := metrics.Summarize(gcc.Static(), metrics.SummaryOptions{
		Spectral:        spectral,
		DistanceSources: sample,
		Rng:             rng,
	})
	if err != nil {
		return err
	}
	fmt.Printf("k̄       = %.4g\n", sum.AvgDegree)
	fmt.Printf("r        = %.4g\n", sum.R)
	fmt.Printf("C̄        = %.4g\n", sum.CBar)
	fmt.Printf("d̄        = %.4g\n", sum.DBar)
	fmt.Printf("σd       = %.4g\n", sum.SigmaD)
	fmt.Printf("S        = %.6g\n", sum.S)
	fmt.Printf("S2       = %.6g\n", sum.S2)
	if spectral {
		fmt.Printf("λ1       = %.4g\n", sum.Lambda1)
		fmt.Printf("λ(n−1)   = %.4g\n", sum.LambdaN)
	}

	p, err := dk.ExtractGraph(gcc, depth)
	if err != nil {
		return err
	}
	fmt.Printf("\ndK-profile (d=%d):\n", depth)
	fmt.Printf("  P0: k̄ = %.4g\n", p.AvgDegree)
	if depth >= 1 {
		fmt.Printf("  P1: %d distinct degrees, max %d\n", len(p.Degrees.Count), p.Degrees.MaxDegree())
	}
	if depth >= 2 {
		fmt.Printf("  P2: %d joint-degree classes over %d edges\n", len(p.Joint.Count), p.Joint.M)
	}
	if depth >= 3 {
		fmt.Printf("  P3: %d wedge classes (%d wedges), %d triangle classes (%d triangles)\n",
			len(p.Census.Wedges), p.Census.TotalWedges(),
			len(p.Census.Triangles), p.Census.TotalTriangles())
	}
	return nil
}
