// Command dkanalyze computes the dK-distributions and the topology metric
// suite of an edge-list graph — locally through the pkg/dk facade, or
// against a remote dK service with -server (the two modes print
// identical reports for the same input).
//
// Usage:
//
//	dkanalyze [-d depth] [-spectral] [-sample n] [-seed s] [-workers w] graph.txt
//	dkanalyze -server http://localhost:8080 graph.txt
//
// The input is a whitespace-separated edge list ("u v" per line, #
// comments allowed) or a dataset:name[:seed[:n]] reference. Metrics are
// computed on the giant connected component, as in the paper's
// evaluation; the dK-profile covers the full graph (the service
// convention). With -d >= 2 the joint degree distribution summary is
// printed; with -d = 3 the wedge/triangle census totals are included.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/pkg/dk"
	"repro/pkg/dkapi"
	"repro/pkg/dkclient"
)

const tool = "dkanalyze"

func main() {
	common := &cli.Common{}
	depth := flag.Int("d", 3, "dK extraction depth (0..3)")
	spectral := flag.Bool("spectral", false, "compute normalized-Laplacian spectrum bounds λ1, λ_{n−1}")
	sample := flag.Int("sample", 0, "BFS source sample size for distance metrics (0 = exact)")
	seed := flag.Int64("seed", 1, "random seed for sampling and Lanczos")
	flag.IntVar(&common.Workers, "workers", 0, "worker goroutines for the metric sweeps (0 = all cores; results are identical for any value)")
	flag.StringVar(&common.Server, "server", "", "dkserved base URL (empty = run locally)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if cli.Version(tool, *showVersion) {
		return
	}
	common.Apply()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dkanalyze [flags] graph.txt")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(common, flag.Arg(0), *depth, *spectral, *sample, *seed); err != nil {
		cli.Fatal(tool, err)
	}
}

func run(common *cli.Common, arg string, depth int, spectral bool, sample int, seed int64) error {
	ref, err := cli.LoadGraphArg(arg)
	if err != nil {
		return err
	}
	var resp *dkapi.ExtractResponse
	if common.Remote() {
		c, err := common.Client()
		if err != nil {
			return err
		}
		opts := dkclient.ExtractOptions{
			D: &depth, Metrics: true, Spectral: spectral, Sample: sample, Seed: seed,
		}
		if ref.Dataset != "" {
			// ?dseed carries the synthesis seed so both modes analyze
			// the identical synthesized graph.
			opts.Dataset, opts.N = ref.Dataset, ref.N
			opts.DatasetSeed = dkapi.Int64(ref.Seed)
		}
		resp, err = c.ExtractEdges(cli.Ctx(), ref.Edges, opts)
		if err != nil {
			return err
		}
	} else {
		g, err := cli.ResolveLocal(ref)
		if err != nil {
			return err
		}
		resp, err = dk.Extract(cli.Ctx(), g, dk.ExtractOptions{
			D: &depth, Metrics: true, Spectral: spectral, Sample: sample, Seed: seed,
		})
		if err != nil {
			return err
		}
	}
	return render(resp, depth, spectral)
}

// render prints the report from the wire response — one formatter for
// both execution modes.
func render(resp *dkapi.ExtractResponse, depth int, spectral bool) error {
	sum := resp.Summary
	fmt.Printf("graph: n=%d m=%d\n", resp.Graph.N, resp.Graph.M)
	fmt.Printf("gcc:   n=%d m=%d\n\n", sum.N, sum.M)

	fmt.Printf("k̄       = %.4g\n", sum.AvgDegree)
	fmt.Printf("r        = %.4g\n", sum.R)
	fmt.Printf("C̄        = %.4g\n", sum.CBar)
	fmt.Printf("d̄        = %.4g\n", sum.DBar)
	fmt.Printf("σd       = %.4g\n", sum.SigmaD)
	fmt.Printf("S        = %.6g\n", sum.S)
	fmt.Printf("S2       = %.6g\n", sum.S2)
	if spectral {
		fmt.Printf("λ1       = %.4g\n", sum.Lambda1)
		fmt.Printf("λ(n−1)   = %.4g\n", sum.LambdaN)
	}

	p := resp.Profile
	fmt.Printf("\ndK-profile (d=%d):\n", depth)
	fmt.Printf("  P0: k̄ = %.4g\n", p.AvgDegree)
	if depth >= 1 {
		fmt.Printf("  P1: %d distinct degrees, max %d\n", len(p.Degrees.Count), p.Degrees.MaxDegree())
	}
	if depth >= 2 {
		fmt.Printf("  P2: %d joint-degree classes over %d edges\n", len(p.Joint.Count), p.Joint.M)
	}
	if depth >= 3 {
		fmt.Printf("  P3: %d wedge classes (%d wedges), %d triangle classes (%d triangles)\n",
			len(p.Census.Wedges), p.Census.TotalWedges(),
			len(p.Census.Triangles), p.Census.TotalTriangles())
	}
	return nil
}
