package pipeline

import (
	"strings"
	"testing"

	"repro/pkg/dkapi"
)

func ref(r dkapi.GraphRef) *dkapi.GraphRef { return &r }

func TestValidate(t *testing.T) {
	ds := ref(dkapi.GraphRef{Dataset: "paw"})
	cases := []struct {
		name    string
		steps   []dkapi.PipelineStep
		wantErr string // empty = valid
	}{
		{"empty", nil, "no steps"},
		{"minimal extract", []dkapi.PipelineStep{
			{ID: "e", Op: dkapi.OpExtract, Source: ds},
		}, ""},
		{"missing id", []dkapi.PipelineStep{
			{Op: dkapi.OpExtract, Source: ds},
		}, "id is required"},
		{"bad id chars", []dkapi.PipelineStep{
			{ID: "a b", Op: dkapi.OpExtract, Source: ds},
		}, "must match"},
		{"duplicate id", []dkapi.PipelineStep{
			{ID: "e", Op: dkapi.OpExtract, Source: ds},
			{ID: "e", Op: dkapi.OpCensus, Source: ds},
		}, "duplicate id"},
		{"unknown op", []dkapi.PipelineStep{
			{ID: "e", Op: "frobnicate", Source: ds},
		}, "unknown op"},
		{"missing source", []dkapi.PipelineStep{
			{ID: "e", Op: dkapi.OpExtract},
		}, "source is required"},
		{"compare with source", []dkapi.PipelineStep{
			{ID: "c", Op: dkapi.OpCompare, Source: ds},
		}, "compare takes a and b"},
		{"compare missing b", []dkapi.PipelineStep{
			{ID: "c", Op: dkapi.OpCompare, A: ds},
		}, "requires both"},
		{"forward step ref", []dkapi.PipelineStep{
			{ID: "e", Op: dkapi.OpExtract, Source: ref(dkapi.GraphRef{Step: "later"})},
			{ID: "later", Op: dkapi.OpExtract, Source: ds},
		}, "not an earlier step"},
		{"compare output referenced", []dkapi.PipelineStep{
			{ID: "c", Op: dkapi.OpCompare, A: ds, B: ds},
			{ID: "m", Op: dkapi.OpMetrics, Source: ref(dkapi.GraphRef{Step: "c"})},
		}, "no graph output"},
		{"replica out of range", []dkapi.PipelineStep{
			{ID: "g", Op: dkapi.OpGenerate, Source: ds, Replicas: 3},
			{ID: "m", Op: dkapi.OpMetrics, Source: ref(dkapi.GraphRef{Step: "g", Replica: 3})},
		}, "replica 3 does not exist"},
		{"replica on single output", []dkapi.PipelineStep{
			{ID: "e", Op: dkapi.OpExtract, Source: ds},
			{ID: "m", Op: dkapi.OpMetrics, Source: ref(dkapi.GraphRef{Step: "e", Replica: 1})},
		}, "single graph output"},
		{"replica without step", []dkapi.PipelineStep{
			{ID: "m", Op: dkapi.OpMetrics, Source: ref(dkapi.GraphRef{Dataset: "paw", Replica: 1})},
		}, "only valid with a step reference"},
		{"over-specified ref", []dkapi.PipelineStep{
			{ID: "m", Op: dkapi.OpMetrics, Source: ref(dkapi.GraphRef{Dataset: "paw", Edges: "0 1\n"})},
		}, "exactly one"},
		{"file ref", []dkapi.PipelineStep{
			{ID: "m", Op: dkapi.OpMetrics, Source: ref(dkapi.GraphRef{File: "x.txt"})},
		}, "resolved client-side"},
		{"depth out of range", []dkapi.PipelineStep{
			{ID: "e", Op: dkapi.OpExtract, Source: ds, D: dkapi.Int(4)},
		}, "outside 0..3"},
		{"d3 matching", []dkapi.PipelineStep{
			{ID: "g", Op: dkapi.OpGenerate, Source: ds, D: dkapi.Int(3), Method: "matching"},
		}, "only method=targeting"},
		{"d3 targeting ok", []dkapi.PipelineStep{
			{ID: "g", Op: dkapi.OpGenerate, Source: ds, D: dkapi.Int(3), Method: "targeting"},
		}, ""},
		{"randomize with method", []dkapi.PipelineStep{
			{ID: "g", Op: dkapi.OpRandomize, Source: ds, Method: "matching"},
		}, "does not take a method"},
		{"replicas over limit", []dkapi.PipelineStep{
			{ID: "g", Op: dkapi.OpGenerate, Source: ds, Replicas: 129},
		}, "outside 1.."},
		{"total replicas over limit", []dkapi.PipelineStep{
			{ID: "g1", Op: dkapi.OpGenerate, Source: ds, Replicas: 128},
			{ID: "g2", Op: dkapi.OpGenerate, Source: ds, Replicas: 128},
			{ID: "g3", Op: dkapi.OpGenerate, Source: ds, Replicas: 128},
			{ID: "g4", Op: dkapi.OpGenerate, Source: ds, Replicas: 128},
			{ID: "g5", Op: dkapi.OpGenerate, Source: ds, Replicas: 1},
		}, "replicas in total"},
		{"metrics flag on generate", []dkapi.PipelineStep{
			{ID: "g", Op: dkapi.OpGenerate, Source: ds, Metrics: true},
		}, "only valid on extract"},
		{"full workflow", []dkapi.PipelineStep{
			{ID: "ext", Op: dkapi.OpExtract, Source: ds, D: dkapi.Int(2), Metrics: true},
			{ID: "gen", Op: dkapi.OpGenerate, Source: ref(dkapi.GraphRef{Step: "ext"}), Replicas: 8, Compare: true},
			{ID: "cmp", Op: dkapi.OpCompare, A: ref(dkapi.GraphRef{Step: "ext"}), B: ref(dkapi.GraphRef{Step: "gen", Replica: 7})},
			{ID: "cen", Op: dkapi.OpCensus, Source: ref(dkapi.GraphRef{Step: "gen"})},
		}, ""},
		{"netsim workflow", []dkapi.PipelineStep{
			{ID: "gen", Op: dkapi.OpGenerate, Source: ds, Replicas: 2},
			{ID: "sim", Op: dkapi.OpNetsim, Source: ds,
				Ensemble:  []dkapi.GraphRef{{Step: "gen"}, {Step: "gen", Replica: 1}},
				Scenarios: []dkapi.ScenarioSpec{{Kind: "routing"}}},
		}, ""},
		{"netsim without scenarios", []dkapi.PipelineStep{
			{ID: "sim", Op: dkapi.OpNetsim, Source: ds},
		}, "at least one scenario"},
		{"netsim with d", []dkapi.PipelineStep{
			{ID: "sim", Op: dkapi.OpNetsim, Source: ds, D: dkapi.Int(2),
				Scenarios: []dkapi.ScenarioSpec{{Kind: "routing"}}},
		}, "does not take d"},
		{"netsim bad scenario", []dkapi.PipelineStep{
			{ID: "sim", Op: dkapi.OpNetsim, Source: ds,
				Scenarios: []dkapi.ScenarioSpec{{Kind: "quantum"}}},
		}, "unknown kind"},
		{"netsim ensemble replica out of range", []dkapi.PipelineStep{
			{ID: "gen", Op: dkapi.OpGenerate, Source: ds, Replicas: 2},
			{ID: "sim", Op: dkapi.OpNetsim, Source: ds,
				Ensemble:  []dkapi.GraphRef{{Step: "gen", Replica: 2}},
				Scenarios: []dkapi.ScenarioSpec{{Kind: "routing"}}},
		}, "replica 2 does not exist"},
		{"scenarios on extract", []dkapi.PipelineStep{
			{ID: "e", Op: dkapi.OpExtract, Source: ds,
				Scenarios: []dkapi.ScenarioSpec{{Kind: "routing"}}},
		}, "only valid on netsim"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(dkapi.PipelineRequest{Steps: tc.steps}, Limits{})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateStepLimit(t *testing.T) {
	steps := make([]dkapi.PipelineStep, 3)
	for i := range steps {
		steps[i] = dkapi.PipelineStep{
			ID: "s" + string(rune('a'+i)), Op: dkapi.OpMetrics,
			Source: ref(dkapi.GraphRef{Dataset: "paw"}),
		}
	}
	err := Validate(dkapi.PipelineRequest{Steps: steps}, Limits{MaxSteps: 2})
	if err == nil || !strings.Contains(err.Error(), "limit is 2") {
		t.Fatalf("err = %v, want step-limit error", err)
	}
}
