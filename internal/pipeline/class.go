package pipeline

import "repro/pkg/dkapi"

// Class assigns a pipeline request its scheduling priority: a request
// is interactive unless any step constructs replica ensembles
// (generate/randomize), in which case it is batch. The split matches
// the two traffic shapes the service actually sees — a person waiting
// on a profile read versus an ensemble sweep that takes as long as it
// takes — and the job engine uses it to let the former overtake the
// latter in the queue.
func Class(req dkapi.PipelineRequest) dkapi.JobClass {
	for _, st := range req.Steps {
		if st.Op == dkapi.OpGenerate || st.Op == dkapi.OpRandomize {
			return dkapi.ClassBatch
		}
	}
	return dkapi.ClassInteractive
}
