package pipeline

import (
	"encoding/json"
	"testing"

	"repro/pkg/dkapi"
)

// FuzzValidate hardens the pipeline validator against arbitrary wire
// bodies: whatever JSON a client sends to POST /v1/pipelines, decoding
// plus Validate must reject it with an error or accept it — never
// panic. The validator runs before any resolution or job submission, so
// it is the service's entire defense against malformed DAGs.
func FuzzValidate(f *testing.F) {
	f.Add(`{"steps": [{"id": "a", "op": "extract", "source": {"dataset": "petersen"}}]}`)
	f.Add(`{"steps": [
		{"id": "p", "op": "extract", "d": 2, "source": {"hash": "sha256:abc"}},
		{"id": "g", "op": "generate", "source": {"step": "p"}, "replicas": 4, "seed": 7},
		{"id": "c", "op": "compare", "a": {"step": "p"}, "b": {"step": "g"}}
	]}`)
	f.Add(`{"steps": []}`)
	f.Add(`{"steps": [{"id": "x", "op": "generate", "source": {"step": "x"}}]}`)         // self-reference
	f.Add(`{"steps": [{"id": "dup", "op": "census"}, {"id": "dup", "op": "census"}]}`)   // duplicate id
	f.Add(`{"steps": [{"id": "b", "op": "compare", "a": {"step": "zzz"}}]}`)             // dangling ref
	f.Add(`{"steps": [{"id": "n", "op": "extract", "d": -7, "source": {"hash": "h"}}]}`) // bad depth
	f.Add(`{"steps": [{"id": "r", "op": "randomize", "source": {"dataset": "petersen"}, "replicas": 1000000}]}`)
	f.Add(`{"steps": [{"id": "?", "op": "nonsense"}]}`)
	f.Add(`{"steps": [
		{"id": "g", "op": "generate", "source": {"dataset": "petersen"}, "replicas": 4},
		{"id": "s", "op": "netsim", "source": {"dataset": "petersen"},
		 "ensemble": [{"step": "g"}, {"step": "g", "replica": 3}],
		 "scenarios": [{"kind": "robustness", "fracs": [0, 0.5], "targeted": true},
		               {"kind": "epidemic", "beta": 0.5},
		               {"kind": "routing", "pairs": 16}]}
	]}`)
	f.Add(`{"steps": [{"id": "s", "op": "netsim", "scenarios": [{"kind": "quantum", "beta": -1}]}]}`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"steps": 3}`)
	f.Add("\x00\xff not json at all")

	f.Fuzz(func(t *testing.T, body string) {
		var req dkapi.PipelineRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			return // the decoder rejected it before Validate would run
		}
		// Both the server's defaults and tight limits must hold.
		_ = Validate(req, Limits{})
		_ = Validate(req, Limits{MaxSteps: 2, MaxReplicas: 3, MaxTotalReplicas: 4})
	})
}
