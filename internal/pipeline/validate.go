package pipeline

import (
	"fmt"

	"repro/internal/scenario"
	"repro/pkg/dkapi"
)

// Limits bounds a pipeline request. Zero fields select the defaults.
type Limits struct {
	// MaxSteps bounds the step count (default 32).
	MaxSteps int
	// MaxReplicas bounds one generate step's ensemble (default 128).
	MaxReplicas int
	// MaxTotalReplicas bounds the summed ensemble size across all
	// generate/randomize steps of one pipeline (default 512). This is a
	// memory bound, not just a work bound: a finished job's graphs stay
	// streamable until the job ages out of retention, so the worst case
	// per retained job is MaxTotalReplicas graphs — not steps×replicas.
	MaxTotalReplicas int
}

func (l Limits) withDefaults() Limits {
	if l.MaxSteps == 0 {
		l.MaxSteps = 32
	}
	if l.MaxReplicas == 0 {
		l.MaxReplicas = 128
	}
	if l.MaxTotalReplicas == 0 {
		l.MaxTotalReplicas = 512
	}
	return l
}

// stepMeta records what validation learned about a step, for checking
// later references against it.
type stepMeta struct {
	op       string
	replicas int // >0 for generate/randomize (ensemble size)
}

// Validate checks a pipeline request for structural errors: bounds,
// unknown ops, malformed ids, missing or over-specified graph
// references, forward/unknown step references, out-of-range replica
// indices, and invalid (depth, method) combinations. It is pure — no
// backend access — so the service can reject bad requests synchronously
// before enqueueing the job, and recovery can re-validate a journaled
// spec. Errors name the offending step.
func Validate(req dkapi.PipelineRequest, limits Limits) error {
	limits = limits.withDefaults()
	if len(req.Steps) == 0 {
		return fmt.Errorf("pipeline has no steps")
	}
	if len(req.Steps) > limits.MaxSteps {
		return fmt.Errorf("pipeline has %d steps; the limit is %d", len(req.Steps), limits.MaxSteps)
	}
	seen := make(map[string]stepMeta, len(req.Steps))
	totalReplicas := 0
	for i, st := range req.Steps {
		where := fmt.Sprintf("step %d (%q)", i, st.ID)
		if st.ID == "" {
			return fmt.Errorf("step %d: id is required", i)
		}
		if !validID(st.ID) {
			return fmt.Errorf("%s: id must match [A-Za-z0-9_-]+", where)
		}
		if _, dup := seen[st.ID]; dup {
			return fmt.Errorf("%s: duplicate id", where)
		}
		meta := stepMeta{op: st.Op}
		switch st.Op {
		case dkapi.OpExtract, dkapi.OpCensus, dkapi.OpMetrics:
			if err := requireSource(st, seen); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
		case dkapi.OpGenerate, dkapi.OpRandomize:
			if err := requireSource(st, seen); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
			replicas := st.Replicas
			if replicas == 0 {
				replicas = 1
			}
			if replicas < 1 || replicas > limits.MaxReplicas {
				return fmt.Errorf("%s: replicas=%d outside 1..%d", where, replicas, limits.MaxReplicas)
			}
			totalReplicas += replicas
			if totalReplicas > limits.MaxTotalReplicas {
				return fmt.Errorf("%s: pipeline generates %d replicas in total; the limit is %d",
					where, totalReplicas, limits.MaxTotalReplicas)
			}
			meta.replicas = replicas
			name := methodName(st)
			if st.Op == dkapi.OpRandomize && st.Method != "" && st.Method != "randomize" {
				return fmt.Errorf("%s: op randomize does not take a method (got %q)", where, st.Method)
			}
			_, randomize, err := ParseMethod(name)
			if err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
			d := depth(st)
			if !randomize && d == 3 && name != "targeting" {
				return fmt.Errorf("%s: d=3 generation from a distribution supports only method=targeting or method=randomize", where)
			}
		case dkapi.OpCompare:
			if st.Source != nil {
				return fmt.Errorf("%s: compare takes a and b, not source", where)
			}
			if st.A == nil || st.B == nil {
				return fmt.Errorf("%s: compare requires both a and b", where)
			}
			if err := checkRef(*st.A, seen); err != nil {
				return fmt.Errorf("%s: a: %w", where, err)
			}
			if err := checkRef(*st.B, seen); err != nil {
				return fmt.Errorf("%s: b: %w", where, err)
			}
		case dkapi.OpNetsim:
			if err := requireSource(st, seen); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
			if st.D != nil {
				return fmt.Errorf("%s: netsim does not take d", where)
			}
			for j, ref := range st.Ensemble {
				if err := checkRef(ref, seen); err != nil {
					return fmt.Errorf("%s: ensemble[%d]: %w", where, j, err)
				}
			}
			if err := scenario.ValidateSpecs(st.Scenarios); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
		case "":
			return fmt.Errorf("%s: op is required", where)
		default:
			return fmt.Errorf("%s: unknown op %q (want extract|generate|randomize|compare|census|metrics|netsim)", where, st.Op)
		}
		if st.Op != dkapi.OpExtract && st.Metrics {
			return fmt.Errorf("%s: metrics is only valid on extract steps (use op metrics for a standalone summary)", where)
		}
		if st.Op != dkapi.OpNetsim && (len(st.Ensemble) > 0 || len(st.Scenarios) > 0) {
			return fmt.Errorf("%s: ensemble and scenarios are only valid on netsim steps", where)
		}
		if d := depth(st); d < 0 || d > 3 {
			return fmt.Errorf("%s: depth d=%d outside 0..3", where, d)
		}
		seen[st.ID] = meta
	}
	return nil
}

func validID(id string) bool {
	if len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func requireSource(st dkapi.PipelineStep, seen map[string]stepMeta) error {
	if st.A != nil || st.B != nil {
		return fmt.Errorf("op %s takes source, not a/b", st.Op)
	}
	if st.Source == nil {
		return fmt.Errorf("source is required")
	}
	if err := checkRef(*st.Source, seen); err != nil {
		return fmt.Errorf("source: %w", err)
	}
	return nil
}

// checkRef validates one graph reference against the steps declared so
// far. External resolution (does the hash exist? does the dataset
// synthesize?) is the backend's job at run time — or the service's at
// submission time.
func checkRef(ref dkapi.GraphRef, seen map[string]stepMeta) error {
	set := 0
	for _, ok := range []bool{ref.Hash != "", ref.Edges != "", ref.Dataset != "", ref.Step != "", ref.File != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("graph reference must set exactly one of hash, edges, dataset, step")
	}
	if ref.File != "" {
		return fmt.Errorf("file references are resolved client-side; inline the edge list or upload it first")
	}
	if ref.Step == "" {
		if ref.Replica != 0 {
			return fmt.Errorf("replica is only valid with a step reference")
		}
		return nil
	}
	meta, ok := seen[ref.Step]
	if !ok {
		return fmt.Errorf("step %q is not an earlier step (steps may only reference steps declared before them)", ref.Step)
	}
	if meta.op == dkapi.OpCompare {
		return fmt.Errorf("step %q (compare) has no graph output", ref.Step)
	}
	if ref.Replica < 0 {
		return fmt.Errorf("replica must be >= 0")
	}
	if meta.replicas > 0 {
		if ref.Replica >= meta.replicas {
			return fmt.Errorf("step %q has %d replicas; replica %d does not exist", ref.Step, meta.replicas, ref.Replica)
		}
	} else if ref.Replica != 0 {
		return fmt.Errorf("step %q has a single graph output; replica %d does not exist", ref.Step, ref.Replica)
	}
	return nil
}
