// Package pipeline executes declarative dK workflows: an ordered list
// of steps (extract, generate, randomize, compare, census, metrics)
// whose graph inputs may be external references or the named outputs of
// earlier steps. It is the one code path behind every execution surface
// — the HTTP endpoints of internal/service (both the standalone
// /v1/extract‑style routes and POST /v1/pipelines) and the local Go
// facade pkg/dk run the same executor over different Backend
// implementations, which is what makes local and remote results
// byte-identical.
//
// Determinism contract: given the same request and backend contents,
// Run produces an identical Result at any worker count. Replica fan-out
// inside generate steps derives per-replica seeds exactly like
// generate.Replicas, and nothing in a Result depends on wall-clock time.
package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dk"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// Handle is one resolved graph with its lazily computed, cached
// derivatives. Implementations must be safe for concurrent use and must
// hand out graphs in canonical edge order (see graph.CanonicalClone) so
// index-addressed edge draws are a pure function of (edge set, seed).
type Handle interface {
	// Graph returns the parsed graph; callers treat it as read-only.
	Graph() *graph.CSR
	// Info returns the graph's content address and size.
	Info() dkapi.GraphInfo
	// Profile returns the dK-profile at depth d. The boolean reports
	// whether it was served without an extraction run (cache hit).
	Profile(d int) (*dk.Profile, bool, error)
	// Summary returns the scalar metric suite of the graph's giant
	// component for one (spectral, sample, seed) configuration; the
	// boolean reports a cache hit.
	Summary(spectral bool, sample int, seed int64) (metrics.Summary, bool, error)
}

// Backend resolves external graph references and interns derived
// graphs. The service implements it over its content-addressed cache;
// pkg/dk implements it over an in-process session.
type Backend interface {
	// Resolve turns an external reference (hash, edges, dataset) into a
	// Handle. Step references never reach Resolve — the executor
	// resolves those against its own outputs.
	Resolve(ref dkapi.GraphRef) (Handle, error)
	// Intern registers a generated graph and returns its Handle.
	Intern(g *graph.CSR) Handle
}

// Progress receives per-step status snapshots as the pipeline executes.
// The slice is freshly allocated per call; receivers may retain it.
type Progress func(steps []dkapi.StepStatus)

// Observer receives the wall-clock duration of each execution phase as
// steps run: "resolve" (reference → handle), "extract" (profile
// computation, cache hits included), "construct" (the generation /
// rewiring replica fan-out — the paper's §4.1.4 hot path), "intern"
// (registering generated replicas), "compare" (per-replica or pairwise
// distance computation), "metrics" (the scalar metric sweep), and
// "simulate" (the scenario fan-out of a netsim step). Netsim steps
// additionally report one "scenario:<kind>" observation per scenario —
// the service routes those into its scenarios section and the
// dk_scenario_* metric families rather than the phase table. Timings
// never enter a Result — results stay pure functions of the request —
// they only feed operational instrumentation such as the phases section
// of the service's /v1/stats. A nil Observer costs nothing (no clock
// reads).
type Observer func(op, phase string, d time.Duration)

// StepGraphs pairs a generate/randomize step with its replica handles,
// in step order — the bulk output of a pipeline run.
type StepGraphs struct {
	StepID  string
	Handles []Handle
}

// Outcome bundles the deterministic result summary with the generated
// graphs (for streaming or writing to disk).
type Outcome struct {
	Result *dkapi.PipelineResult
	Graphs []StepGraphs
}

// Run executes a validated pipeline against the backend. Steps run in
// declaration order; the first failing step aborts the run (later steps
// are reported as skipped in the final progress snapshot, and the error
// names the failing step). Call Validate first: Run assumes the request
// is well-formed and panics are not part of its contract.
func Run(ctx context.Context, b Backend, req dkapi.PipelineRequest, progress Progress) (*Outcome, error) {
	return RunObserved(ctx, b, req, progress, nil)
}

// RunObserved is Run with per-phase timing instrumentation; obs may be
// nil. It exists as a separate entry point so the common local path
// (pkg/dk) keeps the plain signature while the service threads its
// stats recorder through.
func RunObserved(ctx context.Context, b Backend, req dkapi.PipelineRequest, progress Progress, obs Observer) (*Outcome, error) {
	return RunTraced(ctx, b, req, progress, obs, nil)
}

// SpanSetter is implemented by backends whose handle operations record
// trace spans of their own (e.g. artifact-store reads): the executor
// publishes its current span — step or phase — so store-level spans
// nest under the phase that caused them. Calls are serialized; the
// executor touches the backend only from its own goroutine.
type SpanSetter interface {
	SetTraceSpan(*trace.Span)
}

// RunTraced is RunObserved under a parent trace span: the executor
// opens one child span per step and one grandchild per execution phase,
// and generate steps additionally record a span per replica carrying
// periodic rewiring convergence events. A nil parent degrades to
// RunObserved exactly (the nil-tracer contract: no clock reads, no
// allocations beyond the observer's own). Spans and events are
// observational only — the Outcome stays a pure function of the
// request.
func RunTraced(ctx context.Context, b Backend, req dkapi.PipelineRequest, progress Progress, obs Observer, parent *trace.Span) (*Outcome, error) {
	ex := &executor{
		b:       b,
		status:  make([]dkapi.StepStatus, len(req.Steps)),
		outputs: make(map[string]*stepOutput, len(req.Steps)),
		notify:  progress,
		obs:     obs,
		root:    parent,
	}
	if parent != nil {
		if sink, ok := b.(SpanSetter); ok {
			ex.sink = sink
		}
	}
	for i, st := range req.Steps {
		ex.status[i] = dkapi.StepStatus{ID: st.ID, Op: st.Op, Status: dkapi.StepPending}
	}
	out := &Outcome{Result: &dkapi.PipelineResult{Steps: make([]dkapi.StepResult, 0, len(req.Steps))}}
	for i, st := range req.Steps {
		if err := ctx.Err(); err != nil {
			ex.fail(i, err)
			return nil, fmt.Errorf("step %s: %w", st.ID, err)
		}
		ex.set(i, dkapi.StepRunning, "")
		ex.step = ex.root.Child("step", "id", st.ID, "op", st.Op)
		ex.setSink(ex.step)
		res, err := ex.runStep(st, out)
		if err != nil {
			ex.step.SetAttr("error", err.Error())
			ex.endStep()
			ex.fail(i, err)
			return nil, fmt.Errorf("step %s: %w", st.ID, err)
		}
		ex.endStep()
		out.Result.Steps = append(out.Result.Steps, *res)
		ex.set(i, dkapi.StepDone, "")
	}
	return out, nil
}

// executor carries the mutable run state.
type executor struct {
	b       Backend
	status  []dkapi.StepStatus
	outputs map[string]*stepOutput
	notify  Progress
	obs     Observer
	root    *trace.Span // parent span of the whole run (nil = untraced)
	step    *trace.Span // span of the step currently executing
	cur     *trace.Span // span of the phase currently executing
	sink    SpanSetter  // backend span publication (nil when untraced)
}

// setSink publishes sp as the backend's current parent span.
func (ex *executor) setSink(sp *trace.Span) {
	if ex.sink != nil {
		ex.sink.SetTraceSpan(sp)
	}
}

// endStep closes the current step span and resets the span cursor.
func (ex *executor) endStep() {
	ex.step.End()
	ex.step, ex.cur = nil, nil
	ex.setSink(nil)
}

// phase starts timing one execution phase of op and returns the stop
// function; with no observer and no trace both ends are free (no clock
// reads). Under a trace the phase also becomes a child span of the
// current step, published to the backend sink so store-level spans nest
// beneath it.
func (ex *executor) phase(op, phase string) func() {
	obs, step := ex.obs, ex.step
	if obs == nil && step == nil {
		return func() {}
	}
	sp := step.Child(phase)
	if sp != nil {
		ex.cur = sp
		ex.setSink(sp)
	}
	var start time.Time
	if obs != nil {
		start = time.Now()
	}
	return func() {
		if obs != nil {
			obs(op, phase, time.Since(start))
		}
		sp.End()
		if sp != nil {
			ex.cur = nil
			ex.setSink(ex.step)
		}
	}
}

// timedResolve wraps resolve in the "resolve" phase.
func (ex *executor) timedResolve(op string, ref dkapi.GraphRef) (Handle, error) {
	done := ex.phase(op, "resolve")
	h, err := ex.resolve(ref)
	done()
	return h, err
}

// stepOutput is the graph output of one finished step: the resolved
// source for single-graph ops, the replica ensemble for generate ops.
type stepOutput struct {
	single   Handle
	replicas []Handle
}

func (ex *executor) set(i int, status, errMsg string) {
	ex.status[i].Status = status
	ex.status[i].Error = errMsg
	if ex.notify != nil {
		snap := make([]dkapi.StepStatus, len(ex.status))
		copy(snap, ex.status)
		ex.notify(snap)
	}
}

// fail marks step i failed and everything after it skipped.
func (ex *executor) fail(i int, err error) {
	for j := i + 1; j < len(ex.status); j++ {
		ex.status[j].Status = dkapi.StepSkipped
	}
	ex.set(i, dkapi.StepFailed, err.Error())
}

// resolve turns a step's graph reference into a Handle: step references
// against prior outputs, everything else through the backend.
func (ex *executor) resolve(ref dkapi.GraphRef) (Handle, error) {
	if ref.Step == "" {
		return ex.b.Resolve(ref)
	}
	out := ex.outputs[ref.Step]
	if out == nil {
		return nil, fmt.Errorf("step %q has no graph output yet", ref.Step)
	}
	if out.replicas != nil {
		if ref.Replica < 0 || ref.Replica >= len(out.replicas) {
			return nil, fmt.Errorf("step %q has %d replicas; replica %d does not exist",
				ref.Step, len(out.replicas), ref.Replica)
		}
		return out.replicas[ref.Replica], nil
	}
	if ref.Replica != 0 {
		return nil, fmt.Errorf("step %q has a single graph output; replica %d does not exist", ref.Step, ref.Replica)
	}
	return out.single, nil
}

// depth applies the per-op default for a step's optional D field.
func depth(st dkapi.PipelineStep) int {
	if st.D != nil {
		return *st.D
	}
	switch st.Op {
	case dkapi.OpGenerate, dkapi.OpRandomize:
		return 2
	default:
		return 3
	}
}

// analysisSeed applies the standalone-endpoint default (seed 1) for
// metric sampling and Lanczos; generate steps keep the raw seed.
func analysisSeed(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}

func (ex *executor) runStep(st dkapi.PipelineStep, out *Outcome) (*dkapi.StepResult, error) {
	switch st.Op {
	case dkapi.OpExtract:
		return ex.runExtract(st)
	case dkapi.OpGenerate, dkapi.OpRandomize:
		return ex.runGenerate(st, out)
	case dkapi.OpCompare:
		return ex.runCompare(st)
	case dkapi.OpCensus:
		return ex.runCensus(st)
	case dkapi.OpMetrics:
		return ex.runMetrics(st)
	case dkapi.OpNetsim:
		return ex.runNetsim(st)
	default:
		return nil, fmt.Errorf("unknown op %q", st.Op)
	}
}

func (ex *executor) runExtract(st dkapi.PipelineStep) (*dkapi.StepResult, error) {
	h, err := ex.timedResolve(st.Op, *st.Source)
	if err != nil {
		return nil, err
	}
	d := depth(st)
	done := ex.phase(st.Op, "extract")
	p, hit, err := h.Profile(d)
	done()
	if err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	gi := h.Info()
	res := &dkapi.StepResult{ID: st.ID, Op: st.Op, Graph: &gi, D: d, Cached: hit, Profile: p}
	if st.Metrics {
		done := ex.phase(st.Op, "metrics")
		sum, _, err := h.Summary(st.Spectral, st.Sample, analysisSeed(st.Seed))
		done()
		if err != nil {
			return nil, fmt.Errorf("metrics: %w", err)
		}
		res.Summary = &sum
	}
	ex.outputs[st.ID] = &stepOutput{single: h}
	return res, nil
}

// ParseMethod maps the wire method name to a construction method;
// "randomize" (dK-preserving rewiring of the source graph) is flagged
// separately because it needs the graph, not just the profile.
func ParseMethod(name string) (m core.Method, randomize bool, err error) {
	switch name {
	case "", "randomize":
		return 0, true, nil
	case "stochastic":
		return core.MethodStochastic, false, nil
	case "pseudograph":
		return core.MethodPseudograph, false, nil
	case "matching":
		return core.MethodMatching, false, nil
	case "targeting":
		return core.MethodTargeting, false, nil
	default:
		return 0, false, fmt.Errorf("unknown method %q (want randomize|stochastic|pseudograph|matching|targeting)", name)
	}
}

// methodName normalizes the wire method (empty = randomize); randomize
// steps force it outright.
func methodName(st dkapi.PipelineStep) string {
	if st.Op == dkapi.OpRandomize || st.Method == "" {
		return "randomize"
	}
	return st.Method
}

func (ex *executor) runGenerate(st dkapi.PipelineStep, out *Outcome) (*dkapi.StepResult, error) {
	h, err := ex.timedResolve(st.Op, *st.Source)
	if err != nil {
		return nil, err
	}
	d := depth(st)
	name := methodName(st)
	method, randomize, err := ParseMethod(name)
	if err != nil {
		return nil, err
	}
	replicas := st.Replicas
	if replicas == 0 {
		replicas = 1
	}
	var profile *dk.Profile
	if !randomize || st.Compare {
		done := ex.phase(st.Op, "extract")
		p, _, err := h.Profile(d)
		done()
		if err != nil {
			return nil, fmt.Errorf("extract: %w", err)
		}
		profile = p
	}
	src := h.Graph()
	construct := ex.phase(st.Op, "construct")
	// The construct-phase span: replica spans hang off it, and the
	// replica fan-out runs concurrently, so each goroutine gets its own
	// child rather than touching the executor's span cursor.
	constructSpan := ex.cur
	graphs, err := generate.Replicas(replicas, st.Seed, func(i int, rng *rand.Rand) (*graph.CSR, error) {
		var rsp *trace.Span
		if constructSpan != nil {
			rsp = constructSpan.Child("replica", "i", strconv.Itoa(i))
			defer rsp.End()
		}
		if randomize {
			opt := generate.RandomizeOptions{Rng: rng}
			if rsp != nil {
				opt.OnProgress = func(p generate.RewireProgress) {
					rsp.Event("rewire", convergenceFields(p))
				}
			}
			g, _, err := generate.Randomize(src, d, opt)
			return g, err
		}
		return core.Generate(profile, d, method, core.Options{Rng: rng})
	})
	construct()
	if err != nil {
		return nil, err
	}
	gi := h.Info()
	res := &dkapi.StepResult{
		ID: st.ID, Op: st.Op, Graph: &gi, D: d,
		Method: name, Seed: st.Seed,
		Replicas: make([]dkapi.ReplicaInfo, len(graphs)),
	}
	handles := make([]Handle, len(graphs))
	for i, g := range graphs {
		intern := ex.phase(st.Op, "intern")
		rh := ex.b.Intern(g)
		intern()
		handles[i] = rh
		ri := dkapi.ReplicaInfo{Index: i, N: g.N(), M: g.M()}
		if st.Compare {
			// The replica's profile extraction is an "extract"
			// observation, not "compare": the depth-d census dominates
			// the cheap distance arithmetic, and folding it into
			// compare would misattribute the hot spot in /v1/stats.
			ext := ex.phase(st.Op, "extract")
			got, _, err := rh.Profile(d)
			ext()
			if err != nil {
				return nil, err
			}
			cmp := ex.phase(st.Op, "compare")
			dist, err := dk.Distance(profile, got, d)
			cmp()
			if err != nil {
				return nil, err
			}
			ri.Distance = &dist
		}
		res.Replicas[i] = ri
	}
	ex.outputs[st.ID] = &stepOutput{replicas: handles}
	out.Graphs = append(out.Graphs, StepGraphs{StepID: st.ID, Handles: handles})
	return res, nil
}

// convergenceFields flattens one rewiring convergence sample into the
// numeric fields of a trace event. Rejection deltas are emitted only
// when nonzero to keep the JSONL compact over long runs.
func convergenceFields(p generate.RewireProgress) map[string]float64 {
	f := map[string]float64{
		"sweep":           float64(p.Sweep),
		"attempts":        float64(p.Attempts),
		"accepted":        float64(p.Accepted),
		"window_attempts": float64(p.WindowAttempts),
		"window_accepted": float64(p.WindowAccepted),
		"acceptance_rate": p.AcceptanceRate,
	}
	for k, v := range map[string]int{
		"rej_self_loop":      p.Rejected.SelfLoop,
		"rej_duplicate_edge": p.Rejected.DuplicateEdge,
		"rej_jdd_mismatch":   p.Rejected.JDDMismatch,
		"rej_census_changed": p.Rejected.CensusChanged,
		"rej_objective":      p.Rejected.Objective,
		"rej_disconnected":   p.Rejected.Disconnected,
	} {
		if v != 0 {
			f[k] = float64(v)
		}
	}
	if p.HasObjective {
		f["objective"] = p.Objective
	}
	return f
}

func (ex *executor) runCompare(st dkapi.PipelineStep) (*dkapi.StepResult, error) {
	ha, err := ex.timedResolve(st.Op, *st.A)
	if err != nil {
		return nil, err
	}
	hb, err := ex.timedResolve(st.Op, *st.B)
	if err != nil {
		return nil, err
	}
	d := depth(st)
	seed := analysisSeed(st.Seed)
	ia, ib := ha.Info(), hb.Info()
	res := &dkapi.StepResult{ID: st.ID, Op: st.Op, A: &ia, B: &ib, D: d}
	profiles := make([]*dk.Profile, 2)
	extract := ex.phase(st.Op, "extract")
	for i, h := range []Handle{ha, hb} {
		p, _, err := h.Profile(d)
		if err != nil {
			extract()
			return nil, fmt.Errorf("extract: %w", err)
		}
		profiles[i] = p
	}
	extract()
	cmp := ex.phase(st.Op, "compare")
	for dd := 0; dd <= d; dd++ {
		v, err := dk.Distance(profiles[0], profiles[1], dd)
		if err != nil {
			cmp()
			return nil, fmt.Errorf("distance: %w", err)
		}
		res.Distances = append(res.Distances, dkapi.DistanceEntry{D: dd, Value: v})
	}
	cmp()
	done := ex.phase(st.Op, "metrics")
	defer done()
	sa, _, err := ha.Summary(st.Spectral, st.Sample, seed)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	sb, _, err := hb.Summary(st.Spectral, st.Sample, seed)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	res.SummaryA, res.SummaryB = &sa, &sb
	return res, nil
}

func (ex *executor) runCensus(st dkapi.PipelineStep) (*dkapi.StepResult, error) {
	h, err := ex.timedResolve(st.Op, *st.Source)
	if err != nil {
		return nil, err
	}
	done := ex.phase(st.Op, "extract")
	p, _, err := h.Profile(3)
	done()
	if err != nil {
		return nil, fmt.Errorf("census: %w", err)
	}
	gi := h.Info()
	ex.outputs[st.ID] = &stepOutput{single: h}
	return &dkapi.StepResult{ID: st.ID, Op: st.Op, Graph: &gi, D: 3, Census: p.Census}, nil
}

func (ex *executor) runMetrics(st dkapi.PipelineStep) (*dkapi.StepResult, error) {
	h, err := ex.timedResolve(st.Op, *st.Source)
	if err != nil {
		return nil, err
	}
	done := ex.phase(st.Op, "metrics")
	sum, _, err := h.Summary(st.Spectral, st.Sample, analysisSeed(st.Seed))
	done()
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	gi := h.Info()
	ex.outputs[st.ID] = &stepOutput{single: h}
	return &dkapi.StepResult{ID: st.ID, Op: st.Op, Graph: &gi, Summary: &sum}, nil
}

// runNetsim resolves the measured source plus its replica ensemble and
// runs each scenario's (graph × trial) fan-out. Per-scenario seeds
// derive from the step seed with SubSeed, so the step's curves are a
// pure function of the request at any worker count. Each scenario runs
// under its own "simulate" phase span (tagged with the kind) and emits a
// "scenario:<kind>" observation for the service's scenario telemetry.
func (ex *executor) runNetsim(st dkapi.PipelineStep) (*dkapi.StepResult, error) {
	h, err := ex.timedResolve(st.Op, *st.Source)
	if err != nil {
		return nil, err
	}
	done := ex.phase(st.Op, "resolve")
	measured := h.Graph().Static()
	ensemble := make([]*graph.Static, len(st.Ensemble))
	for i, ref := range st.Ensemble {
		eh, err := ex.resolve(ref)
		if err != nil {
			done()
			return nil, fmt.Errorf("ensemble[%d]: %w", i, err)
		}
		ensemble[i] = eh.Graph().Static()
	}
	done()
	seed := analysisSeed(st.Seed)
	gi := h.Info()
	res := &dkapi.StepResult{
		ID: st.ID, Op: st.Op, Graph: &gi, Seed: seed,
		EnsembleSize: len(ensemble),
		Scenarios:    make([]dkapi.ScenarioCurves, len(st.Scenarios)),
	}
	for si, sp := range st.Scenarios {
		var start time.Time
		if ex.obs != nil {
			start = time.Now()
		}
		stop := ex.phase(st.Op, "simulate")
		if ex.cur != nil {
			ex.cur.SetAttr("kind", sp.Kind)
		}
		sc, err := scenario.Run(measured, ensemble, sp, parallel.SubSeed(seed, si))
		stop()
		if err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", si, sp.Kind, err)
		}
		if ex.obs != nil {
			ex.obs(st.Op, "scenario:"+sp.Kind, time.Since(start))
		}
		res.Scenarios[si] = sc
	}
	ex.outputs[st.ID] = &stepOutput{single: h}
	return res, nil
}
