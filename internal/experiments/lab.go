package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/datasets"
	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales.
const (
	// ScaleSmall shrinks the reference graphs (~1200-node skitter-like,
	// default HOT) so the full suite runs in minutes on one core;
	// convergence shapes are unchanged.
	ScaleSmall Scale = iota
	// ScalePaper uses the paper's sizes (9204-node skitter-like,
	// 939-node HOT).
	ScalePaper
)

// Config parametrizes an experiment run.
type Config struct {
	Scale Scale
	// Seeds is the number of generated graphs averaged per table cell
	// (the paper uses 100; defaults: 3 small, 5 paper).
	Seeds int
	// Seed is the base RNG seed; every derived generator seeds from it.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Seeds == 0 {
		if c.Scale == ScalePaper {
			c.Seeds = 5
		} else {
			c.Seeds = 3
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Lab caches the reference topologies and their profiles across the
// experiments of one run.
type Lab struct {
	Cfg Config

	skitter        *graph.Graph
	skitterProfile *dk.Profile
	hot            *graph.Graph
	hotProfile     *dk.Profile
}

// NewLab prepares a lazily-populated lab.
func NewLab(cfg Config) *Lab {
	return &Lab{Cfg: cfg.withDefaults()}
}

// Rng derives a deterministic per-purpose random source.
func (l *Lab) Rng(purpose int64) *rand.Rand {
	return rand.New(rand.NewSource(l.Cfg.Seed*1_000_003 + purpose))
}

// Skitter returns the AS-like reference graph (GCC, connected).
func (l *Lab) Skitter() (*graph.Graph, error) {
	if l.skitter != nil {
		return l.skitter, nil
	}
	cfg := datasets.SkitterConfig{Seed: l.Cfg.Seed}
	if l.Cfg.Scale == ScalePaper {
		cfg = datasets.PaperScaleSkitter(l.Cfg.Seed)
	} else {
		cfg.N = 1200
	}
	g, err := datasets.Skitter(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: building skitter-like graph: %w", err)
	}
	l.skitter = g
	return g, nil
}

// SkitterProfile returns the depth-3 dK-profile of the skitter-like graph.
func (l *Lab) SkitterProfile() (*dk.Profile, error) {
	if l.skitterProfile != nil {
		return l.skitterProfile, nil
	}
	g, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	p, err := dk.ExtractGraph(g, 3)
	if err != nil {
		return nil, err
	}
	l.skitterProfile = p
	return p, nil
}

// HOT returns the router-like reference graph (connected by
// construction).
func (l *Lab) HOT() (*graph.Graph, error) {
	if l.hot != nil {
		return l.hot, nil
	}
	g, _, err := datasets.HOT(datasets.PaperScaleHOT(l.Cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: building HOT-like graph: %w", err)
	}
	l.hot = g
	return g, nil
}

// HOTProfile returns the depth-3 dK-profile of the HOT-like graph.
func (l *Lab) HOTProfile() (*dk.Profile, error) {
	if l.hotProfile != nil {
		return l.hotProfile, nil
	}
	g, err := l.HOT()
	if err != nil {
		return nil, err
	}
	p, err := dk.ExtractGraph(g, 3)
	if err != nil {
		return nil, err
	}
	l.hotProfile = p
	return p, nil
}

// summarizeGCC computes the scalar metrics of g's giant component.
func summarizeGCC(g *graph.Graph, spectral bool, rng *rand.Rand) (metrics.Summary, error) {
	gcc, _ := graph.GiantComponent(g)
	return metrics.Summarize(gcc.Static(), metrics.SummaryOptions{
		Spectral: spectral,
		Rng:      rng,
	})
}

// meanSummaryOver generates Seeds graphs via gen and averages their GCC
// summaries.
func (l *Lab) meanSummaryOver(spectral bool, purpose int64, gen func(rng *rand.Rand) (*graph.Graph, error)) (metrics.Summary, error) {
	sums := make([]metrics.Summary, 0, l.Cfg.Seeds)
	for s := 0; s < l.Cfg.Seeds; s++ {
		rng := l.Rng(purpose*1000 + int64(s))
		g, err := gen(rng)
		if err != nil {
			return metrics.Summary{}, err
		}
		sum, err := summarizeGCC(g, spectral, rng)
		if err != nil {
			return metrics.Summary{}, err
		}
		sums = append(sums, sum)
	}
	return metrics.MeanSummaries(sums), nil
}
