package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/datasets"
	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales.
const (
	// ScaleSmall shrinks the reference graphs (~1200-node skitter-like,
	// default HOT) so the full suite runs in minutes on one core;
	// convergence shapes are unchanged.
	ScaleSmall Scale = iota
	// ScalePaper uses the paper's sizes (9204-node skitter-like,
	// 939-node HOT).
	ScalePaper
)

// Config parametrizes an experiment run.
type Config struct {
	Scale Scale
	// Seeds is the number of generated graphs averaged per table cell
	// (the paper uses 100; defaults: 3 small, 5 paper).
	Seeds int
	// Seed is the base RNG seed; every derived generator seeds from it.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Seeds == 0 {
		if c.Scale == ScalePaper {
			c.Seeds = 5
		} else {
			c.Seeds = 3
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Lab caches the reference topologies and their profiles across the
// experiments of one run. All methods are safe for concurrent use:
// experiments and averaging seeds fan out over the worker pool, and the
// caches are built exactly once (sync.OnceValues) no matter how many
// goroutines ask first — errors are cached alongside values.
type Lab struct {
	Cfg Config

	skitter        func() (*graph.CSR, error)
	skitterProfile func() (*dk.Profile, error)
	hot            func() (*graph.CSR, error)
	hotProfile     func() (*dk.Profile, error)
}

// NewLab prepares a lazily-populated lab.
func NewLab(cfg Config) *Lab {
	l := &Lab{Cfg: cfg.withDefaults()}
	l.skitter = sync.OnceValues(func() (*graph.CSR, error) {
		cfg := datasets.SkitterConfig{Seed: l.Cfg.Seed}
		if l.Cfg.Scale == ScalePaper {
			cfg = datasets.PaperScaleSkitter(l.Cfg.Seed)
		} else {
			cfg.N = 1200
		}
		g, err := datasets.Skitter(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: building skitter-like graph: %w", err)
		}
		return g, nil
	})
	l.skitterProfile = sync.OnceValues(func() (*dk.Profile, error) {
		g, err := l.Skitter()
		if err != nil {
			return nil, err
		}
		return dk.Extract(g, 3)
	})
	l.hot = sync.OnceValues(func() (*graph.CSR, error) {
		g, _, err := datasets.HOT(datasets.PaperScaleHOT(l.Cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("experiments: building HOT-like graph: %w", err)
		}
		return g, nil
	})
	l.hotProfile = sync.OnceValues(func() (*dk.Profile, error) {
		g, err := l.HOT()
		if err != nil {
			return nil, err
		}
		return dk.Extract(g, 3)
	})
	return l
}

// Rng derives a deterministic per-purpose random source.
func (l *Lab) Rng(purpose int64) *rand.Rand {
	return rand.New(rand.NewSource(l.Cfg.Seed*1_000_003 + purpose))
}

// Skitter returns the AS-like reference graph (GCC, connected).
func (l *Lab) Skitter() (*graph.CSR, error) { return l.skitter() }

// SkitterProfile returns the depth-3 dK-profile of the skitter-like graph.
func (l *Lab) SkitterProfile() (*dk.Profile, error) { return l.skitterProfile() }

// HOT returns the router-like reference graph (connected by
// construction).
func (l *Lab) HOT() (*graph.CSR, error) { return l.hot() }

// HOTProfile returns the depth-3 dK-profile of the HOT-like graph.
func (l *Lab) HOTProfile() (*dk.Profile, error) { return l.hotProfile() }

// summarizeGCC computes the scalar metrics of g's giant component.
func summarizeGCC(g *graph.CSR, spectral bool, rng *rand.Rand) (metrics.Summary, error) {
	gcc, _ := graph.GiantComponent(g)
	return metrics.Summarize(gcc.Static(), metrics.SummaryOptions{
		Spectral: spectral,
		Rng:      rng,
	})
}

// meanSummaryOver generates Seeds graphs via gen and averages their GCC
// summaries. The averaging seeds are independent — each derives its own
// rand.Rand from (purpose, seed index) — so they run concurrently on the
// worker pool; summaries land in a slice indexed by seed and are averaged
// in index order, making the mean identical at every worker count. gen
// must therefore be safe for concurrent calls (every generator in
// internal/generate is, given distinct Rngs).
func (l *Lab) meanSummaryOver(spectral bool, purpose int64, gen func(rng *rand.Rand) (*graph.CSR, error)) (metrics.Summary, error) {
	sums := make([]metrics.Summary, l.Cfg.Seeds)
	err := parallel.ForErr(l.Cfg.Seeds, func(s int) error {
		rng := l.Rng(purpose*1000 + int64(s))
		g, err := gen(rng)
		if err != nil {
			return err
		}
		sum, err := summarizeGCC(g, spectral, rng)
		if err != nil {
			return err
		}
		sums[s] = sum
		return nil
	})
	if err != nil {
		return metrics.Summary{}, err
	}
	return metrics.MeanSummaries(sums), nil
}
