package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// namedGraph pairs a column label with a graph variant (always the GCC).
type namedGraph struct {
	name string
	g    *graph.CSR
}

// gccOf returns the giant component of g.
func gccOf(g *graph.CSR) *graph.CSR {
	gcc, _ := graph.GiantComponent(g)
	return gcc
}

// variants2K builds one GCC per 2K construction technique (Fig. 5a/5b).
// The five constructions are independent (per-method RNG streams), so
// they run concurrently on the worker pool.
func (l *Lab) variants2K(ref *graph.CSR, p *dk.Profile, purpose int64) ([]namedGraph, error) {
	out := make([]namedGraph, len(twoKMethods))
	err := parallel.ForErr(len(twoKMethods), func(mi int) error {
		method := twoKMethods[mi]
		g, err := generate2K(ref, p, method, l.Rng(purpose+int64(mi)))
		if err != nil {
			return fmt.Errorf("%s: %w", method, err)
		}
		out[mi] = namedGraph{method, gccOf(g)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// variantsDK builds the 0K..3K dK-random GCCs of a reference
// (Figs. 6, 8, 9), one rewiring run per depth, concurrently.
func (l *Lab) variantsDK(ref *graph.CSR, purpose int64) ([]namedGraph, error) {
	out := make([]namedGraph, 4)
	err := parallel.ForErr(4, func(d int) error {
		g, err := generateDKRandom(ref, d, l.Rng(purpose+int64(d)))
		if err != nil {
			return fmt.Errorf("depth %d: %w", d, err)
		}
		out[d] = namedGraph{fmt.Sprintf("%dK-random", d), gccOf(g)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// distanceSeries renders a hop-distance PDF series for graph variants
// plus the original — the shape plotted in Figures 5b, 5c, 6a and 8.
func distanceSeries(id, title string, variants []namedGraph, orig *graph.CSR) *Series {
	variants = append(variants, namedGraph{"original", gccOf(orig)})
	pdfs := make([][]float64, len(variants))
	// Per-variant all-pairs BFS sweeps are independent; fan them out on
	// top of the already-parallel metrics.Distances.
	parallel.For(len(variants), func(i int) {
		pdfs[i] = metrics.Distances(variants[i].g.Static()).PDF()
	})
	maxLen := 0
	for i := range pdfs {
		if len(pdfs[i]) > maxLen {
			maxLen = len(pdfs[i])
		}
	}
	s := &Series{
		ID:     id,
		Title:  title,
		XLabel: "distance (hops)",
	}
	for _, v := range variants {
		s.Columns = append(s.Columns, v.name)
	}
	for x := 1; x < maxLen; x++ {
		row := make([]float64, len(variants))
		for i := range variants {
			if x < len(pdfs[i]) {
				row[i] = pdfs[i][x]
			} // else zero: no pairs at this distance
		}
		s.X = append(s.X, float64(x))
		s.Y = append(s.Y, row)
	}
	return s
}

// degreeBins returns geometric degree-bin lower bounds covering maxDeg:
// 1, 2, 4, 8, ... — the log-x axis of the paper's C(k) and betweenness
// plots.
func degreeBins(maxDeg int) []int {
	var bins []int
	for b := 1; b <= maxDeg; b *= 2 {
		bins = append(bins, b)
	}
	return bins
}

// binnedByDegree averages per-node values into geometric degree bins,
// weighting every node equally; returns bin lower bound → mean.
func binnedByDegree(s *graph.Static, values []float64, restrict func(deg int) bool) map[int]float64 {
	sums := make(map[int]float64)
	cnts := make(map[int]int)
	for v, x := range values {
		d := s.Degree(v)
		if restrict != nil && !restrict(d) {
			continue
		}
		b := 1
		for b*2 <= d {
			b *= 2
		}
		sums[b] += x
		cnts[b]++
	}
	out := make(map[int]float64, len(sums))
	for b := range sums {
		out[b] = sums[b] / float64(cnts[b])
	}
	return out
}

// perDegreeSeries builds a degree-binned series across variants from a
// per-node metric extractor. Variants are processed concurrently; each
// gets its own index-derived rand.Rand (rngAt), so sampled extractors
// like betweennessPerNode stay deterministic at any worker count.
func perDegreeSeries(id, title, what string, variants []namedGraph, orig *graph.CSR,
	perNode func(s *graph.Static, rng *rand.Rand) []float64,
	restrict func(deg int) bool, rngAt func(i int) *rand.Rand) *Series {
	variants = append(variants, namedGraph{"original", gccOf(orig)})
	binned := make([]map[int]float64, len(variants))
	maxDegs := make([]int, len(variants))
	parallel.For(len(variants), func(i int) {
		st := variants[i].g.Static()
		binned[i] = binnedByDegree(st, perNode(st, rngAt(i)), restrict)
		maxDegs[i] = st.MaxDegree()
	})
	maxDeg := 0
	for _, d := range maxDegs {
		if d > maxDeg {
			maxDeg = d
		}
	}
	s := &Series{ID: id, Title: title, XLabel: "degree (bin lower bound)"}
	for _, v := range variants {
		s.Columns = append(s.Columns, v.name)
	}
	for _, b := range degreeBins(maxDeg) {
		row := make([]float64, len(variants))
		any := false
		for i := range variants {
			if val, ok := binned[i][b]; ok {
				row[i] = val
				any = true
			} else {
				row[i] = math.NaN()
			}
		}
		if any {
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, row)
		}
	}
	_ = what
	return s
}

// rngsFrom returns a per-variant RNG factory: variant i draws from the
// deterministic purpose id purpose+i.
func (l *Lab) rngsFrom(purpose int64) func(i int) *rand.Rand {
	return func(i int) *rand.Rand { return l.Rng(purpose + int64(i)) }
}

func clusteringPerNode(s *graph.Static, _ *rand.Rand) []float64 {
	return metrics.LocalClustering(s)
}

// betweennessPerNode returns normalized betweenness, sampling sources on
// larger graphs to keep figure regeneration fast.
func betweennessPerNode(s *graph.Static, rng *rand.Rand) []float64 {
	const exactLimit = 2500
	var bc []float64
	if s.N() <= exactLimit {
		bc = metrics.Betweenness(s)
	} else {
		bc = metrics.SampledBetweenness(s, exactLimit, rng)
	}
	norm := float64(s.N()) * float64(s.N()-1) / 2
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

// Fig5a reproduces Figure 5(a): clustering C(k) of the skitter-like graph
// under the five 2K-construction techniques.
func (l *Lab) Fig5a() (*Series, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	p, err := l.SkitterProfile()
	if err != nil {
		return nil, err
	}
	vars, err := l.variants2K(sk, p, 5100)
	if err != nil {
		return nil, err
	}
	return perDegreeSeries("fig5a", "Clustering C(k) in skitter-like graphs for 2K algorithms",
		"clustering", vars, sk, clusteringPerNode, func(d int) bool { return d >= 2 }, l.rngsFrom(5190)), nil
}

// Fig5b reproduces Figure 5(b): the distance distribution of the HOT
// graph under the five 2K-construction techniques.
func (l *Lab) Fig5b() (*Series, error) {
	hot, err := l.HOT()
	if err != nil {
		return nil, err
	}
	p, err := l.HOTProfile()
	if err != nil {
		return nil, err
	}
	vars, err := l.variants2K(hot, p, 5200)
	if err != nil {
		return nil, err
	}
	return distanceSeries("fig5b", "Distance distribution in HOT for 2K algorithms", vars, hot), nil
}

// Fig5c reproduces Figure 5(c): the distance distribution of the HOT
// graph under 3K-randomizing and 3K-targeting rewiring.
func (l *Lab) Fig5c() (*Series, error) {
	hot, err := l.HOT()
	if err != nil {
		return nil, err
	}
	p, err := l.HOTProfile()
	if err != nil {
		return nil, err
	}
	methods := []string{"3K-randomizing", "3K-targeting"}
	vars := make([]namedGraph, len(methods))
	err = parallel.ForErr(len(methods), func(mi int) error {
		g, err := generate3K(hot, p, methods[mi], l.Rng(5300+int64(mi)))
		if err != nil {
			return err
		}
		vars[mi] = namedGraph{methods[mi], gccOf(g)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return distanceSeries("fig5c", "Distance distribution in HOT for 3K algorithms", vars, hot), nil
}

// Fig6a reproduces Figure 6(a): distance distributions of dK-random
// graphs versus the skitter-like original.
func (l *Lab) Fig6a() (*Series, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	vars, err := l.variantsDK(sk, 6100)
	if err != nil {
		return nil, err
	}
	return distanceSeries("fig6a", "Distance distribution: dK-random vs skitter-like", vars, sk), nil
}

// Fig6b reproduces Figure 6(b): normalized node betweenness versus degree
// for dK-random graphs and the skitter-like original.
func (l *Lab) Fig6b() (*Series, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	vars, err := l.variantsDK(sk, 6200)
	if err != nil {
		return nil, err
	}
	return perDegreeSeries("fig6b", "Normalized betweenness vs degree: dK-random vs skitter-like",
		"betweenness", vars, sk, betweennessPerNode, nil, l.rngsFrom(6290)), nil
}

// Fig6c reproduces Figure 6(c): clustering C(k) for dK-random graphs and
// the skitter-like original.
func (l *Lab) Fig6c() (*Series, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	vars, err := l.variantsDK(sk, 6300)
	if err != nil {
		return nil, err
	}
	return perDegreeSeries("fig6c", "Clustering C(k): dK-random vs skitter-like",
		"clustering", vars, sk, clusteringPerNode, func(d int) bool { return d >= 2 }, l.rngsFrom(6390)), nil
}

// Fig7 reproduces Figure 7: C(k) with clustering maximized and minimized
// by 2K-preserving exploration, versus 2K-random and the original.
func (l *Lab) Fig7() (*Series, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	budget := 40 * sk.M()
	climbs := []struct {
		name string
		max  bool
	}{{"2K max-C̄", true}, {"2K min-C̄", false}}
	vars := make([]namedGraph, len(climbs))
	err = parallel.ForErr(len(climbs), func(vi int) error {
		res, err := exploreClustering(sk, climbs[vi].max, budget, l.Rng(7000+int64(vi)))
		if err != nil {
			return err
		}
		vars[vi] = namedGraph{climbs[vi].name, gccOf(res)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rnd, err := generateDKRandom(sk, 2, l.Rng(7090))
	if err != nil {
		return nil, err
	}
	vars = append(vars, namedGraph{"2K-random", gccOf(rnd)})
	return perDegreeSeries("fig7", "Varying clustering in 2K-graphs (skitter-like)",
		"clustering", vars, sk, clusteringPerNode, func(d int) bool { return d >= 2 }, l.rngsFrom(7099)), nil
}

// Fig8 reproduces Figure 8: distance distributions of dK-random graphs
// versus the HOT original.
func (l *Lab) Fig8() (*Series, error) {
	hot, err := l.HOT()
	if err != nil {
		return nil, err
	}
	vars, err := l.variantsDK(hot, 8100)
	if err != nil {
		return nil, err
	}
	return distanceSeries("fig8", "Distance distribution: dK-random vs HOT", vars, hot), nil
}

// Fig9 reproduces Figure 9: betweenness versus degree for dK-random
// graphs and the HOT original.
func (l *Lab) Fig9() (*Series, error) {
	hot, err := l.HOT()
	if err != nil {
		return nil, err
	}
	vars, err := l.variantsDK(hot, 9100)
	if err != nil {
		return nil, err
	}
	return perDegreeSeries("fig9", "Normalized betweenness vs degree: dK-random vs HOT",
		"betweenness", vars, hot, betweennessPerNode, nil, l.rngsFrom(9190)), nil
}

// Fig3 quantifies what the paper's Figure 3 visualizations show: where
// the hubs sit. For each dK-random variant (and the original) it reports
// the mean closeness ratio of the top-degree nodes — the average
// distance from the 5 highest-degree nodes to everything else, divided by
// the graph's mean pairwise distance. Ratios well below 1 mean hubs in
// the core (0K/1K-random); ratios near or above 1 mean hubs pushed to the
// periphery, the HOT signature that emerges at 2K and locks in at 3K.
func (l *Lab) Fig3() (*Table, error) {
	hot, err := l.HOT()
	if err != nil {
		return nil, err
	}
	vars, err := l.variantsDK(hot, 3100)
	if err != nil {
		return nil, err
	}
	vars = append(vars, namedGraph{"original", gccOf(hot)})
	rows := make([][]string, 0, len(vars))
	for _, v := range vars {
		ratio, ecc := hubPlacement(v.g.Static())
		rows = append(rows, []string{v.name, f(ratio), f(ecc)})
	}
	return &Table{
		ID:     "fig3",
		Title:  "Hub placement in dK-random vs HOT (closeness ratio of top-5 hubs; >1 = peripheral)",
		Header: []string{"graph", "hub distance ratio", "mean hub eccentricity"},
		Rows:   rows,
	}, nil
}

// hubPlacement returns (mean distance from top-5-degree nodes to all
// nodes) / (overall mean distance), and the hubs' mean eccentricity.
func hubPlacement(s *graph.Static) (ratio, meanEcc float64) {
	n := s.N()
	type nd struct{ id, deg int }
	nodes := make([]nd, n)
	for i := range nodes {
		nodes[i] = nd{i, s.Degree(i)}
	}
	sort.Slice(nodes, func(a, b int) bool { return nodes[a].deg > nodes[b].deg })
	top := 5
	if top > n {
		top = n
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var hubSum, hubCnt float64
	for _, h := range nodes[:top] {
		graph.BFS(s, h.id, dist, queue)
		ecc := 0
		for _, d := range dist {
			if d > 0 {
				hubSum += float64(d)
				hubCnt++
				if int(d) > ecc {
					ecc = int(d)
				}
			}
		}
		meanEcc += float64(ecc)
	}
	meanEcc /= float64(top)
	overall := metrics.SampledDistances(s, min(n, 400), rand.New(rand.NewSource(1))).Mean()
	if overall == 0 || hubCnt == 0 {
		return 0, meanEcc
	}
	return (hubSum / hubCnt) / overall, meanEcc
}

// exploreClustering is a tiny wrapper used by Fig7 and Table7.
func exploreClustering(g *graph.CSR, maximize bool, budget int, rng *rand.Rand) (*graph.CSR, error) {
	res, err := exploreMetricGraph(g, maximize, budget, rng)
	if err != nil {
		return nil, err
	}
	return res, nil
}
