package experiments

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

func withWorkers(w int, fn func()) {
	parallel.SetWorkers(w)
	defer parallel.SetWorkers(0)
	fn()
}

// TestMeanSummaryDeterministicAcrossWorkers pins the experiment engine's
// determinism guarantee at the averaging-seed level: a multi-seed run
// must produce the exact same mean summary at workers=1 and workers=8,
// because every seed derives its own RNG stream from (purpose, index)
// and summaries are reduced in index order.
func TestMeanSummaryDeterministicAcrossWorkers(t *testing.T) {
	gen := func(rng *rand.Rand) (*graph.CSR, error) {
		return generate.Stochastic0K(250, 6, generate.Options{Rng: rng})
	}
	run := func(workers int) metrics.Summary {
		var sum metrics.Summary
		var err error
		withWorkers(workers, func() {
			l := NewLab(Config{Scale: ScaleSmall, Seeds: 8, Seed: 77})
			sum, err = l.meanSummaryOver(false, 55, gen)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	serial, par := run(1), run(8)
	if serial != par {
		t.Fatalf("mean summary differs:\nworkers=1: %+v\nworkers=8: %+v", serial, par)
	}
}

// TestExperimentDeterministicAcrossWorkers runs a full registry
// experiment — generation fan-out, metric sweeps, rendering — at two
// worker counts and requires byte-identical output.
func TestExperimentDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		var buf bytes.Buffer
		withWorkers(workers, func() {
			l := NewLab(Config{Scale: ScaleSmall, Seeds: 2, Seed: 7})
			if err := Run(l, "fig3", &buf); err != nil {
				t.Fatal(err)
			}
		})
		return buf.Bytes()
	}
	serial, par := run(1), run(8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("fig3 rendering differs across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", serial, par)
	}
}
