package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyLab returns a lab small enough for unit testing; dataset-quality
// assertions live in internal/datasets.
func tinyLab() *Lab {
	l := NewLab(Config{Scale: ScaleSmall, Seeds: 1, Seed: 7})
	return l
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table3", "table4", "table5", "table6", "table7", "table8",
		"fig3", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Registry) < len(want) {
		t.Errorf("registry has %d entries, want >= %d", len(Registry), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(tinyLab(), "nope", &buf); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"metric", "a", "b"},
		Rows:   [][]string{{"kbar", "1.0", "2.0"}},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "metric", "kbar"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesRender(t *testing.T) {
	s := &Series{
		ID:      "y",
		Title:   "demo series",
		XLabel:  "x",
		Columns: []string{"a", "b"},
		X:       []float64{1, 2},
		Y:       [][]float64{{0.5, 0.25}, {0.125, 0.0625}},
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo series") || !strings.Contains(out, "0.5") {
		t.Errorf("rendered series wrong:\n%s", out)
	}
}

// TestTable5HOT checks the Table 5 shape on the real HOT-like graph: the
// rewiring space shrinks by orders of magnitude as d grows.
func TestTable5HOT(t *testing.T) {
	l := tinyLab()
	tbl, err := l.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	var possible, iso [4]int64
	for i, row := range tbl.Rows {
		v, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			t.Fatalf("row %d count %q: %v", i, row[1], err)
		}
		possible[i] = v
		if i > 0 {
			w, err := strconv.ParseInt(row[2], 10, 64)
			if err != nil {
				t.Fatalf("row %d iso count %q: %v", i, row[2], err)
			}
			iso[i] = w
		}
	}
	// Paper's shape: the rewiring space shrinks monotonically with d.
	if !(possible[0] > possible[1] && possible[1] > possible[2] && possible[2] > possible[3]) {
		t.Errorf("possible counts not strictly decreasing: %v", possible)
	}
	if possible[0] < 1e6 {
		t.Errorf("0K count %d implausibly small", possible[0])
	}
	// The paper's dramatic d=3 collapse shows in the isomorphism-
	// discounted column (leaf relabelings are isomorphic no-ops that
	// remain census-preserving at every d; see EXPERIMENTS.md).
	if iso[3] > iso[2]/10 {
		t.Errorf("discounted 3K count %d not dramatically smaller than 2K %d", iso[3], iso[2])
	}
}

// TestFig3HubPlacement checks the headline qualitative claim: hubs are
// central in 1K-random graphs but peripheral in the original HOT graph.
func TestFig3HubPlacement(t *testing.T) {
	l := tinyLab()
	tbl, err := l.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	ratios := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad ratio %q", row[1])
		}
		ratios[row[0]] = v
	}
	if ratios["1K-random"] >= ratios["original"] {
		t.Errorf("expected 1K-random hubs more central than original: 1K=%v orig=%v",
			ratios["1K-random"], ratios["original"])
	}
	if ratios["3K-random"] < 0.95*ratios["original"] || ratios["3K-random"] > 1.05*ratios["original"] {
		t.Errorf("3K-random hub placement should match original: 3K=%v orig=%v",
			ratios["3K-random"], ratios["original"])
	}
}

// TestFig8Shape: the distance-distribution series for HOT must exist for
// all variants and the 3K column must track the original closely.
func TestFig8Shape(t *testing.T) {
	l := tinyLab()
	s, err := l.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Columns) != 5 {
		t.Fatalf("columns = %v", s.Columns)
	}
	if len(s.X) == 0 {
		t.Fatal("empty series")
	}
	// Column indices: 0..3 are 0K..3K, 4 = original.
	var dev3K, dev0K float64
	for i := range s.X {
		dev3K += abs(s.Y[i][3] - s.Y[i][4])
		dev0K += abs(s.Y[i][0] - s.Y[i][4])
	}
	if dev3K >= dev0K {
		t.Errorf("3K (dev %v) should fit the original better than 0K (dev %v)", dev3K, dev0K)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestSize4Convergence: the 3K-random size-4 census must match the
// original in every class (the d=3 sufficiency evidence).
func TestSize4Convergence(t *testing.T) {
	l := tinyLab()
	tbl, err := l.Size4()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row[1:]
	}
	orig := byName["original"]
	three := byName["3K-random"]
	if orig == nil || three == nil {
		t.Fatalf("missing rows: %v", tbl.Rows)
	}
	for i := range orig {
		ov, _ := strconv.ParseInt(orig[i], 10, 64)
		tv, _ := strconv.ParseInt(three[i], 10, 64)
		if ov == 0 {
			if tv != 0 {
				t.Errorf("class %s: 3K=%d, original=0", tbl.Header[i+1], tv)
			}
			continue
		}
		rel := float64(tv-ov) / float64(ov)
		if rel < -0.02 || rel > 0.02 {
			t.Errorf("class %s: 3K=%d vs original=%d (rel %.3f)", tbl.Header[i+1], tv, ov, rel)
		}
	}
	one := byName["1K-random"]
	// 1K must differ noticeably in at least one triangle-bearing class.
	diverged := false
	for i := range orig {
		ov, _ := strconv.ParseInt(orig[i], 10, 64)
		tv, _ := strconv.ParseInt(one[i], 10, 64)
		if ov > 0 && absF(float64(tv-ov)/float64(ov)) > 0.1 {
			diverged = true
		}
	}
	if !diverged {
		t.Error("1K-random census suspiciously identical to original")
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestAppSim: protocol outcomes on the 3K ensemble track the original.
func TestAppSim(t *testing.T) {
	l := tinyLab()
	tbl, err := l.AppSim()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row[1:]
	}
	gccOrig, _ := strconv.ParseFloat(byName["original"][0], 64)
	gcc0K, _ := strconv.ParseFloat(byName["0K-random"][0], 64)
	gcc3K, _ := strconv.ParseFloat(byName["3K-random"][0], 64)
	if absF(gcc3K-gccOrig) > 0.15 {
		t.Errorf("3K attack response %v far from original %v", gcc3K, gccOrig)
	}
	if gcc0K < gccOrig+0.3 {
		t.Errorf("0K attack response %v should be far more robust than original %v", gcc0K, gccOrig)
	}
}

// TestLabCaching: datasets and profiles are built once per lab.
func TestLabCaching(t *testing.T) {
	l := tinyLab()
	a, err := l.HOT()
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.HOT()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("HOT rebuilt on second call")
	}
	pa, err := l.HOTProfile()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := l.HOTProfile()
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Error("HOT profile rebuilt on second call")
	}
}
