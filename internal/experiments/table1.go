package experiments

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/dk"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// exploreMetricGraph runs clustering exploration and returns the final
// graph (helper shared with figures.go).
func exploreMetricGraph(g *graph.CSR, maximize bool, budget int, rng *rand.Rand) (*graph.CSR, error) {
	res, err := generate.Explore(g, generate.MetricClustering, generate.ExploreOptions{
		Rng:         rng,
		Maximize:    maximize,
		MaxAttempts: budget,
		Patience:    budget / 2,
	})
	if err != nil {
		return nil, err
	}
	return res.FinalGraph, nil
}

// Table1 verifies the maximum-entropy column of the paper's Table 1:
//
//   - 0K-random graphs have Poisson degree distributions
//     P_0K(k) = e^{−k̄}·k̄^k/k!;
//   - 1K-random graphs have the uncorrelated joint degree distribution
//     P_1K(k1,k2) = k1·P(k1)·k2·P(k2)/k̄².
//
// The table reports empirical-vs-analytic errors: the KS distance of the
// 0K degree distribution from Poisson, and the mean relative error of the
// realized JDD against the maximum-entropy form over the most populous
// classes.
func (l *Lab) Table1() (*Table, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	p, err := l.SkitterProfile()
	if err != nil {
		return nil, err
	}

	// --- 0K-random degree distribution vs Poisson ---
	rng := l.Rng(100)
	kbar := p.AvgDegree
	hist := stats.NewIntHistogram()
	for s := 0; s < l.Cfg.Seeds; s++ {
		g, err := generate.Stochastic0K(p.N, kbar, generate.Options{Rng: rng})
		if err != nil {
			return nil, err
		}
		for _, d := range g.DegreeSequence() {
			hist.Add(d)
		}
	}
	poisson := stats.NewIntHistogram()
	scale := hist.Total()
	for k := 0; k < 4*int(kbar)+20; k++ {
		poisson.AddN(k, int(stats.PoissonPMF(kbar, k)*float64(scale)+0.5))
	}
	ksPoisson := stats.KSDistance(hist, poisson)

	// --- 1K-random JDD vs the uncorrelated maximum-entropy form ---
	// The analytic form P_1K(k1,k2) = k1P(k1)·k2P(k2)/k̄² holds exactly
	// for the configuration-model *pseudograph* (the paper's footnote 4);
	// verify it there by raw stub pairing, averaging over seeds.
	pseudo := make(map[dk.DegPair]float64)
	var stubs []int
	for k, n := range p.Degrees.Count {
		for i := 0; i < k*n; i++ {
			stubs = append(stubs, k)
		}
	}
	sort.Ints(stubs)
	rng2 := l.Rng(110)
	trials := 4 * l.Cfg.Seeds
	for t := 0; t < trials; t++ {
		rng2.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		for i := 0; i+1 < len(stubs); i += 2 {
			pseudo[dk.NewDegPair(stubs[i], stubs[i+1])]++
		}
	}
	m := float64(len(stubs) / 2)
	endP := func(k int) float64 { // P̃(k): probability an edge end has degree k
		return float64(k) * p.Degrees.P(k) / p.AvgDegree
	}
	expected := func(pr dk.DegPair) float64 {
		e := m * endP(pr.K1) * endP(pr.K2)
		if pr.K1 != pr.K2 {
			e *= 2 // unordered pair
		}
		return e
	}
	type cls struct {
		pair dk.DegPair
		got  float64
	}
	var top []cls
	for pr, c := range pseudo {
		top = append(top, cls{pr, c / float64(trials)})
	}
	sort.SliceStable(top, func(i, j int) bool {
		ei, ej := expected(top[i].pair), expected(top[j].pair)
		if ei != ej {
			return ei > ej
		}
		return pairLess(top[i].pair, top[j].pair)
	})
	if len(top) > 20 {
		top = top[:20]
	}
	var relErr float64
	for _, c := range top {
		e := expected(c.pair)
		relErr += math.Abs(c.got-e) / e
	}
	relErr /= float64(len(top))

	// The simple-graph deviation from the pseudograph form (footnote 4):
	// structural constraints deplete low–low classes and enrich
	// (1, hub) classes, driving r of simple 1K-random graphs negative.
	oneK, err := generateDKRandom(sk, 1, l.Rng(120))
	if err != nil {
		return nil, err
	}
	rRandom := metrics.Assortativity(gccOf(oneK).Static())
	rOriginal := metrics.Assortativity(gccOf(sk).Static())

	return &Table{
		ID:    "table1",
		Title: "Maximum-entropy forms of (d+1)K-distributions in dK-random graphs",
		Header: []string{
			"check", "value", "maximum-entropy reference",
		},
		Rows: [][]string{
			{"KS(0K-random degrees, Poisson)", f(ksPoisson), "→ 0"},
			{"mean rel. err of pseudograph 1K JDD vs k1P(k1)k2P(k2)/k̄²", f(relErr), "→ 0 (exact for pseudographs)"},
			{"r of simple 1K-random", f(rRandom), "pseudograph form 0; simple-graph constraints drive it negative (footnote 4, cf. Table 6)"},
			{"r of original", f(rOriginal), "(disassortative input)"},
		},
	}, nil
}

func pairLess(a, b dk.DegPair) bool {
	if a.K1 != b.K1 {
		return a.K1 < b.K1
	}
	return a.K2 < b.K2
}
