// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic reference topologies, plus the
// Table 1 maximum-entropy checks and the ablations called out in
// DESIGN.md. Each experiment returns a structured Table or Series that
// renders to text; cmd/dkrepro is the CLI front end and bench_test.go
// wraps each experiment in a benchmark.
//
// Averaging seeds, the independent topologies of each table/figure, and
// whole experiments (RunAll) execute concurrently on the worker pool of
// internal/parallel. Every replica derives its RNG stream from a
// (purpose, index) pair and results reduce in index order, so a run's
// output is bit-identical for any -workers value (DESIGN.md §3).
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Table is a rendered-paper-table equivalent: labeled rows × columns.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Series is a rendered-paper-figure equivalent: one X column and several
// named Y columns. Missing points are NaN and render as "-".
type Series struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	X       []float64
	Y       [][]float64 // Y[i][j]: column j at X[i]
}

// Render writes the series as an aligned text matrix.
func (s *Series) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", s.ID, s.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t%s\n", s.XLabel, strings.Join(s.Columns, "\t"))
	for i, x := range s.X {
		cells := make([]string, 0, len(s.Columns)+1)
		cells = append(cells, trimFloat(x))
		for j := range s.Columns {
			v := math.NaN()
			if j < len(s.Y[i]) {
				v = s.Y[i][j]
			}
			if math.IsNaN(v) {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.4g", v))
			}
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

// f formats a float for table cells.
func f(x float64) string { return fmt.Sprintf("%.3g", x) }

// fi formats an int for table cells.
func fi(x int64) string { return fmt.Sprintf("%d", x) }
