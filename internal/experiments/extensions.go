package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/generate"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/subgraphs"
)

// Size4 is an extension experiment supporting the paper's §6 claim that
// d = 3 "captures all graph properties proposed in the literature": it
// counts the six connected size-4 subgraph classes (the building blocks
// of the 4K-distribution) in dK-random graphs versus the original. If the
// 3K column matches the original while lower depths diverge, depth 3 is
// already constraining size-4 structure — evidence that the series has
// converged for practical purposes.
func (l *Lab) Size4() (*Table, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	vars, err := l.variantsDK(sk, 10100)
	if err != nil {
		return nil, err
	}
	vars = append(vars, namedGraph{"original", gccOf(sk)})
	header := []string{"graph", "path4", "claw", "cycle4", "paw", "diamond", "K4"}
	rows := make([][]string, 0, len(vars))
	for _, v := range vars {
		c := subgraphs.CountSize4(v.g.Static())
		rows = append(rows, []string{
			v.name, fi(c.Path4), fi(c.Claw), fi(c.Cycle4), fi(c.Paw), fi(c.Diamond), fi(c.K4),
		})
	}
	return &Table{
		ID:     "size4",
		Title:  "Size-4 subgraph census (4K building blocks) of dK-random vs original",
		Header: header,
		Rows:   rows,
	}, nil
}

// AppSim is an extension experiment evaluating the introduction's
// motivating applications on dK-random ensembles: targeted-attack
// robustness, SI worm spreading speed, and degree-greedy routing. The
// reproduction claim is behavioral: protocol outcomes on 2K/3K ensembles
// track the original while 0K/1K mislead.
func (l *Lab) AppSim() (*Table, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	vars, err := l.variantsDK(sk, 11100)
	if err != nil {
		return nil, err
	}
	vars = append(vars, namedGraph{"original", gccOf(sk)})
	rows := make([][]string, 0, len(vars))
	for _, v := range vars {
		s := v.g.Static()
		atk, err := netsim.Robustness(s, []float64{0.05}, true, nil)
		if err != nil {
			return nil, fmt.Errorf("appsim %s: %w", v.name, err)
		}
		rng := rand.New(rand.NewSource(77))
		worm, err := netsim.WormSpread(s, 0.5, 200, rng)
		if err != nil {
			return nil, fmt.Errorf("appsim %s: %w", v.name, err)
		}
		route, err := netsim.GreedyDegreeRouting(s, 300, 0, rng)
		if err != nil {
			return nil, fmt.Errorf("appsim %s: %w", v.name, err)
		}
		rows = append(rows, []string{
			v.name,
			f(atk[0].GCCFrac),
			fmt.Sprintf("%d", worm.RoundsTo(0.9)),
			f(route.SuccessRate),
			f(route.AvgStretch),
		})
	}
	return &Table{
		ID:     "appsim",
		Title:  "Protocol behavior on dK-random ensembles (attack 5% hubs; SI worm beta=0.5; greedy routing)",
		Header: []string{"graph", "GCC after attack", "worm rounds to 90%", "routing success", "routing stretch"},
		Rows:   rows,
	}, nil
}

// SExplore reproduces the 1K-space exploration the paper describes as
// "the core of recent work that led the authors of [19] to conclude that
// d = 1 was not constraining enough": drive the likelihood S = Σ d_u·d_v
// to its extremes under degree-preserving rewiring and watch every other
// metric swing, normalized as S/S_max like Li et al.'s s-metric.
func (l *Lab) SExplore() (*Table, error) {
	sk, err := l.Skitter()
	if err != nil {
		return nil, err
	}
	budget := 40 * sk.M()
	type variant struct {
		name string
		max  bool
	}
	cols := make([]metricsSummaryNamed, 0, 3)
	for vi, v := range []variant{{"min S", false}, {"max S", true}} {
		rng := l.Rng(12000 + int64(vi))
		res, err := generate.Explore(sk, generate.MetricLikelihood, generate.ExploreOptions{
			Rng:         rng,
			Maximize:    v.max,
			MaxAttempts: budget,
			Patience:    budget / 2,
		})
		if err != nil {
			return nil, fmt.Errorf("sexplore %s: %w", v.name, err)
		}
		sum, err := summarizeGCC(res.FinalGraph, false, rng)
		if err != nil {
			return nil, err
		}
		cols = append(cols, metricsSummaryNamed{v.name, sum})
	}
	orig, err := summarizeGCC(sk, false, l.Rng(12099))
	if err != nil {
		return nil, err
	}
	cols = append(cols, metricsSummaryNamed{"original", orig})
	sMaxGreedy := metrics.SMaxGreedy(gccOf(sk).DegreeSequence())
	rows := [][]string{}
	addRow := func(name string, pick func(s metrics.Summary) float64) {
		row := []string{name}
		for _, c := range cols {
			row = append(row, f(pick(c.sum)))
		}
		rows = append(rows, row)
	}
	addRow("S/Smax", func(s metrics.Summary) float64 { return s.S / sMaxGreedy })
	addRow("r", func(s metrics.Summary) float64 { return s.R })
	addRow("cbar", func(s metrics.Summary) float64 { return s.CBar })
	addRow("dbar", func(s metrics.Summary) float64 { return s.DBar })
	return &Table{
		ID:     "sexplore",
		Title:  "1K-space exploration: likelihood S extremes under fixed degree distribution",
		Header: []string{"metric", "min S", "max S", "original"},
		Rows:   rows,
	}, nil
}

type metricsSummaryNamed struct {
	name string
	sum  metrics.Summary
}
