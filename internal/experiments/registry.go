package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"repro/internal/parallel"
)

// Renderable is anything an experiment can return (Table or Series).
type Renderable interface {
	Render(w io.Writer) error
}

// Runner executes one experiment against a Lab.
type Runner func(l *Lab) (Renderable, error)

// Registry maps experiment ids (paper table/figure names) to runners.
var Registry = map[string]Runner{
	"table1": func(l *Lab) (Renderable, error) { return l.Table1() },
	"table3": func(l *Lab) (Renderable, error) { return l.Table3() },
	"table4": func(l *Lab) (Renderable, error) { return l.Table4() },
	"table5": func(l *Lab) (Renderable, error) { return l.Table5() },
	"table6": func(l *Lab) (Renderable, error) { return l.Table6() },
	"table7": func(l *Lab) (Renderable, error) { return l.Table7() },
	"table8": func(l *Lab) (Renderable, error) { return l.Table8() },
	"fig3":   func(l *Lab) (Renderable, error) { return l.Fig3() },
	"fig5a":  func(l *Lab) (Renderable, error) { return l.Fig5a() },
	"fig5b":  func(l *Lab) (Renderable, error) { return l.Fig5b() },
	"fig5c":  func(l *Lab) (Renderable, error) { return l.Fig5c() },
	"fig6a":  func(l *Lab) (Renderable, error) { return l.Fig6a() },
	"fig6b":  func(l *Lab) (Renderable, error) { return l.Fig6b() },
	"fig6c":  func(l *Lab) (Renderable, error) { return l.Fig6c() },
	"fig7":   func(l *Lab) (Renderable, error) { return l.Fig7() },
	"fig8":   func(l *Lab) (Renderable, error) { return l.Fig8() },
	"fig9":   func(l *Lab) (Renderable, error) { return l.Fig9() },
	// Extensions beyond the paper's own artifacts (see DESIGN.md §5).
	"size4":    func(l *Lab) (Renderable, error) { return l.Size4() },
	"appsim":   func(l *Lab) (Renderable, error) { return l.AppSim() },
	"sexplore": func(l *Lab) (Renderable, error) { return l.SExplore() },
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id and writes its rendering to w.
func Run(l *Lab, id string, w io.Writer) error {
	runner, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	r, err := runner(l)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	return r.Render(w)
}

// RunAll executes every experiment concurrently on the worker pool and
// writes the renderings to w in sorted id order. Each experiment derives
// its randomness from its own purpose ids, so the combined output is
// identical to a serial run; on failure the error of the first id (in
// sorted order) is returned and nothing is written.
func RunAll(l *Lab, w io.Writer) error {
	ids := IDs()
	bufs := make([]bytes.Buffer, len(ids))
	if err := parallel.ForErr(len(ids), func(i int) error {
		return Run(l, ids[i], &bufs[i])
	}); err != nil {
		return err
	}
	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}
