// Package graph implements the undirected simple-graph substrate used by
// every other package in this repository — the two workloads of the
// paper's pipeline: edge rewiring (the §4.1.4 construction engines) and
// traversal-heavy metric sweeps (the §2 metric suite, §5 evaluation).
//
// Two representations are provided:
//
//   - Graph: a mutable structure optimized for the edge-rewiring workloads
//     at the heart of the dK-series construction algorithms. It supports
//     O(1) expected-time edge existence tests, O(1) uniform random edge
//     selection, and O(1) expected-time edge insertion and removal.
//
//   - Static: an immutable compressed-sparse-row (CSR) snapshot optimized
//     for the traversal-heavy metric computations (all-pairs BFS,
//     betweenness, clustering, spectral analysis).
//
// Nodes are identified by dense integers 0..N()-1. Self-loops and parallel
// edges are rejected; the Multigraph type in pseudograph.go handles the
// intermediate non-simple stages of configuration-model construction.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between nodes U and V. Edges held inside a
// Graph are stored in canonical orientation (U < V), but the type itself
// does not enforce it so callers can construct edges in either order.
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Graph is a mutable undirected simple graph.
//
// The zero value is an empty graph with no nodes; use New to preallocate a
// node set. All mutating methods keep the internal edge list and adjacency
// index consistent, so a Graph is always in a valid state between calls.
// Graph is not safe for concurrent mutation.
type Graph struct {
	// adj[u] maps a neighbor v to the index of edge (u,v) in edges.
	adj []map[int]int
	// edges is the flat unordered edge list; each edge appears once in
	// canonical orientation.
	edges []Edge
}

// New returns an empty graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	g := &Graph{adj: make([]map[int]int, n)}
	return g
}

// NewFromEdges builds a graph with n nodes and the given edges.
// It returns an error if any edge is a self-loop, a duplicate, or refers to
// a node outside [0, n).
func NewFromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddNode appends a new isolated node and returns its identifier.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether the edge (u,v) exists. Out-of-range arguments
// report false rather than panicking, which simplifies rewiring loops that
// probe speculative endpoints.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// AddEdge inserts the undirected edge (u,v).
// It returns an error for self-loops, duplicate edges, and out-of-range
// endpoints.
func (g *Graph) AddEdge(u, v int) error {
	switch {
	case u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj):
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	case u == v:
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if _, ok := g.adj[u][v]; ok {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{u, v}.Canon())
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]int, 4)
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]int, 4)
	}
	g.adj[u][v] = idx
	g.adj[v][u] = idx
	return nil
}

// RemoveEdge deletes the undirected edge (u,v) and reports whether it was
// present. Removal is O(1): the deleted edge is swapped with the last entry
// of the edge list.
func (g *Graph) RemoveEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	idx, ok := g.adj[u][v]
	if !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	last := len(g.edges) - 1
	if idx != last {
		moved := g.edges[last]
		g.edges[idx] = moved
		g.adj[moved.U][moved.V] = idx
		g.adj[moved.V][moved.U] = idx
	}
	g.edges = g.edges[:last]
	return true
}

// EdgeAt returns the i'th edge of the internal edge list. Indices are only
// stable between mutations; the intended use is uniform random edge
// selection via EdgeAt(rng.Intn(g.M())).
func (g *Graph) EdgeAt(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list in canonical orientation.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// SortedEdges returns the edge list sorted lexicographically; useful for
// deterministic output and tests.
func (g *Graph) SortedEdges() []Edge {
	out := g.Edges()
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// VisitNeighbors calls f for every neighbor of u until f returns false.
// Iteration order is unspecified.
func (g *Graph) VisitNeighbors(u int, f func(v int) bool) {
	for v := range g.adj[u] {
		if !f(v) {
			return
		}
	}
}

// AppendNeighbors appends the neighbors of u to dst and returns the
// extended slice. Order is unspecified.
func (g *Graph) AppendNeighbors(dst []int, u int) []int {
	for v := range g.adj[u] {
		dst = append(dst, v)
	}
	return dst
}

// Neighbors returns a newly allocated, sorted slice of u's neighbors.
func (g *Graph) Neighbors(u int) []int {
	out := g.AppendNeighbors(make([]int, 0, len(g.adj[u])), u)
	sort.Ints(out)
	return out
}

// DegreeSequence returns the degree of every node, indexed by node.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, len(g.adj))
	for u := range g.adj {
		out[u] = len(g.adj[u])
	}
	return out
}

// MaxDegree returns the largest node degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := range g.adj {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average node degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(len(g.adj))
}

// EdgesCanonicallyOrdered reports whether the internal edge list is in
// sorted canonical order — the order EdgeAt exposes. Binary-decoded
// graphs are always in this order; parsed graphs follow input order.
func (g *Graph) EdgesCanonicallyOrdered() bool {
	for i := 1; i < len(g.edges); i++ {
		a, b := g.edges[i-1], g.edges[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			return false
		}
	}
	return true
}

// CanonicalClone returns a copy of g whose internal edge list is in
// sorted canonical order, so index-addressed edge draws (EdgeAt) are a
// pure function of the edge set rather than of construction order.
// Consumers that need run-to-run determinism independent of how a graph
// was loaded (text parse vs binary decode) normalize through this.
func (g *Graph) CanonicalClone() *Graph {
	edges := g.SortedEdges()
	c := &Graph{adj: make([]map[int]int, len(g.adj)), edges: edges}
	for u, m := range g.adj {
		if m != nil {
			c.adj[u] = make(map[int]int, len(m))
		}
	}
	for i, e := range edges {
		c.adj[e.U][e.V] = i
		c.adj[e.V][e.U] = i
	}
	return c
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:   make([]map[int]int, len(g.adj)),
		edges: make([]Edge, len(g.edges)),
	}
	copy(c.edges, g.edges)
	for u, m := range g.adj {
		if m == nil {
			continue
		}
		cm := make(map[int]int, len(m))
		for v, idx := range m {
			cm[v] = idx
		}
		c.adj[u] = cm
	}
	return c
}

// Equal reports whether g and h have identical node counts and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for _, e := range g.edges {
		if !h.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// CommonNeighborCount returns the number of nodes adjacent to both u and v.
// It scans the smaller adjacency set.
func (g *Graph) CommonNeighborCount(u, v int) int {
	a, b := g.adj[u], g.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for w := range a {
		if _, ok := b[w]; ok {
			n++
		}
	}
	return n
}
