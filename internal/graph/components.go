package graph

// Components labels the connected components of s. It returns a node→
// component-id slice (ids are dense, assigned in discovery order) and the
// size of each component.
func Components(s *Static) (comp []int32, sizes []int) {
	n := s.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	next := int32(0)
	for root := 0; root < n; root++ {
		if comp[root] >= 0 {
			continue
		}
		id := next
		next++
		size := 1
		comp[root] = id
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range s.Neighbors(int(u)) {
				if comp[v] < 0 {
					comp[v] = id
					size++
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return comp, sizes
}

// IsConnected reports whether s is connected (the empty graph counts as
// connected).
func IsConnected(s *Static) bool {
	if s.N() == 0 {
		return true
	}
	_, sizes := Components(s)
	return len(sizes) == 1
}

// GiantComponent returns the subgraph induced by the largest connected
// component of c, together with a mapping from new node ids to the
// original ids. Ties are broken by the smallest original root node, which
// makes the result deterministic.
func GiantComponent(c *CSR) (*CSR, []int) {
	comp, sizes := Components(c.Static())
	if len(sizes) == 0 {
		return NewCSR(0), nil
	}
	best := 0
	for id, sz := range sizes {
		if sz > sizes[best] {
			best = id
		}
	}
	nodes := make([]int, 0, sizes[best])
	for u, cc := range comp {
		if cc == int32(best) {
			nodes = append(nodes, u)
		}
	}
	return Subgraph(c, nodes)
}

// Subgraph returns the subgraph induced by the given node set and the
// new→old node id mapping. Nodes outside the set and edges with an
// endpoint outside the set are dropped; surviving edges keep their
// relative edge-list order, so downstream index-addressed edge draws
// are a pure function of (input order, node set).
func Subgraph(c *CSR, nodes []int) (*CSR, []int) {
	mark := make([]bool, c.N())
	for _, u := range nodes {
		mark[u] = true
	}
	oldToNew := make([]int, c.N())
	newToOld := make([]int, 0, len(nodes))
	for u := 0; u < c.N(); u++ {
		if mark[u] {
			oldToNew[u] = len(newToOld)
			newToOld = append(newToOld, u)
		} else {
			oldToNew[u] = -1
		}
	}
	kept := make([]Edge, 0, len(c.edges))
	for _, e := range c.edges {
		if mark[e.U] && mark[e.V] {
			kept = append(kept, Edge{oldToNew[e.U], oldToNew[e.V]}.Canon())
		}
	}
	return newCSRPreservingOrder(len(newToOld), kept), newToOld
}

// DropIsolated returns the subgraph with all degree-0 nodes removed and the
// new→old node id mapping.
func DropIsolated(c *CSR) (*CSR, []int) {
	nodes := make([]int, 0, c.N())
	for u := 0; u < c.N(); u++ {
		if c.Degree(u) > 0 {
			nodes = append(nodes, u)
		}
	}
	return Subgraph(c, nodes)
}
