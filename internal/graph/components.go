package graph

// Components labels the connected components of s. It returns a node→
// component-id slice (ids are dense, assigned in discovery order) and the
// size of each component.
func Components(s *Static) (comp []int32, sizes []int) {
	n := s.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	next := int32(0)
	for root := 0; root < n; root++ {
		if comp[root] >= 0 {
			continue
		}
		id := next
		next++
		size := 1
		comp[root] = id
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range s.Neighbors(int(u)) {
				if comp[v] < 0 {
					comp[v] = id
					size++
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return comp, sizes
}

// IsConnected reports whether s is connected (the empty graph counts as
// connected).
func IsConnected(s *Static) bool {
	if s.N() == 0 {
		return true
	}
	_, sizes := Components(s)
	return len(sizes) == 1
}

// GiantComponent returns the subgraph induced by the largest connected
// component of g, together with a mapping from new node ids to the
// original ids. Ties are broken by the smallest original root node, which
// makes the result deterministic.
func GiantComponent(g *Graph) (*Graph, []int) {
	s := g.Static()
	comp, sizes := Components(s)
	if len(sizes) == 0 {
		return New(0), nil
	}
	best := 0
	for id, sz := range sizes {
		if sz > sizes[best] {
			best = id
		}
	}
	return inducedSubgraph(g, comp, int32(best), sizes[best])
}

// Subgraph returns the subgraph induced by the given node set and the
// new→old node id mapping. Nodes outside the set and edges with an
// endpoint outside the set are dropped.
func Subgraph(g *Graph, nodes []int) (*Graph, []int) {
	mark := make([]bool, g.N())
	for _, u := range nodes {
		mark[u] = true
	}
	oldToNew := make([]int, g.N())
	newToOld := make([]int, 0, len(nodes))
	for u := 0; u < g.N(); u++ {
		if mark[u] {
			oldToNew[u] = len(newToOld)
			newToOld = append(newToOld, u)
		} else {
			oldToNew[u] = -1
		}
	}
	sub := New(len(newToOld))
	for _, e := range g.edges {
		if mark[e.U] && mark[e.V] {
			if err := sub.AddEdge(oldToNew[e.U], oldToNew[e.V]); err != nil {
				panic("graph: corrupt edge list: " + err.Error())
			}
		}
	}
	return sub, newToOld
}

func inducedSubgraph(g *Graph, comp []int32, id int32, size int) (*Graph, []int) {
	nodes := make([]int, 0, size)
	for u, c := range comp {
		if c == id {
			nodes = append(nodes, u)
		}
	}
	return Subgraph(g, nodes)
}

// DropIsolated returns the subgraph with all degree-0 nodes removed and the
// new→old node id mapping.
func DropIsolated(g *Graph) (*Graph, []int) {
	nodes := make([]int, 0, g.N())
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) > 0 {
			nodes = append(nodes, u)
		}
	}
	return Subgraph(g, nodes)
}
