package graph

// Static is an immutable compressed-sparse-row (CSR) snapshot of a graph.
// Neighbor lists are stored contiguously and sorted, which makes the
// traversal-heavy metric computations (all-pairs BFS, Brandes betweenness,
// triangle counting, Lanczos iterations) both cache-friendly and
// allocation-free.
type Static struct {
	offsets []int32 // len N+1; neighbors of u are neigh[offsets[u]:offsets[u+1]]
	neigh   []int32 // len 2M, sorted within each node's window
	m       int
}

// Static builds a CSR snapshot of g. Mutating g afterwards does not affect
// the snapshot.
func (g *Graph) Static() *Static {
	n := g.N()
	s := &Static{
		offsets: make([]int32, n+1),
		neigh:   make([]int32, 2*len(g.edges)),
		m:       len(g.edges),
	}
	for u := 0; u < n; u++ {
		s.offsets[u+1] = s.offsets[u] + int32(len(g.adj[u]))
	}
	fill := make([]int32, n)
	copy(fill, s.offsets[:n])
	for _, e := range g.edges {
		s.neigh[fill[e.U]] = int32(e.V)
		fill[e.U]++
		s.neigh[fill[e.V]] = int32(e.U)
		fill[e.V]++
	}
	for u := 0; u < n; u++ {
		w := s.neigh[s.offsets[u]:s.offsets[u+1]]
		sortInt32(w)
	}
	return s
}

// N returns the number of nodes.
func (s *Static) N() int { return len(s.offsets) - 1 }

// M returns the number of edges.
func (s *Static) M() int { return s.m }

// Degree returns the degree of node u.
func (s *Static) Degree(u int) int {
	return int(s.offsets[u+1] - s.offsets[u])
}

// Neighbors returns the sorted neighbor list of u as a shared subslice.
// Callers must not modify it.
func (s *Static) Neighbors(u int) []int32 {
	return s.neigh[s.offsets[u]:s.offsets[u+1]]
}

// HasEdge reports whether (u,v) is an edge, by binary search in u's
// (sorted) neighbor window.
func (s *Static) HasEdge(u, v int) bool {
	w := s.Neighbors(u)
	lo, hi := 0, len(w)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(w[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(w) && int(w[lo]) == v
}

// AvgDegree returns 2m/n, or 0 for an empty graph.
func (s *Static) AvgDegree() float64 {
	if s.N() == 0 {
		return 0
	}
	return 2 * float64(s.m) / float64(s.N())
}

// MaxDegree returns the largest node degree, or 0 for an empty graph.
func (s *Static) MaxDegree() int {
	max := 0
	for u := 0; u < s.N(); u++ {
		if d := s.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// Edges returns a newly allocated canonical edge list (U < V).
func (s *Static) Edges() []Edge {
	out := make([]Edge, 0, s.m)
	for u := 0; u < s.N(); u++ {
		for _, v := range s.Neighbors(u) {
			if int(v) > u {
				out = append(out, Edge{u, int(v)})
			}
		}
	}
	return out
}

// Graph converts the snapshot back into a mutable Graph.
func (s *Static) Graph() *Graph {
	g := New(s.N())
	for u := 0; u < s.N(); u++ {
		for _, v := range s.Neighbors(u) {
			if int(v) > u {
				// Edges in a Static are unique and in range by construction.
				if err := g.AddEdge(u, int(v)); err != nil {
					panic("graph: corrupt Static snapshot: " + err.Error())
				}
			}
		}
	}
	return g
}

// sortInt32 sorts small int32 slices with insertion sort and falls back to
// a bottom-up heapsort for longer ones. Neighbor windows of power-law
// graphs are mostly tiny, so this outruns the reflection-based sort.Slice.
func sortInt32(a []int32) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && a[j] > x {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	heapSortInt32(a)
}

func heapSortInt32(a []int32) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownInt32(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownInt32(a, 0, end)
	}
}

func siftDownInt32(a []int32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// Adjacency is the read-only sorted-window view shared by CSR and
// Static: everything extraction and the subgraph census need. Both
// representations satisfy it, so analysis code runs directly on the
// working CSR with no snapshot copy.
type Adjacency interface {
	N() int
	M() int
	Degree(u int) int
	// Neighbors returns u's neighbors in strictly ascending order. The
	// slice aliases internal storage and is valid only until the next
	// mutation of the underlying graph.
	Neighbors(u int) []int32
	AvgDegree() float64
}
