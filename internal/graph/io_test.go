package graph

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestReadEdgeListLimitRoundTrip(t *testing.T) {
	g := New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, labels, err := ReadEdgeListLimit(&buf, ReadLimits{MaxBytes: 1 << 20, MaxEdges: 100, MaxNodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Interning renumbers nodes in first-appearance order; map dense ids
	// back through labels before comparing edge sets.
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round-trip changed size: got n=%d m=%d, want n=%d m=%d", h.N(), h.M(), g.N(), g.M())
	}
	for _, e := range h.SortedEdges() {
		if !g.HasEdge(labels[e.U], labels[e.V]) {
			t.Fatalf("round-trip invented edge %d–%d", labels[e.U], labels[e.V])
		}
	}
}

func TestReadEdgeListCommentsBlanksAndWhitespace(t *testing.T) {
	in := "# header comment\n\n  \t\n10 20\n\n# mid comment\n\t20   30\t\n30 10  \n"
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d, want 3/3", g.N(), g.M())
	}
	want := []int{10, 20, 30}
	for i, l := range want {
		if labels[i] != l {
			t.Fatalf("labels[%d] = %d, want %d (first-appearance order)", i, labels[i], l)
		}
	}
}

func TestReadEdgeListMalformedLines(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"one field", "0 1\n2\n", "want 2 fields"},
		{"bad first node", "x 1\n", `bad node "x"`},
		{"bad second node", "1 y\n", `bad node "y"`},
		{"negative label", "0 -1\n", "negative node label"},
		{"self-loop", "3 3\n", "line 1"},
		{"duplicate edge", "0 1\n1 0\n", "line 2"},
		{"float label", "0 1.5\n", `bad node "1.5"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadEdgeList(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("input %q parsed without error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if errors.Is(err, ErrLimit) {
				t.Fatalf("malformed input must not report ErrLimit: %v", err)
			}
		})
	}
}

func TestReadEdgeListLimitMaxBytes(t *testing.T) {
	in := "0 1\n1 2\n2 3\n"
	// Exactly at the limit parses.
	g, _, err := ReadEdgeListLimit(strings.NewReader(in), ReadLimits{MaxBytes: int64(len(in))})
	if err != nil {
		t.Fatalf("input exactly at MaxBytes rejected: %v", err)
	}
	if g.M() != 3 {
		t.Fatalf("m = %d, want 3", g.M())
	}
	// One byte under the limit fails with ErrLimit.
	_, _, err = ReadEdgeListLimit(strings.NewReader(in), ReadLimits{MaxBytes: int64(len(in)) - 1})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized input: got %v, want ErrLimit", err)
	}
}

func TestReadEdgeListLimitMaxBytesStreams(t *testing.T) {
	// A many-megabyte input against a tiny byte budget must fail after
	// reading O(limit) bytes, not the whole stream.
	big := &countingReader{r: strings.NewReader(strings.Repeat("0 1\n", 1<<20))}
	_, _, err := ReadEdgeListLimit(big, ReadLimits{MaxBytes: 16})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("got %v, want ErrLimit", err)
	}
	if big.n > 256*1024 {
		t.Fatalf("read %d bytes of a 4 MiB stream against a 16-byte limit; parse is not streaming", big.n)
	}
}

func TestReadEdgeListLimitMaxEdges(t *testing.T) {
	in := "0 1\n1 2\n2 3\n3 4\n"
	if _, _, err := ReadEdgeListLimit(strings.NewReader(in), ReadLimits{MaxEdges: 4}); err != nil {
		t.Fatalf("4 edges against MaxEdges=4 rejected: %v", err)
	}
	_, _, err := ReadEdgeListLimit(strings.NewReader(in), ReadLimits{MaxEdges: 3})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("got %v, want ErrLimit", err)
	}
	if !strings.Contains(err.Error(), "more than 3 edges") {
		t.Fatalf("error %q should name the edge bound", err)
	}
}

func TestReadEdgeListLimitMaxNodes(t *testing.T) {
	// A star 0–1, 0–2, ... introduces one new node per line.
	var sb strings.Builder
	for i := 1; i <= 10; i++ {
		fmt.Fprintf(&sb, "0 %d\n", i)
	}
	if _, _, err := ReadEdgeListLimit(strings.NewReader(sb.String()), ReadLimits{MaxNodes: 11}); err != nil {
		t.Fatalf("11 nodes against MaxNodes=11 rejected: %v", err)
	}
	_, _, err := ReadEdgeListLimit(strings.NewReader(sb.String()), ReadLimits{MaxNodes: 5})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("got %v, want ErrLimit", err)
	}
}

func TestReadEdgeListZeroLimitsUnbounded(t *testing.T) {
	var sb strings.Builder
	for i := 1; i <= 500; i++ {
		fmt.Fprintf(&sb, "0 %d\n", i)
	}
	g, _, err := ReadEdgeListLimit(strings.NewReader(sb.String()), ReadLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 501 || g.M() != 500 {
		t.Fatalf("got n=%d m=%d, want 501/500", g.N(), g.M())
	}
}
