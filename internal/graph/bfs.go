package graph

// BFS computes single-source shortest-path hop distances from src into
// dist, which must have length s.N(). Unreachable nodes get -1. The queue
// buffer is supplied by the caller so all-pairs sweeps can run without
// per-source allocation; it must have capacity >= s.N() (its contents are
// overwritten). It returns the number of reached nodes, src included.
func BFS(s *Static, src int, dist []int32, queue []int32) int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], int32(src))
	head := 0
	reached := 1
	for head < len(queue) {
		u := queue[head]
		head++
		du := dist[u]
		for _, v := range s.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				reached++
				queue = append(queue, v)
			}
		}
	}
	return reached
}

// Eccentricity returns the largest finite hop distance from src.
func Eccentricity(s *Static, src int) int {
	dist := make([]int32, s.N())
	queue := make([]int32, 0, s.N())
	BFS(s, src, dist, queue)
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}
