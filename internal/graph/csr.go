package graph

import (
	"fmt"
	"sort"
)

// CSR is the mutable working representation of an undirected simple
// graph: compressed-sparse-row adjacency with int32 node ids, sorted
// neighbor windows, and an edge-index overlay that makes edge removal
// O(deg) instead of O(m).
//
// It replaces the map-adjacency Graph everywhere past the ingestion
// boundary. Compared to Graph's ~50+ bytes per directed adjacency entry
// (map bucket + pointer overhead), CSR spends 8 bytes (neighbor id +
// edge index) plus amortized slack, which is what opens the
// million-node path.
//
// Layout: node u's live neighbor window is
// neigh[start[u] : start[u]+deg[u]], sorted ascending, with capacity
// wcap[u]. epos runs parallel to neigh: epos[i] is the index in edges
// of the edge between the window's owner and neigh[i]. edges is the
// flat edge list in canonical orientation (U < V) with the exact
// append / swap-remove semantics of Graph, so index-addressed edge
// draws (EdgeAt(rng.Intn(M()))) consume identical RNG streams on
// either representation.
//
// When an insert finds its window full, the window relocates to the
// tail of neigh with fresh slack (per-node free-slot relocation); the
// abandoned capacity is reclaimed by a full compaction once dead space
// exceeds half the arena. Depth>=1 rewiring is degree-preserving and
// therefore never relocates.
//
// CSR is not safe for concurrent mutation; concurrent reads are safe.
type CSR struct {
	start []int32 // window start of node u in neigh/epos
	deg   []int32 // live degree of node u
	wcap  []int32 // window capacity of node u
	neigh []int32 // neighbor arena; windows sorted ascending
	epos  []int32 // parallel to neigh: index into edges
	edges []Edge  // flat edge list, canonical orientation, swap-remove order
	dead  int     // abandoned window capacity awaiting compaction
}

// NewCSR returns an empty graph with n isolated nodes.
func NewCSR(n int) *CSR {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &CSR{
		start: make([]int32, n),
		deg:   make([]int32, n),
		wcap:  make([]int32, n),
	}
}

// NewCSRFromEdges builds a graph with n nodes and the given edges.
// It returns an error if any edge is a self-loop, a duplicate, or refers
// to a node outside [0, n).
func NewCSRFromEdges(n int, edges []Edge) (*CSR, error) {
	c := NewCSR(n)
	c.reserve(edges)
	for _, e := range edges {
		if err := c.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// reserve pre-sizes the windows for a known upcoming edge list so the
// AddEdge loop never relocates. Harmless if some edges later fail
// validation — slack is just slack.
func (c *CSR) reserve(edges []Edge) {
	n := len(c.deg)
	if n == 0 || len(edges) == 0 {
		return
	}
	need := make([]int32, n)
	copy(need, c.deg)
	for _, e := range edges {
		if e.U >= 0 && e.U < n {
			need[e.U]++
		}
		if e.V >= 0 && e.V < n {
			need[e.V]++
		}
	}
	total := 0
	for _, d := range need {
		total += int(d)
	}
	neigh := make([]int32, total)
	eposArr := make([]int32, total)
	var off int32
	for u := 0; u < n; u++ {
		d := c.deg[u]
		copy(neigh[off:off+d], c.window(u))
		copy(eposArr[off:off+d], c.ewindow(u))
		c.start[u] = off
		c.wcap[u] = need[u]
		off += need[u]
	}
	c.neigh, c.epos, c.dead = neigh, eposArr, 0
}

// csrFromCanonicalEdges builds a CSR from an edge list that is already
// simple, in-range, and sorted in canonical order (U < V, sorted by
// (U, V)). Because the list is sorted, each node's window fills in
// ascending neighbor order — backward neighbors (from edges where the
// node is V) arrive before forward ones, both runs ascending — so no
// per-window sort is needed: the whole build is O(n + m). The binary
// decoder and CanonicalClone use this.
func csrFromCanonicalEdges(n int, edges []Edge) *CSR {
	c := &CSR{
		start: make([]int32, n),
		deg:   make([]int32, n),
		wcap:  make([]int32, n),
		neigh: make([]int32, 2*len(edges)),
		epos:  make([]int32, 2*len(edges)),
		edges: edges,
	}
	for _, e := range edges {
		c.wcap[e.U]++
		c.wcap[e.V]++
	}
	var off int32
	for u := 0; u < n; u++ {
		c.start[u] = off
		off += c.wcap[u]
	}
	fill := make([]int32, n)
	copy(fill, c.start)
	for i, e := range edges {
		c.neigh[fill[e.U]] = int32(e.V)
		c.epos[fill[e.U]] = int32(i)
		fill[e.U]++
		c.neigh[fill[e.V]] = int32(e.U)
		c.epos[fill[e.V]] = int32(i)
		fill[e.V]++
	}
	copy(c.deg, c.wcap)
	return c
}

// CSR builds the CSR working representation of g, preserving g's edge
// list order exactly so EdgeAt draws are unchanged by the conversion.
func (g *Graph) CSR() *CSR {
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	return newCSRPreservingOrder(g.N(), edges)
}

// newCSRPreservingOrder builds a CSR from a simple, in-range edge list
// in arbitrary order, taking ownership of edges and keeping it as the
// edge list verbatim. Windows are sorted after a counting fill; the
// edge-index overlay is laid down by binary search, O(m log d) total.
func newCSRPreservingOrder(n int, edges []Edge) *CSR {
	c := &CSR{
		start: make([]int32, n),
		deg:   make([]int32, n),
		wcap:  make([]int32, n),
		neigh: make([]int32, 2*len(edges)),
		epos:  make([]int32, 2*len(edges)),
		edges: edges,
	}
	for _, e := range edges {
		c.wcap[e.U]++
		c.wcap[e.V]++
	}
	var off int32
	for u := 0; u < n; u++ {
		c.start[u] = off
		off += c.wcap[u]
	}
	fill := make([]int32, n)
	copy(fill, c.start)
	for _, e := range edges {
		c.neigh[fill[e.U]] = int32(e.V)
		fill[e.U]++
		c.neigh[fill[e.V]] = int32(e.U)
		fill[e.V]++
	}
	copy(c.deg, c.wcap)
	for u := 0; u < n; u++ {
		sortInt32(c.window(u))
	}
	// With windows sorted, locate each edge's two slots by binary search
	// to lay down the edge-index overlay: O(m log d).
	for i, e := range edges {
		pu, _ := c.find(e.U, e.V)
		c.epos[c.start[e.U]+int32(pu)] = int32(i)
		pv, _ := c.find(e.V, e.U)
		c.epos[c.start[e.V]+int32(pv)] = int32(i)
	}
	return c
}

// Graph converts back to the map-adjacency builder representation,
// preserving edge list order. Only ingestion-boundary and differential
// test code should need this.
func (c *CSR) Graph() *Graph {
	g := &Graph{
		adj:   make([]map[int]int, c.N()),
		edges: make([]Edge, len(c.edges)),
	}
	copy(g.edges, c.edges)
	for u := range g.adj {
		if d := c.deg[u]; d > 0 {
			g.adj[u] = make(map[int]int, d)
		}
	}
	for i, e := range g.edges {
		g.adj[e.U][e.V] = i
		g.adj[e.V][e.U] = i
	}
	return g
}

// window returns u's live neighbor window.
func (c *CSR) window(u int) []int32 {
	s := c.start[u]
	return c.neigh[s : s+c.deg[u]]
}

// ewindow returns u's live edge-index window (parallel to window).
func (c *CSR) ewindow(u int) []int32 {
	s := c.start[u]
	return c.epos[s : s+c.deg[u]]
}

// find binary-searches v in u's sorted window and returns the position
// it holds (or would hold) and whether it is present.
func (c *CSR) find(u, v int) (int, bool) {
	w := c.window(u)
	lo, hi := 0, len(w)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(w[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(w) && int(w[lo]) == v
}

// N returns the number of nodes.
func (c *CSR) N() int { return len(c.deg) }

// M returns the number of edges.
func (c *CSR) M() int { return len(c.edges) }

// AddNode appends a new isolated node and returns its identifier.
func (c *CSR) AddNode() int {
	c.start = append(c.start, int32(len(c.neigh)))
	c.deg = append(c.deg, 0)
	c.wcap = append(c.wcap, 0)
	return len(c.deg) - 1
}

// Degree returns the degree of node u.
func (c *CSR) Degree(u int) int { return int(c.deg[u]) }

// HasEdge reports whether the edge (u,v) exists. Out-of-range arguments
// report false rather than panicking, which simplifies rewiring loops
// that probe speculative endpoints.
func (c *CSR) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(c.deg) || v >= len(c.deg) {
		return false
	}
	_, ok := c.find(u, v)
	return ok
}

// AddEdge inserts the undirected edge (u,v). It returns an error for
// self-loops, duplicate edges, and out-of-range endpoints — the same
// contract (and error text) as Graph.AddEdge.
func (c *CSR) AddEdge(u, v int) error {
	switch {
	case u < 0 || u >= len(c.deg) || v < 0 || v >= len(c.deg):
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(c.deg))
	case u == v:
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	pu, ok := c.find(u, v)
	if ok {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	idx := int32(len(c.edges))
	c.edges = append(c.edges, Edge{u, v}.Canon())
	c.insertAt(u, pu, int32(v), idx)
	pv, _ := c.find(v, u)
	c.insertAt(v, pv, int32(u), idx)
	return nil
}

// insertAt places neighbor w with edge index eidx at position pos of
// u's window, relocating the window first if it is full.
func (c *CSR) insertAt(u, pos int, w, eidx int32) {
	if c.deg[u] == c.wcap[u] {
		c.relocate(u)
	}
	s, d := int(c.start[u]), int(c.deg[u])
	copy(c.neigh[s+pos+1:s+d+1], c.neigh[s+pos:s+d])
	copy(c.epos[s+pos+1:s+d+1], c.epos[s+pos:s+d])
	c.neigh[s+pos] = w
	c.epos[s+pos] = eidx
	c.deg[u]++
}

// relocate moves u's full window to the tail of the arena with fresh
// slack, leaving the old slots dead until the next compaction. The
// compaction check runs first so it can never strip the slack this
// call is about to add.
func (c *CSR) relocate(u int) {
	if c.dead > len(c.neigh)/2 && c.dead > 4096 {
		c.compact()
	}
	d := int(c.deg[u])
	newCap := d + d/2 + 4
	s := int(c.start[u])
	c.dead += int(c.wcap[u])
	ns := len(c.neigh)
	c.neigh = append(c.neigh, c.neigh[s:s+d]...)
	c.neigh = append(c.neigh, make([]int32, newCap-d)...)
	c.epos = append(c.epos, c.epos[s:s+d]...)
	c.epos = append(c.epos, make([]int32, newCap-d)...)
	c.start[u] = int32(ns)
	c.wcap[u] = int32(newCap)
}

// compact rebuilds the arena contiguously, dropping dead slots and
// abandoning per-node slack (relocation re-adds slack on demand).
func (c *CSR) compact() {
	total := 0
	for u := range c.deg {
		total += int(c.deg[u])
	}
	neigh := make([]int32, total)
	eposArr := make([]int32, total)
	var off int32
	for u := range c.deg {
		d := c.deg[u]
		copy(neigh[off:off+d], c.window(u))
		copy(eposArr[off:off+d], c.ewindow(u))
		c.start[u] = off
		c.wcap[u] = d
		off += d
	}
	c.neigh, c.epos, c.dead = neigh, eposArr, 0
}

// RemoveEdge deletes the undirected edge (u,v) and reports whether it
// was present. The deleted edge is swapped with the last entry of the
// edge list — the same index permutation Graph.RemoveEdge applies, so
// EdgeAt streams match across representations.
func (c *CSR) RemoveEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(c.deg) || v >= len(c.deg) {
		return false
	}
	pu, ok := c.find(u, v)
	if !ok {
		return false
	}
	eidx := int(c.epos[int(c.start[u])+pu])
	c.deleteAt(u, pu)
	pv, _ := c.find(v, u)
	c.deleteAt(v, pv)
	last := len(c.edges) - 1
	if eidx != last {
		moved := c.edges[last]
		c.edges[eidx] = moved
		p, _ := c.find(moved.U, moved.V)
		c.epos[int(c.start[moved.U])+p] = int32(eidx)
		p, _ = c.find(moved.V, moved.U)
		c.epos[int(c.start[moved.V])+p] = int32(eidx)
	}
	c.edges = c.edges[:last]
	return true
}

// deleteAt removes position pos from u's window, shifting the suffix
// left.
func (c *CSR) deleteAt(u, pos int) {
	s, d := int(c.start[u]), int(c.deg[u])
	copy(c.neigh[s+pos:s+d-1], c.neigh[s+pos+1:s+d])
	copy(c.epos[s+pos:s+d-1], c.epos[s+pos+1:s+d])
	c.deg[u]--
}

// EdgeAt returns the i'th edge of the internal edge list. Indices are
// only stable between mutations; the intended use is uniform random
// edge selection via EdgeAt(rng.Intn(c.M())).
func (c *CSR) EdgeAt(i int) Edge { return c.edges[i] }

// Edges returns a copy of the edge list in canonical orientation.
func (c *CSR) Edges() []Edge {
	out := make([]Edge, len(c.edges))
	copy(out, c.edges)
	return out
}

// SortedEdges returns the edge list sorted lexicographically.
func (c *CSR) SortedEdges() []Edge {
	out := c.Edges()
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// EdgesCanonicallyOrdered reports whether the internal edge list is in
// sorted canonical order — the order EdgeAt exposes.
func (c *CSR) EdgesCanonicallyOrdered() bool {
	for i := 1; i < len(c.edges); i++ {
		a, b := c.edges[i-1], c.edges[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			return false
		}
	}
	return true
}

// CanonicalClone returns a copy of c whose edge list is in sorted
// canonical order, so index-addressed edge draws are a pure function of
// the edge set rather than of construction order.
func (c *CSR) CanonicalClone() *CSR {
	return csrFromCanonicalEdges(c.N(), c.SortedEdges())
}

// VisitNeighbors calls f for every neighbor of u, in ascending order,
// until f returns false.
func (c *CSR) VisitNeighbors(u int, f func(v int) bool) {
	for _, v := range c.window(u) {
		if !f(int(v)) {
			return
		}
	}
}

// Neighbors returns the sorted neighbor window of u as a shared
// subslice. It is valid only until the next mutation of c; callers must
// not modify or retain it across mutations.
func (c *CSR) Neighbors(u int) []int32 { return c.window(u) }

// AppendNeighbors appends the neighbors of u to dst, in ascending
// order, and returns the extended slice.
func (c *CSR) AppendNeighbors(dst []int, u int) []int {
	for _, v := range c.window(u) {
		dst = append(dst, int(v))
	}
	return dst
}

// DegreeSequence returns the degree of every node, indexed by node.
func (c *CSR) DegreeSequence() []int {
	out := make([]int, len(c.deg))
	for u, d := range c.deg {
		out[u] = int(d)
	}
	return out
}

// MaxDegree returns the largest node degree, or 0 for an empty graph.
func (c *CSR) MaxDegree() int {
	max := 0
	for _, d := range c.deg {
		if int(d) > max {
			max = int(d)
		}
	}
	return max
}

// AvgDegree returns the average node degree 2m/n, or 0 for an empty
// graph.
func (c *CSR) AvgDegree() float64 {
	if len(c.deg) == 0 {
		return 0
	}
	return 2 * float64(len(c.edges)) / float64(len(c.deg))
}

// CommonNeighborCount returns the number of nodes adjacent to both u
// and v, by merging the two sorted windows.
func (c *CSR) CommonNeighborCount(u, v int) int {
	a, b := c.window(u), c.window(v)
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Clone returns a deep copy of c with the arena compacted.
func (c *CSR) Clone() *CSR {
	n := c.N()
	total := 0
	for u := 0; u < n; u++ {
		total += int(c.deg[u])
	}
	cl := &CSR{
		start: make([]int32, n),
		deg:   make([]int32, n),
		wcap:  make([]int32, n),
		neigh: make([]int32, total),
		epos:  make([]int32, total),
		edges: make([]Edge, len(c.edges)),
	}
	copy(cl.deg, c.deg)
	copy(cl.edges, c.edges)
	var off int32
	for u := 0; u < n; u++ {
		d := c.deg[u]
		copy(cl.neigh[off:off+d], c.window(u))
		copy(cl.epos[off:off+d], c.ewindow(u))
		cl.start[u] = off
		cl.wcap[u] = d
		off += d
	}
	return cl
}

// Equal reports whether c and h have identical node counts and edge
// sets.
func (c *CSR) Equal(h *CSR) bool {
	if c.N() != h.N() || c.M() != h.M() {
		return false
	}
	for _, e := range c.edges {
		if !h.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// Static builds an immutable CSR snapshot. The snapshot never aliases
// c's arena, so mutating c afterwards does not affect it.
func (c *CSR) Static() *Static {
	n := c.N()
	s := &Static{
		offsets: make([]int32, n+1),
		neigh:   make([]int32, 2*len(c.edges)),
		m:       len(c.edges),
	}
	for u := 0; u < n; u++ {
		s.offsets[u+1] = s.offsets[u] + c.deg[u]
	}
	for u := 0; u < n; u++ {
		copy(s.neigh[s.offsets[u]:s.offsets[u+1]], c.window(u))
	}
	return s
}

// CSR converts the snapshot into a mutable CSR whose edge list is in
// canonical sorted order (the only order a Static can produce).
func (s *Static) CSR() *CSR {
	return csrFromCanonicalEdges(s.N(), s.Edges())
}
