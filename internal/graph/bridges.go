package graph

// Bridges returns the bridge edges of s — edges whose removal disconnects
// their component — via Tarjan's low-link algorithm with an explicit
// stack (no recursion, so deep chain graphs are safe). Edges are returned
// in canonical orientation.
func Bridges(s *Static) []Edge {
	n := s.N()
	disc := make([]int32, n) // discovery time, 0 = unvisited
	low := make([]int32, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	var bridges []Edge
	time := int32(0)

	type frame struct {
		node int32
		next int32 // index into the neighbor window
	}
	stack := make([]frame, 0, 64)
	for root := 0; root < n; root++ {
		if disc[root] != 0 {
			continue
		}
		time++
		disc[root] = time
		low[root] = time
		stack = append(stack[:0], frame{int32(root), 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			nbrs := s.Neighbors(int(u))
			if int(f.next) < len(nbrs) {
				v := nbrs[f.next]
				f.next++
				if disc[v] == 0 {
					parent[v] = u
					time++
					disc[v] = time
					low[v] = time
					stack = append(stack, frame{v, 0})
				} else if v != parent[u] {
					if disc[v] < low[u] {
						low[u] = disc[v]
					}
				}
				continue
			}
			// Post-order: propagate low-link to the parent.
			stack = stack[:len(stack)-1]
			if p := parent[u]; p >= 0 {
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if low[u] > disc[p] {
					bridges = append(bridges, Edge{int(p), int(u)}.Canon())
				}
			}
		}
	}
	return bridges
}

// BridgeSet returns the bridges as a set keyed by canonical edge.
func BridgeSet(s *Static) map[Edge]bool {
	bs := Bridges(s)
	out := make(map[Edge]bool, len(bs))
	for _, e := range bs {
		out[e] = true
	}
	return out
}
