package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
)

// binGraph builds a reproducible random simple graph via the shared
// randomGraph helper in graph_test.go.
func binGraph(n, m int, seed int64) *Graph {
	return randomGraph(rand.New(rand.NewSource(seed)), n, m)
}

func TestBinaryRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		g      *Graph
		labels []int
	}{
		{"empty", New(0), nil},
		{"isolated", New(5), nil},
		{"single-edge", mustGraph(t, 2, [][2]int{{0, 1}}), nil},
		{"random", binGraph(200, 600, 1), nil},
		{"labeled", mustGraph(t, 3, [][2]int{{0, 1}, {1, 2}}), []int{700, 3, 42}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, tc.g, tc.labels); err != nil {
				t.Fatal(err)
			}
			got, labels, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(tc.g) {
				t.Fatalf("decoded graph differs: n=%d m=%d, want n=%d m=%d",
					got.N(), got.M(), tc.g.N(), tc.g.M())
			}
			if tc.labels == nil && labels != nil {
				t.Fatalf("labels %v, want nil", labels)
			}
			if tc.labels != nil {
				if len(labels) != len(tc.labels) {
					t.Fatalf("labels %v, want %v", labels, tc.labels)
				}
				for i := range labels {
					if labels[i] != tc.labels[i] {
						t.Fatalf("labels %v, want %v", labels, tc.labels)
					}
				}
			}
		})
	}
}

func mustGraph(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestBinaryCanonical: equal graphs built in different edge orders encode
// to identical bytes — the property content addressing relies on.
func TestBinaryCanonical(t *testing.T) {
	a := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	b := mustGraph(t, 4, [][2]int{{0, 3}, {2, 3}, {0, 1}, {2, 1}})
	var ab, bb bytes.Buffer
	if err := WriteBinary(&ab, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("equal graphs encoded to different bytes")
	}
}

func TestBinaryInfo(t *testing.T) {
	g := binGraph(50, 120, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	info, err := ReadBinaryInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.N != g.N() || info.M != g.M() || info.HasLabels {
		t.Fatalf("info %+v, want n=%d m=%d no labels", info, g.N(), g.M())
	}
}

// TestBinaryCorruption: every single-byte flip in the payload or trailer
// must be rejected (the CRC catches what structural validation does not).
func TestBinaryCorruption(t *testing.T) {
	g := binGraph(30, 60, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Skip the magic/version prefix: flips there are caught by readMagic,
	// exercised separately below.
	for i := 5; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			// A flip may produce a structurally valid graph only if the
			// CRC also matched, which is what we are asserting against.
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	if _, _, err := ReadBinary(strings.NewReader("DKGX\x01rest")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err=%v, want ErrCorrupt", err)
	}
}

// TestBinaryGapOverflowRejected: a crafted neighbor gap near 2^64 must
// not wrap the bounds check and smuggle in a backward (duplicate) edge —
// even with a valid checksum.
func TestBinaryGapOverflowRejected(t *testing.T) {
	var payload []byte
	payload = append(payload, 0)                        // flags
	payload = binary.AppendUvarint(payload, 3)          // N
	payload = binary.AppendUvarint(payload, 2)          // M
	payload = binary.AppendUvarint(payload, 1)          // node 0: f=1
	payload = binary.AppendUvarint(payload, 1)          //   gap -> edge (0,1)
	payload = binary.AppendUvarint(payload, 1)          // node 1: f=1
	payload = binary.AppendUvarint(payload, ^uint64(0)) //   gap wraps prev+gap
	payload = binary.AppendUvarint(payload, 0)          // node 2: f=0
	enc := append([]byte("DKGB\x01"), payload...)
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(payload))
	enc = append(enc, trailer[:]...)
	if _, _, err := ReadBinary(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrapping gap: err=%v, want ErrCorrupt", err)
	}
}

// TestBinaryTruncation: every proper prefix fails cleanly.
func TestBinaryTruncation(t *testing.T) {
	g := binGraph(20, 40, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g, []int{5, 9, 2, 8, 1, 0, 3, 4, 6, 7, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for i := 0; i < len(enc); i++ {
		if _, _, err := ReadBinary(bytes.NewReader(enc[:i])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", i, len(enc))
		}
	}
}

func TestBinaryLimits(t *testing.T) {
	g := binGraph(100, 300, 11)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		lim  ReadLimits
	}{
		{"nodes", ReadLimits{MaxNodes: 10}},
		{"edges", ReadLimits{MaxEdges: 10}},
		{"bytes", ReadLimits{MaxBytes: 16}},
	} {
		if _, _, err := ReadBinaryLimit(bytes.NewReader(buf.Bytes()), tc.lim); !errors.Is(err, ErrLimit) {
			t.Fatalf("%s: err=%v, want ErrLimit", tc.name, err)
		}
	}
	// At-the-limit inputs still parse.
	ok := ReadLimits{MaxNodes: g.N(), MaxEdges: g.M(), MaxBytes: int64(buf.Len())}
	if _, _, err := ReadBinaryLimit(bytes.NewReader(buf.Bytes()), ok); err != nil {
		t.Fatalf("at-limit decode failed: %v", err)
	}
}

// TestBinaryDecodedGraphUsable: a decoded graph supports mutation — the
// rewiring entry points operate on cache-loaded graphs.
func TestBinaryDecodedGraphUsable(t *testing.T) {
	g := binGraph(40, 80, 13)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	e := got.EdgeAt(0)
	if !got.RemoveEdge(e.U, e.V) {
		t.Fatal("RemoveEdge failed on decoded graph")
	}
	if err := got.AddEdge(e.U, e.V); err != nil {
		t.Fatalf("AddEdge failed on decoded graph: %v", err)
	}
	if !got.Equal(g) {
		t.Fatal("mutated-back graph differs")
	}
	if got.Static().M() != g.M() {
		t.Fatal("Static() snapshot inconsistent")
	}
}
