package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Binary graph format ("DKGB"): the on-disk edge-list encoding of the
// persistent artifact store. The adjacency structure is written as a
// varint-delta-encoded forward CSR — for each node u, the sorted neighbors
// v > u as gaps (v1-u, v2-v1, ...) — so each edge is stored once and
// typical gaps fit in one or two bytes. A paper-scale topology is ~5-8x
// smaller than its text edge list and decodes without any string handling.
//
//	magic   "DKGB" (4 bytes)
//	version 0x01   (1 byte)
//	payload (CRC-32 protected from here):
//	  flags   1 byte (bit 0: label table present)
//	  N       uvarint  node count
//	  M       uvarint  edge count
//	  per node u = 0..N-1:
//	    f        uvarint  forward degree (# neighbors v > u)
//	    f gaps   uvarint each, all >= 1: v1-u, v2-v1, ...
//	  labels (if flag bit 0): N signed varints, delta-encoded
//	    (label_u - label_{u-1}, starting from 0)
//	trailer: CRC-32 (IEEE) of the payload, 4 bytes big-endian
//
// Both directions stream: WriteBinary never materializes the encoding and
// ReadBinary's allocations are bounded by the bytes actually read, so a
// forged header cannot trigger a large allocation.

// binaryMagic and binaryVersion identify the graph container format.
var binaryMagic = [4]byte{'D', 'K', 'G', 'B'}

const binaryVersion = 1

const labelFlag = 1 // flags bit 0: label table present

// ErrCorrupt marks binary artifacts that fail structural validation or
// checksum verification. The store's GC matches it with errors.Is to
// quarantine damaged files.
var ErrCorrupt = errors.New("corrupt binary artifact")

// WriteBinary writes g (and its optional dense-id→label table) in the
// binary graph format. labels must be nil or have length g.N(). The
// encoding is canonical: equal graphs with equal labels produce identical
// bytes regardless of construction order.
func WriteBinary(w io.Writer, g *Graph, labels []int) error {
	if labels != nil && len(labels) != g.N() {
		return fmt.Errorf("graph: label table has %d entries for %d nodes", len(labels), g.N())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	var flags byte
	if labels != nil {
		flags |= labelFlag
	}
	cw.writeByte(flags)
	cw.writeUvarint(uint64(g.N()))
	cw.writeUvarint(uint64(g.M()))
	fwd := make([]int, 0, 64)
	for u := 0; u < g.N(); u++ {
		fwd = fwd[:0]
		for v := range g.adj[u] {
			if v > u {
				fwd = append(fwd, v)
			}
		}
		sortInts(fwd)
		cw.writeUvarint(uint64(len(fwd)))
		prev := u
		for _, v := range fwd {
			cw.writeUvarint(uint64(v - prev))
			prev = v
		}
	}
	if labels != nil {
		prev := 0
		for _, l := range labels {
			cw.writeVarint(int64(l) - int64(prev))
			prev = l
		}
	}
	if cw.err != nil {
		return cw.err
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], cw.crc)
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinaryCSR writes c in the binary graph format. It produces
// byte-identical output to WriteBinary on the same edge set: the
// encoding is canonical, and CSR windows are already sorted so the
// forward-neighbor runs stream straight out of the arena with no
// per-node sort or allocation.
func WriteBinaryCSR(w io.Writer, c *CSR, labels []int) error {
	if labels != nil && len(labels) != c.N() {
		return fmt.Errorf("graph: label table has %d entries for %d nodes", len(labels), c.N())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	var flags byte
	if labels != nil {
		flags |= labelFlag
	}
	cw.writeByte(flags)
	cw.writeUvarint(uint64(c.N()))
	cw.writeUvarint(uint64(c.M()))
	for u := 0; u < c.N(); u++ {
		// The forward neighbors v > u are the window suffix past u's
		// would-be position in its own sorted window.
		cut, _ := c.find(u, u)
		fwd := c.window(u)[cut:]
		cw.writeUvarint(uint64(len(fwd)))
		prev := u
		for _, v := range fwd {
			cw.writeUvarint(uint64(int(v) - prev))
			prev = int(v)
		}
	}
	if labels != nil {
		prev := 0
		for _, l := range labels {
			cw.writeVarint(int64(l) - int64(prev))
			prev = l
		}
	}
	if cw.err != nil {
		return cw.err
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], cw.crc)
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary decodes a binary graph written by WriteBinary, returning the
// graph and its label table (nil if none was stored).
func ReadBinary(r io.Reader) (*Graph, []int, error) {
	return ReadBinaryLimit(r, ReadLimits{})
}

// BinaryInfo is the header summary of a binary graph artifact, readable
// without decoding (or checksum-verifying) the adjacency payload.
type BinaryInfo struct {
	N, M      int
	HasLabels bool
}

// ReadBinaryInfo reads only the header of a binary graph: node and edge
// counts plus whether a label table is present. It does not verify the
// payload checksum — use ReadBinary for a validated decode.
func ReadBinaryInfo(r io.Reader) (BinaryInfo, error) {
	if err := readMagic(r); err != nil {
		return BinaryInfo{}, err
	}
	cr := &crcReader{r: r}
	flags, err := cr.ReadByte()
	if err != nil {
		return BinaryInfo{}, corruptf("header: %v", err)
	}
	n, err := readCount(cr, "node count")
	if err != nil {
		return BinaryInfo{}, err
	}
	m, err := readCount(cr, "edge count")
	if err != nil {
		return BinaryInfo{}, err
	}
	return BinaryInfo{N: n, M: m, HasLabels: flags&labelFlag != 0}, nil
}

// ReadBinaryLimit is ReadBinary with the same resource bounds as the text
// parser, for decoding binary graphs from untrusted sources. Independent
// of any limit, decoder allocations are proportional to the bytes
// consumed, never to header-claimed sizes.
func ReadBinaryLimit(r io.Reader, lim ReadLimits) (*Graph, []int, error) {
	edges, n, labels, err := readBinaryEdges(r, lim)
	if err != nil {
		return nil, nil, err
	}
	// The gap encoding guarantees u < v < n with strictly increasing v per
	// node, so edges are simple and duplicate-free by construction; the
	// adjacency index can be built with presized maps and no membership
	// checks.
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	g := &Graph{adj: make([]map[int]int, n), edges: edges}
	for u, d := range deg {
		if d > 0 {
			g.adj[u] = make(map[int]int, d)
		}
	}
	for i, e := range edges {
		g.adj[e.U][e.V] = i
		g.adj[e.V][e.U] = i
	}
	return g, labels, nil
}

// ReadBinaryCSR decodes a binary graph straight into the CSR working
// representation — no map adjacency is ever built. Because decoded
// edges arrive in sorted canonical order, the windows fill already
// sorted and the whole materialization is O(n+m).
func ReadBinaryCSR(r io.Reader) (*CSR, []int, error) {
	return ReadBinaryCSRLimit(r, ReadLimits{})
}

// ReadBinaryCSRLimit is ReadBinaryCSR with resource bounds.
func ReadBinaryCSRLimit(r io.Reader, lim ReadLimits) (*CSR, []int, error) {
	edges, n, labels, err := readBinaryEdges(r, lim)
	if err != nil {
		return nil, nil, err
	}
	return csrFromCanonicalEdges(n, edges), labels, nil
}

// readBinaryEdges decodes the container into its canonical-order edge
// list, applying the byte budget; representation-specific
// materialization happens in the callers.
func readBinaryEdges(r io.Reader, lim ReadLimits) ([]Edge, int, []int, error) {
	cr := &countingReader{r: r}
	if lim.MaxBytes > 0 {
		cr.r = io.LimitReader(r, lim.MaxBytes+1)
	}
	edges, n, labels, err := readBinaryBody(cr, lim)
	if lim.MaxBytes > 0 && cr.n > lim.MaxBytes {
		// The budget was crossed; whatever decode error the truncation
		// produced, the limit is the root cause to report.
		return nil, 0, nil, fmt.Errorf("graph: %w: more than %d bytes", ErrLimit, lim.MaxBytes)
	}
	return edges, n, labels, err
}

// readBinaryBody decodes the container after byte-budget wrapping.
func readBinaryBody(cr io.Reader, lim ReadLimits) ([]Edge, int, []int, error) {
	if err := readMagic(cr); err != nil {
		return nil, 0, nil, err
	}
	c := &crcReader{r: cr}
	flags, err := c.ReadByte()
	if err != nil {
		return nil, 0, nil, corruptf("header: %v", err)
	}
	if flags&^byte(labelFlag) != 0 {
		return nil, 0, nil, corruptf("unknown flags %#x", flags)
	}
	n, err := readCount(c, "node count")
	if err != nil {
		return nil, 0, nil, err
	}
	m, err := readCount(c, "edge count")
	if err != nil {
		return nil, 0, nil, err
	}
	if lim.MaxNodes > 0 && n > lim.MaxNodes {
		return nil, 0, nil, fmt.Errorf("graph: %w: more than %d nodes", ErrLimit, lim.MaxNodes)
	}
	if lim.MaxEdges > 0 && m > lim.MaxEdges {
		return nil, 0, nil, fmt.Errorf("graph: %w: more than %d edges", ErrLimit, lim.MaxEdges)
	}
	// Decoded edges arrive in sorted canonical order; the slice grows with
	// the input, so a forged M cannot force a huge allocation up front.
	edges := make([]Edge, 0, min(m, 1<<20))
	for u := 0; u < n; u++ {
		f, err := readCount(c, "forward degree")
		if err != nil {
			return nil, 0, nil, err
		}
		if len(edges)+f > m {
			return nil, 0, nil, corruptf("node %d: forward degrees exceed edge count %d", u, m)
		}
		prev := u
		for i := 0; i < f; i++ {
			gap, err := c.uvarint()
			if err != nil {
				return nil, 0, nil, corruptf("node %d: neighbor gap: %v", u, err)
			}
			// Compare against the remaining headroom rather than adding:
			// prev+gap could wrap uint64 and sneak a backward edge past
			// the bound. prev < n always holds here, so n-1-prev is safe.
			if gap == 0 || gap > uint64(n-1-prev) {
				return nil, 0, nil, corruptf("node %d: neighbor gap %d out of range", u, gap)
			}
			v := prev + int(gap)
			edges = append(edges, Edge{u, v})
			prev = v
		}
	}
	if len(edges) != m {
		return nil, 0, nil, corruptf("decoded %d edges, header claims %d", len(edges), m)
	}
	var labels []int
	if flags&labelFlag != 0 {
		labels = make([]int, 0, min(n, 1<<20))
		prev := int64(0)
		for u := 0; u < n; u++ {
			d, err := c.varint()
			if err != nil {
				return nil, 0, nil, corruptf("label %d: %v", u, err)
			}
			prev += d
			if prev < 0 {
				return nil, 0, nil, corruptf("label %d is negative", u)
			}
			labels = append(labels, int(prev))
		}
	}
	sum := c.finish()
	var trailer [4]byte
	if err := c.readRaw(trailer[:]); err != nil {
		return nil, 0, nil, corruptf("checksum trailer: %v", err)
	}
	if got := binary.BigEndian.Uint32(trailer[:]); got != sum {
		return nil, 0, nil, corruptf("checksum mismatch: payload %08x, trailer %08x", sum, got)
	}
	return edges, n, labels, nil
}

// readMagic consumes and checks the 5-byte magic/version prefix. It runs
// before the crcReader takes over buffering, so it reads the raw stream.
func readMagic(r io.Reader) error {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return corruptf("magic: %v", err)
	}
	if [4]byte(hdr[:4]) != binaryMagic {
		return corruptf("bad magic %q", hdr[:4])
	}
	if hdr[4] != binaryVersion {
		return corruptf("unsupported version %d", hdr[4])
	}
	return nil
}

// readCount reads a uvarint bounded to a non-negative int that also fits
// int32, the node-id width of the CSR representation.
func readCount(r *crcReader, what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, corruptf("%s: %v", what, err)
	}
	if v > math.MaxInt32 {
		return 0, corruptf("%s %d exceeds int32", what, v)
	}
	return int(v), nil
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("graph: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// crcWriter appends varints to a buffered writer while accumulating the
// payload CRC; the first write error sticks.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
	buf [binary.MaxVarintLen64]byte
}

func (c *crcWriter) write(p []byte) {
	if c.err != nil {
		return
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	_, c.err = c.w.Write(p)
}

func (c *crcWriter) writeByte(b byte) {
	c.buf[0] = b
	c.write(c.buf[:1])
}

func (c *crcWriter) writeUvarint(v uint64) {
	n := binary.PutUvarint(c.buf[:], v)
	c.write(c.buf[:n])
}

func (c *crcWriter) writeVarint(v int64) {
	n := binary.PutVarint(c.buf[:], v)
	c.write(c.buf[:n])
}

// crcReader is a buffered byte reader that accumulates the payload CRC
// in bulk: consumed spans are hashed chunk-at-a-time on refill (and once
// more in finish for the partial tail), not per byte — per-byte
// crc32.Update calls alone would cost more than the whole varint parse.
type crcReader struct {
	r    io.Reader
	buf  [32 * 1024]byte
	n    int // valid bytes in buf
	pos  int // next unconsumed byte
	crc  uint32
	done bool // finish was called; no further hashing
}

func (c *crcReader) ReadByte() (byte, error) {
	if c.pos == c.n {
		if err := c.refill(); err != nil {
			return 0, err
		}
	}
	b := c.buf[c.pos]
	c.pos++
	return b, nil
}

// refill hashes the fully consumed chunk and loads the next one.
func (c *crcReader) refill() error {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, c.buf[:c.n])
	c.pos, c.n = 0, 0
	for {
		n, err := c.r.Read(c.buf[:])
		if n > 0 {
			c.n = n
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// finish hashes the consumed prefix of the current chunk, sealing the
// payload CRC. Unconsumed buffered bytes (the checksum trailer) stay
// readable via readRaw.
func (c *crcReader) finish() uint32 {
	if !c.done {
		c.crc = crc32.Update(c.crc, crc32.IEEETable, c.buf[:c.pos])
		c.done = true
	}
	return c.crc
}

// readRaw reads bytes after finish without hashing them: first from the
// buffered remainder, then from the underlying reader.
func (c *crcReader) readRaw(p []byte) error {
	k := copy(p, c.buf[c.pos:c.n])
	c.pos += k
	if k < len(p) {
		if _, err := io.ReadFull(c.r, p[k:]); err != nil {
			return err
		}
	}
	return nil
}

// uvarint decodes an unsigned varint straight off the internal buffer —
// the single-byte case that dominates gap-encoded adjacency never leaves
// the fast path, and nothing goes through an io interface call. This is
// where the binary format earns its decode-speed margin over text.
func (c *crcReader) uvarint() (uint64, error) {
	if c.pos < c.n {
		if b := c.buf[c.pos]; b < 0x80 {
			c.pos++
			return uint64(b), nil
		}
	}
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if c.pos == c.n {
			if err := c.refill(); err != nil {
				return 0, err
			}
		}
		b := c.buf[c.pos]
		c.pos++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errVarintOverflow
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, errVarintOverflow
}

// varint decodes a zigzag-encoded signed varint.
func (c *crcReader) varint() (int64, error) {
	ux, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

var errVarintOverflow = errors.New("varint overflows 64 bits")

// sortInts sorts a neighbor list: insertion sort for the short lists that
// dominate (mean degree is small), falling back to sort.Ints for hubs.
func sortInts(a []int) {
	if len(a) > 32 {
		sort.Ints(a)
		return
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
