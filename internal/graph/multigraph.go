package graph

// Multigraph is a minimal undirected pseudograph: it permits self-loops
// and parallel edges. The configuration-model ("pseudograph") construction
// algorithms of the paper produce such graphs as an intermediate stage;
// Simplify collapses one into a simple Graph, reporting how much was lost,
// which backs the paper's §5.1 discussion of pseudograph "badnesses".
type Multigraph struct {
	n     int
	edges []Edge
}

// NewMultigraph returns an empty multigraph with n nodes.
func NewMultigraph(n int) *Multigraph {
	return &Multigraph{n: n}
}

// N returns the number of nodes.
func (mg *Multigraph) N() int { return mg.n }

// M returns the number of edges, counting multiplicity and self-loops.
func (mg *Multigraph) M() int { return len(mg.edges) }

// AddEdge appends the edge (u,v); u == v (a self-loop) is allowed.
func (mg *Multigraph) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= mg.n || v >= mg.n {
		panic("graph: multigraph edge out of range")
	}
	mg.edges = append(mg.edges, Edge{u, v}.Canon())
}

// Edges returns the raw edge list (shared; callers must not modify).
func (mg *Multigraph) Edges() []Edge { return mg.edges }

// Badness summarizes what Simplify discarded: the pseudograph defects the
// paper calls "(self-)loops and small connected components".
type Badness struct {
	SelfLoops      int // edges with both ends on one node
	MultiEdges     int // parallel duplicates beyond the first copy
	SmallCCNodes   int // nodes outside the giant connected component
	SmallCCEdges   int // edges outside the giant connected component
	ComponentCount int // connected components before GCC extraction
}

// Simplify removes self-loops and collapses parallel edges, returning the
// resulting simple graph (all nodes retained, including isolated ones) and
// the defect counts. Duplicates keep their first occurrence, so the
// result's edge-list order — and with it every downstream
// index-addressed edge draw — is a pure function of the input order.
// Small-component fields of Badness are filled in only by SimplifyToGCC.
func (mg *Multigraph) Simplify() (*CSR, Badness) {
	var bad Badness
	c := NewCSR(mg.n)
	c.reserve(mg.edges)
	for _, e := range mg.edges {
		if e.U == e.V {
			bad.SelfLoops++
			continue
		}
		if c.HasEdge(e.U, e.V) {
			bad.MultiEdges++
			continue
		}
		if err := c.AddEdge(e.U, e.V); err != nil {
			panic("graph: multigraph simplify: " + err.Error())
		}
	}
	return c, bad
}

// SimplifyToGCC simplifies and then extracts the giant connected
// component, per the paper's pseudograph recipe ("remove all loops and
// extract the largest connected component"). It returns the GCC, the
// new→old node mapping, and full defect accounting.
func (mg *Multigraph) SimplifyToGCC() (*CSR, []int, Badness) {
	simple, bad := mg.Simplify()
	// Isolated nodes are counted as small components of size 1.
	_, sizes := Components(simple.Static())
	bad.ComponentCount = len(sizes)
	gcc, newToOld := GiantComponent(simple)
	bad.SmallCCNodes = simple.N() - gcc.N()
	bad.SmallCCEdges = simple.M() - gcc.M()
	return gcc, newToOld, bad
}
