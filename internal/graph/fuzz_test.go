package graph

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzLimits keeps fuzz inputs cheap: the properties under test are
// "never panic, never over-allocate, reject garbage cleanly", not
// capacity.
var fuzzLimits = ReadLimits{MaxBytes: 1 << 16, MaxNodes: 1 << 10, MaxEdges: 1 << 12}

// FuzzReadEdgeList hardens the text edge-list parser against malformed
// input: arbitrary bytes must either parse into a well-formed graph that
// round-trips through the binary codec, or fail with an error — never
// panic and never allocate beyond the input-proportional bound.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n  7   9 \n9 7000000\n")
	f.Add("0 1 extra fields ignored\n")
	f.Add("a b\n")
	f.Add("1\n")
	f.Add("-1 2\n")
	f.Add("0 0\n")
	f.Add("0 1\n0 1\n")
	f.Add("999999999999999999999 1\n")
	f.Add(strings.Repeat("0 1\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		g, labels, err := ReadEdgeListLimit(strings.NewReader(input), fuzzLimits)
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		if labels != nil && len(labels) != g.N() {
			t.Fatalf("%d labels for %d nodes", len(labels), g.N())
		}
		// A successfully parsed graph must survive the binary round trip
		// exactly, labels included.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g, labels); err != nil {
			t.Fatalf("binary encode of parsed graph: %v", err)
		}
		got, gotLabels, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("binary decode of own encoding: %v", err)
		}
		if !got.Equal(g) {
			t.Fatal("binary round trip changed the graph")
		}
		for i := range labels {
			if gotLabels[i] != labels[i] {
				t.Fatal("binary round trip changed the labels")
			}
		}
		// Content addresses are a pure function of the edge set, so the
		// round trip preserves them.
		if ContentHash(got, gotLabels) != ContentHash(g, labels) {
			t.Fatal("binary round trip changed the content hash")
		}
	})
}
