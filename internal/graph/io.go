package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ErrLimit marks inputs rejected by a ReadLimits bound. Callers that
// accept untrusted input (the HTTP service's upload path) match it with
// errors.Is to map oversized graphs to a "payload too large" response
// instead of a generic parse failure.
var ErrLimit = errors.New("input exceeds limit")

// ReadLimits bounds ReadEdgeListLimit when parsing untrusted input. The
// zero value imposes no limits, which is what ReadEdgeList uses for
// trusted local files.
type ReadLimits struct {
	// MaxBytes caps the total input size in bytes (0 = unlimited).
	// Parsing stops — streaming, without buffering the whole input —
	// as soon as the limit is crossed.
	MaxBytes int64
	// MaxEdges caps the number of edges (0 = unlimited).
	MaxEdges int
	// MaxNodes caps the number of distinct node labels (0 = unlimited).
	MaxNodes int
}

// ReadEdgeList parses a whitespace-separated edge list, one edge per line:
//
//	# comment
//	0 12
//	12 7
//
// Node labels may be arbitrary non-negative integers; they are remapped to
// dense ids 0..n-1 in order of first appearance. The returned labels slice
// maps dense id → original label. Duplicate edges and self-loops are
// rejected with an error naming the offending line.
func ReadEdgeList(r io.Reader) (g *Graph, labels []int, err error) {
	return ReadEdgeListLimit(r, ReadLimits{})
}

// ReadEdgeListLimit is ReadEdgeList with resource bounds, for parsing
// edge lists from untrusted sources (network request bodies). The input
// is consumed as a stream: an input crossing a bound fails fast with an
// error wrapping ErrLimit rather than being read to the end.
func ReadEdgeListLimit(r io.Reader, lim ReadLimits) (g *Graph, labels []int, err error) {
	cr := &countingReader{r: r}
	if lim.MaxBytes > 0 {
		// Read at most one byte past the cap so "exactly at the limit"
		// still parses while anything longer is detected exactly.
		cr.r = io.LimitReader(r, lim.MaxBytes+1)
	}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	idOf := make(map[int]int)
	g = New(0)
	lineNo := 0
	intern := func(label int) int {
		id, ok := idOf[label]
		if !ok {
			id = g.AddNode()
			idOf[label] = id
			labels = append(labels, label)
		}
		return id
	}
	for sc.Scan() {
		lineNo++
		if lim.MaxBytes > 0 && cr.n > lim.MaxBytes {
			return nil, nil, fmt.Errorf("graph: %w: more than %d bytes", ErrLimit, lim.MaxBytes)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node %q", lineNo, fields[0])
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node %q", lineNo, fields[1])
		}
		if a < 0 || b < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative node label", lineNo)
		}
		if err := g.AddEdge(intern(a), intern(b)); err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if lim.MaxNodes > 0 && g.N() > lim.MaxNodes {
			return nil, nil, fmt.Errorf("graph: line %d: %w: more than %d nodes", lineNo, ErrLimit, lim.MaxNodes)
		}
		if lim.MaxEdges > 0 && g.M() > lim.MaxEdges {
			return nil, nil, fmt.Errorf("graph: line %d: %w: more than %d edges", lineNo, ErrLimit, lim.MaxEdges)
		}
	}
	if err := sc.Err(); err != nil {
		// Wrap (not flatten) so callers can still match the underlying
		// reader's error, e.g. http.MaxBytesError from a capped body.
		return nil, nil, fmt.Errorf("graph: read: %w", err)
	}
	if lim.MaxBytes > 0 && cr.n > lim.MaxBytes {
		return nil, nil, fmt.Errorf("graph: %w: more than %d bytes", ErrLimit, lim.MaxBytes)
	}
	return g, labels, nil
}

// countingReader counts bytes delivered to the scanner so byte limits are
// enforced on actual input size, not on buffer capacity.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Listable is the minimal view the text writers need; both the Graph
// builder and the working CSR satisfy it.
type Listable interface {
	EdgeLister
	Degree(u int) int
	SortedEdges() []Edge
}

// WriteEdgeList writes the graph as a sorted "u v" edge list, suitable for
// ReadEdgeList round-tripping.
func WriteEdgeList(w io.Writer, g Listable) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.SortedEdges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteDOT renders the graph in Graphviz DOT format. Nodes with degree at
// or above hubThreshold are drawn filled so the core-vs-periphery hub
// placement that Figure 3 of the paper is read for stands out; pass 0 to
// disable highlighting.
func WriteDOT(w io.Writer, g Listable, name string, hubThreshold int) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %q {\n  node [shape=point];\n", name)
	if hubThreshold > 0 {
		hubs := make([]int, 0)
		for u := 0; u < g.N(); u++ {
			if g.Degree(u) >= hubThreshold {
				hubs = append(hubs, u)
			}
		}
		sort.Ints(hubs)
		for _, u := range hubs {
			fmt.Fprintf(bw, "  %d [shape=circle, style=filled, label=%q];\n", u, strconv.Itoa(g.Degree(u)))
		}
	}
	for _, e := range g.SortedEdges() {
		fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
