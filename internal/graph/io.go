package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list, one edge per line:
//
//	# comment
//	0 12
//	12 7
//
// Node labels may be arbitrary non-negative integers; they are remapped to
// dense ids 0..n-1 in order of first appearance. The returned labels slice
// maps dense id → original label. Duplicate edges and self-loops are
// rejected with an error naming the offending line.
func ReadEdgeList(r io.Reader) (g *Graph, labels []int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	idOf := make(map[int]int)
	g = New(0)
	lineNo := 0
	intern := func(label int) int {
		id, ok := idOf[label]
		if !ok {
			id = g.AddNode()
			idOf[label] = id
			labels = append(labels, label)
		}
		return id
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node %q", lineNo, fields[0])
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node %q", lineNo, fields[1])
		}
		if a < 0 || b < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative node label", lineNo)
		}
		if err := g.AddEdge(intern(a), intern(b)); err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: read: %v", err)
	}
	return g, labels, nil
}

// WriteEdgeList writes the graph as a sorted "u v" edge list, suitable for
// ReadEdgeList round-tripping.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.SortedEdges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteDOT renders the graph in Graphviz DOT format. Nodes with degree at
// or above hubThreshold are drawn filled so the core-vs-periphery hub
// placement that Figure 3 of the paper is read for stands out; pass 0 to
// disable highlighting.
func WriteDOT(w io.Writer, g *Graph, name string, hubThreshold int) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %q {\n  node [shape=point];\n", name)
	if hubThreshold > 0 {
		hubs := make([]int, 0)
		for u := 0; u < g.N(); u++ {
			if g.Degree(u) >= hubThreshold {
				hubs = append(hubs, u)
			}
		}
		sort.Ints(hubs)
		for _, u := range hubs {
			fmt.Fprintf(bw, "  %d [shape=circle, style=filled, label=%q];\n", u, strconv.Itoa(g.Degree(u)))
		}
	}
	for _, e := range g.SortedEdges() {
		fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
