package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// checkMirror verifies every invariant that ties a CSR to its reference
// Graph: node/edge counts, edge-list order (the RNG-stream contract),
// sorted windows, the edge-index overlay, and HasEdge agreement.
func checkMirror(t *testing.T, c *CSR, g *Graph) {
	t.Helper()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatalf("size mismatch: CSR %d/%d vs Graph %d/%d", c.N(), c.M(), g.N(), g.M())
	}
	for i := 0; i < g.M(); i++ {
		if c.EdgeAt(i) != g.EdgeAt(i) {
			t.Fatalf("edge %d: CSR %v vs Graph %v", i, c.EdgeAt(i), g.EdgeAt(i))
		}
	}
	for u := 0; u < g.N(); u++ {
		if c.Degree(u) != g.Degree(u) {
			t.Fatalf("degree(%d): CSR %d vs Graph %d", u, c.Degree(u), g.Degree(u))
		}
		w := c.Neighbors(u)
		ew := c.ewindow(u)
		for i, v := range w {
			if i > 0 && w[i-1] >= v {
				t.Fatalf("node %d: window not strictly sorted: %v", u, w)
			}
			if !g.HasEdge(u, int(v)) {
				t.Fatalf("node %d: CSR has neighbor %d, Graph does not", u, v)
			}
			e := c.edges[ew[i]]
			if (Edge{u, int(v)}.Canon()) != e {
				t.Fatalf("node %d: epos points at %v, want (%d,%d)", u, e, u, v)
			}
		}
		for _, v := range g.Neighbors(u) {
			if !c.HasEdge(u, v) {
				t.Fatalf("node %d: Graph has neighbor %d, CSR does not", u, v)
			}
		}
	}
}

// TestCSRMirrorsGraph drives an identical random mutation sequence
// through both representations and checks they stay in lockstep,
// including the swap-remove edge index permutation.
func TestCSRMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	g := New(n)
	c := NewCSR(n)
	for step := 0; step < 5000; step++ {
		u, v := rng.Intn(n), rng.Intn(n)
		switch rng.Intn(3) {
		case 0, 1: // add
			errG := g.AddEdge(u, v)
			errC := c.AddEdge(u, v)
			if (errG == nil) != (errC == nil) {
				t.Fatalf("AddEdge(%d,%d): Graph err %v, CSR err %v", u, v, errG, errC)
			}
			if errG != nil && errG.Error() != errC.Error() {
				t.Fatalf("AddEdge(%d,%d) error text: %q vs %q", u, v, errG, errC)
			}
		case 2: // remove (sometimes a random existing edge, exercising swaps)
			if g.M() > 0 && rng.Intn(2) == 0 {
				e := g.EdgeAt(rng.Intn(g.M()))
				u, v = e.U, e.V
			}
			okG := g.RemoveEdge(u, v)
			okC := c.RemoveEdge(u, v)
			if okG != okC {
				t.Fatalf("RemoveEdge(%d,%d): Graph %v, CSR %v", u, v, okG, okC)
			}
		}
		if step%500 == 0 {
			checkMirror(t, c, g)
		}
	}
	checkMirror(t, c, g)

	// Conversions round-trip and preserve edge order.
	checkMirror(t, g.CSR(), g)
	checkMirror(t, c, c.Graph())
	if h := ContentHash(c, nil); h != ContentHash(g, nil) {
		t.Fatalf("ContentHash differs across representations")
	}
	sc, sg := c.Static(), g.Static()
	for u := 0; u < n; u++ {
		a, b := sc.Neighbors(u), sg.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("Static degree(%d) mismatch", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Static window %d mismatch: %v vs %v", u, a, b)
			}
		}
	}

	// Clone and CanonicalClone preserve the respective contracts.
	cl := c.Clone()
	checkMirror(t, cl, g)
	cc := c.CanonicalClone()
	if !cc.EdgesCanonicallyOrdered() {
		t.Fatalf("CanonicalClone not canonically ordered")
	}
	if !cc.Equal(c) {
		t.Fatalf("CanonicalClone changed the edge set")
	}
	checkMirror(t, cc, g.CanonicalClone())
}

// TestCSRRelocation grows one hub far past every window's initial
// capacity so insertion exercises relocation and compaction.
func TestCSRRelocation(t *testing.T) {
	const n = 3000
	c := NewCSR(n)
	g := New(n)
	for v := 1; v < n; v++ {
		if err := c.AddEdge(0, v); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
		if err := g.AddEdge(0, v); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
		// Sprinkle some non-hub edges to mix window sizes.
		if v%7 == 0 && v+1 < n {
			_ = c.AddEdge(v, v+1)
			_ = g.AddEdge(v, v+1)
		}
	}
	checkMirror(t, c, g)
	// Tear half of it back down through the overlay.
	for v := 1; v < n; v += 2 {
		if !c.RemoveEdge(v, 0) {
			t.Fatalf("RemoveEdge(0,%d) missing", v)
		}
		g.RemoveEdge(v, 0)
	}
	checkMirror(t, c, g)
}

// TestCSRBinaryRoundTrip checks the direct CSR codec against the Graph
// codec byte-for-byte, and that decode-to-CSR reproduces the graph.
func TestCSRBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New(200)
	for i := 0; i < 900; i++ {
		_ = g.AddEdge(rng.Intn(200), rng.Intn(200))
	}
	labels := make([]int, 200)
	for i := range labels {
		labels[i] = 1000 + i*3
	}
	c := g.CSR()

	var bg, bc bytes.Buffer
	if err := WriteBinary(&bg, g, labels); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if err := WriteBinaryCSR(&bc, c, labels); err != nil {
		t.Fatalf("WriteBinaryCSR: %v", err)
	}
	if !bytes.Equal(bg.Bytes(), bc.Bytes()) {
		t.Fatalf("CSR and Graph writers disagree on the wire bytes")
	}

	dec, gotLabels, err := ReadBinaryCSR(bytes.NewReader(bc.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinaryCSR: %v", err)
	}
	if !dec.Equal(c) {
		t.Fatalf("decoded CSR differs from source")
	}
	if !dec.EdgesCanonicallyOrdered() {
		t.Fatalf("decoded CSR edge list not canonical")
	}
	for i, l := range gotLabels {
		if l != labels[i] {
			t.Fatalf("label %d: got %d want %d", i, l, labels[i])
		}
	}
	// Decoded-from-binary matches the map path's canonical order exactly.
	gDec, _, err := ReadBinary(bytes.NewReader(bg.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	checkMirror(t, dec, gDec)
}
