package graph

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// EdgeLister is the minimal read surface shared by every graph
// representation (Graph, CSR, Static): node/edge counts plus the
// canonical-orientation edge list. Content addressing is defined over
// it so all representations of one edge set hash identically.
type EdgeLister interface {
	N() int
	M() int
	Edges() []Edge
}

// canonicalPairs returns g's edges as label pairs in canonical form:
// each pair ordered a <= b, the list sorted lexicographically. This is
// THE canonical edge list — ContentHash hashes exactly these lines and
// WriteCanonicalEdgeList emits them, so the two can never drift apart.
func canonicalPairs(g EdgeLister, labels []int) [][2]int {
	pairs := make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		a, b := e.U, e.V
		if labels != nil {
			a, b = labels[a], labels[b]
		}
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, [2]int{a, b})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// ContentHash computes the content address of a graph: "sha256:" plus the
// hex digest of its canonical edge list. The canonical form is the list of
// label pairs "a b" with a <= b, sorted lexicographically by (a, b), one
// per line — so two inputs with the same edge set hash identically
// regardless of line order, comments, whitespace, or the order node labels
// first appear. labels maps dense node ids back to the labels of the
// original input; pass nil to use the dense ids themselves.
//
// The HTTP service keys its profile cache by this address, and the
// persistent artifact store (internal/store) uses it as the on-disk name
// of every graph and profile artifact.
func ContentHash(g EdgeLister, labels []int) string {
	h := sha256.New()
	var buf [32]byte
	for _, p := range canonicalPairs(g, labels) {
		line := buf[:0]
		line = strconv.AppendInt(line, int64(p[0]), 10)
		line = append(line, ' ')
		line = strconv.AppendInt(line, int64(p[1]), 10)
		line = append(line, '\n')
		h.Write(line)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// WriteCanonicalEdgeList writes g as its canonical text edge list under
// the original node labels: a size-header comment followed by exactly
// the lines ContentHash hashes. Re-parsing the output therefore
// reproduces the same content address — the round trip `dkstore export`
// then `import` relies on.
func WriteCanonicalEdgeList(w io.Writer, g EdgeLister, labels []int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, p := range canonicalPairs(g, labels) {
		if _, err := fmt.Fprintf(bw, "%d %d\n", p[0], p[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
