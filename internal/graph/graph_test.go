package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

// path returns the path graph 0-1-2-...-(n-1).
func path(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(t, g, i, i+1)
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(-1, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	mustEdge(t, g, 0, 1)
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 0, 3)
	if got := g.Degree(0); got != 3 {
		t.Errorf("Degree(0) = %d, want 3", got)
	}
	want := []int{1, 2, 3}
	got := g.Neighbors(0)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Neighbors(0) = %v, want %v", got, want)
			break
		}
	}
	if g.AvgDegree() != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", g.AvgDegree())
	}
}

func TestRemoveEdgeSwapConsistency(t *testing.T) {
	// Removing from the middle must keep the edge-index map consistent.
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) = false")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("double-remove succeeded")
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	// All remaining edges must still be found via EdgeAt and HasEdge.
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
			t.Errorf("edge %v at index %d not found via HasEdge", e, i)
		}
	}
	if g.HasEdge(1, 2) {
		t.Error("removed edge still present")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := path(t, 4)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("mutating clone affected original")
	}
	mustEdge(t, g, 0, 3)
	if c.HasEdge(0, 3) {
		t.Error("mutating original affected clone")
	}
}

func TestCommonNeighborCount(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 0, 3)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 0, 4)
	if got := g.CommonNeighborCount(0, 1); got != 2 {
		t.Errorf("CommonNeighborCount(0,1) = %d, want 2", got)
	}
	if got := g.CommonNeighborCount(2, 3); got != 2 {
		t.Errorf("CommonNeighborCount(2,3) = %d, want 2", got)
	}
	if got := g.CommonNeighborCount(4, 1); got != 0 {
		t.Errorf("CommonNeighborCount(4,1) = %d, want 0", got)
	}
}

// randomGraph builds a random simple graph for property tests.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := New(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func TestStaticMatchesGraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := randomGraph(rng, n, m)
		s := g.Static()
		if s.N() != g.N() || s.M() != g.M() {
			return false
		}
		for u := 0; u < n; u++ {
			if s.Degree(u) != g.Degree(u) {
				return false
			}
			for _, v := range s.Neighbors(u) {
				if !g.HasEdge(u, int(v)) {
					return false
				}
			}
		}
		// HasEdge agreement on all pairs.
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if s.HasEdge(u, v) != g.HasEdge(u, v) {
					return false
				}
			}
		}
		// Round-trip back to Graph.
		return s.Graph().Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStaticNeighborsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 200, 900)
	s := g.Static()
	for u := 0; u < s.N(); u++ {
		w := s.Neighbors(u)
		for i := 1; i < len(w); i++ {
			if w[i-1] >= w[i] {
				t.Fatalf("Neighbors(%d) not strictly sorted: %v", u, w)
			}
		}
	}
}

func TestSortInt32LargeWindows(t *testing.T) {
	// Exercise the heapsort path (window >= 24).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 24 + rng.Intn(200)
		a := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(50))
		}
		sortInt32(a)
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				t.Fatalf("not sorted at %d: %v", i, a)
			}
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	// 5, 6 isolated
	comp, sizes := Components(g.Static())
	if len(sizes) != 4 {
		t.Fatalf("component count = %d, want 4", len(sizes))
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("nodes 0,1,2 not in one component")
	}
	if comp[3] != comp[4] {
		t.Error("nodes 3,4 not in one component")
	}
	if comp[5] == comp[6] {
		t.Error("isolated nodes share a component")
	}
}

func TestGiantComponent(t *testing.T) {
	g := New(8)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 4, 5)
	gcc, newToOld := GiantComponent(g.CSR())
	if gcc.N() != 4 || gcc.M() != 3 {
		t.Fatalf("GCC has n=%d m=%d, want 4,3", gcc.N(), gcc.M())
	}
	seen := map[int]bool{}
	for _, old := range newToOld {
		seen[old] = true
	}
	for _, want := range []int{0, 1, 2, 3} {
		if !seen[want] {
			t.Errorf("GCC missing original node %d", want)
		}
	}
}

func TestGiantComponentEmpty(t *testing.T) {
	gcc, _ := GiantComponent(NewCSR(0))
	if gcc.N() != 0 {
		t.Errorf("GCC of empty graph has %d nodes", gcc.N())
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(New(0).Static()) {
		t.Error("empty graph should be connected")
	}
	g := path(t, 5)
	if !IsConnected(g.Static()) {
		t.Error("path should be connected")
	}
	g.RemoveEdge(2, 3)
	if IsConnected(g.Static()) {
		t.Error("broken path should be disconnected")
	}
}

func TestBFSPath(t *testing.T) {
	g := path(t, 6)
	s := g.Static()
	dist := make([]int32, s.N())
	queue := make([]int32, 0, s.N())
	reached := BFS(s, 0, dist, queue)
	if reached != 6 {
		t.Fatalf("reached = %d, want 6", reached)
	}
	for i := 0; i < 6; i++ {
		if dist[i] != int32(i) {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	s := g.Static()
	dist := make([]int32, s.N())
	queue := make([]int32, 0, s.N())
	reached := BFS(s, 0, dist, queue)
	if reached != 2 {
		t.Fatalf("reached = %d, want 2", reached)
	}
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable nodes have dist %d,%d, want -1,-1", dist[2], dist[3])
	}
}

func TestEccentricity(t *testing.T) {
	g := path(t, 5)
	if got := Eccentricity(g.Static(), 0); got != 4 {
		t.Errorf("Eccentricity(end) = %d, want 4", got)
	}
	if got := Eccentricity(g.Static(), 2); got != 2 {
		t.Errorf("Eccentricity(middle) = %d, want 2", got)
	}
}

func TestReadWriteEdgeListRoundTrip(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 0, 4)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, labels, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 is isolated so it does not survive the round trip; compare
	// against the graph with isolated nodes dropped.
	gd, _ := DropIsolated(g.CSR())
	if h.N() != gd.N() || h.M() != gd.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", h.N(), h.M(), gd.N(), gd.M())
	}
	if len(labels) != h.N() {
		t.Errorf("labels len = %d, want %d", len(labels), h.N())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"one field", "3\n"},
		{"non-integer", "a b\n"},
		{"negative", "-1 2\n"},
		{"self-loop", "4 4\n"},
		{"duplicate", "1 2\n2 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Errorf("input %q: want error, got nil", tc.in)
			}
		})
	}
}

func TestReadEdgeListCommentsAndLabels(t *testing.T) {
	in := "# header\n\n10 20\n20 30\n"
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d, want 3,2", g.N(), g.M())
	}
	want := []int{10, 20, 30}
	for i, l := range labels {
		if l != want[i] {
			t.Errorf("labels[%d] = %d, want %d", i, l, want[i])
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "test", 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"test\"", "0 -- 1;", "0 -- 2;", "style=filled"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestMultigraphSimplify(t *testing.T) {
	mg := NewMultigraph(4)
	mg.AddEdge(0, 1)
	mg.AddEdge(1, 0) // parallel
	mg.AddEdge(2, 2) // self-loop
	mg.AddEdge(1, 2)
	g, bad := mg.Simplify()
	if bad.SelfLoops != 1 || bad.MultiEdges != 1 {
		t.Errorf("badness = %+v, want 1 self-loop and 1 multi-edge", bad)
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
}

func TestMultigraphSimplifyToGCC(t *testing.T) {
	mg := NewMultigraph(6)
	mg.AddEdge(0, 1)
	mg.AddEdge(1, 2)
	mg.AddEdge(3, 4)
	// node 5 isolated
	gcc, newToOld, bad := mg.SimplifyToGCC()
	if gcc.N() != 3 {
		t.Fatalf("GCC n = %d, want 3", gcc.N())
	}
	if bad.SmallCCNodes != 3 { // nodes 3,4,5
		t.Errorf("SmallCCNodes = %d, want 3", bad.SmallCCNodes)
	}
	if bad.SmallCCEdges != 1 { // edge (3,4)
		t.Errorf("SmallCCEdges = %d, want 1", bad.SmallCCEdges)
	}
	if bad.ComponentCount != 3 {
		t.Errorf("ComponentCount = %d, want 3", bad.ComponentCount)
	}
	if len(newToOld) != 3 {
		t.Errorf("mapping len = %d, want 3", len(newToOld))
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	sub, newToOld := Subgraph(g.CSR(), []int{1, 2, 3})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("subgraph n=%d m=%d, want 3,2", sub.N(), sub.M())
	}
	if newToOld[0] != 1 || newToOld[2] != 3 {
		t.Errorf("mapping = %v, want [1 2 3]", newToOld)
	}
}

func TestBFSMatchesFloydWarshallProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := rng.Intn(n * (n - 1) / 2)
		g := randomGraph(rng, n, m)
		s := g.Static()

		const inf = 1 << 29
		d := make([][]int, n)
		for i := range d {
			d[i] = make([]int, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = inf
				}
			}
		}
		for i := 0; i < g.M(); i++ {
			e := g.EdgeAt(i)
			d[e.U][e.V] = 1
			d[e.V][e.U] = 1
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			BFS(s, src, dist, queue)
			for v := 0; v < n; v++ {
				want := d[src][v]
				if want >= inf {
					want = -1
				}
				if int(dist[v]) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBridgesPath(t *testing.T) {
	// Every edge of a path is a bridge.
	g := path(t, 6)
	bs := Bridges(g.Static())
	if len(bs) != 5 {
		t.Errorf("path bridges = %d, want 5", len(bs))
	}
}

func TestBridgesCycle(t *testing.T) {
	// No edge of a cycle is a bridge.
	g := New(6)
	for i := 0; i < 6; i++ {
		mustEdge(t, g, i, (i+1)%6)
	}
	if bs := Bridges(g.Static()); len(bs) != 0 {
		t.Errorf("cycle bridges = %v, want none", bs)
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by one edge: exactly that edge is a bridge.
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		mustEdge(t, g, e[0], e[1])
	}
	bs := Bridges(g.Static())
	if len(bs) != 1 || bs[0] != (Edge{2, 3}) {
		t.Errorf("barbell bridges = %v, want [(2,3)]", bs)
	}
}

// bruteBridges removes each edge and checks whether its component splits.
func bruteBridges(g *Graph) map[Edge]bool {
	out := make(map[Edge]bool)
	base, _ := Components(g.Static())
	baseComps := make(map[int32]bool)
	for _, c := range base {
		baseComps[c] = true
	}
	nBase := len(baseComps)
	for _, e := range g.Edges() {
		h := g.Clone()
		h.RemoveEdge(e.U, e.V)
		_, sizes := Components(h.Static())
		if len(sizes) > nBase+countIsolatedDiff(g, h) {
			out[e] = true
		}
	}
	return out
}

// countIsolatedDiff counts extra size-1 components created purely by
// removing the edge (both endpoints degree-1 cases are still splits, so
// this returns 0; kept for clarity of the comparison above).
func countIsolatedDiff(g, h *Graph) int { return 0 }

func TestBridgesMatchBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		m := rng.Intn(n * (n - 1) / 2)
		g := randomGraph(rng, n, m)
		want := bruteBridges(g)
		got := BridgeSet(g.Static())
		if len(got) != len(want) {
			return false
		}
		for e := range want {
			if !got[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestModelBasedFuzz runs random interleaved add/remove operations and
// checks the Graph against a plain map-of-sets reference model after
// every operation batch.
func TestModelBasedFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := New(n)
		ref := make(map[Edge]bool)
		for op := 0; op < 300; op++ {
			u, v := rng.Intn(n), rng.Intn(n)
			e := Edge{u, v}.Canon()
			switch rng.Intn(3) {
			case 0, 1: // add
				err := g.AddEdge(u, v)
				switch {
				case u == v:
					if err == nil {
						return false
					}
				case ref[e]:
					if err == nil {
						return false
					}
				default:
					if err != nil {
						return false
					}
					ref[e] = true
				}
			case 2: // remove
				ok := g.RemoveEdge(u, v)
				if ok != ref[e] {
					return false
				}
				delete(ref, e)
			}
		}
		// Final state agreement.
		if g.M() != len(ref) {
			return false
		}
		for e := range ref {
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		deg := make(map[int]int)
		for e := range ref {
			deg[e.U]++
			deg[e.V]++
		}
		for u := 0; u < n; u++ {
			if g.Degree(u) != deg[u] {
				return false
			}
		}
		// Edge list integrity: every EdgeAt entry exists exactly once.
		seen := make(map[Edge]bool)
		for i := 0; i < g.M(); i++ {
			e := g.EdgeAt(i)
			if seen[e] || !ref[e] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
