package generate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/stats"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func connectedRandom(rng *rand.Rand, n, extra int) *graph.CSR {
	g := graph.NewCSR(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i, rng.Intn(i)); err != nil {
			panic(err)
		}
	}
	if cap := n*(n-1)/2 - g.M(); extra > cap {
		extra = cap
	}
	for added := 0; added < extra; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
		added++
	}
	return g
}

// powerLawGraph builds a connected power-law-ish test graph via matching.
func powerLawGraph(t testing.TB, rng *rand.Rand, n int) *graph.CSR {
	t.Helper()
	pl, err := stats.NewPowerLaw(2.2, 1, n/4)
	if err != nil {
		t.Fatal(err)
	}
	var seq []int
	for {
		seq = pl.DegreeSequence(rng, n)
		if dk.Graphical(seq) {
			break
		}
	}
	g, err := Matching1K(dk.NewDegreeDist(seq), Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	gcc, _ := graph.GiantComponent(g)
	return gcc
}

func TestUnrankSamePairBijection(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 64} {
		seen := make(map[[2]int]bool)
		total := int64(n) * int64(n-1) / 2
		for idx := int64(0); idx < total; idx++ {
			i, j := unrankSamePair(idx, n)
			if i < 0 || j <= i || j >= n {
				t.Fatalf("n=%d idx=%d → invalid pair (%d,%d)", n, idx, i, j)
			}
			key := [2]int{i, j}
			if seen[key] {
				t.Fatalf("n=%d idx=%d → duplicate pair (%d,%d)", n, idx, i, j)
			}
			seen[key] = true
		}
		if int64(len(seen)) != total {
			t.Fatalf("n=%d: %d pairs, want %d", n, len(seen), total)
		}
	}
}

func TestBlockSampleDensity(t *testing.T) {
	rng := newRng(1)
	var hits int64
	total := int64(200000)
	blockSample(rng, total, 0.05,
		func(idx int64) (int, int) { return int(idx), int(idx) },
		func(u, v int) { hits++ })
	got := float64(hits) / float64(total)
	if math.Abs(got-0.05) > 0.005 {
		t.Errorf("empirical density %v, want 0.05", got)
	}
	// p >= 1 selects everything; p <= 0 selects nothing.
	hits = 0
	blockSample(rng, 100, 1.5, func(idx int64) (int, int) { return 0, 0 }, func(u, v int) { hits++ })
	if hits != 100 {
		t.Errorf("p>=1 hit %d of 100", hits)
	}
	hits = 0
	blockSample(rng, 100, 0, func(idx int64) (int, int) { return 0, 0 }, func(u, v int) { hits++ })
	if hits != 0 {
		t.Errorf("p=0 hit %d", hits)
	}
}

func TestStochastic0K(t *testing.T) {
	rng := newRng(2)
	g, err := Stochastic0K(2000, 6, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	if math.Abs(g.AvgDegree()-6) > 0.5 {
		t.Errorf("avg degree %v, want ≈ 6", g.AvgDegree())
	}
	if _, err := Stochastic0K(0, 3, Options{Rng: rng}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Stochastic0K(10, 3, Options{}); err == nil {
		t.Error("missing Rng accepted")
	}
}

func TestStochastic0KDegreesArePoisson(t *testing.T) {
	// Table 1 of the paper: the maximum-entropy 1K-distribution of
	// 0K-random graphs is Poisson (binomial).
	rng := newRng(3)
	kbar := 5.0
	h := stats.NewIntHistogram()
	for trial := 0; trial < 5; trial++ {
		g, err := Stochastic0K(3000, kbar, Options{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range g.DegreeSequence() {
			h.Add(d)
		}
	}
	for _, k := range []int{2, 5, 8} {
		want := stats.PoissonPMF(kbar, k)
		if math.Abs(h.P(k)-want) > 0.02 {
			t.Errorf("P(%d) = %v, want Poisson %v", k, h.P(k), want)
		}
	}
}

func TestStochastic1KExpectedDegrees(t *testing.T) {
	rng := newRng(4)
	dd := dk.NewDegreeDist(nil)
	dd.N = 1200
	dd.Count = map[int]int{2: 800, 5: 300, 20: 100}
	var sums = map[int]float64{}
	var cnts = map[int]int{}
	for trial := 0; trial < 8; trial++ {
		g, err := Stochastic1K(dd, Options{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		// classesFromDist assigns ids by ascending degree: first 800 are
		// class 2, next 300 class 5, last 100 class 20.
		for u := 0; u < g.N(); u++ {
			var class int
			switch {
			case u < 800:
				class = 2
			case u < 1100:
				class = 5
			default:
				class = 20
			}
			sums[class] += float64(g.Degree(u))
			cnts[class]++
		}
	}
	for _, class := range []int{2, 5, 20} {
		got := sums[class] / float64(cnts[class])
		if math.Abs(got-float64(class)) > 0.35*float64(class) {
			t.Errorf("class %d: mean degree %v", class, got)
		}
	}
}

func TestStochasticDenseClassClamp(t *testing.T) {
	// Regression for the documented min(1, p) clamp: dense classes can
	// push the raw block probability past 1, and the construction must
	// then connect every pair in the block rather than misbehave.
	rng := newRng(40)
	// 2K: one (4,4) block with 8 edges over 4 nodes of degree 4 — only
	// C(4,2) = 6 pairs exist, so p = 8/6 > 1. The clamp yields K4.
	jdd := dk.NewJDD()
	jdd.Add(4, 4, 8)
	g, err := Stochastic2K(jdd, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 6 {
		t.Errorf("dense 2K block: got n=%d m=%d, want complete K4 (n=4 m=6)", g.N(), g.M())
	}
	// 1K: two nodes of expected degree 10 — p = 10·10/20 = 5 > 1; the
	// clamp connects the single same-class pair exactly once.
	dd := dk.NewDegreeDist(nil)
	dd.N = 2
	dd.Count = map[int]int{10: 2}
	g, err = Stochastic1K(dd, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Errorf("dense 1K class: got n=%d m=%d, want n=2 m=1", g.N(), g.M())
	}
}

func TestStochastic2KReproducesJDDInExpectation(t *testing.T) {
	rng := newRng(5)
	src := powerLawGraph(t, rng, 600)
	p, err := dk.Extract(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The stochastic construction reproduces the JDD in expectation over
	// *label* classes — realized degrees fluctuate (the §4.1.1 variance
	// problem), so the comparison must group edges by target labels.
	dd, err := p.Joint.DegreeDist()
	if err != nil {
		t.Fatal(err)
	}
	labels := ClassLabels(dd)
	var totErr, totCnt float64
	got := make(map[dk.DegPair]float64)
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		g, err := Stochastic2K(p.Joint, Options{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			got[dk.NewDegPair(labels[e.U], labels[e.V])]++
		}
	}
	for pr, m := range p.Joint.Count {
		mean := got[pr] / trials
		totErr += math.Abs(mean - float64(m))
		totCnt += float64(m)
	}
	if totErr/totCnt > 0.2 {
		t.Errorf("relative JDD error %v too large", totErr/totCnt)
	}
	bad := dk.NewJDD()
	bad.Add(3, 3, 1) // 2 three-endpoints: not divisible by 3
	if _, err := Stochastic2K(bad, Options{Rng: rng}); err == nil {
		t.Error("inconsistent JDD accepted")
	}
}

func TestPseudograph1K(t *testing.T) {
	rng := newRng(6)
	pl, _ := stats.NewPowerLaw(2.1, 1, 60)
	seq := pl.DegreeSequence(rng, 500)
	dd := dk.NewDegreeDist(seq)
	res, err := Pseudograph1K(dd, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if res.Full.N() != 500 {
		t.Fatalf("Full.N = %d", res.Full.N())
	}
	// Degrees in Full can only be ≤ target (loop/dup removal).
	cls := classesFromDist(dd)
	for i, k := range cls.degrees {
		for _, u := range cls.nodes[i] {
			if res.Full.Degree(u) > k {
				t.Fatalf("node %d degree %d exceeds target %d", u, res.Full.Degree(u), k)
			}
		}
	}
	// Conservation: target stubs = 2·(edges kept + self-loops removed +
	// multi-edges removed).
	kept := res.Full.M()
	if kept+res.Badness.SelfLoops+res.Badness.MultiEdges != dd.TotalDegree()/2 {
		t.Errorf("edge conservation: kept=%d loops=%d multi=%d, want total %d",
			kept, res.Badness.SelfLoops, res.Badness.MultiEdges, dd.TotalDegree()/2)
	}
	if res.GCC.N() == 0 || res.GCC.N() > res.Full.N() {
		t.Errorf("GCC size %d out of range", res.GCC.N())
	}
	if _, err := Pseudograph1K(dk.NewDegreeDist([]int{3}), Options{Rng: rng}); err == nil {
		t.Error("odd-sum sequence accepted")
	}
}

func TestPseudograph2K(t *testing.T) {
	rng := newRng(7)
	src := powerLawGraph(t, rng, 400)
	p, err := dk.Extract(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pseudograph2K(p.Joint, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdjustedNodes != 0 {
		t.Errorf("graph-derived JDD should need no adjustment, got %d", res.AdjustedNodes)
	}
	// Edge conservation through simplification.
	if res.Full.M()+res.Badness.SelfLoops+res.Badness.MultiEdges != p.Joint.M {
		t.Errorf("edge conservation failed: %d + %d + %d != %d",
			res.Full.M(), res.Badness.SelfLoops, res.Badness.MultiEdges, p.Joint.M)
	}
	// Counting edges by label class: realized counts never exceed the
	// target, and the total shortfall is exactly the removed badness.
	got := make(map[dk.DegPair]int)
	for _, e := range res.Full.Edges() {
		got[dk.NewDegPair(res.Labels[e.U], res.Labels[e.V])]++
	}
	shortfall := 0
	for pr, m := range p.Joint.Count {
		if got[pr] > m {
			t.Errorf("class %v realized %d > target %d", pr, got[pr], m)
		}
		shortfall += m - got[pr]
	}
	if shortfall != res.Badness.SelfLoops+res.Badness.MultiEdges {
		t.Errorf("shortfall %d != loops %d + multis %d",
			shortfall, res.Badness.SelfLoops, res.Badness.MultiEdges)
	}
	// The paper's §5.1 claim: 2K pseudograph badness stays small.
	if frac := float64(res.Badness.SelfLoops+res.Badness.MultiEdges) / float64(p.Joint.M); frac > 0.1 {
		t.Errorf("badness fraction %v exceeds 10%%", frac)
	}
}

func TestMatching1KExactDegrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		n := 20 + rng.Intn(200)
		pl, _ := stats.NewPowerLaw(2.0, 1, n/3)
		var seq []int
		for {
			seq = pl.DegreeSequence(rng, n)
			if dk.Graphical(seq) {
				break
			}
		}
		dd := dk.NewDegreeDist(seq)
		g, err := Matching1K(dd, Options{Rng: rng})
		if err != nil {
			return false
		}
		got := dk.NewDegreeDist(g.DegreeSequence())
		for k, c := range dd.Count {
			if got.Count[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMatching1KRejectsNonGraphical(t *testing.T) {
	rng := newRng(8)
	if _, err := Matching1K(dk.NewDegreeDist([]int{3, 3, 1, 1}), Options{Rng: rng}); err == nil {
		t.Error("non-graphical sequence accepted")
	}
}

func TestMatching2KExactJDD(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		src := connectedRandom(rng, 30+rng.Intn(80), 60+rng.Intn(100))
		p, err := dk.Extract(src, 2)
		if err != nil {
			return false
		}
		g, err := Matching2K(p.Joint, Options{Rng: rng})
		if err != nil {
			// Deadlock resolution can fail on contrived inputs; tolerate
			// rare failures but not systematically.
			return true
		}
		q, err := dk.Extract(g, 2)
		if err != nil {
			return false
		}
		return dk.D2(p.Joint, q.Joint) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRewirePreservesInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		g := connectedRandom(rng, 15+rng.Intn(40), 20+rng.Intn(80))
		for depth := 0; depth <= 3; depth++ {
			before, err := dk.Extract(g, 3)
			if err != nil {
				return false
			}
			out, _, err := Randomize(g, depth, RandomizeOptions{Rng: rng, SwapFactor: 3})
			if err != nil {
				return false
			}
			after, err := dk.Extract(out, 3)
			if err != nil {
				return false
			}
			// Simplicity invariants.
			if out.N() != g.N() || out.M() != g.M() {
				return false
			}
			switch depth {
			case 1:
				if d, _ := dk.Distance(before, after, 1); d != 0 {
					return false
				}
			case 2:
				if d, _ := dk.Distance(before, after, 2); d != 0 {
					return false
				}
			case 3:
				if d, _ := dk.Distance(before, after, 3); d != 0 {
					return false
				}
				// 3K preservation implies 2K and 1K preservation.
				if d, _ := dk.Distance(before, after, 2); d != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestRandomizeActuallyRandomizes(t *testing.T) {
	rng := newRng(9)
	g := connectedRandom(rng, 60, 150)
	out, st, err := Randomize(g, 1, RandomizeOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted == 0 {
		t.Fatal("no swaps accepted")
	}
	if out.Equal(g) {
		t.Error("randomized graph identical to input")
	}
	// Input must be untouched.
	if g.M() != 150+59 {
		t.Errorf("input mutated: M = %d", g.M())
	}
}

func TestRandomizePreserveConnectivity(t *testing.T) {
	rng := newRng(10)
	g := connectedRandom(rng, 40, 20)
	out, _, err := Randomize(g, 1, RandomizeOptions{Rng: rng, SwapFactor: 5, PreserveConnectivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(out.Static()) {
		t.Error("connectivity not preserved")
	}
}

func TestJDDObjectiveTracksD2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		g := connectedRandom(rng, 20+rng.Intn(30), 30+rng.Intn(60))
		tgtGraph := connectedRandom(rng, g.N(), g.M()-g.N()+1)
		tgt, err := dk.Extract(tgtGraph, 2)
		if err != nil {
			return false
		}
		obj := NewJDDObjective(tgt.Joint)
		r, err := NewRewirer(g, 1, rng)
		if err != nil {
			return false
		}
		if err := obj.Init(g); err != nil {
			return false
		}
		r.Obj = obj
		r.Accept = PolicyAlways
		if _, err := r.Run(50, 5000, 0); err != nil {
			return false
		}
		// Incremental state must match recomputation from scratch.
		now, err := dk.Extract(g, 2)
		if err != nil {
			return false
		}
		return math.Abs(obj.Current()-dk.D2(now.Joint, tgt.Joint)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCensusObjectiveTracksD3Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		g := connectedRandom(rng, 15+rng.Intn(25), 25+rng.Intn(50))
		tgtGraph := connectedRandom(rng, g.N(), g.M()-g.N()+1)
		tgt, err := dk.Extract(tgtGraph, 3)
		if err != nil {
			return false
		}
		obj := NewCensusObjective(tgt.Census)
		r, err := NewRewirer(g, 2, rng)
		if err != nil {
			return false
		}
		if err := obj.Init(g); err != nil {
			return false
		}
		r.Obj = obj
		r.Accept = PolicyAlways
		if _, err := r.Run(30, 5000, 0); err != nil {
			return false
		}
		now, err := dk.Extract(g, 3)
		if err != nil {
			return false
		}
		return math.Abs(obj.Current()-dk.D3(now.Census, tgt.Census)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDegreeDistObjectiveTracksD1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		g := connectedRandom(rng, 20+rng.Intn(30), 30+rng.Intn(40))
		tgtGraph := connectedRandom(rng, g.N(), g.M()-g.N()+1)
		tgt, err := dk.Extract(tgtGraph, 1)
		if err != nil {
			return false
		}
		obj := NewDegreeDistObjective(tgt.Degrees)
		r, err := NewRewirer(g, 0, rng)
		if err != nil {
			return false
		}
		if err := obj.Init(g); err != nil {
			return false
		}
		r.Obj = obj
		r.Accept = PolicyAlways
		if _, err := r.Run(50, 5000, 0); err != nil {
			return false
		}
		now, err := dk.Extract(g, 1)
		if err != nil {
			return false
		}
		return math.Abs(obj.Current()-dk.D1(now.Degrees, tgt.Degrees)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTargetRewire2KConverges(t *testing.T) {
	rng := newRng(11)
	src := powerLawGraph(t, rng, 300)
	tgt, err := dk.Extract(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Start from a 1K-random graph with the same degree distribution.
	p1, err := dk.Extract(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	start, err := Matching1K(p1.Degrees, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TargetRewire(start, tgt, 2, TargetOptions{Rng: rng, StopAtZero: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalD >= res.InitialD {
		t.Errorf("D2 did not decrease: %v → %v", res.InitialD, res.FinalD)
	}
	if res.FinalD > 0.05*res.InitialD {
		t.Errorf("D2 converged poorly: %v → %v", res.InitialD, res.FinalD)
	}
}

func TestTargetRewire3KImproves(t *testing.T) {
	rng := newRng(12)
	src := connectedRandom(rng, 80, 160)
	tgt, err := dk.Extract(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	start, _, err := Randomize(src, 2, RandomizeOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TargetRewire(start, tgt, 3, TargetOptions{Rng: rng, StopAtZero: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialD > 0 && res.FinalD >= res.InitialD {
		t.Errorf("D3 did not decrease: %v → %v", res.InitialD, res.FinalD)
	}
	// 2K must be preserved along the way.
	q, err := dk.Extract(res.FinalGraph, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := dk.D2(q.Joint, tgt.Joint); d != 0 {
		t.Errorf("3K-targeting broke the JDD: D2 = %v", d)
	}
}

func TestTargetRewire1KConverges(t *testing.T) {
	rng := newRng(13)
	src := powerLawGraph(t, rng, 200)
	tgt, err := dk.Extract(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	start, err := Stochastic0K(src.N(), src.AvgDegree(), Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TargetRewire(start, tgt, 1, TargetOptions{Rng: rng, StopAtZero: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalD >= res.InitialD {
		t.Errorf("D1 did not decrease: %v → %v", res.InitialD, res.FinalD)
	}
}

func TestTargetRewireValidation(t *testing.T) {
	rng := newRng(14)
	g := connectedRandom(rng, 20, 30)
	p1, _ := dk.Extract(g, 1)
	if _, err := TargetRewire(g, p1, 2, TargetOptions{Rng: rng}); err == nil {
		t.Error("depth beyond target profile accepted")
	}
	if _, err := TargetRewire(g, p1, 0, TargetOptions{Rng: rng}); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := TargetRewire(g, p1, 1, TargetOptions{}); err == nil {
		t.Error("missing Rng accepted")
	}
}

func TestTargetRewireAnnealedBeatsOrMatchesGreedy(t *testing.T) {
	// Smoke test of the temperature machinery: annealed runs must remain
	// valid and end with finite distance; the ergodicity experiment
	// itself lives in the benchmark harness.
	rng := newRng(15)
	src := connectedRandom(rng, 60, 120)
	tgt, _ := dk.Extract(src, 2)
	start, _, err := Randomize(src, 1, RandomizeOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TargetRewire(start, tgt, 2, TargetOptions{
		Rng: rng, Temperature: 50, Anneal: 0.8, MaxAttempts: 40000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalD > res.InitialD {
		t.Errorf("annealed run diverged: %v → %v", res.InitialD, res.FinalD)
	}
	if res.TemperatureAt >= 50 {
		t.Errorf("temperature never cooled: %v", res.TemperatureAt)
	}
}

func TestExploreLikelihood(t *testing.T) {
	rng := newRng(16)
	g := powerLawGraph(t, rng, 250)
	sBefore := likelihoodOf(g)
	up, err := Explore(g, MetricLikelihood, ExploreOptions{Rng: rng, Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	down, err := Explore(g, MetricLikelihood, ExploreOptions{Rng: rng, Maximize: false})
	if err != nil {
		t.Fatal(err)
	}
	sUp, sDown := likelihoodOf(up.FinalGraph), likelihoodOf(down.FinalGraph)
	if sUp <= sBefore {
		t.Errorf("S-maximization failed: %v → %v", sBefore, sUp)
	}
	if sDown >= sBefore {
		t.Errorf("S-minimization failed: %v → %v", sBefore, sDown)
	}
	// Degree distribution preserved.
	a, _ := dk.Extract(g, 1)
	b, _ := dk.Extract(up.FinalGraph, 1)
	if d := dk.D1(a.Degrees, b.Degrees); d != 0 {
		t.Errorf("exploration broke the degree distribution: D1 = %v", d)
	}
}

func likelihoodOf(g *graph.CSR) float64 {
	var s float64
	for _, e := range g.Edges() {
		s += float64(g.Degree(e.U)) * float64(g.Degree(e.V))
	}
	return s
}

func TestExploreClustering(t *testing.T) {
	rng := newRng(17)
	g := connectedRandom(rng, 120, 360)
	before, _ := dk.Extract(g, 3)
	up, err := Explore(g, MetricClustering, ExploreOptions{Rng: rng, Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := dk.Extract(up.FinalGraph, 3)
	if after.Census.TotalTriangles() <= before.Census.TotalTriangles() {
		t.Errorf("clustering maximization did not add triangles: %d → %d",
			before.Census.TotalTriangles(), after.Census.TotalTriangles())
	}
	// JDD preserved under 2K exploration.
	if d := dk.D2(before.Joint, after.Joint); d != 0 {
		t.Errorf("exploration broke the JDD: D2 = %v", d)
	}
}

func TestExploreS2(t *testing.T) {
	rng := newRng(18)
	g := powerLawGraph(t, rng, 200)
	up, err := Explore(g, MetricS2, ExploreOptions{Rng: rng, Maximize: true})
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Accepted == 0 {
		t.Error("S2 exploration accepted nothing")
	}
	before, _ := dk.Extract(g, 2)
	after, _ := dk.Extract(up.FinalGraph, 2)
	if d := dk.D2(before.Joint, after.Joint); d != 0 {
		t.Errorf("S2 exploration broke the JDD: D2 = %v", d)
	}
}

func TestCountInitialRewiringsSmall(t *testing.T) {
	// Path 0-1-2: no valid double-edge swaps (shared node), one free slot
	// for the 0K move of each edge.
	p3 := graph.NewCSR(3)
	if err := p3.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p3.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	rc0, err := CountInitialRewirings(p3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rc0.Possible != 2 { // 2 edges × 1 unoccupied pair
		t.Errorf("P3 depth-0 count = %d, want 2", rc0.Possible)
	}
	rc1, err := CountInitialRewirings(p3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc1.Possible != 0 {
		t.Errorf("P3 depth-1 count = %d, want 0", rc1.Possible)
	}
	// Two disjoint edges: both orientations valid, both obvious
	// isomorphisms (all degree-1).
	two := graph.NewCSR(4)
	if err := two.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := two.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	for depth := 1; depth <= 3; depth++ {
		rc, err := CountInitialRewirings(two, depth)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Possible != 2 {
			t.Errorf("disjoint edges depth-%d Possible = %d, want 2", depth, rc.Possible)
		}
		if rc.IgnoringIsomorphs != 0 {
			t.Errorf("disjoint edges depth-%d IgnoringIsomorphs = %d, want 0", depth, rc.IgnoringIsomorphs)
		}
	}
}

func TestCountInitialRewiringsMonotone(t *testing.T) {
	// Inclusion property: the rewiring sets shrink as d grows.
	f := func(seed int64) bool {
		rng := newRng(seed)
		g := connectedRandom(rng, 10+rng.Intn(20), 15+rng.Intn(25))
		var prev int64 = math.MaxInt64
		for depth := 1; depth <= 3; depth++ {
			rc, err := CountInitialRewirings(g, depth)
			if err != nil {
				return false
			}
			if rc.Possible > prev {
				return false
			}
			if rc.IgnoringIsomorphs > rc.Possible {
				return false
			}
			prev = rc.Possible
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCountDepth3LeavesGraphIntact(t *testing.T) {
	rng := newRng(19)
	g := connectedRandom(rng, 20, 40)
	before := g.Clone()
	if _, err := CountInitialRewirings(g, 3); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(before) {
		t.Error("counting mutated the graph")
	}
}

func TestConnectViaSwaps(t *testing.T) {
	rng := newRng(30)
	// Three separate cycles plus isolated nodes.
	g := graph.NewCSR(16)
	cycle := func(nodes []int) {
		for i := range nodes {
			if err := g.AddEdge(nodes[i], nodes[(i+1)%len(nodes)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	cycle([]int{0, 1, 2, 3})
	cycle([]int{4, 5, 6})
	cycle([]int{7, 8, 9, 10, 11})
	// 12..15 isolated
	degBefore := g.DegreeSequence()
	isolated, err := ConnectViaSwaps(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	if isolated != 4 {
		t.Errorf("isolated = %d, want 4", isolated)
	}
	// Degree sequence unchanged.
	for u, d := range g.DegreeSequence() {
		if d != degBefore[u] {
			t.Errorf("degree of %d changed: %d → %d", u, degBefore[u], d)
		}
	}
	// All edge-bearing nodes in one component.
	gcc, _ := graph.GiantComponent(g)
	if gcc.N() != 12 {
		t.Errorf("GCC size %d, want 12", gcc.N())
	}
}

func TestConnectViaSwapsAlreadyConnected(t *testing.T) {
	rng := newRng(31)
	g := connectedRandom(rng, 30, 40)
	before := g.Clone()
	if _, err := ConnectViaSwaps(g, rng); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(before) {
		t.Error("already-connected graph was modified")
	}
}

func TestConnectViaSwapsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		// Random components, each a tree plus enough chords that the
		// whole graph satisfies the m >= n-1 feasibility condition.
		g := graph.NewCSR(40)
		for c := 0; c < 5; c++ {
			base := c * 8
			size := 4 + rng.Intn(4)
			for i := 1; i < size; i++ {
				if err := g.AddEdge(base+i, base+rng.Intn(i)); err != nil {
					return false
				}
			}
			// Two chords per component keep cycles available throughout
			// the merge sequence.
			for added := 0; added < 2; {
				a, b := base+rng.Intn(size), base+rng.Intn(size)
				if a == b || g.HasEdge(a, b) {
					continue
				}
				if err := g.AddEdge(a, b); err != nil {
					return false
				}
				added++
			}
		}
		degBefore := g.DegreeSequence()
		if _, err := ConnectViaSwaps(g, rng); err != nil {
			return false
		}
		for u, d := range g.DegreeSequence() {
			if d != degBefore[u] {
				return false
			}
		}
		// Non-isolated nodes form one component.
		nonIso, _ := graph.DropIsolated(g)
		return graph.IsConnected(nonIso.Static())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConnectViaSwapsForestInfeasible(t *testing.T) {
	rng := newRng(33)
	// Two disjoint trees: degree-preserving connection is impossible
	// (m = n − 2 < n − 1).
	g := graph.NewCSR(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ConnectViaSwaps(g, rng); err == nil {
		t.Error("forest accepted; want infeasibility error")
	}
}
