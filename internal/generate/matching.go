package generate

import (
	"fmt"
	"math/rand"

	"repro/internal/dk"
	"repro/internal/graph"
)

// Matching1K is the loop-avoiding variant of the configuration model
// (Section 4.1.3): stubs are paired like in Pseudograph1K but pairs that
// would form a self-loop or duplicate edge are skipped. Deadlocks — stub
// multisets whose remaining members cannot legally pair — are resolved by
// re-breaking a random existing edge: to place stubs (u,v) that cannot
// connect, pick an edge (a,b) with (u,a) and (v,b) both legal, replace it
// by those two edges. The result is a simple graph realizing the degree
// sequence exactly (when the sequence is graphical and resolution
// succeeds).
func Matching1K(dd *dk.DegreeDist, opt Options) (*graph.CSR, error) {
	rng, err := opt.rng()
	if err != nil {
		return nil, err
	}
	if dd.N == 0 {
		return nil, fmt.Errorf("generate: empty degree distribution")
	}
	if dd.TotalDegree()%2 != 0 {
		return nil, fmt.Errorf("generate: degree sequence sums to odd total")
	}
	if !dk.GraphicalDist(dd) {
		return nil, fmt.Errorf("generate: degree sequence is not graphical")
	}
	cls := classesFromDist(dd)
	stubs := make([]int, 0, dd.TotalDegree())
	for i, k := range cls.degrees {
		for _, u := range cls.nodes[i] {
			for s := 0; s < k; s++ {
				stubs = append(stubs, u)
			}
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.NewCSR(cls.n)

	maxAttempts := opt.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 200
	}
	// Pair stubs back-to-front so removal is O(1).
	for len(stubs) >= 2 {
		u := stubs[len(stubs)-1]
		stubs = stubs[:len(stubs)-1]
		placed := false
		for attempt := 0; attempt < maxAttempts && attempt < len(stubs); attempt++ {
			j := rng.Intn(len(stubs))
			v := stubs[j]
			if v == u || g.HasEdge(u, v) {
				continue
			}
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			mustAdd(g, u, v)
			placed = true
			break
		}
		if placed {
			continue
		}
		// Deadlock: all candidate partners collide. Resolve by edge
		// re-breaking with an arbitrary remaining stub v.
		j := rng.Intn(len(stubs))
		v := stubs[j]
		stubs[j] = stubs[len(stubs)-1]
		stubs = stubs[:len(stubs)-1]
		if err := rebreak(g, rng, u, v, maxAttempts); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// rebreak resolves a blocked stub pair (u,v) by splitting an existing edge
// (a,b): remove (a,b), add (u,a) and (v,b). Degrees of a and b are
// unchanged and both blocked stubs are consumed. Random probing is tried
// first; when every probe collides — on large hub-heavy sequences the
// pairing tail is dominated by one hub adjacent to a large fraction of
// the graph — a deterministic scan over the edge list finds a legal
// split if one exists, mirroring repairDefect in the 2K path.
func rebreak(g *graph.CSR, rng randIntn, u, v int, maxAttempts int) error {
	legal := func(a, b int) bool {
		return a != u && b != v && !g.HasEdge(u, a) && !g.HasEdge(v, b)
	}
	split := func(eu, ev, a, b int) {
		// The special case u == v (two stubs on one node) is fine as long
		// as both new edges are legal, which the caller's checks ensure.
		g.RemoveEdge(eu, ev)
		mustAdd(g, u, a)
		mustAdd(g, v, b)
	}
	for attempt := 0; attempt < maxAttempts && g.M() > 0; attempt++ {
		e := g.EdgeAt(rng.Intn(g.M()))
		a, b := e.U, e.V
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		if !legal(a, b) {
			continue
		}
		split(e.U, e.V, a, b)
		return nil
	}
	for _, e := range g.Edges() {
		if legal(e.U, e.V) {
			split(e.U, e.V, e.U, e.V)
			return nil
		}
		if legal(e.V, e.U) {
			split(e.U, e.V, e.V, e.U)
			return nil
		}
	}
	return fmt.Errorf("generate: matching deadlock unresolved after %d attempts", maxAttempts)
}

type randIntn interface{ Intn(int) int }

// Matching2K extends the matching approach to the 2K case: it realizes
// the joint degree distribution exactly as a simple graph. The
// construction lays out the same labeled edge-end grouping as the 2K
// pseudograph, but instead of discarding the self-loops and duplicate
// edges, it repairs each one with a JDD-preserving double-edge swap
// against a random legal partner edge (the "additional techniques" of
// Section 4.1.3). Deadlocked repairs trigger a full restart with a fresh
// shuffle; node degrees and the JDD match the target exactly on success.
func Matching2K(jdd *dk.JDD, opt Options) (*graph.CSR, error) {
	rng, err := opt.rng()
	if err != nil {
		return nil, err
	}
	const restarts = 8
	var lastErr error
	for attempt := 0; attempt < restarts; attempt++ {
		g, err := matching2KOnce(jdd, rng, opt.MaxAttempts)
		if err == nil {
			return g, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func matching2KOnce(jdd *dk.JDD, rng *rand.Rand, maxAttempts int) (*graph.CSR, error) {
	if maxAttempts == 0 {
		maxAttempts = 400
	}
	endpoints, labels, n, _, err := build2KEndpoints(jdd, rng)
	if err != nil {
		return nil, err
	}
	g := graph.NewCSR(n)
	// Lay down the clean edges; queue loops and duplicates as defects.
	var defects [][2]int
	for _, ep := range endpoints {
		u, v := ep[0], ep[1]
		if u != v && !g.HasEdge(u, v) {
			mustAdd(g, u, v)
		} else {
			defects = append(defects, ep)
		}
	}
	// Repair passes: each defect (u,v) — a stub pair that cannot be laid
	// down directly — is resolved against an existing edge (a,b) by
	// replacing it with (u,b) and (a,v). Degrees gain exactly the missing
	// stubs, and the JDD is preserved when label(b) = label(v) or
	// label(a) = label(u); legality needs both new edges absent. Defects
	// that fail this round are retried after the graph has changed.
	stall := 0
	for len(defects) > 0 {
		var remaining [][2]int
		for _, d := range defects {
			if !repairDefect(g, rng, labels, d[0], d[1], maxAttempts) {
				remaining = append(remaining, d)
			}
		}
		if len(remaining) == len(defects) {
			stall++
			if stall > 3 {
				return nil, fmt.Errorf("generate: 2K matching stuck with %d unrepaired defects", len(remaining))
			}
		} else {
			stall = 0
		}
		defects = remaining
	}
	return g, nil
}

// repairDefect inserts the stub pair (u,v) by splitting an existing edge
// (a,b): remove (a,b), add (u,b) and (a,v). It tries random partner
// edges first and falls back to an exhaustive scan.
func repairDefect(g *graph.CSR, rng randIntn, labels []int, u, v, maxAttempts int) bool {
	ku, kv := labels[u], labels[v]
	try := func(a, b int) bool {
		// Orientation (a,b): requires label match for JDD preservation.
		if labels[b] != kv && labels[a] != ku {
			return false
		}
		// u == b or a == v would create self-loops; a == u or b == v
		// degenerates to inserting the defect pair itself, which is
		// illegal by definition.
		if a == u || a == v || b == u || b == v {
			return false
		}
		if g.HasEdge(u, b) || g.HasEdge(a, v) {
			return false
		}
		g.RemoveEdge(a, b)
		mustAdd(g, u, b)
		mustAdd(g, a, v)
		return true
	}
	for attempt := 0; attempt < maxAttempts && g.M() > 0; attempt++ {
		e := g.EdgeAt(rng.Intn(g.M()))
		if try(e.U, e.V) || try(e.V, e.U) {
			return true
		}
	}
	for _, e := range g.Edges() {
		if try(e.U, e.V) || try(e.V, e.U) {
			return true
		}
	}
	return false
}

func sortPairs(ps []dk.DegPair) {
	for i := 1; i < len(ps); i++ {
		x := ps[i]
		j := i - 1
		for j >= 0 && (ps[j].K1 > x.K1 || (ps[j].K1 == x.K1 && ps[j].K2 > x.K2)) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = x
	}
}

func mustAdd(g *graph.CSR, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic("generate: internal invariant violated: " + err.Error())
	}
}
