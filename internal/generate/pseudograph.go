package generate

import (
	"fmt"
	"math/rand"

	"repro/internal/dk"
	"repro/internal/graph"
)

// PseudographResult carries a configuration-model construction together
// with its defect accounting ("badnesses" in the paper's terminology).
type PseudographResult struct {
	// Full is the raw pseudograph after loop/multi-edge removal, with all
	// nodes retained.
	Full *graph.CSR
	// GCC is the giant connected component, the graph the paper's
	// pipeline continues with.
	GCC *graph.CSR
	// NewToOld maps GCC node ids back to Full node ids.
	NewToOld []int
	// Badness counts discarded self-loops, parallel edges and
	// small-component losses.
	Badness graph.Badness
	// AdjustedNodes counts nodes whose realized stub count was trimmed
	// because a degree class's endpoint total was not divisible by its
	// degree (possible only for rescaled or hand-built inputs).
	AdjustedNodes int
	// Labels records each Full-graph node's target degree class. Realized
	// degrees can fall below the label when loops or duplicate edges were
	// removed.
	Labels []int
}

// Pseudograph1K is the classical configuration model (PLRG): each node of
// degree k contributes k stubs, the stub list is shuffled, and consecutive
// stubs are paired into edges. Self-loops and duplicate edges are then
// removed and the giant connected component extracted, per the paper.
func Pseudograph1K(dd *dk.DegreeDist, opt Options) (*PseudographResult, error) {
	rng, err := opt.rng()
	if err != nil {
		return nil, err
	}
	if dd.N == 0 {
		return nil, fmt.Errorf("generate: empty degree distribution")
	}
	if dd.TotalDegree()%2 != 0 {
		return nil, fmt.Errorf("generate: degree sequence sums to odd total %d", dd.TotalDegree())
	}
	cls := classesFromDist(dd)
	stubs := make([]int, 0, dd.TotalDegree())
	for i, k := range cls.degrees {
		for _, u := range cls.nodes[i] {
			for s := 0; s < k; s++ {
				stubs = append(stubs, u)
			}
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	mg := graph.NewMultigraph(cls.n)
	for i := 0; i+1 < len(stubs); i += 2 {
		mg.AddEdge(stubs[i], stubs[i+1])
	}
	return finishPseudograph(mg, 0, ClassLabels(dd)), nil
}

// ClassLabels returns the target degree label of each node id under the
// deterministic class layout shared by the stochastic and configuration
// generators: node ids are assigned densely in ascending class-degree
// order.
func ClassLabels(dd *dk.DegreeDist) []int {
	cls := classesFromDist(dd)
	labels := make([]int, cls.n)
	for i, k := range cls.degrees {
		for _, u := range cls.nodes[i] {
			labels[u] = k
		}
	}
	return labels
}

// Pseudograph2K is the paper's 2K extension of the configuration model
// (Section 4.1.2): prepare m(k1,k2) disconnected edges with ends labeled
// k1 and k2, pool all edge-ends with label k, shuffle the pool, and carve
// it into groups of k — each group becomes one k-degree node. Loops and
// duplicate edges are removed and the GCC extracted afterwards.
func Pseudograph2K(jdd *dk.JDD, opt Options) (*PseudographResult, error) {
	rng, err := opt.rng()
	if err != nil {
		return nil, err
	}
	endpoints, labels, node, adjusted, err := build2KEndpoints(jdd, rng)
	if err != nil {
		return nil, err
	}
	mg := graph.NewMultigraph(node)
	for _, ep := range endpoints {
		mg.AddEdge(ep[0], ep[1])
	}
	return finishPseudograph(mg, adjusted, labels), nil
}

// build2KEndpoints realizes a JDD as a labeled pseudograph: it returns
// the per-edge node assignments, each node's degree label, the node
// count, and the number of trimmed nodes (non-divisible endpoint totals).
func build2KEndpoints(jdd *dk.JDD, rng *rand.Rand) (endpoints [][2]int, labels []int, node, adjusted int, err error) {
	if jdd.M == 0 {
		return nil, nil, 0, 0, fmt.Errorf("generate: empty JDD")
	}
	// Edge ends, grouped by degree label. ends[k] holds edge indices; an
	// edge of class (k,k) contributes its index twice.
	type halfEdge struct {
		edge int
		side int // 0 or 1
	}
	ends := make(map[int][]halfEdge)
	m := 0
	pairs := make([]dk.DegPair, 0, len(jdd.Count))
	for pair := range jdd.Count {
		pairs = append(pairs, pair)
	}
	sortPairs(pairs)
	for _, pair := range pairs {
		for c := 0; c < jdd.Count[pair]; c++ {
			ends[pair.K1] = append(ends[pair.K1], halfEdge{m, 0})
			ends[pair.K2] = append(ends[pair.K2], halfEdge{m, 1})
			m++
		}
	}
	endpoints = make([][2]int, m) // node assignment per edge side
	degrees := make([]int, 0, len(ends))
	for k := range ends {
		degrees = append(degrees, k)
	}
	// Deterministic class order (map iteration would change node ids).
	sortInts(degrees)
	for _, k := range degrees {
		pool := ends[k]
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		for off := 0; off < len(pool); off += k {
			hi := off + k
			if hi > len(pool) {
				hi = len(pool) // trimmed final node (non-divisible input)
				adjusted++
			}
			for _, he := range pool[off:hi] {
				endpoints[he.edge][he.side] = node
			}
			labels = append(labels, k)
			node++
		}
	}
	return endpoints, labels, node, adjusted, nil
}

func finishPseudograph(mg *graph.Multigraph, adjusted int, labels []int) *PseudographResult {
	gcc, newToOld, bad := mg.SimplifyToGCC()
	full, _ := mg.Simplify()
	return &PseudographResult{
		Full:          full,
		GCC:           gcc,
		NewToOld:      newToOld,
		Badness:       bad,
		AdjustedNodes: adjusted,
		Labels:        labels,
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}
