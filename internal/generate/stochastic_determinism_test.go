package generate

import (
	"math/rand"
	"testing"

	"repro/internal/dk"
)

// TestStochastic2KDeterministic guards against RNG draws being consumed
// in map-iteration order: two same-seeded runs over a many-class JDD
// must build the identical graph. (Regression: Stochastic2K used to
// range over jdd.Count directly, which randomized the edge sample per
// process run.)
func TestStochastic2KDeterministic(t *testing.T) {
	// Extract a real JDD with enough distinct classes that map iteration
	// order varies from run to run.
	g := replicaTestGraph(t)
	p, err := dk.Extract(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	jdd := p.Joint
	if len(jdd.Count) < 5 {
		t.Fatalf("test graph too uniform: %d JDD classes", len(jdd.Count))
	}
	a, err := Stochastic2K(jdd, Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stochastic2K(jdd, Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("Stochastic2K not deterministic for a fixed seed")
	}
}
