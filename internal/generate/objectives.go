package generate

import (
	"fmt"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/subgraphs"
)

// Objective scores candidate rewiring moves incrementally. The Rewirer
// calls Begin, then WillRemove/WillAdd immediately before each edge
// mutation of the candidate (so the objective sees the adjacency state
// right before the change), then reads Delta and finally either Commits or
// Rolls back. Objectives must be cheap: they are evaluated once per
// proposal.
type Objective interface {
	Init(g *graph.CSR) error
	Begin()
	WillRemove(g *graph.CSR, u, v int)
	WillAdd(g *graph.CSR, u, v int)
	Delta() float64
	Commit()
	Rollback()
}

// --- D1: degree-distribution distance (1K-targeting, 0K-preserving) ---

// DegreeDistObjective tracks D1 = Σ_k (n_cur(k) − n_tgt(k))² under moves
// that change node degrees (depth-0 rewiring).
type DegreeDistObjective struct {
	target  map[int]int
	current map[int]int
	pending map[int]int // degree class → count delta of the candidate
	delta   float64
}

// NewDegreeDistObjective targets the given degree distribution.
func NewDegreeDistObjective(target *dk.DegreeDist) *DegreeDistObjective {
	return &DegreeDistObjective{target: target.Count}
}

// Init snapshots g's degree distribution.
func (o *DegreeDistObjective) Init(g *graph.CSR) error {
	o.current = make(map[int]int)
	for u := 0; u < g.N(); u++ {
		o.current[g.Degree(u)]++
	}
	o.pending = make(map[int]int)
	return nil
}

// Begin resets the candidate accumulator.
func (o *DegreeDistObjective) Begin() {
	clear(o.pending)
	o.delta = 0
}

func (o *DegreeDistObjective) moveNode(from, to int) {
	o.bump(from, -1)
	o.bump(to, +1)
}

// bump applies a ±1 change to class k, updating the running D1 delta:
// for a count change c → c+s against target t, the squared-error change
// is s·(2(c−t)+s) with c the count including previously pending changes.
func (o *DegreeDistObjective) bump(k, s int) {
	c := float64(o.current[k] + o.pending[k])
	t := float64(o.target[k])
	o.delta += float64(s) * (2*(c-t) + float64(s))
	o.pending[k] += s
}

// WillRemove lowers both endpoint degrees by one.
func (o *DegreeDistObjective) WillRemove(g *graph.CSR, u, v int) {
	du, dv := g.Degree(u), g.Degree(v)
	o.moveNode(du, du-1)
	o.moveNode(dv, dv-1)
}

// WillAdd raises both endpoint degrees by one.
func (o *DegreeDistObjective) WillAdd(g *graph.CSR, u, v int) {
	du, dv := g.Degree(u), g.Degree(v)
	o.moveNode(du, du+1)
	o.moveNode(dv, dv+1)
}

// Delta returns the candidate's D1 change.
func (o *DegreeDistObjective) Delta() float64 { return o.delta }

// Commit folds the pending changes into the tracked distribution.
func (o *DegreeDistObjective) Commit() {
	for k, s := range o.pending {
		o.current[k] += s
	}
}

// Rollback discards the pending changes.
func (o *DegreeDistObjective) Rollback() {}

// Current returns the tracked D1 value recomputed from state (test hook).
func (o *DegreeDistObjective) Current() float64 {
	var sum float64
	seen := make(map[int]bool)
	for k, c := range o.current {
		d := float64(c - o.target[k])
		sum += d * d
		seen[k] = true
	}
	for k, t := range o.target {
		if !seen[k] {
			sum += float64(t) * float64(t)
		}
	}
	return sum
}

// --- D2: JDD distance (2K-targeting, 1K-preserving) ---

// JDDObjective tracks the paper's D2 = Σ (m_cur(k1,k2) − m_tgt(k1,k2))²
// under degree-preserving moves.
type JDDObjective struct {
	target  map[dk.DegPair]int
	current map[dk.DegPair]int
	pending map[dk.DegPair]int
	deg     []int
	delta   float64
}

// NewJDDObjective targets the given joint degree distribution.
func NewJDDObjective(target *dk.JDD) *JDDObjective {
	return &JDDObjective{target: target.Count}
}

// Init snapshots g's JDD and degree sequence.
func (o *JDDObjective) Init(g *graph.CSR) error {
	p, err := dk.Extract(g, 2)
	if err != nil {
		return err
	}
	o.current = p.Joint.Count
	o.pending = make(map[dk.DegPair]int)
	o.deg = g.DegreeSequence()
	return nil
}

// Begin resets the candidate accumulator.
func (o *JDDObjective) Begin() {
	clear(o.pending)
	o.delta = 0
}

func (o *JDDObjective) bump(u, v, s int) {
	p := dk.NewDegPair(o.deg[u], o.deg[v])
	c := float64(o.current[p] + o.pending[p])
	t := float64(o.target[p])
	o.delta += float64(s) * (2*(c-t) + float64(s))
	o.pending[p] += s
}

// WillRemove decrements the edge's degree-pair class.
func (o *JDDObjective) WillRemove(g *graph.CSR, u, v int) { o.bump(u, v, -1) }

// WillAdd increments the edge's degree-pair class.
func (o *JDDObjective) WillAdd(g *graph.CSR, u, v int) { o.bump(u, v, +1) }

// Delta returns the candidate's D2 change.
func (o *JDDObjective) Delta() float64 { return o.delta }

// Commit folds the pending changes into the tracked JDD.
func (o *JDDObjective) Commit() {
	for p, s := range o.pending {
		o.current[p] += s
	}
}

// Rollback discards the pending changes.
func (o *JDDObjective) Rollback() {}

// Current recomputes D2 from tracked state (test hook).
func (o *JDDObjective) Current() float64 {
	var sum float64
	seen := make(map[dk.DegPair]bool)
	for p, c := range o.current {
		d := float64(c - o.target[p])
		sum += d * d
		seen[p] = true
	}
	for p, t := range o.target {
		if !seen[p] {
			sum += float64(t) * float64(t)
		}
	}
	return sum
}

// --- D3: wedge/triangle census distance (3K-targeting, 2K-preserving) ---

// CensusObjective tracks the paper's D3 — squared count differences over
// wedge and triangle classes — under degree-preserving moves, using the
// incremental census deltas from internal/subgraphs.
type CensusObjective struct {
	target  *subgraphs.Census
	current *subgraphs.Census
	pend    *subgraphs.Delta
	deg     []int
}

// NewCensusObjective targets the given wedge/triangle census.
func NewCensusObjective(target *subgraphs.Census) *CensusObjective {
	return &CensusObjective{target: target}
}

// Init counts g's census.
func (o *CensusObjective) Init(g *graph.CSR) error {
	o.current = subgraphs.Count(g)
	o.pend = subgraphs.NewDelta()
	o.deg = g.DegreeSequence()
	return nil
}

// Begin resets the candidate delta.
func (o *CensusObjective) Begin() { o.pend.Reset() }

// WillRemove accumulates the census change of deleting (u,v).
func (o *CensusObjective) WillRemove(g *graph.CSR, u, v int) {
	o.pend.RemoveEdge(g, o.deg, u, v)
}

// WillAdd accumulates the census change of inserting (u,v).
func (o *CensusObjective) WillAdd(g *graph.CSR, u, v int) {
	o.pend.AddEdge(g, o.deg, u, v)
}

// Delta returns the candidate's D3 change: for each class with pending
// change δ against current count c and target t, the squared-error change
// is δ·(2(c−t)+δ).
func (o *CensusObjective) Delta() float64 {
	var sum float64
	for k, d := range o.pend.Wedges {
		c := float64(o.current.Wedges[k])
		t := float64(o.target.Wedges[k])
		sum += float64(d) * (2*(c-t) + float64(d))
	}
	for k, d := range o.pend.Triangles {
		c := float64(o.current.Triangles[k])
		t := float64(o.target.Triangles[k])
		sum += float64(d) * (2*(c-t) + float64(d))
	}
	return sum
}

// Commit folds the pending delta into the tracked census.
func (o *CensusObjective) Commit() { o.pend.ApplyTo(o.current) }

// Rollback discards the pending delta.
func (o *CensusObjective) Rollback() {}

// Current recomputes D3 from tracked state (test hook).
func (o *CensusObjective) Current() float64 {
	return dk.D3(o.current, o.target)
}

// --- Scalar exploration objectives ---

// LikelihoodObjective scores moves by the likelihood S = Σ_E d_u·d_v,
// the 1K-space exploration metric of Section 4.3. Degree-preserving moves
// only.
type LikelihoodObjective struct {
	deg   []int
	delta float64
}

// Init caches the degree sequence.
func (o *LikelihoodObjective) Init(g *graph.CSR) error {
	o.deg = g.DegreeSequence()
	return nil
}

// Begin resets the candidate accumulator.
func (o *LikelihoodObjective) Begin() { o.delta = 0 }

// WillRemove subtracts the removed edge's degree product.
func (o *LikelihoodObjective) WillRemove(g *graph.CSR, u, v int) {
	o.delta -= float64(o.deg[u]) * float64(o.deg[v])
}

// WillAdd adds the inserted edge's degree product.
func (o *LikelihoodObjective) WillAdd(g *graph.CSR, u, v int) {
	o.delta += float64(o.deg[u]) * float64(o.deg[v])
}

// Delta returns the candidate's S change.
func (o *LikelihoodObjective) Delta() float64 { return o.delta }

// Commit is a no-op: S is fully determined by the graph.
func (o *LikelihoodObjective) Commit() {}

// Rollback is a no-op.
func (o *LikelihoodObjective) Rollback() {}

// S2Objective scores moves by the second-order likelihood
// S2 = Σ_{open wedges} d_end1·d_end2, via the census delta. Degree-
// preserving moves only.
type S2Objective struct {
	pend *subgraphs.Delta
	deg  []int
}

// Init prepares the delta accumulator.
func (o *S2Objective) Init(g *graph.CSR) error {
	o.pend = subgraphs.NewDelta()
	o.deg = g.DegreeSequence()
	return nil
}

// Begin resets the candidate delta.
func (o *S2Objective) Begin() { o.pend.Reset() }

// WillRemove accumulates the census change of deleting (u,v).
func (o *S2Objective) WillRemove(g *graph.CSR, u, v int) {
	o.pend.RemoveEdge(g, o.deg, u, v)
}

// WillAdd accumulates the census change of inserting (u,v).
func (o *S2Objective) WillAdd(g *graph.CSR, u, v int) {
	o.pend.AddEdge(g, o.deg, u, v)
}

// Delta returns the candidate's S2 change: Σ over wedge classes of
// δ·K_lo·K_hi.
func (o *S2Objective) Delta() float64 {
	var sum float64
	for k, d := range o.pend.Wedges {
		sum += float64(d) * float64(k.KLo) * float64(k.KHi)
	}
	return sum
}

// Commit is a no-op: S2 is fully determined by the graph.
func (o *S2Objective) Commit() {}

// Rollback is a no-op.
func (o *S2Objective) Rollback() {}

// ClusteringObjective scores moves by the mean clustering C̄ (average of
// c(v) = tri(v)/C(d_v,2) over nodes with degree ≥ 2). It maintains exact
// per-node triangle counts; degree-preserving moves only, so the set of
// degree-≥2 nodes — and hence the normalization — is constant.
type ClusteringObjective struct {
	tri     []int64
	pending map[int]int64
	deg     []int
	invPair []float64 // 2/(d·(d−1)) per node, 0 for degree < 2
	n2      float64   // number of nodes with degree >= 2
}

// Init counts triangles per node.
func (o *ClusteringObjective) Init(g *graph.CSR) error {
	o.deg = g.DegreeSequence()
	o.tri = make([]int64, g.N())
	o.invPair = make([]float64, g.N())
	o.pending = make(map[int]int64)
	o.n2 = 0
	for v, d := range o.deg {
		if d >= 2 {
			o.invPair[v] = 2 / (float64(d) * float64(d-1))
			o.n2++
		}
	}
	if o.n2 == 0 {
		return fmt.Errorf("generate: clustering objective needs a node of degree >= 2")
	}
	// One triangle pass.
	for u := 0; u < g.N(); u++ {
		for _, v32 := range g.Neighbors(u) {
			v := int(v32)
			if v <= u {
				continue
			}
			a, b := u, v
			if g.Degree(a) > g.Degree(b) {
				a, b = b, a
			}
			for _, w32 := range g.Neighbors(a) {
				w := int(w32)
				if w <= v {
					continue
				}
				if g.HasEdge(b, w) {
					o.tri[u]++
					o.tri[v]++
					o.tri[w]++
				}
			}
		}
	}
	return nil
}

// Begin resets the candidate accumulator.
func (o *ClusteringObjective) Begin() { clear(o.pending) }

func (o *ClusteringObjective) edgeChange(g *graph.CSR, u, v int, sign int64) {
	small, large := u, v
	if g.Degree(small) > g.Degree(large) {
		small, large = large, small
	}
	g.VisitNeighbors(small, func(w int) bool {
		if w != large && g.HasEdge(w, large) {
			o.pending[u] += sign
			o.pending[v] += sign
			o.pending[w] += sign
		}
		return true
	})
}

// WillRemove accumulates triangle losses through common neighbors.
func (o *ClusteringObjective) WillRemove(g *graph.CSR, u, v int) {
	o.edgeChange(g, u, v, -1)
}

// WillAdd accumulates triangle gains through common neighbors.
func (o *ClusteringObjective) WillAdd(g *graph.CSR, u, v int) {
	o.edgeChange(g, u, v, +1)
}

// Delta returns the candidate's C̄ change. The pending contributions are
// summed in sorted node order: float addition is not associative, and
// map-order summation would make otherwise identical runs diverge at
// near-zero deltas, breaking seed determinism.
func (o *ClusteringObjective) Delta() float64 {
	keys := make([]int, 0, len(o.pending))
	for v := range o.pending {
		keys = append(keys, v)
	}
	sortInts(keys)
	var sum float64
	for _, v := range keys {
		sum += float64(o.pending[v]) * o.invPair[v]
	}
	return sum / o.n2
}

// Commit folds the pending per-node triangle changes in.
func (o *ClusteringObjective) Commit() {
	for v, d := range o.pending {
		o.tri[v] += d
	}
}

// Rollback discards pending changes.
func (o *ClusteringObjective) Rollback() {}

// Current returns the tracked C̄ value (test hook).
func (o *ClusteringObjective) Current() float64 {
	var sum float64
	for v, t := range o.tri {
		sum += float64(t) * o.invPair[v]
	}
	return sum / o.n2
}
