package generate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// connectViaSwapsQuadratic is the pre-rewrite reference implementation of
// ConnectViaSwaps: every merge rebuilds the CSR snapshot, the component
// labeling, and the bridge set, and scans the edge list twice — O(m) work
// per merged component, O(m·c) total. It is kept here as the behavioral
// oracle for the differential tests below and as the baseline of
// BenchmarkConnectViaSwaps, which demonstrates the rewrite's near-linear
// scaling in the component count.
func connectViaSwapsQuadratic(g *graph.CSR, rng *rand.Rand) (isolated int, err error) {
	if rng == nil {
		return 0, fmt.Errorf("generate: ConnectViaSwaps requires rng")
	}
	for {
		s := g.Static()
		comp, sizes := graph.Components(s)
		isolated = 0
		for u := 0; u < g.N(); u++ {
			if g.Degree(u) == 0 {
				isolated++
			}
		}
		if len(sizes)-isolated <= 1 {
			return isolated, nil
		}
		bridges := graph.BridgeSet(s)
		var cycleEdges []graph.Edge
		for _, e := range g.Edges() {
			if !bridges[e] {
				cycleEdges = append(cycleEdges, e)
			}
		}
		if len(cycleEdges) == 0 {
			return isolated, fmt.Errorf(
				"generate: cannot connect: %d components but no cycles (m < n-1 over non-isolated nodes)",
				len(sizes)-isolated)
		}
		e1 := cycleEdges[rng.Intn(len(cycleEdges))]
		var otherEdges []graph.Edge
		for _, e := range g.Edges() {
			if comp[e.U] != comp[e1.U] {
				otherEdges = append(otherEdges, e)
			}
		}
		if len(otherEdges) == 0 {
			return isolated, fmt.Errorf("generate: internal error: no cross-component edge")
		}
		e2 := otherEdges[rng.Intn(len(otherEdges))]
		u, v := e1.U, e1.V
		x, y := e2.U, e2.V
		if rng.Intn(2) == 0 {
			x, y = y, x
		}
		g.RemoveEdge(u, v)
		g.RemoveEdge(x, y)
		mustAdd(g, u, y)
		mustAdd(g, x, v)
	}
}

// connectInput builds a random multi-component test graph: nc components
// (a mix of trees and trees-with-chords), each 3..10 nodes, plus a few
// isolated nodes. It returns the graph and the number of chords added
// (the graph's independent-cycle count), which decides feasibility.
func connectInput(rng *rand.Rand, nc int, chordsPerComp func(i int) int) (*graph.CSR, int, int) {
	const maxSize = 10
	isolated := rng.Intn(4)
	g := graph.NewCSR(nc*maxSize + isolated)
	totalChords := 0
	for c := 0; c < nc; c++ {
		base := c * maxSize
		size := 3 + rng.Intn(maxSize-2)
		for i := 1; i < size; i++ {
			if err := g.AddEdge(base+i, base+rng.Intn(i)); err != nil {
				panic(err)
			}
		}
		want := chordsPerComp(c)
		if cap := size*(size-1)/2 - (size - 1); want > cap {
			want = cap
		}
		for added := 0; added < want; {
			a, b := base+rng.Intn(size), base+rng.Intn(size)
			if a == b || g.HasEdge(a, b) {
				continue
			}
			if err := g.AddEdge(a, b); err != nil {
				panic(err)
			}
			added++
		}
		totalChords += want
	}
	trueIsolated := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) == 0 {
			trueIsolated++
		}
	}
	return g, totalChords, trueIsolated
}

// edgeBearingComponents counts components with at least one edge.
func edgeBearingComponents(g *graph.CSR) int {
	_, sizes := graph.Components(g.Static())
	n := 0
	for _, sz := range sizes {
		if sz > 1 {
			n++
		}
	}
	return n
}

// TestConnectViaSwapsPropertyRandomMix is the rewrite's main property
// test: for random forests+cycles inputs the degree sequence is
// unchanged, all edge-bearing components end up merged into one, the
// isolated count is reported exactly, and forest-heavy infeasible inputs
// error without mutating the graph. Run in CI under -race.
func TestConnectViaSwapsPropertyRandomMix(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		nc := 2 + rng.Intn(8)
		// Random chord budget: sometimes plentiful, sometimes scarce,
		// sometimes zero (a forest) — the three feasibility regimes.
		regime := rng.Intn(3)
		g, chords, isolated := connectInput(rng, nc, func(i int) int {
			switch regime {
			case 0:
				return rng.Intn(4) // usually feasible
			case 1:
				if i == 0 {
					return nc // one rich component funds everything
				}
				return 0
			default:
				return 0 // forest: infeasible whenever nc > 1
			}
		})
		feasible := chords >= nc-1
		degBefore := g.DegreeSequence()
		before := g.Clone()
		gotIso, err := ConnectViaSwaps(g, rng)
		if feasible != (err == nil) {
			t.Logf("seed %d: chords=%d nc=%d feasible=%v err=%v", seed, chords, nc, feasible, err)
			return false
		}
		if err != nil {
			// Infeasibility is detected up front: g must be untouched.
			return g.Equal(before)
		}
		if gotIso != isolated {
			t.Logf("seed %d: isolated %d, want %d", seed, gotIso, isolated)
			return false
		}
		for u, d := range g.DegreeSequence() {
			if d != degBefore[u] {
				t.Logf("seed %d: degree of %d changed %d → %d", seed, u, degBefore[u], d)
				return false
			}
		}
		if g.M() != before.M() {
			return false
		}
		return edgeBearingComponents(g) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestConnectViaSwapsMatchesQuadraticSemantics differentially checks the
// rewrite against the pre-rewrite reference: identical feasibility
// verdicts and isolated counts on the same inputs (the RNG streams — and
// hence the exact connected graphs — intentionally differ; see
// CHANGES.md for the stream break).
func TestConnectViaSwapsMatchesQuadraticSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		nc := 1 + rng.Intn(6)
		g, _, _ := connectInput(rng, nc, func(i int) int { return rng.Intn(3) })
		gOld := g.Clone()
		isoNew, errNew := ConnectViaSwaps(g, newRng(seed+1))
		isoOld, errOld := connectViaSwapsQuadratic(gOld, newRng(seed+1))
		if (errNew == nil) != (errOld == nil) {
			t.Logf("seed %d: new err=%v old err=%v", seed, errNew, errOld)
			return false
		}
		if errNew == nil && isoNew != isoOld {
			t.Logf("seed %d: isolated new=%d old=%d", seed, isoNew, isoOld)
			return false
		}
		if errNew == nil {
			return edgeBearingComponents(g) <= 1 && edgeBearingComponents(gOld) <= 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestConnectViaSwapsSingleEdgeComponents exercises the smallest
// edge-bearing components (one edge, two nodes — pure trees) hanging off
// one cycle-rich hub, the shape pseudograph simplification produces.
func TestConnectViaSwapsSingleEdgeComponents(t *testing.T) {
	rng := newRng(40)
	g := graph.NewCSR(30)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Three chords fund three tree merges.
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(10+2*i, 11+2*i); err != nil {
			t.Fatal(err)
		}
	}
	degBefore := g.DegreeSequence()
	iso, err := ConnectViaSwaps(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	if iso != 30-4-6 {
		t.Errorf("isolated = %d, want %d", iso, 30-4-6)
	}
	for u, d := range g.DegreeSequence() {
		if d != degBefore[u] {
			t.Errorf("degree of %d changed: %d → %d", u, degBefore[u], d)
		}
	}
	if edgeBearingComponents(g) != 1 {
		t.Errorf("still %d edge-bearing components", edgeBearingComponents(g))
	}
}

// TestConnectViaSwapsBarelyFeasible pins the boundary case: exactly c−1
// chords for c components must succeed, one fewer must fail untouched.
func TestConnectViaSwapsBarelyFeasible(t *testing.T) {
	build := func(chords int) *graph.CSR {
		g := graph.NewCSR(20)
		// Component 0: path 0-1-2-3 plus `chords` extra edges.
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range [][2]int{{0, 2}, {0, 3}, {1, 3}}[:chords] {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		// Two tree components.
		for _, e := range [][2]int{{10, 11}, {11, 12}, {15, 16}} {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	g := build(2) // 3 components, 2 chords: exactly feasible
	if _, err := ConnectViaSwaps(g, newRng(41)); err != nil {
		t.Fatalf("barely feasible input rejected: %v", err)
	}
	if edgeBearingComponents(g) != 1 {
		t.Errorf("%d edge-bearing components remain", edgeBearingComponents(g))
	}
	g = build(1) // 3 components, 1 chord: infeasible
	before := g.Clone()
	if _, err := ConnectViaSwaps(g, newRng(42)); err == nil {
		t.Error("infeasible input accepted")
	}
	if !g.Equal(before) {
		t.Error("infeasible input was mutated")
	}
}

// TestConnectViaSwapsDeterministic: the same input and seed must yield
// the identical connected graph on every run. This is a regression
// guard for the upfront spanning-forest pass: traversing adjacency maps
// (randomized iteration order) instead of the sorted CSR snapshot would
// leak map order into the tree/chord split and break the repository's
// determinism contract.
func TestConnectViaSwapsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		g, _, _ := connectInput(rng, 2+rng.Intn(5), func(i int) int { return 1 + rng.Intn(2) })
		a, b := g.Clone(), g.Clone()
		isoA, errA := ConnectViaSwaps(a, newRng(seed*3+1))
		isoB, errB := ConnectViaSwaps(b, newRng(seed*3+1))
		if (errA == nil) != (errB == nil) || isoA != isoB {
			return false
		}
		return errA != nil || a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// benchConnectInput builds nc ring components of ringSize nodes each —
// every component carries exactly one chord, so connecting is feasible
// and the work scales purely with the component count.
func benchConnectInput(nc, ringSize int) *graph.CSR {
	g := graph.NewCSR(nc * ringSize)
	for c := 0; c < nc; c++ {
		base := c * ringSize
		for i := 0; i < ringSize; i++ {
			if err := g.AddEdge(base+i, base+(i+1)%ringSize); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// BenchmarkConnectViaSwaps compares the near-linear rewrite against the
// quadratic reference at a fixed total size (m constant) and growing
// component count c. The rewrite's per-op cost stays flat in c while the
// reference grows linearly in c (O(m·c) total vs O(n+m+c)).
func BenchmarkConnectViaSwaps(b *testing.B) {
	const totalNodes = 1 << 14
	for _, nc := range []int{4, 32, 256, 2048} {
		ringSize := totalNodes / nc
		for _, impl := range []struct {
			name string
			fn   func(*graph.CSR, *rand.Rand) (int, error)
		}{
			{"new", ConnectViaSwaps},
			{"quadratic", connectViaSwapsQuadratic},
		} {
			b.Run(fmt.Sprintf("%s/components=%d", impl.name, nc), func(b *testing.B) {
				src := benchConnectInput(nc, ringSize)
				rng := rand.New(rand.NewSource(1))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					g := src.Clone()
					b.StartTimer()
					if _, err := impl.fn(g, rng); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
