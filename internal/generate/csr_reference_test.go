package generate

import (
	"bytes"
	"testing"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/subgraphs"
)

// profileBytes encodes a profile to its canonical binary form so two
// profiles can be compared byte for byte.
func profileBytes(t *testing.T, p *dk.Profile) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := dk.WriteProfileBinary(&b, p); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestCSRMatchesMapReference is the old-vs-new pinning suite of the
// CSR-first refactor: on every differential graph family it checks that
// the working CSR and the retained map-adjacency Graph agree on content
// hash, wire bytes, extracted profiles at all four depths, and the
// wedge/triangle census — and that a rewiring run on the CSR, replayed
// move-for-move on the map reference, leaves the two representations
// with identical edge-index streams (the RNG-stream contract) and
// byte-identical encodings.
func TestCSRMatchesMapReference(t *testing.T) {
	for _, fam := range diffFamilies {
		for _, seed := range []int64{7, 23} {
			c := fam.build(newRng(seed))
			ref := c.Graph() // retained map-adjacency reference

			// Static analysis surfaces agree.
			if graph.ContentHash(c, nil) != graph.ContentHash(ref, nil) {
				t.Fatalf("%s: content hash differs across representations", fam.name)
			}
			var bc, bg bytes.Buffer
			if err := graph.WriteBinaryCSR(&bc, c, nil); err != nil {
				t.Fatal(err)
			}
			if err := graph.WriteBinary(&bg, ref, nil); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bc.Bytes(), bg.Bytes()) {
				t.Fatalf("%s: binary encodings differ across representations", fam.name)
			}
			for d := 0; d <= 3; d++ {
				pc, err := dk.Extract(c, d)
				if err != nil {
					t.Fatal(err)
				}
				pg, err := dk.Extract(ref.Static(), d)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(profileBytes(t, pc), profileBytes(t, pg)) {
					t.Fatalf("%s: depth-%d profiles differ across representations", fam.name, d)
				}
			}
			if !subgraphs.Count(c).Equal(subgraphs.Count(ref.Static())) {
				t.Fatalf("%s: censuses differ across representations", fam.name)
			}

			// Dynamic surface: rewire the CSR, replay the accepted-move log
			// on the map reference with the same edge operations, and require
			// the two mutable representations to stay in lockstep — including
			// the swap-remove edge-index permutation that the uniform edge
			// draw (EdgeAt ∘ Intn) depends on.
			for _, depth := range []int{1, 2, 3} {
				work := c.Clone()
				r, err := NewRewirer(work, depth, newRng(seed*31))
				if err != nil {
					t.Fatalf("%s/d%d: %v", fam.name, depth, err)
				}
				r.RecordMoves = true
				for att := 0; att < 40000 && r.Stats.Accepted < 100; att++ {
					if _, err := r.Step(); err != nil {
						t.Fatal(err)
					}
				}
				mirror := ref.Clone()
				for _, m := range r.AcceptedMoves() {
					mirror.RemoveEdge(m.U, m.V)
					mirror.RemoveEdge(m.X, m.Y)
					if err := mirror.AddEdge(m.U, m.Y); err != nil {
						t.Fatal(err)
					}
					if err := mirror.AddEdge(m.X, m.V); err != nil {
						t.Fatal(err)
					}
				}
				if work.M() != mirror.M() {
					t.Fatalf("%s/d%d: edge counts diverged", fam.name, depth)
				}
				for i := 0; i < work.M(); i++ {
					if work.EdgeAt(i) != mirror.EdgeAt(i) {
						t.Fatalf("%s/d%d: edge stream diverged at index %d: %v vs %v",
							fam.name, depth, i, work.EdgeAt(i), mirror.EdgeAt(i))
					}
				}
				if graph.ContentHash(work, nil) != graph.ContentHash(mirror, nil) {
					t.Fatalf("%s/d%d: rewired content hash differs", fam.name, depth)
				}
				pw, err := dk.Extract(work, depth)
				if err != nil {
					t.Fatal(err)
				}
				pm, err := dk.Extract(mirror.Static(), depth)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(profileBytes(t, pw), profileBytes(t, pm)) {
					t.Fatalf("%s/d%d: rewired profiles differ", fam.name, depth)
				}
			}
		}
	}
}
