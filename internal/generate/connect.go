package generate

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ConnectViaSwaps makes the non-isolated part of g connected (in place)
// without changing any node's degree, using the reconnection technique of
// Viger–Latapy (the paper's reference [31]): swap a *cycle* (non-bridge)
// edge (u,v) of one component with any edge (x,y) of another, rewiring to
// (u,y),(x,v). Removing a non-bridge leaves its component whole, and the
// two new edges tie every piece of the other component to it, so each
// swap reduces the number of edge-bearing components by exactly one.
//
// Degree-preserving connection is possible iff the total edge count is at
// least (non-isolated nodes − 1); equivalently, whenever two or more
// edge-bearing components remain, at least one of them contains a cycle.
// A forest input therefore returns an error. Isolated (degree-0) nodes
// can never be attached by degree-preserving moves; their count is
// returned.
func ConnectViaSwaps(g *graph.Graph, rng *rand.Rand) (isolated int, err error) {
	if rng == nil {
		return 0, fmt.Errorf("generate: ConnectViaSwaps requires rng")
	}
	for {
		s := g.Static()
		comp, sizes := graph.Components(s)
		isolated = 0
		for u := 0; u < g.N(); u++ {
			if g.Degree(u) == 0 {
				isolated++
			}
		}
		if len(sizes)-isolated <= 1 {
			return isolated, nil
		}
		// Pick a cycle edge: any edge that is not a bridge.
		bridges := graph.BridgeSet(s)
		var cycleEdges []graph.Edge
		for _, e := range g.Edges() {
			if !bridges[e] {
				cycleEdges = append(cycleEdges, e)
			}
		}
		if len(cycleEdges) == 0 {
			return isolated, fmt.Errorf(
				"generate: cannot connect: %d components but no cycles (m < n-1 over non-isolated nodes)",
				len(sizes)-isolated)
		}
		e1 := cycleEdges[rng.Intn(len(cycleEdges))]
		// Any edge in a different component.
		var otherEdges []graph.Edge
		for _, e := range g.Edges() {
			if comp[e.U] != comp[e1.U] {
				otherEdges = append(otherEdges, e)
			}
		}
		if len(otherEdges) == 0 {
			// The cyclic component already holds every edge; only
			// isolated nodes remain outside, which the check above
			// would have caught.
			return isolated, fmt.Errorf("generate: internal error: no cross-component edge")
		}
		e2 := otherEdges[rng.Intn(len(otherEdges))]
		u, v := e1.U, e1.V
		x, y := e2.U, e2.V
		if rng.Intn(2) == 0 {
			x, y = y, x
		}
		// Endpoints lie in different components, so all four are distinct
		// and neither (u,y) nor (x,v) can already exist.
		g.RemoveEdge(u, v)
		g.RemoveEdge(x, y)
		mustAdd(g, u, y)
		mustAdd(g, x, v)
	}
}
