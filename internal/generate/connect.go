package generate

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ConnectViaSwaps makes the non-isolated part of g connected (in place)
// without changing any node's degree, using the reconnection technique of
// Viger–Latapy (the paper's reference [31]): swap a *cycle* (non-bridge)
// edge (u,v) of one component with any edge (x,y) of another, rewiring to
// (u,y),(x,v). Removing a non-bridge leaves its component whole, and the
// two new edges tie every piece of the other component to it, so each
// swap reduces the number of edge-bearing components by exactly one.
//
// Degree-preserving connection is possible iff the total edge count is at
// least (non-isolated nodes − 1); equivalently, whenever two or more
// edge-bearing components remain, at least one of them contains a cycle.
// A forest input therefore returns an error; infeasibility is detected
// up front, before any swap, so a failed call leaves g untouched.
// Isolated (degree-0) nodes can never be attached by degree-preserving
// moves; their count is returned.
//
// Cost is O(n + m + c) for c components: one spanning-forest pass
// classifies every edge as tree edge or chord, and each of the c−1
// merges then runs in O(1) amortized. A chord closes a cycle with
// spanning-tree edges, so it is never a bridge of its component, and the
// merge bookkeeping below keeps every tracked chord cycle-closing
// without ever recomputing bridges (see connectState.merge).
func ConnectViaSwaps(g *graph.CSR, rng *rand.Rand) (isolated int, err error) {
	if rng == nil {
		return 0, fmt.Errorf("generate: ConnectViaSwaps requires rng")
	}
	st := newConnectState(g)
	isolated = st.isolated
	if len(st.comps) <= 1 {
		return isolated, nil
	}
	// Feasibility: each merge consumes exactly one chord (one independent
	// cycle) overall, so connecting c edge-bearing components needs at
	// least c−1 chords — equivalently m >= n−1 over non-isolated nodes.
	if st.chords < len(st.comps)-1 {
		return isolated, fmt.Errorf(
			"generate: cannot connect: %d components but only %d cycles (m < n-1 over non-isolated nodes)",
			len(st.comps), st.chords)
	}
	// Grow a hub component, merging every other component into it.
	// Chord-bearing components are merged first so the hub's chord list
	// can only run dry after every remaining component is a tree — at
	// which point the feasibility check above guarantees enough chords
	// are banked for the tree merges.
	hub := st.comps[0]
	for _, b := range st.comps[1:] {
		st.merge(g, rng, hub, b)
	}
	return isolated, nil
}

// connectComp is the per-component edge bookkeeping of a connect run:
// the component's edges split into spanning-tree edges and chords
// (non-tree edges). Chords are exactly the component's independent
// cycles; a component is a tree iff it has none.
type connectComp struct {
	tree   []graph.Edge
	chords []graph.Edge
}

// connectState is the upfront analysis of the input graph.
type connectState struct {
	comps    []*connectComp // edge-bearing components, chord-bearing first
	chords   int            // total chords across all components
	isolated int            // degree-0 node count
}

// newConnectState runs the single O(n + m) pass: a traversal forest
// over g, classifying each edge as tree edge or chord and grouping them
// by component. The traversal walks the sorted CSR snapshot, not the
// adjacency maps — map iteration order would leak into the tree/chord
// split and make the same seed produce different connected graphs.
func newConnectState(g *graph.CSR) *connectState {
	st := &connectState{}
	s := g.Static()
	n := s.N()
	visited := make([]bool, n)
	parent := make([]int32, n)
	var withChords, trees []*connectComp
	queue := make([]int32, 0, 64)
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		if s.Degree(root) == 0 {
			st.isolated++
			visited[root] = true
			continue
		}
		c := &connectComp{}
		visited[root] = true
		parent[root] = -1
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range s.Neighbors(int(u)) {
				switch {
				case !visited[v]:
					visited[v] = true
					parent[v] = u
					c.tree = append(c.tree, graph.Edge{U: int(u), V: int(v)}.Canon())
					queue = append(queue, v)
				case v != parent[u] && int(v) > int(u):
					// Non-tree edge. The parent check keeps the tree
					// edge to u's traversal parent out (in a simple
					// graph it is the only edge between u and its
					// parent), and the v > u check deduplicates the
					// two visits every non-tree edge gets — one from
					// each endpoint, both after the endpoints are
					// marked visited.
					c.chords = append(c.chords, graph.Edge{U: int(u), V: int(v)}.Canon())
				}
			}
		}
		st.chords += len(c.chords)
		if len(c.chords) > 0 {
			withChords = append(withChords, c)
		} else {
			trees = append(trees, c)
		}
	}
	st.comps = append(withChords, trees...)
	return st
}

// merge connects component b into the hub with one Viger–Latapy swap and
// folds b's edge lists into the hub's. One side of the swap donates a
// chord (guaranteed non-bridge: its cycle runs through spanning-tree
// edges that are never removed); the other side donates a chord too when
// it has one, otherwise any tree edge. Removing a chord keeps its
// component's spanning tree intact; removing a tree edge splits the tree
// into two parts, each tied to the other component by one of the new
// edges. In both cases the merged component stays connected, the merged
// spanning tree is exact, and the chord count drops by exactly one:
//
//	chord + chord:     both consumed, one new edge re-enters as a chord
//	chord + tree edge: chord consumed, both new edges become tree edges
func (st *connectState) merge(g *graph.CSR, rng *rand.Rand, hub, b *connectComp) {
	// e1 is the guaranteed chord; e2 comes from the other side.
	var e1, e2 graph.Edge
	bothChords := false
	switch {
	case len(hub.chords) > 0 && len(b.chords) > 0:
		e1 = takeAt(&hub.chords, rng.Intn(len(hub.chords)))
		e2 = takeAt(&b.chords, rng.Intn(len(b.chords)))
		bothChords = true
	case len(hub.chords) > 0:
		e1 = takeAt(&hub.chords, rng.Intn(len(hub.chords)))
		e2 = takeAt(&b.tree, rng.Intn(len(b.tree)))
	default:
		// Unreachable: chord-bearing components merge first and those
		// merges never shrink the hub's chord list, so once tree merges
		// begin the hub holds every remaining chord, and the upfront
		// feasibility check (one chord consumed per merge) keeps it
		// nonempty until the last merge completes.
		panic("generate: connect invariant violated: hub has no chords mid-merge")
	}
	u, v := e1.U, e1.V
	x, y := e2.U, e2.V
	if rng.Intn(2) == 0 {
		x, y = y, x
	}
	// Endpoints lie in different components, so all four are distinct
	// and neither (u,y) nor (x,v) can already exist.
	g.RemoveEdge(u, v)
	g.RemoveEdge(x, y)
	mustAdd(g, u, y)
	mustAdd(g, x, v)
	if bothChords {
		// The merged spanning tree (both trees plus one new edge) leaves
		// the other new edge closing a cycle across the two halves.
		hub.tree = append(hub.tree, graph.Edge{U: u, V: y}.Canon())
		hub.chords = append(hub.chords, graph.Edge{U: x, V: v}.Canon())
	} else {
		// The removed tree edge split its tree in two; the two new edges
		// reattach both halves, and no new chord appears.
		hub.tree = append(hub.tree, graph.Edge{U: u, V: y}.Canon(), graph.Edge{U: x, V: v}.Canon())
	}
	hub.tree = append(hub.tree, b.tree...)
	hub.chords = append(hub.chords, b.chords...)
	b.tree, b.chords = nil, nil
}

// takeAt removes and returns element i of *s by swapping with the last
// element — O(1), order not preserved (callers draw i at random anyway).
func takeAt(s *[]graph.Edge, i int) graph.Edge {
	out := (*s)[i]
	last := len(*s) - 1
	(*s)[i] = (*s)[last]
	*s = (*s)[:last]
	return out
}
