// Package generate implements every dK-graph construction approach from
// Section 4.1 of the paper:
//
//   - stochastic: classical G(n,p) for 0K, Chung–Lu for 1K, and the
//     hidden-variable class-pair construction for 2K;
//   - pseudograph (configuration): stub matching for 1K (PLRG) and the
//     paper's new edge-end grouping algorithm for 2K;
//   - matching: loop-avoiding stub matching for 1K and 2K with
//     deadlock resolution by edge re-breaking;
//   - rewiring: dK-preserving randomizing rewiring for d = 0..3;
//   - targeting: dK-targeting d′K-preserving rewiring (Metropolis
//     dynamics) with zero-temperature, fixed-temperature and annealed
//     acceptance;
//   - exploration: dK-space exploration by maximizing/minimizing scalar
//     metrics (S, S2, C̄) under dK-preserving rewiring.
//
// All generators are deterministic given the caller-supplied *rand.Rand,
// and each runs single-threaded; ensemble workloads parallelize across
// replicas instead (Replicas, RandomizeReplicas), with one seed-derived
// RNG stream per replica so results are worker-count independent.
package generate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Options carries common knobs for the construction algorithms.
type Options struct {
	// Rng is the random source; required by every generator.
	Rng *rand.Rand
	// MaxAttempts bounds retry loops (stub pairing, swap candidate
	// search). Zero selects a generator-specific default.
	MaxAttempts int
}

func (o Options) rng() (*rand.Rand, error) {
	if o.Rng == nil {
		return nil, fmt.Errorf("generate: Options.Rng is required")
	}
	return o.Rng, nil
}

// blockSample adds, in expectation, p·|block| edges among a block of node
// pairs that all share the same connection probability p, using geometric
// index skipping so the cost is proportional to the number of edges
// generated rather than the number of pairs. pairAt maps a linear index in
// [0, total) to a node pair. Duplicate edges cannot occur because each
// pair has a unique index.
func blockSample(rng *rand.Rand, total int64, p float64, pairAt func(int64) (int, int), add func(u, v int)) {
	if p <= 0 || total <= 0 {
		return
	}
	if p >= 1 {
		for idx := int64(0); idx < total; idx++ {
			u, v := pairAt(idx)
			add(u, v)
		}
		return
	}
	// Geometric skipping: the gap between successive successes is
	// Geometric(p); generate via inverse transform.
	logq := math.Log1p(-p)
	idx := int64(-1)
	for {
		u := rng.Float64()
		// Draw gap >= 1.
		gap := int64(math.Floor(math.Log(u)/logq)) + 1
		if gap < 1 {
			gap = 1
		}
		idx += gap
		if idx >= total {
			return
		}
		a, b := pairAt(idx)
		add(a, b)
	}
}

// unrankSamePair maps a linear index in [0, C(n,2)) to the pair (i, j)
// with i < j, enumerating pairs row by row: (0,1),(0,2),...,(0,n-1),(1,2),...
func unrankSamePair(idx int64, n int) (int, int) {
	// Row i starts at offset f(i) = i·n − i·(i+1)/2 − i ... solve by a
	// conservative closed form then fix up locally.
	nf := float64(n)
	i := int((2*nf - 1 - math.Sqrt((2*nf-1)*(2*nf-1)-8*float64(idx))) / 2)
	if i < 0 {
		i = 0
	}
	rowStart := func(i int64) int64 { return i*int64(n) - i*(i+1)/2 }
	for i > 0 && rowStart(int64(i)) > idx {
		i--
	}
	for int64(i) < int64(n)-1 && rowStart(int64(i)+1) <= idx {
		i++
	}
	j := i + 1 + int(idx-rowStart(int64(i)))
	return i, j
}

// Stochastic0K builds a classical Erdős–Rényi G(n,p) graph with
// p = k̄/n, reproducing the target average degree in expectation.
func Stochastic0K(n int, avgDegree float64, opt Options) (*graph.CSR, error) {
	rng, err := opt.rng()
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("generate: n = %d", n)
	}
	p := avgDegree / float64(n)
	if p > 1 {
		p = 1
	}
	g := graph.NewCSR(n)
	total := int64(n) * int64(n-1) / 2
	blockSample(rng, total, p,
		func(idx int64) (int, int) { return unrankSamePair(idx, n) },
		func(u, v int) {
			if err := g.AddEdge(u, v); err != nil {
				panic("generate: duplicate index in blockSample: " + err.Error())
			}
		})
	return g, nil
}
