package generate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/subgraphs"
)

// Move is one dK-preserving rewiring step, expressed as edge removals
// followed by edge insertions.
//
//	depth 0:  remove (U,V),           add (X,Y)           — preserves k̄
//	depth 1+: remove (U,V) and (X,Y), add (U,Y) and (X,V) — preserves P(k)
//
// For depth 2 the proposal additionally requires deg(V) = deg(Y) or
// deg(U) = deg(X) (Figure 4 of the paper), which preserves the JDD; for
// depth 3 the engine also verifies that the wedge/triangle census is
// unchanged.
type Move struct {
	U, V, X, Y int
	Depth      int
}

// RewireStats reports what a rewiring run did.
type RewireStats struct {
	Attempts int // candidate proposals examined
	Accepted int // moves applied (and kept)
	Reverted int // moves applied and rolled back by constraints/objective
}

// Rewirer performs dK-preserving rewiring on a mutable graph with an
// optional Objective scoring each candidate move and an acceptance Policy
// deciding from the objective delta. A nil objective with the default
// policy yields pure dK-randomizing rewiring.
type Rewirer struct {
	G     *graph.Graph
	Depth int // preserved depth d: 0, 1, 2 or 3
	Rng   *rand.Rand
	// Obj scores candidate moves; nil accepts unconditionally (subject to
	// the structural constraints of Depth).
	Obj Objective
	// Accept decides from the objective delta; nil accepts everything.
	Accept Policy
	// PreserveConnectivity rejects moves that disconnect the graph
	// (checked by BFS after each accepted move — expensive; the paper
	// itself does not check and extracts GCCs afterwards).
	PreserveConnectivity bool

	deg      []int
	censusOK bool // Depth==3 machinery initialized
	delta    *subgraphs.Delta
}

// Policy maps an objective delta to an accept/reject decision.
type Policy func(rng *rand.Rand, delta float64) bool

// PolicyAlways accepts every structurally valid move (randomizing).
func PolicyAlways(*rand.Rand, float64) bool { return true }

// PolicyMinimize accepts strictly improving (negative-delta) moves.
func PolicyMinimize(_ *rand.Rand, d float64) bool { return d < 0 }

// PolicyMaximize accepts strictly increasing moves.
func PolicyMaximize(_ *rand.Rand, d float64) bool { return d > 0 }

// PolicyMetropolis returns the simulated-annealing acceptance rule of
// Section 4.1.4 at fixed temperature T: improving moves always pass,
// worsening moves pass with probability exp(−Δ/T). T = 0 degenerates to
// PolicyMinimize (the paper's zero-temperature targeting).
func PolicyMetropolis(T float64) Policy {
	return func(rng *rand.Rand, d float64) bool {
		if d < 0 {
			return true
		}
		if T <= 0 {
			return false
		}
		return rng.Float64() < math.Exp(-d/T)
	}
}

// NewRewirer validates and prepares a rewiring run over g.
func NewRewirer(g *graph.Graph, depth int, rng *rand.Rand) (*Rewirer, error) {
	if depth < 0 || depth > 3 {
		return nil, fmt.Errorf("generate: rewiring depth %d outside 0..3", depth)
	}
	if rng == nil {
		return nil, fmt.Errorf("generate: rewiring requires a random source")
	}
	if g.M() < 2 {
		return nil, fmt.Errorf("generate: graph has %d edges; need at least 2", g.M())
	}
	r := &Rewirer{G: g, Depth: depth, Rng: rng}
	r.deg = g.DegreeSequence()
	if depth == 3 {
		r.delta = subgraphs.NewDelta()
		r.censusOK = true
	}
	return r, nil
}

// propose draws a structurally valid candidate move for the configured
// depth, or ok = false if the draw failed (caller retries).
func (r *Rewirer) propose() (Move, bool) {
	g, rng := r.G, r.Rng
	if r.Depth == 0 {
		e := g.EdgeAt(rng.Intn(g.M()))
		x, y := rng.Intn(g.N()), rng.Intn(g.N())
		if x == y || g.HasEdge(x, y) {
			return Move{}, false
		}
		return Move{U: e.U, V: e.V, X: x, Y: y, Depth: 0}, true
	}
	e1 := g.EdgeAt(rng.Intn(g.M()))
	e2 := g.EdgeAt(rng.Intn(g.M()))
	u, v := e1.U, e1.V
	x, y := e2.U, e2.V
	if rng.Intn(2) == 0 {
		u, v = v, u
	}
	if rng.Intn(2) == 0 {
		x, y = y, x
	}
	// Candidate swap: (u,v),(x,y) → (u,y),(x,v).
	if u == x || u == y || v == x || v == y {
		return Move{}, false
	}
	if g.HasEdge(u, y) || g.HasEdge(x, v) {
		return Move{}, false
	}
	if r.Depth >= 2 {
		// JDD preservation: the multiset {(du,dv),(dx,dy)} must equal
		// {(du,dy),(dx,dv)}, which holds iff dv = dy or du = dx.
		if r.deg[v] != r.deg[y] && r.deg[u] != r.deg[x] {
			return Move{}, false
		}
	}
	return Move{U: u, V: v, X: x, Y: y, Depth: r.Depth}, true
}

// apply performs the move's edge operations, routing each through the
// objective (and, at depth 3, the census delta).
func (r *Rewirer) apply(m Move) {
	g := r.G
	if r.Obj != nil {
		r.Obj.Begin()
	}
	if r.censusOK {
		r.delta.Reset()
	}
	remove := func(a, b int) {
		if r.Obj != nil {
			r.Obj.WillRemove(g, a, b)
		}
		if r.censusOK {
			r.delta.RemoveEdge(g, r.deg, a, b)
		}
		g.RemoveEdge(a, b)
	}
	add := func(a, b int) {
		if r.Obj != nil {
			r.Obj.WillAdd(g, a, b)
		}
		if r.censusOK {
			r.delta.AddEdge(g, r.deg, a, b)
		}
		mustAdd(g, a, b)
	}
	if m.Depth == 0 {
		remove(m.U, m.V)
		add(m.X, m.Y)
		return
	}
	remove(m.U, m.V)
	remove(m.X, m.Y)
	add(m.U, m.Y)
	add(m.X, m.V)
}

// revert undoes a move applied by apply (inverse operations in reverse
// order), bypassing objective callbacks; callers pair it with
// Obj.Rollback.
func (r *Rewirer) revert(m Move) {
	g := r.G
	if m.Depth == 0 {
		g.RemoveEdge(m.X, m.Y)
		mustAdd(g, m.U, m.V)
		return
	}
	g.RemoveEdge(m.X, m.V)
	g.RemoveEdge(m.U, m.Y)
	mustAdd(g, m.X, m.Y)
	mustAdd(g, m.U, m.V)
}

// Step proposes and evaluates one candidate move. It reports whether a
// move was accepted; attempts that fail structural constraints return
// (false, nil).
func (r *Rewirer) Step() (bool, error) {
	m, ok := r.propose()
	if !ok {
		return false, nil
	}
	r.apply(m)
	// Depth-3 structural constraint: census must be unchanged.
	if r.censusOK && !r.delta.IsZero() {
		r.revert(m)
		if r.Obj != nil {
			r.Obj.Rollback()
		}
		return false, nil
	}
	if r.Obj != nil {
		delta := r.Obj.Delta()
		accept := r.Accept
		if accept == nil {
			accept = PolicyAlways
		}
		if !accept(r.Rng, delta) {
			r.revert(m)
			r.Obj.Rollback()
			return false, nil
		}
	}
	if r.PreserveConnectivity && !graph.IsConnected(r.G.Static()) {
		r.revert(m)
		if r.Obj != nil {
			r.Obj.Rollback()
		}
		return false, nil
	}
	if r.Obj != nil {
		r.Obj.Commit()
	}
	// Depth-0 moves change degrees; keep the cache honest.
	if m.Depth == 0 {
		r.deg[m.U]--
		r.deg[m.V]--
		r.deg[m.X]++
		r.deg[m.Y]++
	}
	return true, nil
}

// Run performs up to maxAttempts proposals, stopping early after accepted
// moves reach wantAccepted (0 means no acceptance target) or after
// patience consecutive rejections (0 means unlimited patience).
func (r *Rewirer) Run(wantAccepted, maxAttempts, patience int) (RewireStats, error) {
	var st RewireStats
	sinceAccept := 0
	for st.Attempts = 0; st.Attempts < maxAttempts; st.Attempts++ {
		ok, err := r.Step()
		if err != nil {
			return st, err
		}
		if ok {
			st.Accepted++
			sinceAccept = 0
			if wantAccepted > 0 && st.Accepted >= wantAccepted {
				st.Attempts++
				break
			}
		} else {
			sinceAccept++
			if patience > 0 && sinceAccept >= patience {
				st.Attempts++
				break
			}
		}
	}
	return st, nil
}

// RandomizeOptions configures dK-randomizing rewiring.
type RandomizeOptions struct {
	Rng *rand.Rand
	// SwapFactor scales the accepted-swap target: SwapFactor·M successful
	// swaps (default 10, following the paper's 10× convention and the
	// O(m) mixing result it cites).
	SwapFactor int
	// AttemptFactor scales the proposal budget: AttemptFactor·M proposals
	// (default 40·SwapFactor for depth 3 — whose acceptance rate is tiny
	// by design — and 10·SwapFactor otherwise).
	AttemptFactor int
	// PatienceFactor stops the run after PatienceFactor·M consecutive
	// rejected proposals (default 10; negative disables). Depth-3 runs on
	// heavily constrained graphs converge by exhausting their tiny set of
	// census-preserving swaps, which this bounds cleanly.
	PatienceFactor int
	// PreserveConnectivity rejects disconnecting moves (expensive).
	PreserveConnectivity bool
}

// Randomize applies dK-preserving randomizing rewiring (Section 4.1.4) to
// a copy of g, returning the rewired graph. The input graph is unchanged.
func Randomize(g *graph.Graph, depth int, opt RandomizeOptions) (*graph.Graph, RewireStats, error) {
	if opt.Rng == nil {
		return nil, RewireStats{}, fmt.Errorf("generate: Randomize requires Rng")
	}
	out := g.Clone()
	r, err := NewRewirer(out, depth, opt.Rng)
	if err != nil {
		return nil, RewireStats{}, err
	}
	r.PreserveConnectivity = opt.PreserveConnectivity
	swapFactor := opt.SwapFactor
	if swapFactor <= 0 {
		swapFactor = 10
	}
	attemptFactor := opt.AttemptFactor
	if attemptFactor <= 0 {
		attemptFactor = 10 * swapFactor
		if depth == 3 {
			attemptFactor = 40 * swapFactor
		}
	}
	patienceFactor := opt.PatienceFactor
	if patienceFactor == 0 {
		patienceFactor = 10
	}
	patience := 0
	if patienceFactor > 0 {
		patience = patienceFactor * g.M()
	}
	want := swapFactor * g.M()
	budget := attemptFactor * g.M()
	st, err := r.Run(want, budget, patience)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
