package generate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/subgraphs"
)

// Move is one dK-preserving rewiring step, expressed as edge removals
// followed by edge insertions.
//
//	depth 0:  remove (U,V),           add (X,Y)           — preserves k̄
//	depth 1+: remove (U,V) and (X,Y), add (U,Y) and (X,V) — preserves P(k)
//
// For depth 2 the proposal additionally requires deg(V) = deg(Y) or
// deg(U) = deg(X) (Figure 4 of the paper), which preserves the JDD; for
// depth 3 the engine also verifies that the wedge/triangle census is
// unchanged.
type Move struct {
	U, V, X, Y int
	Depth      int
}

// rejectReason classifies why a candidate proposal was not accepted.
type rejectReason uint8

const (
	rejectNone          rejectReason = iota
	rejectSelfLoop                   // shared endpoint / x == y: the swap would create a self-loop
	rejectDuplicateEdge              // a replacement edge already exists
	rejectJDDMismatch                // depth ≥ 2: neither dv = dy nor du = dx
	rejectCensusChanged              // depth 3: wedge/triangle census delta nonzero
	rejectObjective                  // acceptance policy declined the objective delta
	rejectDisconnected               // PreserveConnectivity vetoed the move
)

// RejectionBreakdown counts rejected proposals by reason. The structural
// reasons (self-loop, duplicate edge, JDD mismatch, census change) are
// decided before the move touches the graph; objective and connectivity
// rejections apply the move first and roll it back (counted in
// RewireStats.Reverted as well).
type RejectionBreakdown struct {
	SelfLoop      int
	DuplicateEdge int
	JDDMismatch   int
	CensusChanged int
	Objective     int
	Disconnected  int
}

// Total returns the total number of rejected proposals.
func (b RejectionBreakdown) Total() int {
	return b.SelfLoop + b.DuplicateEdge + b.JDDMismatch + b.CensusChanged + b.Objective + b.Disconnected
}

func (b *RejectionBreakdown) count(r rejectReason) {
	switch r {
	case rejectSelfLoop:
		b.SelfLoop++
	case rejectDuplicateEdge:
		b.DuplicateEdge++
	case rejectJDDMismatch:
		b.JDDMismatch++
	case rejectCensusChanged:
		b.CensusChanged++
	case rejectObjective:
		b.Objective++
	case rejectDisconnected:
		b.Disconnected++
	}
}

// RewireStats reports what a rewiring run did. The invariant
// Attempts == Accepted + Rejected.Total() holds after every Step.
type RewireStats struct {
	Attempts int // candidate proposals examined
	Accepted int // moves applied (and kept)
	Reverted int // moves applied and rolled back by connectivity/objective
	// Rejected breaks the Attempts − Accepted gap down by reason, so a
	// collapsed acceptance rate is diagnosable (e.g. a dense graph
	// drowning in duplicate-edge rejections vs. a depth-3 run whose
	// census constraint bites).
	Rejected RejectionBreakdown
}

// DefaultBatchSize is the number of depth-3 candidate proposals drawn and
// evaluated per parallel batch (see Rewirer.BatchSize). Sized so one
// batch amortizes the pool dispatch: most candidates die in the cheap
// structural checks, and only the survivors pay for a census delta.
const DefaultBatchSize = 256

// splitMix is the candidate-draw generator of the batched proposer: a
// SplitMix64 stream, ~free to seed — candidates are drawn by the
// thousand per accepted move, and seeding a rand.Rand (607-word state)
// per candidate would cost more than the checks it feeds. Modulo
// reduction gives Intn a bias of n/2⁶⁴, irrelevant here: the contract
// is determinism of the (seed, BatchSize) → stream function, not
// perfect uniformity.
type splitMix struct{ s uint64 }

func (r *splitMix) Intn(n int) int {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(n))
}

// intner is the candidate-draw interface shared by the sequential path
// (*rand.Rand) and the batched path (*splitMix).
type intner interface{ Intn(n int) int }

// Rewirer performs dK-preserving rewiring on a mutable graph with an
// optional Objective scoring each candidate move and an acceptance Policy
// deciding from the objective delta. A nil objective with the default
// policy yields pure dK-randomizing rewiring.
type Rewirer struct {
	G     *graph.CSR
	Depth int // preserved depth d: 0, 1, 2 or 3
	Rng   *rand.Rand
	// Obj scores candidate moves; nil accepts unconditionally (subject to
	// the structural constraints of Depth).
	Obj Objective
	// Accept decides from the objective delta; nil accepts everything.
	Accept Policy
	// PreserveConnectivity rejects moves that disconnect the graph
	// (checked by BFS after each accepted move — expensive; the paper
	// itself does not check and extracts GCCs afterwards).
	PreserveConnectivity bool
	// BatchSize is the number of depth-3 candidates drawn and evaluated
	// per parallel batch (default DefaultBatchSize; 1 degenerates to a
	// serial loop with the same accepted-move stream). The stream is a
	// pure function of (seed, BatchSize) — it never depends on the
	// worker count.
	BatchSize int
	// RecordMoves appends every accepted move to the log returned by
	// AcceptedMoves — the differential test harness replays it.
	RecordMoves bool
	// OnProgress, when set, receives a convergence sample from Run every
	// ProgressEvery attempts (default: one sample per M attempts — a
	// "sweep" in the paper's 10·M-swaps convention), plus a final sample
	// when the run stops between sample boundaries. Purely observational:
	// the callback never touches the RNG stream or the accepted-move
	// sequence, so tracing a run cannot change its result.
	OnProgress func(RewireProgress)
	// ProgressEvery is the attempt interval between OnProgress samples
	// (<= 0 selects the per-sweep default).
	ProgressEvery int
	// Stats accumulates across all Steps of this Rewirer's lifetime.
	Stats RewireStats

	// objSum accumulates committed objective deltas — the objective's
	// change since the run began — for convergence samples.
	objSum float64

	deg     []int
	tracker *subgraphs.Tracker // depth-3 census machinery, else nil
	scratch []*subgraphs.TrackerDelta
	queue   []candidate
	qPos    int
	// Dirty-node filter: accepting a move changes only its four
	// endpoints' neighborhoods, so queued candidates sharing none of
	// those nodes remain exactly valid (structural checks and census
	// delta alike) and keep being consumed; candidates touching a dirty
	// node are skipped. dirtyList clears the array at the next refill.
	dirty     []bool
	dirtyList []int
	moves     []Move
}

// candidate is one speculatively drawn and structurally evaluated
// depth-3 proposal, produced by fillBatch and consumed in index order.
type candidate struct {
	m      Move
	reject rejectReason
}

// Policy maps an objective delta to an accept/reject decision.
type Policy func(rng *rand.Rand, delta float64) bool

// PolicyAlways accepts every structurally valid move (randomizing).
func PolicyAlways(*rand.Rand, float64) bool { return true }

// PolicyMinimize accepts strictly improving (negative-delta) moves.
func PolicyMinimize(_ *rand.Rand, d float64) bool { return d < 0 }

// PolicyMaximize accepts strictly increasing moves.
func PolicyMaximize(_ *rand.Rand, d float64) bool { return d > 0 }

// PolicyMetropolis returns the simulated-annealing acceptance rule of
// Section 4.1.4 at fixed temperature T: improving moves always pass,
// worsening moves pass with probability exp(−Δ/T). T = 0 degenerates to
// PolicyMinimize (the paper's zero-temperature targeting).
func PolicyMetropolis(T float64) Policy {
	return func(rng *rand.Rand, d float64) bool {
		if d < 0 {
			return true
		}
		if T <= 0 {
			return false
		}
		return rng.Float64() < math.Exp(-d/T)
	}
}

// NewRewirer validates and prepares a rewiring run over g.
func NewRewirer(g *graph.CSR, depth int, rng *rand.Rand) (*Rewirer, error) {
	if depth < 0 || depth > 3 {
		return nil, fmt.Errorf("generate: rewiring depth %d outside 0..3", depth)
	}
	if rng == nil {
		return nil, fmt.Errorf("generate: rewiring requires a random source")
	}
	if g.M() < 2 {
		return nil, fmt.Errorf("generate: graph has %d edges; need at least 2", g.M())
	}
	r := &Rewirer{G: g, Depth: depth, Rng: rng}
	r.deg = g.DegreeSequence()
	if depth == 3 {
		r.tracker = subgraphs.NewTracker(g, r.deg)
	}
	return r, nil
}

// AcceptedMoves returns the accepted-move log recorded when RecordMoves
// is set, in acceptance order.
func (r *Rewirer) AcceptedMoves() []Move { return r.moves }

// propose draws one candidate move for the configured depth from rng and
// checks its structural constraints up to depth 2 (the depth-3 census
// check is separate — it is the expensive one and runs batched).
func (r *Rewirer) propose(rng intner) (Move, rejectReason) {
	g := r.G
	if r.Depth == 0 {
		e := g.EdgeAt(rng.Intn(g.M()))
		x, y := rng.Intn(g.N()), rng.Intn(g.N())
		if x == y {
			return Move{}, rejectSelfLoop
		}
		if g.HasEdge(x, y) {
			return Move{}, rejectDuplicateEdge
		}
		return Move{U: e.U, V: e.V, X: x, Y: y, Depth: 0}, rejectNone
	}
	e1 := g.EdgeAt(rng.Intn(g.M()))
	e2 := g.EdgeAt(rng.Intn(g.M()))
	u, v := e1.U, e1.V
	x, y := e2.U, e2.V
	if rng.Intn(2) == 0 {
		u, v = v, u
	}
	if rng.Intn(2) == 0 {
		x, y = y, x
	}
	// Candidate swap: (u,v),(x,y) → (u,y),(x,v).
	if u == x || u == y || v == x || v == y {
		return Move{}, rejectSelfLoop
	}
	if r.tracker != nil {
		// Depth 3: probe the tracker mirror — O(1) bitset hits on hubs
		// instead of hashing into their adjacency maps; proposals are drawn
		// by the thousand per accepted move, so this is hot.
		if r.tracker.Has(u, y) || r.tracker.Has(x, v) {
			return Move{}, rejectDuplicateEdge
		}
	} else if g.HasEdge(u, y) || g.HasEdge(x, v) {
		return Move{}, rejectDuplicateEdge
	}
	if r.Depth >= 2 {
		// JDD preservation: the multiset {(du,dv),(dx,dy)} must equal
		// {(du,dy),(dx,dv)}, which holds iff dv = dy or du = dx.
		if r.deg[v] != r.deg[y] && r.deg[u] != r.deg[x] {
			return Move{}, rejectJDDMismatch
		}
	}
	return Move{U: u, V: v, X: x, Y: y, Depth: r.Depth}, rejectNone
}

// apply performs the move's edge operations, routing each through the
// objective.
func (r *Rewirer) apply(m Move) {
	g := r.G
	if r.Obj != nil {
		r.Obj.Begin()
	}
	remove := func(a, b int) {
		if r.Obj != nil {
			r.Obj.WillRemove(g, a, b)
		}
		g.RemoveEdge(a, b)
	}
	add := func(a, b int) {
		if r.Obj != nil {
			r.Obj.WillAdd(g, a, b)
		}
		mustAdd(g, a, b)
	}
	if m.Depth == 0 {
		remove(m.U, m.V)
		add(m.X, m.Y)
		return
	}
	remove(m.U, m.V)
	remove(m.X, m.Y)
	add(m.U, m.Y)
	add(m.X, m.V)
}

// revert undoes a move applied by apply (inverse operations in reverse
// order), bypassing objective callbacks; callers pair it with
// Obj.Rollback.
func (r *Rewirer) revert(m Move) {
	g := r.G
	if m.Depth == 0 {
		g.RemoveEdge(m.X, m.Y)
		mustAdd(g, m.U, m.V)
		return
	}
	g.RemoveEdge(m.X, m.V)
	g.RemoveEdge(m.U, m.Y)
	mustAdd(g, m.X, m.Y)
	mustAdd(g, m.U, m.V)
}

// Step proposes and evaluates one candidate move, updating r.Stats. It
// reports whether a move was accepted; attempts that fail structural
// constraints return (false, nil). At depth 3 proposals come from the
// batched parallel pipeline; other depths draw directly from r.Rng.
func (r *Rewirer) Step() (bool, error) {
	if r.Depth == 3 {
		return r.stepBatched()
	}
	r.Stats.Attempts++
	m, rej := r.propose(r.Rng)
	if rej != rejectNone {
		r.Stats.Rejected.count(rej)
		return false, nil
	}
	r.apply(m)
	return r.finish(m)
}

// stepBatched consumes one pre-evaluated depth-3 candidate, refilling the
// batch when it runs dry. Candidates whose endpoints overlap a move
// accepted since the batch was evaluated are skipped (their checks are
// stale); all others are exactly as valid as at evaluation time, because
// an accepted swap changes only its own four endpoints' neighborhoods.
// Rejected moves leave the graph unchanged and invalidate nothing.
func (r *Rewirer) stepBatched() (bool, error) {
	for {
		if r.qPos >= len(r.queue) {
			r.fillBatch()
		}
		c := r.queue[r.qPos]
		r.qPos++
		if len(r.dirtyList) > 0 && (r.dirty[c.m.U] || r.dirty[c.m.V] || r.dirty[c.m.X] || r.dirty[c.m.Y]) {
			continue
		}
		r.Stats.Attempts++
		if c.reject != rejectNone {
			r.Stats.Rejected.count(c.reject)
			return false, nil
		}
		r.apply(c.m)
		accepted, err := r.finish(c.m)
		if accepted {
			for _, node := range [4]int{c.m.U, c.m.V, c.m.X, c.m.Y} {
				if !r.dirty[node] {
					r.dirty[node] = true
					r.dirtyList = append(r.dirtyList, node)
				}
			}
		}
		return accepted, err
	}
}

// finish runs the post-apply acceptance pipeline — objective policy,
// connectivity veto, commit — on an already-applied move.
func (r *Rewirer) finish(m Move) (bool, error) {
	var delta float64
	if r.Obj != nil {
		delta = r.Obj.Delta()
		accept := r.Accept
		if accept == nil {
			accept = PolicyAlways
		}
		if !accept(r.Rng, delta) {
			r.revert(m)
			r.Obj.Rollback()
			r.Stats.Rejected.Objective++
			r.Stats.Reverted++
			return false, nil
		}
	}
	if r.PreserveConnectivity && !graph.IsConnected(r.G.Static()) {
		r.revert(m)
		if r.Obj != nil {
			r.Obj.Rollback()
		}
		r.Stats.Rejected.Disconnected++
		r.Stats.Reverted++
		return false, nil
	}
	if r.Obj != nil {
		r.Obj.Commit()
		r.objSum += delta
	}
	if r.tracker != nil {
		r.tracker.ApplySwap(m.U, m.V, m.X, m.Y)
	}
	// Depth-0 moves change degrees; keep the cache honest.
	if m.Depth == 0 {
		r.deg[m.U]--
		r.deg[m.V]--
		r.deg[m.X]++
		r.deg[m.Y]++
	}
	if r.RecordMoves {
		r.moves = append(r.moves, m)
	}
	r.Stats.Accepted++
	return true, nil
}

// fillBatch speculatively draws BatchSize depth-3 candidates and runs
// their structural and census checks in parallel, read-only against the
// current graph. Determinism: one batch seed is drawn from r.Rng, each
// candidate i derives its own SplitMix64 stream via
// parallel.SubSeed(batchSeed, i), and every check is a pure function of
// (graph, candidate) — so the evaluated batch, and therefore the
// accepted-move stream, is bit-identical at any worker count. Workers
// reuse per-worker TrackerDelta scratch (stable worker ids from
// parallel.ForWorkers), allocated lazily so nested parallelism that
// degrades to one inline worker pays for one scratch, not Workers() of
// them.
func (r *Rewirer) fillBatch() {
	k := r.BatchSize
	if k <= 0 {
		k = DefaultBatchSize
	}
	batchSeed := r.Rng.Int63()
	if cap(r.queue) < k {
		r.queue = make([]candidate, k)
	}
	r.queue = r.queue[:k]
	r.qPos = 0
	if r.dirty == nil {
		r.dirty = make([]bool, r.G.N())
	}
	for _, node := range r.dirtyList {
		r.dirty[node] = false
	}
	r.dirtyList = r.dirtyList[:0]
	w := parallel.Workers()
	if w > k {
		w = k
	}
	for len(r.scratch) < w {
		r.scratch = append(r.scratch, nil)
	}
	parallel.ForWorkers(w, k, func(worker, i int) {
		rng := &splitMix{s: uint64(parallel.SubSeed(batchSeed, i))}
		m, rej := r.propose(rng)
		if rej == rejectNone {
			td := r.scratch[worker]
			if td == nil {
				td = r.tracker.NewDelta()
				r.scratch[worker] = td
			}
			// propose already enforced the depth-2 JDD condition, so one of
			// the two 2K-preserving orientations applies; SwapDeltaJDD walks
			// only the symmetric difference of the equal-degree endpoints'
			// neighborhoods instead of all four ops' full merges.
			if r.deg[m.V] == r.deg[m.Y] {
				r.tracker.SwapDeltaJDD(td, m.U, m.V, m.X, m.Y)
			} else {
				r.tracker.SwapDeltaJDD(td, m.V, m.U, m.Y, m.X)
			}
			if !td.IsZero() {
				rej = rejectCensusChanged
			}
		}
		r.queue[i] = candidate{m: m, reject: rej}
	})
}

// RewireProgress is one periodic convergence sample of a rewiring run —
// the practical mixing evidence for an MCMC process with no a-priori
// mixing guarantee. Window fields cover the attempts since the previous
// sample; cumulative fields cover the whole run. Samples are purely
// observational and never feed back into the run.
type RewireProgress struct {
	Sweep          int     // 1-based sample index
	Attempts       int     // cumulative proposals examined
	Accepted       int     // cumulative moves accepted
	WindowAttempts int     // proposals examined since the previous sample
	WindowAccepted int     // moves accepted since the previous sample
	AcceptanceRate float64 // WindowAccepted / WindowAttempts
	// Rejected holds the window's rejection deltas by reason.
	Rejected RejectionBreakdown
	// Objective is the objective's cumulative committed change since the
	// run began; meaningful only when HasObjective (an Objective is set).
	Objective    float64
	HasObjective bool
}

// sub returns the per-reason difference a − b.
func (b RejectionBreakdown) sub(o RejectionBreakdown) RejectionBreakdown {
	return RejectionBreakdown{
		SelfLoop:      b.SelfLoop - o.SelfLoop,
		DuplicateEdge: b.DuplicateEdge - o.DuplicateEdge,
		JDDMismatch:   b.JDDMismatch - o.JDDMismatch,
		CensusChanged: b.CensusChanged - o.CensusChanged,
		Objective:     b.Objective - o.Objective,
		Disconnected:  b.Disconnected - o.Disconnected,
	}
}

// Run performs up to maxAttempts proposals, stopping early after accepted
// moves reach wantAccepted (0 means no acceptance target) or after
// patience consecutive rejections (0 means unlimited patience). The
// returned stats are the Rewirer's cumulative r.Stats (identical to the
// run's own when the Rewirer is fresh). With OnProgress set, Run emits a
// convergence sample every ProgressEvery attempts and a final one at
// whatever attempt count the run stopped on.
func (r *Rewirer) Run(wantAccepted, maxAttempts, patience int) (RewireStats, error) {
	every := r.ProgressEvery
	if every <= 0 {
		every = r.G.M() // one sample per sweep (M proposals)
	}
	last := r.Stats
	sweep := 0
	emit := func() {
		sweep++
		cur := r.Stats
		p := RewireProgress{
			Sweep:          sweep,
			Attempts:       cur.Attempts,
			Accepted:       cur.Accepted,
			WindowAttempts: cur.Attempts - last.Attempts,
			WindowAccepted: cur.Accepted - last.Accepted,
			Rejected:       cur.Rejected.sub(last.Rejected),
		}
		if p.WindowAttempts > 0 {
			p.AcceptanceRate = float64(p.WindowAccepted) / float64(p.WindowAttempts)
		}
		if r.Obj != nil {
			p.Objective, p.HasObjective = r.objSum, true
		}
		last = cur
		r.OnProgress(p)
	}
	sinceAccept := 0
	accepted := 0
	for attempts := 0; attempts < maxAttempts; attempts++ {
		ok, err := r.Step()
		if err != nil {
			return r.Stats, err
		}
		if r.OnProgress != nil && r.Stats.Attempts-last.Attempts >= every {
			emit()
		}
		if ok {
			accepted++
			sinceAccept = 0
			if wantAccepted > 0 && accepted >= wantAccepted {
				break
			}
		} else {
			sinceAccept++
			if patience > 0 && sinceAccept >= patience {
				break
			}
		}
	}
	if r.OnProgress != nil && r.Stats.Attempts > last.Attempts {
		emit()
	}
	return r.Stats, nil
}

// RandomizeOptions configures dK-randomizing rewiring.
type RandomizeOptions struct {
	Rng *rand.Rand
	// SwapFactor scales the accepted-swap target: SwapFactor·M successful
	// swaps (default 10, following the paper's 10× convention and the
	// O(m) mixing result it cites).
	SwapFactor int
	// AttemptFactor scales the proposal budget: AttemptFactor·M proposals
	// (default 40·SwapFactor for depth 3 — whose acceptance rate is tiny
	// by design — and 10·SwapFactor otherwise).
	AttemptFactor int
	// PatienceFactor stops the run after PatienceFactor·M consecutive
	// rejected proposals (default 10; negative disables). Depth-3 runs on
	// heavily constrained graphs converge by exhausting their tiny set of
	// census-preserving swaps, which this bounds cleanly.
	PatienceFactor int
	// BatchSize overrides the depth-3 candidate batch size (default
	// DefaultBatchSize). Part of the RNG-stream contract: changing it
	// changes which moves are accepted, worker count never does.
	BatchSize int
	// PreserveConnectivity rejects disconnecting moves (expensive).
	PreserveConnectivity bool
	// OnProgress and ProgressEvery mirror the Rewirer fields: periodic
	// convergence samples, observational only (see RewireProgress).
	OnProgress    func(RewireProgress)
	ProgressEvery int
}

// Randomize applies dK-preserving randomizing rewiring (Section 4.1.4) to
// a copy of g, returning the rewired graph. The input graph is unchanged.
func Randomize(g *graph.CSR, depth int, opt RandomizeOptions) (*graph.CSR, RewireStats, error) {
	if opt.Rng == nil {
		return nil, RewireStats{}, fmt.Errorf("generate: Randomize requires Rng")
	}
	out := g.Clone()
	r, err := NewRewirer(out, depth, opt.Rng)
	if err != nil {
		return nil, RewireStats{}, err
	}
	r.PreserveConnectivity = opt.PreserveConnectivity
	r.BatchSize = opt.BatchSize
	r.OnProgress = opt.OnProgress
	r.ProgressEvery = opt.ProgressEvery
	swapFactor := opt.SwapFactor
	if swapFactor <= 0 {
		swapFactor = 10
	}
	attemptFactor := opt.AttemptFactor
	if attemptFactor <= 0 {
		attemptFactor = 10 * swapFactor
		if depth == 3 {
			attemptFactor = 40 * swapFactor
		}
	}
	patienceFactor := opt.PatienceFactor
	if patienceFactor == 0 {
		patienceFactor = 10
	}
	patience := 0
	if patienceFactor > 0 {
		patience = patienceFactor * g.M()
	}
	want := swapFactor * g.M()
	budget := attemptFactor * g.M()
	st, err := r.Run(want, budget, patience)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
