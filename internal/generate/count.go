package generate

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/subgraphs"
)

// RewiringCount is one row of the paper's Table 5: the number of possible
// initial dK-preserving rewirings of a graph, exactly enumerated, with and
// without "obvious isomorphisms" — rewirings that exchange two degree-1
// endpoints, which map the graph to an isomorphic one (the paper's
// (1,k)/(1,k′) edge-pair example).
type RewiringCount struct {
	Depth             int
	Possible          int64
	IgnoringIsomorphs int64
}

// CountInitialRewirings enumerates the possible initial dK-preserving
// rewirings of g at the given depth.
//
//	depth 0: (edge, unoccupied node pair) combinations — each edge can move
//	         to any pair of distinct non-adjacent nodes.
//	depth 1: ordered-orientation double-edge swaps (u,v),(x,y) → (u,y),(x,v)
//	         with distinct endpoints and no duplicate edges, counted over
//	         unordered edge pairs and the two orientations.
//	depth 2: depth-1 swaps that also preserve the JDD (dv = dy or du = dx).
//	depth 3: depth-2 swaps whose wedge/triangle census delta is zero,
//	         verified by applying and reverting each candidate.
//
// Isomorphism discounting subtracts swaps whose exchanged endpoints are
// both degree-1 (the paper reports no discount for depth 0).
//
// The enumeration is O(m²) candidate swaps with an O(d_u+d_v+d_x+d_y)
// census check at depth 3 — exact, intended for graphs of the HOT scale
// on which the paper reports Table 5.
func CountInitialRewirings(g *graph.CSR, depth int) (RewiringCount, error) {
	if depth < 0 || depth > 3 {
		return RewiringCount{}, fmt.Errorf("generate: depth %d outside 0..3", depth)
	}
	rc := RewiringCount{Depth: depth}
	n := int64(g.N())
	m := int64(g.M())
	if depth == 0 {
		// Pairs of distinct nodes not already adjacent, per edge; moving
		// an edge onto its own pair is the identity, and its pair is
		// occupied, so it is excluded automatically.
		free := n*(n-1)/2 - m
		rc.Possible = m * free
		rc.IgnoringIsomorphs = rc.Possible // paper reports no discount
		return rc, nil
	}

	deg := g.DegreeSequence()
	// The tracker backs the depth-3 census filter only — its SwapDelta is
	// read-only, so the enumeration never mutates (or clones) the graph;
	// depths 1–2 decide every candidate from degrees and adjacency alone,
	// so building it there would just add an O(n + m) allocation.
	var tracker *subgraphs.Tracker
	var td *subgraphs.TrackerDelta
	if depth == 3 {
		tracker = subgraphs.NewTracker(g, deg)
		td = tracker.NewDelta()
	}

	edges := g.Edges()
	check := func(u, v, x, y int) (valid, isIso bool) {
		// Swap (u,v),(x,y) → (u,y),(x,v).
		if u == x || u == y || v == x || v == y {
			return false, false
		}
		if g.HasEdge(u, y) || g.HasEdge(x, v) {
			return false, false
		}
		if depth >= 2 {
			if deg[v] != deg[y] && deg[u] != deg[x] {
				return false, false
			}
		}
		if depth == 3 {
			// The depth-2 filter above guarantees a 2K-preserving
			// orientation, so the specialized symmetric-difference walk
			// applies (flipped arguments for the du = dx case).
			if deg[v] == deg[y] {
				tracker.SwapDeltaJDD(td, u, v, x, y)
			} else {
				tracker.SwapDeltaJDD(td, v, u, y, x)
			}
			if !td.IsZero() {
				return false, false
			}
		}
		// Obvious isomorphism: the exchanged endpoints v and y are both
		// leaves (the paper's (1,k)-(1,k') case), or symmetrically the
		// fixed endpoints u and x are both leaves and dv = dy... the swap
		// relabels two degree-1 nodes.
		iso := (deg[v] == 1 && deg[y] == 1) || (deg[u] == 1 && deg[x] == 1)
		return true, iso
	}

	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			e1, e2 := edges[i], edges[j]
			// Two orientations: swap the second endpoints, or swap one
			// reversed. (u,v),(x,y)→(u,y),(x,v) and (u,v),(y,x)→(u,x),(y,v).
			for _, o := range [2][4]int{
				{e1.U, e1.V, e2.U, e2.V},
				{e1.U, e1.V, e2.V, e2.U},
			} {
				valid, iso := check(o[0], o[1], o[2], o[3])
				if valid {
					rc.Possible++
					if !iso {
						rc.IgnoringIsomorphs++
					}
				}
			}
		}
	}
	return rc, nil
}
