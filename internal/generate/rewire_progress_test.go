package generate

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// progressGraph builds a modest random-ish graph with enough edges for
// the rewiring loop to accept plenty of moves.
func progressGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g := graph.NewCSR(40)
	rng := rand.New(rand.NewSource(7))
	for g.M() < 120 {
		u, v := rng.Intn(40), rng.Intn(40)
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g.CanonicalClone()
}

func TestRewireProgressSamples(t *testing.T) {
	g := progressGraph(t)
	var samples []RewireProgress
	out, st, err := Randomize(g, 2, RandomizeOptions{
		Rng:        rand.New(rand.NewSource(1)),
		OnProgress: func(p RewireProgress) { samples = append(samples, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || len(samples) == 0 {
		t.Fatalf("no progress samples (stats %+v)", st)
	}
	prev := RewireProgress{}
	winAttempts, winAccepted := 0, 0
	for i, p := range samples {
		if p.Sweep != i+1 {
			t.Fatalf("sample %d: sweep %d", i, p.Sweep)
		}
		if p.Attempts <= prev.Attempts && i > 0 {
			t.Fatalf("sample %d: attempts not increasing (%d -> %d)", i, prev.Attempts, p.Attempts)
		}
		if p.WindowAttempts != p.Attempts-prev.Attempts {
			t.Fatalf("sample %d: window attempts %d, want %d", i, p.WindowAttempts, p.Attempts-prev.Attempts)
		}
		if p.WindowAccepted != p.Accepted-prev.Accepted {
			t.Fatalf("sample %d: window accepted %d, want %d", i, p.WindowAccepted, p.Accepted-prev.Accepted)
		}
		// The window invariant mirrors the cumulative one: attempts are
		// either accepted or rejected for a counted reason.
		if p.WindowAccepted+p.Rejected.Total() != p.WindowAttempts {
			t.Fatalf("sample %d: accepted %d + rejected %d != attempts %d",
				i, p.WindowAccepted, p.Rejected.Total(), p.WindowAttempts)
		}
		if p.AcceptanceRate < 0 || p.AcceptanceRate > 1 {
			t.Fatalf("sample %d: acceptance rate %f", i, p.AcceptanceRate)
		}
		if p.HasObjective {
			t.Fatalf("sample %d: randomize run reports an objective", i)
		}
		winAttempts += p.WindowAttempts
		winAccepted += p.WindowAccepted
		prev = p
	}
	// The final sample covers the whole run: windows tile the attempts.
	lastP := samples[len(samples)-1]
	if lastP.Attempts != st.Attempts || lastP.Accepted != st.Accepted {
		t.Fatalf("final sample (%d att, %d acc) != stats (%d att, %d acc)",
			lastP.Attempts, lastP.Accepted, st.Attempts, st.Accepted)
	}
	if winAttempts != st.Attempts || winAccepted != st.Accepted {
		t.Fatalf("windows sum to (%d, %d), stats (%d, %d)", winAttempts, winAccepted, st.Attempts, st.Accepted)
	}
}

// TestRewireProgressObservational pins the core telemetry contract:
// sampling (at any interval) must not change the rewired graph or the
// run statistics — the callback never touches the RNG stream.
func TestRewireProgressObservational(t *testing.T) {
	g := progressGraph(t)
	base, baseStats, err := Randomize(g, 2, RandomizeOptions{Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	for _, every := range []int{0, 1, 17} {
		n := 0
		got, gotStats, err := Randomize(g, 2, RandomizeOptions{
			Rng:           rand.New(rand.NewSource(3)),
			OnProgress:    func(RewireProgress) { n++ },
			ProgressEvery: every,
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("every=%d: no samples", every)
		}
		if gotStats != baseStats {
			t.Fatalf("every=%d: stats changed: %+v vs %+v", every, gotStats, baseStats)
		}
		if graph.ContentHash(got, nil) != graph.ContentHash(base, nil) {
			t.Fatalf("every=%d: sampling changed the rewired graph", every)
		}
	}
}

// TestRewireProgressObjective checks objective-driven runs report the
// cumulative committed delta.
func TestRewireProgressObjective(t *testing.T) {
	g := progressGraph(t)
	rng := rand.New(rand.NewSource(9))
	r, err := NewRewirer(g.Clone(), 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	obj := &LikelihoodObjective{}
	if err := obj.Init(r.G); err != nil {
		t.Fatal(err)
	}
	r.Obj = obj
	r.Accept = PolicyMaximize
	var samples []RewireProgress
	r.OnProgress = func(p RewireProgress) { samples = append(samples, p) }
	r.ProgressEvery = 50
	if _, err := r.Run(0, 2000, 0); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	lastP := samples[len(samples)-1]
	if !lastP.HasObjective {
		t.Fatal("objective run lacks objective value")
	}
	// PolicyMaximize only commits positive deltas, so the cumulative
	// objective change must be positive and non-decreasing.
	prevObj := 0.0
	for i, p := range samples {
		if p.Objective < prevObj {
			t.Fatalf("sample %d: objective decreased %f -> %f under PolicyMaximize", i, prevObj, p.Objective)
		}
		prevObj = p.Objective
	}
	if lastP.Objective <= 0 {
		t.Fatalf("cumulative objective delta %f, want > 0", lastP.Objective)
	}
}
