package generate

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Replicas runs build n times concurrently on the worker pool — the
// fan-out behind the paper's "average over 100 graphs" ensembles, where
// every replica of a generation or rewiring run is independent. Replica i
// receives its own deterministic rand.Rand seeded with
// parallel.SubSeed(baseSeed, i), and results land in index i of the
// returned slice, so the ensemble is a pure function of (baseSeed, n)
// regardless of worker count. Each builder runs single-threaded (a
// Rewirer is not concurrency-safe); the parallelism is across replicas.
//
// On failure the error of the lowest-indexed failing replica is returned.
func Replicas(n int, baseSeed int64, build func(i int, rng *rand.Rand) (*graph.CSR, error)) ([]*graph.CSR, error) {
	out := make([]*graph.CSR, n)
	err := parallel.ForErr(n, func(i int) error {
		g, err := build(i, rand.New(rand.NewSource(parallel.SubSeed(baseSeed, i))))
		if err != nil {
			return err
		}
		out[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RandomizeReplicas produces n independent dK-randomized counterparts of
// g at the given depth, one single-threaded rewiring run per replica,
// fanned out over the worker pool. opt.Rng is ignored; every replica gets
// its own stream derived from baseSeed. Stats are returned per replica in
// the same order as the graphs.
func RandomizeReplicas(g *graph.CSR, depth, n int, baseSeed int64, opt RandomizeOptions) ([]*graph.CSR, []RewireStats, error) {
	stats := make([]RewireStats, n)
	graphs, err := Replicas(n, baseSeed, func(i int, rng *rand.Rand) (*graph.CSR, error) {
		o := opt
		o.Rng = rng
		out, st, err := Randomize(g, depth, o)
		if err != nil {
			return nil, err
		}
		stats[i] = st
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return graphs, stats, nil
}
