package generate

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// mustComplete builds the complete graph on n nodes.
func complete(t *testing.T, n int) *graph.CSR {
	t.Helper()
	g := graph.NewCSR(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func checkInvariant(t *testing.T, name string, st RewireStats) {
	t.Helper()
	if got, want := st.Attempts, st.Accepted+st.Rejected.Total(); got != want {
		t.Fatalf("%s: attempts %d != accepted %d + rejected %d", name, got, st.Accepted, st.Rejected.Total())
	}
}

// TestRewireStatsBreakdown drives the Rewirer through graphs engineered
// to trip each rejection reason and asserts the breakdown attributes
// them correctly — the diagnosability contract behind dkgen -v.
func TestRewireStatsBreakdown(t *testing.T) {
	t.Run("complete-graph-structural", func(t *testing.T) {
		// K5: every double-edge swap either shares an endpoint or wants an
		// edge that already exists; nothing else can happen.
		r, err := NewRewirer(complete(t, 5), 1, newRng(3))
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run(0, 400, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, "K5", st)
		if st.Accepted != 0 {
			t.Fatalf("K5 accepted %d swaps; want 0", st.Accepted)
		}
		if st.Rejected.SelfLoop == 0 || st.Rejected.DuplicateEdge == 0 {
			t.Fatalf("K5 breakdown missing structural reasons: %+v", st.Rejected)
		}
		if st.Rejected.SelfLoop+st.Rejected.DuplicateEdge != st.Attempts {
			t.Fatalf("K5: reasons beyond self-loop/duplicate: %+v", st.Rejected)
		}
	})

	t.Run("star-self-loops", func(t *testing.T) {
		// K1,6: every edge contains the hub, so every edge pair shares it.
		g := graph.NewCSR(7)
		for leaf := 1; leaf < 7; leaf++ {
			if err := g.AddEdge(0, leaf); err != nil {
				t.Fatal(err)
			}
		}
		r, err := NewRewirer(g, 1, newRng(5))
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run(0, 200, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, "star", st)
		if st.Rejected.SelfLoop != st.Attempts {
			t.Fatalf("star: want all %d attempts rejected as self-loops, got %+v", st.Attempts, st.Rejected)
		}
	})

	t.Run("jdd-mismatch", func(t *testing.T) {
		// Heterogeneous degrees make most depth-2 proposals fail the
		// dv = dy or du = dx condition.
		g := connectedRandom(newRng(8), 30, 25)
		r, err := NewRewirer(g, 2, newRng(9))
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run(0, 2000, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, "jdd", st)
		if st.Rejected.JDDMismatch == 0 {
			t.Fatalf("depth-2 run on heterogeneous graph saw no JDD rejections: %+v", st.Rejected)
		}
	})

	t.Run("census-changed", func(t *testing.T) {
		g := connectedRandom(newRng(12), 30, 25)
		r, err := NewRewirer(g, 3, newRng(13))
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run(0, 3000, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, "census", st)
		if st.Rejected.CensusChanged == 0 {
			t.Fatalf("depth-3 run saw no census rejections: %+v", st.Rejected)
		}
	})

	t.Run("objective-rejected", func(t *testing.T) {
		g := connectedRandom(newRng(20), 24, 30)
		r, err := NewRewirer(g, 1, newRng(21))
		if err != nil {
			t.Fatal(err)
		}
		obj := &LikelihoodObjective{}
		if err := obj.Init(g); err != nil {
			t.Fatal(err)
		}
		r.Obj = obj
		r.Accept = func(_ *rand.Rand, _ float64) bool { return false }
		st, err := r.Run(0, 500, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, "objective", st)
		if st.Rejected.Objective == 0 {
			t.Fatal("always-reject policy produced no objective rejections")
		}
		if st.Reverted != st.Rejected.Objective {
			t.Fatalf("reverted %d != objective-rejected %d", st.Reverted, st.Rejected.Objective)
		}
		if st.Accepted != 0 {
			t.Fatalf("always-reject policy accepted %d moves", st.Accepted)
		}
	})

	t.Run("disconnected", func(t *testing.T) {
		// C12: some swaps split the cycle into two smaller cycles; with
		// connectivity preservation those must be counted and reverted.
		g := graph.NewCSR(12)
		for i := 0; i < 12; i++ {
			if err := g.AddEdge(i, (i+1)%12); err != nil {
				t.Fatal(err)
			}
		}
		r, err := NewRewirer(g, 1, newRng(30))
		if err != nil {
			t.Fatal(err)
		}
		r.PreserveConnectivity = true
		st, err := r.Run(0, 600, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, "cycle", st)
		if st.Rejected.Disconnected == 0 {
			t.Fatalf("cycle run saw no connectivity rejections: %+v", st.Rejected)
		}
		if !graph.IsConnected(g.Static()) {
			t.Fatal("PreserveConnectivity left a disconnected graph")
		}
	})
}
