package generate

import (
	"strconv"
	"testing"
)

// BenchmarkCountInitialRewirings tracks the Table 5 enumeration cost per
// depth. The depth-1 and depth-2 variants prove the clone gating win:
// they must run with O(1) allocations per op (the edge-list copy and the
// degree sequence), since the O(n + m) working clone and census delta
// are needed — and now built — only for the depth-3 census filter.
func BenchmarkCountInitialRewirings(b *testing.B) {
	rng := newRng(50)
	g := connectedRandom(rng, 300, 900)
	for depth := 1; depth <= 3; depth++ {
		b.Run("depth="+strconv.Itoa(depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CountInitialRewirings(g, depth); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
