package generate

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/parallel"
)

// moveLogBytes runs a depth-3 rewiring with move recording and returns
// the accepted-move log serialized to bytes — the §3 determinism
// artifact: it must not depend on the worker count.
func moveLogBytes(t *testing.T, seed int64) []byte {
	t.Helper()
	g := connectedRandom(newRng(5), 48, 60)
	r, err := NewRewirer(g, 3, newRng(seed))
	if err != nil {
		t.Fatal(err)
	}
	r.RecordMoves = true
	if _, err := r.Run(120, 40000, 0); err != nil {
		t.Fatal(err)
	}
	if r.Stats.Accepted == 0 {
		t.Fatal("no moves accepted; determinism check is vacuous")
	}
	var buf bytes.Buffer
	for _, m := range r.AcceptedMoves() {
		for _, v := range [5]int{m.U, m.V, m.X, m.Y, m.Depth} {
			if err := binary.Write(&buf, binary.LittleEndian, int64(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

// TestRewireMoveStreamDeterministic mirrors internal/load's
// TestGenerateDeterministic: the batched parallel proposal loop must
// produce a byte-identical accepted-move log at every worker count, and
// a different log for a different seed.
func TestRewireMoveStreamDeterministic(t *testing.T) {
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	serial := moveLogBytes(t, 42)
	repeat := moveLogBytes(t, 42)
	if !bytes.Equal(serial, repeat) {
		t.Fatal("two serial runs differ")
	}
	for _, workers := range []int{2, 4, 8} {
		parallel.SetWorkers(workers)
		if got := moveLogBytes(t, 42); !bytes.Equal(serial, got) {
			t.Fatalf("accepted-move log differs at %d workers", workers)
		}
	}
	parallel.SetWorkers(0)
	if other := moveLogBytes(t, 43); bytes.Equal(serial, other) {
		t.Fatal("seeds 42 and 43 produced identical move logs")
	}
}

// TestRewireStatsDeterministic pins the full stats — including the
// rejection breakdown — across worker counts: the batch pipeline
// evaluates the same candidates in the same order regardless of
// parallelism, so even rejection reasons must agree.
func TestRewireStatsDeterministic(t *testing.T) {
	defer parallel.SetWorkers(0)
	run := func() RewireStats {
		g := connectedRandom(newRng(9), 40, 50)
		r, err := NewRewirer(g, 3, newRng(77))
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Run(80, 20000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	parallel.SetWorkers(1)
	want := run()
	for _, workers := range []int{2, 8} {
		parallel.SetWorkers(workers)
		if got := run(); got != want {
			t.Fatalf("stats differ at %d workers:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}
