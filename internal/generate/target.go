package generate

import (
	"fmt"
	"math/rand"

	"repro/internal/dk"
	"repro/internal/graph"
)

// TargetOptions configures dK-targeting d′K-preserving rewiring
// (Metropolis dynamics, Section 4.1.4).
type TargetOptions struct {
	Rng *rand.Rand
	// Temperature T of the Metropolis acceptance rule. 0 (the default)
	// is the paper's zero-temperature targeting: only improving moves
	// are accepted.
	Temperature float64
	// Anneal, when positive, multiplies the temperature by this factor
	// every M proposals (a simple geometric cooling schedule); used for
	// the ergodicity experiments of the paper's §4.1.4.
	Anneal float64
	// MaxAttempts bounds the number of proposals (default 200·M).
	MaxAttempts int
	// StopAtZero stops as soon as the distance reaches zero.
	StopAtZero bool
	// Patience aborts after this many consecutive proposals without an
	// accepted move (default 20·M); zero-temperature greedy search stalls
	// once no single swap improves the distance.
	Patience int
}

// TargetResult reports a targeting run.
type TargetResult struct {
	Stats         RewireStats
	InitialD      float64
	FinalD        float64
	FinalGraph    *graph.CSR
	TemperatureAt float64 // temperature when the run stopped
}

// TargetRewire rewires a copy of g toward the target profile's
// dK-distribution at depth d, using d′K-preserving moves with d′ = d−1
// (the paper's combinations: 1K-targeting 0K-preserving, 2K-targeting
// 1K-preserving, 3K-targeting 2K-preserving). The distance driven to zero
// is the corresponding D_d.
func TargetRewire(g *graph.CSR, target *dk.Profile, d int, opt TargetOptions) (*TargetResult, error) {
	if opt.Rng == nil {
		return nil, fmt.Errorf("generate: TargetRewire requires Rng")
	}
	if d < 1 || d > 3 {
		return nil, fmt.Errorf("generate: targeting depth %d outside 1..3", d)
	}
	if target.D < d {
		return nil, fmt.Errorf("generate: target profile has depth %d; need >= %d", target.D, d)
	}
	var obj Objective
	var currentD func() float64
	switch d {
	case 1:
		o := NewDegreeDistObjective(target.Degrees)
		obj, currentD = o, o.Current
	case 2:
		o := NewJDDObjective(target.Joint)
		obj, currentD = o, o.Current
	case 3:
		o := NewCensusObjective(target.Census)
		obj, currentD = o, o.Current
	}
	out := g.Clone()
	r, err := NewRewirer(out, d-1, opt.Rng)
	if err != nil {
		return nil, err
	}
	if err := obj.Init(out); err != nil {
		return nil, err
	}
	r.Obj = obj

	temp := opt.Temperature
	r.Accept = PolicyMetropolis(temp)
	maxAttempts := opt.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 200 * g.M()
	}
	patience := opt.Patience
	if patience == 0 {
		patience = 20 * g.M()
	}
	res := &TargetResult{InitialD: currentD(), FinalGraph: out}

	sinceAccept := 0
	annealEvery := g.M()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if opt.Anneal > 0 && attempt > 0 && attempt%annealEvery == 0 {
			temp *= opt.Anneal
			r.Accept = PolicyMetropolis(temp)
		}
		ok, err := r.Step()
		if err != nil {
			return nil, err
		}
		if ok {
			sinceAccept = 0
			if opt.StopAtZero && currentD() == 0 {
				break
			}
		} else {
			sinceAccept++
			if sinceAccept >= patience {
				break
			}
		}
	}
	res.Stats = r.Stats
	res.FinalD = currentD()
	res.TemperatureAt = temp
	return res, nil
}

// ExploreMetric selects the scalar functional driven by Explore.
type ExploreMetric int

// The exploration metrics of Section 4.3.
const (
	// MetricLikelihood is S = Σ_E d_u·d_v; defined by P2, explored under
	// 1K-preserving rewiring.
	MetricLikelihood ExploreMetric = iota
	// MetricS2 is the second-order likelihood; defined by P3, explored
	// under 2K-preserving rewiring.
	MetricS2
	// MetricClustering is mean clustering C̄; defined by P3, explored
	// under 2K-preserving rewiring.
	MetricClustering
)

// preserveDepth returns the rewiring depth that keeps the metric's
// defining dK-distribution fixed.
func (m ExploreMetric) preserveDepth() int {
	if m == MetricLikelihood {
		return 1
	}
	return 2
}

// ExploreOptions configures dK-space exploration.
type ExploreOptions struct {
	Rng *rand.Rand
	// Maximize selects the extremization direction.
	Maximize bool
	// MaxAttempts bounds proposals (default 200·M).
	MaxAttempts int
	// Patience stops after this many consecutive rejections
	// (default 20·M).
	Patience int
}

// ExploreResult reports an exploration run.
type ExploreResult struct {
	Stats      RewireStats
	FinalGraph *graph.CSR
}

// Explore performs the paper's dK-space exploration on a copy of g:
// dK-preserving rewiring accepting only moves that push the chosen scalar
// metric in the requested direction, producing extreme (non-random)
// dK-graphs.
func Explore(g *graph.CSR, metric ExploreMetric, opt ExploreOptions) (*ExploreResult, error) {
	if opt.Rng == nil {
		return nil, fmt.Errorf("generate: Explore requires Rng")
	}
	var obj Objective
	switch metric {
	case MetricLikelihood:
		obj = &LikelihoodObjective{}
	case MetricS2:
		obj = &S2Objective{}
	case MetricClustering:
		obj = &ClusteringObjective{}
	default:
		return nil, fmt.Errorf("generate: unknown exploration metric %d", metric)
	}
	out := g.Clone()
	r, err := NewRewirer(out, metric.preserveDepth(), opt.Rng)
	if err != nil {
		return nil, err
	}
	if err := obj.Init(out); err != nil {
		return nil, err
	}
	r.Obj = obj
	if opt.Maximize {
		r.Accept = PolicyMaximize
	} else {
		r.Accept = PolicyMinimize
	}
	maxAttempts := opt.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 200 * g.M()
	}
	patience := opt.Patience
	if patience == 0 {
		patience = 20 * g.M()
	}
	res := &ExploreResult{FinalGraph: out}
	sinceAccept := 0
	for attempt := 0; attempt < maxAttempts; attempt++ {
		ok, err := r.Step()
		if err != nil {
			return nil, err
		}
		if ok {
			sinceAccept = 0
		} else {
			sinceAccept++
			if sinceAccept >= patience {
				break
			}
		}
	}
	res.Stats = r.Stats
	return res, nil
}
