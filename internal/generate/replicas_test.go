package generate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// replicaTestGraph builds a small connected graph (ring plus chords).
func replicaTestGraph(t *testing.T) *graph.CSR {
	t.Helper()
	const n = 60
	g := graph.NewCSR(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for added := 0; added < 40; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		added++
	}
	return g
}

// TestRandomizeReplicasDeterministicAcrossWorkers: the replica ensemble
// is a pure function of (baseSeed, n); the worker count must not change
// any replica, and distinct replicas must be distinct graphs.
func TestRandomizeReplicasDeterministicAcrossWorkers(t *testing.T) {
	g := replicaTestGraph(t)
	const reps = 6
	run := func(workers int) []*graph.CSR {
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(0)
		out, stats, err := RandomizeReplicas(g, 1, reps, 123, RandomizeOptions{SwapFactor: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != reps || len(stats) != reps {
			t.Fatalf("got %d graphs / %d stats, want %d", len(out), len(stats), reps)
		}
		for i, st := range stats {
			if st.Accepted == 0 {
				t.Fatalf("replica %d accepted no swaps", i)
			}
		}
		return out
	}
	serial, par := run(1), run(8)
	for i := range serial {
		if !serial[i].Equal(par[i]) {
			t.Fatalf("replica %d differs between workers=1 and workers=8", i)
		}
	}
	// Replicas must be independent draws, not copies of each other.
	distinct := false
	for i := 1; i < reps; i++ {
		if !serial[0].Equal(serial[i]) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("all replicas identical — seed splitting is broken")
	}
	// Degree sequences are preserved by 1K-randomizing rewiring.
	want := g.DegreeSequence()
	for i, r := range serial {
		got := r.DegreeSequence()
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("replica %d degree sequence diverged at %d", i, k)
			}
		}
	}
}

// TestReplicasErrorIsLowestIndex: failure reporting is deterministic.
func TestReplicasErrorIsLowestIndex(t *testing.T) {
	_, err := Replicas(10, 1, func(i int, rng *rand.Rand) (*graph.CSR, error) {
		if i >= 4 {
			return nil, errAt(i)
		}
		return graph.NewCSR(1), nil
	})
	if err == nil || err.Error() != "replica 4 failed" {
		t.Fatalf("got %v, want replica 4 failed", err)
	}
}

type errAt int

func (e errAt) Error() string { return fmt.Sprintf("replica %d failed", int(e)) }
