package generate

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/subgraphs"
)

// Graph families for the differential suite, chosen to stress distinct
// rewiring regimes: plain sparse connected graphs, degree-1-heavy trees
// (the paper's isomorphism-prone (1,k) swaps), a dense core with sparse
// periphery (swaps whose four edges overlap heavily), and a near-complete
// small graph (duplicate-edge rejections dominate).
var diffFamilies = []struct {
	name  string
	build func(rng *rand.Rand) *graph.CSR
}{
	{"sparse", func(rng *rand.Rand) *graph.CSR { return connectedRandom(rng, 40, 30) }},
	{"leafy-tree", func(rng *rand.Rand) *graph.CSR { return connectedRandom(rng, 50, 3) }},
	{"dense-core", func(rng *rand.Rand) *graph.CSR {
		// K10 core plus a 20-node sparse periphery hanging off it.
		g := graph.NewCSR(30)
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				if err := g.AddEdge(i, j); err != nil {
					panic(err)
				}
			}
		}
		for i := 10; i < 30; i++ {
			if err := g.AddEdge(i, rng.Intn(i)); err != nil {
				panic(err)
			}
		}
		return g
	}},
	{"near-complete", func(rng *rand.Rand) *graph.CSR {
		g := connectedRandom(rng, 12, 40)
		return g
	}},
}

// TestRewireDifferentialCensus is the pinning harness of the dense
// census-delta machinery: it runs the Rewirer with move recording, then
// replays the accepted-move log on a pristine clone maintaining the
// census two independent ways — the dense Tracker (SwapDelta + Drain)
// and the map-keyed Delta — and recounts from scratch with
// subgraphs.Count every few moves, asserting exact equality throughout.
// Depth 3 additionally asserts the census never changes at all, and the
// replayed graph must equal the Rewirer's final graph edge for edge.
func TestRewireDifferentialCensus(t *testing.T) {
	defer parallel.SetWorkers(0)
	const (
		wantMoves   = 200
		maxAttempts = 60000
		recountEach = 20
	)
	acceptedByDepth := map[int]int{}
	for _, fam := range diffFamilies {
		for _, depth := range []int{1, 2, 3} {
			for _, seed := range []int64{11, 42} {
				for _, workers := range []int{1, 4} {
					parallel.SetWorkers(workers)
					orig := fam.build(newRng(seed))
					work := orig.Clone()
					r, err := NewRewirer(work, depth, newRng(seed*31))
					if err != nil {
						t.Fatalf("%s/d%d: %v", fam.name, depth, err)
					}
					r.RecordMoves = true
					for att := 0; att < maxAttempts && r.Stats.Accepted < wantMoves; att++ {
						if _, err := r.Step(); err != nil {
							t.Fatalf("%s/d%d: Step: %v", fam.name, depth, err)
						}
					}
					if got, want := r.Stats.Attempts, r.Stats.Accepted+r.Stats.Rejected.Total(); got != want {
						t.Fatalf("%s/d%d: attempts invariant broken: %d != %d", fam.name, depth, got, want)
					}
					acceptedByDepth[depth] += r.Stats.Accepted

					// Replay on a pristine clone with both census engines.
					replay := orig.Clone()
					deg := replay.DegreeSequence()
					tracker := subgraphs.NewTracker(replay, deg)
					td := tracker.NewDelta()
					trackerCensus := subgraphs.Count(replay.Static())
					mapCensus := trackerCensus.Clone()
					baseline := trackerCensus.Clone()
					mapDelta := subgraphs.NewDelta()
					for i, m := range r.AcceptedMoves() {
						// Dense path: read-only delta, then commit.
						tracker.SwapDelta(td, m.U, m.V, m.X, m.Y)
						td.Drain(trackerCensus)
						tracker.ApplySwap(m.U, m.V, m.X, m.Y)
						// Map path interleaves deltas with the mutations.
						mapDelta.Reset()
						mapDelta.RemoveEdge(replay, deg, m.U, m.V)
						replay.RemoveEdge(m.U, m.V)
						mapDelta.RemoveEdge(replay, deg, m.X, m.Y)
						replay.RemoveEdge(m.X, m.Y)
						mapDelta.AddEdge(replay, deg, m.U, m.Y)
						mustAdd(replay, m.U, m.Y)
						mapDelta.AddEdge(replay, deg, m.X, m.V)
						mustAdd(replay, m.X, m.V)
						mapDelta.ApplyTo(mapCensus)

						if !trackerCensus.Equal(mapCensus) {
							t.Fatalf("%s/d%d seed=%d w=%d: tracker census != map census after move %d",
								fam.name, depth, seed, workers, i)
						}
						if depth == 3 && !trackerCensus.Equal(baseline) {
							t.Fatalf("%s/d%d seed=%d w=%d: depth-3 move %d changed the census",
								fam.name, depth, seed, workers, i)
						}
						if (i+1)%recountEach == 0 || i == r.Stats.Accepted-1 {
							if fresh := subgraphs.Count(replay.Static()); !trackerCensus.Equal(fresh) {
								t.Fatalf("%s/d%d seed=%d w=%d: incremental census != recount after move %d",
									fam.name, depth, seed, workers, i)
							}
						}
					}
					if !replay.Equal(work) {
						t.Fatalf("%s/d%d seed=%d w=%d: replayed graph differs from rewired graph",
							fam.name, depth, seed, workers)
					}
				}
			}
		}
	}
	for _, depth := range []int{1, 2, 3} {
		if acceptedByDepth[depth] == 0 {
			t.Fatalf("differential suite accepted zero moves at depth %d — vacuous", depth)
		}
	}
}
