package generate

import (
	"fmt"
	"math/rand"

	"repro/internal/dk"
	"repro/internal/graph"
)

// classes groups node ids by their target degree, assigning ids densely:
// nodes of the same expected degree are interchangeable, which lets all
// stochastic constructions sample whole class-pair blocks at constant
// probability.
type classes struct {
	degrees []int   // distinct degrees, ascending
	nodes   [][]int // nodes[i] = node ids with target degree degrees[i]
	n       int
}

func classesFromDist(dd *dk.DegreeDist) classes {
	var c classes
	for _, k := range dd.Degrees() {
		cnt := dd.Count[k]
		if cnt <= 0 {
			continue
		}
		ids := make([]int, cnt)
		for i := range ids {
			ids[i] = c.n
			c.n++
		}
		c.degrees = append(c.degrees, k)
		c.nodes = append(c.nodes, ids)
	}
	return c
}

// Stochastic1K is the Chung–Lu construction: nodes are labeled with
// expected degrees q_i drawn as the exact class sizes of dd, and each pair
// (i,j) is connected with probability p = min(1, q_i·q_j/(n·q̄)). The
// degree distribution is reproduced in expectation; the paper's §4.1.1
// discussion of its high variance is reproduced by the experiments.
func Stochastic1K(dd *dk.DegreeDist, opt Options) (*graph.CSR, error) {
	rng, err := opt.rng()
	if err != nil {
		return nil, err
	}
	cls := classesFromDist(dd)
	if cls.n == 0 {
		return nil, fmt.Errorf("generate: empty degree distribution")
	}
	sumQ := float64(dd.TotalDegree()) // n·q̄
	if sumQ == 0 {
		return graph.NewCSR(cls.n), nil
	}
	g := graph.NewCSR(cls.n)
	add := func(u, v int) {
		if err := g.AddEdge(u, v); err != nil {
			panic("generate: stochastic1K duplicate: " + err.Error())
		}
	}
	for a := range cls.degrees {
		for b := a; b < len(cls.degrees); b++ {
			p := float64(cls.degrees[a]) * float64(cls.degrees[b]) / sumQ
			sampleClassPair(rng, cls.nodes[a], cls.nodes[b], a == b, p, add)
		}
	}
	return g, nil
}

// Stochastic2K is the hidden-variable construction reproducing the joint
// degree distribution in expectation: nodes are labeled with target
// degrees implied by the JDD, and class pair (k1,k2) blocks are sampled
// with probability m(k1,k2)/n(k1)·n(k2) (within-class: m(k,k)/C(n(k),2)).
// This matches the paper's p_2K(q1,q2) = (q̄/n)·P(q1,q2)/(P(q1)P(q2)) in
// count form.
func Stochastic2K(jdd *dk.JDD, opt Options) (*graph.CSR, error) {
	rng, err := opt.rng()
	if err != nil {
		return nil, err
	}
	dd, err := jdd.DegreeDist()
	if err != nil {
		return nil, fmt.Errorf("generate: stochastic2K: %w", err)
	}
	cls := classesFromDist(dd)
	if cls.n == 0 {
		return nil, fmt.Errorf("generate: empty JDD")
	}
	classIdx := make(map[int]int, len(cls.degrees))
	for i, k := range cls.degrees {
		classIdx[k] = i
	}
	g := graph.NewCSR(cls.n)
	add := func(u, v int) {
		if err := g.AddEdge(u, v); err != nil {
			panic("generate: stochastic2K duplicate: " + err.Error())
		}
	}
	// Iterate classes in sorted order, not map order: every block consumes
	// rng draws, so the iteration order is part of the random stream and
	// must be deterministic.
	for _, pair := range jdd.Pairs() {
		m := jdd.Count[pair]
		if m <= 0 {
			continue
		}
		a := classIdx[pair.K1]
		b := classIdx[pair.K2]
		var pairs float64
		same := pair.K1 == pair.K2
		na, nb := len(cls.nodes[a]), len(cls.nodes[b])
		if same {
			pairs = float64(na) * float64(na-1) / 2
		} else {
			pairs = float64(na) * float64(nb)
		}
		if pairs == 0 {
			continue
		}
		p := float64(m) / pairs
		sampleClassPair(rng, cls.nodes[a], cls.nodes[b], same, p, add)
	}
	return g, nil
}

// sampleClassPair samples edges between two node classes (or within one
// when same is true) at constant probability p, clamped to min(1, p):
// dense classes can push the raw block probability past 1 — a hub class
// whose q_i·q_j exceeds n·q̄ in Stochastic1K, or a JDD block whose edge
// count exceeds its pair count in Stochastic2K — and the documented
// semantics of both constructions connect every pair in that case. The
// clamp spells that out at the layer the formulas live; blockSample's
// p >= 1 fast path realizes the same behavior, so this is defense in
// depth, not a behavior change (TestStochasticDenseClassClamp pins it).
func sampleClassPair(rng *rand.Rand, A, B []int, same bool, p float64, add func(u, v int)) {
	if p > 1 {
		p = 1
	}
	if same {
		n := len(A)
		total := int64(n) * int64(n-1) / 2
		blockSample(rng, total, p,
			func(idx int64) (int, int) {
				i, j := unrankSamePair(idx, n)
				return A[i], A[j]
			}, add)
		return
	}
	total := int64(len(A)) * int64(len(B))
	blockSample(rng, total, p,
		func(idx int64) (int, int) {
			return A[idx/int64(len(B))], B[idx%int64(len(B))]
		}, add)
}
