package generate

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/subgraphs"
)

// jddMultiset returns the joint degree distribution of g as a sorted
// list of canonical (min-degree, max-degree) pairs, one per edge —
// a comparable fingerprint of the paper's 2K-distribution.
func jddMultiset(g *graph.CSR) [][2]int {
	deg := g.DegreeSequence()
	out := make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		a, b := deg[e.U], deg[e.V]
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]int{a, b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// FuzzRewireMoves fuzzes the rewiring engine over the (seed, depth,
// graph-bytes) space: ANY input graph must either be rejected cleanly by
// NewRewirer or survive a run of Steps with every dK invariant of its
// depth intact after each accepted move — degree sequence (d ≥ 1), JDD
// multiset (d ≥ 2), full census recount (d = 3) — with the stats
// invariant Attempts == Accepted + Rejected.Total() holding throughout,
// and the engine must never panic. Complements the differential suite
// (structured families) with adversarial topologies.
func FuzzRewireMoves(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(60), []byte{0, 1, 1, 2, 2, 3, 3, 0, 0, 2})
	f.Add(int64(42), uint8(2), uint8(40), []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 1, 2})
	f.Add(int64(-7), uint8(1), uint8(30), []byte{5, 9, 1, 4, 4, 9, 2, 2, 7, 7, 0, 1, 3, 8})
	f.Add(int64(1<<60), uint8(0), uint8(20), []byte{1, 0, 2, 0, 3})
	f.Add(int64(9), uint8(3), uint8(50), []byte{})

	f.Fuzz(func(t *testing.T, seed int64, depth, steps uint8, data []byte) {
		d := int(depth % 4)
		n := 4 + len(data)%13
		g := graph.NewCSR(n)
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u != v {
				g.AddEdge(u, v) //nolint:errcheck // duplicates are the fuzzer probing the parser, not errors
			}
		}
		r, err := NewRewirer(g, d, rand.New(rand.NewSource(seed)))
		if err != nil {
			if g.M() >= 2 {
				t.Fatalf("NewRewirer rejected a %d-edge graph at depth %d: %v", g.M(), d, err)
			}
			return // too few edges must error, not panic
		}
		wantDeg := append([]int(nil), g.DegreeSequence()...)
		wantJDD := jddMultiset(g)
		wantCensus := subgraphs.Count(g.Static())
		for i := 0; i < int(steps%96)+1; i++ {
			accepted, err := r.Step()
			if err != nil {
				t.Fatalf("Step %d: %v", i, err)
			}
			if got, want := r.Stats.Attempts, r.Stats.Accepted+r.Stats.Rejected.Total(); got != want {
				t.Fatalf("step %d: attempts invariant: %d != accepted %d + rejected %d",
					i, got, r.Stats.Accepted, r.Stats.Rejected.Total())
			}
			if !accepted {
				continue
			}
			if d >= 1 {
				for u, want := range wantDeg {
					if g.Degree(u) != want {
						t.Fatalf("step %d: degree of node %d changed %d -> %d", i, u, want, g.Degree(u))
					}
				}
			}
			if d >= 2 {
				got := jddMultiset(g)
				for j := range got {
					if got[j] != wantJDD[j] {
						t.Fatalf("step %d: JDD multiset changed at entry %d: %v -> %v", i, j, wantJDD[j], got[j])
					}
				}
			}
			if d == 3 {
				if fresh := subgraphs.Count(g.Static()); !fresh.Equal(wantCensus) {
					t.Fatalf("step %d: depth-3 move changed the wedge/triangle census", i)
				}
			}
		}
	})
}
