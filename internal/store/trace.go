package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/trace"
)

// Ops is a span-recording view of a Store: each artifact read/write
// (and journal replay) records one child span under Span, named
// "store.<op>", so store operations appear in a request's trace tree
// nested beneath the pipeline phase that caused them. A nil Span makes
// every operation delegate with zero tracing cost — the same nil-tracer
// contract as internal/trace itself.
type Ops struct {
	S    *Store
	Span *trace.Span
}

// shortHash abbreviates a content address for span attributes.
func shortHash(hash string) string {
	if hex, ok := strings.CutPrefix(hash, "sha256:"); ok && len(hex) > 12 {
		return hex[:12]
	}
	return hash
}

// GetGraph is Store.GetGraph under a "store.graph_read" span.
func (o Ops) GetGraph(hash string, lim graph.ReadLimits) (*graph.CSR, []int, error) {
	sp := o.Span.Child("store.graph_read", "hash", shortHash(hash))
	g, labels, err := o.S.GetGraph(hash, lim)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return g, labels, err
}

// PutGraph is Store.PutGraph under a "store.graph_write" span.
func (o Ops) PutGraph(hash string, g *graph.CSR, labels []int) error {
	sp := o.Span.Child("store.graph_write", "hash", shortHash(hash))
	err := o.S.PutGraph(hash, g, labels)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

// GetProfile is Store.GetProfile under a "store.profile_read" span.
func (o Ops) GetProfile(hash string, d int) (*dk.Profile, error) {
	sp := o.Span.Child("store.profile_read", "hash", shortHash(hash), "d", fmt.Sprint(d))
	p, err := o.S.GetProfile(hash, d)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return p, err
}

// PutProfile is Store.PutProfile under a "store.profile_write" span.
func (o Ops) PutProfile(hash string, p *dk.Profile) error {
	sp := o.Span.Child("store.profile_write", "hash", shortHash(hash), "d", fmt.Sprint(p.D))
	err := o.S.PutProfile(hash, p)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

// Replay is Journal.Replay under a "store.journal_replay" span carrying
// the replayed record count — the startup trace's view of recovery.
func (o Ops) Replay() ([]JobState, error) {
	sp := o.Span.Child("store.journal_replay")
	recs, err := o.S.Journal().Replay()
	sp.SetAttr("records", fmt.Sprint(len(recs)))
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return recs, err
}

// traceID validates a job id used as a trace artifact name; the check
// is what keeps externally supplied ids from escaping the jobs
// directory.
func traceID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("store: malformed trace id %q", id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("store: malformed trace id %q", id)
		}
	}
	return nil
}

const traceSuffix = ".trace.jsonl"

func (s *Store) tracePath(id string) string {
	return filepath.Join(s.dir, "jobs", id+traceSuffix)
}

// PutTrace stores one job's encoded trace (JSONL) alongside the job
// journal as jobs/<id>.trace.jsonl, via the same atomic temp+rename
// discipline as every other artifact.
func (s *Store) PutTrace(id string, data []byte) error {
	if err := traceID(id); err != nil {
		return err
	}
	return atomicWrite(s.tracePath(id), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// GetTrace loads one job's stored trace. Returns ErrNotFound when no
// trace was persisted for the id.
func (s *Store) GetTrace(id string) ([]byte, error) {
	if err := traceID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.tracePath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: trace %s", ErrNotFound, id)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// PruneTraces removes the oldest trace files beyond keep, by name —
// job ids are zero-padded sequence numbers, so lexical order is
// submission order. Returns how many were removed. keep <= 0 removes
// nothing.
func (s *Store) PruneTraces(keep int) int {
	if keep <= 0 {
		return 0
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return 0
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), traceSuffix) {
			names = append(names, e.Name())
		}
	}
	if len(names) <= keep {
		return 0
	}
	sort.Strings(names)
	removed := 0
	for _, name := range names[:len(names)-keep] {
		if os.Remove(filepath.Join(s.dir, "jobs", name)) == nil {
			removed++
		}
	}
	return removed
}
