//go:build unix

package store

import "testing"

// TestJournalLockGuardsCompaction: the first opener of a data dir owns
// the journal; a second opener (dkstore gc against a live dkserved) can
// append and replay but must be refused compaction, which would detach
// the owner's append handle.
func TestJournalLockGuardsCompaction(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Journal().Record(JobRecord{ID: "j000001", Status: JobQueued, Kind: "generate"}); err != nil {
		t.Fatal(err)
	}
	if err := st1.Journal().Record(JobRecord{ID: "j000001", Status: JobDone}); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Journal().Compact(); err == nil {
		t.Fatal("second opener compacted the journal out from under the owner")
	}
	// Appending and replaying remain available to the second opener.
	if err := st2.Journal().Record(JobRecord{ID: "j000002", Status: JobQueued, Kind: "generate"}); err != nil {
		t.Fatal(err)
	}
	states, err := st2.Journal().Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("replayed %d states, want 2", len(states))
	}

	// Once the owner closes, a fresh opener gets the lock and compacts.
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	dropped, err := st3.Journal().Compact()
	if err != nil {
		t.Fatalf("compaction with the lock free: %v", err)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1 (the done job)", dropped)
	}
}
