//go:build !unix

package store

// tryFlock is a no-op where flock is unavailable; compaction safety then
// relies on the operator not racing a live server.
func tryFlock(fd uintptr) bool { return true }
