//go:build unix

package store

import "syscall"

// tryFlock takes a non-blocking exclusive advisory lock on fd, reporting
// success. A dkserved process holds its journal's lock for its lifetime,
// which is what stops `dkstore gc` from compacting (rename-replacing)
// the journal out from under a live server's append handle.
func tryFlock(fd uintptr) bool {
	return syscall.Flock(int(fd), syscall.LOCK_EX|syscall.LOCK_NB) == nil
}
