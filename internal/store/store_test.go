package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dk"
	"repro/internal/graph"
)

// testGraph builds a reproducible random simple graph.
func testGraph(n, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewCSR(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestGraphPutGet(t *testing.T) {
	st := openTestStore(t)
	g := testGraph(50, 120, 1)
	labels := make([]int, g.N())
	for i := range labels {
		labels[i] = 1000 + 3*i
	}
	hash := graph.ContentHash(g, labels)
	if st.HasGraph(hash) {
		t.Fatal("graph present before put")
	}
	if err := st.PutGraph(hash, g, labels); err != nil {
		t.Fatal(err)
	}
	if !st.HasGraph(hash) {
		t.Fatal("graph absent after put")
	}
	got, gotLabels, err := st.GetGraph(hash, graph.ReadLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g) {
		t.Fatal("stored graph differs")
	}
	if graph.ContentHash(got, gotLabels) != hash {
		t.Fatal("stored graph re-hashes differently")
	}
	// Idempotent re-put must not bump the write counter.
	writes := st.Stats().GraphWrites
	if err := st.PutGraph(hash, g, labels); err != nil {
		t.Fatal(err)
	}
	if st.Stats().GraphWrites != writes {
		t.Fatal("re-put of existing artifact counted as a write")
	}
}

func TestGraphNotFoundAndBadHash(t *testing.T) {
	st := openTestStore(t)
	_, _, err := st.GetGraph("sha256:"+strings.Repeat("ab", 32), graph.ReadLimits{})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err=%v, want ErrNotFound", err)
	}
	for _, bad := range []string{"", "sha256:short", "md5:abcd", "sha256:../../../../etc/passwd0000000000000000000000000000000000000000000"} {
		if _, _, err := st.GetGraph(bad, graph.ReadLimits{}); err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("hash %q: err=%v, want validation failure", bad, err)
		}
		if st.HasGraph(bad) {
			t.Fatalf("hash %q reported present", bad)
		}
	}
}

func TestProfileDepthSelection(t *testing.T) {
	st := openTestStore(t)
	g := testGraph(40, 90, 2)
	hash := graph.ContentHash(g, nil)
	p2, err := dk.Extract(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutProfile(hash, p2); err != nil {
		t.Fatal(err)
	}
	// A depth-2 artifact answers d=0..2 but not d=3.
	for d := 0; d <= 2; d++ {
		got, err := st.GetProfile(hash, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if got.D != 2 {
			t.Fatalf("d=%d: stored depth %d, want the depth-2 artifact", d, got.D)
		}
	}
	if _, err := st.GetProfile(hash, 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("d=3: err=%v, want ErrNotFound", err)
	}
	// After storing d=3, the deeper artifact wins.
	p3, err := dk.Extract(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutProfile(hash, p3); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetProfile(hash, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != 3 {
		t.Fatalf("stored depth %d, want 3 (deepest wins)", got.D)
	}
	if depths := st.ProfileDepths(hash); len(depths) != 2 || depths[0] != 2 || depths[1] != 3 {
		t.Fatalf("depths %v, want [2 3]", depths)
	}
}

func TestListGraphsAndStats(t *testing.T) {
	st := openTestStore(t)
	for seed := int64(1); seed <= 3; seed++ {
		g := testGraph(20, 40, seed)
		hash := graph.ContentHash(g, nil)
		if err := st.PutGraph(hash, g, nil); err != nil {
			t.Fatal(err)
		}
		if seed == 1 {
			p, _ := dk.Extract(g, 1)
			if err := st.PutProfile(hash, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	infos, err := st.ListGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("listed %d graphs, want 3", len(infos))
	}
	withProfiles := 0
	for _, gi := range infos {
		if gi.N != 20 || gi.M != 40 {
			t.Fatalf("listing %+v, want n=20 m=40", gi)
		}
		if len(gi.ProfileDepths) > 0 {
			withProfiles++
		}
	}
	if withProfiles != 1 {
		t.Fatalf("%d graphs with profiles, want 1", withProfiles)
	}
	stats := st.Stats()
	if stats.Graphs != 3 || stats.Profiles != 1 {
		t.Fatalf("stats %+v, want 3 graphs / 1 profile", stats)
	}
	if stats.GraphBytes <= 0 || stats.ProfileBytes <= 0 {
		t.Fatalf("stats %+v, want positive byte totals", stats)
	}
}

func TestGC(t *testing.T) {
	st := openTestStore(t)
	g := testGraph(25, 50, 4)
	hash := graph.ContentHash(g, nil)
	if err := st.PutGraph(hash, g, nil); err != nil {
		t.Fatal(err)
	}
	p, _ := dk.Extract(g, 2)
	if err := st.PutProfile(hash, p); err != nil {
		t.Fatal(err)
	}

	// Corrupt graph: valid prefix, flipped byte.
	g2 := testGraph(25, 50, 5)
	hash2 := graph.ContentHash(g2, nil)
	if err := st.PutGraph(hash2, g2, nil); err != nil {
		t.Fatal(err)
	}
	hex2, _ := hashHex(hash2)
	path2 := st.graphPath(hex2)
	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Its profile becomes an orphan once GC removes the corrupt graph.
	p2, _ := dk.Extract(g2, 1)
	if err := st.PutProfile(hash2, p2); err != nil {
		t.Fatal(err)
	}

	// Interrupted-write leftovers (backdated past gcTmpAge — fresh temp
	// files are spared as possibly in-flight), a fresh temp file, and a
	// foreign file.
	staleTmp := filepath.Join(st.Dir(), "graphs", "x.dkg.123.tmp")
	if err := os.WriteFile(staleTmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * gcTmpAge)
	if err := os.Chtimes(staleTmp, old, old); err != nil {
		t.Fatal(err)
	}
	freshTmp := filepath.Join(st.Dir(), "graphs", "y.dkg.456.tmp")
	if err := os.WriteFile(freshTmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir(), "graphs", "notes.txt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := st.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptGraphs != 1 || rep.OrphanProfiles != 1 || rep.TempFiles != 1 || rep.ForeignFiles != 1 {
		t.Fatalf("report %+v, want 1 corrupt graph, 1 orphan profile, 1 temp, 1 foreign", rep)
	}
	if _, err := os.Stat(freshTmp); err != nil {
		t.Fatal("GC removed a fresh (possibly in-flight) temp file")
	}
	// The healthy artifacts survived.
	if !st.HasGraph(hash) {
		t.Fatal("GC removed a healthy graph")
	}
	if _, err := st.GetProfile(hash, 2); err != nil {
		t.Fatalf("GC broke a healthy profile: %v", err)
	}
	if st.HasGraph(hash2) {
		t.Fatal("GC kept the corrupt graph")
	}
}
