package store

import (
	"bytes"
	"testing"

	"repro/internal/dk"
	"repro/internal/graph"
)

// FuzzStoreDecode hardens the store's binary decoders — the graph
// container and the profile container — against arbitrary bytes: decoding
// must never panic or over-allocate, and anything that decodes must
// re-encode and decode to the same value (one canonical form per
// artifact).
func FuzzStoreDecode(f *testing.F) {
	// Valid artifacts of both kinds as seeds, plus structured garbage.
	g := graph.NewCSR(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			f.Fatal(err)
		}
	}
	var gb bytes.Buffer
	if err := graph.WriteBinaryCSR(&gb, g, []int{10, 20, 30, 40}); err != nil {
		f.Fatal(err)
	}
	f.Add(gb.Bytes())
	for d := 0; d <= 3; d++ {
		p, err := dk.Extract(g, d)
		if err != nil {
			f.Fatal(err)
		}
		var pb bytes.Buffer
		if err := dk.WriteProfileBinary(&pb, p); err != nil {
			f.Fatal(err)
		}
		f.Add(pb.Bytes())
	}
	f.Add([]byte("DKGB\x01"))
	f.Add([]byte("DKPB\x01"))
	f.Add([]byte("DKGB\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add(gb.Bytes()[:gb.Len()/2])

	lim := graph.ReadLimits{MaxBytes: 1 << 16, MaxNodes: 1 << 12, MaxEdges: 1 << 14}
	f.Fuzz(func(t *testing.T, data []byte) {
		if g, labels, err := graph.ReadBinaryCSRLimit(bytes.NewReader(data), lim); err == nil {
			var re bytes.Buffer
			if err := graph.WriteBinaryCSR(&re, g, labels); err != nil {
				t.Fatalf("re-encode of decoded graph: %v", err)
			}
			g2, labels2, err := graph.ReadBinaryCSR(bytes.NewReader(re.Bytes()))
			if err != nil {
				t.Fatalf("decode of own encoding: %v", err)
			}
			if !g2.Equal(g) || len(labels2) != len(labels) {
				t.Fatal("graph round trip not stable")
			}
		}
		if p, err := dk.ReadProfileBinary(bytes.NewReader(data)); err == nil {
			var re bytes.Buffer
			if err := dk.WriteProfileBinary(&re, p); err != nil {
				t.Fatalf("re-encode of decoded profile: %v", err)
			}
			p2, err := dk.ReadProfileBinary(bytes.NewReader(re.Bytes()))
			if err != nil {
				t.Fatalf("decode of own encoding: %v", err)
			}
			if p2.D != p.D || p2.N != p.N || p2.M != p.M {
				t.Fatal("profile round trip not stable")
			}
		}
	})
}
