package store

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestTracePersistence(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := trace.New("j000001", "job")
	tr.Root().Child("step").End()
	tr.Root().End()
	data := tr.MarshalJSONL()

	if err := s.PutTrace("j000001", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetTrace("j000001")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("trace round-trip mismatch:\n%s\nvs\n%s", got, data)
	}
	d, err := trace.DecodeBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("stored trace invalid: %v", err)
	}

	if _, err := s.GetTrace("j999999"); err == nil {
		t.Fatal("GetTrace of unknown id succeeded")
	}
	for _, bad := range []string{"", "../escape", "a/b", "x y", strings.Repeat("a", 200)} {
		if err := s.PutTrace(bad, data); err == nil {
			t.Fatalf("PutTrace accepted malformed id %q", bad)
		}
		if _, err := s.GetTrace(bad); err == nil {
			t.Fatalf("GetTrace accepted malformed id %q", bad)
		}
	}
}

func TestPruneTraces(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, id := range []string{"j000001", "j000002", "j000003", "j000004"} {
		if err := s.PutTrace(id, []byte(`{"kind":"trace"}`+"\n")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.PruneTraces(2); got != 2 {
		t.Fatalf("pruned %d, want 2", got)
	}
	// Oldest (lexically smallest) ids go first.
	for id, want := range map[string]bool{"j000001": false, "j000002": false, "j000003": true, "j000004": true} {
		_, err := s.GetTrace(id)
		if got := err == nil; got != want {
			t.Fatalf("after prune, %s present=%v want %v", id, got, want)
		}
	}
	if got := s.PruneTraces(2); got != 0 {
		t.Fatalf("second prune removed %d, want 0", got)
	}
	// GC must leave trace files alone.
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTrace("j000004"); err != nil {
		t.Fatalf("GC removed a live trace: %v", err)
	}
}

func TestOpsSpans(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := trace.New("t", "root")
	ops := Ops{S: s, Span: tr.Root()}
	// A miss still records the span, with an error attribute.
	if _, err := ops.GetProfile("sha256:"+strings.Repeat("ab", 32), 2); err == nil {
		t.Fatal("expected miss")
	}
	if _, err := ops.Replay(); err != nil {
		t.Fatal(err)
	}
	tr.Root().End()
	d, err := trace.DecodeBytes(tr.MarshalJSONL())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range d.Spans {
		names[sp.Name] = true
	}
	if !names["store.profile_read"] || !names["store.journal_replay"] {
		t.Fatalf("missing store spans: %v", names)
	}
	// The nil-span view must not record anything and still work.
	nilOps := Ops{S: s}
	if _, err := nilOps.Replay(); err != nil {
		t.Fatal(err)
	}
}
