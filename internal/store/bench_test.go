package store

import (
	"bytes"
	"testing"

	"repro/internal/dk"
	"repro/internal/graph"
)

// The store's perf trajectory, go-bench form (cmd/dkstore bench is the
// JSON-emitting runner for the same questions at paper scale):
//
//	BenchmarkGraphDecodeText vs BenchmarkGraphDecodeBinary — the wire
//	  formats racing on the same topology
//	BenchmarkProfileFetchCold vs BenchmarkProfileFetchWarm — recomputing
//	  a profile vs fetching it from the disk tier

// benchTopology is a shared mid-size random graph (the go benches favor
// quick iteration; dkstore bench runs the paper-scale version).
func benchTopology() *graph.CSR {
	return testGraph(3000, 9000, 42)
}

func BenchmarkGraphDecodeText(b *testing.B) {
	g := benchTopology()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.ReadEdgeList(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphDecodeBinary(b *testing.B) {
	g := benchTopology()
	var buf bytes.Buffer
	if err := graph.WriteBinaryCSR(&buf, g, nil); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.ReadBinaryCSR(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileFetchCold measures recomputing the profile from the
// graph — what every request pays without the artifact store.
func BenchmarkProfileFetchCold(b *testing.B) {
	g := benchTopology()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dk.Extract(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileFetchWarm measures fetching the stored profile from the
// disk tier — what a restarted server pays instead.
func BenchmarkProfileFetchWarm(b *testing.B) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	g := benchTopology()
	hash := graph.ContentHash(g, nil)
	p, err := dk.Extract(g, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.PutProfile(hash, p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.GetProfile(hash, 2); err != nil {
			b.Fatal(err)
		}
	}
}
