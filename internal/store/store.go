// Package store implements the content-addressed persistent artifact
// store behind the dK topology service: binary graph and profile
// artifacts on disk, named by the SHA-256 content address of their
// canonical edge list (graph.ContentHash), plus an append-only job
// journal that lets the service's async engine recover work across
// restarts.
//
// The paper's workflow is extract-once, generate-many: one dK-profile of
// a large measured topology seeds whole ensembles of dK-random replicas.
// The store makes the expensive half of that durable — a profile computed
// before a restart is fetched from disk after it, never recomputed.
//
// Layout under the data directory:
//
//	graphs/<hex>.dkg          binary graph (varint-delta CSR, see internal/graph)
//	profiles/<hex>.d<D>.dkp   binary dK-profile at depth D (see internal/dk)
//	jobs/journal.jsonl        append-only job journal (see journal.go)
//	jobs/<id>.trace.jsonl     per-job execution trace (see trace.go)
//
// Writes are atomic (temp file + rename), so a crash mid-write leaves at
// worst a *.tmp leftover that GC sweeps; a torn rename is impossible on
// POSIX filesystems. Reads verify the per-artifact CRC-32 and fail with
// graph.ErrCorrupt / dk.ErrCorrupt on damage, which GC uses to
// quarantine bad files.
package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dk"
	"repro/internal/graph"
)

// ErrNotFound marks lookups of artifacts the store does not hold.
var ErrNotFound = errors.New("store: artifact not found")

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use: the filesystem provides the
// shared state, writes are atomic renames, and counters are atomics.
type Store struct {
	dir     string
	journal *Journal

	graphReads, graphWrites     atomic.Int64
	profileReads, profileWrites atomic.Int64
	readErrors                  atomic.Int64

	// Directory-scan results for Stats are cached briefly so a
	// monitoring loop polling /v1/stats does not re-enumerate the
	// artifact directories on every request.
	scanMu  sync.Mutex
	scanAt  time.Time
	scanned scanTotals
}

// scanTotals are the directory-scan half of Stats.
type scanTotals struct {
	graphs, profiles         int
	graphBytes, profileBytes int64
}

// statsScanTTL bounds the staleness of Stats' artifact counts.
const statsScanTTL = 2 * time.Second

// Stats is a snapshot of store contents and lifetime traffic counters.
// Artifact counts and byte totals come from a directory scan; the
// counters accumulate per-process.
type Stats struct {
	Dir           string `json:"dir"`
	Graphs        int    `json:"graphs"`
	Profiles      int    `json:"profiles"`
	GraphBytes    int64  `json:"graph_bytes"`
	ProfileBytes  int64  `json:"profile_bytes"`
	GraphReads    int64  `json:"graph_reads"`
	GraphWrites   int64  `json:"graph_writes"`
	ProfileReads  int64  `json:"profile_reads"`
	ProfileWrites int64  `json:"profile_writes"`
	ReadErrors    int64  `json:"read_errors"`
}

// Open opens (creating if needed) the store rooted at dir, including its
// job journal.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"graphs", "profiles", "jobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	j, err := openJournal(filepath.Join(dir, "jobs", journalName))
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, journal: j}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Journal returns the store's job journal.
func (s *Store) Journal() *Journal { return s.journal }

// Exclusive reports whether this process owns the data directory's
// journal lock — the single-writer guard a server must hold before
// replaying or appending job records.
func (s *Store) Exclusive() bool { return s.journal.Exclusive() }

// Close releases the journal's file handle. Artifact methods remain
// usable (they open files per call), but journal appends will fail.
func (s *Store) Close() error { return s.journal.Close() }

// Ping probes the store's readiness: the artifact directories must
// still exist and be stat-able. It is deliberately cheap (no I/O beyond
// a stat per subdirectory) — /v1/readyz calls it on every poll.
func (s *Store) Ping() error {
	for _, sub := range []string{"graphs", "profiles", "jobs"} {
		if _, err := os.Stat(filepath.Join(s.dir, sub)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// hashHex validates a "sha256:<64 hex>" content address and returns the
// hex part, which is the on-disk artifact name. Validation here is what
// keeps externally supplied hashes from escaping the store directory.
func hashHex(hash string) (string, error) {
	hex, ok := strings.CutPrefix(hash, "sha256:")
	if !ok || len(hex) != 64 {
		return "", fmt.Errorf("store: malformed content hash %q", hash)
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("store: malformed content hash %q", hash)
		}
	}
	return hex, nil
}

func (s *Store) graphPath(hex string) string {
	return filepath.Join(s.dir, "graphs", hex+".dkg")
}

func (s *Store) profilePath(hex string, d int) string {
	return filepath.Join(s.dir, "profiles", fmt.Sprintf("%s.d%d.dkp", hex, d))
}

// atomicWrite writes the output of fill to path via a temp file + rename,
// so concurrent readers and a crash mid-write never observe a partial
// artifact.
func atomicWrite(path string, fill func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// PutGraph stores g under its content address. Content-addressed
// artifacts are immutable, so an existing file is left untouched (the
// bytes would be identical) and the write is skipped.
func (s *Store) PutGraph(hash string, g *graph.CSR, labels []int) error {
	hex, err := hashHex(hash)
	if err != nil {
		return err
	}
	path := s.graphPath(hex)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := atomicWrite(path, func(w io.Writer) error {
		return graph.WriteBinaryCSR(w, g, labels)
	}); err != nil {
		return err
	}
	s.graphWrites.Add(1)
	return nil
}

// HasGraph reports whether a graph artifact exists for hash.
func (s *Store) HasGraph(hash string) bool {
	hex, err := hashHex(hash)
	if err != nil {
		return false
	}
	_, err = os.Stat(s.graphPath(hex))
	return err == nil
}

// GetGraph loads the graph stored under hash, verifying its checksum.
// lim bounds the decode; pass graph.ReadLimits{} for a trusted store.
// Returns ErrNotFound if no artifact exists.
func (s *Store) GetGraph(hash string, lim graph.ReadLimits) (*graph.CSR, []int, error) {
	hex, err := hashHex(hash)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Open(s.graphPath(hex))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, fmt.Errorf("%w: graph %s", ErrNotFound, hash)
		}
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	g, labels, err := graph.ReadBinaryCSRLimit(f, lim)
	if err != nil {
		s.readErrors.Add(1)
		return nil, nil, fmt.Errorf("store: graph %s: %w", hash, err)
	}
	s.graphReads.Add(1)
	return g, labels, nil
}

// PutProfile stores an extracted profile under its graph's content
// address, one artifact per extraction depth. Like PutGraph, an existing
// artifact at the same depth is left untouched.
func (s *Store) PutProfile(hash string, p *dk.Profile) error {
	hex, err := hashHex(hash)
	if err != nil {
		return err
	}
	path := s.profilePath(hex, p.D)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := atomicWrite(path, func(w io.Writer) error {
		return dk.WriteProfileBinary(w, p)
	}); err != nil {
		return err
	}
	s.profileWrites.Add(1)
	return nil
}

// GetProfile loads the deepest stored profile of hash with depth >= d,
// verifying its checksum. The inclusion property of the dK-series makes a
// deeper profile answer any shallower request (via Profile.Restrict), so
// depths are probed from 3 down. Returns ErrNotFound if no stored depth
// satisfies d.
func (s *Store) GetProfile(hash string, d int) (*dk.Profile, error) {
	hex, err := hashHex(hash)
	if err != nil {
		return nil, err
	}
	for depth := 3; depth >= d; depth-- {
		f, err := os.Open(s.profilePath(hex, depth))
		if err != nil {
			continue
		}
		p, err := dk.ReadProfileBinary(f)
		f.Close()
		if err != nil {
			// A damaged artifact at one depth must not mask a healthy
			// shallower one; GC is the tool that removes it.
			s.readErrors.Add(1)
			continue
		}
		s.profileReads.Add(1)
		return p, nil
	}
	return nil, fmt.Errorf("%w: profile %s at depth >= %d", ErrNotFound, hash, d)
}

// ProfileDepths lists the depths at which profiles of hash are stored, in
// increasing order, without decoding them.
func (s *Store) ProfileDepths(hash string) []int {
	hex, err := hashHex(hash)
	if err != nil {
		return nil
	}
	var out []int
	for d := 0; d <= 3; d++ {
		if _, err := os.Stat(s.profilePath(hex, d)); err == nil {
			out = append(out, d)
		}
	}
	return out
}

// GraphInfo describes one stored graph artifact for listings.
type GraphInfo struct {
	Hash          string `json:"hash"`
	N             int    `json:"n"`
	M             int    `json:"m"`
	HasLabels     bool   `json:"has_labels"`
	Bytes         int64  `json:"bytes"`
	ProfileDepths []int  `json:"profile_depths,omitempty"`
}

// ListGraphs enumerates stored graphs (sorted by hash) with their header
// summaries and available profile depths. Unreadable or foreign files are
// skipped; GC reports and removes them.
func (s *Store) ListGraphs() ([]GraphInfo, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "graphs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	out := make([]GraphInfo, 0, len(entries))
	for _, e := range entries {
		hex, ok := strings.CutSuffix(e.Name(), ".dkg")
		if !ok || e.IsDir() {
			continue
		}
		hash := "sha256:" + hex
		if _, err := hashHex(hash); err != nil {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		f, err := os.Open(s.graphPath(hex))
		if err != nil {
			continue
		}
		info, err := graph.ReadBinaryInfo(f)
		f.Close()
		if err != nil {
			continue
		}
		out = append(out, GraphInfo{
			Hash: hash, N: info.N, M: info.M, HasLabels: info.HasLabels,
			Bytes: fi.Size(), ProfileDepths: s.ProfileDepths(hash),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out, nil
}

// Stats returns content totals plus the lifetime traffic counters. The
// traffic counters are always fresh; the artifact counts come from a
// directory scan cached for statsScanTTL, so hammering /v1/stats does
// not hammer the filesystem.
func (s *Store) Stats() Stats {
	st := Stats{
		Dir:           s.dir,
		GraphReads:    s.graphReads.Load(),
		GraphWrites:   s.graphWrites.Load(),
		ProfileReads:  s.profileReads.Load(),
		ProfileWrites: s.profileWrites.Load(),
		ReadErrors:    s.readErrors.Load(),
	}
	s.scanMu.Lock()
	if time.Since(s.scanAt) > statsScanTTL {
		scan := func(sub, suffix string) (int, int64) {
			entries, err := os.ReadDir(filepath.Join(s.dir, sub))
			if err != nil {
				return 0, 0
			}
			count, bytes := 0, int64(0)
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), suffix) {
					continue
				}
				if fi, err := e.Info(); err == nil {
					count++
					bytes += fi.Size()
				}
			}
			return count, bytes
		}
		s.scanned.graphs, s.scanned.graphBytes = scan("graphs", ".dkg")
		s.scanned.profiles, s.scanned.profileBytes = scan("profiles", ".dkp")
		s.scanAt = time.Now()
	}
	st.Graphs, st.GraphBytes = s.scanned.graphs, s.scanned.graphBytes
	st.Profiles, st.ProfileBytes = s.scanned.profiles, s.scanned.profileBytes
	s.scanMu.Unlock()
	return st
}

// invalidateScan forces the next Stats call to rescan, used after
// mutations that change artifact counts in bulk.
func (s *Store) invalidateScan() {
	s.scanMu.Lock()
	s.scanAt = time.Time{}
	s.scanMu.Unlock()
}

// GCReport summarizes one garbage-collection sweep.
type GCReport struct {
	TempFiles       int  `json:"temp_files"`     // stale *.tmp leftovers removed
	CorruptGraphs   int  `json:"corrupt_graphs"` // checksum/decode failures removed
	CorruptProfiles int  `json:"corrupt_profiles"`
	OrphanProfiles  int  `json:"orphan_profiles"`           // profiles whose graph is gone
	ForeignFiles    int  `json:"foreign_files"`             // unrecognized names removed
	JournalDropped  int  `json:"journal_dropped"`           // terminal job records compacted away
	JournalSkipped  bool `json:"journal_skipped,omitempty"` // compaction refused: journal owned by a live server
}

// gcTmpAge is how old a *.tmp file must be before GC treats it as an
// interrupted-write leftover. A fresh temp file may be an atomicWrite
// in flight in a live server; deleting it would fail that write.
const gcTmpAge = 10 * time.Minute

// GC sweeps the store: interrupted-write temp files (older than
// gcTmpAge, so in-flight writes of a live server are spared) and files
// with unrecognized names are removed, every artifact is decoded
// end-to-end and deleted if its checksum or structure fails, profiles
// whose graph artifact is missing are dropped, and the job journal is
// compacted down to its non-terminal records. Content-addressed
// artifacts are immutable and self-contained, so GC never needs a
// reference count — an artifact is garbage only if it is damaged or
// orphaned.
func (s *Store) GC() (GCReport, error) {
	var rep GCReport
	staleTmp := func(e os.DirEntry) bool {
		fi, err := e.Info()
		return err == nil && time.Since(fi.ModTime()) > gcTmpAge
	}
	sweep := func(sub, suffix string, check func(path, name string) (remove bool, corrupt *int)) error {
		dir := filepath.Join(s.dir, sub)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			path := filepath.Join(dir, e.Name())
			if strings.HasSuffix(e.Name(), ".tmp") {
				if staleTmp(e) && os.Remove(path) == nil {
					rep.TempFiles++
				}
				continue
			}
			if !strings.HasSuffix(e.Name(), suffix) {
				if os.Remove(path) == nil {
					rep.ForeignFiles++
				}
				continue
			}
			remove, counter := check(path, e.Name())
			if remove && os.Remove(path) == nil && counter != nil {
				*counter++
			}
		}
		return nil
	}
	err := sweep("graphs", ".dkg", func(path, name string) (bool, *int) {
		hex, _ := strings.CutSuffix(name, ".dkg")
		if _, err := hashHex("sha256:" + hex); err != nil {
			return true, &rep.ForeignFiles
		}
		f, err := os.Open(path)
		if err != nil {
			return false, nil
		}
		_, _, err = graph.ReadBinaryCSR(f)
		f.Close()
		return err != nil, &rep.CorruptGraphs
	})
	if err != nil {
		return rep, err
	}
	// The jobs directory holds the journal, per-job trace files
	// (bounded by PruneTraces, never swept here) and — after a crash
	// during compaction — temp leftovers; sweep only the latter.
	if entries, err := os.ReadDir(filepath.Join(s.dir, "jobs")); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") && staleTmp(e) {
				if os.Remove(filepath.Join(s.dir, "jobs", e.Name())) == nil {
					rep.TempFiles++
				}
			}
		}
	}
	err = sweep("profiles", ".dkp", func(path, name string) (bool, *int) {
		base, _ := strings.CutSuffix(name, ".dkp")
		hex, depth, ok := strings.Cut(base, ".d")
		if !ok || len(depth) != 1 || depth[0] < '0' || depth[0] > '3' {
			return true, &rep.ForeignFiles
		}
		if _, err := hashHex("sha256:" + hex); err != nil {
			return true, &rep.ForeignFiles
		}
		if _, err := os.Stat(s.graphPath(hex)); err != nil {
			return true, &rep.OrphanProfiles
		}
		f, err := os.Open(path)
		if err != nil {
			return false, nil
		}
		_, err = dk.ReadProfileBinary(f)
		f.Close()
		return err != nil, &rep.CorruptProfiles
	})
	if err != nil {
		return rep, err
	}
	s.invalidateScan()
	dropped, err := s.journal.Compact()
	rep.JournalDropped = dropped
	if errors.Is(err, ErrJournalLocked) {
		// A live server owns the journal; its compaction happens at that
		// server's next startup. The artifact sweep above still counts
		// as a successful GC.
		rep.JournalSkipped = true
		err = nil
	}
	return rep, err
}
