package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// journalName is the journal file under the store's jobs/ directory.
const journalName = "journal.jsonl"

// ErrJournalLocked marks a refused compaction: another process (a live
// dkserved) owns the journal's advisory lock. Callers treat it as
// "skipped", not as a failure — see Store.GC.
var ErrJournalLocked = errors.New("store: journal is locked by another process")

// Job journal states. Queued and running are non-terminal: a journal
// whose last record for a job is one of them describes work a crashed
// process never finished, which the service re-queues on startup (a
// recovered job keeps its id, so its fresh queued record supersedes the
// stale state).
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobRecord is one append-only journal line. A job's first (queued)
// record carries its kind and request spec; later records only move its
// state, so replay folds records per id with last-state-wins.
type JobRecord struct {
	Time   time.Time       `json:"time"`
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Kind   string          `json:"kind,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// JobState is the folded view of one job after replay: its identity and
// spec from the queued record, its latest status, and the error of a
// failed terminal record.
type JobState struct {
	ID     string
	Kind   string
	Status string
	Spec   json.RawMessage
	Error  string
}

// Terminal reports whether the state needs no recovery action.
func (s JobState) Terminal() bool {
	return s.Status == JobDone || s.Status == JobFailed
}

// Journal is an append-only JSONL job log. Appends are serialized by a
// mutex and flushed per record: each line is one write syscall, so a
// crash can truncate at most the final line, which replay tolerates.
//
// The opener that wins the file's advisory lock (normally the dkserved
// process) is the journal's exclusive owner; a second opener (dkstore
// run against a live server) can still append and replay, but Compact —
// which rename-replaces the file and would detach the owner's append
// handle — is refused without the lock.
type Journal struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	exclusive bool
}

// openJournal opens (creating if needed) the journal at path for append.
func openJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	return &Journal{path: path, f: f, exclusive: tryFlock(f.Fd())}, nil
}

// Exclusive reports whether this process owns the journal's advisory
// lock. A server must not replay/recover (or serve) a journal it does
// not own: a second dkserved on the same data dir would re-run the live
// owner's in-flight jobs and mint colliding job ids.
func (j *Journal) Exclusive() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.exclusive
}

// Record appends one record. The timestamp is filled in if unset.
func (j *Journal) Record(rec JobRecord) error {
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal closed")
	}
	_, err = j.f.Write(line)
	return err
}

// Close syncs and releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Replay folds the journal into per-job states, sorted by id. Unparseable
// lines (at worst the torn final line of a crashed process) are skipped.
func (j *Journal) Replay() ([]JobState, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return replayFile(j.path)
}

func replayFile(path string) ([]JobState, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	defer f.Close()
	byID := make(map[string]*JobState)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var rec JobRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.ID == "" {
			continue
		}
		st, ok := byID[rec.ID]
		if !ok {
			st = &JobState{ID: rec.ID}
			byID[rec.ID] = st
			order = append(order, rec.ID)
		}
		if rec.Kind != "" {
			st.Kind = rec.Kind
		}
		if len(rec.Spec) > 0 {
			st.Spec = rec.Spec
		}
		st.Status = rec.Status
		st.Error = rec.Error
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	out := make([]JobState, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// Compact rewrites the journal keeping only non-terminal jobs (one
// queued-style record each) and returns how many terminal jobs were
// dropped. The rewrite is atomic and the append handle is reopened on the
// new file.
func (j *Journal) Compact() (dropped int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.exclusive {
		return 0, ErrJournalLocked
	}
	states, err := replayFile(j.path)
	if err != nil {
		return 0, err
	}
	kept := states[:0]
	for _, st := range states {
		if st.Terminal() {
			dropped++
			continue
		}
		kept = append(kept, st)
	}
	err = atomicWrite(j.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		for _, st := range kept {
			rec := JobRecord{
				Time: time.Now().UTC(), ID: st.ID, Status: st.Status,
				Kind: st.Kind, Spec: st.Spec, Error: st.Error,
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Reopen the append handle on the replacement file; the old handle
	// points at the unlinked inode. Re-acquire the lock on the new inode.
	if j.f != nil {
		j.f.Close()
		j.f, err = os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			j.f = nil
			return dropped, fmt.Errorf("store: journal: %w", err)
		}
		j.exclusive = tryFlock(j.f.Fd())
	}
	return dropped, nil
}
