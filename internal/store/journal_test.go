package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalReplayFold(t *testing.T) {
	st := openTestStore(t)
	j := st.Journal()
	spec := json.RawMessage(`{"replicas":3}`)
	recs := []JobRecord{
		{ID: "j000001", Status: JobQueued, Kind: "generate", Spec: spec},
		{ID: "j000001", Status: JobRunning},
		{ID: "j000001", Status: JobDone},
		{ID: "j000002", Status: JobQueued, Kind: "generate", Spec: spec},
		{ID: "j000002", Status: JobRunning},
		{ID: "j000003", Status: JobQueued, Kind: "generate", Spec: spec},
	}
	for _, r := range recs {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	states, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("replayed %d states, want 3", len(states))
	}
	want := map[string]string{"j000001": JobDone, "j000002": JobRunning, "j000003": JobQueued}
	for _, s := range states {
		if s.Status != want[s.ID] {
			t.Fatalf("job %s folded to %q, want %q", s.ID, s.Status, want[s.ID])
		}
		if s.Kind != "generate" || string(s.Spec) != string(spec) {
			t.Fatalf("job %s lost kind/spec: %+v", s.ID, s)
		}
		if s.Terminal() != (s.ID == "j000001") {
			t.Fatalf("job %s Terminal()=%v", s.ID, s.Terminal())
		}
	}
}

// TestJournalTornTail: a crash can truncate the final line mid-record;
// replay must skip it and keep everything before it.
func TestJournalTornTail(t *testing.T) {
	st := openTestStore(t)
	j := st.Journal()
	if err := j.Record(JobRecord{ID: "j000001", Status: JobQueued, Kind: "generate"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), "jobs", journalName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"j000002","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	states, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].ID != "j000001" {
		t.Fatalf("states %+v, want only the intact record", states)
	}
}

func TestJournalCompact(t *testing.T) {
	st := openTestStore(t)
	j := st.Journal()
	for _, r := range []JobRecord{
		{ID: "j000001", Status: JobQueued, Kind: "generate"},
		{ID: "j000001", Status: JobDone},
		{ID: "j000002", Status: JobQueued, Kind: "generate"},
		{ID: "j000003", Status: JobQueued, Kind: "generate"},
		{ID: "j000003", Status: JobFailed, Error: "boom"},
	} {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	dropped, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped %d, want 2 (done + failed)", dropped)
	}
	states, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].ID != "j000002" || states[0].Status != JobQueued {
		t.Fatalf("states %+v, want only j000002 queued", states)
	}
	// The journal stays appendable on the rewritten file.
	if err := j.Record(JobRecord{ID: "j000004", Status: JobQueued, Kind: "generate"}); err != nil {
		t.Fatal(err)
	}
	states, _ = j.Replay()
	if len(states) != 2 {
		t.Fatalf("post-compact append lost: %+v", states)
	}
}
