package subgraphs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// randomValidSwap draws a double-edge swap (u,v),(x,y) → (u,y),(x,v) that
// is structurally valid on g (distinct endpoints, replacement edges
// absent), or ok = false if the draw failed.
func randomValidSwap(rng *rand.Rand, g *graph.Graph) (u, v, x, y int, ok bool) {
	e1 := g.EdgeAt(rng.Intn(g.M()))
	e2 := g.EdgeAt(rng.Intn(g.M()))
	u, v = e1.U, e1.V
	x, y = e2.U, e2.V
	if rng.Intn(2) == 0 {
		u, v = v, u
	}
	if rng.Intn(2) == 0 {
		x, y = y, x
	}
	if u == x || u == y || v == x || v == y {
		return 0, 0, 0, 0, false
	}
	if g.HasEdge(u, y) || g.HasEdge(x, v) {
		return 0, 0, 0, 0, false
	}
	return u, v, x, y, true
}

// mapDeltaOfSwap computes the swap's census delta with the map-keyed
// Delta via apply-and-revert on a clone — the reference implementation.
func mapDeltaOfSwap(g *graph.Graph, deg []int, u, v, x, y int) *Census {
	work := g.Clone()
	d := NewDelta()
	d.RemoveEdge(work, deg, u, v)
	work.RemoveEdge(u, v)
	d.RemoveEdge(work, deg, x, y)
	work.RemoveEdge(x, y)
	d.AddEdge(work, deg, u, y)
	if err := work.AddEdge(u, y); err != nil {
		panic(err)
	}
	d.AddEdge(work, deg, x, v)
	if err := work.AddEdge(x, v); err != nil {
		panic(err)
	}
	c := NewCensus()
	d.ApplyTo(c)
	return c
}

func drain(t *Tracker, td *TrackerDelta) *Census {
	c := NewCensus()
	td.Drain(c)
	return c
}

// TestTrackerSwapDeltaMatchesDelta pits the read-only dense SwapDelta
// against the map-keyed apply-and-revert reference on random graphs and
// random swaps, across the merge path (default threshold), the bitset
// path (threshold 1 puts every node behind a bitset) and the packed-map
// fallback (denseLimit forced to 0).
func TestTrackerSwapDeltaMatchesDelta(t *testing.T) {
	oldLimit := denseLimit
	defer func() { denseLimit = oldLimit }()

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(24)
		m := 4 + rng.Intn(n*(n-1)/2-3)
		g := randomGraph(rng, n, m)
		deg := g.DegreeSequence()

		cg := g.CSR()
		denseLimit = oldLimit
		trMerge := NewTracker(cg, deg)
		trBits := NewTrackerThreshold(cg, deg, 1)
		denseLimit = 0
		trMap := NewTracker(cg, deg)
		denseLimit = oldLimit
		if trMap.dense || !trMerge.dense {
			t.Fatalf("dense-path selection broken: map=%v merge=%v", trMap.dense, trMerge.dense)
		}
		dMerge, dBits, dMap := trMerge.NewDelta(), trBits.NewDelta(), trMap.NewDelta()

		for tries := 0; tries < 30; tries++ {
			u, v, x, y, ok := randomValidSwap(rng, g)
			if !ok {
				continue
			}
			want := mapDeltaOfSwap(g, deg, u, v, x, y)
			trMerge.SwapDelta(dMerge, u, v, x, y)
			trBits.SwapDelta(dBits, u, v, x, y)
			trMap.SwapDelta(dMap, u, v, x, y)
			if !drain(trMerge, dMerge).Equal(want) {
				t.Logf("merge path mismatch: seed=%d swap=(%d,%d)(%d,%d)", seed, u, v, x, y)
				return false
			}
			if !drain(trBits, dBits).Equal(want) {
				t.Logf("bitset path mismatch: seed=%d swap=(%d,%d)(%d,%d)", seed, u, v, x, y)
				return false
			}
			if !drain(trMap, dMap).Equal(want) {
				t.Logf("map fallback mismatch: seed=%d swap=(%d,%d)(%d,%d)", seed, u, v, x, y)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTrackerSwapDeltaJDDMatchesSwapDelta pins the specialized
// symmetric-difference walk against the generic four-op SwapDelta on
// random JDD-matched swaps, in both 2K-preserving orientations
// (deg v == deg y directly; deg u == deg x via the flipped call), and
// across the merge, all-bitset, and packed-map fallback paths.
func TestTrackerSwapDeltaJDDMatchesSwapDelta(t *testing.T) {
	oldLimit := denseLimit
	defer func() { denseLimit = oldLimit }()

	rng := rand.New(rand.NewSource(23))
	matched := 0
	for round := 0; round < 200; round++ {
		n := 6 + rng.Intn(24)
		m := 5 + rng.Intn(n*(n-1)/2-4)
		g := randomGraph(rng, n, m)
		deg := g.DegreeSequence()

		cg := g.CSR()
		denseLimit = oldLimit
		trMerge := NewTracker(cg, deg)
		trBits := NewTrackerThreshold(cg, deg, 1)
		denseLimit = 0
		trMap := NewTracker(cg, deg)
		denseLimit = oldLimit
		trackers := []*Tracker{trMerge, trBits, trMap}
		generic := trMerge.NewDelta()

		for tries := 0; tries < 40; tries++ {
			u, v, x, y, ok := randomValidSwap(rng, g)
			if !ok {
				continue
			}
			if deg[v] != deg[y] && deg[u] != deg[x] {
				continue // not a JDD-preserving swap; SwapDeltaJDD does not apply
			}
			matched++
			trMerge.SwapDelta(generic, u, v, x, y)
			want := drain(trMerge, generic)
			for pi, tr := range trackers {
				td := tr.NewDelta()
				if deg[v] == deg[y] {
					tr.SwapDeltaJDD(td, u, v, x, y)
				} else {
					tr.SwapDeltaJDD(td, v, u, y, x)
				}
				if !drain(tr, td).Equal(want) {
					t.Fatalf("path=%d round=%d: SwapDeltaJDD != SwapDelta for swap (%d,%d)(%d,%d) deg=[%d %d %d %d]",
						pi, round, u, v, x, y, deg[u], deg[v], deg[x], deg[y])
				}
			}
		}
	}
	if matched < 100 {
		t.Fatalf("only %d JDD-matched swaps exercised — vacuous", matched)
	}
}

// TestTrackerSwapDeltaMatchesComposedOps verifies the virtual-state
// shortcut of SwapDelta (exclusion parameters instead of mirror
// mutation) against the literal composition: four single-edge deltas
// telescoped across actual mirror mutations, then reverted.
func TestTrackerSwapDeltaMatchesComposedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		n := 6 + rng.Intn(20)
		m := 5 + rng.Intn(n*(n-1)/2-4)
		g := randomGraph(rng, n, m)
		deg := g.DegreeSequence()
		cg := g.CSR()
		tr := NewTracker(cg, deg)
		td := tr.NewDelta()
		for tries := 0; tries < 20; tries++ {
			u, v, x, y, ok := randomValidSwap(rng, g)
			if !ok {
				continue
			}
			tr.SwapDelta(td, u, v, x, y)
			got := drain(tr, td)

			td.Reset()
			tr.RemoveEdgeDelta(td, u, v)
			cg.RemoveEdge(u, v)
			tr.Remove(u, v)
			tr.RemoveEdgeDelta(td, x, y)
			cg.RemoveEdge(x, y)
			tr.Remove(x, y)
			tr.AddEdgeDelta(td, u, y)
			mustAddCSR(t, cg, u, y)
			tr.Add(u, y)
			tr.AddEdgeDelta(td, x, v)
			mustAddCSR(t, cg, x, v)
			tr.Add(x, v)
			want := drain(tr, td)
			// Restore the graph and bitsets for the next iteration.
			cg.RemoveEdge(u, y)
			cg.RemoveEdge(x, v)
			mustAddCSR(t, cg, u, v)
			mustAddCSR(t, cg, x, y)
			tr.ApplySwap(u, y, x, v)

			if !got.Equal(want) {
				t.Fatalf("SwapDelta != composed ops: round=%d swap=(%d,%d)(%d,%d)", round, u, v, x, y)
			}
		}
	}
}

// TestTrackerApplySwapMaintainsMirror runs a chain of accepted swaps,
// updating graph and mirror together, and checks that SwapDelta computed
// from the evolved mirror still matches the map-keyed reference computed
// from the evolved graph — i.e. Add/Remove/ApplySwap keep the sorted
// lists and bitsets coherent.
func TestTrackerApplySwapMaintainsMirror(t *testing.T) {
	for _, threshold := range []int{1, 4, DefaultBitsetThreshold} {
		rng := rand.New(rand.NewSource(int64(threshold)))
		n, m := 24, 60
		g := randomGraph(rng, n, m)
		deg := g.DegreeSequence()
		cg := g.CSR()
		tr := NewTrackerThreshold(cg, deg, threshold)
		td := tr.NewDelta()
		accepted := 0
		for tries := 0; tries < 500 && accepted < 50; tries++ {
			u, v, x, y, ok := randomValidSwap(rng, g)
			if !ok {
				continue
			}
			want := mapDeltaOfSwap(g, deg, u, v, x, y)
			tr.SwapDelta(td, u, v, x, y)
			if !drain(tr, td).Equal(want) {
				t.Fatalf("threshold=%d: mirror diverged after %d swaps", threshold, accepted)
			}
			g.RemoveEdge(u, v)
			g.RemoveEdge(x, y)
			if err := g.AddEdge(u, y); err != nil {
				t.Fatal(err)
			}
			if err := g.AddEdge(x, v); err != nil {
				t.Fatal(err)
			}
			cg.RemoveEdge(u, v)
			cg.RemoveEdge(x, y)
			mustAddCSR(t, cg, u, y)
			mustAddCSR(t, cg, x, v)
			tr.ApplySwap(u, v, x, y)
			accepted++
		}
		if accepted < 50 {
			t.Fatalf("threshold=%d: only %d swaps accepted", threshold, accepted)
		}
		// Final coherence check: mirror adjacency == graph adjacency.
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && tr.has(u, v) != g.HasEdge(u, v) {
					t.Fatalf("threshold=%d: mirror(%d,%d)=%v graph=%v", threshold, u, v, tr.has(u, v), g.HasEdge(u, v))
				}
			}
		}
	}
}

// TestTrackerDeltaResetAndZero exercises the touched-list bookkeeping:
// counts that cancel to zero keep IsZero true, Reset clears state, and
// Drain leaves the accumulator empty.
func TestTrackerDeltaResetAndZero(t *testing.T) {
	g := build(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	deg := g.DegreeSequence()
	tr := NewTracker(g.CSR(), deg)
	td := tr.NewDelta()
	if !td.IsZero() {
		t.Fatal("fresh delta not zero")
	}
	tr.RemoveEdgeDelta(td, 0, 1)
	if td.IsZero() {
		t.Fatal("delta zero after removing an edge of C5")
	}
	tr.AddEdgeDelta(td, 0, 1)
	if !td.IsZero() {
		t.Fatal("remove+add of the same edge should cancel exactly")
	}
	tr.RemoveEdgeDelta(td, 0, 1)
	td.Reset()
	if !td.IsZero() {
		t.Fatal("Reset did not clear the delta")
	}
	tr.RemoveEdgeDelta(td, 0, 1)
	c := NewCensus()
	td.Drain(c)
	if !td.IsZero() {
		t.Fatal("Drain did not leave the delta empty")
	}
	c2 := NewCensus()
	td.Drain(c2)
	if len(c2.Wedges) != 0 || len(c2.Triangles) != 0 {
		t.Fatal("second Drain produced counts")
	}
}

// mustAddCSR inserts an edge that is known to be absent.
func mustAddCSR(t *testing.T, c *graph.CSR, u, v int) {
	t.Helper()
	if err := c.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerObservedPairSizingStaysDense builds a graph whose degree
// class count is far too high for the old nc³ accumulator sizing
// (nc³ > denseLimit) but whose observed class-pair structure is sparse,
// and checks the tracker still takes the dense path — then verifies
// SwapDelta correctness on it against the map-keyed reference, so the
// pair-indexed slots (and the overflow map for pairs a general swap
// introduces) are exercised, not just selected.
func TestTrackerObservedPairSizingStaysDense(t *testing.T) {
	// A chain of stars with strictly increasing arm counts: every hub is
	// its own degree class, leaves add one more, so nc ≈ #stars while
	// each class is adjacent to only a handful of classes.
	const stars = 110
	n := 0
	hubs := make([]int, stars)
	type e = [2]int
	var edges []e
	for i := 0; i < stars; i++ {
		hub := n
		hubs[i] = hub
		n++
		for a := 0; a < i+2; a++ {
			edges = append(edges, e{hub, n})
			n++
		}
		if i > 0 {
			edges = append(edges, e{hubs[i-1], hub})
		}
	}
	g := build(t, n, edges)
	deg := g.DegreeSequence()
	cg := g.CSR()
	tr := NewTracker(cg, deg)
	if nc := tr.nc; nc*nc*nc <= denseLimit {
		t.Fatalf("test graph too tame: nc=%d, nc³=%d <= denseLimit=%d", nc, nc*nc*nc, denseLimit)
	}
	if !tr.dense {
		t.Fatalf("tracker fell back to packed maps: nc=%d npairs=%d limit=%d",
			tr.nc, tr.npairs, denseLimit)
	}
	if tr.npairs*tr.nc > denseLimit {
		t.Fatalf("pair-sized accumulators exceed the limit: npairs=%d nc=%d", tr.npairs, tr.nc)
	}

	rng := rand.New(rand.NewSource(3))
	td := tr.NewDelta()
	checked := 0
	for tries := 0; tries < 400 && checked < 60; tries++ {
		u, v, x, y, ok := randomValidSwap(rng, g)
		if !ok {
			continue
		}
		want := mapDeltaOfSwap(g, deg, u, v, x, y)
		tr.SwapDelta(td, u, v, x, y)
		if !drain(tr, td).Equal(want) {
			t.Fatalf("SwapDelta mismatch on pair-indexed path: swap (%d,%d)(%d,%d)", u, v, x, y)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d swaps checked — vacuous", checked)
	}
}
