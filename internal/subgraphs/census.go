// Package subgraphs implements exact censuses of small connected subgraphs
// keyed by the degrees of their nodes — the raw material of the paper's
// 3K-distribution — together with incremental census deltas for
// single-edge changes, which make 3K-preserving and 3K-targeting rewiring
// tractable (a full recount per rewiring step would be hopeless).
//
// Wedges are counted as induced open two-paths: a path a–c–b where a and b
// are not adjacent. Triangles are 3-cliques. With this convention the
// paper's inclusion identity holds exactly: summing wedge and triangle
// counts around an edge recovers the joint degree distribution (each
// (k1,k2)-edge is covered (k1−1) times from its k1 side).
package subgraphs

import (
	"repro/internal/graph"
)

// WedgeKey identifies a wedge class by node degrees: a path end–center–end
// with end degrees KLo <= KHi (swapping the two ends is an isomorphism, so
// the key is canonical).
type WedgeKey struct {
	KLo, KCenter, KHi int
}

// NewWedgeKey canonicalizes (end1, center, end2) degree arguments.
func NewWedgeKey(kEnd1, kCenter, kEnd2 int) WedgeKey {
	if kEnd1 > kEnd2 {
		kEnd1, kEnd2 = kEnd2, kEnd1
	}
	return WedgeKey{kEnd1, kCenter, kEnd2}
}

// TriangleKey identifies a triangle class by sorted node degrees
// K1 <= K2 <= K3.
type TriangleKey struct {
	K1, K2, K3 int
}

// NewTriangleKey canonicalizes three degree arguments.
func NewTriangleKey(a, b, c int) TriangleKey {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return TriangleKey{a, b, c}
}

// Census holds degree-keyed counts of wedges and triangles — the paper's
// 3K-distribution in count form.
type Census struct {
	Wedges    map[WedgeKey]int64
	Triangles map[TriangleKey]int64
}

// NewCensus returns an empty census.
func NewCensus() *Census {
	return &Census{
		Wedges:    make(map[WedgeKey]int64),
		Triangles: make(map[TriangleKey]int64),
	}
}

// TotalWedges returns the total number of wedges across all classes.
func (c *Census) TotalWedges() int64 {
	var t int64
	for _, v := range c.Wedges {
		t += v
	}
	return t
}

// TotalTriangles returns the total number of triangles across all classes.
func (c *Census) TotalTriangles() int64 {
	var t int64
	for _, v := range c.Triangles {
		t += v
	}
	return t
}

// Clone returns a deep copy.
func (c *Census) Clone() *Census {
	out := &Census{
		Wedges:    make(map[WedgeKey]int64, len(c.Wedges)),
		Triangles: make(map[TriangleKey]int64, len(c.Triangles)),
	}
	for k, v := range c.Wedges {
		out.Wedges[k] = v
	}
	for k, v := range c.Triangles {
		out.Triangles[k] = v
	}
	return out
}

// Equal reports whether two censuses have identical nonzero counts.
func (c *Census) Equal(o *Census) bool {
	if !equalCounts(c.Wedges, o.Wedges) {
		return false
	}
	return equalCounts(c.Triangles, o.Triangles)
}

func equalCounts[K comparable](a, b map[K]int64) bool {
	for k, v := range a {
		if v != 0 && b[k] != v {
			return false
		}
	}
	for k, v := range b {
		if v != 0 && a[k] != v {
			return false
		}
	}
	return true
}

// Count computes the exact wedge/triangle census of s.
//
// It runs on the same machinery as the rewiring Tracker: node degrees are
// interned into a compact class table, counts accumulate in class-indexed
// dense arrays (packed-key maps above denseLimit), triangles come from a
// linear merge of sorted CSR neighbor windows per canonical edge — with
// O(1) bitset probes once an endpoint reaches DefaultBitsetThreshold —
// and wedges from per-center neighbor-class histograms, with each
// triangle's three adjacent end-pairs subtracted to keep the induced
// (open two-path) convention. Compared to the per-center pair enumeration
// it replaces, this eliminates the deg² HasEdge binary searches that made
// hub-heavy power-law graphs fall off a cliff at d=3 extraction.
func Count(s graph.Adjacency) *Census {
	n := s.N()
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = s.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Degree class table, ascending in degree so class order is degree
	// order (the wedge-end canonicalization relies on it).
	classOf := make([]int32, maxDeg+1)
	for i := range classOf {
		classOf[i] = -1
	}
	for _, d := range deg {
		classOf[d] = 0
	}
	classDeg := make([]int, 0, 16)
	for d, seen := range classOf {
		if seen == 0 {
			classOf[d] = int32(len(classDeg))
			classDeg = append(classDeg, d)
		}
	}
	nc := len(classDeg)
	cls := make([]int32, n)
	for u := 0; u < n; u++ {
		cls[u] = classOf[deg[u]]
	}
	// Bitsets for hub membership probes, as in the Tracker mirror.
	words := (n + 63) / 64
	bits := make([][]uint64, n)
	for u := 0; u < n; u++ {
		if deg[u] >= DefaultBitsetThreshold {
			bs := make([]uint64, words)
			for _, v := range s.Neighbors(u) {
				bs[uint(v)>>6] |= 1 << (uint(v) & 63)
			}
			bits[u] = bs
		}
	}

	// Dense accumulators carry touched-index lists so the final emission
	// costs O(touched), not an O(nc³) scan over multi-megabyte arrays. An
	// index may register more than once (a count cancelling to zero and
	// coming back); emission consumes entries destructively, so duplicates
	// cannot double-count — the TrackerDelta.Drain convention.
	dense := nc*nc*nc <= denseLimit
	var wArr, tArr []int64
	var wTouch, tTouch []int32
	var mW, mT map[uint64]int64
	if dense {
		wArr = make([]int64, nc*nc*nc)
		tArr = make([]int64, nc*nc*nc)
	} else {
		mW = make(map[uint64]int64)
		mT = make(map[uint64]int64)
	}
	addW := func(e1, cc, e2 int32, v int64) {
		lo, hi := e1, e2
		if lo > hi {
			lo, hi = hi, lo
		}
		if dense {
			idx := (int32(nc)*cc+lo)*int32(nc) + hi
			if wArr[idx] == 0 {
				wTouch = append(wTouch, idx)
			}
			wArr[idx] += v
		} else {
			mW[uint64(lo)<<42|uint64(cc)<<21|uint64(hi)] += v
		}
	}
	addT := func(a, b, c int32, v int64) {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		if dense {
			idx := (int32(nc)*a+b)*int32(nc) + c
			if tArr[idx] == 0 {
				tTouch = append(tTouch, idx)
			}
			tArr[idx] += v
		} else {
			mT[uint64(a)<<42|uint64(b)<<21|uint64(c)] += v
		}
	}

	// Triangles: every canonical edge (u,v), u < v, contributes its common
	// neighbors w > v, so each triangle {u<v<w} is found exactly once (from
	// the edge between its two smallest nodes). Each found triangle also
	// debits the three wedge classes its adjacent end-pairs would otherwise
	// inflate in the histogram pass below.
	triangle := func(u, v int, w int32) {
		cu, cv, cw := cls[u], cls[v], cls[w]
		addT(cu, cv, cw, 1)
		addW(cv, cu, cw, -1) // centered at u
		addW(cu, cv, cw, -1) // centered at v
		addW(cu, cw, cv, -1) // centered at w
	}
	for u := 0; u < n; u++ {
		adjU := s.Neighbors(u)
		for i, v32 := range adjU {
			v := int(v32)
			if v <= u {
				continue
			}
			// Common neighbors w > v of u and v. adjU[i+1:] is already the
			// window > v on u's side (sorted, and v sits at index i).
			wu := adjU[i+1:]
			adjV := s.Neighbors(v)
			wv := adjV[searchPast(adjV, v32):]
			switch {
			case bits[u] != nil && (bits[v] == nil || len(wv) <= len(wu)):
				for _, w := range wv {
					if bsHas(bits[u], w) {
						triangle(u, v, w)
					}
				}
			case bits[v] != nil:
				for _, w := range wu {
					if bsHas(bits[v], w) {
						triangle(u, v, w)
					}
				}
			default:
				for len(wu) > 0 && len(wv) > 0 {
					switch {
					case wu[0] < wv[0]:
						wu = wu[1:]
					case wv[0] < wu[0]:
						wv = wv[1:]
					default:
						triangle(u, v, wu[0])
						wu, wv = wu[1:], wv[1:]
					}
				}
			}
		}
	}

	// Wedges: per center, a neighbor-class histogram turns every unordered
	// neighbor pair into a class-pair count in O(deg + touched²) instead of
	// deg² adjacency probes; the triangle pass already subtracted the
	// adjacent pairs.
	cnt := make([]int64, nc)
	touched := make([]int32, 0, 64)
	for center := 0; center < n; center++ {
		nbrs := s.Neighbors(center)
		if len(nbrs) < 2 {
			continue
		}
		for _, v := range nbrs {
			c := cls[v]
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		cc := cls[center]
		for i, a := range touched {
			ha := cnt[a]
			if ha > 1 {
				addW(a, cc, a, ha*(ha-1)/2)
			}
			for _, b := range touched[i+1:] {
				addW(a, cc, b, ha*cnt[b])
			}
		}
		for _, a := range touched {
			cnt[a] = 0
		}
		touched = touched[:0]
	}

	// Decode class indices back to degree-keyed maps — the same boundary
	// conversion as TrackerDelta.Drain.
	c := &Census{
		Wedges:    make(map[WedgeKey]int64, len(wTouch)+len(mW)),
		Triangles: make(map[TriangleKey]int64, len(tTouch)+len(mT)),
	}
	if dense {
		for _, i := range wTouch {
			v := wArr[i]
			if v == 0 {
				continue
			}
			wArr[i] = 0
			idx := int(i)
			hi := idx % nc
			lo := idx / nc % nc
			cc := idx / (nc * nc)
			c.Wedges[WedgeKey{classDeg[lo], classDeg[cc], classDeg[hi]}] = v
		}
		for _, i := range tTouch {
			v := tArr[i]
			if v == 0 {
				continue
			}
			tArr[i] = 0
			idx := int(i)
			c3 := idx % nc
			c2 := idx / nc % nc
			c1 := idx / (nc * nc)
			c.Triangles[TriangleKey{classDeg[c1], classDeg[c2], classDeg[c3]}] = v
		}
		return c
	}
	for key, v := range mW {
		if v != 0 {
			c.Wedges[WedgeKey{classDeg[key>>42], classDeg[key>>21&packMask], classDeg[key&packMask]}] = v
		}
	}
	for key, v := range mT {
		if v != 0 {
			c.Triangles[TriangleKey{classDeg[key>>42], classDeg[key>>21&packMask], classDeg[key&packMask]}] = v
		}
	}
	return c
}

// bsHas probes membership of w in a node bitset.
func bsHas(bs []uint64, w int32) bool {
	return bs[uint(w)>>6]&(1<<(uint(w)&63)) != 0
}

// searchPast returns the index of the first element of the sorted slice a
// strictly greater than v.
func searchPast(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Delta accumulates signed census changes from a sequence of edge
// insertions and removals performed at fixed node degrees. It is the
// workhorse of 3K-preserving and 3K-targeting rewiring: a degree-preserving
// double-edge swap applies four single-edge changes whose deltas telescope
// to exactly (census after − census before).
//
// The degree slice passed to the mutation methods must be the (constant)
// degree sequence of the graph before and after the whole swap; the
// intermediate graph states have different instantaneous degrees, but the
// census keys of the initial and final graphs both use deg, so the
// telescoped sum is exact.
type Delta struct {
	Wedges    map[WedgeKey]int64
	Triangles map[TriangleKey]int64
}

// NewDelta returns an empty delta.
func NewDelta() *Delta {
	return &Delta{
		Wedges:    make(map[WedgeKey]int64),
		Triangles: make(map[TriangleKey]int64),
	}
}

// Reset clears the delta for reuse.
func (d *Delta) Reset() {
	clear(d.Wedges)
	clear(d.Triangles)
}

// IsZero reports whether every accumulated count change is zero — i.e.
// whether the edge changes recorded so far preserve the 3K-distribution.
func (d *Delta) IsZero() bool {
	for _, v := range d.Wedges {
		if v != 0 {
			return false
		}
	}
	for _, v := range d.Triangles {
		if v != 0 {
			return false
		}
	}
	return true
}

func (d *Delta) addWedge(kEnd1, kCenter, kEnd2 int, sign int64) {
	k := NewWedgeKey(kEnd1, kCenter, kEnd2)
	if v := d.Wedges[k] + sign; v == 0 {
		delete(d.Wedges, k)
	} else {
		d.Wedges[k] = v
	}
}

func (d *Delta) addTriangle(a, b, c int, sign int64) {
	k := NewTriangleKey(a, b, c)
	if v := d.Triangles[k] + sign; v == 0 {
		delete(d.Triangles, k)
	} else {
		d.Triangles[k] = v
	}
}

// AdjGraph is the read surface Delta needs from a mutable graph:
// neighbor iteration and membership probes. Both the map-adjacency
// graph.Graph (the retained differential-test reference) and the CSR
// working representation satisfy it.
type AdjGraph interface {
	VisitNeighbors(u int, f func(v int) bool)
	HasEdge(u, v int) bool
}

// RemoveEdge records the census change caused by deleting edge (u,v) from
// g. It must be called while the edge is still present; the caller then
// performs g.RemoveEdge(u, v).
func (d *Delta) RemoveEdge(g AdjGraph, deg []int, u, v int) {
	d.edgeChange(g, deg, u, v, -1)
}

// AddEdge records the census change caused by inserting edge (u,v) into g.
// It must be called while the edge is still absent; the caller then
// performs g.AddEdge(u, v).
func (d *Delta) AddEdge(g AdjGraph, deg []int, u, v int) {
	d.edgeChange(g, deg, u, v, +1)
}

// edgeChange enumerates the wedges and triangles whose existence toggles
// with edge (u,v): triangles through each common neighbor w (which trade
// places with the u–w–v wedge centered at w), wedges centered at u ending
// at v, and wedges centered at v ending at u.
func (d *Delta) edgeChange(g AdjGraph, deg []int, u, v int, sign int64) {
	du, dv := deg[u], deg[v]
	g.VisitNeighbors(u, func(w int) bool {
		if w == v {
			return true
		}
		if g.HasEdge(w, v) {
			// Common neighbor: triangle {u,v,w} toggles on, wedge u–w–v
			// (centered at w) toggles off, or vice versa.
			d.addTriangle(du, dv, deg[w], sign)
			d.addWedge(du, deg[w], dv, -sign)
		} else {
			// Wedge v–u–w centered at u.
			d.addWedge(dv, du, deg[w], sign)
		}
		return true
	})
	g.VisitNeighbors(v, func(w int) bool {
		if w == u || g.HasEdge(w, u) {
			return true // common neighbors already handled from u's side
		}
		// Wedge u–v–w centered at v.
		d.addWedge(du, dv, deg[w], sign)
		return true
	})
}

// ApplyTo folds the delta into census c in place.
func (d *Delta) ApplyTo(c *Census) {
	for k, v := range d.Wedges {
		if nv := c.Wedges[k] + v; nv == 0 {
			delete(c.Wedges, k)
		} else {
			c.Wedges[k] = nv
		}
	}
	for k, v := range d.Triangles {
		if nv := c.Triangles[k] + v; nv == 0 {
			delete(c.Triangles, k)
		} else {
			c.Triangles[k] = nv
		}
	}
}
