// Package subgraphs implements exact censuses of small connected subgraphs
// keyed by the degrees of their nodes — the raw material of the paper's
// 3K-distribution — together with incremental census deltas for
// single-edge changes, which make 3K-preserving and 3K-targeting rewiring
// tractable (a full recount per rewiring step would be hopeless).
//
// Wedges are counted as induced open two-paths: a path a–c–b where a and b
// are not adjacent. Triangles are 3-cliques. With this convention the
// paper's inclusion identity holds exactly: summing wedge and triangle
// counts around an edge recovers the joint degree distribution (each
// (k1,k2)-edge is covered (k1−1) times from its k1 side).
package subgraphs

import (
	"repro/internal/graph"
)

// WedgeKey identifies a wedge class by node degrees: a path end–center–end
// with end degrees KLo <= KHi (swapping the two ends is an isomorphism, so
// the key is canonical).
type WedgeKey struct {
	KLo, KCenter, KHi int
}

// NewWedgeKey canonicalizes (end1, center, end2) degree arguments.
func NewWedgeKey(kEnd1, kCenter, kEnd2 int) WedgeKey {
	if kEnd1 > kEnd2 {
		kEnd1, kEnd2 = kEnd2, kEnd1
	}
	return WedgeKey{kEnd1, kCenter, kEnd2}
}

// TriangleKey identifies a triangle class by sorted node degrees
// K1 <= K2 <= K3.
type TriangleKey struct {
	K1, K2, K3 int
}

// NewTriangleKey canonicalizes three degree arguments.
func NewTriangleKey(a, b, c int) TriangleKey {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return TriangleKey{a, b, c}
}

// Census holds degree-keyed counts of wedges and triangles — the paper's
// 3K-distribution in count form.
type Census struct {
	Wedges    map[WedgeKey]int64
	Triangles map[TriangleKey]int64
}

// NewCensus returns an empty census.
func NewCensus() *Census {
	return &Census{
		Wedges:    make(map[WedgeKey]int64),
		Triangles: make(map[TriangleKey]int64),
	}
}

// TotalWedges returns the total number of wedges across all classes.
func (c *Census) TotalWedges() int64 {
	var t int64
	for _, v := range c.Wedges {
		t += v
	}
	return t
}

// TotalTriangles returns the total number of triangles across all classes.
func (c *Census) TotalTriangles() int64 {
	var t int64
	for _, v := range c.Triangles {
		t += v
	}
	return t
}

// Clone returns a deep copy.
func (c *Census) Clone() *Census {
	out := &Census{
		Wedges:    make(map[WedgeKey]int64, len(c.Wedges)),
		Triangles: make(map[TriangleKey]int64, len(c.Triangles)),
	}
	for k, v := range c.Wedges {
		out.Wedges[k] = v
	}
	for k, v := range c.Triangles {
		out.Triangles[k] = v
	}
	return out
}

// Equal reports whether two censuses have identical nonzero counts.
func (c *Census) Equal(o *Census) bool {
	if !equalCounts(c.Wedges, o.Wedges) {
		return false
	}
	return equalCounts(c.Triangles, o.Triangles)
}

func equalCounts[K comparable](a, b map[K]int64) bool {
	for k, v := range a {
		if v != 0 && b[k] != v {
			return false
		}
	}
	for k, v := range b {
		if v != 0 && a[k] != v {
			return false
		}
	}
	return true
}

// Count computes the exact wedge/triangle census of s.
//
// Triangles: for every canonical edge (u,v) the common neighbors w > v are
// found by merging sorted adjacency windows, so each triangle {u<v<w} is
// counted exactly once. Wedges: for every center node, every unordered
// neighbor pair that is not adjacent contributes one wedge. The total work
// is O(sum_c deg(c)^2 · log) in the worst case, which is fine as a
// one-time extraction even for hub-heavy power-law graphs.
func Count(s *graph.Static) *Census {
	c := NewCensus()
	n := s.N()
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = s.Degree(u)
	}
	for center := 0; center < n; center++ {
		nbrs := s.Neighbors(center)
		for i := 0; i < len(nbrs); i++ {
			a := int(nbrs[i])
			for j := i + 1; j < len(nbrs); j++ {
				b := int(nbrs[j])
				if s.HasEdge(a, b) {
					// Triangle {center,a,b}: count once from its smallest node.
					if center < a {
						c.Triangles[NewTriangleKey(deg[center], deg[a], deg[b])]++
					}
				} else {
					c.Wedges[NewWedgeKey(deg[a], deg[center], deg[b])]++
				}
			}
		}
	}
	return c
}

// Delta accumulates signed census changes from a sequence of edge
// insertions and removals performed at fixed node degrees. It is the
// workhorse of 3K-preserving and 3K-targeting rewiring: a degree-preserving
// double-edge swap applies four single-edge changes whose deltas telescope
// to exactly (census after − census before).
//
// The degree slice passed to the mutation methods must be the (constant)
// degree sequence of the graph before and after the whole swap; the
// intermediate graph states have different instantaneous degrees, but the
// census keys of the initial and final graphs both use deg, so the
// telescoped sum is exact.
type Delta struct {
	Wedges    map[WedgeKey]int64
	Triangles map[TriangleKey]int64
}

// NewDelta returns an empty delta.
func NewDelta() *Delta {
	return &Delta{
		Wedges:    make(map[WedgeKey]int64),
		Triangles: make(map[TriangleKey]int64),
	}
}

// Reset clears the delta for reuse.
func (d *Delta) Reset() {
	clear(d.Wedges)
	clear(d.Triangles)
}

// IsZero reports whether every accumulated count change is zero — i.e.
// whether the edge changes recorded so far preserve the 3K-distribution.
func (d *Delta) IsZero() bool {
	for _, v := range d.Wedges {
		if v != 0 {
			return false
		}
	}
	for _, v := range d.Triangles {
		if v != 0 {
			return false
		}
	}
	return true
}

func (d *Delta) addWedge(kEnd1, kCenter, kEnd2 int, sign int64) {
	k := NewWedgeKey(kEnd1, kCenter, kEnd2)
	if v := d.Wedges[k] + sign; v == 0 {
		delete(d.Wedges, k)
	} else {
		d.Wedges[k] = v
	}
}

func (d *Delta) addTriangle(a, b, c int, sign int64) {
	k := NewTriangleKey(a, b, c)
	if v := d.Triangles[k] + sign; v == 0 {
		delete(d.Triangles, k)
	} else {
		d.Triangles[k] = v
	}
}

// RemoveEdge records the census change caused by deleting edge (u,v) from
// g. It must be called while the edge is still present; the caller then
// performs g.RemoveEdge(u, v).
func (d *Delta) RemoveEdge(g *graph.Graph, deg []int, u, v int) {
	d.edgeChange(g, deg, u, v, -1)
}

// AddEdge records the census change caused by inserting edge (u,v) into g.
// It must be called while the edge is still absent; the caller then
// performs g.AddEdge(u, v).
func (d *Delta) AddEdge(g *graph.Graph, deg []int, u, v int) {
	d.edgeChange(g, deg, u, v, +1)
}

// edgeChange enumerates the wedges and triangles whose existence toggles
// with edge (u,v): triangles through each common neighbor w (which trade
// places with the u–w–v wedge centered at w), wedges centered at u ending
// at v, and wedges centered at v ending at u.
func (d *Delta) edgeChange(g *graph.Graph, deg []int, u, v int, sign int64) {
	du, dv := deg[u], deg[v]
	g.VisitNeighbors(u, func(w int) bool {
		if w == v {
			return true
		}
		if g.HasEdge(w, v) {
			// Common neighbor: triangle {u,v,w} toggles on, wedge u–w–v
			// (centered at w) toggles off, or vice versa.
			d.addTriangle(du, dv, deg[w], sign)
			d.addWedge(du, deg[w], dv, -sign)
		} else {
			// Wedge v–u–w centered at u.
			d.addWedge(dv, du, deg[w], sign)
		}
		return true
	})
	g.VisitNeighbors(v, func(w int) bool {
		if w == u || g.HasEdge(w, u) {
			return true // common neighbors already handled from u's side
		}
		// Wedge u–v–w centered at v.
		d.addWedge(du, dv, deg[w], sign)
		return true
	})
}

// ApplyTo folds the delta into census c in place.
func (d *Delta) ApplyTo(c *Census) {
	for k, v := range d.Wedges {
		if nv := c.Wedges[k] + v; nv == 0 {
			delete(c.Wedges, k)
		} else {
			c.Wedges[k] = nv
		}
	}
	for k, v := range d.Triangles {
		if nv := c.Triangles[k] + v; nv == 0 {
			delete(c.Triangles, k)
		} else {
			c.Triangles[k] = nv
		}
	}
}
