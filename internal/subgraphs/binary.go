package subgraphs

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// The binary form of a census is the 3K section of a stored dK-profile
// (see internal/dk's profile container for the framing and checksum):
// wedge and triangle class records as plain uvarints, sorted by canonical
// degree key so the same census always encodes to the same bytes.
//
//	nWedges   uvarint
//	per wedge, sorted by (KCenter, KLo, KHi):
//	  kCenter kLo kHi count   (4 uvarints, count >= 1)
//	nTriangles uvarint
//	per triangle, sorted by (K1, K2, K3):
//	  k1 k2 k3 count          (4 uvarints, count >= 1)

// MarshalBinary encodes the census in its canonical binary form.
// Zero-count classes are omitted.
func (c *Census) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(nil), nil
}

// AppendBinary appends the canonical binary encoding of c to dst and
// returns the extended slice.
func (c *Census) AppendBinary(dst []byte) []byte {
	wedges := make([]WedgeKey, 0, len(c.Wedges))
	for k, v := range c.Wedges {
		if v != 0 {
			wedges = append(wedges, k)
		}
	}
	sort.Slice(wedges, func(i, j int) bool {
		a, b := wedges[i], wedges[j]
		if a.KCenter != b.KCenter {
			return a.KCenter < b.KCenter
		}
		if a.KLo != b.KLo {
			return a.KLo < b.KLo
		}
		return a.KHi < b.KHi
	})
	dst = binary.AppendUvarint(dst, uint64(len(wedges)))
	for _, k := range wedges {
		dst = binary.AppendUvarint(dst, uint64(k.KCenter))
		dst = binary.AppendUvarint(dst, uint64(k.KLo))
		dst = binary.AppendUvarint(dst, uint64(k.KHi))
		dst = binary.AppendUvarint(dst, uint64(c.Wedges[k]))
	}
	tris := make([]TriangleKey, 0, len(c.Triangles))
	for k, v := range c.Triangles {
		if v != 0 {
			tris = append(tris, k)
		}
	}
	sort.Slice(tris, func(i, j int) bool {
		a, b := tris[i], tris[j]
		if a.K1 != b.K1 {
			return a.K1 < b.K1
		}
		if a.K2 != b.K2 {
			return a.K2 < b.K2
		}
		return a.K3 < b.K3
	})
	dst = binary.AppendUvarint(dst, uint64(len(tris)))
	for _, k := range tris {
		dst = binary.AppendUvarint(dst, uint64(k.K1))
		dst = binary.AppendUvarint(dst, uint64(k.K2))
		dst = binary.AppendUvarint(dst, uint64(k.K3))
		dst = binary.AppendUvarint(dst, uint64(c.Triangles[k]))
	}
	return dst
}

// UnmarshalBinary decodes the encoding produced by MarshalBinary. Keys are
// re-canonicalized on the way in; duplicate classes and zero counts are
// rejected so every valid encoding has exactly one decoded form.
func (c *Census) UnmarshalBinary(data []byte) error {
	d := binDecoder{buf: data}
	nw := d.count("wedge classes")
	c.Wedges = make(map[WedgeKey]int64, min(nw, 1<<16))
	for i := 0; i < nw && d.err == nil; i++ {
		kc := d.count("wedge center degree")
		lo := d.count("wedge end degree")
		hi := d.count("wedge end degree")
		n := d.count64("wedge count")
		if d.err != nil {
			break
		}
		key := NewWedgeKey(lo, kc, hi)
		if _, dup := c.Wedges[key]; dup {
			return fmt.Errorf("subgraphs: duplicate wedge class %+v", key)
		}
		if n <= 0 {
			return fmt.Errorf("subgraphs: wedge class %+v count %d", key, n)
		}
		c.Wedges[key] = n
	}
	nt := d.count("triangle classes")
	c.Triangles = make(map[TriangleKey]int64, min(nt, 1<<16))
	for i := 0; i < nt && d.err == nil; i++ {
		k1 := d.count("triangle degree")
		k2 := d.count("triangle degree")
		k3 := d.count("triangle degree")
		n := d.count64("triangle count")
		if d.err != nil {
			break
		}
		key := NewTriangleKey(k1, k2, k3)
		if _, dup := c.Triangles[key]; dup {
			return fmt.Errorf("subgraphs: duplicate triangle class %+v", key)
		}
		if n <= 0 {
			return fmt.Errorf("subgraphs: triangle class %+v count %d", key, n)
		}
		c.Triangles[key] = n
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("subgraphs: %d trailing bytes after census", len(d.buf))
	}
	return nil
}

// binDecoder reads uvarints from a byte slice with sticky error handling.
type binDecoder struct {
	buf []byte
	err error
}

func (d *binDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("subgraphs: truncated %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a uvarint bounded to int.
func (d *binDecoder) count(what string) int {
	v := d.uvarint(what)
	if d.err == nil && v > uint64(int(^uint(0)>>1)) {
		d.err = fmt.Errorf("subgraphs: %s %d overflows int", what, v)
		return 0
	}
	return int(v)
}

// count64 reads a uvarint bounded to int64.
func (d *binDecoder) count64(what string) int64 {
	v := d.uvarint(what)
	if d.err == nil && v > uint64(^uint64(0)>>1) {
		d.err = fmt.Errorf("subgraphs: %s %d overflows int64", what, v)
		return 0
	}
	return int64(v)
}
