package subgraphs

import "repro/internal/graph"

// Size4Census counts the six connected non-isomorphic graphs on four
// nodes (OEIS A001349: 1, 1, 2, 6, ...), the building blocks of the
// paper's 4K-distribution. Counts are of subgraphs (not necessarily
// induced), the convention under which the closed-form identities below
// hold; the package documentation for Count describes the induced
// convention used at d = 3.
//
// The six classes, in the paper's numbering of "all non-isomorphic graphs
// of size 4 numbered by 1..6":
//
//	Path4    a–b–c–d            (path on 4 nodes)
//	Claw     K1,3               (star)
//	Cycle4   a–b–c–d–a          (4-cycle)
//	Paw      triangle + pendant edge
//	Diamond  K4 minus one edge
//	K4       complete graph on 4 nodes
type Size4Census struct {
	Path4   int64
	Claw    int64
	Cycle4  int64
	Paw     int64
	Diamond int64
	K4      int64
}

// CountSize4 computes the size-4 subgraph census of s.
//
// It uses standard counting identities driven by one wedge enumeration
// (for co-degrees) and one triangle enumeration:
//
//	claws    = Σ_v C(d_v, 3)
//	paths4   = Σ_{(u,v)∈E} (d_u−1)(d_v−1) − 3·triangles
//	cycles4  = (1/2) Σ_{u<v} C(codeg(u,v), 2)
//	paws     = Σ_triangles Σ_{v∈T} (d_v − 2)
//	diamonds = Σ_{(u,v)∈E} C(codeg(u,v), 2) restricted to adjacent pairs... see code
//	k4       = per-edge common-neighbor pair adjacency check / 6
//
// Co-degree accumulation costs O(Σ_c deg(c)²) memory-light passes; this is
// a diagnostic intended for small and mid-sized graphs.
func CountSize4(s *graph.Static) Size4Census {
	var c Size4Census
	n := s.N()
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = s.Degree(u)
	}

	// Claws: choose 3 neighbors of a center.
	for v := 0; v < n; v++ {
		d := int64(deg[v])
		c.Claw += d * (d - 1) * (d - 2) / 6
	}

	// Triangles (plain count) and paws.
	var triangles int64
	for u := 0; u < n; u++ {
		nu := s.Neighbors(u)
		for _, v32 := range nu {
			v := int(v32)
			if v <= u {
				continue
			}
			for _, w32 := range s.Neighbors(v) {
				w := int(w32)
				if w <= v {
					continue
				}
				if s.HasEdge(u, w) {
					triangles++
					c.Paw += int64(deg[u]-2) + int64(deg[v]-2) + int64(deg[w]-2)
				}
			}
		}
	}

	// Paths on 4 nodes.
	for u := 0; u < n; u++ {
		for _, v32 := range s.Neighbors(u) {
			v := int(v32)
			if v <= u {
				continue
			}
			c.Path4 += int64(deg[u]-1) * int64(deg[v]-1)
		}
	}
	c.Path4 -= 3 * triangles

	// Co-degree based counts: cycles4, diamonds, K4.
	// codeg(a,b) accumulated by enumerating wedges a–c–b.
	codeg := make(map[[2]int32]int32)
	for center := 0; center < n; center++ {
		nbrs := s.Neighbors(center)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				key := [2]int32{nbrs[i], nbrs[j]}
				codeg[key]++
			}
		}
	}
	for key, cd := range codeg {
		pairs := int64(cd) * int64(cd-1) / 2
		c.Cycle4 += pairs
		if s.HasEdge(int(key[0]), int(key[1])) {
			c.Diamond += pairs
		}
	}
	c.Cycle4 /= 2

	// K4: for each edge, pairs of common neighbors that are themselves
	// adjacent; every K4 is found once per its 6 edges.
	var k4 int64
	common := make([]int32, 0, 64)
	for u := 0; u < n; u++ {
		for _, v32 := range s.Neighbors(u) {
			v := int(v32)
			if v <= u {
				continue
			}
			common = common[:0]
			for _, w := range s.Neighbors(u) {
				if int(w) != v && s.HasEdge(v, int(w)) {
					common = append(common, w)
				}
			}
			for i := 0; i < len(common); i++ {
				for j := i + 1; j < len(common); j++ {
					if s.HasEdge(int(common[i]), int(common[j])) {
						k4++
					}
				}
			}
		}
	}
	c.K4 = k4 / 6

	// A diamond was counted once per its central (shared) edge, but the
	// C(codeg,2) sum over adjacent pairs also counts each K4 once per each
	// of its 6 edges with each of its C(2,2)=1 opposite pairs... K4
	// contains diamonds as subgraphs: keep the non-induced convention, so
	// no correction is applied. Diamond here = pairs of triangles sharing
	// an edge.
	return c
}
