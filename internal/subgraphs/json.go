package subgraphs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The JSON form of a census lists wedge and triangle classes as explicit
// records sorted by their canonical degree keys, rather than as maps:
// encoding/json cannot key objects by struct types, and sorted arrays make
// the encoding stable — the same census always marshals to the same bytes,
// which the HTTP service relies on for cacheable, diffable responses.

// wedgeJSON is one wedge class in the stable JSON encoding.
type wedgeJSON struct {
	KLo     int   `json:"k_lo"`
	KCenter int   `json:"k_center"`
	KHi     int   `json:"k_hi"`
	Count   int64 `json:"count"`
}

// triangleJSON is one triangle class in the stable JSON encoding.
type triangleJSON struct {
	K1    int   `json:"k1"`
	K2    int   `json:"k2"`
	K3    int   `json:"k3"`
	Count int64 `json:"count"`
}

// censusJSON is the wire form of Census.
type censusJSON struct {
	Wedges    []wedgeJSON    `json:"wedges"`
	Triangles []triangleJSON `json:"triangles"`
}

// MarshalJSON encodes the census as sorted wedge and triangle class
// arrays. The output is deterministic: classes appear in increasing key
// order and zero-count classes are omitted.
func (c *Census) MarshalJSON() ([]byte, error) {
	out := censusJSON{Wedges: []wedgeJSON{}, Triangles: []triangleJSON{}}
	for k, v := range c.Wedges {
		if v != 0 {
			out.Wedges = append(out.Wedges, wedgeJSON{k.KLo, k.KCenter, k.KHi, v})
		}
	}
	sort.Slice(out.Wedges, func(i, j int) bool {
		a, b := out.Wedges[i], out.Wedges[j]
		if a.KCenter != b.KCenter {
			return a.KCenter < b.KCenter
		}
		if a.KLo != b.KLo {
			return a.KLo < b.KLo
		}
		return a.KHi < b.KHi
	})
	for k, v := range c.Triangles {
		if v != 0 {
			out.Triangles = append(out.Triangles, triangleJSON{k.K1, k.K2, k.K3, v})
		}
	}
	sort.Slice(out.Triangles, func(i, j int) bool {
		a, b := out.Triangles[i], out.Triangles[j]
		if a.K1 != b.K1 {
			return a.K1 < b.K1
		}
		if a.K2 != b.K2 {
			return a.K2 < b.K2
		}
		return a.K3 < b.K3
	})
	return json.Marshal(out)
}

// UnmarshalJSON decodes the sorted-array census encoding produced by
// MarshalJSON. Keys are re-canonicalized on the way in, so hand-written
// JSON with unsorted degree triples is accepted.
func (c *Census) UnmarshalJSON(b []byte) error {
	var in censusJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	c.Wedges = make(map[WedgeKey]int64, len(in.Wedges))
	c.Triangles = make(map[TriangleKey]int64, len(in.Triangles))
	for _, w := range in.Wedges {
		key := NewWedgeKey(w.KLo, w.KCenter, w.KHi)
		if _, dup := c.Wedges[key]; dup {
			return fmt.Errorf("subgraphs: duplicate wedge class %+v in JSON", key)
		}
		if w.Count != 0 {
			c.Wedges[key] = w.Count
		}
	}
	for _, tr := range in.Triangles {
		key := NewTriangleKey(tr.K1, tr.K2, tr.K3)
		if _, dup := c.Triangles[key]; dup {
			return fmt.Errorf("subgraphs: duplicate triangle class %+v in JSON", key)
		}
		if tr.Count != 0 {
			c.Triangles[key] = tr.Count
		}
	}
	return nil
}
