// Census tracking for the depth-3 rewiring hot path.
//
// The map-keyed Delta in census.go is exact but pays a map-hash on every
// wedge/triangle class it touches and a HasEdge map probe per neighbor —
// per-proposal costs that dominate 3K-preserving rewiring, where almost
// every proposal is evaluated and rejected. Tracker is the dense
// replacement: degrees are interned into a compact class table once, count
// changes accumulate in degree-class-indexed arrays (maps appear only at
// the Census boundary, in Drain), and common-neighbor classification runs
// directly on the CSR's sorted neighbor windows — a linear merge for
// ordinary nodes, O(1) bitset probes for nodes above a degree threshold.
// The CSR working representation IS the tracker's sorted adjacency; no
// second mirror copy is maintained.
//
// Because SwapDelta is read-only (edge toggles are virtualized instead of
// applied), many candidate swaps can be evaluated concurrently against one
// Tracker, each into its own TrackerDelta — the foundation of the batched
// parallel proposal loop in internal/generate.
package subgraphs

import (
	"repro/internal/graph"
)

// DefaultBitsetThreshold is the fixed degree at or above which a node
// additionally keeps a bitset for O(1) membership probes. Below it,
// sorted-merge and binary search win on cache locality.
const DefaultBitsetThreshold = 64

// denseLimit bounds the class-indexed accumulator size (entries per
// shape) and the ordered class-pair lookup table (nc² entries). Dense
// accumulators are sized by *observed* adjacent class pairs — npairs·nc
// entries, not nc³ — so even graphs with hundreds of degree classes
// stay on the dense path; genuinely extreme degree diversity falls back
// to packed-key maps, trading speed for bounded memory. Variable so
// tests can force the fallback path.
var denseLimit = 1 << 20

// Tracker holds the shared, read-only-during-evaluation state for dense
// census deltas over a graph with a fixed degree sequence: the degree
// class table, the observed class-pair index, and per-hub bitsets. The
// degree sequence must be constant across all tracked mutations (true
// for double-edge swaps, the only moves evaluated at depth 3), because
// census keys of intermediate states use the fixed degrees — the same
// convention as Delta.
//
// Adjacency reads go straight to the CSR's sorted windows, so the graph
// itself is the mirror. The bitsets are the only derived adjacency
// state: every mutation of the underlying CSR must be paired with the
// matching Add/Remove/ApplySwap call to keep them coherent.
type Tracker struct {
	g         *graph.CSR
	nc        int        // degree class count
	dense     bool       // pair-sized arrays fit denseLimit, else map fallback
	cls       []int32    // node -> degree class (ascending in degree)
	classDeg  []int      // degree class -> degree
	pid       []int32    // ordered class pair (a*nc+b) -> dense pair id, -1 unobserved
	pairA     []int32    // pair id -> first class of the ordered pair
	pairB     []int32    // pair id -> second class of the ordered pair
	npairs    int        // ordered observed pair count
	bits      [][]uint64 // per-node bitset for threshold-degree nodes, else nil
	words     int        // bitset length in uint64 words
	threshold int
}

// NewTracker builds a Tracker over g with the fixed degree sequence deg
// (which must equal g.DegreeSequence()) and the default bitset threshold.
func NewTracker(g *graph.CSR, deg []int) *Tracker {
	return NewTrackerThreshold(g, deg, DefaultBitsetThreshold)
}

// NewTrackerThreshold is NewTracker with an explicit bitset degree
// threshold (0 or negative gives every non-isolated node a bitset).
func NewTrackerThreshold(g *graph.CSR, deg []int, threshold int) *Tracker {
	n := g.N()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	classOf := make([]int32, maxDeg+1)
	for i := range classOf {
		classOf[i] = -1
	}
	for _, d := range deg {
		classOf[d] = 0
	}
	classDeg := make([]int, 0, 16)
	for d, seen := range classOf {
		if seen == 0 {
			classOf[d] = int32(len(classDeg))
			classDeg = append(classDeg, d)
		}
	}
	nc := len(classDeg)
	t := &Tracker{
		g:         g,
		nc:        nc,
		cls:       make([]int32, n),
		classDeg:  classDeg,
		bits:      make([][]uint64, n),
		words:     (n + 63) / 64,
		threshold: threshold,
	}
	for u := 0; u < n; u++ {
		t.cls[u] = classOf[deg[u]]
		if deg[u] >= threshold {
			bs := make([]uint64, t.words)
			for _, v := range g.Neighbors(u) {
				bs[uint(v)>>6] |= 1 << (uint(v) & 63)
			}
			t.bits[u] = bs
		}
	}
	// Index the observed adjacent class pairs, both orders. JDD-preserving
	// swaps can only ever create edges whose class pair is already
	// observed, so the dense accumulators need npairs·nc entries instead
	// of nc³; anything that does introduce a fresh pair (general swaps,
	// Add) routes through the per-delta overflow map.
	if nc*nc <= denseLimit {
		t.pid = make([]int32, nc*nc)
		for i := range t.pid {
			t.pid[i] = -1
		}
		for u := 0; u < n; u++ {
			cu := t.cls[u]
			for _, v := range g.Neighbors(u) {
				if int(v) < u {
					continue
				}
				cv := t.cls[v]
				t.observePair(cu, cv)
				if cu != cv {
					t.observePair(cv, cu)
				}
			}
		}
		t.dense = t.npairs*nc <= denseLimit
	}
	return t
}

// observePair registers the ordered class pair (a,b) if unseen.
func (t *Tracker) observePair(a, b int32) {
	k := int(a)*t.nc + int(b)
	if t.pid[k] < 0 {
		t.pid[k] = int32(t.npairs)
		t.pairA = append(t.pairA, a)
		t.pairB = append(t.pairB, b)
		t.npairs++
	}
}

// adj returns u's sorted neighbor window — the CSR arena itself.
func (t *Tracker) adj(u int) []int32 { return t.g.Neighbors(u) }

// has reports adjacency, preferring a bitset probe from either side and
// falling back to binary search in the shorter sorted window.
func (t *Tracker) has(a, b int) bool {
	if bs := t.bits[b]; bs != nil {
		return bs[uint(a)>>6]&(1<<(uint(a)&63)) != 0
	}
	if bs := t.bits[a]; bs != nil {
		return bs[uint(b)>>6]&(1<<(uint(b)&63)) != 0
	}
	s, x := t.adj(a), int32(b)
	if sb := t.adj(b); len(sb) < len(s) {
		s, x = sb, int32(a)
	}
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Add syncs the bitsets with an insertion of edge (u,v) into the CSR.
// The caller performs (or has performed) the matching graph mutation —
// the windows themselves are the graph's.
func (t *Tracker) Add(u, v int) {
	if bs := t.bits[u]; bs != nil {
		bs[uint(v)>>6] |= 1 << (uint(v) & 63)
	}
	if bs := t.bits[v]; bs != nil {
		bs[uint(u)>>6] |= 1 << (uint(u) & 63)
	}
}

// Remove syncs the bitsets with a deletion of edge (u,v) from the CSR.
func (t *Tracker) Remove(u, v int) {
	if bs := t.bits[u]; bs != nil {
		bs[uint(v)>>6] &^= 1 << (uint(v) & 63)
	}
	if bs := t.bits[v]; bs != nil {
		bs[uint(u)>>6] &^= 1 << (uint(u) & 63)
	}
}

// ApplySwap commits the double-edge swap (u,v),(x,y) → (u,y),(x,v) to
// the bitsets after the caller accepted it (and applied it to the CSR).
func (t *Tracker) ApplySwap(u, v, x, y int) {
	t.Remove(u, v)
	t.Remove(x, y)
	t.Add(u, y)
	t.Add(x, v)
}

// TrackerDelta accumulates signed census count changes in degree-class
// space. One TrackerDelta may be reused across many evaluations (Reset,
// or SwapDelta which resets implicitly); concurrent evaluations need one
// TrackerDelta per goroutine, all sharing the same Tracker.
type TrackerDelta struct {
	t *Tracker
	// Dense path: accumulators indexed by (observed ordered class pair,
	// third class) — npairs·nc entries — plus touched-index lists so
	// Reset and IsZero cost O(touched), not O(size). An index may appear
	// in the list more than once (a count that cancels to zero and is
	// touched again re-registers); IsZero and Reset tolerate that, and
	// Drain consumes entries destructively so duplicates cannot
	// double-count. Classes whose pair is not in the observed-pair index
	// overflow into lazily allocated packed-key maps, so generality is
	// kept without paying nc³ memory.
	wedges, tris   []int64
	wTouch, tTouch []int32
	mWedges, mTris map[uint64]int64 // fallback when !t.dense, overflow when dense
}

// NewDelta returns an empty accumulator bound to t.
func (t *Tracker) NewDelta() *TrackerDelta {
	d := &TrackerDelta{t: t}
	if t.dense {
		size := t.npairs * t.nc
		d.wedges = make([]int64, size)
		d.tris = make([]int64, size)
	} else {
		d.mWedges = make(map[uint64]int64)
		d.mTris = make(map[uint64]int64)
	}
	return d
}

// Reset clears the accumulator for reuse.
func (d *TrackerDelta) Reset() {
	if d.t.dense {
		for _, i := range d.wTouch {
			d.wedges[i] = 0
		}
		for _, i := range d.tTouch {
			d.tris[i] = 0
		}
		d.wTouch = d.wTouch[:0]
		d.tTouch = d.tTouch[:0]
	}
	if d.mWedges != nil {
		clear(d.mWedges)
	}
	if d.mTris != nil {
		clear(d.mTris)
	}
}

// IsZero reports whether every accumulated count change is zero — i.e.
// whether the recorded edge changes preserve the 3K-distribution.
func (d *TrackerDelta) IsZero() bool {
	if d.t.dense {
		for _, i := range d.wTouch {
			if d.wedges[i] != 0 {
				return false
			}
		}
		for _, i := range d.tTouch {
			if d.tris[i] != 0 {
				return false
			}
		}
	}
	return len(d.mWedges) == 0 && len(d.mTris) == 0
}

// Drain folds the accumulated changes into census c — the one place
// class indices convert back to degree-keyed maps — and leaves the
// accumulator empty (it consumes entries so that duplicate touched
// indices cannot double-apply).
func (d *TrackerDelta) Drain(c *Census) {
	t := d.t
	if t.dense {
		nc := t.nc
		for _, i := range d.wTouch {
			v := d.wedges[i]
			if v == 0 {
				continue
			}
			d.wedges[i] = 0
			hi := int(i) % nc
			p := int(i) / nc
			cc, lo := t.pairA[p], t.pairB[p]
			k := WedgeKey{t.classDeg[lo], t.classDeg[cc], t.classDeg[hi]}
			if nv := c.Wedges[k] + v; nv == 0 {
				delete(c.Wedges, k)
			} else {
				c.Wedges[k] = nv
			}
		}
		for _, i := range d.tTouch {
			v := d.tris[i]
			if v == 0 {
				continue
			}
			d.tris[i] = 0
			c3 := int(i) % nc
			p := int(i) / nc
			c1, c2 := t.pairA[p], t.pairB[p]
			k := TriangleKey{t.classDeg[c1], t.classDeg[c2], t.classDeg[c3]}
			if nv := c.Triangles[k] + v; nv == 0 {
				delete(c.Triangles, k)
			} else {
				c.Triangles[k] = nv
			}
		}
		d.wTouch = d.wTouch[:0]
		d.tTouch = d.tTouch[:0]
	}
	for key, v := range d.mWedges {
		k := WedgeKey{t.classDeg[key>>42], t.classDeg[key>>21&packMask], t.classDeg[key&packMask]}
		if nv := c.Wedges[k] + v; nv == 0 {
			delete(c.Wedges, k)
		} else {
			c.Wedges[k] = nv
		}
	}
	for key, v := range d.mTris {
		k := TriangleKey{t.classDeg[key>>42], t.classDeg[key>>21&packMask], t.classDeg[key&packMask]}
		if nv := c.Triangles[k] + v; nv == 0 {
			delete(c.Triangles, k)
		} else {
			c.Triangles[k] = nv
		}
	}
	if d.mWedges != nil {
		clear(d.mWedges)
	}
	if d.mTris != nil {
		clear(d.mTris)
	}
}

const packMask = 1<<21 - 1

// addWedge accumulates a wedge class change: ends e1, e2 (canonicalized;
// classDeg is ascending so class order is degree order), center cc. On
// the dense path the slot is indexed by the observed ordered pair
// (center, low end) — both of the wedge's edges have observed class
// pairs, so the lookup only misses when an edge change introduced a
// class pair absent from the initial graph; those overflow to the map.
func (d *TrackerDelta) addWedge(e1, cc, e2 int32, sign int64) {
	lo, hi := e1, e2
	if lo > hi {
		lo, hi = hi, lo
	}
	if d.t.dense {
		if p := d.t.pid[int(cc)*d.t.nc+int(lo)]; p >= 0 {
			idx := p*int32(d.t.nc) + hi
			if d.wedges[idx] == 0 {
				d.wTouch = append(d.wTouch, idx)
			}
			d.wedges[idx] += sign
			return
		}
		if d.mWedges == nil {
			d.mWedges = make(map[uint64]int64)
		}
	}
	key := uint64(lo)<<42 | uint64(cc)<<21 | uint64(hi)
	if v := d.mWedges[key] + sign; v == 0 {
		delete(d.mWedges, key)
	} else {
		d.mWedges[key] = v
	}
}

// addTriangle accumulates a triangle class change for corners a, b, c.
// Dense slots are indexed by the observed ordered pair (a,b) of the
// sorted corner classes; a triangle's corners are pairwise adjacent, so
// the pair is observed unless an edge change introduced a new pair.
func (d *TrackerDelta) addTriangle(a, b, c int32, sign int64) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	if d.t.dense {
		if p := d.t.pid[int(a)*d.t.nc+int(b)]; p >= 0 {
			idx := p*int32(d.t.nc) + c
			if d.tris[idx] == 0 {
				d.tTouch = append(d.tTouch, idx)
			}
			d.tris[idx] += sign
			return
		}
		if d.mTris == nil {
			d.mTris = make(map[uint64]int64)
		}
	}
	key := uint64(a)<<42 | uint64(b)<<21 | uint64(c)
	if v := d.mTris[key] + sign; v == 0 {
		delete(d.mTris, key)
	} else {
		d.mTris[key] = v
	}
}

// AddEdgeDelta accumulates the census change of inserting edge (u,v)
// into the graph's current state ((u,v) must be absent). It does not
// reset d first, so single-edge deltas compose by telescoping.
func (t *Tracker) AddEdgeDelta(d *TrackerDelta, u, v int) {
	t.edgeChange(d, u, v, +1, -1, -1)
}

// RemoveEdgeDelta accumulates the census change of deleting edge (u,v)
// ((u,v) must be present in the graph).
func (t *Tracker) RemoveEdgeDelta(d *TrackerDelta, u, v int) {
	t.edgeChange(d, u, v, -1, -1, -1)
}

// SwapDelta resets d and accumulates the exact census change of the
// double-edge swap (u,v),(x,y) → (u,y),(x,v), read-only: the four edge
// toggles are virtualized against the graph instead of applied, so
// concurrent SwapDelta calls on one Tracker are safe (one TrackerDelta
// per goroutine). Preconditions (the structural validity the rewiring
// proposal already checks): u,v,x,y distinct, (u,v) and (x,y) present,
// (u,y) and (x,v) absent.
func (t *Tracker) SwapDelta(d *TrackerDelta, u, v, x, y int) {
	d.Reset()
	// Telescoped single-edge changes; each op's virtual state differs
	// from the graph only on swap pairs, and only pairs touching the
	// op's own endpoints matter, giving one excluded neighbor per side:
	//   remove (u,v): graph state exactly.
	//   remove (x,y): (u,v) gone, but it touches neither x nor y.
	//   add (u,y):    (u,v),(x,y) gone → v not a neighbor of u, x not of y.
	//   add (x,v):    likewise y not a neighbor of x, u not of v;
	//                 (u,y) now present but touches neither x nor v.
	t.edgeChange(d, u, v, -1, -1, -1)
	t.edgeChange(d, x, y, -1, -1, -1)
	t.edgeChange(d, u, y, +1, v, x)
	t.edgeChange(d, x, v, +1, y, u)
}

// SwapDeltaJDD is SwapDelta specialized to the orientation in which the
// swap trivially preserves the joint degree distribution because
// cls[v] == cls[y] (for the other 2K-preserving orientation,
// cls[u] == cls[x], call it with the flipped arguments (v,u,y,x) — the
// same swap by symmetry). With the degrees of the replaced endpoints
// equal, the four telescoped edge ops of SwapDelta cancel class-wise
// everywhere except on the symmetric difference of N(v) and N(y): a
// common neighbor w sees edge w–v's and w–y's contexts trade places at
// identical class keys, so the whole merge over N(u) and N(x) — the
// expensive side when u or x is a hub — disappears, leaving one merged
// walk over adj(v) and adj(y) with membership probes only on the
// symmetric difference. Same preconditions as SwapDelta.
func (t *Tracker) SwapDeltaJDD(d *TrackerDelta, u, v, x, y int) {
	d.Reset()
	a, b, c := t.cls[u], t.cls[v], t.cls[x]
	V, Y := t.adj(v), t.adj(y)
	i, j := 0, 0
	for i < len(V) || j < len(Y) {
		var w int32
		var ds int64 // +1: w ∈ N(y) only; -1: w ∈ N(v) only
		switch {
		case j >= len(Y) || (i < len(V) && V[i] < Y[j]):
			w, ds = V[i], -1
			i++
		case i >= len(V) || Y[j] < V[i]:
			w, ds = Y[j], +1
			j++
		default: // common neighbor of v and y: exact cancellation
			i++
			j++
			continue
		}
		switch int(w) {
		case u, x:
			// u appears only on the V side (the removed edge u–v; (u,y) is
			// absent) and x only on the Y side — both fully excluded by the
			// ops' exclusion parameters.
			continue
		case v, y:
			// Edge v–y exists: only the b-centered wedge ends survive.
			d.addWedge(a, b, b, ds)
			d.addWedge(c, b, b, -ds)
			continue
		}
		cw := t.cls[w]
		if t.has(int(w), u) {
			d.addTriangle(a, b, cw, ds)
			d.addWedge(a, cw, b, -ds)
			d.addWedge(b, a, cw, -ds)
		} else {
			d.addWedge(a, b, cw, ds)
		}
		if t.has(int(w), x) {
			d.addTriangle(c, b, cw, -ds)
			d.addWedge(c, cw, b, ds)
			d.addWedge(b, c, cw, ds)
		} else {
			d.addWedge(c, b, cw, -ds)
		}
	}
}

// Has reports whether edge (a,b) is present — an O(1) bitset probe when
// either endpoint is above the degree threshold, a binary search in the
// shorter sorted window otherwise. It mirrors graph.HasEdge exactly as
// long as every graph mutation was paired with the matching bitset
// update.
func (t *Tracker) Has(a, b int) bool {
	return t.has(a, b)
}

// edgeChange enumerates the wedges and triangles whose existence toggles
// with edge (a,b) — the same classification as Delta.edgeChange, in
// class space: triangles through common neighbors (trading places with
// the wedge centered at the common neighbor), and wedges centered at a
// and at b through exclusive neighbors. exA/exB (-1 = none) name one
// node virtually not adjacent to a (resp. b), which is how SwapDelta
// expresses intermediate states without mutating the graph.
func (t *Tracker) edgeChange(d *TrackerDelta, a, b int, sign int64, exA, exB int) {
	if t.bits[a] == nil && t.bits[b] == nil {
		t.mergeChange(d, a, b, sign, exA, exB)
		return
	}
	ca, cb := t.cls[a], t.cls[b]
	for _, w32 := range t.adj(a) {
		w := int(w32)
		if w == b || w == exA {
			continue
		}
		if w != exB && t.has(w, b) {
			d.addTriangle(ca, cb, t.cls[w], sign)
			d.addWedge(ca, t.cls[w], cb, -sign)
		} else {
			d.addWedge(cb, ca, t.cls[w], sign)
		}
	}
	for _, w32 := range t.adj(b) {
		w := int(w32)
		if w == a || w == exB {
			continue
		}
		if w != exA && t.has(w, a) {
			continue // common neighbor, handled from a's side
		}
		d.addWedge(ca, cb, t.cls[w], sign)
	}
}

// mergeChange is edgeChange as a single linear merge of the two sorted
// neighbor windows — the ordinary-degree path, with no membership probes
// at all.
func (t *Tracker) mergeChange(d *TrackerDelta, a, b int, sign int64, exA, exB int) {
	ca, cb := t.cls[a], t.cls[b]
	A, B := t.adj(a), t.adj(b)
	i, j := 0, 0
	for i < len(A) && j < len(B) {
		wa, wb := int(A[i]), int(B[j])
		switch {
		case wa < wb:
			i++
			if wa != b && wa != exA {
				d.addWedge(cb, ca, t.cls[wa], sign)
			}
		case wb < wa:
			j++
			if wb != a && wb != exB {
				d.addWedge(ca, cb, t.cls[wb], sign)
			}
		default: // common neighbor
			i++
			j++
			w := wa
			aHas, bHas := w != exA, w != exB
			switch {
			case aHas && bHas:
				d.addTriangle(ca, cb, t.cls[w], sign)
				d.addWedge(ca, t.cls[w], cb, -sign)
			case aHas:
				d.addWedge(cb, ca, t.cls[w], sign)
			case bHas:
				d.addWedge(ca, cb, t.cls[w], sign)
			}
		}
	}
	for ; i < len(A); i++ {
		if w := int(A[i]); w != b && w != exA {
			d.addWedge(cb, ca, t.cls[w], sign)
		}
	}
	for ; j < len(B); j++ {
		if w := int(B[j]); w != a && w != exB {
			d.addWedge(ca, cb, t.cls[w], sign)
		}
	}
}
