package subgraphs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func build(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// bruteCensus enumerates all node triples.
func bruteCensus(g *graph.Graph) *Census {
	c := NewCensus()
	n := g.N()
	deg := g.DegreeSequence()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				ij := g.HasEdge(i, j)
				ik := g.HasEdge(i, k)
				jk := g.HasEdge(j, k)
				switch {
				case ij && ik && jk:
					c.Triangles[NewTriangleKey(deg[i], deg[j], deg[k])]++
				case ij && ik:
					c.Wedges[NewWedgeKey(deg[j], deg[i], deg[k])]++
				case ij && jk:
					c.Wedges[NewWedgeKey(deg[i], deg[j], deg[k])]++
				case ik && jk:
					c.Wedges[NewWedgeKey(deg[i], deg[k], deg[j])]++
				}
			}
		}
	}
	return c
}

func TestWedgeKeyCanonical(t *testing.T) {
	if NewWedgeKey(5, 2, 3) != (WedgeKey{3, 2, 5}) {
		t.Error("wedge key ends not sorted")
	}
	if NewWedgeKey(3, 2, 5) != NewWedgeKey(5, 2, 3) {
		t.Error("wedge keys of isomorphic wedges differ")
	}
}

func TestTriangleKeyCanonical(t *testing.T) {
	want := TriangleKey{1, 2, 3}
	perms := [][3]int{{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1}}
	for _, p := range perms {
		if got := NewTriangleKey(p[0], p[1], p[2]); got != want {
			t.Errorf("NewTriangleKey(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestCountTriangleGraph(t *testing.T) {
	g := build(t, 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	c := Count(g.Static())
	if c.TotalWedges() != 0 {
		t.Errorf("K3 wedges = %d, want 0", c.TotalWedges())
	}
	if c.Triangles[TriangleKey{2, 2, 2}] != 1 || c.TotalTriangles() != 1 {
		t.Errorf("K3 triangles = %v", c.Triangles)
	}
}

func TestCountPath3(t *testing.T) {
	g := build(t, 3, [][2]int{{0, 1}, {1, 2}})
	c := Count(g.Static())
	if c.Wedges[WedgeKey{1, 2, 1}] != 1 || c.TotalWedges() != 1 {
		t.Errorf("P3 wedges = %v", c.Wedges)
	}
	if c.TotalTriangles() != 0 {
		t.Errorf("P3 triangles = %v", c.Triangles)
	}
}

func TestCountStar(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	c := Count(g.Static())
	if c.Wedges[WedgeKey{1, 3, 1}] != 3 || c.TotalWedges() != 3 {
		t.Errorf("K1,3 wedges = %v", c.Wedges)
	}
}

// TestCountPaperExample is the worked size-4 example from Section 3 of the
// paper: the "paw" graph with degrees 1,2,2,3, where P(2,3) = 2 edges, the
// 3K-distribution has 2 wedges of class (1,3,2) and one (2,2,3) triangle.
func TestCountPaperExample(t *testing.T) {
	// Triangle 0,1,2 plus pendant 3 attached to 2.
	g := build(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	c := Count(g.Static())
	if got := c.Wedges[WedgeKey{1, 3, 2}]; got != 2 {
		t.Errorf("wedge class (1,3,2) = %d, want 2 (map: %v)", got, c.Wedges)
	}
	if got := c.Triangles[TriangleKey{2, 2, 3}]; got != 1 {
		t.Errorf("triangle class (2,2,3) = %d, want 1 (map: %v)", got, c.Triangles)
	}
	if c.TotalWedges() != 2 || c.TotalTriangles() != 1 {
		t.Errorf("totals: wedges=%d triangles=%d, want 2,1", c.TotalWedges(), c.TotalTriangles())
	}
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func TestCountMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(18)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := randomGraph(rng, n, m)
		return Count(g.Static()).Equal(bruteCensus(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// countReference is the counter Count replaced: per-center neighbor-pair
// enumeration with a HasEdge probe per pair. It is kept as the
// differential oracle for the class-histogram counter on graphs large
// enough that brute-force triple enumeration is unaffordable.
func countReference(s *graph.Static) *Census {
	c := NewCensus()
	n := s.N()
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = s.Degree(u)
	}
	for center := 0; center < n; center++ {
		nbrs := s.Neighbors(center)
		for i := 0; i < len(nbrs); i++ {
			a := int(nbrs[i])
			for j := i + 1; j < len(nbrs); j++ {
				b := int(nbrs[j])
				if s.HasEdge(a, b) {
					if center < a {
						c.Triangles[NewTriangleKey(deg[center], deg[a], deg[b])]++
					}
				} else {
					c.Wedges[NewWedgeKey(deg[a], deg[center], deg[b])]++
				}
			}
		}
	}
	return c
}

// hubGraph builds a graph whose top node degrees cross
// DefaultBitsetThreshold, exercising the bitset probe path of Count.
func hubGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i, rng.Intn(i)); err != nil {
			panic(err)
		}
	}
	for v := 1; v < n/2; v++ {
		if !g.HasEdge(0, v) {
			if err := g.AddEdge(0, v); err != nil {
				panic(err)
			}
		}
	}
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

// TestCountMatchesReferenceHubGraph pins the fast counter against the old
// pair-enumeration counter on a hub-heavy graph (max degree well past the
// bitset threshold) — the regime the rewrite exists for.
func TestCountMatchesReferenceHubGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := hubGraph(rng, 400, 1400).Static()
	if s.MaxDegree() < DefaultBitsetThreshold {
		t.Fatalf("max degree %d below bitset threshold %d; test graph too tame", s.MaxDegree(), DefaultBitsetThreshold)
	}
	got, want := Count(s), countReference(s)
	if !got.Equal(want) {
		t.Errorf("fast census disagrees with reference: got %d wedges/%d triangles, want %d/%d",
			got.TotalWedges(), got.TotalTriangles(), want.TotalWedges(), want.TotalTriangles())
	}
}

// TestCountMatchesReferenceMapFallback forces the packed-key map path
// (denseLimit exceeded) and differentially checks it too.
func TestCountMatchesReferenceMapFallback(t *testing.T) {
	old := denseLimit
	denseLimit = 1
	defer func() { denseLimit = old }()
	rng := rand.New(rand.NewSource(7))
	s := hubGraph(rng, 200, 700).Static()
	if !Count(s).Equal(countReference(s)) {
		t.Error("map-fallback census disagrees with reference")
	}
}

// TestDeltaMatchesRecountProperty verifies the incremental delta machinery
// against full recounts across random degree-preserving double-edge swaps:
// the foundation of all 3K rewiring.
func TestDeltaMatchesRecountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		m := 4 + rng.Intn(n*(n-1)/2-3)
		g := randomGraph(rng, n, m)
		deg := g.DegreeSequence()
		before := Count(g.Static())

		// Try to find a valid degree-preserving swap.
		for attempt := 0; attempt < 200; attempt++ {
			e1 := g.EdgeAt(rng.Intn(g.M()))
			e2 := g.EdgeAt(rng.Intn(g.M()))
			u, v, x, y := e1.U, e1.V, e2.U, e2.V
			if rng.Intn(2) == 0 {
				x, y = y, x
			}
			// Swap to (u,y) and (x,v).
			if u == y || x == v || u == x || v == y {
				continue
			}
			if g.HasEdge(u, y) || g.HasEdge(x, v) {
				continue
			}
			d := NewDelta()
			d.RemoveEdge(g, deg, u, v)
			g.RemoveEdge(u, v)
			d.RemoveEdge(g, deg, x, y)
			g.RemoveEdge(x, y)
			d.AddEdge(g, deg, u, y)
			g.AddEdge(u, y)
			d.AddEdge(g, deg, x, v)
			g.AddEdge(x, v)

			after := Count(g.Static())
			d.ApplyTo(before)
			return before.Equal(after)
		}
		return true // no valid swap found; vacuously fine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeltaIsZeroAndReset(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	deg := g.DegreeSequence()
	d := NewDelta()
	if !d.IsZero() {
		t.Error("fresh delta not zero")
	}
	d.RemoveEdge(g, deg, 1, 2)
	if d.IsZero() {
		t.Error("delta after removal is zero")
	}
	d.Reset()
	if !d.IsZero() {
		t.Error("reset delta not zero")
	}
}

// TestDeltaAddRemoveCancel checks that removing and re-adding the same edge
// yields a zero delta.
func TestDeltaAddRemoveCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 15, 40)
	deg := g.DegreeSequence()
	d := NewDelta()
	e := g.EdgeAt(0)
	d.RemoveEdge(g, deg, e.U, e.V)
	g.RemoveEdge(e.U, e.V)
	d.AddEdge(g, deg, e.U, e.V)
	g.AddEdge(e.U, e.V)
	if !d.IsZero() {
		t.Errorf("remove+add delta not zero: wedges=%v triangles=%v", d.Wedges, d.Triangles)
	}
}

func TestCensusClone(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	c := Count(g.Static())
	cl := c.Clone()
	if !c.Equal(cl) {
		t.Fatal("clone not equal")
	}
	cl.Wedges[WedgeKey{9, 9, 9}] = 5
	if c.Equal(cl) {
		t.Error("mutating clone affected original comparison")
	}
}

func TestSize4CensusPaw(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	c := CountSize4(g.Static())
	want := Size4Census{Path4: 2, Claw: 1, Cycle4: 0, Paw: 1, Diamond: 0, K4: 0}
	if c != want {
		t.Errorf("paw census = %+v, want %+v", c, want)
	}
}

func TestSize4CensusK4(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	c := CountSize4(g.Static())
	// K4 contains: 4 claws (one per center), 12 P4s (4!/2), 3 C4s,
	// 12 paws (4 triangles × 3 pendant choices... each triangle has 3
	// vertices each with degree 3 → (3-2)*3 = 3 per triangle × 4 = 12),
	// 6 diamonds, 1 K4.
	want := Size4Census{Path4: 12, Claw: 4, Cycle4: 3, Paw: 12, Diamond: 6, K4: 1}
	if c != want {
		t.Errorf("K4 census = %+v, want %+v", c, want)
	}
}

func TestSize4CensusCycle(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	c := CountSize4(g.Static())
	want := Size4Census{Path4: 4, Claw: 0, Cycle4: 1, Paw: 0, Diamond: 0, K4: 0}
	if c != want {
		t.Errorf("C4 census = %+v, want %+v", c, want)
	}
}

func TestSize4CensusStar(t *testing.T) {
	g := build(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	c := CountSize4(g.Static())
	want := Size4Census{Path4: 0, Claw: 1}
	if c != want {
		t.Errorf("K1,3 census = %+v, want %+v", c, want)
	}
}
