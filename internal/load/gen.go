// Package load is the engine behind cmd/dkload: a seed-deterministic
// load harness for the dK topology service. It derives a randomized but
// always-valid request stream from a single seed — every request i is a
// pure function of SubSeed(seed, i), the same §3 determinism invariant
// the generators themselves obey — replays it against a live dkserved at
// configurable concurrency, and reports per-route latency percentiles
// against committed SLO thresholds (BENCH_load.json).
//
// Because request i depends only on (profile, seed, i), the stream is
// byte-identical at any worker count and across runs: a latency
// regression between two reports can never be explained away by the
// harness having sent different traffic.
package load

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/parallel"
	"repro/pkg/dkapi"
)

// Request kinds — the traffic classes a profile mixes.
const (
	KindExtract  = "extract"  // POST /v1/extract (interactive, sync)
	KindGenerate = "generate" // POST /v1/generate (batch, async job)
	KindCompare  = "compare"  // POST /v1/compare (interactive, sync)
	KindPipeline = "pipeline" // POST /v1/pipelines (async job)
	KindStats    = "stats"    // GET /v1/stats (read traffic)
)

// Request is one fully materialized HTTP request of the load stream.
// Async reports whether a 202 + job poll is the expected shape of the
// exchange rather than a direct 200.
type Request struct {
	Index       int
	Kind        string
	Method      string
	Path        string // including query, relative to the server base
	ContentType string
	Body        []byte
	Async       bool
}

// Mix weighs the request kinds of a profile. Weights are relative
// integers; a zero weight removes the kind entirely.
type Mix struct {
	Extract  int `json:"extract"`
	Generate int `json:"generate"`
	Compare  int `json:"compare"`
	Pipeline int `json:"pipeline"`
	Stats    int `json:"stats"`
}

// kinds returns the weighted kind table in a fixed order.
func (m Mix) kinds() []struct {
	kind   string
	weight int
} {
	return []struct {
		kind   string
		weight int
	}{
		{KindExtract, m.Extract},
		{KindGenerate, m.Generate},
		{KindCompare, m.Compare},
		{KindPipeline, m.Pipeline},
		{KindStats, m.Stats},
	}
}

// total sums the mix weights.
func (m Mix) total() int {
	t := 0
	for _, k := range m.kinds() {
		t += k.weight
	}
	return t
}

// Profile bounds the randomized request stream: how many requests, how
// big the uploaded topologies get, how deep the extractions go, and the
// traffic mix. The zero value is invalid; use a named profile or fill
// every field.
type Profile struct {
	Name string `json:"name"`
	// Requests is the stream length.
	Requests int `json:"requests"`
	// MinN/MaxN bound the node count of generated topologies.
	MinN int `json:"min_n"`
	MaxN int `json:"max_n"`
	// MaxD bounds extraction/generation depth (0..3).
	MaxD int `json:"max_d"`
	// MaxReplicas bounds one generate step's ensemble.
	MaxReplicas int `json:"max_replicas"`
	// Mix weighs the request kinds.
	Mix Mix `json:"mix"`
}

// Smoke is the CI profile: small graphs, shallow depths, short stream —
// enough to exercise every route class against a live server in seconds.
func Smoke() Profile {
	return Profile{
		Name:        "smoke",
		Requests:    60,
		MinN:        12,
		MaxN:        60,
		MaxD:        2,
		MaxReplicas: 3,
		Mix:         Mix{Extract: 4, Generate: 2, Compare: 2, Pipeline: 2, Stats: 1},
	}
}

// Steady is the sustained-load profile: larger graphs, full depth
// range, longer stream — the baseline behind BENCH_load.json.
func Steady() Profile {
	return Profile{
		Name:        "steady",
		Requests:    400,
		MinN:        50,
		MaxN:        400,
		MaxD:        3,
		MaxReplicas: 8,
		Mix:         Mix{Extract: 5, Generate: 3, Compare: 3, Pipeline: 2, Stats: 2},
	}
}

// Profiles maps the named profiles for flag parsing.
func Profiles() map[string]Profile {
	return map[string]Profile{"smoke": Smoke(), "steady": Steady()}
}

// Validate rejects profiles that cannot produce a valid stream.
func (p Profile) Validate() error {
	switch {
	case p.Requests <= 0:
		return fmt.Errorf("load: profile %q: requests must be positive", p.Name)
	case p.MinN < 4:
		return fmt.Errorf("load: profile %q: min_n %d below the smallest useful topology (4)", p.Name, p.MinN)
	case p.MaxN < p.MinN:
		return fmt.Errorf("load: profile %q: max_n %d < min_n %d", p.Name, p.MaxN, p.MinN)
	case p.MaxD < 0 || p.MaxD > 3:
		return fmt.Errorf("load: profile %q: max_d %d outside 0..3", p.Name, p.MaxD)
	case p.MaxReplicas < 1:
		return fmt.Errorf("load: profile %q: max_replicas must be at least 1", p.Name)
	case p.MaxReplicas > 128:
		// The server's pipeline validator caps one step's ensemble at 128
		// (pipeline.Limits); a profile beyond that would generate traffic
		// the server rejects, breaking the randomized-but-valid contract.
		return fmt.Errorf("load: profile %q: max_replicas %d over the server's per-step limit (128)", p.Name, p.MaxReplicas)
	case p.Mix.total() <= 0:
		return fmt.Errorf("load: profile %q: the mix has no weight", p.Name)
	}
	return nil
}

// Generate materializes the request stream: request i is derived from an
// RNG seeded with SubSeed(seed, i) and nothing else, so the stream is a
// pure function of (profile, seed) — independent of worker count,
// replay order, and previous runs. Profile must validate.
func Generate(p Profile, seed int64) ([]Request, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	reqs := make([]Request, p.Requests)
	var firstErr error
	parallel.For(p.Requests, func(i int) {
		rng := rand.New(rand.NewSource(parallel.SubSeed(seed, i)))
		r, err := buildRequest(p, i, rng)
		if err != nil && firstErr == nil {
			firstErr = err // benign race: any of the (identical-shape) errors will do
		}
		reqs[i] = r
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return reqs, nil
}

// buildRequest materializes request i from its private RNG.
func buildRequest(p Profile, i int, rng *rand.Rand) (Request, error) {
	kind := pickKind(p.Mix, rng)
	req := Request{Index: i, Kind: kind}
	switch kind {
	case KindExtract:
		d := rng.Intn(p.MaxD + 1)
		req.Method, req.Path = "POST", fmt.Sprintf("/v1/extract?d=%d&seed=1", d)
		req.ContentType = "text/plain"
		req.Body = []byte(randomEdgeList(p, rng))
	case KindGenerate:
		d := 1 + rng.Intn(max(1, p.MaxD)) // generate needs d >= 1 to be interesting
		if d > p.MaxD {
			d = p.MaxD
		}
		body, err := json.Marshal(dkapi.GenerateRequest{
			Source:   dkapi.GraphRef{Edges: randomEdgeList(p, rng)},
			D:        dkapi.Int(d),
			Replicas: 1 + rng.Intn(p.MaxReplicas),
			Seed:     rng.Int63(),
		})
		if err != nil {
			return Request{}, err
		}
		req.Method, req.Path = "POST", "/v1/generate"
		req.ContentType, req.Body, req.Async = "application/json", body, true
	case KindCompare:
		body, err := json.Marshal(dkapi.CompareRequest{
			A: dkapi.GraphRef{Edges: randomEdgeList(p, rng)},
			B: dkapi.GraphRef{Edges: randomEdgeList(p, rng)},
			D: dkapi.Int(min(2, p.MaxD)), // depth-3 compare is the census hot path; bound it
		})
		if err != nil {
			return Request{}, err
		}
		req.Method, req.Path = "POST", "/v1/compare"
		req.ContentType, req.Body = "application/json", body
	case KindPipeline:
		body, err := json.Marshal(randomPipeline(p, rng))
		if err != nil {
			return Request{}, err
		}
		req.Method, req.Path = "POST", "/v1/pipelines"
		req.ContentType, req.Body, req.Async = "application/json", body, true
	case KindStats:
		req.Method, req.Path = "GET", "/v1/stats"
	default:
		return Request{}, fmt.Errorf("load: unknown kind %q", kind)
	}
	return req, nil
}

// pickKind draws a kind from the weighted mix.
func pickKind(m Mix, rng *rand.Rand) string {
	total := m.total()
	roll := rng.Intn(total)
	for _, k := range m.kinds() {
		if roll < k.weight {
			return k.kind
		}
		roll -= k.weight
	}
	return KindStats // unreachable: the weights sum to total
}

// randomEdgeList emits a connected random topology inside the profile's
// size bounds: a random recursive tree (guaranteeing connectivity, and
// a skewed degree sequence like real AS graphs) plus a sprinkle of
// extra edges for triangles. The parser rejects duplicate edges, so
// every candidate is checked against the set already emitted.
func randomEdgeList(p Profile, rng *rand.Rand) string {
	n := p.MinN + rng.Intn(p.MaxN-p.MinN+1)
	var sb strings.Builder
	seen := make(map[[2]int]bool, n*2)
	emit := func(a, b int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return false
		}
		seen[[2]int{a, b}] = true
		fmt.Fprintf(&sb, "%d %d\n", a, b)
		return true
	}
	for v := 1; v < n; v++ {
		emit(rng.Intn(v), v)
	}
	extra := rng.Intn(n/2 + 1)
	for e := 0; e < extra; e++ {
		emit(rng.Intn(n), rng.Intn(n)) // collisions just skip the extra
	}
	return sb.String()
}

// randomPipeline assembles a small always-valid step DAG: an extract
// root over a fresh topology, optionally a generate fan-out from the
// same source, optionally a compare of the two. Every reference is to
// an earlier step or inline edges, so pipeline.Validate accepts any
// output of this function — FuzzSpecGen holds the harness to that.
func randomPipeline(p Profile, rng *rand.Rand) dkapi.PipelineRequest {
	edges := randomEdgeList(p, rng)
	d := min(2, p.MaxD)
	req := dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{{
		ID:     "ext",
		Op:     dkapi.OpExtract,
		Source: &dkapi.GraphRef{Edges: edges},
		D:      dkapi.Int(d),
	}}}
	if rng.Intn(2) == 0 {
		req.Steps = append(req.Steps, dkapi.PipelineStep{
			ID:       "gen",
			Op:       dkapi.OpGenerate,
			Source:   &dkapi.GraphRef{Edges: edges},
			D:        dkapi.Int(d),
			Replicas: 1 + rng.Intn(p.MaxReplicas),
			Seed:     rng.Int63(),
		})
		if rng.Intn(2) == 0 {
			req.Steps = append(req.Steps, dkapi.PipelineStep{
				ID: "cmp",
				Op: dkapi.OpCompare,
				A:  &dkapi.GraphRef{Step: "ext"},
				B:  &dkapi.GraphRef{Step: "gen"},
				D:  dkapi.Int(d),
			})
		}
	} else {
		req.Steps = append(req.Steps, dkapi.PipelineStep{
			ID:     "cen",
			Op:     dkapi.OpCensus,
			Source: &dkapi.GraphRef{Step: "ext"},
		})
	}
	return req
}

// WriteStream dumps a request stream in a canonical text form — the
// byte-identity witness of the determinism tests and of `dkload -dump`.
func WriteStream(w io.Writer, reqs []Request) error {
	for _, r := range reqs {
		if _, err := fmt.Fprintf(w, "### %d %s %s %s %s\n", r.Index, r.Kind, r.Method, r.Path, r.ContentType); err != nil {
			return err
		}
		if len(r.Body) > 0 {
			if _, err := w.Write(r.Body); err != nil {
				return err
			}
			if r.Body[len(r.Body)-1] != '\n' {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
