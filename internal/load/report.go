package load

import (
	"fmt"
	"sort"
	"strings"
)

// SchemaVersion identifies the BENCH_load.json layout; bump on breaking
// changes.
const SchemaVersion = "dkload/v1"

// RouteReport aggregates one route's replay outcomes. Latencies are the
// HTTP round-trip of the primary request — for async routes that is the
// submit (202), with job completion tracked separately in JobsReport —
// so route percentiles measure server responsiveness, not queue depth.
type RouteReport struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`    // final status >= 400 except 429, or transport failure
	Throttled int64   `json:"throttled"` // 429 answers seen (including retried-then-succeeded)
	Server5xx int64   `json:"server_5xx"`
	Retries   int64   `json:"retries"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// JobsReport aggregates the async half of the stream: every 202-accepted
// generate/pipeline job, polled to its terminal state.
type JobsReport struct {
	Submitted int64   `json:"submitted"`
	Done      int64   `json:"done"`
	Failed    int64   `json:"failed"`
	WaitP50MS float64 `json:"wait_p50_ms"`
	WaitP99MS float64 `json:"wait_p99_ms"`
	WaitMaxMS float64 `json:"wait_max_ms"`
}

// Totals sums the stream-wide outcome counters.
type Totals struct {
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Throttled int64 `json:"throttled"`
	Server5xx int64 `json:"server_5xx"`
	Retries   int64 `json:"retries"`
}

// SLO is the committed service-level gate: a fresh run passes when its
// error rate, 5xx count, and per-route p99s all stay inside these
// bounds. Thresholds live in BENCH_load.json so the gate is versioned
// with the code it protects.
type SLO struct {
	// MaxErrorRate bounds Totals.Errors / Totals.Requests.
	MaxErrorRate float64 `json:"max_error_rate"`
	// MaxServer5xx bounds Totals.Server5xx (0 = none tolerated).
	MaxServer5xx int64 `json:"max_server_5xx"`
	// RouteP99MS bounds each route's p99 latency in milliseconds.
	RouteP99MS map[string]float64 `json:"route_p99_ms"`
}

// Report is the schema of BENCH_load.json: the profile and seed that
// *regenerate the exact request stream*, the replay configuration, the
// per-route and job outcomes, and the SLO the run was gated against.
type Report struct {
	Schema      string                 `json:"schema"`
	Profile     Profile                `json:"profile"`
	Seed        int64                  `json:"seed"`
	Concurrency int                    `json:"concurrency"`
	DurationMS  float64                `json:"duration_ms"`
	Throughput  float64                `json:"throughput_rps"`
	Totals      Totals                 `json:"totals"`
	Routes      map[string]RouteReport `json:"routes"`
	Jobs        JobsReport             `json:"jobs"`
	SLO         SLO                    `json:"slo"`
}

// routeKey maps a stream request to its report key — the server's mux
// pattern, so dkload's routes table and /v1/stats line up.
func routeKey(r Request) string {
	path := r.Path
	if q := strings.IndexByte(path, '?'); q >= 0 {
		path = path[:q]
	}
	return r.Method + " " + path
}

// ExpectedRoutes lists the route keys a profile's mix can emit — the
// completeness vocabulary of Verify.
func ExpectedRoutes(p Profile) []string {
	var keys []string
	add := func(weight int, key string) {
		if weight > 0 {
			keys = append(keys, key)
		}
	}
	add(p.Mix.Extract, "POST /v1/extract")
	add(p.Mix.Generate, "POST /v1/generate")
	add(p.Mix.Compare, "POST /v1/compare")
	add(p.Mix.Pipeline, "POST /v1/pipelines")
	add(p.Mix.Stats, "GET /v1/stats")
	return keys
}

// DefaultSLO returns deliberately generous thresholds for a profile —
// wide enough for a loaded CI machine, tight enough that a server that
// stops answering or starts failing trips them. Tune per-route numbers
// down in the committed report as the service earns it.
func DefaultSLO(p Profile) SLO {
	routes := map[string]float64{}
	for _, key := range ExpectedRoutes(p) {
		switch key {
		case "GET /v1/stats":
			routes[key] = 250
		case "POST /v1/extract":
			routes[key] = 2000
		default: // submits and the synchronous compare
			routes[key] = 4000
		}
	}
	return SLO{MaxErrorRate: 0.01, MaxServer5xx: 0, RouteP99MS: routes}
}

// Verify checks a report's internal integrity: current schema, a
// regenerable profile, every route its mix can emit present, and a
// self-consistent SLO. It deliberately does not compare numbers — that
// is Gate's job against a fresh run.
func Verify(rep *Report) error {
	if rep.Schema != SchemaVersion {
		return fmt.Errorf("schema %q, want %q", rep.Schema, SchemaVersion)
	}
	if err := rep.Profile.Validate(); err != nil {
		return fmt.Errorf("embedded profile: %w", err)
	}
	if rep.Totals.Requests != int64(rep.Profile.Requests) {
		return fmt.Errorf("totals.requests %d != profile.requests %d", rep.Totals.Requests, rep.Profile.Requests)
	}
	if rep.Concurrency < 1 {
		return fmt.Errorf("concurrency %d implausible", rep.Concurrency)
	}
	if rep.DurationMS <= 0 {
		return fmt.Errorf("duration_ms %g implausible", rep.DurationMS)
	}
	var counted int64
	for _, key := range ExpectedRoutes(rep.Profile) {
		rr, ok := rep.Routes[key]
		if !ok {
			return fmt.Errorf("route %q missing from the report", key)
		}
		if rr.Count <= 0 {
			return fmt.Errorf("route %q: zero requests; the stream should exercise every mixed kind", key)
		}
		if rr.P50MS > rr.P95MS || rr.P95MS > rr.P99MS || rr.P99MS > rr.MaxMS {
			return fmt.Errorf("route %q: percentiles not monotone: %+v", key, rr)
		}
		counted += rr.Count
	}
	if counted != rep.Totals.Requests {
		return fmt.Errorf("route counts sum to %d, totals say %d", counted, rep.Totals.Requests)
	}
	if rep.SLO.MaxErrorRate <= 0 || rep.SLO.MaxErrorRate > 1 {
		return fmt.Errorf("slo.max_error_rate %g outside (0, 1]", rep.SLO.MaxErrorRate)
	}
	if rep.SLO.MaxServer5xx < 0 {
		return fmt.Errorf("slo.max_server_5xx negative")
	}
	for _, key := range ExpectedRoutes(rep.Profile) {
		if ms, ok := rep.SLO.RouteP99MS[key]; !ok || ms <= 0 {
			return fmt.Errorf("slo.route_p99_ms missing a positive bound for %q", key)
		}
	}
	return nil
}

// Gate applies an SLO to a run and returns every violation — empty means
// the run passes. The CI load-smoke job fails on any violation.
func Gate(rep *Report, slo SLO) []string {
	var violations []string
	if rep.Totals.Requests > 0 {
		rate := float64(rep.Totals.Errors) / float64(rep.Totals.Requests)
		if rate > slo.MaxErrorRate {
			violations = append(violations, fmt.Sprintf(
				"error rate %.4f over budget %.4f (%d/%d failed)",
				rate, slo.MaxErrorRate, rep.Totals.Errors, rep.Totals.Requests))
		}
	}
	if rep.Totals.Server5xx > slo.MaxServer5xx {
		violations = append(violations, fmt.Sprintf(
			"%d server 5xx responses over budget %d", rep.Totals.Server5xx, slo.MaxServer5xx))
	}
	keys := make([]string, 0, len(slo.RouteP99MS))
	for key := range slo.RouteP99MS {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		bound := slo.RouteP99MS[key]
		rr, ok := rep.Routes[key]
		if !ok {
			violations = append(violations, fmt.Sprintf("route %q absent from the run", key))
			continue
		}
		if rr.P99MS > bound {
			violations = append(violations, fmt.Sprintf(
				"route %q p99 %.1fms over bound %.1fms", key, rr.P99MS, bound))
		}
	}
	return violations
}

// percentile reads quantile q (0..1) from sorted samples via the
// nearest-rank method; 0 on an empty slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
