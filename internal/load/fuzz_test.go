package load

import (
	"encoding/json"
	"testing"

	"repro/internal/graph"
	"repro/internal/pipeline"
	"strings"

	"repro/pkg/dkapi"
)

// FuzzSpecGen fuzzes the spec generator over the (seed, profile-knob)
// space: ANY seed must yield a stream whose every body passes the same
// validation the server applies — pipelines through pipeline.Validate,
// edge lists through the graph parser — and generation must never
// panic. This is the "randomized but valid" half of the harness
// contract; the byte-identity half is TestGenerateDeterministic.
func FuzzSpecGen(f *testing.F) {
	f.Add(int64(0), 10, 4, 16, 2, 3)
	f.Add(int64(42), 25, 5, 40, 3, 8)
	f.Add(int64(-1), 3, 4, 4, 0, 1)
	f.Add(int64(1<<62), 8, 7, 9, 1, 2)

	f.Fuzz(func(t *testing.T, seed int64, requests, minN, maxN, maxD, maxReplicas int) {
		p := Profile{
			Name:        "fuzz",
			Requests:    requests,
			MinN:        minN,
			MaxN:        maxN,
			MaxD:        maxD,
			MaxReplicas: maxReplicas,
			Mix:         Mix{Extract: 1, Generate: 1, Compare: 1, Pipeline: 1, Stats: 1},
		}
		if p.Requests > 200 {
			p.Requests = 200 // keep one fuzz execution cheap
		}
		if p.MaxN > 500 {
			p.MaxN = 500
		}
		reqs, err := Generate(p, seed)
		if err != nil {
			if p.Validate() == nil {
				t.Fatalf("valid profile rejected: %v", err)
			}
			return // invalid knobs must error, not panic
		}
		if p.Validate() != nil {
			t.Fatalf("invalid profile %+v generated a stream anyway", p)
		}
		for _, r := range reqs {
			switch r.Kind {
			case KindPipeline:
				var pr dkapi.PipelineRequest
				if err := json.Unmarshal(r.Body, &pr); err != nil {
					t.Fatalf("seed %d request %d: pipeline body: %v", seed, r.Index, err)
				}
				if err := pipeline.Validate(pr, pipeline.Limits{}); err != nil {
					t.Fatalf("seed %d request %d: invalid pipeline: %v", seed, r.Index, err)
				}
				for _, st := range pr.Steps {
					mustParseRef(t, st.Source)
					mustParseRef(t, st.A)
					mustParseRef(t, st.B)
				}
			case KindExtract:
				if _, _, err := graph.ReadEdgeList(strings.NewReader(string(r.Body))); err != nil {
					t.Fatalf("seed %d request %d: unparseable edge list: %v", seed, r.Index, err)
				}
			case KindGenerate:
				var gr dkapi.GenerateRequest
				if err := json.Unmarshal(r.Body, &gr); err != nil {
					t.Fatalf("seed %d request %d: generate body: %v", seed, r.Index, err)
				}
				mustParseRef(t, &gr.Source)
			}
		}
	})
}

// mustParseRef parses a ref's inline edges when present.
func mustParseRef(t *testing.T, ref *dkapi.GraphRef) {
	t.Helper()
	if ref == nil || ref.Edges == "" {
		return
	}
	if _, _, err := graph.ReadEdgeList(strings.NewReader(ref.Edges)); err != nil {
		t.Fatalf("inline edges unparseable: %v", err)
	}
}
