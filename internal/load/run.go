package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/pkg/dkapi"
)

// Runner replays a request stream against a live dkserved.
type Runner struct {
	// Server is the base URL ("http://127.0.0.1:8080").
	Server string
	// Concurrency is the worker count (minimum 1). Workers pull from a
	// shared queue, so the stream's content is unaffected by this knob —
	// only its pacing.
	Concurrency int
	// ClientID is sent as X-Client-Id so a rate-limited server buckets
	// the run under one identity.
	ClientID string
	// HTTPClient overrides the transport (default 2-minute timeout).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request (default 6). Only 429/503
	// answers are retried — they are issued before any state changes —
	// honoring Retry-After.
	MaxAttempts int
	// JobTimeout bounds the poll wait for one async job (default 60s).
	JobTimeout time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// outcome is one replayed request's result.
type outcome struct {
	route     string
	ms        float64
	errored   bool
	throttled int64
	fives     int64
	retries   int64
	async     bool
	jobDone   bool
	jobFailed bool
	jobWaitMS float64
}

// Run replays the stream and aggregates a report. The returned report
// carries no SLO — the caller attaches the committed or default one.
func (r *Runner) Run(ctx context.Context, p Profile, seed int64, reqs []Request) (*Report, error) {
	if r.Concurrency < 1 {
		r.Concurrency = 1
	}
	if r.MaxAttempts < 1 {
		r.MaxAttempts = 6
	}
	if r.JobTimeout <= 0 {
		r.JobTimeout = 60 * time.Second
	}
	hc := r.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Minute}
	}

	outcomes := make([]outcome, len(reqs))
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				outcomes[i] = r.replay(ctx, hc, reqs[i])
			}
		}()
	}
	start := time.Now()
	for i := range reqs {
		select {
		case queue <- i:
		case <-ctx.Done():
			close(queue)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	return aggregate(p, seed, r.Concurrency, elapsed, reqs, outcomes), nil
}

// replay executes one request (with backpressure retries) and, for
// async submissions, polls the accepted job to a terminal state.
func (r *Runner) replay(ctx context.Context, hc *http.Client, req Request) outcome {
	out := outcome{route: routeKey(req), async: req.Async}
	start := time.Now()
	status, body, err := r.exchange(ctx, hc, req.Method, r.Server+req.Path, req.ContentType, req.Body, &out)
	out.ms = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		out.errored = true
		if r.Logf != nil {
			r.Logf("request %d (%s): %v", req.Index, req.Kind, err)
		}
		return out
	}
	switch {
	case status == http.StatusTooManyRequests:
		// Retries exhausted against sustained backpressure: the request
		// never ran, which is flow control — not an error-budget hit.
		return out
	case status >= 400:
		out.errored = true
		if r.Logf != nil {
			r.Logf("request %d (%s): HTTP %d: %.200s", req.Index, req.Kind, status, body)
		}
		return out
	}
	if !req.Async {
		return out
	}
	var acc dkapi.JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil || acc.JobID == "" {
		out.errored = true
		return out
	}
	waitStart := time.Now()
	done, failed := r.waitJob(ctx, hc, acc.JobID)
	out.jobWaitMS = float64(time.Since(waitStart)) / float64(time.Millisecond)
	out.jobDone, out.jobFailed = done, failed
	if failed {
		out.errored = true
	}
	return out
}

// exchange performs one HTTP exchange with bounded 429/503 retries,
// counting throttles, 5xx answers, and retries into out. It returns the
// final status and body (transport failures return err).
func (r *Runner) exchange(ctx context.Context, hc *http.Client, method, url, contentType string, body []byte, out *outcome) (int, []byte, error) {
	var lastStatus int
	var lastBody []byte
	for attempt := 0; attempt < r.MaxAttempts; attempt++ {
		if attempt > 0 {
			out.retries++
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		hreq, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return 0, nil, err
		}
		if contentType != "" {
			hreq.Header.Set("Content-Type", contentType)
		}
		if r.ClientID != "" {
			hreq.Header.Set("X-Client-Id", r.ClientID)
		}
		resp, err := hc.Do(hreq)
		if err != nil {
			// A dropped connection mid-POST is ambiguous (the job may have
			// been enqueued); the harness counts it as an error rather
			// than risk double-submitting and skewing the stream.
			return 0, nil, err
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		lastStatus, lastBody = resp.StatusCode, data
		if resp.StatusCode >= 500 {
			out.fives++
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return lastStatus, lastBody, nil
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			out.throttled++
		}
		delay := 100 * time.Millisecond << attempt
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				delay = time.Duration(secs) * time.Second
			}
		}
		if delay > 5*time.Second {
			delay = 5 * time.Second
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return lastStatus, lastBody, ctx.Err()
		case <-t.C:
		}
	}
	return lastStatus, lastBody, nil
}

// waitJob polls /v1/jobs/{id} until terminal or timeout.
func (r *Runner) waitJob(ctx context.Context, hc *http.Client, id string) (done, failed bool) {
	deadline := time.Now().Add(r.JobTimeout)
	delay := 20 * time.Millisecond
	for time.Now().Before(deadline) {
		var probe outcome // poll bookkeeping is harness overhead, not stream traffic
		status, body, err := r.exchange(ctx, hc, http.MethodGet, r.Server+"/v1/jobs/"+id, "", nil, &probe)
		if err != nil || status != http.StatusOK {
			return false, true
		}
		var env dkapi.JobEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			return false, true
		}
		if env.Terminal() {
			return env.Status == dkapi.JobDone, env.Status == dkapi.JobFailed
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return false, true
		case <-t.C:
		}
		delay = delay * 3 / 2
		if delay > time.Second {
			delay = time.Second
		}
	}
	return false, true
}

// aggregate folds outcomes into the report.
func aggregate(p Profile, seed int64, concurrency int, elapsed time.Duration, reqs []Request, outcomes []outcome) *Report {
	latencies := map[string][]float64{}
	routes := map[string]*RouteReport{}
	var totals Totals
	var jobs JobsReport
	var waits []float64
	for _, o := range outcomes {
		rr := routes[o.route]
		if rr == nil {
			rr = &RouteReport{}
			routes[o.route] = rr
		}
		rr.Count++
		totals.Requests++
		latencies[o.route] = append(latencies[o.route], o.ms)
		if o.errored {
			rr.Errors++
			totals.Errors++
		}
		rr.Throttled += o.throttled
		totals.Throttled += o.throttled
		rr.Server5xx += o.fives
		totals.Server5xx += o.fives
		rr.Retries += o.retries
		totals.Retries += o.retries
		if o.async {
			jobs.Submitted++
			if o.jobDone {
				jobs.Done++
			}
			if o.jobFailed {
				jobs.Failed++
			}
			waits = append(waits, o.jobWaitMS)
		}
	}
	rep := &Report{
		Schema:      SchemaVersion,
		Profile:     p,
		Seed:        seed,
		Concurrency: concurrency,
		DurationMS:  float64(elapsed) / float64(time.Millisecond),
		Totals:      totals,
		Routes:      map[string]RouteReport{},
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(reqs)) / elapsed.Seconds()
	}
	for key, rr := range routes {
		ls := latencies[key]
		sort.Float64s(ls)
		rr.P50MS = percentile(ls, 0.50)
		rr.P95MS = percentile(ls, 0.95)
		rr.P99MS = percentile(ls, 0.99)
		rr.MaxMS = ls[len(ls)-1]
		rep.Routes[key] = *rr
	}
	sort.Float64s(waits)
	jobs.WaitP50MS = percentile(waits, 0.50)
	jobs.WaitP99MS = percentile(waits, 0.99)
	if len(waits) > 0 {
		jobs.WaitMaxMS = waits[len(waits)-1]
	}
	rep.Jobs = jobs
	return rep
}

// Summarize renders a human-readable run summary.
func Summarize(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "profile %s seed %d: %d requests, %d workers, %.1fs, %.1f req/s\n",
		rep.Profile.Name, rep.Seed, rep.Totals.Requests, rep.Concurrency,
		rep.DurationMS/1000, rep.Throughput)
	keys := make([]string, 0, len(rep.Routes))
	for key := range rep.Routes {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		rr := rep.Routes[key]
		fmt.Fprintf(w, "  %-22s n=%-4d err=%-3d 429=%-3d p50=%7.1fms p95=%7.1fms p99=%7.1fms\n",
			key, rr.Count, rr.Errors, rr.Throttled, rr.P50MS, rr.P95MS, rr.P99MS)
	}
	if rep.Jobs.Submitted > 0 {
		fmt.Fprintf(w, "  jobs: %d submitted, %d done, %d failed, wait p50=%.1fms p99=%.1fms\n",
			rep.Jobs.Submitted, rep.Jobs.Done, rep.Jobs.Failed, rep.Jobs.WaitP50MS, rep.Jobs.WaitP99MS)
	}
}
