package load

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/pkg/dkapi"
)

// streamBytes renders a generated stream canonically.
func streamBytes(t *testing.T, p Profile, seed int64) []byte {
	t.Helper()
	reqs, err := Generate(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenerateDeterministic is the harness's core contract: the same
// (profile, seed) yields a byte-identical request stream at any worker
// count and across repeated runs, and a different seed yields a
// different stream.
func TestGenerateDeterministic(t *testing.T) {
	defer parallel.SetWorkers(0)
	for _, p := range []Profile{Smoke(), Steady()} {
		parallel.SetWorkers(1)
		serial := streamBytes(t, p, 42)
		repeat := streamBytes(t, p, 42)
		if !bytes.Equal(serial, repeat) {
			t.Fatalf("%s: two serial runs differ", p.Name)
		}
		for _, workers := range []int{2, 3, 8} {
			parallel.SetWorkers(workers)
			if got := streamBytes(t, p, 42); !bytes.Equal(serial, got) {
				t.Fatalf("%s: stream differs at %d workers", p.Name, workers)
			}
		}
		parallel.SetWorkers(0)
		if other := streamBytes(t, p, 43); bytes.Equal(serial, other) {
			t.Fatalf("%s: seeds 42 and 43 produced identical streams", p.Name)
		}
	}
}

// TestGeneratedSpecsValid holds Generate to "randomized but valid":
// every JSON body it emits must pass the same validation the server
// runs, and every edge list must parse. A load harness that sends
// invalid traffic measures the error path, not the service.
func TestGeneratedSpecsValid(t *testing.T) {
	for _, p := range []Profile{Smoke(), Steady()} {
		reqs, err := Generate(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != p.Requests {
			t.Fatalf("%s: %d requests, want %d", p.Name, len(reqs), p.Requests)
		}
		kinds := map[string]int{}
		for _, r := range reqs {
			kinds[r.Kind]++
			assertRequestValid(t, p, r)
		}
		// Every weighted kind appears in a stream this long.
		for _, k := range []string{KindExtract, KindGenerate, KindCompare, KindPipeline, KindStats} {
			if kinds[k] == 0 {
				t.Errorf("%s: kind %s never drawn in %d requests", p.Name, k, p.Requests)
			}
		}
	}
}

// assertRequestValid applies per-kind wire validation.
func assertRequestValid(t *testing.T, p Profile, r Request) {
	t.Helper()
	switch r.Kind {
	case KindExtract:
		if !strings.HasPrefix(r.Path, "/v1/extract?d=") || r.Method != "POST" {
			t.Fatalf("request %d: malformed extract: %s %s", r.Index, r.Method, r.Path)
		}
		if len(r.Body) == 0 {
			t.Fatalf("request %d: extract without an edge list", r.Index)
		}
	case KindGenerate:
		var gr dkapi.GenerateRequest
		if err := json.Unmarshal(r.Body, &gr); err != nil {
			t.Fatalf("request %d: generate body: %v", r.Index, err)
		}
		if gr.Source.Edges == "" || gr.Replicas < 1 || gr.Replicas > p.MaxReplicas {
			t.Fatalf("request %d: generate out of bounds: %+v", r.Index, gr)
		}
	case KindCompare:
		var cr dkapi.CompareRequest
		if err := json.Unmarshal(r.Body, &cr); err != nil {
			t.Fatalf("request %d: compare body: %v", r.Index, err)
		}
		if cr.A.Edges == "" || cr.B.Edges == "" {
			t.Fatalf("request %d: compare without inline graphs", r.Index)
		}
	case KindPipeline:
		var pr dkapi.PipelineRequest
		if err := json.Unmarshal(r.Body, &pr); err != nil {
			t.Fatalf("request %d: pipeline body: %v", r.Index, err)
		}
		if err := pipeline.Validate(pr, pipeline.Limits{}); err != nil {
			t.Fatalf("request %d: generated pipeline rejected by the server's validator: %v", r.Index, err)
		}
	case KindStats:
		if r.Method != "GET" || r.Path != "/v1/stats" {
			t.Fatalf("request %d: malformed stats read: %s %s", r.Index, r.Method, r.Path)
		}
	default:
		t.Fatalf("request %d: unknown kind %q", r.Index, r.Kind)
	}
}

// TestRunSmokeAgainstServer replays the whole smoke stream against an
// in-process server: zero 5xx, zero failed jobs, complete report that
// passes Verify and gates green under the default SLO.
func TestRunSmokeAgainstServer(t *testing.T) {
	srv := service.New(service.Options{})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	p := Smoke()
	reqs, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Server: ts.URL, Concurrency: 4, ClientID: "dkload-test"}
	rep, err := runner.Run(t.Context(), p, 11, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rep.SLO = DefaultSLO(p)
	if rep.Totals.Server5xx != 0 {
		t.Fatalf("%d server 5xx during smoke replay", rep.Totals.Server5xx)
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("%d errors during smoke replay: %+v", rep.Totals.Errors, rep.Routes)
	}
	if rep.Jobs.Submitted == 0 || rep.Jobs.Failed != 0 || rep.Jobs.Done != rep.Jobs.Submitted {
		t.Fatalf("job accounting off: %+v", rep.Jobs)
	}
	if err := Verify(rep); err != nil {
		t.Fatalf("fresh smoke report fails Verify: %v", err)
	}
	// Latency bounds are machine-dependent; gate only the structural SLO
	// terms here by lifting the p99 bounds out of the way.
	lax := rep.SLO
	lax.RouteP99MS = map[string]float64{}
	for k := range rep.SLO.RouteP99MS {
		lax.RouteP99MS[k] = 1e9
	}
	if v := Gate(rep, lax); len(v) != 0 {
		t.Fatalf("smoke run violates its own structural SLO: %v", v)
	}
}

// TestGateViolations: a report over budget trips every matching clause.
func TestGateViolations(t *testing.T) {
	p := Smoke()
	rep := &Report{
		Schema:      SchemaVersion,
		Profile:     p,
		Concurrency: 1,
		DurationMS:  1000,
		Totals:      Totals{Requests: 100, Errors: 7, Server5xx: 2},
		Routes: map[string]RouteReport{
			"POST /v1/extract": {Count: 100, P99MS: 900},
		},
	}
	slo := SLO{
		MaxErrorRate: 0.01,
		MaxServer5xx: 0,
		RouteP99MS:   map[string]float64{"POST /v1/extract": 500, "GET /v1/stats": 100},
	}
	v := Gate(rep, slo)
	if len(v) != 4 {
		t.Fatalf("got %d violations (%v), want 4: error rate, 5xx, slow route, absent route", len(v), v)
	}
}

// TestVerifyRejects exercises Verify's failure modes.
func TestVerifyRejects(t *testing.T) {
	good := func() *Report {
		p := Smoke()
		rep := &Report{
			Schema: SchemaVersion, Profile: p, Seed: 1, Concurrency: 2,
			DurationMS: 100, Totals: Totals{Requests: int64(p.Requests)},
			Routes: map[string]RouteReport{}, SLO: DefaultSLO(p),
		}
		per := int64(p.Requests / len(ExpectedRoutes(p)))
		rem := int64(p.Requests) - per*int64(len(ExpectedRoutes(p)))
		for i, key := range ExpectedRoutes(p) {
			n := per
			if i == 0 {
				n += rem
			}
			rep.Routes[key] = RouteReport{Count: n, P50MS: 1, P95MS: 2, P99MS: 3, MaxMS: 4}
		}
		return rep
	}
	if err := Verify(good()); err != nil {
		t.Fatalf("baseline report rejected: %v", err)
	}
	for name, breakIt := range map[string]func(*Report){
		"wrong schema":        func(r *Report) { r.Schema = "dkload/v0" },
		"missing route":       func(r *Report) { delete(r.Routes, "POST /v1/extract") },
		"count mismatch":      func(r *Report) { r.Totals.Requests += 5 },
		"unsorted percentile": func(r *Report) { rr := r.Routes["GET /v1/stats"]; rr.P99MS = 0.5; r.Routes["GET /v1/stats"] = rr },
		"slo without bound":   func(r *Report) { delete(r.SLO.RouteP99MS, "POST /v1/compare") },
		"zero error budget":   func(r *Report) { r.SLO.MaxErrorRate = 0 },
	} {
		rep := good()
		breakIt(rep)
		if err := Verify(rep); err == nil {
			t.Errorf("%s: Verify accepted a broken report", name)
		}
	}
}
