package core

// Version is the single authoritative release string of the dK toolkit.
// Every binary reports it through its -version flag and the HTTP service
// exposes it on GET /v1/stats, so one constant answers "which build is
// this?" across the whole surface.
const Version = "0.2.0"

// VersionLine formats the conventional "-version" output for a named
// binary, e.g. "dkserved 0.2.0".
func VersionLine(binary string) string {
	return binary + " " + Version
}
