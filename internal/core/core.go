// Package core is the public face of the dK-series library: it ties
// together extraction of dK-distributions (internal/dk), every graph
// construction approach of the paper (internal/generate), and the metric
// suite (internal/metrics) behind a small orchestration API mirroring the
// paper's workflow:
//
//	profile, _ := core.Extract(g, 2)              // measure dK-distribution
//	synth, _   := core.Generate(profile, 2, core.MethodPseudograph, opt)
//	random, _  := core.Randomize(g, 2, opt)       // dK-randomize an input
//	report, _  := core.Compare(g, synth, opt)     // metric side-by-side
//
// Depth d selects the dK-series member: 0 (average degree), 1 (degree
// distribution), 2 (joint degree distribution), 3 (wedge/triangle
// distributions).
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dk"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Method selects a construction algorithm family (Section 4.1).
type Method int

// Construction methods. Not every (method, depth) pair exists: the paper
// proves no pseudograph/matching generalization beyond d = 2 and
// randomizing rewiring needs an original graph, not just a distribution.
const (
	// MethodStochastic connects node pairs independently with
	// depth-specific probabilities (supported for d = 0, 1, 2).
	MethodStochastic Method = iota
	// MethodPseudograph is the configuration model family
	// (d = 1, 2); the result is the giant connected component per the
	// paper's recipe.
	MethodPseudograph
	// MethodMatching is loop-avoiding stub matching (d = 1, 2),
	// realizing the target distribution exactly.
	MethodMatching
	// MethodTargeting bootstraps a (d−1)K graph and applies dK-targeting
	// (d−1)K-preserving rewiring (d = 1, 2, 3).
	MethodTargeting
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodStochastic:
		return "stochastic"
	case MethodPseudograph:
		return "pseudograph"
	case MethodMatching:
		return "matching"
	case MethodTargeting:
		return "targeting"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures generation.
type Options struct {
	// Rng drives all randomness (required).
	Rng *rand.Rand
	// Target tunes targeting-rewire runs; zero values use defaults.
	Target generate.TargetOptions
}

// Extract computes the dK-distributions of g up to depth d (0..3).
func Extract(g *graph.CSR, d int) (*dk.Profile, error) {
	return dk.Extract(g, d)
}

// Generate constructs a random graph with property P_d of the profile,
// using the requested method. The profile must have been extracted to
// depth >= d.
func Generate(p *dk.Profile, d int, method Method, opt Options) (*graph.CSR, error) {
	if opt.Rng == nil {
		return nil, fmt.Errorf("core: Options.Rng is required")
	}
	if p.D < d {
		return nil, fmt.Errorf("core: profile depth %d < requested %d", p.D, d)
	}
	gopt := generate.Options{Rng: opt.Rng}
	switch {
	case d == 0:
		return generate.Stochastic0K(p.N, p.AvgDegree, gopt)
	case d == 1 && method == MethodStochastic:
		return generate.Stochastic1K(p.Degrees, gopt)
	case d == 1 && method == MethodPseudograph:
		res, err := generate.Pseudograph1K(p.Degrees, gopt)
		if err != nil {
			return nil, err
		}
		return res.GCC, nil
	case d == 1 && method == MethodMatching:
		return generate.Matching1K(p.Degrees, gopt)
	case d == 1 && method == MethodTargeting:
		start, err := generate.Stochastic0K(p.N, p.AvgDegree, gopt)
		if err != nil {
			return nil, err
		}
		return runTargeting(start, p, 1, opt)
	case d == 2 && method == MethodStochastic:
		return generate.Stochastic2K(p.Joint, gopt)
	case d == 2 && method == MethodPseudograph:
		res, err := generate.Pseudograph2K(p.Joint, gopt)
		if err != nil {
			return nil, err
		}
		return res.GCC, nil
	case d == 2 && method == MethodMatching:
		return generate.Matching2K(p.Joint, gopt)
	case d == 2 && method == MethodTargeting:
		// Paper §5.1: bootstrap a 1K-random graph, then apply 2K-targeting
		// 1K-preserving rewiring. Matching realizes the degree sequence
		// exactly (pseudograph GCC extraction loses leaf-heavy graphs'
		// nodes, leaving the JDD target unreachable); fall back to the
		// full simplified pseudograph when matching deadlocks.
		start, err := generate.Matching1K(p.Degrees, gopt)
		if err != nil {
			res, err2 := generate.Pseudograph1K(p.Degrees, gopt)
			if err2 != nil {
				return nil, err
			}
			start = res.Full
		}
		return runTargeting(start, p, 2, opt)
	case d == 3 && method == MethodTargeting:
		// Paper §5.1: 2K-random bootstrap, then 3K-targeting
		// 2K-preserving rewiring. Matching realizes the JDD exactly.
		start, err := generate.Matching2K(p.Joint, gopt)
		if err != nil {
			res, err2 := generate.Pseudograph2K(p.Joint, gopt)
			if err2 != nil {
				return nil, err
			}
			start = res.Full
		}
		return runTargeting(start, p, 3, opt)
	case d == 3:
		return nil, fmt.Errorf("core: d=3 generation from a distribution supports only MethodTargeting (the paper found no pseudograph/matching generalization past d=2); to 3K-randomize an existing graph use Randomize")
	default:
		return nil, fmt.Errorf("core: unsupported (depth=%d, method=%s)", d, method)
	}
}

func runTargeting(start *graph.CSR, p *dk.Profile, d int, opt Options) (*graph.CSR, error) {
	topt := opt.Target
	topt.Rng = opt.Rng
	topt.StopAtZero = true
	res, err := generate.TargetRewire(start, p, d, topt)
	if err != nil {
		return nil, err
	}
	return res.FinalGraph, nil
}

// Randomize returns a dK-random counterpart of g: a graph with the same
// dK-distribution at depth d but otherwise maximally random, produced by
// dK-preserving randomizing rewiring (the paper's default in Section 5.2).
func Randomize(g *graph.CSR, d int, opt Options) (*graph.CSR, error) {
	if opt.Rng == nil {
		return nil, fmt.Errorf("core: Options.Rng is required")
	}
	out, _, err := generate.Randomize(g, d, generate.RandomizeOptions{Rng: opt.Rng})
	return out, err
}

// Distance returns D_d between the dK-distributions of two profiles.
func Distance(a, b *dk.Profile, d int) (float64, error) {
	return dk.Distance(a, b, d)
}

// ComparisonReport pairs metric summaries of two graphs (computed on
// their giant connected components, as in the paper's tables).
type ComparisonReport struct {
	A, B metrics.Summary
}

// Compare computes the scalar metric suite for both graphs' GCCs.
func Compare(a, b *graph.CSR, opt Options) (*ComparisonReport, error) {
	if opt.Rng == nil {
		return nil, fmt.Errorf("core: Options.Rng is required")
	}
	ga, _ := graph.GiantComponent(a)
	gb, _ := graph.GiantComponent(b)
	sa, err := metrics.Summarize(ga.Static(), metrics.SummaryOptions{Spectral: true, Rng: opt.Rng})
	if err != nil {
		return nil, err
	}
	sb, err := metrics.Summarize(gb.Static(), metrics.SummaryOptions{Spectral: true, Rng: opt.Rng})
	if err != nil {
		return nil, err
	}
	return &ComparisonReport{A: sa, B: sb}, nil
}
