package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/stats"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func testGraph(t testing.TB, rng *rand.Rand, n int) *graph.CSR {
	t.Helper()
	pl, err := stats.NewPowerLaw(2.2, 1, n/4)
	if err != nil {
		t.Fatal(err)
	}
	var seq []int
	for {
		seq = pl.DegreeSequence(rng, n)
		if dk.Graphical(seq) {
			break
		}
	}
	g := graph.NewCSR(n)
	// Greedy Havel–Hakimi-ish seeding then randomize lightly — enough for
	// an exercise graph; correctness of generators is tested in their own
	// packages.
	type nd struct{ id, left int }
	nodes := make([]nd, n)
	for i, k := range seq {
		nodes[i] = nd{i, k}
	}
	for {
		// Sort by remaining stubs descending (insertion sort fine).
		for i := 1; i < len(nodes); i++ {
			x := nodes[i]
			j := i - 1
			for j >= 0 && nodes[j].left < x.left {
				nodes[j+1] = nodes[j]
				j--
			}
			nodes[j+1] = x
		}
		if nodes[0].left == 0 {
			break
		}
		u := nodes[0]
		placed := false
		for i := 1; i < len(nodes) && u.left > 0; i++ {
			if nodes[i].left == 0 {
				break
			}
			if !g.HasEdge(u.id, nodes[i].id) {
				if err := g.AddEdge(u.id, nodes[i].id); err != nil {
					t.Fatal(err)
				}
				nodes[i].left--
				u.left--
				placed = true
			}
		}
		nodes[0] = u
		if !placed {
			break
		}
	}
	gcc, _ := graph.GiantComponent(g)
	return gcc
}

func TestExtractAndDistance(t *testing.T) {
	rng := newRng(1)
	g := testGraph(t, rng, 120)
	p, err := Extract(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := Distance(p, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestGenerateAllSupportedCombos(t *testing.T) {
	rng := newRng(2)
	src := testGraph(t, rng, 150)
	p, err := Extract(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d      int
		method Method
	}{
		{0, MethodStochastic},
		{1, MethodStochastic}, {1, MethodPseudograph}, {1, MethodMatching}, {1, MethodTargeting},
		{2, MethodStochastic}, {2, MethodPseudograph}, {2, MethodMatching}, {2, MethodTargeting},
		{3, MethodTargeting},
	}
	for _, tc := range cases {
		t.Run(tc.method.String()+"-"+string(rune('0'+tc.d)), func(t *testing.T) {
			g, err := Generate(p, tc.d, tc.method, Options{Rng: rng})
			if err != nil {
				t.Fatalf("Generate(d=%d, %s): %v", tc.d, tc.method, err)
			}
			if g.N() == 0 || g.M() == 0 {
				t.Fatalf("Generate(d=%d, %s) returned empty graph", tc.d, tc.method)
			}
			// Average degree in the right ballpark for all methods.
			if g.AvgDegree() < 0.3*p.AvgDegree || g.AvgDegree() > 3*p.AvgDegree {
				t.Errorf("avg degree %v vs target %v", g.AvgDegree(), p.AvgDegree)
			}
		})
	}
}

func TestGenerateMatchingIsExact(t *testing.T) {
	rng := newRng(3)
	src := testGraph(t, rng, 100)
	p, _ := Extract(src, 2)
	g, err := Generate(p, 2, MethodMatching, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := Extract(g, 2)
	if d, _ := Distance(p, q, 2); d != 0 {
		t.Errorf("matching 2K distance = %v, want 0", d)
	}
}

func TestGenerateUnsupported(t *testing.T) {
	rng := newRng(4)
	src := testGraph(t, rng, 60)
	p, _ := Extract(src, 3)
	if _, err := Generate(p, 3, MethodPseudograph, Options{Rng: rng}); err == nil {
		t.Error("3K pseudograph accepted")
	}
	shallow, _ := Extract(src, 1)
	if _, err := Generate(shallow, 2, MethodMatching, Options{Rng: rng}); err == nil {
		t.Error("depth beyond profile accepted")
	}
	if _, err := Generate(p, 1, MethodMatching, Options{}); err == nil {
		t.Error("missing Rng accepted")
	}
}

func TestRandomizePreservesProfile(t *testing.T) {
	rng := newRng(5)
	src := testGraph(t, rng, 100)
	p, _ := Extract(src, 2)
	out, err := Randomize(src, 2, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := Extract(out, 2)
	if d, _ := Distance(p, q, 2); d != 0 {
		t.Errorf("2K-randomizing broke JDD: %v", d)
	}
}

func TestCompare(t *testing.T) {
	rng := newRng(6)
	a := testGraph(t, rng, 90)
	b := testGraph(t, rng, 90)
	rep, err := Compare(a, b, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if rep.A.N == 0 || rep.B.N == 0 {
		t.Error("empty summaries")
	}
	if rep.A.LambdaN <= 0 || rep.B.LambdaN <= 0 {
		t.Error("missing spectra")
	}
	if math.IsNaN(rep.A.DBar) || math.IsNaN(rep.B.DBar) {
		t.Error("NaN distances")
	}
	if _, err := Compare(a, b, Options{}); err == nil {
		t.Error("missing Rng accepted")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		MethodStochastic:  "stochastic",
		MethodPseudograph: "pseudograph",
		MethodMatching:    "matching",
		MethodTargeting:   "targeting",
		Method(99):        "Method(99)",
	} {
		if got := m.String(); !strings.Contains(got, want) {
			t.Errorf("Method(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
