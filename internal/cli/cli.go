// Package cli carries the shared plumbing of every command-line tool in
// this repository: version/workers flag handling, the local-vs-remote
// execution switch (-server), deterministic JSON rendering, and graph
// reference loading. Each cmd/ binary is a thin flag parser over this
// package plus the pkg/dk facade (local) or pkg/dkclient SDK (remote),
// so the two execution modes cannot drift apart.
package cli

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/pkg/dk"
	"repro/pkg/dkapi"
	"repro/pkg/dkclient"
)

// Common is the flag set every tool shares.
type Common struct {
	// Workers is the process worker budget (0 = all cores). Results are
	// identical at any value.
	Workers int
	// Server is the base URL of a dkserved instance; empty = local
	// in-process execution through pkg/dk.
	Server string
}

// Apply installs the worker budget.
func (c Common) Apply() {
	w := c.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	parallel.SetWorkers(w)
}

// Remote reports whether a -server URL was given.
func (c Common) Remote() bool { return c.Server != "" }

// Client builds the SDK client for the configured server.
func (c Common) Client() (*dkclient.Client, error) {
	return dkclient.New(c.Server)
}

// Version prints the version line and reports whether the flag was set
// (the caller returns immediately when it was).
func Version(tool string, flagSet bool) bool {
	if flagSet {
		fmt.Println(core.VersionLine(tool))
	}
	return flagSet
}

// Fatal prints "tool: err" and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// PrintJSON renders v as indented JSON with a trailing newline — the
// one rendering every tool uses, so local and remote runs of the same
// operation emit byte-identical output.
func PrintJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// LoadRef materializes a graph reference for transport: file references
// are read and inlined as edge lists (so the same bytes reach local and
// remote executors), everything else passes through.
func LoadRef(ref dkapi.GraphRef) (dkapi.GraphRef, error) {
	if ref.File == "" {
		return ref, nil
	}
	g, err := dk.ReadGraphFile(ref.File)
	if err != nil {
		return dkapi.GraphRef{}, err
	}
	return dkapi.GraphRef{Edges: g.Edges()}, nil
}

// LoadPipeline reads a pipeline spec from a JSON file ("-" = stdin) and
// inlines every file reference.
func LoadPipeline(path string) (dkapi.PipelineRequest, error) {
	var req dkapi.PipelineRequest
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return req, err
	}
	if err := json.Unmarshal(data, &req); err != nil {
		return req, fmt.Errorf("parse pipeline %s: %w", path, err)
	}
	for i := range req.Steps {
		st := &req.Steps[i]
		for _, ref := range []**dkapi.GraphRef{&st.Source, &st.A, &st.B} {
			if *ref == nil {
				continue
			}
			resolved, err := LoadRef(**ref)
			if err != nil {
				return req, fmt.Errorf("step %q: %w", st.ID, err)
			}
			**ref = resolved
		}
		for j := range st.Ensemble {
			resolved, err := LoadRef(st.Ensemble[j])
			if err != nil {
				return req, fmt.Errorf("step %q: ensemble[%d]: %w", st.ID, j, err)
			}
			st.Ensemble[j] = resolved
		}
	}
	return req, nil
}

// GraphArg turns a CLI positional argument into a graph reference:
// "dataset:name" (optionally "dataset:name:seed[:n]") selects a
// built-in dataset, everything else is an edge-list file path ("-" =
// stdin). Malformed seed/n suffixes are errors, not silent zeros — a
// typo must not synthesize a plausible-looking wrong graph.
func GraphArg(arg string) (dkapi.GraphRef, error) {
	rest, ok := strings.CutPrefix(arg, "dataset:")
	if !ok {
		return dkapi.GraphRef{File: arg}, nil
	}
	parts := strings.Split(rest, ":")
	if len(parts) > 3 {
		return dkapi.GraphRef{}, fmt.Errorf("dataset reference %q: want dataset:name[:seed[:n]]", arg)
	}
	ref := dkapi.GraphRef{Dataset: parts[0]}
	var err error
	if len(parts) > 1 {
		if ref.Seed, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return dkapi.GraphRef{}, fmt.Errorf("dataset reference %q: seed %q is not an integer", arg, parts[1])
		}
	}
	if len(parts) > 2 {
		if ref.N, err = strconv.Atoi(parts[2]); err != nil {
			return dkapi.GraphRef{}, fmt.Errorf("dataset reference %q: n %q is not an integer", arg, parts[2])
		}
	}
	return ref, nil
}

// LoadGraphArg is GraphArg + LoadRef: parse the positional argument and
// inline any file reference.
func LoadGraphArg(arg string) (dkapi.GraphRef, error) {
	ref, err := GraphArg(arg)
	if err != nil {
		return dkapi.GraphRef{}, err
	}
	return LoadRef(ref)
}

// RemoteRef prepares a reference for a remote request: inline edge
// lists are content-hashed locally and uploaded only if the server
// lacks them (dkclient.EnsureGraph), so repeated invocations against
// the same topology ship a hash, not the graph. Other reference forms
// pass through.
func RemoteRef(c *dkclient.Client, ref dkapi.GraphRef) (dkapi.GraphRef, error) {
	if ref.Edges == "" {
		return ref, nil
	}
	info, _, err := c.EnsureGraph(Ctx(), ref.Edges)
	if err != nil {
		return dkapi.GraphRef{}, err
	}
	return dkapi.GraphRef{Hash: info.Hash}, nil
}

// ResolveLocal resolves a loaded (file-free) reference in a local
// session — the session interns it so later session calls can use the
// returned graph.
func ResolveLocal(ref dkapi.GraphRef) (*dk.Graph, error) {
	switch {
	case ref.Edges != "":
		return dk.ParseGraph(ref.Edges)
	case ref.Dataset != "":
		return dk.DatasetGraph(ref.Dataset, ref.Seed, ref.N)
	case ref.Hash != "":
		return nil, fmt.Errorf("hash references need -server (local sessions are per-invocation)")
	default:
		return nil, fmt.Errorf("empty graph reference")
	}
}

// Ctx returns the base context for CLI operations.
func Ctx() context.Context { return context.Background() }

// SplitStreamToFiles splits a bulk job-result stream into files without
// holding more than one line in memory: each marker line accepted by
// pick starts a new file; all other lines are copied verbatim into the
// current file, so the written bytes match what a local run writes with
// WriteEdgeList.
func SplitStreamToFiles(r io.Reader, pick func(marker string) (string, bool)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *os.File
	var buf *bufio.Writer
	closeCur := func() error {
		if cur == nil {
			return nil
		}
		flushErr := buf.Flush()
		closeErr := cur.Close()
		cur, buf = nil, nil
		if flushErr != nil {
			return flushErr
		}
		return closeErr
	}
	defer closeCur()
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# ") {
			if path, ok := pick(line); ok {
				if err := closeCur(); err != nil {
					return err
				}
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				cur, buf = f, bufio.NewWriter(f)
				continue
			}
		}
		if cur == nil {
			return fmt.Errorf("bulk result did not start with a replica marker (got %q)", line)
		}
		if _, err := fmt.Fprintln(buf, line); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return closeCur()
}

// RemotePipelineRefs runs every external inline-edges reference of a
// pipeline through RemoteRef, so repeated submissions of a spec built
// from local files ship content hashes instead of re-uploading the
// topologies (and stay under the server's body cap).
func RemotePipelineRefs(c *dkclient.Client, req *dkapi.PipelineRequest) error {
	for i := range req.Steps {
		st := &req.Steps[i]
		for _, ref := range []*dkapi.GraphRef{st.Source, st.A, st.B} {
			if ref == nil {
				continue
			}
			resolved, err := RemoteRef(c, *ref)
			if err != nil {
				return fmt.Errorf("step %q: %w", st.ID, err)
			}
			*ref = resolved
		}
		for j := range st.Ensemble {
			resolved, err := RemoteRef(c, st.Ensemble[j])
			if err != nil {
				return fmt.Errorf("step %q: ensemble[%d]: %w", st.ID, j, err)
			}
			st.Ensemble[j] = resolved
		}
	}
	return nil
}
