package service

import (
	"context"
	"net/http"
	"sync"

	"repro/internal/graph"
	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// shouldTrace decides whether a request gets a trace: explicit opt-in
// via ?trace=1 on any route, plus the asynchronous submission routes by
// default — a job's trace is its post-hoc execution record, and the
// per-job cost is negligible next to the job itself. DisableTracing
// turns the whole subsystem off.
func (s *Server) shouldTrace(r *http.Request) bool {
	if s.opts.DisableTracing {
		return false
	}
	if r.URL.RawQuery != "" && r.URL.Query().Get("trace") == "1" {
		return true
	}
	if r.Method == http.MethodPost {
		switch r.URL.Path {
		case "/v1/pipelines", "/v1/generate":
			return true
		}
	}
	return false
}

// traceStore retains finished traces for GET /v1/jobs/{id}/trace: a
// bounded memory map (same retention count as terminal jobs), written
// through to the artifact store's jobs directory when one is configured
// — so a job's trace survives restarts alongside its journal records.
type traceStore struct {
	mu    sync.Mutex
	byJob map[string][]byte
	order []string // insertion order, for retention eviction
	max   int
	disk  *store.Store // nil = memory-only
}

func newTraceStore(max int, disk *store.Store) *traceStore {
	if max < 1 {
		max = 1
	}
	return &traceStore{byJob: make(map[string][]byte), max: max, disk: disk}
}

// save encodes and retains tr under id, evicting oldest-first beyond
// the bound. Disk write-through is best-effort: a full disk must not
// fail the job whose trace this is.
func (ts *traceStore) save(id string, tr *trace.Trace) {
	data := tr.MarshalJSONL()
	ts.mu.Lock()
	if _, exists := ts.byJob[id]; !exists {
		ts.order = append(ts.order, id)
	}
	ts.byJob[id] = data
	for len(ts.byJob) > ts.max {
		delete(ts.byJob, ts.order[0])
		ts.order = ts.order[1:]
	}
	ts.mu.Unlock()
	if ts.disk != nil {
		_ = ts.disk.PutTrace(id, data)
		ts.disk.PruneTraces(ts.max)
	}
}

// get returns the encoded trace for id, falling back to the disk tier
// after a memory eviction or restart.
func (ts *traceStore) get(id string) ([]byte, bool) {
	ts.mu.Lock()
	data, ok := ts.byJob[id]
	ts.mu.Unlock()
	if ok {
		return data, true
	}
	if ts.disk == nil {
		return nil, false
	}
	data, err := ts.disk.GetTrace(id)
	return data, err == nil
}

// jobTracer carries a request's trace across the async job boundary:
// the "job" span (with its "queued" child) opens under the request's
// root span at submission, the wrapped job body closes them as the job
// executes, and the finished trace is saved under the job id — which
// the handler only learns after submission, hence the id channel (the
// buffered send in bind happens-before the receive in the wrapped
// body's save). A nil *jobTracer is the disabled tracer: every method
// no-ops and wrap returns the body unchanged.
type jobTracer struct {
	s       *Server
	tr      *trace.Trace
	jobSpan *trace.Span
	queued  *trace.Span
	idCh    chan string
}

// newJobTracer opens the job span under the request's root span, or
// returns nil when the request is untraced.
func (s *Server) newJobTracer(r *http.Request, kind string) *jobTracer {
	root := trace.FromContext(r.Context())
	if root == nil {
		return nil
	}
	jt := &jobTracer{s: s, tr: root.Trace(), idCh: make(chan string, 1)}
	jt.jobSpan = root.Child("job", "kind", kind)
	jt.queued = jt.jobSpan.Child("queued")
	return jt
}

// span returns the job span to parent the pipeline run under (nil when
// untraced).
func (jt *jobTracer) span() *trace.Span {
	if jt == nil {
		return nil
	}
	return jt.jobSpan
}

// wrap closes the queued span when the job starts executing, ends the
// job span when the body returns, and saves the encoded trace under the
// job id delivered by bind.
func (jt *jobTracer) wrap(run TrackedJobFunc) TrackedJobFunc {
	if jt == nil {
		return run
	}
	return func(setProgress func(any)) (any, StreamFunc, error) {
		jt.queued.End()
		result, stream, err := run(setProgress)
		if err != nil {
			jt.jobSpan.SetAttr("error", err.Error())
		}
		jt.jobSpan.End()
		if id, ok := <-jt.idCh; ok {
			jt.s.traces.save(id, jt.tr)
		}
		return result, stream, err
	}
}

// bind delivers the submission outcome: the job id on success (which
// names the saved trace), or a closed channel on rejection so a queued
// wrap — there is none, the body never ran — cannot block and the
// request trace still records the failure.
func (jt *jobTracer) bind(job *Job, err error) {
	if jt == nil {
		return
	}
	if err != nil || job == nil {
		jt.jobSpan.SetAttr("error", "submit rejected")
		jt.queued.End()
		jt.jobSpan.End()
		close(jt.idCh)
		return
	}
	jt.jobSpan.SetAttr("job", job.ID())
	jt.idCh <- job.ID()
}

// tracedBackend is svcBackend plus a span cursor: the pipeline executor
// publishes its current step/phase span through SetTraceSpan, and
// handles created by this backend read the cursor at operation time —
// which is what nests artifact-store spans under the exact phase that
// caused them. The executor serializes SetTraceSpan with handle
// operations on its own goroutine, so the cursor needs no lock; the
// concurrent replica fan-out never touches handles.
type tracedBackend struct {
	s   *Server
	cur *trace.Span
}

var _ pipeline.SpanSetter = (*tracedBackend)(nil)

func (b *tracedBackend) SetTraceSpan(sp *trace.Span) { b.cur = sp }

func (b *tracedBackend) Resolve(ref dkapi.GraphRef) (pipeline.Handle, error) {
	e, err := b.s.resolveRef(ref)
	if err != nil {
		return nil, err
	}
	return svcHandle{e: e, s: b.s, tb: b}, nil
}

func (b *tracedBackend) Intern(g *graph.CSR) pipeline.Handle {
	return svcHandle{e: NewDetachedEntry(g), tb: b}
}

// runPipeline executes one pipeline through the shared executor,
// picking the traced backend when a parent span is present. All service
// execution surfaces (sync handlers, jobs, recovery) funnel through
// here so phase timings and trace threading stay uniform.
func (s *Server) runPipeline(req dkapi.PipelineRequest, progress pipeline.Progress, parent *trace.Span) (*pipeline.Outcome, error) {
	var b pipeline.Backend = svcBackend{s}
	if parent != nil {
		b = &tracedBackend{s: s}
	}
	return pipeline.RunTraced(context.Background(), b, req, progress, s.observePhase, parent)
}
