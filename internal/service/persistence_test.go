package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/store"
)

// openTestStore opens an artifact store in a fresh temp dir and returns
// the dir for reopening across simulated restarts.
func openTestStore(t *testing.T) (*store.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, dir
}

const persistEdges = "0 1\n1 2\n2 3\n3 0\n0 2\n"

// TestRestartCacheSurvives is the tentpole acceptance path: extract,
// restart on the same data dir, re-extract — the second server must serve
// the profile from the disk tier with zero extraction runs, and the hash
// reference must keep resolving.
func TestRestartCacheSurvives(t *testing.T) {
	st1, dir := openTestStore(t)
	srv1, ts1 := newTestServer(t, Options{Store: st1})

	var first ExtractResponse
	postJSON(t, ts1.URL+"/v1/extract?d=3", "text/plain", persistEdges, http.StatusOK, &first)
	if first.Cached {
		t.Fatal("first extract reported cached")
	}
	cs := srv1.CacheStats()
	if cs.Extractions != 1 || cs.DiskGraphWrites != 1 || cs.DiskProfileWrites != 1 {
		t.Fatalf("first server cache stats %+v, want 1 extraction / 1 graph write / 1 profile write", cs)
	}
	ts1.Close()
	srv1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new server process on the same data dir.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	srv2, ts2 := newTestServer(t, Options{Store: st2})

	var second ExtractResponse
	postJSON(t, ts2.URL+"/v1/extract?d=3", "text/plain", persistEdges, http.StatusOK, &second)
	if !second.Cached {
		t.Fatal("post-restart extract recomputed instead of hitting the disk tier")
	}
	if second.Graph.Hash != first.Graph.Hash {
		t.Fatalf("hash changed across restart: %s vs %s", second.Graph.Hash, first.Graph.Hash)
	}
	cs = srv2.CacheStats()
	if cs.Extractions != 0 {
		t.Fatalf("post-restart extractions = %d, want 0 (no recomputation)", cs.Extractions)
	}
	if cs.DiskHits == 0 {
		t.Fatalf("post-restart cache stats %+v, want disk hits", cs)
	}

	// The content hash also resolves by reference on the fresh process.
	edgesJSON, _ := json.Marshal(persistEdges)
	body := fmt.Sprintf(`{"a": {"hash": %q}, "b": {"edges": %s}, "d": 1}`,
		first.Graph.Hash, edgesJSON)
	var cmp CompareResponse
	postJSON(t, ts2.URL+"/v1/compare", "application/json", body, http.StatusOK, &cmp)
	if cmp.A.Hash != first.Graph.Hash {
		t.Fatalf("hash reference resolved to %s", cmp.A.Hash)
	}

	// /v1/stats reports the store section with the persisted artifacts.
	var stats StatsResponse
	getJSON(t, ts2.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Store == nil {
		t.Fatal("stats missing store section with a data dir configured")
	}
	if stats.Store.Graphs != 1 || stats.Store.Profiles != 1 {
		t.Fatalf("store stats %+v, want 1 graph / 1 profile", *stats.Store)
	}
	if !stats.Cache.DiskTier {
		t.Fatal("cache stats do not report the disk tier")
	}
}

// TestRestartJobRecovery simulates a server killed mid-generate: the
// journal holds a running (crashed mid-flight) and a queued (never
// started) job whose graph artifact is on disk — exactly what a killed
// process leaves behind. A fresh server on the same data dir must re-run
// both to completion under their original ids.
func TestRestartJobRecovery(t *testing.T) {
	st1, dir := openTestStore(t)
	srv1, ts1 := newTestServer(t, Options{Store: st1})

	var first ExtractResponse
	postJSON(t, ts1.URL+"/v1/extract?d=2", "text/plain", persistEdges, http.StatusOK, &first)
	hash := first.Graph.Hash
	ts1.Close()
	srv1.Close()

	// The kill: no terminal records ever reach the journal.
	d := 2
	spec, _ := json.Marshal(GenerateRequest{
		Source: GraphRef{Hash: hash}, D: &d, Method: "randomize",
		Replicas: 2, Seed: 7, Compare: true,
	})
	mustRecord := func(rec store.JobRecord) {
		t.Helper()
		if err := st1.Journal().Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	mustRecord(store.JobRecord{ID: "j000041", Status: store.JobQueued, Kind: "generate", Spec: spec})
	mustRecord(store.JobRecord{ID: "j000041", Status: store.JobRunning})
	mustRecord(store.JobRecord{ID: "j000042", Status: store.JobQueued, Kind: "generate", Spec: spec})
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	srv2, ts2 := newTestServer(t, Options{Store: st2})

	if got := srv2.JobStats().Recovered; got != 2 {
		t.Fatalf("recovered %d jobs, want 2", got)
	}
	for _, id := range []string{"j000041", "j000042"} {
		job := srv2.jobs.Get(id)
		if job == nil {
			t.Fatalf("recovered job %s not tracked", id)
		}
		view := waitJob(t, job)
		if view.Status != JobDone {
			t.Fatalf("recovered job %s finished %s: %s", id, view.Status, view.Error)
		}
		var result GenerateResult
		raw, _ := json.Marshal(view.Result)
		if err := json.Unmarshal(raw, &result); err != nil {
			t.Fatalf("recovered job %s result: %v", id, err)
		}
		if len(result.Replicas) != 2 || result.Seed != 7 {
			t.Fatalf("recovered job %s result %+v, want 2 replicas seed 7", id, result)
		}
		// Randomize at d=2 preserves the dK-2 distance exactly.
		for _, r := range result.Replicas {
			if r.Distance == nil || *r.Distance != 0 {
				t.Fatalf("recovered job %s replica %+v, want distance 0", id, r)
			}
		}
	}
	// Poll over HTTP too: clients find their pre-restart job ids.
	var view JobView
	getJSON(t, ts2.URL+"/v1/jobs/j000041", http.StatusOK, &view)
	if view.Status != JobDone {
		t.Fatalf("HTTP poll of recovered job: %+v", view)
	}
	// New submissions get ids beyond the replayed sequence.
	body := fmt.Sprintf(`{"source": {"hash": %q}, "replicas": 1}`, hash)
	var acc GenerateAccepted
	postJSON(t, ts2.URL+"/v1/generate", "application/json", body, http.StatusAccepted, &acc)
	if acc.JobID <= "j000042" {
		t.Fatalf("new job id %s not beyond the journaled sequence", acc.JobID)
	}
	// The journal now folds both recovered jobs to done.
	states, err := st2.Journal().Replay()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, s := range states {
		if (s.ID == "j000041" || s.ID == "j000042") && s.Status == store.JobDone {
			done++
		}
	}
	if done != 2 {
		t.Fatalf("journal states %+v, want both recovered jobs done", states)
	}
}

// waitJobHTTP polls the job endpoint until the job is terminal.
func waitJobHTTP(t *testing.T, baseURL, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v JobView
		getJSON(t, baseURL+"/v1/jobs/"+id, http.StatusOK, &v)
		if v.Status == JobDone || v.Status == JobFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestartGenerateDeterminism: the same randomize request with the
// same seed must produce byte-identical replicas whether the source
// graph was parsed from an (arbitrarily ordered) text upload or
// promoted from the binary disk tier after a restart. Randomize draws
// edges by index, so this holds only because the cache canonicalizes
// edge order at intern time.
func TestRestartGenerateDeterminism(t *testing.T) {
	// A random graph uploaded in scrambled, partly reversed line order —
	// nothing like the canonical order the binary artifact decodes to.
	rng := rand.New(rand.NewSource(3))
	g := graph.NewCSR(30)
	for g.M() < 60 {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	var sb strings.Builder
	for i, e := range edges {
		if i%3 == 0 {
			fmt.Fprintf(&sb, "%d %d\n", e.V, e.U)
		} else {
			fmt.Fprintf(&sb, "%d %d\n", e.U, e.V)
		}
	}
	upload := sb.String()

	generate := func(ts *httptest.Server, source string) string {
		t.Helper()
		body := fmt.Sprintf(`{"source": %s, "method": "randomize", "d": 2, "replicas": 1, "seed": 5}`, source)
		var acc GenerateAccepted
		postJSON(t, ts.URL+"/v1/generate", "application/json", body, http.StatusAccepted, &acc)
		if v := waitJobHTTP(t, ts.URL, acc.JobID); v.Status != JobDone {
			t.Fatalf("generate job: %+v", v)
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return string(raw)
	}

	st1, dir := openTestStore(t)
	_, ts1 := newTestServer(t, Options{Store: st1})
	var ext ExtractResponse
	postJSON(t, ts1.URL+"/v1/extract?d=2", "text/plain", upload, http.StatusOK, &ext)
	uploadJSON, _ := json.Marshal(upload)
	first := generate(ts1, fmt.Sprintf(`{"edges": %s}`, uploadJSON))
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	srv2, ts2 := newTestServer(t, Options{Store: st2})
	second := generate(ts2, fmt.Sprintf(`{"hash": %q}`, ext.Graph.Hash))
	if srv2.CacheStats().DiskHits == 0 {
		t.Fatal("second run did not exercise the disk-tier promotion path")
	}
	if first != second {
		t.Fatal("same (hash, seed) generate produced different replicas across a restart")
	}
}

// TestRecoveryUnresolvableSpec: a journaled job whose graph artifact is
// gone is closed out as failed, not silently dropped and not crashing
// startup.
func TestRecoveryUnresolvableSpec(t *testing.T) {
	st1, dir := openTestStore(t)
	d := 2
	spec, _ := json.Marshal(GenerateRequest{
		Source: GraphRef{Hash: "sha256:" + strings.Repeat("ab", 32)}, D: &d,
		Method: "randomize", Replicas: 1,
	})
	if err := st1.Journal().Record(store.JobRecord{ID: "j000009", Status: store.JobQueued, Kind: "generate", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	srv2, ts2 := newTestServer(t, Options{Store: st2})
	if got := srv2.JobStats().Recovered; got != 0 {
		t.Fatalf("recovered %d jobs, want 0", got)
	}
	states, err := st2.Journal().Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Status != store.JobFailed {
		t.Fatalf("journal states %+v, want the job folded to failed", states)
	}
	// The poll contract survives: the id answers "failed" with the
	// reason, not 404.
	var view JobView
	getJSON(t, ts2.URL+"/v1/jobs/j000009", http.StatusOK, &view)
	if view.Status != JobFailed || !strings.Contains(view.Error, "recovery") {
		t.Fatalf("unrecoverable job polled as %+v, want failed with recovery reason", view)
	}
}

// TestGracefulShutdownJournalsQueued: Close fails queued jobs, and the
// journal records it — so a clean shutdown leaves nothing to recover.
func TestGracefulShutdownJournalsQueued(t *testing.T) {
	st, dir := openTestStore(t)
	srv := New(Options{Store: st, JobRunners: 1, JobQueue: 8})

	release := make(chan struct{})
	if _, err := srv.jobs.Submit("blocker", func() (any, StreamFunc, error) {
		<-release
		return nil, nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Give the runner a moment to pick up the blocker, then queue one.
	deadline := time.Now().Add(5 * time.Second)
	for srv.jobs.Stats().Running < 1 {
		if time.Now().After(deadline) {
			t.Fatal("runner never started the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := srv.jobs.Submit("queued", func() (any, StreamFunc, error) { return nil, nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	states, err := st2.Journal().Replay()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range states {
		if !s.Terminal() {
			t.Fatalf("job %s left %s after graceful shutdown", s.ID, s.Status)
		}
		if s.ID == queued.ID() && s.Status == store.JobDone {
			// The queued job may have run before Close drained it; both
			// done and failed are clean terminal outcomes.
			continue
		}
	}
}
