package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// traceEdges builds an edge list big enough for the rewiring loop to
// run many sweeps, so replica spans carry convergence events.
func traceEdges(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	rng := rand.New(rand.NewSource(11))
	seen := map[[2]int]bool{}
	for len(seen) < 60 {
		u, v := rng.Intn(30), rng.Intn(30)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		fmt.Fprintf(&sb, "%d %d\n", u, v)
	}
	return sb.String()
}

// fetchTrace GETs a job's trace and decodes it.
func fetchTrace(t *testing.T, base, id string) *trace.Data {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d; body: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type %q", ct)
	}
	d, err := trace.DecodeBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("job trace invalid: %v", err)
	}
	return d
}

// spanNames collects the multiset of span names in a decoded trace.
func spanNames(d *trace.Data) map[string]int {
	names := map[string]int{}
	for _, sp := range d.Spans {
		names[sp.Name]++
	}
	return names
}

// TestPipelineJobTrace drives a traced pipeline job end to end on a
// store-backed server and checks the full span tree: request → job →
// steps → phases → replicas (with rewiring convergence events) and
// store operations, all closed, with a single root.
func TestPipelineJobTrace(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	// Seed the disk tier through a first server, then run the traced
	// pipeline on a second one whose memory cache is cold — so the
	// extract step's profile read must hit the artifact store and the
	// trace records the store span.
	var er ExtractResponse
	{
		_, seed := newTestServer(t, Options{Store: st})
		postJSON(t, seed.URL+"/v1/extract?d=2", "text/plain", traceEdges(t), http.StatusOK, &er)
	}
	_, ts := newTestServer(t, Options{Store: st})
	var acc dkapi.JobAccepted
	postJSON(t, ts.URL+"/v1/pipelines", "application/json", fmt.Sprintf(`{
		"steps": [
			{"id": "x", "op": "extract", "d": 2, "source": {"hash": %q}},
			{"id": "g", "op": "randomize", "d": 2, "source": {"hash": %q}, "replicas": 2, "seed": 7}
		]}`, er.Graph.Hash, er.Graph.Hash), http.StatusAccepted, &acc)
	view := pollJob(t, ts.URL, acc.JobID)
	if view.Status != JobDone {
		t.Fatalf("job %s: %s (%s)", acc.JobID, view.Status, view.Error)
	}

	d := fetchTrace(t, ts.URL, acc.JobID)
	root, ok := d.Root()
	if !ok || root.Name != "request" {
		t.Fatalf("root span %+v, want name \"request\"", root)
	}
	names := spanNames(d)
	for name, min := range map[string]int{
		"request": 1, "job": 1, "queued": 1,
		"step": 2, "resolve": 2, "construct": 1, "intern": 2,
		"replica": 2,
	} {
		if names[name] < min {
			t.Errorf("span %q appears %d times, want >= %d (all: %v)", name, names[name], min, names)
		}
	}
	// The extract step's profile comes from the disk tier (written
	// through by the handler extract above), so a store read span must
	// nest in the trace.
	if names["store.profile_read"] == 0 {
		t.Errorf("no store.profile_read span; names: %v", names)
	}
	// No open spans (the trace is written after the job ends), no
	// drops, and every replica span carries rewire events.
	for _, sp := range d.Spans {
		if sp.Open {
			t.Errorf("span %d %q still open in a finished job trace", sp.ID, sp.Name)
		}
	}
	if d.DroppedSpans != 0 || d.DroppedEvents != 0 {
		t.Errorf("dropped spans=%d events=%d", d.DroppedSpans, d.DroppedEvents)
	}
	replicas := 0
	for _, sp := range d.Spans {
		if sp.Name != "replica" {
			continue
		}
		replicas++
		events := d.SpanEvents(sp.ID)
		if len(events) == 0 {
			t.Errorf("replica span %d has no convergence events", sp.ID)
			continue
		}
		for _, ev := range events {
			if ev.Name != "rewire" {
				t.Errorf("replica event %q, want rewire", ev.Name)
			}
			if ev.Fields["attempts"] <= 0 {
				t.Errorf("rewire event without attempts: %+v", ev.Fields)
			}
			if r := ev.Fields["acceptance_rate"]; r < 0 || r > 1 {
				t.Errorf("acceptance_rate %f out of range", r)
			}
		}
	}
	if replicas != 2 {
		t.Errorf("replica spans %d, want 2", replicas)
	}

	// The job span must record the job id; the queued span must close
	// before the job span does.
	for _, sp := range d.Spans {
		if sp.Name == "job" && sp.Attrs["job"] != acc.JobID {
			t.Errorf("job span attrs %v, want job=%s", sp.Attrs, acc.JobID)
		}
	}

	// The startup trace of a store-backed server is served under
	// "startup" and records the journal replay.
	sd := fetchTrace(t, ts.URL, "startup")
	if sn := spanNames(sd); sn["store.journal_replay"] == 0 || sn["recover"] == 0 {
		t.Errorf("startup trace spans: %v", sn)
	}

	// Unknown ids 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/j999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", resp.StatusCode)
	}
}

// TestSyncTraceOptIn checks ?trace=1 on a synchronous route: the
// response embeds a valid trace whose root is the request span, and
// without the flag no trace appears.
func TestSyncTraceOptIn(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var resp ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=1&trace=1", "text/plain", pawEdges, http.StatusOK, &resp)
	if len(resp.Trace) == 0 {
		t.Fatal("?trace=1 extract response has no trace")
	}
	var sb strings.Builder
	for _, rec := range resp.Trace {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	d, err := trace.DecodeBytes([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("embedded trace invalid: %v", err)
	}
	root, _ := d.Root()
	if root.Name != "request" || root.Open {
		t.Fatalf("root %+v, want a closed request span", root)
	}
	names := spanNames(d)
	if names["step"] == 0 || names["extract"] == 0 {
		t.Errorf("embedded trace spans: %v", names)
	}

	var plain ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=1", "text/plain", pawEdges, http.StatusOK, &plain)
	if len(plain.Trace) != 0 {
		t.Error("untraced extract response carries a trace")
	}
}

// TestTracingDisabled pins the off switch: no job traces, no sync
// embedding, and identical results either way.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{DisableTracing: true})
	var er ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=1&trace=1", "text/plain", pawEdges, http.StatusOK, &er)
	if len(er.Trace) != 0 {
		t.Error("DisableTracing server embedded a trace")
	}
	var acc dkapi.JobAccepted
	postJSON(t, ts.URL+"/v1/pipelines", "application/json", fmt.Sprintf(`{
		"steps": [{"id": "x", "op": "extract", "d": 1, "source": {"hash": %q}}]}`, er.Graph.Hash),
		http.StatusAccepted, &acc)
	pollJob(t, ts.URL, acc.JobID)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled tracing: trace status %d, want 404", resp.StatusCode)
	}
}

// TestTraceDeterminism pins the observational contract at the service
// level: the same generate job with and without tracing produces
// byte-identical replica streams.
func TestTraceDeterminism(t *testing.T) {
	edges := traceEdges(t)
	run := func(disable bool) string {
		_, ts := newTestServer(t, Options{DisableTracing: disable})
		var er ExtractResponse
		postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", edges, http.StatusOK, &er)
		var acc dkapi.JobAccepted
		postJSON(t, ts.URL+"/v1/pipelines", "application/json", fmt.Sprintf(`{
			"steps": [{"id": "g", "op": "randomize", "d": 2, "source": {"hash": %q}, "replicas": 2, "seed": 3}]}`,
			er.Graph.Hash), http.StatusAccepted, &acc)
		view := pollJob(t, ts.URL, acc.JobID)
		if view.Status != JobDone {
			t.Fatalf("job failed: %s", view.Error)
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if traced, untraced := run(false), run(true); traced != untraced {
		t.Fatal("tracing changed the generated replica stream")
	}
}
