package service

import (
	"sort"
	"strconv"
	"sync"
)

// latencyBuckets are the explicit upper bounds (seconds) of the HTTP
// and pipeline-phase latency histograms: 1ms to 10s, roughly
// quarter-decade spacing — wide enough for a cache-hit stats read and a
// multi-second d=3 census on one scale.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is one label's fixed-bucket latency distribution. Counts
// are per-bucket (non-cumulative); the exposition emitter accumulates,
// as the format's `le` semantics require.
type histogram struct {
	counts []int64 // one per bound, +1 trailing slot for +Inf
	sum    float64
	count  int64
}

// histogramVec is a family of fixed-bucket histograms keyed by one
// label value (route pattern, "op.phase"). Keys are fixed vocabularies
// chosen by the server, never request-path garbage, so the map cannot
// be grown by clients.
type histogramVec struct {
	mu     sync.Mutex
	bounds []float64
	m      map[string]*histogram
}

func newHistogramVec(bounds []float64) *histogramVec {
	return &histogramVec{bounds: bounds, m: make(map[string]*histogram)}
}

// Observe records one value (seconds) under the label.
func (hv *histogramVec) Observe(label string, v float64) {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	h := hv.m[label]
	if h == nil {
		h = &histogram{counts: make([]int64, len(hv.bounds)+1)}
		hv.m[label] = h
	}
	i := sort.SearchFloat64s(hv.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// emit renders the family in exposition format: per label, cumulative
// `_bucket` samples for every bound plus le="+Inf", then `_sum` and
// `_count`. Labels are sorted, so scrapes stay byte-deterministic.
func (hv *histogramVec) emit(p *promWriter, name, help, label string) {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	p.family(name, help, "histogram")
	keys := make([]string, 0, len(hv.m))
	for k := range hv.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hv.m[k]
		cum := int64(0)
		for i, bound := range hv.bounds {
			cum += h.counts[i]
			p.sample(name+"_bucket", float64(cum),
				label, k, "le", strconv.FormatFloat(bound, 'g', -1, 64))
		}
		p.sample(name+"_bucket", float64(h.count), label, k, "le", "+Inf")
		p.sample(name+"_sum", h.sum, label, k)
		p.sample(name+"_count", float64(h.count), label, k)
	}
}
