// Package service exposes the full dK pipeline of the paper — extract a
// dK-profile, generate dK-random replicas, compare topologies — as a
// long-running HTTP API, turning the batch CLIs into a topology-analysis
// service (see docs/API.md for the wire reference).
//
// The service is built around two pieces of shared state:
//
//   - A content-addressed profile cache (Cache): uploaded graphs are
//     interned under the SHA-256 of their canonical edge list, and their
//     extracted profiles and computed metric summaries live with the
//     entry. Repeated requests against the same topology — the dominant
//     pattern for ensemble sampling and robustness sweeps — skip the
//     Brandes/census recomputation entirely and can reference the graph
//     by hash instead of re-uploading it.
//
//   - A bounded asynchronous job engine (Engine): generation work runs
//     on a fixed runner pool fed by a bounded queue, polled via
//     GET /v1/jobs/{id} with bulk results streamed from
//     GET /v1/jobs/{id}/result. The runner pool shares the process-wide
//     worker budget of internal/parallel, so concurrent jobs cannot
//     oversubscribe the machine: inner parallel loops degrade to inline
//     execution once the global helper fleet is saturated.
//
// Endpoints (all under /v1): POST /extract, POST /generate, POST
// /compare, GET /jobs, GET /jobs/{id}, GET /jobs/{id}/result, GET
// /datasets, GET /datasets/{name}, GET /stats.
package service

import (
	"fmt"
	"log"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// Options configures a Server. The zero value selects production-sensible
// defaults; fields are independent.
type Options struct {
	// CacheEntries bounds the content-addressed graph cache (default 64).
	CacheEntries int
	// MaxBodyBytes caps request body size in bytes (default 32 MiB).
	MaxBodyBytes int64
	// MaxNodes and MaxEdges bound any single uploaded graph
	// (defaults 1e6 nodes, 4e6 edges).
	MaxNodes, MaxEdges int
	// MaxReplicas caps the replica count of one generate job (default 128).
	MaxReplicas int
	// JobRunners is the job-engine pool size (default: the process
	// worker budget, parallel.Workers()).
	JobRunners int
	// JobQueue bounds the number of jobs waiting to run (default 64).
	JobQueue int
	// JobRetain bounds retained terminal jobs (default 256).
	JobRetain int
	// MaxPipelineSteps bounds the step count of one POST /v1/pipelines
	// request (default 32).
	MaxPipelineSteps int
	// MaxPipelineReplicas bounds the summed ensemble size across all
	// generate steps of one pipeline (default 512) — a finished job's
	// graphs stay streamable until the job leaves retention, so this is
	// the per-job memory bound.
	MaxPipelineReplicas int
	// RatePerSec enables per-client token-bucket rate limiting: each
	// client (X-Client-Id header, else remote IP) accrues this many
	// request tokens per second, up to RateBurst. Exhausted clients get
	// 429 rate_limited with a Retry-After header. 0 (the default)
	// disables limiting. Health probes and /metrics are always exempt.
	RatePerSec float64
	// RateBurst is the token-bucket capacity (default: 2×RatePerSec,
	// minimum 1) — the size of the burst a well-behaved client may send
	// before the steady-state rate applies.
	RateBurst int
	// AccessLog receives one structured line per request (nil = no
	// access logging — the default, so embedded/test servers stay
	// quiet).
	AccessLog *log.Logger
	// DisableTracing turns off execution tracing entirely: no request
	// root spans, no job traces, no startup trace. The default (false)
	// traces job submissions and any request carrying ?trace=1; the
	// disabled path costs nothing (nil-span contract, internal/trace).
	DisableTracing bool
	// Store is the persistent artifact store backing the cache's disk
	// tier and the job journal (nil = memory-only, the historical
	// behavior). The caller owns it: close it after Close.
	Store *store.Store
}

func (o Options) withDefaults() Options {
	if o.CacheEntries == 0 {
		o.CacheEntries = 64
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 1_000_000
	}
	if o.MaxEdges == 0 {
		o.MaxEdges = 4_000_000
	}
	if o.MaxReplicas == 0 {
		o.MaxReplicas = 128
	}
	if o.JobRunners == 0 {
		o.JobRunners = parallel.Workers()
	}
	if o.JobQueue == 0 {
		o.JobQueue = 64
	}
	if o.JobRetain == 0 {
		o.JobRetain = 256
	}
	if o.MaxPipelineSteps == 0 {
		o.MaxPipelineSteps = 32
	}
	return o
}

// Server is the dK topology service: an http.Handler wiring the cache,
// the job engine, and the dataset registry to the /v1 endpoints.
type Server struct {
	opts      Options
	cache     *Cache
	jobs      *Engine
	store     *store.Store // nil = memory-only
	mux       *http.ServeMux
	routes    *routeStats
	phases    *phaseStats
	scenarios *phaseStats // netsim scenario timings, keyed by kind
	traces    *traceStore
	httpHist  *histogramVec // dk_http_request_seconds, by route
	phaseHist *histogramVec // dk_pipeline_phase_seconds, by op.phase
	scenHist  *histogramVec // dk_scenario_seconds, by kind
	limiter   *rateLimiter  // nil = no rate limiting
	started   time.Time
	draining  atomic.Bool

	dsMu    sync.Mutex
	dsMemo  map[string]*dsEntry
	dsOrder []string // insertion order, for memo eviction
}

// dsEntry is one memoized dataset synthesis with per-key single-flight:
// the map lock is held only to find or create the entry, while the
// (possibly slow) synthesis runs under the entry's once — so a slow
// skitter build does not block requests for other datasets.
type dsEntry struct {
	once sync.Once
	g    *graph.CSR
	err  error
}

// dsMemoMax bounds the dataset memo: (name, seed, n) keys are
// client-controlled, so without a bound the memo would be an unbounded
// memory leak. Oldest entries are evicted first.
const dsMemoMax = 32

// New builds a Server with the given options and starts its job engine.
// With a persistent store configured, the profile cache becomes
// write-through over the store's disk tier and the job journal of a
// previous process is replayed: jobs that never reached a terminal state
// are re-queued under their original ids before the server takes
// traffic. Call Close when done to stop the runner pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	var (
		journal     *store.Journal
		replayed    []store.JobState
		startupSpan *trace.Span // root of the startup trace (nil = untraced)
		traceDisk   *store.Store
	)
	// Only the journal's lock owner may replay and append: a second
	// server on the same data dir would re-run the owner's in-flight
	// jobs and mint colliding ids. Without the lock the job engine runs
	// memory-only while the (concurrency-safe, content-addressed)
	// artifact tier stays active. dkserved refuses to start in that
	// state; embedders get the degraded mode.
	if opts.Store != nil && opts.Store.Exclusive() {
		journal = opts.Store.Journal()
		// Trace persistence follows the journal's ownership rule: only
		// the lock owner writes jobs/<id>.trace.jsonl, since job ids are
		// only unique within the journal's sequence.
		traceDisk = opts.Store
		if !opts.DisableTracing {
			startupSpan = trace.New("startup", "startup").Root()
		}
		// Replay errors degrade to an empty journal: a damaged journal
		// must not stop the service from starting. Under a trace the
		// replay records a "store.journal_replay" span with its record
		// count — GET /v1/jobs/startup/trace answers "why was boot slow".
		replayed, _ = store.Ops{S: opts.Store, Span: startupSpan}.Replay()
		// Startup is the one moment the lock owner knows compaction is
		// safe; without this, a long-lived server's journal (2-3 records
		// per job) would grow without bound and every restart would fold
		// the entire history.
		_, _ = journal.Compact()
	}
	// Recovery must never convert a recoverable job into a permanent
	// failure just because the configured queue is smaller than the
	// journal backlog, so the queue is sized to hold every job being
	// re-queued.
	queueCap := opts.JobQueue
	if n := countNonTerminal(replayed); n > queueCap {
		queueCap = n
	}
	s := &Server{
		opts:      opts,
		cache:     NewTieredCache(opts.CacheEntries, opts.Store),
		jobs:      NewJournaledEngine(opts.JobRunners, queueCap, opts.JobRetain, journal, MaxJournaledSeq(replayed)),
		store:     opts.Store,
		mux:       http.NewServeMux(),
		routes:    newRouteStats(),
		phases:    newPhaseStats(),
		scenarios: newPhaseStats(),
		traces:    newTraceStore(opts.JobRetain, traceDisk),
		httpHist:  newHistogramVec(latencyBuckets),
		phaseHist: newHistogramVec(latencyBuckets),
		scenHist:  newHistogramVec(latencyBuckets),
		started:   time.Now().UTC(),
		dsMemo:    make(map[string]*dsEntry),
	}
	if opts.RatePerSec > 0 {
		burst := opts.RateBurst
		if burst == 0 {
			burst = int(math.Ceil(2 * opts.RatePerSec))
		}
		s.limiter = newRateLimiter(opts.RatePerSec, burst)
	}
	rec := startupSpan.Child("recover")
	s.recoverJobs(replayed)
	if startupSpan != nil {
		rec.SetAttr("requeued", fmt.Sprint(s.jobs.Stats().Recovered))
		rec.End()
		startupSpan.End()
		s.traces.save("startup", startupSpan.Trace())
	}
	s.route("POST /v1/extract", s.handleExtract)
	s.route("POST /v1/generate", s.handleGenerate)
	s.route("POST /v1/compare", s.handleCompare)
	s.route("POST /v1/pipelines", s.handlePipelineSubmit)
	s.route("GET /v1/graphs/{hash}", s.handleGraphGet)
	s.route("GET /v1/jobs", s.handleJobList)
	s.route("GET /v1/jobs/{id}", s.handleJobGet)
	s.route("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.route("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.route("GET /v1/datasets", s.handleDatasetList)
	s.route("GET /v1/datasets/{name}", s.handleDatasetGet)
	s.route("GET /v1/stats", s.handleStats)
	s.route("GET /v1/healthz", s.handleHealthz)
	s.route("GET /v1/readyz", s.handleReadyz)
	// Prometheus exposition lives at the conventional scrape path, not
	// under /v1: it is an operational surface with its own format
	// contract, versioned by the exposition format rather than the API.
	s.route("GET /metrics", s.handleMetrics)
	return s
}

// recoverJobs re-queues journaled jobs that never reached a terminal
// state in the previous process. Each recovered job keeps its original
// id, so a client polling across the restart finds it again. Specs are
// re-validated and their graph references re-resolved up front; jobs
// whose spec no longer resolves (e.g. the graph artifact was GC'd) are
// closed out — journaled failed AND registered in the engine as failed,
// so the poll answers with the reason rather than 404.
func (s *Server) recoverJobs(states []store.JobState) {
	for _, st := range states {
		if st.Terminal() {
			continue
		}
		fail := func(format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			s.jobs.note(store.JobRecord{ID: st.ID, Status: store.JobFailed, Error: msg})
			s.jobs.RegisterFailed(st.ID, st.Kind, st.Spec, msg)
		}
		switch st.Kind {
		case "generate":
			var req GenerateRequest
			if err := json.Unmarshal(st.Spec, &req); err != nil {
				fail("recovery: bad spec: %v", err)
				continue
			}
			d := 2
			if req.D != nil {
				d = *req.D
			}
			_, _, err := pipeline.ParseMethod(req.Method)
			if err != nil || d < 0 || d > 3 || req.Replicas < 1 {
				fail("recovery: invalid spec (d=%d replicas=%d method=%q)", d, req.Replicas, req.Method)
				continue
			}
			if _, err := s.resolveRef(req.Source); err != nil {
				fail("recovery: source: %v", err)
				continue
			}
			if _, err := s.jobs.Resubmit(st.ID, "generate", st.Spec, s.generateJobFunc(req, nil)); err != nil {
				fail("recovery: %v", err)
			}
		case "pipeline":
			var req dkapi.PipelineRequest
			if err := json.Unmarshal(st.Spec, &req); err != nil {
				fail("recovery: bad spec: %v", err)
				continue
			}
			if err := pipeline.Validate(req, s.pipelineLimits()); err != nil {
				fail("recovery: invalid spec: %v", err)
				continue
			}
			// Journaled specs are normalized to hash references, so this
			// resolves from the disk tier without recomputation — and
			// tells us now, not mid-job, when an artifact is gone.
			if err := s.resolvePipelineRefs(&req); err != nil {
				fail("recovery: %v", err)
				continue
			}
			if _, err := s.jobs.ResubmitClass(st.ID, "pipeline", pipeline.Class(req), st.Spec, s.pipelineJobFunc(req, nil)); err != nil {
				fail("recovery: %v", err)
			}
		default:
			fail("recovery: unknown job kind %q", st.Kind)
		}
	}
}

// Close stops the job engine. In-flight jobs finish; queued jobs fail.
func (s *Server) Close() {
	s.jobs.Close()
}

// CacheStats exposes cache instrumentation (also served on /v1/stats);
// tests use it to verify repeated extractions hit the cache.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// JobStats exposes job-engine instrumentation (also served on /v1/stats);
// tests use it to verify the concurrent-job high-water mark respects the
// runner budget.
func (s *Server) JobStats() EngineStats { return s.jobs.Stats() }

// StoreStats exposes artifact-store instrumentation (also served on
// /v1/stats). The boolean reports whether a store is configured.
func (s *Server) StoreStats() (store.Stats, bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}

// BuiltinDatasets lists the built-in dataset registry — the same table
// GET /v1/datasets serves, exported for local CLI use.
func BuiltinDatasets() []DatasetInfo {
	return append([]DatasetInfo(nil), builtinDatasets...)
}

// builtinDatasets is the registry behind GET /v1/datasets, backed by
// internal/datasets. DatasetInfo is wire vocabulary (pkg/dkapi).
var builtinDatasets = []DatasetInfo{
	{Name: "paw", Description: "the paper's §3 worked example: a triangle with one pendant node (4 nodes)"},
	{Name: "petersen", Description: "the Petersen graph (3-regular, girth 5) — a metric-validation fixture"},
	{Name: "hot", Description: "router-like HOT topology: hierarchical core/gateway/access/host graph, hubs at the periphery", Params: []string{"seed"}},
	{Name: "skitter", Description: "AS-like topology: power-law degrees, disassortative, strongly clustered", Params: []string{"seed", "n"}, Slow: true},
}

// CheckDataset validates a dataset name and its parameters without
// synthesizing anything. Errors are pre-classified: unknown names are
// 404, parameter-limit violations are 413.
func CheckDataset(name string, n int) error {
	switch name {
	case "paw", "petersen", "hot", "skitter":
	default:
		return &apiError{http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown dataset %q", name)}
	}
	if name == "skitter" && n > 10_000 {
		return &apiError{http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Sprintf("skitter n=%d exceeds the service bound of 10000", n)}
	}
	return nil
}

// SynthesizeDataset builds a built-in dataset graph (no memoization) —
// the same registry, parameter bounds, and synthesis code the service's
// /v1/datasets endpoints use, exported so the local facade (pkg/dk)
// resolves dataset references identically to a remote server.
func SynthesizeDataset(name string, seed int64, n int) (*graph.CSR, error) {
	if err := CheckDataset(name, n); err != nil {
		return nil, err
	}
	switch name {
	case "paw":
		return datasets.Paw(), nil
	case "petersen":
		return datasets.Petersen(), nil
	case "hot":
		g, _, err := datasets.HOT(datasets.HOTConfig{Seed: seed})
		return g, err
	default:
		return datasets.Skitter(datasets.SkitterConfig{N: n, Seed: seed})
	}
}

// datasetGraph synthesizes (or returns the memoized copy of) a built-in
// dataset. n is only meaningful for skitter; seed for hot and skitter.
// Synthesis is single-flighted per (name, seed, n) and the memo is
// bounded (dsMemoMax, oldest-first eviction). Errors come back
// pre-classified: unknown names are 404, parameter-limit violations are
// 413, synthesis failures are 500.
func (s *Server) datasetGraph(name string, seed int64, n int) (*graph.CSR, error) {
	// Reject unknown names and bad parameters before touching the memo
	// so garbage requests cannot churn real entries out of it.
	if err := CheckDataset(name, n); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d/%d", name, seed, n)
	s.dsMu.Lock()
	e, ok := s.dsMemo[key]
	if !ok {
		e = &dsEntry{}
		s.dsMemo[key] = e
		s.dsOrder = append(s.dsOrder, key)
		for len(s.dsMemo) > dsMemoMax {
			delete(s.dsMemo, s.dsOrder[0])
			s.dsOrder = s.dsOrder[1:]
		}
	}
	s.dsMu.Unlock()
	e.once.Do(func() {
		e.g, e.err = SynthesizeDataset(name, seed, n)
	})
	return e.g, e.err
}

// version is re-exported for the stats handler.
const version = core.Version
