// Package service exposes the full dK pipeline of the paper — extract a
// dK-profile, generate dK-random replicas, compare topologies — as a
// long-running HTTP API, turning the batch CLIs into a topology-analysis
// service (see docs/API.md for the wire reference).
//
// The service is built around two pieces of shared state:
//
//   - A content-addressed profile cache (Cache): uploaded graphs are
//     interned under the SHA-256 of their canonical edge list, and their
//     extracted profiles and computed metric summaries live with the
//     entry. Repeated requests against the same topology — the dominant
//     pattern for ensemble sampling and robustness sweeps — skip the
//     Brandes/census recomputation entirely and can reference the graph
//     by hash instead of re-uploading it.
//
//   - A bounded asynchronous job engine (Engine): generation work runs
//     on a fixed runner pool fed by a bounded queue, polled via
//     GET /v1/jobs/{id} with bulk results streamed from
//     GET /v1/jobs/{id}/result. The runner pool shares the process-wide
//     worker budget of internal/parallel, so concurrent jobs cannot
//     oversubscribe the machine: inner parallel loops degrade to inline
//     execution once the global helper fleet is saturated.
//
// Endpoints (all under /v1): POST /extract, POST /generate, POST
// /compare, GET /jobs, GET /jobs/{id}, GET /jobs/{id}/result, GET
// /datasets, GET /datasets/{name}, GET /stats.
package service

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Options configures a Server. The zero value selects production-sensible
// defaults; fields are independent.
type Options struct {
	// CacheEntries bounds the content-addressed graph cache (default 64).
	CacheEntries int
	// MaxBodyBytes caps request body size in bytes (default 32 MiB).
	MaxBodyBytes int64
	// MaxNodes and MaxEdges bound any single uploaded graph
	// (defaults 1e6 nodes, 4e6 edges).
	MaxNodes, MaxEdges int
	// MaxReplicas caps the replica count of one generate job (default 128).
	MaxReplicas int
	// JobRunners is the job-engine pool size (default: the process
	// worker budget, parallel.Workers()).
	JobRunners int
	// JobQueue bounds the number of jobs waiting to run (default 64).
	JobQueue int
	// JobRetain bounds retained terminal jobs (default 256).
	JobRetain int
}

func (o Options) withDefaults() Options {
	if o.CacheEntries == 0 {
		o.CacheEntries = 64
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 1_000_000
	}
	if o.MaxEdges == 0 {
		o.MaxEdges = 4_000_000
	}
	if o.MaxReplicas == 0 {
		o.MaxReplicas = 128
	}
	if o.JobRunners == 0 {
		o.JobRunners = parallel.Workers()
	}
	if o.JobQueue == 0 {
		o.JobQueue = 64
	}
	if o.JobRetain == 0 {
		o.JobRetain = 256
	}
	return o
}

// Server is the dK topology service: an http.Handler wiring the cache,
// the job engine, and the dataset registry to the /v1 endpoints.
type Server struct {
	opts    Options
	cache   *Cache
	jobs    *Engine
	mux     *http.ServeMux
	started time.Time

	dsMu    sync.Mutex
	dsMemo  map[string]*dsEntry
	dsOrder []string // insertion order, for memo eviction
}

// dsEntry is one memoized dataset synthesis with per-key single-flight:
// the map lock is held only to find or create the entry, while the
// (possibly slow) synthesis runs under the entry's once — so a slow
// skitter build does not block requests for other datasets.
type dsEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

// dsMemoMax bounds the dataset memo: (name, seed, n) keys are
// client-controlled, so without a bound the memo would be an unbounded
// memory leak. Oldest entries are evicted first.
const dsMemoMax = 32

// New builds a Server with the given options and starts its job engine.
// Call Close when done to stop the runner pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		cache:   NewCache(opts.CacheEntries),
		jobs:    NewEngine(opts.JobRunners, opts.JobQueue, opts.JobRetain),
		mux:     http.NewServeMux(),
		started: time.Now().UTC(),
		dsMemo:  make(map[string]*dsEntry),
	}
	s.mux.HandleFunc("POST /v1/extract", s.handleExtract)
	s.mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	s.mux.HandleFunc("POST /v1/compare", s.handleCompare)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the /v1 routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the job engine. In-flight jobs finish; queued jobs fail.
func (s *Server) Close() {
	s.jobs.Close()
}

// CacheStats exposes cache instrumentation (also served on /v1/stats);
// tests use it to verify repeated extractions hit the cache.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// JobStats exposes job-engine instrumentation (also served on /v1/stats);
// tests use it to verify the concurrent-job high-water mark respects the
// runner budget.
func (s *Server) JobStats() EngineStats { return s.jobs.Stats() }

// DatasetInfo describes one built-in dataset on GET /v1/datasets.
type DatasetInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Params      []string `json:"params,omitempty"`
	Slow        bool     `json:"slow,omitempty"`
}

// builtinDatasets is the registry behind GET /v1/datasets, backed by
// internal/datasets.
var builtinDatasets = []DatasetInfo{
	{Name: "paw", Description: "the paper's §3 worked example: a triangle with one pendant node (4 nodes)"},
	{Name: "petersen", Description: "the Petersen graph (3-regular, girth 5) — a metric-validation fixture"},
	{Name: "hot", Description: "router-like HOT topology: hierarchical core/gateway/access/host graph, hubs at the periphery", Params: []string{"seed"}},
	{Name: "skitter", Description: "AS-like topology: power-law degrees, disassortative, strongly clustered", Params: []string{"seed", "n"}, Slow: true},
}

// datasetGraph synthesizes (or returns the memoized copy of) a built-in
// dataset. n is only meaningful for skitter; seed for hot and skitter.
// Synthesis is single-flighted per (name, seed, n) and the memo is
// bounded (dsMemoMax, oldest-first eviction). Errors come back
// pre-classified: unknown names are 404, parameter-limit violations are
// 413, synthesis failures are 500.
func (s *Server) datasetGraph(name string, seed int64, n int) (*graph.Graph, error) {
	switch name {
	case "paw", "petersen", "hot", "skitter":
	default:
		// Reject unknown names before touching the memo so garbage
		// requests cannot churn real entries out of it.
		return nil, &apiError{http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown dataset %q", name)}
	}
	if name == "skitter" && n > 10_000 {
		return nil, &apiError{http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Sprintf("skitter n=%d exceeds the service bound of 10000", n)}
	}
	key := fmt.Sprintf("%s/%d/%d", name, seed, n)
	s.dsMu.Lock()
	e, ok := s.dsMemo[key]
	if !ok {
		e = &dsEntry{}
		s.dsMemo[key] = e
		s.dsOrder = append(s.dsOrder, key)
		for len(s.dsMemo) > dsMemoMax {
			delete(s.dsMemo, s.dsOrder[0])
			s.dsOrder = s.dsOrder[1:]
		}
	}
	s.dsMu.Unlock()
	e.once.Do(func() {
		switch name {
		case "paw":
			e.g = datasets.Paw()
		case "petersen":
			e.g = datasets.Petersen()
		case "hot":
			e.g, _, e.err = datasets.HOT(datasets.HOTConfig{Seed: seed})
		case "skitter":
			e.g, e.err = datasets.Skitter(datasets.SkitterConfig{N: n, Seed: seed})
		}
	})
	return e.g, e.err
}

// version is re-exported for the stats handler.
const version = core.Version
