package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/pkg/dkapi"
)

// pathEdges builds a path graph's edge list of n distinct edges — big
// enough to trip a small MaxBodyBytes without tripping the duplicate-
// edge parse error first.
func pathEdges(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, i+1)
	}
	return sb.String()
}

// TestDocumentedErrorCodes exercises every error code documented in
// docs/API.md, asserting the (HTTP status, code) pair of each — the
// contract both the client SDK's retry policy and external callers
// program against.
func TestDocumentedErrorCodes(t *testing.T) {
	// Tiny limits make too_large and queue_full reachable cheaply: a
	// 64-node cap trips ErrLimit deterministically (a byte cap would
	// race the parser on whichever truncated line it saw first), and
	// one runner + one queue slot means a single blocked job fills the
	// engine completely.
	srv, ts := newTestServer(t, Options{
		MaxNodes:   64,
		JobRunners: 1,
		JobQueue:   1,
	})

	// Park the single runner on a job that blocks until the test ends,
	// then occupy the one queue slot: the engine is now full, and the
	// blocked job's id is a stable "running" job for conflict checks.
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	started := make(chan struct{})
	blocked, err := srv.jobs.Submit("block", func() (any, StreamFunc, error) {
		close(started)
		<-release
		return nil, nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the runner to pick the blocker up, so the queue slot is
	// free for the filler (and stays occupied for the queue-full case).
	<-started
	if _, err := srv.jobs.Submit("queued", func() (any, StreamFunc, error) { return nil, nil, nil }); err != nil {
		t.Fatal(err)
	}

	do := func(t *testing.T, method, path, body string) (int, dkapi.ErrorResponse) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var envelope dkapi.ErrorResponse
		if err := json.Unmarshal(raw, &envelope); err != nil {
			t.Fatalf("%s %s: non-envelope error body %q", method, path, raw)
		}
		return resp.StatusCode, envelope
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad depth", "POST", "/v1/extract?d=9", "0 1\n", http.StatusBadRequest, CodeBadRequest},
		{"bad body json", "POST", "/v1/generate", "{", http.StatusBadRequest, CodeBadRequest},
		{"bad pipeline op", "POST", "/v1/pipelines",
			`{"steps":[{"id":"x","op":"teleport","source":{"dataset":"paw"}}]}`,
			http.StatusBadRequest, CodeBadRequest},
		{"step ref outside pipeline", "POST", "/v1/compare",
			`{"a":{"step":"x"},"b":{"dataset":"paw"}}`, http.StatusBadRequest, CodeBadRequest},
		{"file ref on server", "POST", "/v1/compare",
			`{"a":{"file":"/etc/hosts"},"b":{"dataset":"paw"}}`, http.StatusBadRequest, CodeBadRequest},

		{"unknown job", "GET", "/v1/jobs/j999999", "", http.StatusNotFound, CodeNotFound},
		{"unknown dataset", "POST", "/v1/extract?dataset=nope", "", http.StatusNotFound, CodeNotFound},
		{"unknown hash", "POST", "/v1/generate",
			`{"source":{"hash":"sha256:` + strings.Repeat("ab", 32) + `"}}`,
			http.StatusNotFound, CodeNotFound},
		{"unknown graph lookup", "GET", "/v1/graphs/sha256:" + strings.Repeat("cd", 32), "",
			http.StatusNotFound, CodeNotFound},

		{"oversized body", "POST", "/v1/extract", pathEdges(4096),
			http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"oversized dataset", "POST", "/v1/extract?dataset=skitter&n=999999", "",
			http.StatusRequestEntityTooLarge, CodeTooLarge},

		{"queue full", "POST", "/v1/generate", `{"source":{"dataset":"paw"}}`,
			http.StatusTooManyRequests, CodeQueueFull},

		{"result of running job", "GET", "/v1/jobs/" + blocked.ID() + "/result", "",
			http.StatusConflict, CodeConflict},

		// skitter cannot draw a graphical power-law sequence at n=1 — a
		// deterministic synthesis failure, which is a server-side error,
		// not a client one.
		{"dataset synthesis failure", "POST", "/v1/extract?dataset=skitter&n=1", "",
			http.StatusInternalServerError, CodeInternal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, envelope := do(t, tc.method, tc.path, tc.body)
			if status != tc.wantStatus || envelope.Code != tc.wantCode {
				t.Fatalf("%s %s -> (%d, %q), want (%d, %q); error: %s",
					tc.method, tc.path, status, envelope.Code, tc.wantStatus, tc.wantCode, envelope.Error)
			}
			if envelope.Error == "" {
				t.Fatal("error envelope has an empty message")
			}
		})
	}

	// unavailable needs a draining server — its own instance so the
	// cases above are unaffected.
	t.Run("draining submit", func(t *testing.T) {
		srv2, ts2 := newTestServer(t, Options{})
		srv2.StartDraining()
		for _, path := range []string{"/v1/generate", "/v1/pipelines"} {
			resp, err := http.Post(ts2.URL+path, "application/json", strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			var envelope dkapi.ErrorResponse
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			_ = json.Unmarshal(raw, &envelope)
			if resp.StatusCode != http.StatusServiceUnavailable || envelope.Code != CodeUnavailable {
				t.Fatalf("POST %s while draining -> (%d, %q), want (503, %q)",
					path, resp.StatusCode, envelope.Code, CodeUnavailable)
			}
		}
	})
}
