package service

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/parallel"
	"repro/pkg/dkapi"
)

// promWriter renders the Prometheus text exposition format (version
// 0.0.4): one # HELP and # TYPE line per family, then its samples.
// Families and label sets are emitted in sorted order so two scrapes of
// the same state are byte-identical — which is also what makes the
// exposition testable.
type promWriter struct {
	sb strings.Builder
}

// family opens a metric family. Call the sample methods immediately
// after; the exposition format requires a family's samples to follow
// its TYPE line.
func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.sb, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&p.sb, "# TYPE %s %s\n", name, typ)
}

// sample emits one sample with optional labels (pairs of key, value).
func (p *promWriter) sample(name string, value float64, labels ...string) {
	p.sb.WriteString(name)
	if len(labels) > 0 {
		p.sb.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.sb.WriteByte(',')
			}
			fmt.Fprintf(&p.sb, "%s=%q", labels[i], escapeLabel(labels[i+1]))
		}
		p.sb.WriteByte('}')
	}
	p.sb.WriteByte(' ')
	p.sb.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	p.sb.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format. %q above
// already escapes double quotes and backslashes the same way Go source
// does, which matches the format; newlines must become \n explicitly.
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labeledSeries emits one sorted sample set for a map keyed by a label
// value.
func labeledSeries[T any](p *promWriter, name, label string, m map[string]T, value func(T) float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.sample(name, value(m[k]), label, k)
	}
}

// handleMetrics implements GET /metrics: the same counters /v1/stats
// serves, in Prometheus exposition format — route traffic, pipeline
// phase timings, cache and job-engine counters, rate-limiter and
// artifact-store state. Everything cumulative is a counter; point-in-
// time values are gauges. The route label carries the mux pattern
// ("POST /v1/extract"), matching the routes table of /v1/stats.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := &promWriter{}

	p.family("dk_build_info", "Build metadata (value is always 1).", "gauge")
	p.sample("dk_build_info", 1, "go_version", runtime.Version(), "version", version)
	p.family("dk_uptime_seconds", "Seconds since the server started.", "gauge")
	p.sample("dk_uptime_seconds", time.Since(s.started).Seconds())
	p.family("dk_workers", "Process-wide parallel worker budget.", "gauge")
	p.sample("dk_workers", float64(parallel.Workers()))

	routes := s.routes.Snapshot()
	p.family("dk_http_requests_total", "Requests handled, by route pattern.", "counter")
	labeledSeries(p, "dk_http_requests_total", "route", routes, func(rs dkapi.RouteStat) float64 { return float64(rs.Count) })
	p.family("dk_http_request_errors_total", "Error responses (status >= 400, excluding 429), by route.", "counter")
	labeledSeries(p, "dk_http_request_errors_total", "route", routes, func(rs dkapi.RouteStat) float64 { return float64(rs.Errors) })
	p.family("dk_http_requests_throttled_total", "429 backpressure responses, by route.", "counter")
	labeledSeries(p, "dk_http_requests_throttled_total", "route", routes, func(rs dkapi.RouteStat) float64 { return float64(rs.Throttled) })
	p.family("dk_http_request_duration_ms_total", "Cumulative request wall-clock milliseconds, by route.", "counter")
	labeledSeries(p, "dk_http_request_duration_ms_total", "route", routes, func(rs dkapi.RouteStat) float64 { return rs.TotalMS })
	p.family("dk_http_response_bytes_total", "Response bytes sent, by route.", "counter")
	labeledSeries(p, "dk_http_response_bytes_total", "route", routes, func(rs dkapi.RouteStat) float64 { return float64(rs.BytesSent) })
	p.family("dk_http_in_flight", "Requests currently executing, by route.", "gauge")
	labeledSeries(p, "dk_http_in_flight", "route", routes, func(rs dkapi.RouteStat) float64 { return float64(rs.InFlight) })
	s.httpHist.emit(p, "dk_http_request_seconds", "HTTP request latency in seconds, by route pattern.", "route")

	phases := s.phases.Snapshot()
	p.family("dk_pipeline_phase_runs_total", "Pipeline phase executions, by op.phase.", "counter")
	labeledSeries(p, "dk_pipeline_phase_runs_total", "phase", phases, func(ps dkapi.PhaseStat) float64 { return float64(ps.Count) })
	p.family("dk_pipeline_phase_ms_total", "Cumulative pipeline phase wall-clock milliseconds, by op.phase.", "counter")
	labeledSeries(p, "dk_pipeline_phase_ms_total", "phase", phases, func(ps dkapi.PhaseStat) float64 { return ps.TotalMS })
	p.family("dk_pipeline_phase_max_ms", "Slowest single observation of each pipeline phase.", "gauge")
	labeledSeries(p, "dk_pipeline_phase_max_ms", "phase", phases, func(ps dkapi.PhaseStat) float64 { return ps.MaxMS })
	s.phaseHist.emit(p, "dk_pipeline_phase_seconds", "Pipeline phase latency in seconds, by op.phase.", "phase")

	scen := s.scenarios.Snapshot()
	p.family("dk_scenario_runs_total", "Netsim scenario executions, by kind.", "counter")
	labeledSeries(p, "dk_scenario_runs_total", "kind", scen, func(ps dkapi.PhaseStat) float64 { return float64(ps.Count) })
	p.family("dk_scenario_ms_total", "Cumulative netsim scenario wall-clock milliseconds, by kind.", "counter")
	labeledSeries(p, "dk_scenario_ms_total", "kind", scen, func(ps dkapi.PhaseStat) float64 { return ps.TotalMS })
	p.family("dk_scenario_max_ms", "Slowest single run of each scenario kind.", "gauge")
	labeledSeries(p, "dk_scenario_max_ms", "kind", scen, func(ps dkapi.PhaseStat) float64 { return ps.MaxMS })
	s.scenHist.emit(p, "dk_scenario_seconds", "Netsim scenario latency in seconds, by kind.", "kind")

	cs := s.cache.Stats()
	p.family("dk_cache_entries", "Graphs resident in the memory cache tier.", "gauge")
	p.sample("dk_cache_entries", float64(cs.Entries))
	p.family("dk_cache_max_entries", "Memory cache tier capacity.", "gauge")
	p.sample("dk_cache_max_entries", float64(cs.MaxEntries))
	p.family("dk_cache_hits_total", "Intern calls that found an existing entry.", "counter")
	p.sample("dk_cache_hits_total", float64(cs.Hits))
	p.family("dk_cache_misses_total", "Intern calls that created a new entry.", "counter")
	p.sample("dk_cache_misses_total", float64(cs.Misses))
	p.family("dk_cache_evictions_total", "Entries evicted from the memory tier.", "counter")
	p.sample("dk_cache_evictions_total", float64(cs.Evictions))
	p.family("dk_cache_extractions_total", "Actual dK-extraction runs (cache misses on profiles).", "counter")
	p.sample("dk_cache_extractions_total", float64(cs.Extractions))
	p.family("dk_cache_disk_hits_total", "Disk-tier reads that found the artifact.", "counter")
	p.sample("dk_cache_disk_hits_total", float64(cs.DiskHits))
	p.family("dk_cache_disk_misses_total", "Disk-tier reads that found nothing.", "counter")
	p.sample("dk_cache_disk_misses_total", float64(cs.DiskMisses))
	p.family("dk_cache_disk_graph_writes_total", "Graph artifacts written through to disk.", "counter")
	p.sample("dk_cache_disk_graph_writes_total", float64(cs.DiskGraphWrites))
	p.family("dk_cache_disk_profile_writes_total", "Profile artifacts written through to disk.", "counter")
	p.sample("dk_cache_disk_profile_writes_total", float64(cs.DiskProfileWrites))

	js := s.jobs.Stats()
	p.family("dk_jobs_runners", "Job-engine runner pool size.", "gauge")
	p.sample("dk_jobs_runners", float64(js.Runners))
	p.family("dk_jobs_queued", "Jobs waiting to run, by priority class.", "gauge")
	p.sample("dk_jobs_queued", float64(js.QueuedInteractive), "class", string(ClassInteractive))
	p.sample("dk_jobs_queued", float64(js.QueuedBatch), "class", string(ClassBatch))
	p.family("dk_jobs_running", "Jobs currently executing.", "gauge")
	p.sample("dk_jobs_running", float64(js.Running))
	p.family("dk_jobs_max_running", "High-water mark of concurrently executing jobs.", "gauge")
	p.sample("dk_jobs_max_running", float64(js.MaxRunning))
	p.family("dk_jobs_completed_total", "Jobs that finished successfully.", "counter")
	p.sample("dk_jobs_completed_total", float64(js.Completed))
	p.family("dk_jobs_failed_total", "Jobs that reached the failed state.", "counter")
	p.sample("dk_jobs_failed_total", float64(js.Failed))
	p.family("dk_jobs_rejected_total", "Submissions rejected by the bounded queue (not failures).", "counter")
	p.sample("dk_jobs_rejected_total", float64(js.Rejected))
	p.family("dk_jobs_recovered_total", "Jobs re-queued from the journal at startup.", "counter")
	p.sample("dk_jobs_recovered_total", float64(js.Recovered))

	if s.limiter != nil {
		rl := s.limiter.Stats()
		p.family("dk_ratelimit_allowed_total", "Requests admitted by the per-client rate limiter.", "counter")
		p.sample("dk_ratelimit_allowed_total", float64(rl.Allowed))
		p.family("dk_ratelimit_limited_total", "Requests rejected with 429 rate_limited.", "counter")
		p.sample("dk_ratelimit_limited_total", float64(rl.Limited))
		p.family("dk_ratelimit_clients", "Client buckets currently tracked.", "gauge")
		p.sample("dk_ratelimit_clients", float64(rl.Clients))
	}

	if s.store != nil {
		ss := s.store.Stats()
		p.family("dk_store_graphs", "Graph artifacts on disk.", "gauge")
		p.sample("dk_store_graphs", float64(ss.Graphs))
		p.family("dk_store_profiles", "Profile artifacts on disk.", "gauge")
		p.sample("dk_store_profiles", float64(ss.Profiles))
		p.family("dk_store_graph_bytes", "Bytes of graph artifacts on disk.", "gauge")
		p.sample("dk_store_graph_bytes", float64(ss.GraphBytes))
		p.family("dk_store_profile_bytes", "Bytes of profile artifacts on disk.", "gauge")
		p.sample("dk_store_profile_bytes", float64(ss.ProfileBytes))
		p.family("dk_store_graph_reads_total", "Graph artifact reads.", "counter")
		p.sample("dk_store_graph_reads_total", float64(ss.GraphReads))
		p.family("dk_store_graph_writes_total", "Graph artifact writes.", "counter")
		p.sample("dk_store_graph_writes_total", float64(ss.GraphWrites))
		p.family("dk_store_profile_reads_total", "Profile artifact reads.", "counter")
		p.sample("dk_store_profile_reads_total", float64(ss.ProfileReads))
		p.family("dk_store_profile_writes_total", "Profile artifact writes.", "counter")
		p.sample("dk_store_profile_writes_total", float64(ss.ProfileWrites))
		p.family("dk_store_read_errors_total", "Artifact reads that failed verification.", "counter")
		p.sample("dk_store_read_errors_total", float64(ss.ReadErrors))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(p.sb.String()))
}
