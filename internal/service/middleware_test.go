package service

import (
	"bytes"
	"log"
	"net/http"
	"strings"
	"testing"

	"repro/pkg/dkapi"
)

// TestHealthz: liveness is unconditional.
func TestHealthz(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var h dkapi.HealthResponse
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Version == "" {
		t.Fatalf("healthz %+v", h)
	}
	// Liveness survives draining — only readiness flips.
	srv.StartDraining()
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &h)
}

// TestReadyzDraining: ready while serving, 503 with a named check once
// draining starts.
func TestReadyzDraining(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var r dkapi.ReadyResponse
	getJSON(t, ts.URL+"/v1/readyz", http.StatusOK, &r)
	if !r.Ready || r.Checks["jobs"] != "ok" || r.Checks["server"] != "ok" {
		t.Fatalf("fresh server not ready: %+v", r)
	}
	srv.StartDraining()
	getJSON(t, ts.URL+"/v1/readyz", http.StatusServiceUnavailable, &r)
	if r.Ready || r.Checks["server"] != "draining" {
		t.Fatalf("draining server reports %+v", r)
	}
}

// TestReadyzClosedEngine: a closed job engine makes the server
// not-ready with the jobs check failing.
func TestReadyzClosedEngine(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	srv.Close()
	var r dkapi.ReadyResponse
	getJSON(t, ts.URL+"/v1/readyz", http.StatusServiceUnavailable, &r)
	if r.Ready || r.Checks["jobs"] == "ok" {
		t.Fatalf("closed-engine server reports %+v", r)
	}
}

// TestRequestIDHeader: generated when absent, echoed when present.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); rid == "" {
		t.Fatal("no X-Request-Id on response")
	}
	req, _ := http.NewRequest("GET", ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); rid != "caller-supplied-42" {
		t.Fatalf("request id %q, want the caller's", rid)
	}
}

// TestRouteStats: per-route counters move with traffic, errors are
// counted, and every registered route appears in /v1/stats.
func TestRouteStats(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/extract?d=0", "text/plain", "0 1\n", http.StatusOK, nil)
	postJSON(t, ts.URL+"/v1/extract?d=9", "text/plain", "0 1\n", http.StatusBadRequest, nil)
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	rs, ok := stats.Routes["POST /v1/extract"]
	if !ok {
		t.Fatalf("no route entry for POST /v1/extract: %v", stats.Routes)
	}
	if rs.Count != 2 || rs.Errors != 1 {
		t.Fatalf("extract route count=%d errors=%d, want 2/1", rs.Count, rs.Errors)
	}
	if rs.LastCode != http.StatusBadRequest {
		t.Fatalf("extract route last_code=%d, want 400", rs.LastCode)
	}
	if rs.BytesSent == 0 {
		t.Fatal("extract route recorded no bytes sent")
	}
	// Unhit routes are pre-registered with zero counts, so dashboards
	// see the full surface immediately.
	if _, ok := stats.Routes["POST /v1/pipelines"]; !ok {
		t.Fatalf("unhit route missing from stats: %v", stats.Routes)
	}
}

// TestPhaseStats: pipeline execution phases accumulate in /v1/stats
// keyed "op.phase", with generation's construct phase — the paper's
// §4.1.4 hot path — reported separately from the extract overhead
// around it. A fresh server omits the section entirely.
func TestPhaseStats(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Phases != nil {
		t.Fatalf("fresh server already has phases: %v", stats.Phases)
	}
	var extract ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", "0 1\n1 2\n2 0\n2 3\n3 4\n4 2\n",
		http.StatusOK, &extract)
	req := `{"source":{"hash":"` + extract.Graph.Hash + `"},"d":1,"method":"matching","replicas":2,"seed":7,"compare":true}`
	var accepted GenerateAccepted
	postJSON(t, ts.URL+"/v1/generate", "application/json", req, http.StatusAccepted, &accepted)
	if view := pollJob(t, ts.URL, accepted.JobID); view.Status != JobDone {
		t.Fatalf("generate job failed: %s", view.Error)
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	for _, key := range []string{"extract.resolve", "extract.extract", "generate.construct", "generate.intern", "generate.compare"} {
		ps, ok := stats.Phases[key]
		if !ok {
			t.Errorf("phase %q missing from stats: %v", key, stats.Phases)
			continue
		}
		if ps.Count <= 0 || ps.TotalMS < 0 || ps.MaxMS > ps.TotalMS+1e-9 {
			t.Errorf("phase %q has implausible aggregates: %+v", key, ps)
		}
	}
	// Two replicas were interned and compared: per-replica phases count
	// one observation each.
	if got := stats.Phases["generate.intern"].Count; got != 2 {
		t.Errorf("generate.intern count = %d, want 2", got)
	}
}

// TestAccessLog: one structured line per request, carrying method,
// path, status, and the request id.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newTestServer(t, Options{AccessLog: log.New(&buf, "", 0)})
	req, _ := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-Id", "log-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.String()
	for _, want := range []string{"method=GET", "path=/v1/stats", "status=200", "rid=log-probe-1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log %q missing %q", line, want)
		}
	}
}
