package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/store"
)

// GraphRef identifies a graph in a request body, by exactly one of three
// means: a content hash of a previously uploaded graph ("hash"), an
// inline edge list ("edges"), or a built-in dataset name ("dataset",
// with optional "seed"/"n" synthesis parameters).
type GraphRef struct {
	Hash    string `json:"hash,omitempty"`
	Edges   string `json:"edges,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	N       int    `json:"n,omitempty"`
}

// GraphInfo describes a resolved graph in responses.
type GraphInfo struct {
	Hash string `json:"hash"`
	N    int    `json:"n"`
	M    int    `json:"m"`
}

// ExtractResponse is the body of a successful POST /v1/extract.
type ExtractResponse struct {
	Graph   GraphInfo        `json:"graph"`
	Cached  bool             `json:"cached"`
	Profile *dk.Profile      `json:"profile"`
	Summary *metrics.Summary `json:"summary,omitempty"`
}

// GenerateRequest is the body of POST /v1/generate.
type GenerateRequest struct {
	// Source is the topology to extract the target distribution from
	// (and, for method "randomize", the rewiring start point).
	Source GraphRef `json:"source"`
	// D is the dK depth (0..3, default 2).
	D *int `json:"d,omitempty"`
	// Method is one of randomize, stochastic, pseudograph, matching,
	// targeting (default randomize).
	Method string `json:"method,omitempty"`
	// Replicas is the ensemble size (default 1, bounded by the server's
	// MaxReplicas option).
	Replicas int `json:"replicas,omitempty"`
	// Seed drives all randomness; replica i derives its own independent
	// stream, so the ensemble is a pure function of (seed, replicas).
	Seed int64 `json:"seed,omitempty"`
	// Compare adds the D_d distance of every replica to the source
	// profile in the job result.
	Compare bool `json:"compare,omitempty"`
}

// ReplicaInfo summarizes one generated replica in a job result.
type ReplicaInfo struct {
	Index    int      `json:"index"`
	N        int      `json:"n"`
	M        int      `json:"m"`
	Distance *float64 `json:"distance,omitempty"`
}

// GenerateResult is the result summary of a finished generate job; the
// replica edge lists themselves stream from /v1/jobs/{id}/result.
type GenerateResult struct {
	Source   GraphInfo     `json:"source"`
	D        int           `json:"d"`
	Method   string        `json:"method"`
	Seed     int64         `json:"seed"`
	Replicas []ReplicaInfo `json:"replicas"`
}

// GenerateAccepted is the 202 body of POST /v1/generate.
type GenerateAccepted struct {
	JobID     string `json:"job_id"`
	StatusURL string `json:"status_url"`
}

// CompareRequest is the body of POST /v1/compare.
type CompareRequest struct {
	A GraphRef `json:"a"`
	B GraphRef `json:"b"`
	// D is the maximum dK depth to compare (0..3, default 3); D_d is
	// reported for every d up to it.
	D *int `json:"d,omitempty"`
	// Spectral includes the Laplacian spectrum bounds in the summaries.
	Spectral bool `json:"spectral,omitempty"`
	// Sample bounds the BFS sources for the distance metrics (0 =
	// exact, as in /v1/extract's ?sample); essential for large graphs,
	// where exact all-pairs distances are O(N·M).
	Sample int `json:"sample,omitempty"`
	// Seed drives Lanczos and any sampled metrics (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// DistanceEntry is one D_d value in a compare response.
type DistanceEntry struct {
	D     int     `json:"d"`
	Value float64 `json:"value"`
}

// CompareResponse is the body of a successful POST /v1/compare.
type CompareResponse struct {
	A         GraphInfo       `json:"a"`
	B         GraphInfo       `json:"b"`
	Distances []DistanceEntry `json:"distances"`
	SummaryA  metrics.Summary `json:"summary_a"`
	SummaryB  metrics.Summary `json:"summary_b"`
}

// StatsResponse is the body of GET /v1/stats. Store is present only when
// the server runs with a persistent data directory.
type StatsResponse struct {
	Version       string       `json:"version"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Workers       int          `json:"workers"`
	Cache         CacheStats   `json:"cache"`
	Jobs          EngineStats  `json:"jobs"`
	Store         *store.Stats `json:"store,omitempty"`
}

// ErrorResponse is the uniform error envelope of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Error codes used in ErrorResponse.Code.
const (
	CodeBadRequest = "bad_request" // malformed input or parameters
	CodeNotFound   = "not_found"   // unknown hash, job, or dataset
	CodeTooLarge   = "too_large"   // body or graph exceeds a limit
	CodeQueueFull  = "queue_full"  // job queue at capacity
	CodeConflict   = "conflict"    // job not in a state serving the request
	CodeInternal   = "internal"    // unexpected server-side failure
)

// writeJSON writes v with the given status. Encoding failures after the
// status line is out cannot be reported to the client and are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// classifyGraphError maps a graph-input failure to its API error: limit
// violations (ReadLimits or a capped request body) are 413, everything
// else is a 400 parse error. This is the single source of that policy —
// both the direct-body and graph-reference paths go through it.
func classifyGraphError(err error) *apiError {
	var mbe *http.MaxBytesError
	if errors.Is(err, graph.ErrLimit) || errors.As(err, &mbe) {
		return &apiError{http.StatusRequestEntityTooLarge, CodeTooLarge, err.Error()}
	}
	return &apiError{http.StatusBadRequest, CodeBadRequest, err.Error()}
}

// writeGraphError writes a graph-input failure with classifyGraphError's
// status mapping.
func writeGraphError(w http.ResponseWriter, err error) {
	writeAPIError(w, classifyGraphError(err))
}

// readLimits are the per-graph parse bounds from the server options.
func (s *Server) readLimits() graph.ReadLimits {
	return graph.ReadLimits{
		MaxBytes: s.opts.MaxBodyBytes,
		MaxNodes: s.opts.MaxNodes,
		MaxEdges: s.opts.MaxEdges,
	}
}

// resolveRef turns a GraphRef into a cache entry. Inline edge lists and
// datasets are parsed/synthesized and interned; hashes must already be
// cached. The error is pre-classified via errStatus.
func (s *Server) resolveRef(ref GraphRef) (*Entry, error) {
	set := 0
	for _, ok := range []bool{ref.Hash != "", ref.Edges != "", ref.Dataset != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, &apiError{http.StatusBadRequest, CodeBadRequest,
			"graph reference must set exactly one of hash, edges, dataset"}
	}
	switch {
	case ref.Hash != "":
		e := s.cache.Get(Hash(ref.Hash))
		if e == nil {
			return nil, &apiError{http.StatusNotFound, CodeNotFound,
				fmt.Sprintf("hash %s not in cache (evicted or never uploaded); re-upload the edge list", ref.Hash)}
		}
		return e, nil
	case ref.Edges != "":
		g, labels, err := graph.ReadEdgeListLimit(strings.NewReader(ref.Edges), s.readLimits())
		if err != nil {
			return nil, classifyGraphError(err)
		}
		e, _ := s.cache.Intern(g, labels)
		return e, nil
	default:
		g, err := s.datasetGraph(ref.Dataset, ref.Seed, ref.N)
		if err != nil {
			return nil, err // datasetGraph pre-classifies its errors
		}
		e, _ := s.cache.Intern(g, nil)
		return e, nil
	}
}

// apiError carries a pre-classified HTTP status and code with a message.
type apiError struct {
	status int
	code   string
	msg    string
}

// Error implements error.
func (e *apiError) Error() string { return e.msg }

// writeAPIError writes err as its carried status if it is an apiError,
// or as a 500 otherwise.
func writeAPIError(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		writeError(w, ae.status, ae.code, "%s", ae.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
}

// info builds the response descriptor of a cache entry.
func info(e *Entry) GraphInfo {
	n, m := e.Size()
	return GraphInfo{Hash: string(e.Hash()), N: n, M: m}
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// queryInt64 parses an int64 query parameter with a default.
func queryInt64(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// queryBool parses a boolean query parameter ("1"/"true" = true).
func queryBool(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || strings.EqualFold(v, "true")
}
