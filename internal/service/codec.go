package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/pkg/dkapi"
)

// The wire vocabulary of the service lives in pkg/dkapi so the HTTP
// layer, the Go facade (pkg/dk), the client SDK (pkg/dkclient), and the
// CLIs all speak the same types. The aliases below keep the historical
// service names working.
type (
	// GraphRef identifies a graph in a request body; see dkapi.GraphRef.
	GraphRef = dkapi.GraphRef
	// GraphInfo describes a resolved graph in responses.
	GraphInfo = dkapi.GraphInfo
	// ExtractResponse is the body of a successful POST /v1/extract.
	ExtractResponse = dkapi.ExtractResponse
	// GenerateRequest is the body of POST /v1/generate.
	GenerateRequest = dkapi.GenerateRequest
	// ReplicaInfo summarizes one generated replica in a job result.
	ReplicaInfo = dkapi.ReplicaInfo
	// GenerateResult is the result summary of a finished generate job.
	GenerateResult = dkapi.GenerateResult
	// GenerateAccepted is the 202 body of POST /v1/generate.
	GenerateAccepted = dkapi.JobAccepted
	// CompareRequest is the body of POST /v1/compare.
	CompareRequest = dkapi.CompareRequest
	// DistanceEntry is one D_d value in a compare response.
	DistanceEntry = dkapi.DistanceEntry
	// CompareResponse is the body of a successful POST /v1/compare.
	CompareResponse = dkapi.CompareResponse
	// StatsResponse is the body of GET /v1/stats.
	StatsResponse = dkapi.StatsResponse
	// ErrorResponse is the uniform error envelope of every non-2xx
	// response.
	ErrorResponse = dkapi.ErrorResponse
	// DatasetInfo describes one built-in dataset on GET /v1/datasets.
	DatasetInfo = dkapi.DatasetInfo
)

// Error codes used in ErrorResponse.Code.
const (
	CodeBadRequest  = dkapi.CodeBadRequest
	CodeNotFound    = dkapi.CodeNotFound
	CodeTooLarge    = dkapi.CodeTooLarge
	CodeQueueFull   = dkapi.CodeQueueFull
	CodeRateLimited = dkapi.CodeRateLimited
	CodeConflict    = dkapi.CodeConflict
	CodeUnavailable = dkapi.CodeUnavailable
	CodeInternal    = dkapi.CodeInternal
)

// writeJSON writes v with the given status. Encoding failures after the
// status line is out cannot be reported to the client and are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// classifyGraphError maps a graph-input failure to its API error: limit
// violations (ReadLimits or a capped request body) are 413, everything
// else is a 400 parse error. This is the single source of that policy —
// both the direct-body and graph-reference paths go through it.
func classifyGraphError(err error) *apiError {
	var mbe *http.MaxBytesError
	if errors.Is(err, graph.ErrLimit) || errors.As(err, &mbe) {
		return &apiError{http.StatusRequestEntityTooLarge, CodeTooLarge, err.Error()}
	}
	return &apiError{http.StatusBadRequest, CodeBadRequest, err.Error()}
}

// writeGraphError writes a graph-input failure with classifyGraphError's
// status mapping.
func writeGraphError(w http.ResponseWriter, err error) {
	writeAPIError(w, classifyGraphError(err))
}

// readLimits are the per-graph parse bounds from the server options.
func (s *Server) readLimits() graph.ReadLimits {
	return graph.ReadLimits{
		MaxBytes: s.opts.MaxBodyBytes,
		MaxNodes: s.opts.MaxNodes,
		MaxEdges: s.opts.MaxEdges,
	}
}

// resolveRef turns a GraphRef into a cache entry. Inline edge lists and
// datasets are parsed/synthesized and interned; hashes must already be
// cached. Step references are a pipeline-only construct and file
// references are client-side sugar — both are rejected here. The error
// is pre-classified via apiError.
func (s *Server) resolveRef(ref GraphRef) (*Entry, error) {
	if ref.Step != "" {
		return nil, &apiError{http.StatusBadRequest, CodeBadRequest,
			"step references are only valid inside pipeline steps"}
	}
	if ref.File != "" {
		return nil, &apiError{http.StatusBadRequest, CodeBadRequest,
			"file references are resolved client-side; inline the edge list or upload it first"}
	}
	set := 0
	for _, ok := range []bool{ref.Hash != "", ref.Edges != "", ref.Dataset != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, &apiError{http.StatusBadRequest, CodeBadRequest,
			"graph reference must set exactly one of hash, edges, dataset"}
	}
	switch {
	case ref.Hash != "":
		e := s.cache.Get(Hash(ref.Hash))
		if e == nil {
			return nil, &apiError{http.StatusNotFound, CodeNotFound,
				fmt.Sprintf("hash %s not in cache (evicted or never uploaded); re-upload the edge list", ref.Hash)}
		}
		return e, nil
	case ref.Edges != "":
		g, labels, err := graph.ReadEdgeListLimit(strings.NewReader(ref.Edges), s.readLimits())
		if err != nil {
			return nil, classifyGraphError(err)
		}
		e, _ := s.cache.Intern(g.CSR(), labels)
		return e, nil
	default:
		g, err := s.datasetGraph(ref.Dataset, ref.Seed, ref.N)
		if err != nil {
			return nil, err // datasetGraph pre-classifies its errors
		}
		e, _ := s.cache.Intern(g, nil)
		return e, nil
	}
}

// apiError carries a pre-classified HTTP status and code with a message.
type apiError struct {
	status int
	code   string
	msg    string
}

// Error implements error.
func (e *apiError) Error() string { return e.msg }

// writeAPIError writes err as its carried status if it is an apiError,
// or as a 500 otherwise.
func writeAPIError(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		writeError(w, ae.status, ae.code, "%s", ae.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
}

// info builds the response descriptor of a cache entry.
func info(e *Entry) GraphInfo {
	n, m := e.Size()
	return GraphInfo{Hash: string(e.Hash()), N: n, M: m}
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// queryInt64 parses an int64 query parameter with a default.
func queryInt64(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// queryBool parses a boolean query parameter ("1"/"true" = true).
func queryBool(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || strings.EqualFold(v, "true")
}
