package service

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// statusWriter captures the response status and byte count for the
// access log and the per-route counters, passing Flush through so
// streamed bulk results keep flowing.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeAgg accumulates one route's traffic.
type routeAgg struct {
	count     int64
	errors    int64
	throttled int64
	bytes     int64
	total     time.Duration
	max       time.Duration
	last      time.Duration
	lastCode  int
	inFlight  int64
}

// routeStats is the per-route traffic table behind /v1/stats "routes".
// Keys are mux patterns ("POST /v1/extract"), fixed at registration
// time, so the table cannot be grown by request-path garbage.
type routeStats struct {
	mu sync.Mutex
	m  map[string]*routeAgg
}

func newRouteStats() *routeStats {
	return &routeStats{m: make(map[string]*routeAgg)}
}

func (rs *routeStats) agg(pattern string) *routeAgg {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	a := rs.m[pattern]
	if a == nil {
		a = &routeAgg{}
		rs.m[pattern] = a
	}
	return a
}

// Snapshot renders the table in wire form. Map iteration order does not
// matter: encoding/json sorts map keys.
func (rs *routeStats) Snapshot() map[string]dkapi.RouteStat {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]dkapi.RouteStat, len(rs.m))
	for pattern, a := range rs.m {
		out[pattern] = dkapi.RouteStat{
			Count:     a.count,
			Errors:    a.errors,
			Throttled: a.throttled,
			TotalMS:   float64(a.total) / float64(time.Millisecond),
			MaxMS:     float64(a.max) / float64(time.Millisecond),
			LastMS:    float64(a.last) / float64(time.Millisecond),
			LastCode:  a.lastCode,
			InFlight:  a.inFlight,
			BytesSent: a.bytes,
		}
	}
	return out
}

// route registers a handler on the mux wrapped in the per-route
// instrumentation: request count, error count (status >= 400), latency
// aggregates, and bytes sent, all keyed by the registration pattern.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	a := s.routes.agg(pattern) // pre-create so /v1/stats lists every route
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw, ok := w.(*statusWriter)
		if !ok {
			sw = &statusWriter{ResponseWriter: w}
		}
		s.routes.mu.Lock()
		a.inFlight++
		s.routes.mu.Unlock()
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		s.httpHist.Observe(pattern, elapsed.Seconds())
		s.routes.mu.Lock()
		a.inFlight--
		a.count++
		a.bytes += sw.bytes
		a.total += elapsed
		if elapsed > a.max {
			a.max = elapsed
		}
		a.last = elapsed
		a.lastCode = sw.status
		// 429 is backpressure (full job queue), not failure: it goes to
		// the throttled counter so error budgets — and the job engine's
		// own Rejected-vs-Failed split — stay meaningful under load.
		switch {
		case sw.status == http.StatusTooManyRequests:
			a.throttled++
		case sw.status >= 400:
			a.errors++
		}
		s.routes.mu.Unlock()
	})
}

// ridCounter numbers generated request ids process-wide.
var ridCounter atomic.Int64

// ServeHTTP is the service entry point: the middleware stack (request
// id, rate limiting, status capture, structured access log) around the
// /v1 mux. Incoming X-Request-Id headers are echoed so callers can
// correlate; absent ones are minted here, and every response carries
// the header.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = fmt.Sprintf("req-%d-%06d", s.started.Unix(), ridCounter.Add(1))
	}
	w.Header().Set("X-Request-Id", rid)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	// Admission control runs before routing: a limited request spends no
	// handler work, never reaches the per-route tables (the limiter has
	// its own counters in /v1/stats), and in particular never touches
	// the job engine — so Rejected/Failed there count real submissions
	// only. Health probes and the metrics scrape are exempt: throttling
	// an orchestrator's liveness check restarts healthy pods.
	if s.limiter != nil && !rateLimitExempt(r) {
		if ok, wait := s.limiter.Allow(clientKey(r)); !ok {
			sw.Header().Set("Retry-After", retryAfterSeconds(wait))
			writeError(sw, http.StatusTooManyRequests, CodeRateLimited,
				"client over the request rate (%.3g/s, burst %d); slow down",
				s.opts.RatePerSec, s.limiterBurst())
			s.logAccess(r, sw, start, rid)
			return
		}
	}
	// Admitted requests may get a trace: the root "request" span rides
	// the context into the handler (and from there into the pipeline
	// executor and the job engine). The trace id is the request id, so
	// access-log lines, error strings, and trace files all correlate.
	var tr *trace.Trace
	if s.shouldTrace(r) {
		tr = trace.New(rid, "request", "method", r.Method, "path", r.URL.Path)
		r = r.WithContext(trace.With(r.Context(), tr.Root()))
	}
	s.mux.ServeHTTP(sw, r)
	if sw.status == 0 {
		// A handler that never wrote (or a mux 404 with an empty body)
		// still implicitly answered 200 unless WriteHeader said otherwise.
		sw.status = http.StatusOK
	}
	if tr != nil {
		// End is idempotent: sync handlers that embedded the trace in
		// their response already ended the root; the status attribute
		// still lands for the job-trace copy, which is encoded later.
		root := tr.Root()
		root.SetAttr("status", strconv.Itoa(sw.status))
		root.End()
	}
	s.logAccess(r, sw, start, rid)
}

// logAccess emits the structured access-log line (when enabled) — one
// per request, including rate-limited rejections.
func (s *Server) logAccess(r *http.Request, sw *statusWriter, start time.Time, rid string) {
	if lg := s.opts.AccessLog; lg != nil {
		lg.Printf("method=%s path=%s status=%d bytes=%d dur=%s rid=%s",
			r.Method, r.URL.Path, sw.status, sw.bytes, time.Since(start).Round(time.Microsecond), rid)
	}
}

// limiterBurst reports the effective burst of the configured limiter,
// for the 429 message.
func (s *Server) limiterBurst() int {
	if s.limiter == nil {
		return 0
	}
	return int(s.limiter.burst)
}
