package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// newTestServer builds a Server + httptest.Server pair and registers
// cleanup for both.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// getJSON GETs url and decodes the JSON body into out, asserting status.
func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decode: %v; body: %s", url, err, body)
		}
	}
}

// postJSON POSTs body (JSON-encoded if not a string) and decodes the
// response, asserting status.
func postJSON(t *testing.T, url string, contentType string, body string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decode: %v; body: %s", url, err, raw)
		}
	}
}

// pollJob polls /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var view JobView
		getJSON(t, base+"/v1/jobs/"+id, http.StatusOK, &view)
		if view.Status == JobDone || view.Status == JobFailed {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, view.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

const pawEdges = "# the paper's worked example\n0 1\n1 2\n0 2\n2 3\n"

func TestExtractProfileEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var resp ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=3", "text/plain", pawEdges, http.StatusOK, &resp)

	if resp.Graph.N != 4 || resp.Graph.M != 4 {
		t.Fatalf("graph info n=%d m=%d, want 4/4", resp.Graph.N, resp.Graph.M)
	}
	if !strings.HasPrefix(resp.Graph.Hash, "sha256:") {
		t.Fatalf("hash %q lacks sha256: prefix", resp.Graph.Hash)
	}
	if resp.Cached {
		t.Fatal("first extract reported cached=true")
	}
	p := resp.Profile
	if p == nil || p.D != 3 {
		t.Fatalf("profile = %+v, want depth 3", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("served profile fails inclusion identities: %v", err)
	}
	// Paw graph ground truth: degrees {1:1, 2:2, 3:1}, one triangle.
	if p.Degrees.Count[3] != 1 || p.Degrees.Count[1] != 1 || p.Degrees.Count[2] != 2 {
		t.Fatalf("degree distribution %+v wrong for paw", p.Degrees.Count)
	}
	if got := p.Census.TotalTriangles(); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
}

func TestExtractCacheHit(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var first ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", pawEdges, http.StatusOK, &first)
	if first.Cached {
		t.Fatal("first request cached=true")
	}
	stats := srv.CacheStats()
	if stats.Misses != 1 || stats.Extractions != 1 {
		t.Fatalf("after first extract: %+v, want 1 miss / 1 extraction", stats)
	}

	// The same topology in a different byte form: reordered lines,
	// different comments/whitespace. Must hash to the same entry and
	// skip recomputation.
	reordered := "2 3\n0 2\n   1    2\n# same paw, different bytes\n0 1\n"
	var second ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", reordered, http.StatusOK, &second)
	if second.Graph.Hash != first.Graph.Hash {
		t.Fatalf("reordered upload hashed to %s, want %s", second.Graph.Hash, first.Graph.Hash)
	}
	if !second.Cached {
		t.Fatal("second extract of the same topology reported cached=false")
	}
	stats = srv.CacheStats()
	if stats.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", stats.Hits)
	}
	if stats.Extractions != 1 {
		t.Fatalf("extractions = %d after repeat request, want 1 (no recomputation)", stats.Extractions)
	}

	// A shallower depth is also a hit via profile restriction.
	var third ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=1", "text/plain", pawEdges, http.StatusOK, &third)
	if !third.Cached {
		t.Fatal("d=1 extract after d=2 reported cached=false")
	}
	if srv.CacheStats().Extractions != 1 {
		t.Fatalf("restricting a deeper profile must not re-extract; stats %+v", srv.CacheStats())
	}
}

func TestExtractGenerateCompareEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// 1. Fetch a built-in dataset and extract its profile.
	resp, err := http.Get(ts.URL + "/v1/datasets/petersen")
	if err != nil {
		t.Fatal(err)
	}
	edges, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dataset fetch: %d: %s", resp.StatusCode, edges)
	}
	var extract ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=2&metrics=1", "text/plain", string(edges), http.StatusOK, &extract)
	if extract.Graph.N != 10 || extract.Graph.M != 15 {
		t.Fatalf("petersen info = %+v, want n=10 m=15", extract.Graph)
	}
	if extract.Summary == nil || extract.Summary.AvgDegree != 3 {
		t.Fatalf("summary = %+v, want k̄=3", extract.Summary)
	}

	// 2. Generate a 1K ensemble by hash reference (no re-upload).
	genReq := fmt.Sprintf(`{"source":{"hash":%q},"d":1,"method":"matching","replicas":3,"seed":7,"compare":true}`, extract.Graph.Hash)
	var accepted GenerateAccepted
	postJSON(t, ts.URL+"/v1/generate", "application/json", genReq, http.StatusAccepted, &accepted)
	if accepted.JobID == "" || accepted.StatusURL == "" {
		t.Fatalf("bad 202 body: %+v", accepted)
	}

	view := pollJob(t, ts.URL, accepted.JobID)
	if view.Status != JobDone {
		t.Fatalf("job failed: %s", view.Error)
	}
	raw, _ := json.Marshal(view.Result)
	var result GenerateResult
	if err := json.Unmarshal(raw, &result); err != nil {
		t.Fatal(err)
	}
	if len(result.Replicas) != 3 {
		t.Fatalf("replica count %d, want 3", len(result.Replicas))
	}
	for _, ri := range result.Replicas {
		// Matching realizes the degree distribution exactly: every
		// replica of the 3-regular Petersen graph is 3-regular.
		if ri.N != 10 || ri.M != 15 {
			t.Fatalf("replica %d: n=%d m=%d, want 10/15", ri.Index, ri.N, ri.M)
		}
		if ri.Distance == nil || *ri.Distance != 0 {
			t.Fatalf("replica %d: D_1 = %v, want exact 0", ri.Index, ri.Distance)
		}
	}

	// 3. Stream the replica edge lists and re-parse the first one.
	if view.ResultURL == "" {
		t.Fatal("done generate job has no result_url")
	}
	sresp, err := http.Get(ts.URL + view.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("result stream: %d: %s", sresp.StatusCode, streamed)
	}
	parts := strings.Split(string(streamed), "# replica ")
	if len(parts) != 4 { // leading empty + 3 replicas
		t.Fatalf("streamed %d replica sections, want 3", len(parts)-1)
	}
	replica0 := parts[1][strings.Index(parts[1], "\n")+1:]
	g0, _, err := graph.ReadEdgeList(strings.NewReader(replica0))
	if err != nil {
		t.Fatalf("streamed replica 0 does not re-parse: %v", err)
	}
	if g0.N() != 10 || g0.M() != 15 {
		t.Fatalf("re-parsed replica: n=%d m=%d, want 10/15", g0.N(), g0.M())
	}

	// 4. Compare original (by hash) against the streamed replica.
	cmpReq := fmt.Sprintf(`{"a":{"hash":%q},"b":{"edges":%q},"d":1}`, extract.Graph.Hash, replica0)
	var cmp CompareResponse
	postJSON(t, ts.URL+"/v1/compare", "application/json", cmpReq, http.StatusOK, &cmp)
	if len(cmp.Distances) != 2 {
		t.Fatalf("distances %+v, want entries for d=0,1", cmp.Distances)
	}
	for _, de := range cmp.Distances {
		if de.Value != 0 {
			t.Fatalf("D_%d = %v between a 1K-exact replica and its source, want 0", de.D, de.Value)
		}
	}
	if cmp.SummaryA.AvgDegree != 3 || cmp.SummaryB.AvgDegree != 3 {
		t.Fatalf("summaries %+v / %+v, want k̄=3 on both sides", cmp.SummaryA, cmp.SummaryB)
	}
}

func TestGenerateJobsRespectWorkerBudget(t *testing.T) {
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(0) })

	// JobRunners defaults to the worker budget — one runner here.
	srv, ts := newTestServer(t, Options{})
	if got := srv.JobStats().Runners; got != 1 {
		t.Fatalf("runners = %d, want the -workers budget of 1", got)
	}

	var extract ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=2&dataset=hot", "text/plain", "", http.StatusOK, &extract)

	ids := make([]string, 4)
	for i := range ids {
		req := fmt.Sprintf(`{"source":{"hash":%q},"d":2,"method":"randomize","replicas":2,"seed":%d}`, extract.Graph.Hash, i)
		var accepted GenerateAccepted
		postJSON(t, ts.URL+"/v1/generate", "application/json", req, http.StatusAccepted, &accepted)
		ids[i] = accepted.JobID
	}
	for _, id := range ids {
		if view := pollJob(t, ts.URL, id); view.Status != JobDone {
			t.Fatalf("job %s failed: %s", id, view.Error)
		}
	}
	if hw := srv.JobStats().MaxRunning; hw > 1 {
		t.Fatalf("max concurrent jobs = %d with a worker budget of 1", hw)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Jobs.Completed != 4 {
		t.Fatalf("completed jobs = %d, want 4", stats.Jobs.Completed)
	}
	if stats.Workers != 1 {
		t.Fatalf("stats workers = %d, want 1", stats.Workers)
	}
}

func TestGenerateDeterministicAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	fetch := func() string {
		req := `{"source":{"dataset":"petersen"},"d":1,"method":"matching","replicas":2,"seed":11}`
		var accepted GenerateAccepted
		postJSON(t, ts.URL+"/v1/generate", "application/json", req, http.StatusAccepted, &accepted)
		view := pollJob(t, ts.URL, accepted.JobID)
		if view.Status != JobDone {
			t.Fatalf("job failed: %s", view.Error)
		}
		resp, err := http.Get(ts.URL + view.ResultURL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if a, b := fetch(), fetch(); a != b {
		t.Fatal("same (seed, replicas) produced different streamed ensembles")
	}
}

func TestExtractErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 64})

	var e ErrorResponse
	postJSON(t, ts.URL+"/v1/extract?d=7", "text/plain", pawEdges, http.StatusBadRequest, &e)
	if e.Code != CodeBadRequest {
		t.Fatalf("code %q, want %q", e.Code, CodeBadRequest)
	}

	postJSON(t, ts.URL+"/v1/extract", "text/plain", "0 1\nnot numbers\n", http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "bad node") {
		t.Fatalf("parse error %q should name the bad token", e.Error)
	}

	big := strings.Repeat("# padding line\n", 100) + pawEdges
	postJSON(t, ts.URL+"/v1/extract", "text/plain", big, http.StatusRequestEntityTooLarge, &e)
	if e.Code != CodeTooLarge {
		t.Fatalf("code %q, want %q", e.Code, CodeTooLarge)
	}

	postJSON(t, ts.URL+"/v1/extract", "text/plain", "", http.StatusBadRequest, &e)
	postJSON(t, ts.URL+"/v1/extract?dataset=nope", "text/plain", "", http.StatusNotFound, &e)
	if e.Code != CodeNotFound {
		t.Fatalf("code %q, want %q", e.Code, CodeNotFound)
	}
}

func TestGenerateAndCompareErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var e ErrorResponse

	// Unknown method.
	postJSON(t, ts.URL+"/v1/generate", "application/json",
		`{"source":{"dataset":"paw"},"method":"magic"}`, http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "magic") {
		t.Fatalf("error %q should name the bad method", e.Error)
	}

	// d=3 without targeting/randomize is rejected synchronously.
	postJSON(t, ts.URL+"/v1/generate", "application/json",
		`{"source":{"dataset":"paw"},"d":3,"method":"matching"}`, http.StatusBadRequest, &e)

	// Unknown hash.
	postJSON(t, ts.URL+"/v1/generate", "application/json",
		`{"source":{"hash":"sha256:feed"}}`, http.StatusNotFound, &e)
	if e.Code != CodeNotFound {
		t.Fatalf("code %q, want %q", e.Code, CodeNotFound)
	}

	// Ambiguous reference.
	postJSON(t, ts.URL+"/v1/compare", "application/json",
		`{"a":{"dataset":"paw","edges":"0 1\n"},"b":{"dataset":"paw"}}`, http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "exactly one") {
		t.Fatalf("error %q should explain the exclusivity rule", e.Error)
	}

	// Replica cap.
	postJSON(t, ts.URL+"/v1/generate", "application/json",
		`{"source":{"dataset":"paw"},"replicas":100000}`, http.StatusBadRequest, &e)

	// Unknown job / premature result.
	getJSON(t, ts.URL+"/v1/jobs/j999999", http.StatusNotFound, &e)
	getJSON(t, ts.URL+"/v1/jobs/j999999/result", http.StatusNotFound, &e)
}

func TestDatasetEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var list []DatasetInfo
	getJSON(t, ts.URL+"/v1/datasets", http.StatusOK, &list)
	names := make(map[string]bool)
	for _, d := range list {
		names[d.Name] = true
	}
	for _, want := range []string{"paw", "petersen", "hot", "skitter"} {
		if !names[want] {
			t.Fatalf("dataset list %v missing %q", list, want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/datasets/hot?seed=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	g, _, err := graph.ReadEdgeList(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 900 {
		t.Fatalf("hot dataset n=%d, want the ~921-node default", g.N())
	}
}

func TestCompareDepth3Distances(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Paw vs path P4: same size (4 nodes), different structure.
	path := "0 1\n1 2\n2 3\n"
	req := fmt.Sprintf(`{"a":{"edges":%q},"b":{"edges":%q},"d":3}`, pawEdges, path)
	var cmp CompareResponse
	postJSON(t, ts.URL+"/v1/compare", "application/json", req, http.StatusOK, &cmp)
	if len(cmp.Distances) != 4 {
		t.Fatalf("got %d distance entries, want 4", len(cmp.Distances))
	}
	// Ground truth via direct extraction.
	ga, _, _ := graph.ReadEdgeList(strings.NewReader(pawEdges))
	gb, _, _ := graph.ReadEdgeList(strings.NewReader(path))
	pa, _ := dk.Extract(ga.CSR(), 3)
	pb, _ := dk.Extract(gb.CSR(), 3)
	for _, de := range cmp.Distances {
		want, err := dk.Distance(pa, pb, de.D)
		if err != nil {
			t.Fatal(err)
		}
		if de.Value != want {
			t.Fatalf("D_%d = %v, want %v", de.D, de.Value, want)
		}
	}
}
