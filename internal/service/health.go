package service

import (
	"net/http"

	"repro/pkg/dkapi"
)

// handleHealthz implements GET /v1/healthz: pure liveness. If this
// handler runs at all, the process is alive — no dependency is
// consulted, so a wedged store can never make an orchestrator kill a
// pod that is merely degraded.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, dkapi.HealthResponse{Status: "ok", Version: version})
}

// handleReadyz implements GET /v1/readyz: readiness to take traffic.
// Not ready (503) while draining for shutdown, after the job engine
// closed, or when the artifact store's directory stopped being
// reachable. Each dependency reports individually so operators see
// which check failed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]string{}
	ready := true
	if s.draining.Load() {
		checks["server"] = "draining"
		ready = false
	} else {
		checks["server"] = "ok"
	}
	if s.jobs.Accepting() {
		checks["jobs"] = "ok"
	} else {
		checks["jobs"] = "job engine closed"
		ready = false
	}
	if s.store != nil {
		if err := s.store.Ping(); err != nil {
			checks["store"] = err.Error()
			ready = false
		} else {
			checks["store"] = "ok"
		}
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, dkapi.ReadyResponse{Ready: ready, Checks: checks})
}

// rateLimitExempt reports whether a request bypasses per-client rate
// limiting. Liveness/readiness probes and the Prometheus scrape are
// exempt: an orchestrator whose health checks get 429 restarts healthy
// pods, and a monitoring gap is exactly when scrapes must keep working.
func rateLimitExempt(r *http.Request) bool {
	switch r.URL.Path {
	case "/v1/healthz", "/v1/readyz", "/metrics":
		return true
	}
	return false
}

// StartDraining flips /v1/readyz to 503 so load balancers stop sending
// new traffic while in-flight requests and running jobs finish.
// dkserved calls it on SIGTERM, before shutting the listener down;
// requests already in the house are unaffected.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }
