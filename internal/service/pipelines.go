package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/graph"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// pipelineLimits are the request bounds handed to pipeline.Validate.
func (s *Server) pipelineLimits() pipeline.Limits {
	return pipeline.Limits{
		MaxSteps:         s.opts.MaxPipelineSteps,
		MaxReplicas:      s.opts.MaxReplicas,
		MaxTotalReplicas: s.opts.MaxPipelineReplicas,
	}
}

// resolvePipelineRefs resolves every external graph reference of the
// request synchronously — resolution failures (unknown hash, oversized
// inline edge list, bad dataset) surface as request errors, not job
// failures — and rewrites each to its content hash. Normalization keeps
// the journaled spec small and restart-resolvable (the graphs are
// already written through to the disk tier) and means the job body's
// own resolution is a pure cache hit. Step references pass through
// untouched: they resolve against the run's own outputs.
func (s *Server) resolvePipelineRefs(req *dkapi.PipelineRequest) error {
	normalize := func(ref *dkapi.GraphRef) error {
		if ref == nil || ref.Step != "" {
			return nil
		}
		e, err := s.resolveRef(*ref)
		if err != nil {
			return err
		}
		*ref = dkapi.GraphRef{Hash: string(e.Hash())}
		return nil
	}
	for i := range req.Steps {
		st := &req.Steps[i]
		if err := normalize(st.Source); err != nil {
			return fmt.Errorf("step %q: source: %w", st.ID, err)
		}
		if err := normalize(st.A); err != nil {
			return fmt.Errorf("step %q: a: %w", st.ID, err)
		}
		if err := normalize(st.B); err != nil {
			return fmt.Errorf("step %q: b: %w", st.ID, err)
		}
		for j := range st.Ensemble {
			if err := normalize(&st.Ensemble[j]); err != nil {
				return fmt.Errorf("step %q: ensemble[%d]: %w", st.ID, j, err)
			}
		}
	}
	return nil
}

// handlePipelineSubmit implements POST /v1/pipelines: validate the step
// DAG, resolve and normalize its external graph references, and enqueue
// the whole pipeline as one asynchronous job on the engine — one
// request for what used to take N extract/generate/compare round
// trips. Responds 202 with the job id; per-step progress appears in
// the job view while it runs.
func (s *Server) handlePipelineSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"server is draining; submit to another instance")
		return
	}
	var req dkapi.PipelineRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeGraphError(w, err)
		return
	}
	if err := pipeline.Validate(req, s.pipelineLimits()); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if err := s.resolvePipelineRefs(&req); err != nil {
		writeAPIError(w, err)
		return
	}
	// Pipelines without generate steps are interactive-class: someone is
	// waiting on a profile read, and it must not sit behind a queue of
	// ensemble sweeps.
	spec, _ := json.Marshal(req)
	jt := s.newJobTracer(r, "pipeline")
	job, err := s.jobs.SubmitClass("pipeline", pipeline.Class(req), spec,
		jt.wrap(s.pipelineJobFunc(req, jt.span())))
	jt.bind(job, err)
	if errors.Is(err, ErrQueueFull) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull,
			"job queue full (%d queued); retry later", s.opts.JobQueue)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, dkapi.JobAccepted{
		JobID:     job.ID(),
		StatusURL: "/v1/jobs/" + job.ID(),
	})
}

// pipelineJobFunc builds the body of a pipeline job: run the shared
// executor over the service backend, publishing per-step status as
// progress, and stream every generated ensemble in the bulk result —
// each replica prefixed by "# step <id> replica <i>". Shared by the
// HTTP submission path (which passes the job's trace span) and journal
// recovery (which passes nil); everything else it needs round-trips
// through the journaled (normalized) request spec.
func (s *Server) pipelineJobFunc(req dkapi.PipelineRequest, parent *trace.Span) TrackedJobFunc {
	return func(setProgress func(any)) (any, StreamFunc, error) {
		out, err := s.runPipeline(req,
			func(steps []dkapi.StepStatus) { setProgress(steps) }, parent)
		if err != nil {
			return nil, nil, err
		}
		var stream StreamFunc
		if len(out.Graphs) > 0 {
			graphs := out.Graphs
			stream = func(w io.Writer) error {
				for _, sg := range graphs {
					for i, h := range sg.Handles {
						if _, err := fmt.Fprintf(w, "# step %s replica %d\n", sg.StepID, i); err != nil {
							return err
						}
						if err := graph.WriteEdgeList(w, h.Graph()); err != nil {
							return err
						}
					}
				}
				return nil
			}
		}
		return out.Result, stream, nil
	}
}
