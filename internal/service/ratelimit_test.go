package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for limiter tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestRateLimiterRefill(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	rl := newRateLimiter(2, 4) // 2 tokens/s, burst 4
	rl.now = clock.now

	// The full burst is available immediately; the next request is over.
	for i := 0; i < 4; i++ {
		if ok, _ := rl.Allow("id:a"); !ok {
			t.Fatalf("request %d rejected inside the burst", i)
		}
	}
	ok, wait := rl.Allow("id:a")
	if ok {
		t.Fatal("request beyond the burst admitted")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("wait = %v, want (0, 500ms] at 2 tokens/s", wait)
	}

	// Half a second accrues one token — exactly one more request.
	clock.advance(500 * time.Millisecond)
	if ok, _ := rl.Allow("id:a"); !ok {
		t.Fatal("token not accrued after refill interval")
	}
	if ok, _ := rl.Allow("id:a"); ok {
		t.Fatal("second request admitted on a single accrued token")
	}

	// Idling never overfills past the burst.
	clock.advance(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := rl.Allow("id:a"); !ok {
			t.Fatalf("request %d rejected after full refill", i)
		}
	}
	if ok, _ := rl.Allow("id:a"); ok {
		t.Fatal("burst cap not enforced after a long idle")
	}

	// Other clients are unaffected throughout.
	if ok, _ := rl.Allow("id:b"); !ok {
		t.Fatal("distinct client starved by a's bucket")
	}
	st := rl.Stats()
	if st.Clients != 2 {
		t.Fatalf("clients = %d, want 2", st.Clients)
	}
	if st.Limited == 0 || st.Allowed == 0 {
		t.Fatalf("counters not moving: %+v", st)
	}
}

func TestRateLimiterEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	rl := newRateLimiter(1, 1)
	rl.now = clock.now

	// Fill the table with clients that stay hot (empty buckets).
	for i := 0; i < rateLimiterMaxClients; i++ {
		rl.Allow("id:" + strconv.Itoa(i))
	}
	if got := rl.Stats().Clients; got != rateLimiterMaxClients {
		t.Fatalf("clients = %d, want %d", got, rateLimiterMaxClients)
	}
	// A new client still gets tracked (stalest hot bucket evicted), and
	// the table never exceeds its bound.
	if ok, _ := rl.Allow("id:fresh"); !ok {
		t.Fatal("new client denied its burst when the table was full")
	}
	if got := rl.Stats().Clients; got > rateLimiterMaxClients {
		t.Fatalf("table grew past bound: %d", got)
	}
	// After every bucket refills, idle clients are reclaimed in bulk.
	clock.advance(time.Hour)
	rl.Allow("id:later")
	if got := rl.Stats().Clients; got > 2 {
		t.Fatalf("refilled buckets not reclaimed: %d clients", got)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{10 * time.Second, "10"},
	} {
		if got := retryAfterSeconds(tc.wait); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %s, want %s", tc.wait, got, tc.want)
		}
	}
}

// TestRateLimitMiddleware is the 429 regression test: limited requests
// must carry Retry-After and the rate_limited code, stay out of the
// per-route error counters, and never reach the job engine.
func TestRateLimitMiddleware(t *testing.T) {
	srv, ts := newTestServer(t, Options{RatePerSec: 1, RateBurst: 2})

	var before StatsResponse
	getJSONAs(t, ts.URL+"/v1/stats", "client-a", &before)

	do := func(clientID string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets", nil)
		if err != nil {
			t.Fatal(err)
		}
		if clientID != "" {
			req.Header.Set("X-Client-Id", clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Burn client-a's remaining budget, then confirm the 429 contract.
	var limited *http.Response
	for i := 0; i < 10; i++ {
		resp := do("client-a")
		if resp.StatusCode == http.StatusTooManyRequests {
			limited = resp
			break
		}
		resp.Body.Close()
	}
	if limited == nil {
		t.Fatal("client never rate limited at 1 req/s burst 2")
	}
	defer limited.Body.Close()
	ra := limited.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integral seconds >= 1", ra)
	}
	var envelope ErrorResponse
	body, _ := io.ReadAll(limited.Body)
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("429 body not an error envelope: %v; body: %s", err, body)
	}
	if envelope.Code != CodeRateLimited {
		t.Fatalf("429 code = %q, want %q", envelope.Code, CodeRateLimited)
	}

	// A different client id is a different bucket.
	if resp := do("client-b"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh client got %d, want 200", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Health probes and the scrape are exempt even for the limited client.
	for _, path := range []string{"/v1/healthz", "/v1/readyz", "/metrics"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("X-Client-Id", "client-a")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("%s rate limited; probes must be exempt", path)
		}
	}

	// The rejection left no trace in route or engine error counters: the
	// limited request never reached the mux, and the engine never saw a
	// submission.
	var after StatsResponse
	getJSONAs(t, ts.URL+"/v1/stats", "client-c", &after)
	if after.Jobs.Failed != before.Jobs.Failed || after.Jobs.Rejected != before.Jobs.Rejected {
		t.Fatalf("engine counters moved on a rate-limited request: %+v -> %+v", before.Jobs, after.Jobs)
	}
	rs := after.Routes["GET /v1/datasets"]
	if rs.Errors != 0 {
		t.Fatalf("429s leaked into route errors: %+v", rs)
	}
	if after.RateLimit == nil {
		t.Fatal("stats missing rate_limit block with a limiter configured")
	}
	if after.RateLimit.Limited == 0 || after.RateLimit.Allowed == 0 {
		t.Fatalf("limiter counters not moving: %+v", after.RateLimit)
	}
	if after.RateLimit.RatePerSec != 1 || after.RateLimit.Burst != 2 {
		t.Fatalf("limiter config not echoed: %+v", after.RateLimit)
	}

	// The limiter families appear on the scrape once configured.
	exp := scrape(t, ts.URL)
	if exp.types["dk_ratelimit_limited_total"] != "counter" {
		t.Fatal("dk_ratelimit_limited_total missing from /metrics")
	}
	if exp.samples["dk_ratelimit_limited_total"] == 0 {
		t.Fatal("dk_ratelimit_limited_total stuck at zero after a 429")
	}
	_ = srv
}

// getJSONAs is getJSON with an X-Client-Id, so stats reads in limiter
// tests spend their own budget, not the budget under test.
func getJSONAs(t *testing.T, url, clientID string, out any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-Id", clientID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d; body: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestRateLimitDisabledByDefault: no RatePerSec, no limiter — hammering
// a route never 429s and stats carry no rate_limit block.
func TestRateLimitDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for i := 0; i < 50; i++ {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatal("429 with no rate limit configured")
		}
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.RateLimit != nil {
		t.Fatalf("rate_limit block present without a limiter: %+v", stats.RateLimit)
	}
}

// TestThrottledSplitFromErrors: a queue-full 429 increments the route's
// throttled counter, not its error counter, and carries Retry-After.
func TestThrottledSplitFromErrors(t *testing.T) {
	srv, ts := newTestServer(t, Options{JobRunners: 1, JobQueue: 1})

	var er ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", pawEdges, http.StatusOK, &er)

	// Wedge the engine directly: a blocking job occupies the single
	// runner, more fill the one-slot batch queue, so the next HTTP
	// submission deterministically hits queue_full (the generated jobs
	// finish far too fast for HTTP-level racing to fill it).
	release := make(chan struct{})
	var wedged []*Job
	for {
		j, err := srv.jobs.Submit("block", func() (any, StreamFunc, error) {
			<-release
			return nil, nil, nil
		})
		if err != nil {
			break
		}
		wedged = append(wedged, j)
		if len(wedged) > 3 {
			t.Fatal("engine accepted more jobs than 1 running + 1 queued allows")
		}
	}
	defer func() {
		close(release)
		for _, j := range wedged {
			waitJob(t, j)
		}
	}()

	body := fmt.Sprintf(`{"source": {"hash": %q}, "d": 2, "replicas": 2, "seed": 1}`, er.Graph.Hash)
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("generate against a wedged engine got %d, want 429; body: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("queue-full 429 missing Retry-After")
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Code != CodeQueueFull {
		t.Fatalf("queue-full envelope = %s (err %v), want code %q", raw, err, CodeQueueFull)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	rs := stats.Routes["POST /v1/generate"]
	if rs.Throttled == 0 {
		t.Fatalf("429s not counted as throttled: %+v", rs)
	}
	if rs.Errors != 0 {
		t.Fatalf("backpressure 429s leaked into route errors: %+v", rs)
	}
	if stats.Jobs.Failed != 0 {
		t.Fatalf("queue-full rejections counted as job failures: %+v", stats.Jobs)
	}
	if stats.Jobs.Rejected == 0 {
		t.Fatalf("queue-full not counted as rejected: %+v", stats.Jobs)
	}
}
