package service

import (
	"container/list"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// Hash is a content address of a graph: "sha256:" plus the hex digest of
// its canonical edge list (see CanonicalHash). Two uploads with the same
// edge set — regardless of line order, comments, whitespace, or the order
// node labels first appear — map to the same Hash.
type Hash string

// CanonicalHash computes the content address of a parsed graph. The
// canonical form is defined by graph.ContentHash; it is also the key of
// the persistent artifact store, so the memory and disk tiers of the
// cache address the same topology identically. labels maps the graph's
// dense node ids back to the labels of the original input; pass nil to
// use the dense ids themselves.
func CanonicalHash(g *graph.CSR, labels []int) Hash {
	return Hash(graph.ContentHash(g, labels))
}

// summaryKey identifies one metric-summary configuration of a cached
// graph, so summaries with different options coexist in the same entry.
type summaryKey struct {
	spectral bool
	sources  int
	seed     int64
}

// Entry is one cached graph with its lazily computed derivatives. All
// methods are safe for concurrent use; expensive computations run under a
// per-entry lock so concurrent requests for the same topology do not
// duplicate work (single-flight per entry).
type Entry struct {
	hash  Hash
	cache *Cache // owning cache; carries the optional disk tier

	mu        sync.Mutex
	g         *graph.CSR
	static    *graph.Static
	gcc       *graph.Static
	profile   *dk.Profile // deepest extraction so far
	summaries map[summaryKey]metrics.Summary
}

// Hash returns the entry's content address.
func (e *Entry) Hash() Hash { return e.hash }

// Graph returns the parsed graph. Callers must treat it as read-only:
// every rewiring entry point in internal/generate works on a copy, so
// passing it straight to Randomize or TargetRewire is safe.
func (e *Entry) Graph() *graph.CSR { return e.g }

// Size returns the graph's node and edge counts.
func (e *Entry) Size() (n, m int) { return e.g.N(), e.g.M() }

// Static returns the CSR form of the graph, built once and reused.
func (e *Entry) Static() *graph.Static {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.static == nil {
		e.static = e.g.Static()
	}
	return e.static
}

// Profile returns the dK-profile of the graph at depth d, extracting it
// on first use. Deeper extractions subsume shallower ones via the
// inclusion property, so the entry stores only the deepest profile seen
// and answers shallower requests with Restrict. With a disk tier
// configured, a memory miss probes the store before recomputing, and a
// fresh extraction is written through — so a profile computed before a
// restart is fetched, not recomputed, after it. The second result reports
// whether the profile was served without an extraction run (from either
// tier).
func (e *Entry) Profile(d int) (*dk.Profile, bool, error) {
	return e.ProfileSpan(d, nil)
}

// ProfileSpan is Profile with disk-tier operations recorded as child
// spans of sp (see store.Ops) — a nil span is the plain untraced path.
// Memory hits record nothing: only actual store traffic appears in a
// trace.
func (e *Entry) ProfileSpan(d int, sp *trace.Span) (*dk.Profile, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.profile != nil && e.profile.D >= d {
		if e.profile.D == d {
			return e.profile, true, nil
		}
		p, err := e.profile.Restrict(d)
		return p, true, err
	}
	if disk := e.cache.diskTier(); disk != nil {
		ops := store.Ops{S: disk, Span: sp}
		if p, err := ops.GetProfile(string(e.hash), d); err == nil {
			e.cache.diskHits.Add(1)
			e.profile = p
			if p.D == d {
				return p, true, nil
			}
			q, err := p.Restrict(d)
			return q, true, err
		}
		e.cache.diskMisses.Add(1)
	}
	p, err := dk.Extract(e.g, d)
	if err != nil {
		return nil, false, err
	}
	e.profile = p
	if disk := e.cache.diskTier(); disk != nil {
		if (store.Ops{S: disk, Span: sp}).PutProfile(string(e.hash), p) == nil {
			e.cache.diskProfileWrites.Add(1)
		}
	}
	return p, false, nil
}

// Summary returns the scalar metric suite of the graph's giant connected
// component (the paper's convention), computing and caching it per
// (spectral, sources, seed) configuration. The second result reports
// whether the summary was served from cache.
func (e *Entry) Summary(spectral bool, sources int, seed int64) (metrics.Summary, bool, error) {
	key := summaryKey{spectral, sources, seed}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.summaries[key]; ok {
		return s, true, nil
	}
	if e.gcc == nil {
		gcc, _ := graph.GiantComponent(e.g)
		e.gcc = gcc.Static()
	}
	s, err := metrics.Summarize(e.gcc, metrics.SummaryOptions{
		Spectral:        spectral,
		DistanceSources: sources,
		Rng:             rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return metrics.Summary{}, false, err
	}
	if e.summaries == nil {
		e.summaries = make(map[summaryKey]metrics.Summary)
	}
	e.summaries[key] = s
	return s, false, nil
}

// CacheStats counts cache traffic. Hits and Misses count Intern calls
// that found (respectively created) an entry; Extractions counts actual
// dk.Extract runs, which a repeated request for an already-profiled
// topology must not increase. The Disk* counters instrument the
// persistent tier: DiskHits counts artifacts (graphs or profiles) served
// from disk instead of being reparsed or recomputed, DiskMisses counts
// disk probes that found nothing, and the write counters count
// write-through traffic. The type itself is wire vocabulary (pkg/dkapi).
type CacheStats = dkapi.CacheStats

// Cache is the content-addressed graph/profile cache behind the service:
// an LRU-bounded map from CanonicalHash to Entry, optionally backed by a
// persistent disk tier (internal/store). Interning the same topology
// twice returns the same Entry, so its extracted profiles and computed
// metric summaries are shared across requests and the Brandes/census
// recomputation is skipped. With a disk tier, interned graphs and
// extracted profiles are written through, LRU eviction only sheds the
// memory copy, and both Get and Profile fall back to disk — the cache
// survives restarts.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used; values are *Entry
	byHash  map[Hash]*list.Element
	stats   CacheStats
	extract int64 // lifetime dk.Extract count (instrumentation)

	disk              *store.Store // nil = memory-only
	diskHits          atomic.Int64
	diskMisses        atomic.Int64
	diskGraphWrites   atomic.Int64
	diskProfileWrites atomic.Int64
}

// NewCache returns a memory-only cache bounded to max entries (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{max: max, ll: list.New(), byHash: make(map[Hash]*list.Element)}
}

// detachedCache backs standalone entries: memoization without LRU
// registration or disk write-through.
var detachedCache = NewCache(1)

// NewDetachedEntry wraps a graph in a standalone cache entry: its
// profile and summaries memoize on the entry itself, but nothing is
// registered in any LRU or written to disk. This is how generated
// replicas are handled on every execution path — registering an
// ensemble would evict the topologies a pipeline's later steps still
// reference by hash. The graph is canonicalized first, like every
// cached graph, so a later dK-randomization of a replica is a pure
// function of (edge set, seed) and streamed edge lists are identical
// across local and remote execution.
func NewDetachedEntry(g *graph.CSR) *Entry {
	if !g.EdgesCanonicallyOrdered() {
		g = g.CanonicalClone()
	}
	return &Entry{hash: CanonicalHash(g, nil), cache: detachedCache, g: g}
}

// NewTieredCache returns a cache of max memory entries backed by the
// given persistent store.
func NewTieredCache(max int, disk *store.Store) *Cache {
	c := NewCache(max)
	c.disk = disk
	return c
}

// diskTier returns the persistent tier, or nil for a memory-only cache.
// The field is immutable after construction, so no lock is needed.
func (c *Cache) diskTier() *store.Store { return c.disk }

// Intern returns the cache entry for g, creating it if the topology has
// not been seen (or was evicted from memory). The boolean reports whether
// the entry already existed. labels is the dense-id→label mapping from
// parsing; nil means dense ids are the labels. New graphs are written
// through to the disk tier outside the cache lock.
//
// Cached graphs are always in canonical edge order: index-addressed
// edge draws (the randomize rewiring loop) must be a pure function of
// (edge set, seed), not of whether the graph arrived via text parse,
// binary decode, or dataset synthesis — otherwise the same generate
// request would yield different replicas before and after a restart.
// Binary-decoded graphs are already canonical; others are normalized
// through a clone, which also keeps shared dataset-memo graphs
// untouched.
func (c *Cache) Intern(g *graph.CSR, labels []int) (*Entry, bool) {
	if !g.EdgesCanonicallyOrdered() {
		g = g.CanonicalClone()
	}
	h := CanonicalHash(g, labels)
	e, existed := c.intern(h, g, true)
	if !existed && c.disk != nil {
		// Write-through is idempotent: the artifact is content-addressed,
		// so re-interning after a memory eviction finds it already on
		// disk and PutGraph skips the write.
		if !c.disk.HasGraph(string(h)) && c.disk.PutGraph(string(h), g, labels) == nil {
			c.diskGraphWrites.Add(1)
		}
	}
	return e, existed
}

// intern is the memory-tier insert. count selects whether the hit/miss
// counters move (Intern counts; disk promotions do not double-count).
// The dense-id→label table is not retained: the hash already encodes it,
// and the disk artifact is the durable copy.
func (c *Cache) intern(h Hash, g *graph.CSR, count bool) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[h]; ok {
		c.ll.MoveToFront(el)
		if count {
			c.stats.Hits++
		}
		return el.Value.(*Entry), true
	}
	if count {
		c.stats.Misses++
	}
	e := &Entry{hash: h, cache: c, g: g}
	c.byHash[h] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byHash, oldest.Value.(*Entry).hash)
		c.stats.Evictions++
	}
	return e, false
}

// Get returns the entry for a previously interned hash. On a memory miss
// it falls back to the disk tier, promoting a stored graph back into the
// LRU — so references by hash keep resolving across restarts and
// evictions. Returns nil if the hash is unknown to both tiers.
func (c *Cache) Get(h Hash) *Entry {
	c.mu.Lock()
	if el, ok := c.byHash[h]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return el.Value.(*Entry)
	}
	c.mu.Unlock()
	if c.disk == nil {
		return nil
	}
	g, _, err := c.disk.GetGraph(string(h), graph.ReadLimits{})
	if err != nil {
		c.diskMisses.Add(1)
		return nil
	}
	c.diskHits.Add(1)
	e, _ := c.intern(h, g, false)
	return e
}

// noteExtraction records one dk.Extract run for Stats.
func (c *Cache) noteExtraction() {
	c.mu.Lock()
	c.extract++
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.MaxEntries = c.max
	s.Extractions = c.extract
	c.mu.Unlock()
	s.DiskTier = c.disk != nil
	s.DiskHits = c.diskHits.Load()
	s.DiskMisses = c.diskMisses.Load()
	s.DiskGraphWrites = c.diskGraphWrites.Load()
	s.DiskProfileWrites = c.diskProfileWrites.Load()
	return s
}
