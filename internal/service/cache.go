package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"sort"
	"strconv"
	"sync"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Hash is a content address of a graph: "sha256:" plus the hex digest of
// its canonical edge list (see CanonicalHash). Two uploads with the same
// edge set — regardless of line order, comments, whitespace, or the order
// node labels first appear — map to the same Hash.
type Hash string

// CanonicalHash computes the content address of a parsed graph. The
// canonical form is the list of label pairs "a b" with a <= b, sorted
// lexicographically by (a, b), one per line. labels maps the graph's dense
// node ids back to the labels of the original input; pass nil to use the
// dense ids themselves.
func CanonicalHash(g *graph.Graph, labels []int) Hash {
	type pair struct{ a, b int }
	pairs := make([]pair, 0, g.M())
	for _, e := range g.Edges() {
		a, b := e.U, e.V
		if labels != nil {
			a, b = labels[a], labels[b]
		}
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, pair{a, b})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	h := sha256.New()
	var buf [32]byte
	for _, p := range pairs {
		line := buf[:0]
		line = strconv.AppendInt(line, int64(p.a), 10)
		line = append(line, ' ')
		line = strconv.AppendInt(line, int64(p.b), 10)
		line = append(line, '\n')
		h.Write(line)
	}
	return Hash("sha256:" + hex.EncodeToString(h.Sum(nil)))
}

// summaryKey identifies one metric-summary configuration of a cached
// graph, so summaries with different options coexist in the same entry.
type summaryKey struct {
	spectral bool
	sources  int
	seed     int64
}

// Entry is one cached graph with its lazily computed derivatives. All
// methods are safe for concurrent use; expensive computations run under a
// per-entry lock so concurrent requests for the same topology do not
// duplicate work (single-flight per entry).
type Entry struct {
	hash Hash

	mu        sync.Mutex
	g         *graph.Graph
	static    *graph.Static
	gcc       *graph.Static
	profile   *dk.Profile // deepest extraction so far
	summaries map[summaryKey]metrics.Summary
}

// Hash returns the entry's content address.
func (e *Entry) Hash() Hash { return e.hash }

// Graph returns the parsed graph. Callers must treat it as read-only:
// every rewiring entry point in internal/generate works on a copy, so
// passing it straight to Randomize or TargetRewire is safe.
func (e *Entry) Graph() *graph.Graph { return e.g }

// Size returns the graph's node and edge counts.
func (e *Entry) Size() (n, m int) { return e.g.N(), e.g.M() }

// Static returns the CSR form of the graph, built once and reused.
func (e *Entry) Static() *graph.Static {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.static == nil {
		e.static = e.g.Static()
	}
	return e.static
}

// Profile returns the dK-profile of the graph at depth d, extracting it
// on first use. Deeper extractions subsume shallower ones via the
// inclusion property, so the entry stores only the deepest profile seen
// and answers shallower requests with Restrict. The second result reports
// whether the profile was already available at depth >= d (a cache hit
// for instrumentation purposes).
func (e *Entry) Profile(d int) (*dk.Profile, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.profile != nil && e.profile.D >= d {
		if e.profile.D == d {
			return e.profile, true, nil
		}
		p, err := e.profile.Restrict(d)
		return p, true, err
	}
	p, err := dk.ExtractGraph(e.g, d)
	if err != nil {
		return nil, false, err
	}
	e.profile = p
	return p, false, nil
}

// Summary returns the scalar metric suite of the graph's giant connected
// component (the paper's convention), computing and caching it per
// (spectral, sources, seed) configuration. The second result reports
// whether the summary was served from cache.
func (e *Entry) Summary(spectral bool, sources int, seed int64) (metrics.Summary, bool, error) {
	key := summaryKey{spectral, sources, seed}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.summaries[key]; ok {
		return s, true, nil
	}
	if e.gcc == nil {
		gcc, _ := graph.GiantComponent(e.g)
		e.gcc = gcc.Static()
	}
	s, err := metrics.Summarize(e.gcc, metrics.SummaryOptions{
		Spectral:        spectral,
		DistanceSources: sources,
		Rng:             rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return metrics.Summary{}, false, err
	}
	if e.summaries == nil {
		e.summaries = make(map[summaryKey]metrics.Summary)
	}
	e.summaries[key] = s
	return s, false, nil
}

// CacheStats counts cache traffic. Hits and Misses count Intern calls
// that found (respectively created) an entry; Lookups counts Get calls
// for an existing hash; Extractions counts actual dk.Extract runs, which
// a repeated request for an already-profiled topology must not increase.
type CacheStats struct {
	Entries     int   `json:"entries"`
	MaxEntries  int   `json:"max_entries"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Extractions int64 `json:"extractions"`
}

// Cache is the content-addressed graph/profile cache behind the service:
// an LRU-bounded map from CanonicalHash to Entry. Interning the same
// topology twice returns the same Entry, so its extracted profiles and
// computed metric summaries are shared across requests and the
// Brandes/census recomputation is skipped.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used; values are *Entry
	byHash  map[Hash]*list.Element
	stats   CacheStats
	extract int64 // lifetime dk.Extract count (instrumentation)
}

// NewCache returns a cache bounded to max entries (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{max: max, ll: list.New(), byHash: make(map[Hash]*list.Element)}
}

// Intern returns the cache entry for g, creating it if the topology has
// not been seen (or was evicted). The boolean reports whether the entry
// already existed. labels is the dense-id→label mapping from parsing; nil
// means dense ids are the labels.
func (c *Cache) Intern(g *graph.Graph, labels []int) (*Entry, bool) {
	h := CanonicalHash(g, labels)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[h]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*Entry), true
	}
	c.stats.Misses++
	e := &Entry{hash: h, g: g}
	c.byHash[h] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byHash, oldest.Value.(*Entry).hash)
		c.stats.Evictions++
	}
	return e, false
}

// Get returns the entry for a previously interned hash, or nil if the
// hash is unknown or has been evicted.
func (c *Cache) Get(h Hash) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byHash[h]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*Entry)
	}
	return nil
}

// noteExtraction records one dk.Extract run for Stats.
func (c *Cache) noteExtraction() {
	c.mu.Lock()
	c.extract++
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.MaxEntries = c.max
	s.Extractions = c.extract
	return s
}
