package service

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/pkg/dkapi"
)

// rateLimiterMaxClients bounds the per-client bucket table. Client keys
// are caller-controlled (header or remote address), so without a bound
// the table would be an unbounded memory leak; fully-refilled buckets
// carry no state and are reclaimed first.
const rateLimiterMaxClients = 4096

// bucket is one client's token bucket: tokens at the last refill
// instant. The current balance is always derived from (tokens, last,
// rate) on access, so idle buckets need no background goroutine.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token-bucket limiter: every client key
// accrues rate tokens per second up to burst, and each request spends
// one. It exists because a load surface without admission control lets
// any single client convert the whole worker budget into its own queue
// — the first thing a real load harness exposes.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	clients map[string]*bucket
	allowed int64
	limited int64
}

// newRateLimiter builds a limiter granting rate tokens/second with the
// given burst capacity (minimum 1). A nil limiter (rate <= 0 at the
// call site) disables limiting entirely.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		clients: make(map[string]*bucket),
	}
}

// Allow spends one token of key's bucket. When the bucket is empty it
// reports false and how long until the next token accrues — the
// Retry-After the 429 response carries.
func (rl *rateLimiter) Allow(key string) (bool, time.Duration) {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.clients[key]
	if b == nil {
		rl.evictLocked(now)
		b = &bucket{tokens: rl.burst, last: now}
		rl.clients[key] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		rl.allowed++
		return true, 0
	}
	rl.limited++
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait
}

// evictLocked reclaims bucket slots when the table is full: first every
// fully-refilled bucket (an idle client indistinguishable from a new
// one), then — if every client is hot — the stalest bucket, so a new
// client is never denied tracking.
func (rl *rateLimiter) evictLocked(now time.Time) {
	if len(rl.clients) < rateLimiterMaxClients {
		return
	}
	var (
		oldestKey string
		oldest    time.Time
	)
	for k, b := range rl.clients {
		if math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate) >= rl.burst {
			delete(rl.clients, k)
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	if len(rl.clients) >= rateLimiterMaxClients && oldestKey != "" {
		delete(rl.clients, oldestKey)
	}
}

// Stats snapshots the limiter for GET /v1/stats and /metrics.
func (rl *rateLimiter) Stats() dkapi.RateLimitStats {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return dkapi.RateLimitStats{
		RatePerSec: rl.rate,
		Burst:      int(rl.burst),
		Clients:    len(rl.clients),
		Allowed:    rl.allowed,
		Limited:    rl.limited,
	}
}

// clientKey identifies the caller for rate limiting: the self-declared
// X-Client-Id header when present (what pkg/dkclient sends), else the
// remote IP. Header keys are namespaced apart from address keys so a
// client cannot collide with (and drain) an address bucket.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return "id:" + id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// retryAfterSeconds renders a wait as a Retry-After header value:
// integral seconds, rounded up, minimum 1 — a client told "0" would
// retry immediately and be limited again.
func retryAfterSeconds(wait time.Duration) string {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
