package service

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func mustParse(t *testing.T, s string) (*graph.CSR, []int) {
	t.Helper()
	g, labels, err := graph.ReadEdgeList(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return g.CSR(), labels
}

func TestCanonicalHashInvariance(t *testing.T) {
	// The same edge set in different byte forms: line order, pair
	// orientation, whitespace, comments.
	forms := []string{
		"0 1\n1 2\n0 2\n2 3\n",
		"2 3\n0 2\n1 2\n0 1\n",
		"3 2\n2 0\n2 1\n1 0\n",
		"# c\n0   1\n\n1 2\n0 2\n2 3\n",
	}
	var h0 Hash
	for i, f := range forms {
		g, labels := mustParse(t, f)
		h := CanonicalHash(g, labels)
		if i == 0 {
			h0 = h
			continue
		}
		if h != h0 {
			t.Fatalf("form %d hashed to %s, form 0 to %s", i, h, h0)
		}
	}
	// A different graph hashes differently.
	g, labels := mustParse(t, "0 1\n1 2\n0 2\n1 3\n")
	if CanonicalHash(g, labels) == h0 {
		t.Fatal("distinct edge sets collided")
	}
	// Labels matter: the same dense structure under different labels is
	// a different upload.
	g2, labels2 := mustParse(t, "10 11\n11 12\n10 12\n12 13\n")
	if CanonicalHash(g2, labels2) == h0 {
		t.Fatal("relabeled graph should hash differently (labels are content)")
	}
}

func TestCacheInternAndLRU(t *testing.T) {
	c := NewCache(2)
	g1, l1 := mustParse(t, "0 1\n")
	g2, l2 := mustParse(t, "0 1\n1 2\n")
	g3, l3 := mustParse(t, "0 1\n1 2\n2 3\n")

	e1, existed := c.Intern(g1, l1)
	if existed {
		t.Fatal("fresh intern reported existing")
	}
	if e, existed := c.Intern(g1.Clone(), l1); !existed || e != e1 {
		t.Fatal("re-intern of the same content did not return the same entry")
	}
	c.Intern(g2, l2)
	// Touch e1 so g2 is the LRU victim when g3 arrives.
	if c.Get(e1.Hash()) == nil {
		t.Fatal("Get lost e1")
	}
	c.Intern(g3, l3)

	if c.Get(e1.Hash()) == nil {
		t.Fatal("recently used entry evicted")
	}
	if c.Get(CanonicalHash(g2, l2)) != nil {
		t.Fatal("LRU victim still present")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries / 1 eviction", st)
	}
}

func TestEntryProfileDepthReuse(t *testing.T) {
	c := NewCache(4)
	g, l := mustParse(t, "0 1\n1 2\n0 2\n2 3\n")
	e, _ := c.Intern(g, l)

	p2, hit, err := e.Profile(2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first extraction reported as hit")
	}
	if p2.D != 2 {
		t.Fatalf("depth %d, want 2", p2.D)
	}
	// Shallower request: served by restriction, counted as hit.
	p1, hit, err := e.Profile(1)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || p1.D != 1 {
		t.Fatalf("restricted profile: hit=%v d=%d, want true/1", hit, p1.D)
	}
	// Deeper request: re-extracts once, then hits.
	if _, hit, _ := e.Profile(3); hit {
		t.Fatal("deeper profile cannot be a hit")
	}
	if _, hit, _ := e.Profile(3); !hit {
		t.Fatal("repeated depth-3 profile missed")
	}
}

func TestEntrySummaryMemoized(t *testing.T) {
	c := NewCache(4)
	g, l := mustParse(t, "0 1\n1 2\n0 2\n2 3\n")
	e, _ := c.Intern(g, l)

	s1, hit, err := e.Summary(false, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first summary reported as hit")
	}
	s2, hit, err := e.Summary(false, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || s1 != s2 {
		t.Fatalf("repeat summary: hit=%v equal=%v", hit, s1 == s2)
	}
	// A different configuration is a separate computation.
	if _, hit, _ := e.Summary(true, 0, 1); hit {
		t.Fatal("spectral summary served from non-spectral cache slot")
	}
}
