package service

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// waitJob blocks until the job is terminal (with a test deadline).
func waitJob(t *testing.T, j *Job) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.View()
}

func TestEngineLifecycle(t *testing.T) {
	e := NewEngine(2, 8, 16)
	defer e.Close()

	j, err := e.Submit("test", func() (any, StreamFunc, error) {
		return map[string]int{"x": 1}, func(w io.Writer) error { return nil }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	view := waitJob(t, j)
	if view.Status != JobDone {
		t.Fatalf("status %s, want done (%s)", view.Status, view.Error)
	}
	if view.Started == nil || view.Finished == nil {
		t.Fatalf("done job missing timestamps: %+v", view)
	}
	if view.ResultURL != "/v1/jobs/"+j.ID()+"/result" {
		t.Fatalf("result_url = %q", view.ResultURL)
	}
	if e.Get(j.ID()) != j {
		t.Fatal("Get lost the job")
	}
}

func TestEngineFailureAndPanic(t *testing.T) {
	e := NewEngine(1, 8, 16)
	defer e.Close()

	boom := errors.New("boom")
	j1, _ := e.Submit("fail", func() (any, StreamFunc, error) { return nil, nil, boom })
	if view := waitJob(t, j1); view.Status != JobFailed || view.Error != "boom" {
		t.Fatalf("got %+v, want failed/boom", view)
	}

	j2, _ := e.Submit("panic", func() (any, StreamFunc, error) { panic("kaboom") })
	view := waitJob(t, j2)
	if view.Status != JobFailed || !strings.Contains(view.Error, "kaboom") {
		t.Fatalf("panicking job: %+v, want failed with panic message", view)
	}

	// The runner survived the panic and still executes work.
	j3, _ := e.Submit("after", func() (any, StreamFunc, error) { return 42, nil, nil })
	if view := waitJob(t, j3); view.Status != JobDone {
		t.Fatalf("runner dead after panic: %+v", view)
	}
	st := e.Stats()
	if st.Completed != 1 || st.Failed != 2 {
		t.Fatalf("stats %+v, want 1 completed / 2 failed", st)
	}
}

func TestEngineQueueBound(t *testing.T) {
	e := NewEngine(1, 2, 16)
	defer e.Close()

	release := make(chan struct{})
	block := func() (any, StreamFunc, error) {
		<-release
		return nil, nil, nil
	}
	// With one (blocked) runner and a queue of two, at most three
	// submits can be accepted: one running plus two queued. Whether the
	// runner has dequeued the first job yet is a race, so submit until
	// rejected and check the accepted count stayed within the bound.
	var jobs []*Job
	for {
		j, err := e.Submit("block", block)
		if err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("got %v, want ErrQueueFull", err)
			}
			break
		}
		jobs = append(jobs, j)
		if len(jobs) > 3 {
			t.Fatalf("%d jobs accepted against a bound of 1 running + 2 queued", len(jobs))
		}
	}
	if len(jobs) < 2 {
		t.Fatalf("only %d jobs accepted before rejection; queue capacity unused", len(jobs))
	}
	if e.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	close(release)
	for _, j := range jobs {
		waitJob(t, j)
	}
}

func TestEngineMaxRunningBound(t *testing.T) {
	const runners = 3
	e := NewEngine(runners, 64, 64)
	defer e.Close()

	release := make(chan struct{})
	var jobs []*Job
	for i := 0; i < 12; i++ {
		j, err := e.Submit("block", func() (any, StreamFunc, error) {
			<-release
			return nil, nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Wait until all runners report busy, then release.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Running < runners {
		if time.Now().After(deadline) {
			t.Fatalf("runners idle: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for _, j := range jobs {
		waitJob(t, j)
	}
	st := e.Stats()
	if st.MaxRunning > runners {
		t.Fatalf("max running %d exceeded runner pool %d", st.MaxRunning, runners)
	}
	if st.MaxRunning != runners {
		t.Fatalf("max running %d, want the pool saturated at %d", st.MaxRunning, runners)
	}
}

func TestEngineRetention(t *testing.T) {
	e := NewEngine(1, 64, 3)
	defer e.Close()

	var last *Job
	for i := 0; i < 10; i++ {
		j, err := e.Submit("quick", func() (any, StreamFunc, error) { return nil, nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		last = j
	}
	views := e.List()
	if len(views) > 4 { // retain bound is approximate by one in-flight submit
		t.Fatalf("retained %d jobs, want <= 4", len(views))
	}
	if e.Get(last.ID()) == nil {
		t.Fatal("most recent job evicted")
	}
}
