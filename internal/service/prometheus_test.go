package service

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/pkg/dkapi"
)

// exposition is a minimal parse of the Prometheus text format: the TYPE
// of each family and the value of each sample line, keyed by the full
// series name including its label set ("dk_http_requests_total{route=\"...\"}").
type exposition struct {
	types   map[string]string
	samples map[string]float64
	order   []string // family names in emission order
}

// parseExposition parses format version 0.0.4 strictly enough to catch
// real mistakes: every sample must belong to a family whose # TYPE line
// already appeared, HELP must precede TYPE, and values must be valid
// floats.
func parseExposition(t *testing.T, body string) *exposition {
	t.Helper()
	exp := &exposition{types: map[string]string{}, samples: map[string]float64{}}
	helped := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE for %s before its HELP", ln+1, name)
			}
			if _, dup := exp.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			exp.types[name] = typ
			exp.order = append(exp.order, name)
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("line %d: no value separator: %q", ln+1, line)
			}
			series, raw := line[:sp], line[sp+1:]
			name := series
			if b := strings.IndexByte(series, '{'); b >= 0 {
				if !strings.HasSuffix(series, "}") {
					t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
				}
				name = series[:b]
			}
			if _, ok := exp.types[name]; !ok {
				// Histogram families emit _bucket/_sum/_count samples
				// under the family's single TYPE line.
				base := name
				for _, suffix := range []string{"_bucket", "_sum", "_count"} {
					if b, ok := strings.CutSuffix(name, suffix); ok {
						base = b
						break
					}
				}
				if exp.types[base] != "histogram" {
					t.Fatalf("line %d: sample %s has no preceding TYPE", ln+1, series)
				}
			}
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, raw, err)
			}
			if _, dup := exp.samples[series]; dup {
				t.Fatalf("line %d: duplicate series %s", ln+1, series)
			}
			exp.samples[series] = v
		}
	}
	return exp
}

// scrape GETs /metrics and parses the body.
func scrape(t *testing.T, base string) *exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d; body: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition format 0.0.4", ct)
	}
	return parseExposition(t, string(body))
}

// TestMetricsExposition drives traffic through the server and checks the
// scrape against /v1/stats: every route, phase, cache, and job counter
// must appear as a well-formed family with the right type and value.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Traffic: one extract (route + cache counters), one pipeline with a
	// generate step (phase + job counters), one 404 (error counter).
	var er ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", pawEdges, http.StatusOK, &er)
	var acc dkapi.JobAccepted
	postJSON(t, ts.URL+"/v1/pipelines", "application/json", fmt.Sprintf(`{
		"steps": [
			{"id": "p", "op": "extract", "d": 2, "source": {"hash": %q}},
			{"id": "g", "op": "generate", "d": 2, "source": {"hash": %q}, "replicas": 1, "seed": 7}
		]}`, er.Graph.Hash, er.Graph.Hash), http.StatusAccepted, &acc)
	pollJob(t, ts.URL, acc.JobID)
	if resp, err := http.Get(ts.URL + "/v1/jobs/no-such-job"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("probe 404 got %d", resp.StatusCode)
		}
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	exp := scrape(t, ts.URL)

	// Fixed families, with the type the semantics demand.
	wantTypes := map[string]string{
		"dk_build_info":              "gauge",
		"dk_uptime_seconds":          "gauge",
		"dk_workers":                 "gauge",
		"dk_http_requests_total":     "counter",
		"dk_cache_hits_total":        "counter",
		"dk_cache_entries":           "gauge",
		"dk_jobs_completed_total":    "counter",
		"dk_jobs_queued":             "gauge",
		"dk_pipeline_phase_ms_total": "counter",
	}
	for name, typ := range wantTypes {
		if got := exp.types[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}

	// Every route in /v1/stats appears, with matching counts. Both
	// snapshots count a request only after its handler returns, so the
	// stats call itself and the scrape are each invisible to their own
	// snapshot: those two routes may legitimately read one apart.
	for route, rs := range stats.Routes {
		series := fmt.Sprintf("dk_http_requests_total{route=%q}", route)
		got, ok := exp.samples[series]
		if !ok {
			t.Errorf("route %q missing from dk_http_requests_total", route)
			continue
		}
		want := float64(rs.Count)
		selfCounting := route == "GET /metrics" || route == "GET /v1/stats"
		if got != want && !(selfCounting && got == want+1) {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
		eSeries := fmt.Sprintf("dk_http_request_errors_total{route=%q}", route)
		if ev := exp.samples[eSeries]; ev != float64(rs.Errors) {
			t.Errorf("%s = %g, want %d", eSeries, ev, rs.Errors)
		}
	}
	if v := exp.samples[`dk_http_request_errors_total{route="GET /v1/jobs/{id}"}`]; v != 1 {
		t.Errorf("job-lookup 404 not counted as route error: got %g", v)
	}

	// Every phase observed by /v1/stats appears in the phase families.
	if len(stats.Phases) == 0 {
		t.Fatal("no phases in /v1/stats after a pipeline run")
	}
	for phase, ps := range stats.Phases {
		series := fmt.Sprintf("dk_pipeline_phase_runs_total{phase=%q}", phase)
		if got := exp.samples[series]; got != float64(ps.Count) {
			t.Errorf("%s = %g, want %d", series, got, ps.Count)
		}
	}

	// Cache and job counters line up with the stats snapshot.
	for series, want := range map[string]float64{
		"dk_cache_hits_total":        float64(stats.Cache.Hits),
		"dk_cache_misses_total":      float64(stats.Cache.Misses),
		"dk_cache_extractions_total": float64(stats.Cache.Extractions),
		"dk_jobs_completed_total":    float64(stats.Jobs.Completed),
		"dk_jobs_failed_total":       float64(stats.Jobs.Failed),
		"dk_jobs_rejected_total":     float64(stats.Jobs.Rejected),
	} {
		if got := exp.samples[series]; got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	for _, class := range []string{"interactive", "batch"} {
		if _, ok := exp.samples[fmt.Sprintf("dk_jobs_queued{class=%q}", class)]; !ok {
			t.Errorf("dk_jobs_queued missing class %q", class)
		}
	}
	if _, ok := exp.samples[fmt.Sprintf("dk_build_info{go_version=%q,version=%q}", runtime.Version(), version)]; !ok {
		t.Error("dk_build_info missing the go_version/version labels")
	}
	if stats.GoVersion != runtime.Version() {
		t.Errorf("stats go_version %q, want %q", stats.GoVersion, runtime.Version())
	}

	// No limiter, no store: those families must be absent entirely.
	for _, name := range []string{"dk_ratelimit_allowed_total", "dk_store_graphs"} {
		if _, ok := exp.types[name]; ok {
			t.Errorf("family %s present without its subsystem configured", name)
		}
	}
}

// TestMetricsHistograms checks the two latency histogram families:
// every label's bucket series must be monotonically non-decreasing in
// le, the +Inf bucket must equal _count, and _sum must be consistent
// with having observed _count values.
func TestMetricsHistograms(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", pawEdges, http.StatusOK, nil)
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", pawEdges, http.StatusOK, nil)
	exp := scrape(t, ts.URL)

	for _, fam := range []struct{ name, label, series string }{
		{"dk_http_request_seconds", "route", "POST /v1/extract"},
		{"dk_pipeline_phase_seconds", "phase", "extract.extract"},
	} {
		if got := exp.types[fam.name]; got != "histogram" {
			t.Fatalf("family %s: type %q, want histogram", fam.name, got)
		}
		count, ok := exp.samples[fmt.Sprintf("%s_count{%s=%q}", fam.name, fam.label, fam.series)]
		if !ok || count < 1 {
			t.Fatalf("%s: no observations for %s", fam.name, fam.series)
		}
		// Walk the bounds in ascending order: cumulative counts must
		// never decrease, and the +Inf bucket must equal _count.
		prev := -1.0
		for _, b := range latencyBuckets {
			series := fmt.Sprintf("%s_bucket{%s=%q,le=%q}",
				fam.name, fam.label, fam.series, strconv.FormatFloat(b, 'g', -1, 64))
			v, ok := exp.samples[series]
			if !ok {
				t.Fatalf("%s: missing bucket %s", fam.name, series)
			}
			if v < prev {
				t.Errorf("%s: bucket series not monotonic at %s (%g < %g)", fam.name, series, v, prev)
			}
			prev = v
		}
		inf, ok := exp.samples[fmt.Sprintf(`%s_bucket{%s=%q,le="+Inf"}`, fam.name, fam.label, fam.series)]
		if !ok {
			t.Fatalf("%s: no +Inf bucket for %s", fam.name, fam.series)
		}
		if inf != count || inf < prev {
			t.Errorf("%s: +Inf bucket %g (count %g, last finite %g)", fam.name, inf, count, prev)
		}
		sum := exp.samples[fmt.Sprintf("%s_sum{%s=%q}", fam.name, fam.label, fam.series)]
		if sum < 0 {
			t.Errorf("%s: negative sum %g", fam.name, sum)
		}
	}
}

// TestMetricsMonotonic scrapes twice around more traffic: counters never
// go backwards, and the family set stays stable.
func TestMetricsMonotonic(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/extract?d=1", "text/plain", pawEdges, http.StatusOK, nil)
	first := scrape(t, ts.URL)
	postJSON(t, ts.URL+"/v1/extract?d=1", "text/plain", pawEdges, http.StatusOK, nil)
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", pawEdges, http.StatusOK, nil)
	second := scrape(t, ts.URL)

	for series, v1 := range first.samples {
		name := series
		if b := strings.IndexByte(series, '{'); b >= 0 {
			name = series[:b]
		}
		if first.types[name] != "counter" {
			continue
		}
		v2, ok := second.samples[series]
		if !ok {
			t.Errorf("counter series %s vanished between scrapes", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s went backwards: %g -> %g", series, v1, v2)
		}
	}
	extracts := `dk_http_requests_total{route="POST /v1/extract"}`
	if second.samples[extracts] != first.samples[extracts]+2 {
		t.Errorf("extract count %g -> %g, want +2", first.samples[extracts], second.samples[extracts])
	}
}
