package service

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/pkg/dkapi"
)

// TestEnginePriority: with the single runner wedged and a batch job
// already queued, a later interactive submission still runs first —
// the runner drains the interactive queue before taking batch work.
func TestEnginePriority(t *testing.T) {
	e := NewEngine(1, 4, 16)
	defer e.Close()

	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	record := func(name string) TrackedJobFunc {
		return func(func(any)) (any, StreamFunc, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil, nil
		}
	}

	blocker, err := e.Submit("block", func() (any, StreamFunc, error) {
		<-release
		return nil, nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The runner may not have dequeued the blocker yet; wait until it is
	// actually running so the queued order below is unambiguous.
	waitRunning(t, e, blocker.ID())

	b1, _ := e.SubmitClass("batch-1", ClassBatch, nil, record("b1"))
	b2, _ := e.SubmitClass("batch-2", ClassBatch, nil, record("b2"))
	i1, _ := e.SubmitClass("interactive-1", ClassInteractive, nil, record("i1"))
	if b1 == nil || b2 == nil || i1 == nil {
		t.Fatal("submissions rejected with queue capacity to spare")
	}
	if got := e.Stats(); got.QueuedInteractive != 1 || got.QueuedBatch != 2 {
		t.Fatalf("queue split %+v, want 1 interactive / 2 batch", got)
	}
	if v := i1.View(); v.Class != ClassInteractive {
		t.Fatalf("interactive job reports class %q", v.Class)
	}
	if v := b1.View(); v.Class != ClassBatch {
		t.Fatalf("batch job reports class %q", v.Class)
	}

	close(release)
	for _, j := range []*Job{blocker, b1, b2, i1} {
		waitJob(t, j)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "i1" {
		t.Fatalf("execution order %v, want the interactive job first", order)
	}
}

// waitRunning polls until the job leaves the queued state.
func waitRunning(t *testing.T, e *Engine, id string) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if v := e.Get(id).View(); v.Status == JobRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// TestPipelineClassOverWire: a read-only pipeline is classified
// interactive and says so in its job view; one with a generate step is
// batch. The classification is what keeps profile reads from queueing
// behind ensemble sweeps.
func TestPipelineClassOverWire(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var er ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=2", "text/plain", pawEdges, http.StatusOK, &er)

	submit := func(body string) JobView {
		var acc dkapi.JobAccepted
		postJSON(t, ts.URL+"/v1/pipelines", "application/json", body, http.StatusAccepted, &acc)
		return pollJob(t, ts.URL, acc.JobID)
	}

	readOnly := submit(fmt.Sprintf(`{"steps": [
		{"id": "p", "op": "extract", "d": 2, "source": {"hash": %q}},
		{"id": "c", "op": "census", "source": {"hash": %q}}
	]}`, er.Graph.Hash, er.Graph.Hash))
	if readOnly.Status != JobDone {
		t.Fatalf("read-only pipeline failed: %s", readOnly.Error)
	}
	if readOnly.Class != ClassInteractive {
		t.Fatalf("read-only pipeline class %q, want interactive", readOnly.Class)
	}

	generating := submit(fmt.Sprintf(`{"steps": [
		{"id": "g", "op": "generate", "d": 2, "source": {"hash": %q}, "replicas": 1, "seed": 3}
	]}`, er.Graph.Hash))
	if generating.Status != JobDone {
		t.Fatalf("generating pipeline failed: %s", generating.Error)
	}
	if generating.Class != ClassBatch {
		t.Fatalf("generating pipeline class %q, want batch", generating.Class)
	}
}
