package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/pkg/dkapi"
)

// smokePipelineJSON is the paper's extract→generate→compare workflow as
// one request body.
const smokePipelineJSON = `{
  "steps": [
    {"id": "ext", "op": "extract", "source": {"dataset": "hot", "seed": 7}, "d": 2},
    {"id": "gen", "op": "generate", "source": {"step": "ext"}, "d": 2, "replicas": 2, "seed": 42, "compare": true},
    {"id": "cmp", "op": "compare", "a": {"step": "ext"}, "b": {"step": "gen", "replica": 1}, "d": 2}
  ]
}`

// decodeResult re-decodes a job view's result into the typed pipeline
// result (the view carries it as `any`).
func decodePipelineResult(t *testing.T, view JobView) dkapi.PipelineResult {
	t.Helper()
	raw, err := json.Marshal(view.Result)
	if err != nil {
		t.Fatal(err)
	}
	var out dkapi.PipelineResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode pipeline result: %v; raw: %s", err, raw)
	}
	return out
}

// TestPipelineEndToEnd: one POST /v1/pipelines request runs the whole
// workflow; the finished job carries per-step results, per-step
// progress, and a streamable ensemble.
func TestPipelineEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var acc dkapi.JobAccepted
	postJSON(t, ts.URL+"/v1/pipelines", "application/json", smokePipelineJSON, http.StatusAccepted, &acc)
	view := pollJob(t, ts.URL, acc.JobID)
	if view.Status != JobDone {
		t.Fatalf("pipeline job ended %s: %s", view.Status, view.Error)
	}
	if view.Kind != "pipeline" {
		t.Fatalf("job kind %q, want pipeline", view.Kind)
	}

	result := decodePipelineResult(t, view)
	if len(result.Steps) != 3 {
		t.Fatalf("got %d step results, want 3", len(result.Steps))
	}
	ext, gen, cmp := result.Steps[0], result.Steps[1], result.Steps[2]
	if ext.Profile == nil || ext.Profile.D != 2 {
		t.Fatalf("extract step carries no d=2 profile: %+v", ext)
	}
	if len(gen.Replicas) != 2 {
		t.Fatalf("generate step has %d replicas, want 2", len(gen.Replicas))
	}
	for _, r := range gen.Replicas {
		if r.Distance == nil || *r.Distance != 0 {
			t.Fatalf("2K-randomize replica distance = %v, want exactly 0", r.Distance)
		}
	}
	if cmp.A == nil || cmp.B == nil || len(cmp.Distances) != 3 {
		t.Fatalf("compare step incomplete: %+v", cmp)
	}
	// The compared replica has the source's 2K distribution exactly.
	for _, de := range cmp.Distances {
		if de.Value != 0 {
			t.Fatalf("D%d = %g, want 0 (dK-randomized replica)", de.D, de.Value)
		}
	}

	// Progress: every step reported done.
	progRaw, _ := json.Marshal(view.Progress)
	var prog []dkapi.StepStatus
	if err := json.Unmarshal(progRaw, &prog); err != nil {
		t.Fatalf("decode progress: %v; raw: %s", err, progRaw)
	}
	if len(prog) != 3 {
		t.Fatalf("progress has %d steps, want 3", len(prog))
	}
	for _, st := range prog {
		if st.Status != dkapi.StepDone {
			t.Fatalf("step %s progress %s, want done", st.ID, st.Status)
		}
	}

	// Bulk result: one marker per generated replica.
	resp, err := http.Get(ts.URL + view.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for i := 0; i < 2; i++ {
		marker := fmt.Sprintf("# step gen replica %d", i)
		if !strings.Contains(body, marker) {
			t.Fatalf("bulk result missing %q:\n%s", marker, body)
		}
	}
}

// TestPipelineFailureMarksSteps: a step that fails deterministically
// (matching deadlocks on the paw graph with this seed) fails the job,
// and the final progress shows failed + skipped statuses.
func TestPipelineFailureMarksSteps(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{
	  "steps": [
	    {"id": "gen", "op": "generate", "source": {"dataset": "paw"}, "d": 1, "method": "matching", "seed": 5},
	    {"id": "met", "op": "metrics", "source": {"step": "gen"}}
	  ]
	}`
	var acc dkapi.JobAccepted
	postJSON(t, ts.URL+"/v1/pipelines", "application/json", body, http.StatusAccepted, &acc)
	view := pollJob(t, ts.URL, acc.JobID)
	if view.Status != JobFailed {
		t.Fatalf("job status %s, want failed", view.Status)
	}
	if !strings.Contains(view.Error, "step gen") {
		t.Fatalf("job error %q does not name the failing step", view.Error)
	}
	progRaw, _ := json.Marshal(view.Progress)
	var prog []dkapi.StepStatus
	if err := json.Unmarshal(progRaw, &prog); err != nil {
		t.Fatal(err)
	}
	if prog[0].Status != dkapi.StepFailed || prog[0].Error == "" {
		t.Fatalf("failing step progress %+v, want failed with error", prog[0])
	}
	if prog[1].Status != dkapi.StepSkipped {
		t.Fatalf("downstream step progress %+v, want skipped", prog[1])
	}
}

// TestPipelineValidationRejected: structural errors are synchronous 400s
// — nothing is enqueued.
func TestPipelineValidationRejected(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	cases := []string{
		`{"steps": []}`,
		`{"steps": [{"id": "a", "op": "extract", "source": {"dataset": "paw"}}, {"id": "a", "op": "census", "source": {"dataset": "paw"}}]}`,
		`{"steps": [{"id": "x", "op": "generate", "source": {"step": "later"}}]}`,
		`{"steps": [{"id": "x", "op": "generate", "source": {"dataset": "paw"}, "replicas": 4}, {"id": "y", "op": "metrics", "source": {"step": "x", "replica": 9}}]}`,
		`{"steps": [{"id": "x", "op": "compare", "source": {"dataset": "paw"}}]}`,
		`{"steps": [{"id": "x", "op": "generate", "source": {"dataset": "paw"}, "d": 3, "method": "matching"}]}`,
	}
	for i, body := range cases {
		var envelope ErrorResponse
		postJSON(t, ts.URL+"/v1/pipelines", "application/json", body, http.StatusBadRequest, &envelope)
		if envelope.Code != CodeBadRequest {
			t.Fatalf("case %d: code %q, want bad_request", i, envelope.Code)
		}
	}
	if got := srv.JobStats().Completed + srv.JobStats().Failed + int64(srv.JobStats().Queued); got != 0 {
		t.Fatalf("invalid pipelines touched the job engine (%d jobs)", got)
	}
}

// TestPipelineSpecNormalization: the journaled spec references graphs by
// hash, never by inline edges, so it stays small and restart-resolvable.
func TestPipelineSpecNormalization(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	body := `{"steps": [{"id": "m", "op": "metrics", "source": {"edges": "0 1\n1 2\n2 0\n"}}]}`
	var acc dkapi.JobAccepted
	postJSON(t, ts.URL+"/v1/pipelines", "application/json", body, http.StatusAccepted, &acc)
	view := pollJob(t, ts.URL, acc.JobID)
	if view.Status != JobDone {
		t.Fatalf("job ended %s: %s", view.Status, view.Error)
	}
	job := srv.jobs.Get(acc.JobID)
	if job == nil {
		t.Fatal("job vanished")
	}
	var spec dkapi.PipelineRequest
	if err := json.Unmarshal(job.spec, &spec); err != nil {
		t.Fatal(err)
	}
	src := spec.Steps[0].Source
	if src.Edges != "" || !strings.HasPrefix(src.Hash, "sha256:") {
		t.Fatalf("journaled spec not normalized to a hash ref: %+v", src)
	}
}

// TestPipelineRecovery: an incomplete journaled pipeline job is re-run
// under its original id on the next startup.
func TestPipelineRecovery(t *testing.T) {
	st1, dir := openTestStore(t)
	spec := []byte(`{"steps": [{"id": "m", "op": "metrics", "source": {"dataset": "paw"}}]}`)
	if err := st1.Journal().Record(store.JobRecord{ID: "j000005", Status: store.JobQueued, Kind: "pipeline", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	srv, ts := newTestServer(t, Options{Store: st2})
	if got := srv.JobStats().Recovered; got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
	view := pollJob(t, ts.URL, "j000005")
	if view.Status != JobDone {
		t.Fatalf("recovered pipeline ended %s: %s", view.Status, view.Error)
	}
	result := decodePipelineResult(t, view)
	if len(result.Steps) != 1 || result.Steps[0].Summary == nil {
		t.Fatalf("recovered pipeline result incomplete: %+v", result)
	}
}

// TestGraphLookup: GET /v1/graphs/{hash} resolves interned topologies
// and 404s unknown ones (the SDK's re-upload probe).
func TestGraphLookup(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var ext ExtractResponse
	postJSON(t, ts.URL+"/v1/extract?d=0", "text/plain", "0 1\n1 2\n", http.StatusOK, &ext)
	var info GraphInfo
	getJSON(t, ts.URL+"/v1/graphs/"+ext.Graph.Hash, http.StatusOK, &info)
	if info != ext.Graph {
		t.Fatalf("lookup %+v, want %+v", info, ext.Graph)
	}
}
