package service

import (
	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// svcBackend adapts the server's content-addressed cache to the
// pipeline executor. Every execution surface of the service — the
// standalone /v1/extract, /v1/generate, /v1/compare handlers as well as
// POST /v1/pipelines — runs the shared executor over this backend, so
// profile extraction, replica fan-out, and metric summaries follow one
// code path (and hit one cache).
type svcBackend struct{ s *Server }

// Resolve turns an external graph reference into a handle backed by a
// cache entry. Errors come back pre-classified (apiError), so handler
// code can map them straight to HTTP statuses.
func (b svcBackend) Resolve(ref dkapi.GraphRef) (pipeline.Handle, error) {
	e, err := b.s.resolveRef(ref)
	if err != nil {
		return nil, err
	}
	return svcHandle{e: e, s: b.s}, nil
}

// Intern wraps a generated graph in a detached entry (see
// NewDetachedEntry): replica graphs are addressable inside their
// pipeline via step references and streamed in bulk results; interning
// a 128-replica ensemble into the shared LRU would churn every
// uploaded topology out of it.
func (b svcBackend) Intern(g *graph.CSR) pipeline.Handle {
	return svcHandle{e: NewDetachedEntry(g)}
}

// svcHandle is a cache entry viewed through the executor's Handle
// interface. A nil server marks a detached (replica) entry, whose
// extractions are not counted in the cache instrumentation — matching
// the historical behavior where per-replica profile extraction for
// compare never touched the counters. A non-nil tb marks a handle
// minted by the traced backend: operations read its span cursor so
// disk-tier work records spans under the executing phase.
type svcHandle struct {
	e  *Entry
	s  *Server
	tb *tracedBackend
}

// span returns the executor's current phase span (nil when untraced).
func (h svcHandle) span() *trace.Span {
	if h.tb == nil {
		return nil
	}
	return h.tb.cur
}

func (h svcHandle) Graph() *graph.CSR { return h.e.Graph() }

func (h svcHandle) Info() dkapi.GraphInfo { return info(h.e) }

func (h svcHandle) Profile(d int) (*dk.Profile, bool, error) {
	p, hit, err := h.e.ProfileSpan(d, h.span())
	if err == nil && !hit && h.s != nil {
		h.s.cache.noteExtraction()
	}
	return p, hit, err
}

func (h svcHandle) Summary(spectral bool, sample int, seed int64) (metrics.Summary, bool, error) {
	return h.e.Summary(spectral, sample, seed)
}
