package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dk"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// handleExtract implements POST /v1/extract: parse the edge list in the
// request body (or synthesize ?dataset=name), intern it in the cache,
// and return its dK-profile at depth ?d (default 3). ?metrics=1 adds the
// scalar metric summary of the giant component; ?spectral=1 and
// ?sample=N tune it. The response's "cached" field reports whether the
// profile was served without recomputation.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	d, err := queryInt(r, "d", 3)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if d < 0 || d > 3 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "depth d=%d outside 0..3", d)
		return
	}
	seed, err := queryInt64(r, "seed", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sample, err := queryInt(r, "sample", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}

	n, err := queryInt(r, "n", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}

	var entry *Entry
	if name := r.URL.Query().Get("dataset"); name != "" {
		g, err := s.datasetGraph(name, seed, n)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		entry, _ = s.cache.Intern(g, nil)
	} else {
		body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		g, labels, err := graph.ReadEdgeListLimit(body, s.readLimits())
		if err != nil {
			writeGraphError(w, err)
			return
		}
		if g.N() == 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"empty edge list; POST a 'u v' per line body or pass ?dataset=")
			return
		}
		entry, _ = s.cache.Intern(g, labels)
	}

	profile, hit, err := entry.Profile(d)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "extract: %v", err)
		return
	}
	if !hit {
		s.cache.noteExtraction()
	}
	resp := ExtractResponse{Graph: info(entry), Cached: hit, Profile: profile}
	if queryBool(r, "metrics") {
		sum, _, err := entry.Summary(queryBool(r, "spectral"), sample, seed)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, "metrics: %v", err)
			return
		}
		resp.Summary = &sum
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseMethod maps the wire method name to a construction method;
// "randomize" (dK-preserving rewiring of the source graph) is flagged
// separately because it needs the graph, not just the profile.
func parseMethod(name string) (m core.Method, randomize bool, err error) {
	switch name {
	case "", "randomize":
		return 0, true, nil
	case "stochastic":
		return core.MethodStochastic, false, nil
	case "pseudograph":
		return core.MethodPseudograph, false, nil
	case "matching":
		return core.MethodMatching, false, nil
	case "targeting":
		return core.MethodTargeting, false, nil
	default:
		return 0, false, fmt.Errorf("unknown method %q (want randomize|stochastic|pseudograph|matching|targeting)", name)
	}
}

// handleGenerate implements POST /v1/generate: resolve the source graph,
// validate the request synchronously, and enqueue an asynchronous job
// that builds the replica ensemble. Responds 202 with the job id, 429
// when the queue is full.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeGraphError(w, err)
		return
	}
	d := 2
	if req.D != nil {
		d = *req.D
	}
	if d < 0 || d > 3 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "depth d=%d outside 0..3", d)
		return
	}
	method, randomize, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	methodName := req.Method
	if methodName == "" {
		methodName = "randomize"
	}
	replicas := req.Replicas
	if replicas == 0 {
		replicas = 1
	}
	if replicas < 1 || replicas > s.opts.MaxReplicas {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"replicas=%d outside 1..%d", replicas, s.opts.MaxReplicas)
		return
	}
	// Reject invalid (depth, method) combinations before paying for
	// resolution or extraction — a doomed d=3 request must not trigger
	// a full census of a large graph first.
	if !randomize && d == 3 && method != core.MethodTargeting {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"d=3 generation from a distribution supports only method=targeting or method=randomize")
		return
	}
	entry, err := s.resolveRef(req.Source)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	seed := req.Seed
	compare := req.Compare
	// Extract the target profile up front when the job will need it
	// (construction from a distribution, or per-replica distances):
	// failures surface synchronously and the cache is warmed for the
	// job body, which re-fetches it as a pure cache hit. Pure
	// randomize-without-compare never reads the profile, so a potentially
	// expensive census must not run in the handler.
	if !randomize || compare {
		_, hit, err := entry.Profile(d)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, "extract: %v", err)
			return
		}
		if !hit {
			s.cache.noteExtraction()
		}
	}
	params := genParams{
		d: d, method: method, methodName: methodName,
		randomize: randomize, compare: compare,
		replicas: replicas, seed: seed,
	}
	// The journaled spec references the source by content hash only: the
	// graph artifact is already written through to the disk tier, so the
	// spec stays small and resolvable after a restart even when the
	// original request carried inline edges.
	spec, _ := json.Marshal(GenerateRequest{
		Source: GraphRef{Hash: string(entry.Hash())}, D: &d, Method: methodName,
		Replicas: replicas, Seed: seed, Compare: compare,
	})
	job, err := s.jobs.SubmitSpec("generate", spec, s.generateJobFunc(entry, params))
	if errors.Is(err, ErrQueueFull) {
		writeError(w, http.StatusTooManyRequests, CodeQueueFull,
			"job queue full (%d queued); retry later", s.opts.JobQueue)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, GenerateAccepted{
		JobID:     job.ID(),
		StatusURL: "/v1/jobs/" + job.ID(),
	})
}

// genParams are the validated parameters of one generate job.
type genParams struct {
	d          int
	method     core.Method
	methodName string
	randomize  bool
	compare    bool
	replicas   int
	seed       int64
}

// generateJobFunc builds the body of a generate job. It is shared by the
// HTTP submission path and journal recovery: everything it needs beyond
// the cache entry is in params, which round-trips through the journaled
// GenerateRequest spec. The target profile is resolved inside the job —
// a warm-cache hit when the handler pre-extracted it, a disk fetch or
// fresh extraction when the job was recovered after a restart.
func (s *Server) generateJobFunc(entry *Entry, p genParams) JobFunc {
	src := entry.Graph()
	return func() (any, StreamFunc, error) {
		var profile *dk.Profile
		if !p.randomize || p.compare {
			prof, hit, err := entry.Profile(p.d)
			if err != nil {
				return nil, nil, err
			}
			if !hit {
				s.cache.noteExtraction()
			}
			profile = prof
		}
		graphs, err := generate.Replicas(p.replicas, p.seed, func(i int, rng *rand.Rand) (*graph.Graph, error) {
			if p.randomize {
				out, _, err := generate.Randomize(src, p.d, generate.RandomizeOptions{Rng: rng})
				return out, err
			}
			return core.Generate(profile, p.d, p.method, core.Options{Rng: rng})
		})
		if err != nil {
			return nil, nil, err
		}
		result := GenerateResult{
			Source:   info(entry),
			D:        p.d,
			Method:   p.methodName,
			Seed:     p.seed,
			Replicas: make([]ReplicaInfo, len(graphs)),
		}
		for i, g := range graphs {
			ri := ReplicaInfo{Index: i, N: g.N(), M: g.M()}
			if p.compare {
				got, err := dk.ExtractGraph(g, p.d)
				if err != nil {
					return nil, nil, err
				}
				dist, err := dk.Distance(profile, got, p.d)
				if err != nil {
					return nil, nil, err
				}
				ri.Distance = &dist
			}
			result.Replicas[i] = ri
		}
		stream := func(w io.Writer) error {
			for i, g := range graphs {
				if _, err := fmt.Fprintf(w, "# replica %d\n", i); err != nil {
					return err
				}
				if err := graph.WriteEdgeList(w, g); err != nil {
					return err
				}
			}
			return nil
		}
		return result, stream, nil
	}
}

// handleCompare implements POST /v1/compare: resolve both graphs, report
// D_d for every depth up to d, and the scalar metric summaries of both
// giant components.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req CompareRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeGraphError(w, err)
		return
	}
	d := 3
	if req.D != nil {
		d = *req.D
	}
	if d < 0 || d > 3 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "depth d=%d outside 0..3", d)
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	ea, err := s.resolveRef(req.A)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	eb, err := s.resolveRef(req.B)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	resp := CompareResponse{A: info(ea), B: info(eb)}
	profiles := make([]*dk.Profile, 2)
	for i, e := range []*Entry{ea, eb} {
		p, hit, err := e.Profile(d)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, "extract: %v", err)
			return
		}
		if !hit {
			s.cache.noteExtraction()
		}
		profiles[i] = p
	}
	pa, pb := profiles[0], profiles[1]
	for dd := 0; dd <= d; dd++ {
		v, err := dk.Distance(pa, pb, dd)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, "distance: %v", err)
			return
		}
		resp.Distances = append(resp.Distances, DistanceEntry{D: dd, Value: v})
	}
	sa, _, err := ea.Summary(req.Spectral, req.Sample, seed)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "metrics: %v", err)
		return
	}
	sb, _, err := eb.Summary(req.Spectral, req.Sample, seed)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "metrics: %v", err)
		return
	}
	resp.SummaryA, resp.SummaryB = sa, sb
	writeJSON(w, http.StatusOK, resp)
}

// handleJobList implements GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

// handleJobGet implements GET /v1/jobs/{id}: the polling endpoint. Done
// jobs carry their result summary and, when bulk output exists, a
// result_url for streaming it.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job := s.jobs.Get(id)
	if job == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

// handleJobResult implements GET /v1/jobs/{id}/result: stream the bulk
// result (concatenated replica edge lists, text/plain) of a done job.
// Returns 409 while the job is still queued or running.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job := s.jobs.Get(id)
	if job == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job %q", id)
		return
	}
	view := job.View()
	switch view.Status {
	case JobQueued, JobRunning:
		writeError(w, http.StatusConflict, CodeConflict,
			"job %s is %s; poll %s until done", id, view.Status, "/v1/jobs/"+id)
		return
	case JobFailed:
		writeError(w, http.StatusConflict, CodeConflict, "job %s failed: %s", id, view.Error)
		return
	}
	stream := job.Stream()
	if stream == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "job %s has no bulk result", id)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// Mid-stream failures can only abort the connection; the status line
	// is already out.
	_ = stream(w)
}

// handleDatasetList implements GET /v1/datasets.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, builtinDatasets)
}

// handleDatasetGet implements GET /v1/datasets/{name}: synthesize the
// dataset (?seed=, ?n= where applicable) and return its edge list as
// text/plain, ready to pipe into POST /v1/extract.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	seed, err := queryInt64(r, "seed", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	n, err := queryInt(r, "n", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	g, err := s.datasetGraph(name, seed, n)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = graph.WriteEdgeList(w, g)
}

// handleStats implements GET /v1/stats: version, uptime, worker budget,
// cache counters, job-engine counters, and — when a data directory is
// configured — artifact-store contents and traffic.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Version:       version,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       parallel.Workers(),
		Cache:         s.cache.Stats(),
		Jobs:          s.jobs.Stats(),
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	writeJSON(w, http.StatusOK, resp)
}
