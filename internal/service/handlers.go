package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/pkg/dkapi"
)

// runStep executes one pipeline step synchronously through the shared
// executor, under the request's trace span when one is active (?trace=1).
// Handlers for the standalone endpoints are thin wire adapters around
// this — the same code path POST /v1/pipelines runs asynchronously.
// Validation failures (bad depth, step references outside a pipeline, …)
// come back as 400s.
func (s *Server) runStep(step dkapi.PipelineStep, parent *trace.Span) (*dkapi.StepResult, error) {
	req := dkapi.PipelineRequest{Steps: []dkapi.PipelineStep{step}}
	if err := pipeline.Validate(req, s.pipelineLimits()); err != nil {
		return nil, &apiError{http.StatusBadRequest, CodeBadRequest, err.Error()}
	}
	out, err := s.runPipeline(req, nil, parent)
	if err != nil {
		return nil, err
	}
	return &out.Result.Steps[0], nil
}

// finishTrace closes a sync request's root span and returns its
// records for embedding in the response body (?trace=1). The
// middleware's own End afterwards is an idempotent no-op.
func finishTrace(root *trace.Span) []dkapi.TraceRecord {
	if root == nil {
		return nil
	}
	root.End()
	return root.Trace().Records()
}

// handleExtract implements POST /v1/extract: parse the edge list in the
// request body (or synthesize ?dataset=name), intern it in the cache,
// and run an extract step at depth ?d (default 3). ?metrics=1 adds the
// scalar metric summary of the giant component; ?spectral=1 and
// ?sample=N tune it. The response's "cached" field reports whether the
// profile was served without recomputation.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	d, err := queryInt(r, "d", 3)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if d < 0 || d > 3 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "depth d=%d outside 0..3", d)
		return
	}
	seed, err := queryInt64(r, "seed", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sample, err := queryInt(r, "sample", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	n, err := queryInt(r, "n", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}

	// The dataset synthesis seed is its own parameter: ?seed drives
	// metric sampling/Lanczos, and conflating the two would make
	// "dataset X with synthesis seed S, sampled with seed T"
	// inexpressible — which is exactly what graph references spell as
	// {"dataset": X, "seed": S} elsewhere. Defaulting dseed to seed
	// preserves the historical single-seed behavior.
	dseed, err := queryInt64(r, "dseed", seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	var entry *Entry
	if name := r.URL.Query().Get("dataset"); name != "" {
		g, err := s.datasetGraph(name, dseed, n)
		if err != nil {
			writeAPIError(w, err)
			return
		}
		entry, _ = s.cache.Intern(g, nil)
	} else {
		body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		g, labels, err := graph.ReadEdgeListLimit(body, s.readLimits())
		if err != nil {
			writeGraphError(w, err)
			return
		}
		if g.N() == 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"empty edge list; POST a 'u v' per line body or pass ?dataset=")
			return
		}
		entry, _ = s.cache.Intern(g.CSR(), labels)
	}

	root := trace.FromContext(r.Context())
	res, err := s.runStep(dkapi.PipelineStep{
		ID: "extract", Op: dkapi.OpExtract,
		Source:   &dkapi.GraphRef{Hash: string(entry.Hash())},
		D:        &d,
		Metrics:  queryBool(r, "metrics"),
		Spectral: queryBool(r, "spectral"),
		Sample:   sample,
		Seed:     seed,
	}, root)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ExtractResponse{
		Graph: *res.Graph, Cached: res.Cached, Profile: res.Profile, Summary: res.Summary,
		Trace: finishTrace(root),
	})
}

// generateStep maps a validated GenerateRequest onto its pipeline step.
func generateStep(req GenerateRequest) dkapi.PipelineStep {
	return dkapi.PipelineStep{
		ID: "generate", Op: dkapi.OpGenerate,
		Source:   &req.Source,
		D:        req.D,
		Method:   req.Method,
		Replicas: req.Replicas,
		Seed:     req.Seed,
		Compare:  req.Compare,
	}
}

// handleGenerate implements POST /v1/generate: resolve the source graph,
// validate the request synchronously, and enqueue an asynchronous job
// that runs a one-step generate pipeline. Responds 202 with the job id,
// 429 when the queue is full.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"server is draining; submit to another instance")
		return
	}
	var req GenerateRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeGraphError(w, err)
		return
	}
	d := 2
	if req.D != nil {
		d = *req.D
	}
	if d < 0 || d > 3 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "depth d=%d outside 0..3", d)
		return
	}
	_, randomize, err := pipeline.ParseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	methodName := req.Method
	if methodName == "" {
		methodName = "randomize"
	}
	replicas := req.Replicas
	if replicas == 0 {
		replicas = 1
	}
	if replicas < 1 || replicas > s.opts.MaxReplicas {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"replicas=%d outside 1..%d", replicas, s.opts.MaxReplicas)
		return
	}
	// Reject invalid (depth, method) combinations before paying for
	// resolution or extraction — a doomed d=3 request must not trigger
	// a full census of a large graph first.
	if !randomize && d == 3 && methodName != "targeting" {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"d=3 generation from a distribution supports only method=targeting or method=randomize")
		return
	}
	entry, err := s.resolveRef(req.Source)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	// Extract the target profile up front when the job will need it
	// (construction from a distribution, or per-replica distances):
	// failures surface synchronously and the cache is warmed for the
	// job body, which re-fetches it as a pure cache hit. Pure
	// randomize-without-compare never reads the profile, so a potentially
	// expensive census must not run in the handler.
	if !randomize || req.Compare {
		if _, _, err := (svcHandle{e: entry, s: s}).Profile(d); err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, "extract: %v", err)
			return
		}
	}
	// The journaled spec references the source by content hash only: the
	// graph artifact is already written through to the disk tier, so the
	// spec stays small and resolvable after a restart even when the
	// original request carried inline edges.
	normalized := GenerateRequest{
		Source: GraphRef{Hash: string(entry.Hash())}, D: &d, Method: methodName,
		Replicas: replicas, Seed: req.Seed, Compare: req.Compare,
	}
	spec, _ := json.Marshal(normalized)
	jt := s.newJobTracer(r, "generate")
	job, err := s.jobs.SubmitTracked("generate", spec,
		jt.wrap(untracked(s.generateJobFunc(normalized, jt.span()))))
	jt.bind(job, err)
	if errors.Is(err, ErrQueueFull) {
		// Backpressure, not failure: carry Retry-After (dkclient honors
		// it) so callers back off instead of hammering the full queue.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull,
			"job queue full (%d queued); retry later", s.opts.JobQueue)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, GenerateAccepted{
		JobID:     job.ID(),
		StatusURL: "/v1/jobs/" + job.ID(),
	})
}

// generateJobFunc builds the body of a generate job: a one-step
// pipeline run whose step result is reshaped into the historical
// GenerateResult summary, with the replica edge lists streamed in the
// PR2 "# replica i" format. It is shared by the HTTP submission path
// (which passes the job's trace span) and journal recovery (which
// passes nil — a recovered job's submission trace died with the old
// process). Everything else it needs round-trips through the journaled
// GenerateRequest spec.
func (s *Server) generateJobFunc(req GenerateRequest, parent *trace.Span) JobFunc {
	return func() (any, StreamFunc, error) {
		out, err := s.runPipeline(dkapi.PipelineRequest{
			Steps: []dkapi.PipelineStep{generateStep(req)},
		}, nil, parent)
		if err != nil {
			return nil, nil, err
		}
		step := out.Result.Steps[0]
		result := GenerateResult{
			Source:   *step.Graph,
			D:        step.D,
			Method:   step.Method,
			Seed:     step.Seed,
			Replicas: step.Replicas,
		}
		handles := out.Graphs[0].Handles
		stream := func(w io.Writer) error {
			for i, h := range handles {
				if _, err := fmt.Fprintf(w, "# replica %d\n", i); err != nil {
					return err
				}
				if err := graph.WriteEdgeList(w, h.Graph()); err != nil {
					return err
				}
			}
			return nil
		}
		return result, stream, nil
	}
}

// handleCompare implements POST /v1/compare: a synchronous one-step
// compare pipeline — D_d for every depth up to d, plus the scalar
// metric summaries of both giant components.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req CompareRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeGraphError(w, err)
		return
	}
	d := 3
	if req.D != nil {
		d = *req.D
	}
	if d < 0 || d > 3 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "depth d=%d outside 0..3", d)
		return
	}
	root := trace.FromContext(r.Context())
	res, err := s.runStep(dkapi.PipelineStep{
		ID: "compare", Op: dkapi.OpCompare,
		A: &req.A, B: &req.B, D: &d,
		Spectral: req.Spectral, Sample: req.Sample, Seed: req.Seed,
	}, root)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CompareResponse{
		A: *res.A, B: *res.B,
		Distances: res.Distances,
		SummaryA:  *res.SummaryA, SummaryB: *res.SummaryB,
		Trace: finishTrace(root),
	})
}

// handleGraphGet implements GET /v1/graphs/{hash}: report whether a
// content hash resolves (memory or disk tier) and to what size. This is
// what lets clients skip re-uploading topologies the server already
// knows — the SDK probes it before falling back to an inline upload.
func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	e := s.cache.Get(Hash(hash))
	if e == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"hash %s not in cache (evicted or never uploaded)", hash)
		return
	}
	writeJSON(w, http.StatusOK, info(e))
}

// handleJobList implements GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

// handleJobGet implements GET /v1/jobs/{id}: the polling endpoint. Done
// jobs carry their result summary and, when bulk output exists, a
// result_url for streaming it; running pipeline jobs carry per-step
// progress.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job := s.jobs.Get(id)
	if job == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

// handleJobResult implements GET /v1/jobs/{id}/result: stream the bulk
// result (concatenated replica edge lists, text/plain) of a done job.
// Returns 409 while the job is still queued or running.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job := s.jobs.Get(id)
	if job == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job %q", id)
		return
	}
	view := job.View()
	switch view.Status {
	case JobQueued, JobRunning:
		writeError(w, http.StatusConflict, CodeConflict,
			"job %s is %s; poll %s until done", id, view.Status, "/v1/jobs/"+id)
		return
	case JobFailed:
		writeError(w, http.StatusConflict, CodeConflict, "job %s failed: %s", id, view.Error)
		return
	}
	stream := job.Stream()
	if stream == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "job %s has no bulk result", id)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// Mid-stream failures can only abort the connection; the status line
	// is already out.
	_ = stream(w)
}

// handleJobTrace implements GET /v1/jobs/{id}/trace: stream the
// execution trace of a finished job as JSONL (one record per line —
// see internal/trace for the vocabulary). Returns 409 while the job is
// still queued or running (the trace is written at completion), 404
// when no trace exists (tracing disabled, trace pruned, or unknown
// id). The startup trace, when present, is served under id "startup".
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if job := s.jobs.Get(id); job != nil {
		if v := job.View(); v.Status == JobQueued || v.Status == JobRunning {
			writeError(w, http.StatusConflict, CodeConflict,
				"job %s is %s; its trace is written when it finishes", id, v.Status)
			return
		}
	}
	data, ok := s.traces.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"no trace for job %q (tracing disabled, trace pruned, or unknown job)", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleDatasetList implements GET /v1/datasets.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, builtinDatasets)
}

// handleDatasetGet implements GET /v1/datasets/{name}: synthesize the
// dataset (?seed=, ?n= where applicable) and return its edge list as
// text/plain, ready to pipe into POST /v1/extract.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	seed, err := queryInt64(r, "seed", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	n, err := queryInt(r, "n", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	g, err := s.datasetGraph(name, seed, n)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = graph.WriteEdgeList(w, g)
}

// handleStats implements GET /v1/stats: version, uptime, worker budget,
// cache counters, job-engine counters, per-route traffic, and — when a
// data directory is configured — artifact-store contents and traffic.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Version:       version,
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       parallel.Workers(),
		Cache:         s.cache.Stats(),
		Jobs:          s.jobs.Stats(),
		Routes:        s.routes.Snapshot(),
		Phases:        s.phases.Snapshot(),
		Scenarios:     s.scenarios.Snapshot(),
	}
	if s.limiter != nil {
		rl := s.limiter.Stats()
		resp.RateLimit = &rl
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	writeJSON(w, http.StatusOK, resp)
}
