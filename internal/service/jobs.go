package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
	"repro/pkg/dkapi"
)

// ErrQueueFull is returned by Engine.Submit when the bounded job queue
// has no room; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("service: job queue full")

// JobStatus is the lifecycle state of an asynchronous job (wire
// vocabulary, pkg/dkapi).
type JobStatus = dkapi.JobStatus

// Job lifecycle states. A job moves queued → running → done | failed;
// there are no other transitions.
const (
	JobQueued  = dkapi.JobQueued
	JobRunning = dkapi.JobRunning
	JobDone    = dkapi.JobDone
	JobFailed  = dkapi.JobFailed
)

// JobClass is the scheduling priority of a job (wire vocabulary,
// pkg/dkapi): interactive work overtakes queued batch work.
type JobClass = dkapi.JobClass

// Job priority classes. Submissions that do not declare a class run as
// batch — the historical single-queue behavior.
const (
	ClassInteractive = dkapi.ClassInteractive
	ClassBatch       = dkapi.ClassBatch
)

// StreamFunc writes a job's bulk result (replica edge lists) to w. It is
// invoked once per GET /v1/jobs/{id}/result request, after the job is
// done, possibly concurrently with other streams of the same job — it
// must not mutate job state.
type StreamFunc func(w io.Writer) error

// JobFunc is the body of a job. It returns a JSON-marshalable result
// summary and an optional bulk-result streamer.
type JobFunc func() (result any, stream StreamFunc, err error)

// TrackedJobFunc is a job body that reports live progress: setProgress
// publishes a JSON-marshalable snapshot (e.g. per-step pipeline status)
// that GET /v1/jobs/{id} serves while the job runs. It may be called
// any number of times; the latest value wins.
type TrackedJobFunc func(setProgress func(any)) (result any, stream StreamFunc, err error)

// Job is one asynchronous unit of work tracked by the Engine. All fields
// are private; use View for a snapshot.
type Job struct {
	id    string
	kind  string
	class JobClass
	run   TrackedJobFunc
	eng   *Engine         // owner, for journaling terminal transitions; may be nil
	spec  json.RawMessage // serialized request, journaled for recovery

	mu        sync.Mutex
	status    JobStatus
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	progress  any
	result    any
	stream    StreamFunc
	doneCh    chan struct{}
}

// setProgress publishes a progress snapshot for polling clients.
func (j *Job) setProgress(p any) {
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
}

// ID returns the job's identifier ("j" + zero-padded sequence number).
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Stream returns the bulk-result streamer, or nil if the job is not done
// or produced no streamable result.
func (j *Job) Stream() StreamFunc {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobDone {
		return nil
	}
	return j.stream
}

// JobView is the JSON snapshot of a job, served by GET /v1/jobs/{id}
// (wire vocabulary, pkg/dkapi).
type JobView = dkapi.JobView

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Kind:      j.kind,
		Class:     j.class,
		Status:    j.status,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.progress != nil {
		v.Progress = j.progress
	}
	if j.status == JobDone {
		v.Result = j.result
		if j.stream != nil {
			v.ResultURL = "/v1/jobs/" + j.id + "/result"
		}
	}
	return v
}

// EngineStats counts job-engine traffic. MaxRunning is the high-water
// mark of concurrently executing jobs — with R runners it can never
// exceed R, which is how tests verify the engine respects the worker
// budget it was built with. Recovered counts jobs re-queued from the
// journal of a previous process at startup. The type itself is wire
// vocabulary (pkg/dkapi).
type EngineStats = dkapi.EngineStats

// Engine executes jobs asynchronously on a fixed pool of runner
// goroutines with two bounded queues — interactive and batch, each of
// the configured capacity. A runner that frees up always drains the
// interactive queue first, so profile reads overtake queued ensemble
// sweeps; within a class, order is FIFO. The runner count is the
// engine's share of the process worker budget: generation work inside a
// job fans out further through internal/parallel, whose process-global
// helper bound keeps (runners × inner parallelism) from oversubscribing
// the machine — inner loops degrade to inline execution once the global
// fleet is saturated.
type Engine struct {
	runners int
	queueHi chan *Job // interactive
	queueLo chan *Job // batch
	stop    chan struct{}
	wg      sync.WaitGroup
	journal *store.Journal // immutable after construction; nil = no journal

	mu      sync.Mutex
	closed  bool
	jobs    map[string]*Job
	order   []string // submission order, for retention eviction
	retain  int
	seq     int64
	stats   EngineStats
	running int
}

// NewEngine starts an engine with the given runner pool size (minimum 1),
// queue capacity (minimum 1), and retained-job bound (minimum 1;
// terminal jobs beyond the bound are evicted oldest-first).
func NewEngine(runners, queueCap, retain int) *Engine {
	return NewJournaledEngine(runners, queueCap, retain, nil, 0)
}

// NewJournaledEngine is NewEngine with a restart journal: every job state
// transition is appended to it, best-effort (journal write failures never
// fail the job). seqFloor advances the id sequence past ids a previous
// process already journaled, so job ids stay unique across restarts.
// Pass a nil journal for a memory-only engine.
func NewJournaledEngine(runners, queueCap, retain int, journal *store.Journal, seqFloor int64) *Engine {
	if runners < 1 {
		runners = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if retain < 1 {
		retain = 1
	}
	e := &Engine{
		runners: runners,
		queueHi: make(chan *Job, queueCap),
		queueLo: make(chan *Job, queueCap),
		stop:    make(chan struct{}),
		jobs:    make(map[string]*Job),
		retain:  retain,
		journal: journal,
		seq:     seqFloor,
	}
	e.wg.Add(runners)
	for i := 0; i < runners; i++ {
		go e.runLoop()
	}
	return e
}

// note appends a job-state record to the journal, best-effort. It takes
// no engine lock (the journal field is immutable and has its own mutex),
// so it is safe to call from any state-transition site.
func (e *Engine) note(rec store.JobRecord) {
	if e == nil || e.journal == nil {
		return
	}
	_ = e.journal.Record(rec)
}

// jobSeq parses the sequence number out of a "j%06d" job id; malformed
// ids yield 0. Used to advance the id sequence past a replayed journal.
func jobSeq(id string) int64 {
	num, ok := strings.CutPrefix(id, "j")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// MaxJournaledSeq returns the highest job sequence number appearing in
// the replayed states, for use as a NewJournaledEngine seqFloor.
func MaxJournaledSeq(states []store.JobState) int64 {
	var max int64
	for _, st := range states {
		if n := jobSeq(st.ID); n > max {
			max = n
		}
	}
	return max
}

// countNonTerminal counts replayed jobs that recovery will re-queue,
// used to size the engine queue so recovery never overflows it.
func countNonTerminal(states []store.JobState) int {
	n := 0
	for _, st := range states {
		if !st.Terminal() {
			n++
		}
	}
	return n
}

// Close stops the runner pool after in-flight jobs finish. Queued jobs
// that have not started are marked failed; later Submits are rejected.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	e.wg.Wait()
	// Fail whatever is still queued so pollers are not left hanging.
	// Submit enqueues under the mutex, so every send either happened
	// before the closed flag was set (and is drained here) or observed
	// the flag and was rejected — no job can be enqueued after this.
	for _, q := range []chan *Job{e.queueHi, e.queueLo} {
		for {
			select {
			case j := <-q:
				j.finish(nil, nil, errors.New("service: engine shut down"))
				continue
			default:
			}
			break
		}
	}
}

// untracked adapts a plain JobFunc to the tracked signature.
func untracked(run JobFunc) TrackedJobFunc {
	return func(func(any)) (any, StreamFunc, error) { return run() }
}

// Submit enqueues a batch-class job. It never blocks: if the queue is
// full the job is rejected with ErrQueueFull; after Close it is
// rejected outright.
func (e *Engine) Submit(kind string, run JobFunc) (*Job, error) {
	return e.SubmitSpec(kind, nil, run)
}

// SubmitSpec is Submit with a serialized request spec that is written to
// the journal alongside the queued record, making the job recoverable:
// after a crash, the spec is what a fresh process re-queues from.
func (e *Engine) SubmitSpec(kind string, spec json.RawMessage, run JobFunc) (*Job, error) {
	return e.submit("", kind, ClassBatch, spec, untracked(run), false)
}

// SubmitTracked is SubmitSpec for a progress-reporting job body.
func (e *Engine) SubmitTracked(kind string, spec json.RawMessage, run TrackedJobFunc) (*Job, error) {
	return e.submit("", kind, ClassBatch, spec, run, false)
}

// SubmitClass is SubmitTracked with an explicit priority class:
// interactive jobs overtake queued batch jobs.
func (e *Engine) SubmitClass(kind string, class JobClass, spec json.RawMessage, run TrackedJobFunc) (*Job, error) {
	return e.submit("", kind, class, spec, run, false)
}

// Resubmit re-queues a job recovered from a previous process's journal
// under its original id, so clients polling that id across the restart
// find their job again. It fails if the id is already tracked.
func (e *Engine) Resubmit(id, kind string, spec json.RawMessage, run JobFunc) (*Job, error) {
	return e.submit(id, kind, ClassBatch, spec, untracked(run), true)
}

// ResubmitTracked is Resubmit for a progress-reporting job body.
func (e *Engine) ResubmitTracked(id, kind string, spec json.RawMessage, run TrackedJobFunc) (*Job, error) {
	return e.submit(id, kind, ClassBatch, spec, run, true)
}

// ResubmitClass is ResubmitTracked with an explicit priority class, so
// recovery re-queues a job under the same class it was submitted with.
func (e *Engine) ResubmitClass(id, kind string, class JobClass, spec json.RawMessage, run TrackedJobFunc) (*Job, error) {
	return e.submit(id, kind, class, spec, run, true)
}

// RegisterFailed tracks a job in a terminal failed state without ever
// running it — the close-out for journal jobs whose spec no longer
// resolves. Registering (rather than only journaling) keeps the poll
// contract: GET /v1/jobs/{id} answers "failed" with the reason instead
// of 404. Already-tracked ids are left alone.
func (e *Engine) RegisterFailed(id, kind string, spec json.RawMessage, msg string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.jobs[id] != nil {
		return
	}
	now := time.Now().UTC()
	j := &Job{
		id:        id,
		kind:      kind,
		eng:       e,
		spec:      spec,
		status:    JobFailed,
		submitted: now,
		finished:  now,
		err:       errors.New(msg),
		doneCh:    make(chan struct{}),
	}
	close(j.doneCh)
	e.jobs[id] = j
	e.order = append(e.order, id)
	e.stats.Failed++
	e.evictLocked()
}

func (e *Engine) submit(id, kind string, class JobClass, spec json.RawMessage, run TrackedJobFunc, recovered bool) (*Job, error) {
	if class != ClassInteractive {
		class = ClassBatch
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		e.stats.Rejected++
		return nil, errors.New("service: engine shut down")
	}
	if id == "" {
		e.seq++
		id = fmt.Sprintf("j%06d", e.seq)
	} else if e.jobs[id] != nil {
		return nil, fmt.Errorf("service: job %s already tracked", id)
	}
	j := &Job{
		id:        id,
		kind:      kind,
		class:     class,
		run:       run,
		eng:       e,
		spec:      spec,
		status:    JobQueued,
		submitted: time.Now().UTC(),
		doneCh:    make(chan struct{}),
	}
	queue := e.queueLo
	if class == ClassInteractive {
		queue = e.queueHi
	}
	// Journal the queued record (which carries the recoverable spec)
	// BEFORE the job becomes visible to runners: a runner can dequeue
	// and journal "running" the instant the send completes, and a crash
	// between the two appends would leave a spec-less running record
	// that recovery could only close out as failed. A queue-full
	// rejection after the fact is closed with a failed record, so the
	// journal never carries a phantom queued job.
	e.note(store.JobRecord{ID: j.id, Status: store.JobQueued, Kind: kind, Spec: spec})
	select {
	case queue <- j:
	default:
		e.stats.Rejected++
		e.note(store.JobRecord{ID: j.id, Status: store.JobFailed, Error: "rejected: queue full"})
		return nil, ErrQueueFull
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	if recovered {
		e.stats.Recovered++
	}
	e.evictLocked()
	return j, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
// Queued and running jobs are never evicted.
func (e *Engine) evictLocked() {
	excess := len(e.jobs) - e.retain
	if excess <= 0 {
		return
	}
	kept := e.order[:0]
	for _, id := range e.order {
		j := e.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		terminal := j.status == JobDone || j.status == JobFailed
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(e.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

// Get returns a tracked job by id, or nil.
func (e *Engine) Get(id string) *Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobs[id]
}

// List snapshots all tracked jobs in submission order.
func (e *Engine) List() []JobView {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j := e.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	e.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// Accepting reports whether the engine is open for new submissions —
// false after Close (or during shutdown), which is what /v1/readyz
// checks before declaring the server ready.
func (e *Engine) Accepting() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.closed
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Runners = e.runners
	s.QueuedInteractive = len(e.queueHi)
	s.QueuedBatch = len(e.queueLo)
	s.Queued = s.QueuedInteractive + s.QueuedBatch
	s.Running = e.running
	return s
}

// runLoop is one runner goroutine: it drains the queues until Close,
// always preferring interactive work when both classes have backlog.
func (e *Engine) runLoop() {
	defer e.wg.Done()
	for {
		// Check stop first on its own: a multi-case select picks randomly
		// when several are ready, which would let a runner start a queued
		// job after Close began instead of leaving it for Close's
		// drain-and-fail pass.
		select {
		case <-e.stop:
			return
		default:
		}
		// The priority rule lives here: a freed runner drains the
		// interactive queue before looking at batch work, so class-hi
		// jobs overtake any batch backlog. Only when the interactive
		// queue is empty does the runner block on both classes at once
		// (a simultaneous arrival picks randomly — at most one batch
		// job ahead of an interactive one, never a queue's worth).
		select {
		case j := <-e.queueHi:
			e.execute(j)
			continue
		default:
		}
		select {
		case <-e.stop:
			return
		case j := <-e.queueHi:
			e.execute(j)
		case j := <-e.queueLo:
			e.execute(j)
		}
	}
}

// execute runs one job, tracking the concurrent-running high-water mark.
func (e *Engine) execute(j *Job) {
	j.mu.Lock()
	j.status = JobRunning
	j.started = time.Now().UTC()
	j.mu.Unlock()
	e.note(store.JobRecord{ID: j.id, Status: store.JobRunning})

	e.mu.Lock()
	e.running++
	if e.running > e.stats.MaxRunning {
		e.stats.MaxRunning = e.running
	}
	e.mu.Unlock()

	result, stream, err := runSafely(j.run, j.setProgress)
	j.finish(result, stream, err)

	e.mu.Lock()
	e.running--
	if err != nil {
		e.stats.Failed++
	} else {
		e.stats.Completed++
	}
	e.mu.Unlock()
}

// runSafely converts a panicking job body into a failed job rather than
// letting it take down the runner goroutine (and with it the server).
func runSafely(run TrackedJobFunc, setProgress func(any)) (result any, stream StreamFunc, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, stream, err = nil, nil, fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	return run(setProgress)
}

// finish moves the job to its terminal state, journals it, and wakes
// pollers.
func (j *Job) finish(result any, stream StreamFunc, err error) {
	j.mu.Lock()
	j.finished = time.Now().UTC()
	if err != nil {
		j.status = JobFailed
		j.err = err
	} else {
		j.status = JobDone
		j.result = result
		j.stream = stream
	}
	j.mu.Unlock()
	if err != nil {
		j.eng.note(store.JobRecord{ID: j.id, Status: store.JobFailed, Error: err.Error()})
	} else {
		j.eng.note(store.JobRecord{ID: j.id, Status: store.JobDone})
	}
	close(j.doneCh)
}
