package service

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrQueueFull is returned by Engine.Submit when the bounded job queue
// has no room; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("service: job queue full")

// JobStatus is the lifecycle state of an asynchronous job.
type JobStatus string

// Job lifecycle states. A job moves queued → running → done | failed;
// there are no other transitions.
const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// StreamFunc writes a job's bulk result (replica edge lists) to w. It is
// invoked once per GET /v1/jobs/{id}/result request, after the job is
// done, possibly concurrently with other streams of the same job — it
// must not mutate job state.
type StreamFunc func(w io.Writer) error

// JobFunc is the body of a job. It returns a JSON-marshalable result
// summary and an optional bulk-result streamer.
type JobFunc func() (result any, stream StreamFunc, err error)

// Job is one asynchronous unit of work tracked by the Engine. All fields
// are private; use View for a snapshot.
type Job struct {
	id   string
	kind string
	run  JobFunc

	mu        sync.Mutex
	status    JobStatus
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	result    any
	stream    StreamFunc
	doneCh    chan struct{}
}

// ID returns the job's identifier ("j" + zero-padded sequence number).
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Stream returns the bulk-result streamer, or nil if the job is not done
// or produced no streamable result.
func (j *Job) Stream() StreamFunc {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobDone {
		return nil
	}
	return j.stream
}

// JobView is the JSON snapshot of a job, served by GET /v1/jobs/{id}.
type JobView struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Status    JobStatus  `json:"status"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    any        `json:"result,omitempty"`
	ResultURL string     `json:"result_url,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Kind:      j.kind,
		Status:    j.status,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.status == JobDone {
		v.Result = j.result
		if j.stream != nil {
			v.ResultURL = "/v1/jobs/" + j.id + "/result"
		}
	}
	return v
}

// EngineStats counts job-engine traffic. MaxRunning is the high-water
// mark of concurrently executing jobs — with R runners it can never
// exceed R, which is how tests verify the engine respects the worker
// budget it was built with.
type EngineStats struct {
	Runners    int   `json:"runners"`
	Queued     int   `json:"queued"`
	Running    int   `json:"running"`
	MaxRunning int   `json:"max_running"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Rejected   int64 `json:"rejected"`
}

// Engine executes jobs asynchronously on a fixed pool of runner
// goroutines with a bounded queue. The runner count is the engine's share
// of the process worker budget: generation work inside a job fans out
// further through internal/parallel, whose process-global helper bound
// keeps (runners × inner parallelism) from oversubscribing the machine —
// inner loops degrade to inline execution once the global fleet is
// saturated.
type Engine struct {
	runners int
	queue   chan *Job
	stop    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	jobs    map[string]*Job
	order   []string // submission order, for retention eviction
	retain  int
	seq     int64
	stats   EngineStats
	running int
}

// NewEngine starts an engine with the given runner pool size (minimum 1),
// queue capacity (minimum 1), and retained-job bound (minimum 1;
// terminal jobs beyond the bound are evicted oldest-first).
func NewEngine(runners, queueCap, retain int) *Engine {
	if runners < 1 {
		runners = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if retain < 1 {
		retain = 1
	}
	e := &Engine{
		runners: runners,
		queue:   make(chan *Job, queueCap),
		stop:    make(chan struct{}),
		jobs:    make(map[string]*Job),
		retain:  retain,
	}
	e.wg.Add(runners)
	for i := 0; i < runners; i++ {
		go e.runLoop()
	}
	return e
}

// Close stops the runner pool after in-flight jobs finish. Queued jobs
// that have not started are marked failed; later Submits are rejected.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	e.wg.Wait()
	// Fail whatever is still queued so pollers are not left hanging.
	// Submit enqueues under the mutex, so every send either happened
	// before the closed flag was set (and is drained here) or observed
	// the flag and was rejected — no job can be enqueued after this.
	for {
		select {
		case j := <-e.queue:
			j.finish(nil, nil, errors.New("service: engine shut down"))
		default:
			return
		}
	}
}

// Submit enqueues a job. It never blocks: if the queue is full the job is
// rejected with ErrQueueFull; after Close it is rejected outright.
func (e *Engine) Submit(kind string, run JobFunc) (*Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		e.stats.Rejected++
		return nil, errors.New("service: engine shut down")
	}
	e.seq++
	j := &Job{
		id:        fmt.Sprintf("j%06d", e.seq),
		kind:      kind,
		run:       run,
		status:    JobQueued,
		submitted: time.Now().UTC(),
		doneCh:    make(chan struct{}),
	}
	select {
	case e.queue <- j:
	default:
		e.stats.Rejected++
		return nil, ErrQueueFull
	}
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.evictLocked()
	return j, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
// Queued and running jobs are never evicted.
func (e *Engine) evictLocked() {
	excess := len(e.jobs) - e.retain
	if excess <= 0 {
		return
	}
	kept := e.order[:0]
	for _, id := range e.order {
		j := e.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		terminal := j.status == JobDone || j.status == JobFailed
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(e.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

// Get returns a tracked job by id, or nil.
func (e *Engine) Get(id string) *Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobs[id]
}

// List snapshots all tracked jobs in submission order.
func (e *Engine) List() []JobView {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j := e.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	e.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Runners = e.runners
	s.Queued = len(e.queue)
	s.Running = e.running
	return s
}

// runLoop is one runner goroutine: it drains the queue until Close.
func (e *Engine) runLoop() {
	defer e.wg.Done()
	for {
		// Check stop first on its own: a two-case select picks randomly
		// when both are ready, which would let a runner start a queued
		// job after Close began instead of leaving it for Close's
		// drain-and-fail pass.
		select {
		case <-e.stop:
			return
		default:
		}
		select {
		case <-e.stop:
			return
		case j := <-e.queue:
			e.execute(j)
		}
	}
}

// execute runs one job, tracking the concurrent-running high-water mark.
func (e *Engine) execute(j *Job) {
	j.mu.Lock()
	j.status = JobRunning
	j.started = time.Now().UTC()
	j.mu.Unlock()

	e.mu.Lock()
	e.running++
	if e.running > e.stats.MaxRunning {
		e.stats.MaxRunning = e.running
	}
	e.mu.Unlock()

	result, stream, err := runSafely(j.run)
	j.finish(result, stream, err)

	e.mu.Lock()
	e.running--
	if err != nil {
		e.stats.Failed++
	} else {
		e.stats.Completed++
	}
	e.mu.Unlock()
}

// runSafely converts a panicking job body into a failed job rather than
// letting it take down the runner goroutine (and with it the server).
func runSafely(run JobFunc) (result any, stream StreamFunc, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, stream, err = nil, nil, fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	return run()
}

// finish moves the job to its terminal state and wakes pollers.
func (j *Job) finish(result any, stream StreamFunc, err error) {
	j.mu.Lock()
	j.finished = time.Now().UTC()
	if err != nil {
		j.status = JobFailed
		j.err = err
	} else {
		j.status = JobDone
		j.result = result
		j.stream = stream
	}
	j.mu.Unlock()
	close(j.doneCh)
}
