package service

import (
	"strings"
	"sync"
	"time"

	"repro/pkg/dkapi"
)

// phaseStats aggregates the pipeline executor's per-phase wall-clock
// timings across every run the server executes — synchronous handler
// steps and asynchronous jobs alike. Keys are "op.phase" (e.g.
// "generate.construct"), matching the phases section of GET /v1/stats;
// see pipeline.Observer for the phase vocabulary. This is what makes
// the §4.1.4 hot path observable in production: the construct phase's
// cumulative milliseconds against the extract/intern/compare overhead
// around it.
type phaseStats struct {
	mu sync.Mutex
	m  map[string]*dkapi.PhaseStat
}

func newPhaseStats() *phaseStats {
	return &phaseStats{m: make(map[string]*dkapi.PhaseStat)}
}

// Observe implements pipeline.Observer (modulo the method value).
func (ps *phaseStats) Observe(op, phase string, d time.Duration) {
	ps.ObserveKey(op+"."+phase, d)
}

// ObserveKey folds one observation into the aggregate for key.
func (ps *phaseStats) ObserveKey(key string, d time.Duration) {
	ms := d.Seconds() * 1000
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st := ps.m[key]
	if st == nil {
		st = &dkapi.PhaseStat{}
		ps.m[key] = st
	}
	st.Count++
	st.TotalMS += ms
	if ms > st.MaxMS {
		st.MaxMS = ms
	}
}

// observePhase is the pipeline.Observer every execution surface runs
// under: it feeds both the cumulative per-phase aggregates of
// /v1/stats and the dk_pipeline_phase_seconds histogram of /metrics.
// Netsim steps report one synthetic "scenario:<kind>" observation per
// scenario alongside their regular phases (see pipeline.Observer);
// those route into the scenarios section and the dk_scenario_* families
// instead of the phase table, keyed by the bare kind.
func (s *Server) observePhase(op, phase string, d time.Duration) {
	if kind, ok := strings.CutPrefix(phase, "scenario:"); ok {
		s.scenarios.ObserveKey(kind, d)
		s.scenHist.Observe(kind, d.Seconds())
		return
	}
	s.phases.Observe(op, phase, d)
	s.phaseHist.Observe(op+"."+phase, d.Seconds())
}

// Snapshot copies the aggregates for the stats handler.
func (ps *phaseStats) Snapshot() map[string]dkapi.PhaseStat {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(ps.m) == 0 {
		return nil
	}
	out := make(map[string]dkapi.PhaseStat, len(ps.m))
	for k, v := range ps.m {
		out[k] = *v
	}
	return out
}
